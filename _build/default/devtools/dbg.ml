open Memsim
let () =
  let arena = Arena.create ~capacity:1_000 in
  let global = Global_pool.create ~max_level:4 in
  let pool = Pool.create arena global ~spill:5 in
  let held = ref [] in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 2_000 do
    if Random.State.bool rng && !held <> [] then begin
      match !held with
      | s :: rest -> held := rest; Pool.put pool s
      | [] -> ()
    end
    else begin
      let lvl = 1 + Random.State.int rng 3 in
      held := Pool.take pool ~level:lvl :: !held
    end
  done;
  List.iter (Pool.put pool) !held;
  Printf.printf "allocated=%d local_free=%d global_batches=%d\n"
    (Arena.allocated arena) (Pool.local_free pool) (Global_pool.approx_batches global);
  let drained = ref 0 in
  for lvl = 1 to 4 do
    (try while true do ignore (Pool.take pool ~level:lvl); incr drained done
     with Arena.Exhausted -> ());
    Printf.printf "after lvl %d: drained=%d allocated=%d\n" lvl !drained (Arena.allocated arena)
  done
