devtools/diag.mli:
