devtools/dbg.ml: Arena Global_pool List Memsim Pool Printf Random
