devtools/diag2.ml: Arena Array Atomic Domain Dstruct Format Global_pool Hashtbl List Memsim Node Packed Printexc Printf Unix Vbr_core
