devtools/diag2.mli:
