devtools/dbg.mli:
