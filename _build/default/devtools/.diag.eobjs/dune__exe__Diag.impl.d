devtools/diag.ml: Array Atomic Domain Dstruct Format List Memsim Random Unix Vbr_core
