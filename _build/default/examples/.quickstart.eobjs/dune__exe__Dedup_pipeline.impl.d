examples/dedup_pipeline.ml: Array Atomic Domain Dstruct Harness List Memsim Printf Vbr_core
