examples/ordered_index.mli:
