examples/dedup_pipeline.mli:
