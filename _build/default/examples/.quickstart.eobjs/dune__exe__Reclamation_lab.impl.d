examples/reclamation_lab.ml: Domain Harness List Printf Registry Rng String Throughput Workload
