examples/job_queue.ml: Array Atomic Domain Dstruct List Memsim Printf Vbr_core
