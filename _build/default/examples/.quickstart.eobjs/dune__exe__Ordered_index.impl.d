examples/ordered_index.ml: Array Atomic Domain Dstruct List Memsim Printf Vbr_core
