examples/quickstart.ml: Array Atomic Domain Dstruct Format List Memsim Printf Vbr_core
