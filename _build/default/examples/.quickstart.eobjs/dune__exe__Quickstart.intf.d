examples/quickstart.mli:
