(* The reclamation lab: run the same churn workload under all six
   reclamation schemes, with and without a stalled thread, and watch what
   each scheme does to memory — the paper's §1 robustness story in one
   screen.

   Run with: dune exec examples/reclamation_lab.exe *)

open Harness

let range = 4096
let threads = 3
let ops = 120_000

let run ~pin scheme =
  let capacity = 600_000 in
  let make () =
    Registry.make ~structure:"hash" ~scheme ~n_threads:threads ~range
      ~capacity ()
  in
  let series =
    if pin then
      Throughput.run_stalled ~make ~profile:Workload.balanced ~threads ~range
        ~checkpoints:1 ~ops_per_checkpoint:ops
    else begin
      (* Same traffic, nobody stalled. *)
      let inst = make () in
      Throughput.prefill inst ~range;
      let workers = threads in
      let ds =
        List.init workers (fun tid ->
            Domain.spawn (fun () ->
                let rng = Rng.create ~seed:(tid + 5) in
                for _ = 1 to ops / workers do
                  let k = Rng.below rng range in
                  match Workload.pick Workload.balanced rng with
                  | Workload.Insert -> ignore (inst.Registry.insert ~tid k)
                  | Workload.Delete -> ignore (inst.Registry.delete ~tid k)
                  | Workload.Search -> ignore (inst.Registry.contains ~tid k)
                done))
      in
      List.iter Domain.join ds;
      [ (ops, inst.Registry.unreclaimed (), inst.Registry.allocated ()) ]
    end
  in
  match List.rev series with
  | (_, unreclaimed, allocated) :: _ -> (unreclaimed, allocated)
  | [] -> (0, 0)

let () =
  Printf.printf
    "Churn: %d balanced ops over a hash set (range %d), %d threads.\n" ops
    range threads;
  Printf.printf "%-8s | %14s %14s | %14s %14s\n" "" "healthy" "" "stalled" "";
  Printf.printf "%-8s | %14s %14s | %14s %14s\n" "scheme" "unreclaimed"
    "arena slots" "unreclaimed" "arena slots";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter
    (fun scheme ->
      let hu, ha = run ~pin:false scheme in
      let su, sa = run ~pin:true scheme in
      Printf.printf "%-8s | %14d %14d | %14d %14d\n" scheme hu ha su sa)
    Registry.schemes;
  Printf.printf "%s\n" (String.make 72 '-');
  print_endline
    "Reading guide: NoRecl never reclaims (and its arena grows with every\n\
     insert). EBR reclaims well until a thread stalls — then garbage grows\n\
     with traffic. HE/IBR cap the damage at roughly the heap size when the\n\
     stall began. HP pins only what hazard pointers name. VBR is unaffected\n\
     by the stall entirely: no thread can delay its reclamation."
