(** Epoch-based reclamation (§5: "EBR"; Fraser-style).

    Threads announce the global epoch on operation entry and go quiescent
    on exit. A node retired at epoch [r] is recycled once every active
    thread has announced an epoch strictly greater than [r] (it was
    unlinked before retirement, so no later-starting operation can reach
    it). The global epoch advances — at most every [epoch_freq]
    allocations — when every active thread has caught up with it.

    Fast (no per-read work beyond the announcement) but not robust: one
    stalled thread freezes its announced epoch and blocks all recycling,
    which the robustness bench demonstrates. *)

include Smr_intf.S
