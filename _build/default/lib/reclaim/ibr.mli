(** Interval-based reclamation, 2GE variant (§5: "IBR"; Wen et al.).

    Each thread keeps one reservation interval [lower, upper]: [lower] is
    the epoch at operation start, [upper] is bumped to the current epoch
    whenever a read observes an epoch change. A node whose lifetime
    interval [birth, retire] is disjoint from every reservation is safe to
    recycle. One interval per thread (instead of one era per hazard slot)
    makes reads cheaper than HE/HP, at the cost of coarser pinning: a
    stalled thread pins everything born before its [upper]. *)

include Smr_intf.S
