open Memsim

type t = { arena : Arena.t; retired : int Atomic.t }

let name = "NoRecl"

let create ~arena ~global:_ ~n_threads:_ ~hazards:_ ~retire_threshold:_
    ~epoch_freq:_ =
  { arena; retired = Atomic.make 0 }

let begin_op _ ~tid:_ = ()
let end_op _ ~tid:_ = ()
let protect _ ~tid:_ ~slot:_ read = read ()

let alloc t ~tid:_ ~level ~key =
  let i = Arena.fresh t.arena ~level in
  let n = Arena.get t.arena i in
  n.Node.key <- key;
  i

let protect_own _ ~tid:_ ~slot:_ _i = ()

let transfer _ ~tid:_ ~src:_ ~dst:_ = ()

let dealloc _ ~tid:_ _i = ()

let retire t ~tid:_ _i = Atomic.incr t.retired
let freed _ = 0
let unreclaimed t = Atomic.get t.retired
