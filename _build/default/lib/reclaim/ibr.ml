open Memsim

let inactive = max_int

type thread_state = {
  lower : int Atomic.t;
  upper : int Atomic.t;
  pool : Pool.t;
  mutable retired : int list;
  mutable retired_len : int;
  (* Adaptive scan trigger: scan when the retired list doubles past what
     survived the previous scan, so scan work stays amortized O(1) per
     retirement even while a descheduled thread pins the horizon (an
     oversubscription regime the paper's testbed never enters). *)
  mutable scan_trigger : int;
  mutable alloc_ticks : int;
  mutable freed : int;
}

type t = {
  arena : Arena.t;
  epoch : int Atomic.t;
  threads : thread_state array;
  retire_threshold : int;
  epoch_freq : int;
}

let name = "IBR"

let create ~arena ~global ~n_threads ~hazards:_ ~retire_threshold ~epoch_freq
    =
  {
    arena;
    epoch = Atomic.make 1;
    threads =
      Array.init n_threads (fun _ ->
          {
            lower = Atomic.make inactive;
            upper = Atomic.make 0;
            pool = Pool.create arena global ~spill:4096;
            retired = [];
            retired_len = 0;
            scan_trigger = max 1 retire_threshold;
            alloc_ticks = 0;
            freed = 0;
          });
    retire_threshold = max 1 retire_threshold;
    epoch_freq = max 1 epoch_freq;
  }

let begin_op t ~tid =
  let ts = t.threads.(tid) in
  let e = Atomic.get t.epoch in
  Atomic.set ts.upper e;
  Atomic.set ts.lower e

let end_op t ~tid =
  let ts = t.threads.(tid) in
  Atomic.set ts.lower inactive;
  Atomic.set ts.upper 0

(* 2GE read barrier: re-read the field until the global epoch is stable,
   extending the reservation's upper bound on every change. *)
let protect t ~tid ~slot:_ read =
  let ts = t.threads.(tid) in
  let rec loop last =
    let w = read () in
    let e = Atomic.get t.epoch in
    if e = last then w
    else begin
      Atomic.set ts.upper e;
      loop e
    end
  in
  loop (Atomic.get ts.upper)

let reset_node t i ~key =
  let n = Arena.get t.arena i in
  n.Node.key <- key;
  Atomic.set n.Node.birth (Atomic.get t.epoch);
  Atomic.set n.Node.retire Node.no_epoch;
  Array.iter (fun w -> Atomic.set w Packed.null) n.Node.next

let alloc t ~tid ~level ~key =
  let ts = t.threads.(tid) in
  ts.alloc_ticks <- ts.alloc_ticks + 1;
  if ts.alloc_ticks mod t.epoch_freq = 0 then Atomic.incr t.epoch;
  let i = Pool.take ts.pool ~level in
  reset_node t i ~key;
  (* Cover our own allocation with the reservation so the node stays
     pinned if another thread retires it right after we publish it. *)
  let e = Atomic.get t.epoch in
  if e > Atomic.get ts.upper then Atomic.set ts.upper e;
  i

let protect_own _ ~tid:_ ~slot:_ _i = ()

let transfer _ ~tid:_ ~src:_ ~dst:_ = ()

let dealloc t ~tid i = Pool.put t.threads.(tid).pool i

(* Lifetime [b, r] conflicts with reservation [l, u] iff b <= u && l <= r. *)
let pinned t ~birth ~retire =
  Array.exists
    (fun ts ->
      let l = Atomic.get ts.lower in
      let u = Atomic.get ts.upper in
      l <> inactive && birth <= u && l <= retire)
    t.threads

let scan t ts =
  let keep, free =
    List.partition
      (fun i ->
        let n = Arena.get t.arena i in
        pinned t ~birth:(Atomic.get n.Node.birth)
          ~retire:(Atomic.get n.Node.retire))
      ts.retired
  in
  ts.retired <- keep;
  ts.retired_len <- List.length keep;
  List.iter
    (fun i ->
      ts.freed <- ts.freed + 1;
      Pool.put ts.pool i)
    free

let retire t ~tid i =
  let ts = t.threads.(tid) in
  Atomic.set (Arena.get t.arena i).Node.retire (Atomic.get t.epoch);
  ts.retired <- i :: ts.retired;
  ts.retired_len <- ts.retired_len + 1;
  if ts.retired_len >= ts.scan_trigger then begin
    scan t ts;
    ts.scan_trigger <- max t.retire_threshold (2 * ts.retired_len)
  end

let freed t = Array.fold_left (fun acc ts -> acc + ts.freed) 0 t.threads

let unreclaimed t =
  Array.fold_left (fun acc ts -> acc + ts.retired_len) 0 t.threads
