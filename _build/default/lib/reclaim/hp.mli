(** Hazard pointers (§5: "HP"; Michael's scheme).

    Before dereferencing a node, a thread publishes its index in one of its
    hazard slots and validates the publication by re-reading the source
    field; a retired node is recycled only when no hazard slot holds it.

    Robust (a stalled thread pins at most [hazards] nodes) but pays a
    publication plus a validation re-read on every pointer load — the
    slowest scheme in the paper's evaluation, and the shape our benches
    reproduce. *)

include Smr_intf.S
