(** Hazard eras (§5: "HE"; Ramalhete & Correia).

    Combines hazard pointers' robustness with epoch timestamps: each node
    carries its birth and retire *eras*; instead of publishing a node
    index, a reader publishes the current era. A retired node is recycled
    when no published era falls inside its [birth, retire] lifetime.
    Publication is still required per read, so HE pays HP-like per-read
    cost with EBR-like batching of reclamation decisions. *)

include Smr_intf.S
