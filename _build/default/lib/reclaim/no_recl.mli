(** The no-reclamation baseline (§5: "NoRecl").

    Retired nodes are counted but never recycled; every allocation claims a
    fresh arena slot. This is the paper's upper-bound baseline: no
    protection cost on reads, no reclamation cost, unbounded memory. *)

include Smr_intf.S
