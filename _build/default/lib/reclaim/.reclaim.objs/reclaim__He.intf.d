lib/reclaim/he.mli: Smr_intf
