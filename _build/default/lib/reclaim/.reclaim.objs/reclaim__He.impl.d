lib/reclaim/he.ml: Arena Array Atomic List Memsim Node Packed Pool
