lib/reclaim/smr_intf.ml: Memsim
