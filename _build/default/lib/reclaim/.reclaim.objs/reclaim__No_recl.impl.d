lib/reclaim/no_recl.ml: Arena Atomic Memsim Node
