lib/reclaim/ebr.mli: Smr_intf
