lib/reclaim/ibr.mli: Smr_intf
