lib/reclaim/hp.mli: Smr_intf
