lib/reclaim/hp.ml: Arena Array Atomic Int List Memsim Node Packed Pool Set
