lib/reclaim/ibr.ml: Arena Array Atomic List Memsim Node Packed Pool
