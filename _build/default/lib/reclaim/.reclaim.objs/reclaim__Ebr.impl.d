lib/reclaim/ebr.ml: Arena Array Atomic List Memsim Node Packed Pool
