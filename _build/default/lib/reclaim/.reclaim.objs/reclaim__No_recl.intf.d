lib/reclaim/no_recl.mli: Smr_intf
