(** Michael's lock-free ordered linked list [34], as a functor over a
    conservative reclamation scheme.

    This is the hazard-pointer-compatible list the paper evaluates (it
    restarts traversals at marked nodes instead of traversing marked
    chains like Harris's original list, which pointer-based schemes cannot
    support — see §5). Three protection slots are used: 0 for the
    successor, 1 for the current node, 2 for the predecessor.

    The list owns head/tail sentinel nodes; an external tail sentinel may
    be supplied so a hash table's buckets can share one. *)

module Make (R : Reclaim.Smr_intf.S) : sig
  include Set_intf.SET

  val create : ?tail:int -> R.t -> arena:Memsim.Arena.t -> t
  (** A new empty list using scheme instance [R.t]. [tail] reuses an
      existing tail-sentinel slot (for hash-table buckets). *)

  val hazard_slots : int
  (** Protection slots required per thread (3). *)

  val make_tail : R.t -> tid:int -> int
  (** Allocate a tail sentinel suitable for [create ?tail]. *)
end
