(** A Michael–Scott lock-free FIFO queue [38] with VBR reclamation — one
    of the compatible structures the paper lists (§1, §4) but does not
    evaluate; included as an extension.

    Integration notes:
    - The queue's head and tail are VBR entry-point words
      ({!Vbr_core.Vbr.make_root}): their version is the pointee's birth
      epoch, which rules out ABA on the head/tail swings.
    - Invalidation without marks (Assumption 2): a queue node's [next]
      goes NULL → node exactly once and is never written again, so by the
      time the node is retired (after the head swings past it) the field
      is already immutable — the mark mechanism is unnecessary.
    - [enqueue]'s linearization point is the versioned link CAS on the
      old tail's next; [dequeue]'s is the head swing, after which the old
      dummy is retired under an inner checkpoint (the value was read,
      epoch-validated, before the swing, as Figure 1 treats keys). *)

type t

val create : Vbr_core.Vbr.t -> t
(** An empty queue (allocates the initial dummy from thread 0's ctx). *)

val enqueue : t -> tid:int -> int -> unit
(** Add a value at the tail. Lock-free. *)

val dequeue : t -> tid:int -> int option
(** Remove the value at the head, or [None] when empty. Lock-free. *)

val is_empty : t -> tid:int -> bool

val length : t -> int
(** Quiescent use only (tests). *)

val to_list : t -> int list
(** Front-to-back values. Quiescent use only (tests). *)
