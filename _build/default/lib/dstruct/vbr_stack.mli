(** A Treiber lock-free stack [53] with VBR reclamation — the second
    extension structure (the paper cites Treiber's stack as the classic
    pool substrate).

    The top-of-stack is a VBR entry-point word; push aims its private
    node with {!Vbr_core.Vbr.refresh_next} (the raw-expected redirect,
    because across retries the node's next may reference a since-recycled
    former top) and publishes with a versioned root CAS; pop's root swing
    is unique, so exactly one popper retires each node. A popped node's
    [next] is never written again after publication, which provides
    Assumption 2's invalidation without marks. *)

type t

val create : Vbr_core.Vbr.t -> t
val push : t -> tid:int -> int -> unit
val pop : t -> tid:int -> int option
val is_empty : t -> tid:int -> bool

val length : t -> int
(** Quiescent use only (tests). *)

val to_list : t -> int list
(** Top-to-bottom values. Quiescent use only (tests). *)
