module Make (R : Reclaim.Smr_intf.S) = struct
  module L = Linked_list.Make (R)

  type t = { buckets : L.t array }

  let name = "hash/" ^ R.name
  let hazard_slots = L.hazard_slots

  let create r ~arena ~buckets =
    if buckets < 1 then invalid_arg "Hash_table.create: buckets < 1";
    let tail = L.make_tail r ~tid:0 in
    { buckets = Array.init buckets (fun _ -> L.create ~tail r ~arena) }

  let bucket t key =
    t.buckets.((key land max_int) mod Array.length t.buckets)

  let insert t ~tid key = L.insert (bucket t key) ~tid key
  let delete t ~tid key = L.delete (bucket t key) ~tid key
  let contains t ~tid key = L.contains (bucket t key) ~tid key

  let to_list t =
    Array.to_list t.buckets |> List.concat_map L.to_list |> List.sort compare

  let size t = Array.fold_left (fun acc b -> acc + L.size b) 0 t.buckets
end
