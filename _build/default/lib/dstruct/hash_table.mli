(** The paper's lock-free hash table (§5): a fixed array of buckets, each
    a Michael linked list, at load factor 1. All buckets share one tail
    sentinel and the same reclamation-scheme instance. *)

module Make (R : Reclaim.Smr_intf.S) : sig
  include Set_intf.SET

  val create : R.t -> arena:Memsim.Arena.t -> buckets:int -> t
  (** [create r ~arena ~buckets] — a table with [buckets] bucket lists.
      @raise Invalid_argument if [buckets < 1]. *)

  val hazard_slots : int
  (** Protection slots required per thread (3, same as the list). *)
end
