lib/dstruct/ms_queue.mli: Memsim Reclaim
