lib/dstruct/vbr_hash.ml: Array List Vbr_list
