lib/dstruct/skiplist.mli: Memsim Reclaim Set_intf
