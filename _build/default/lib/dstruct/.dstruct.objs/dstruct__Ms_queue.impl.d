lib/dstruct/ms_queue.ml: Arena Atomic List Memsim Node Packed Reclaim
