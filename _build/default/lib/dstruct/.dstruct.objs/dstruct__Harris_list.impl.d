lib/dstruct/harris_list.ml: Arena Atomic List Memsim Node Packed Reclaim Set_intf
