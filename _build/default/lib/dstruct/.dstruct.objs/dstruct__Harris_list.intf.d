lib/dstruct/harris_list.mli: Memsim Reclaim Set_intf
