lib/dstruct/linked_list.ml: Arena Atomic List Memsim Node Packed Reclaim Set_intf
