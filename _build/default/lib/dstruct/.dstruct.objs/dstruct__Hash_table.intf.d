lib/dstruct/hash_table.mli: Memsim Reclaim Set_intf
