lib/dstruct/vbr_stack.ml: Atomic List Memsim Vbr Vbr_core
