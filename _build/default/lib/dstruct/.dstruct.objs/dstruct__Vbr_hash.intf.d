lib/dstruct/vbr_hash.mli: Set_intf Vbr_core
