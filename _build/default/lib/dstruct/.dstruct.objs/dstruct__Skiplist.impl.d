lib/dstruct/skiplist.ml: Arena Array Atomic List Memsim Node Packed Reclaim Set_intf
