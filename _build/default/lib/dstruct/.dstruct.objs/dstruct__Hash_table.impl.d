lib/dstruct/hash_table.ml: Array Linked_list List Reclaim
