lib/dstruct/vbr_list.mli: Set_intf Vbr_core
