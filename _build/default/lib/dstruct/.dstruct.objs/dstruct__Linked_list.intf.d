lib/dstruct/linked_list.mli: Memsim Reclaim Set_intf
