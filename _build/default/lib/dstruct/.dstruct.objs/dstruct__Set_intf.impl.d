lib/dstruct/set_intf.ml:
