lib/dstruct/vbr_list.ml: Atomic List Memsim Set_intf Vbr Vbr_core
