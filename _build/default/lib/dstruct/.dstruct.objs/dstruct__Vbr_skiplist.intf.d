lib/dstruct/vbr_skiplist.mli: Set_intf Vbr_core
