lib/dstruct/vbr_queue.mli: Vbr_core
