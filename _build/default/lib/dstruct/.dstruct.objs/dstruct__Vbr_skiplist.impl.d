lib/dstruct/vbr_skiplist.ml: Array Atomic List Memsim Set_intf Skiplist Vbr Vbr_core
