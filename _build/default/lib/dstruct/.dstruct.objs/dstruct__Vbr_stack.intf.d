lib/dstruct/vbr_stack.mli: Vbr_core
