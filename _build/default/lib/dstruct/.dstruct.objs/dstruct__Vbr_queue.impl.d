lib/dstruct/vbr_queue.ml: Atomic List Memsim Vbr Vbr_core
