lib/dstruct/treiber_stack.ml: Arena Atomic List Memsim Node Packed Reclaim
