lib/dstruct/treiber_stack.mli: Memsim Reclaim
