(** Harris's original lock-free linked list [22], as a functor over a
    reclamation scheme — the applicability ablation of §5.

    Unlike Michael's variant ({!Linked_list}), a traversal here walks
    *through* marked nodes and snips whole marked segments with one CAS.
    Because a traversal can stand on a marked, already-unlinked node and
    keep following its pointers, pointer-based schemes (HP, HE, IBR)
    cannot protect it — the node a hazard would validate against may
    already be retired ("Pointer-based methods require that it would not
    be possible to reach a reclaimed node by traversing the data structure
    from a protected node"). Instantiate only with NoRecl or EBR; the VBR
    counterpart is {!Vbr_list}, whose Figure-3 find is already the
    Harris-style segment-trimming traversal.

    Retirement protocol: the thread whose CAS snips a marked segment
    retires every node of that segment (each node is unlinked exactly once
    because segments cannot overlap). *)

module Make (R : Reclaim.Smr_intf.S) : sig
  include Set_intf.SET

  val create : R.t -> arena:Memsim.Arena.t -> t
end
