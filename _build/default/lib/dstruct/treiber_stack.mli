(** Treiber's lock-free stack [53] as a functor over a conservative
    reclamation scheme — the baseline counterpart of {!Vbr_stack}.

    A popper protects the top node (slot 0) through the validated read,
    so the swing CAS cannot suffer ABA from recycling; pushers need no
    protection (a recycled expected top makes the CAS succeed on a node
    that genuinely is the current top, which is harmless). *)

module Make (R : Reclaim.Smr_intf.S) : sig
  type t

  val name : string
  val create : R.t -> arena:Memsim.Arena.t -> t
  val push : t -> tid:int -> int -> unit
  val pop : t -> tid:int -> int option
  val is_empty : t -> tid:int -> bool
  val hazard_slots : int

  val length : t -> int
  (** Quiescent use only (tests). *)

  val to_list : t -> int list
  (** Top-to-bottom values. Quiescent use only (tests). *)
end
