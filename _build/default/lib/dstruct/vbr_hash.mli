(** The VBR-integrated hash table: fixed bucket array of {!Vbr_list}
    buckets sharing one tail sentinel and one VBR instance (§5, load
    factor 1). *)

type t

val create : Vbr_core.Vbr.t -> buckets:int -> t
(** @raise Invalid_argument if [buckets < 1]. *)

include Set_intf.SET with type t := t
