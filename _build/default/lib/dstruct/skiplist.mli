(** Lock-free skiplist (Herlihy–Shavit [27]) with Fraser's amendment [20]
    for safe reclamation, as a functor over a conservative reclamation
    scheme — the skiplist of the paper's Figure 2d–2f.

    Reclamation protocol (the Fraser amendment): the thread whose CAS
    marks the *bottom-level* next pointer is the logical remover; it then
    runs a full [find], which physically unlinks the victim from every
    level it is still linked at, and only then retires it — so a node is
    retired only after its final unlink. An inserter that observes its
    node becoming marked while it is still linking upper levels runs a
    closing [find] for the same guarantee, and keeps its own node
    protected ({!Reclaim.Smr_intf.S.protect_own}) throughout.

    Tower heights are geometric (p = 1/2), capped at {!max_level};
    per-thread deterministic PRNGs make runs reproducible. *)

val max_level : int
(** Tower-height cap (16). *)

module Make (R : Reclaim.Smr_intf.S) : sig
  include Set_intf.SET

  val create : R.t -> arena:Memsim.Arena.t -> t
  val hazard_slots : int
  (** Protection slots required per thread: [2*max_level + 2]. *)
end
