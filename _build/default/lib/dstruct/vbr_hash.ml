type t = { buckets : Vbr_list.t array }

let name = "hash/VBR"

let create vbr ~buckets =
  if buckets < 1 then invalid_arg "Vbr_hash.create: buckets < 1";
  let tail, tail_birth = Vbr_list.make_tail vbr in
  {
    buckets =
      Array.init buckets (fun _ ->
          Vbr_list.create_with_tail vbr ~tail ~tail_birth);
  }

let bucket t key = t.buckets.((key land max_int) mod Array.length t.buckets)
let insert t ~tid key = Vbr_list.insert (bucket t key) ~tid key
let delete t ~tid key = Vbr_list.delete (bucket t key) ~tid key
let contains t ~tid key = Vbr_list.contains (bucket t key) ~tid key

let to_list t =
  Array.to_list t.buckets
  |> List.concat_map Vbr_list.to_list
  |> List.sort compare

let size t = Array.fold_left (fun acc b -> acc + Vbr_list.size b) 0 t.buckets
