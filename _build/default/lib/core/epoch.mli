(** The shared global epoch counter [e] (§4.1).

    Epochs start at 1 so that [Node.no_epoch] (-1) compares below every
    real epoch. VBR advances the counter only when an allocation finds a
    node whose retire epoch equals the current epoch, which is what makes
    its epoch traffic negligible compared to EBR/HE/IBR. *)

type t

val create : unit -> t
(** A fresh counter at epoch 1. *)

val get : t -> int
(** Current epoch. *)

val try_advance : t -> expected:int -> bool
(** [try_advance t ~expected] CASes the counter from [expected] to
    [expected + 1] (Figure 1, line 4). Returns whether this thread did the
    increment; a [false] means some other thread already moved the epoch,
    which is just as good for the caller. *)

val advance_counted : t -> int
(** Number of successful increments so far (stats). *)
