lib/core/vbr.ml: Arena Array Atomic Epoch Format List Memsim Node Packed Pool
