lib/core/epoch.ml: Atomic
