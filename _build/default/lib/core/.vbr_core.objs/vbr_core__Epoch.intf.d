lib/core/epoch.mli:
