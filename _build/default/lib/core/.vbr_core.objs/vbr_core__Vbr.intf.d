lib/core/vbr.mli: Atomic Epoch Format Memsim
