(** The simulated data-structure node.

    One node per arena slot. Slots are type-preserving (§2 of the paper): a
    slot is created once with a fixed tower height ([level]) and is reused
    for its whole life with that same shape, so a stale reader always finds
    a structurally valid node — possibly with recycled contents, which is
    exactly the hazard the reclamation schemes must handle.

    Field roles:
    - [key]: the immutable-per-lifecycle key. Written only between
      allocation and publication; stale readers may observe a recycled
      value, which VBR detects via the epoch check.
    - [birth], [retire]: the birth/retire epochs (or eras, for HE/IBR).
      [retire = no_epoch] means "not retired" (the paper's ⊥).
    - [next]: one packed word ({!Packed}) per tower level. Lists use level
      1; skiplist towers have geometric height. *)

type t = {
  mutable key : int;
  level : int;  (** tower height, fixed at slot creation *)
  birth : int Atomic.t;
  retire : int Atomic.t;
  next : int Atomic.t array;  (** length [level]; packed words *)
}

val no_epoch : int
(** The ⊥ retire epoch (-1). Global epochs start at 1, so every real epoch
    compares greater than [no_epoch]. *)

val make : level:int -> t
(** A fresh node: [key = 0], [birth = 0], [retire = no_epoch], every next
    word [Packed.null].
    @raise Invalid_argument if [level < 1]. *)

val next0 : t -> int Atomic.t
(** The level-0 next word — the only one for list nodes. *)

val pp : Format.formatter -> t -> unit
(** Debug printer. *)
