type t = {
  mutable key : int;
  level : int;
  birth : int Atomic.t;
  retire : int Atomic.t;
  next : int Atomic.t array;
}

let no_epoch = -1

let make ~level =
  if level < 1 then invalid_arg "Node.make: level must be >= 1";
  {
    key = 0;
    level;
    birth = Atomic.make 0;
    retire = Atomic.make no_epoch;
    next = Array.init level (fun _ -> Atomic.make Packed.null);
  }

let next0 n = Array.unsafe_get n.next 0

let pp ppf n =
  Format.fprintf ppf "{key=%d; level=%d; birth=%d; retire=%d; next0=%a}" n.key
    n.level (Atomic.get n.birth) (Atomic.get n.retire) Packed.pp
    (Atomic.get (next0 n))
