lib/memsim/pool.mli: Arena Global_pool
