lib/memsim/global_pool.mli:
