lib/memsim/node.mli: Atomic Format
