lib/memsim/packed.mli: Format
