lib/memsim/node.ml: Array Atomic Format Packed
