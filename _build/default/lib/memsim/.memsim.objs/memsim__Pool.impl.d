lib/memsim/pool.ml: Arena Array Global_pool List Node
