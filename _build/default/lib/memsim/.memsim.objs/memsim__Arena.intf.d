lib/memsim/arena.mli: Node
