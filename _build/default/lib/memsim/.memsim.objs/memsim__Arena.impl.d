lib/memsim/arena.ml: Array Atomic Lazy Node Packed Printf
