lib/memsim/packed.ml: Format Printf
