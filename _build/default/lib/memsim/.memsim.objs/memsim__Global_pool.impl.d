lib/memsim/global_pool.ml: Array Atomic Printf
