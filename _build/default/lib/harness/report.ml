let rule width = print_endline (String.make width '-')

let print_series ~title ~ylabel ~columns ~rows =
  let width = 10 + (11 * List.length columns) in
  print_newline ();
  rule width;
  Printf.printf "%s  (%s)\n" title ylabel;
  rule width;
  Printf.printf "%-10s" "threads";
  List.iter (fun c -> Printf.printf "%10s " c) columns;
  print_newline ();
  List.iter
    (fun (threads, values) ->
      Printf.printf "%-10d" threads;
      List.iter (fun v -> Printf.printf "%10.3f " v) values;
      print_newline ())
    rows;
  (* Relative view: each column over the first (baseline) column. *)
  (match rows with
  | (_, base0 :: _) :: _ when base0 > 0.0 ->
      Printf.printf "%-10s" "(rel)";
      print_newline ();
      List.iter
        (fun (threads, values) ->
          match values with
          | base :: _ when base > 0.0 ->
              Printf.printf "%-10d" threads;
              List.iter (fun v -> Printf.printf "%9.2fx " (v /. base)) values;
              print_newline ()
          | _ -> ())
        rows
  | _ -> ());
  rule width

let print_counts ~title ~columns ~rows =
  let width = 12 + (13 * List.length columns) in
  print_newline ();
  rule width;
  print_endline title;
  rule width;
  Printf.printf "%-12s" "ops";
  List.iter (fun c -> Printf.printf "%12s " c) columns;
  print_newline ();
  List.iter
    (fun (ops, values) ->
      Printf.printf "%-12d" ops;
      List.iter (fun v -> Printf.printf "%12d " v) values;
      print_newline ())
    rows;
  rule width
