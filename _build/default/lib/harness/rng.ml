type t = { mutable s : int }

let create ~seed = { s = (seed * 0x1E3779B97F4A7C15) lor 1 }

let next t =
  t.s <- t.s + 0x1E3779B97F4A7C15;
  let z = t.s in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land max_int

let below t n =
  if n <= 0 then invalid_arg "Rng.below: n <= 0";
  next t mod n
