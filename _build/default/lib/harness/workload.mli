(** The three §5.1 workload profiles and operation sampling. *)

type op = Insert | Delete | Search

type profile = {
  pname : string;
  inserts : int;  (** percent *)
  deletes : int;  (** percent *)
  searches : int;  (** percent *)
}

val search_intensive : profile
(** 10 % inserts, 10 % deletes, 80 % searches. *)

val balanced : profile
(** 25 % inserts, 25 % deletes, 50 % searches. *)

val update_intensive : profile
(** 50 % inserts, 50 % deletes. *)

val all : profile list
val of_name : string -> profile option
val pick : profile -> Rng.t -> op
(** Sample one operation according to the profile's percentages. *)

val prefill_member : int -> bool
(** Deterministic half-the-range prefill predicate: whether key [k]
    belongs to the initial set (§5.1: "filling the data-structure to half
    of its range size"). *)
