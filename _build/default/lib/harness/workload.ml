type op = Insert | Delete | Search

type profile = {
  pname : string;
  inserts : int;
  deletes : int;
  searches : int;
}

let search_intensive =
  { pname = "read-heavy"; inserts = 10; deletes = 10; searches = 80 }

let balanced = { pname = "balanced"; inserts = 25; deletes = 25; searches = 50 }

let update_intensive =
  { pname = "update-heavy"; inserts = 50; deletes = 50; searches = 0 }

let all = [ search_intensive; balanced; update_intensive ]

let of_name s =
  List.find_opt (fun p -> p.pname = s) all

let pick p rng =
  let r = Rng.below rng 100 in
  if r < p.inserts then Insert
  else if r < p.inserts + p.deletes then Delete
  else Search

(* A cheap avalanche so roughly every second key, spread uniformly, is in
   the initial set regardless of the range. *)
let prefill_member k =
  let z = (k + 0x12345) * 0x1E3779B97F4A7C15 in
  let z = (z lxor (z lsr 29)) * 0x3F58476D1CE4E5B9 in
  (z lsr 13) land 1 = 0
