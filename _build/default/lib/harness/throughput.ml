type point = { threads : int; mops : float; stddev : float; repeats : int }

let prefill (inst : Registry.instance) ~range =
  for k = 0 to range - 1 do
    if Workload.prefill_member k then ignore (inst.Registry.insert ~tid:0 k)
  done

let worker (inst : Registry.instance) ~tid ~range profile start stop count =
  let rng = Rng.create ~seed:((tid * 7919) + 13) in
  (* Spin until the coordinator releases everyone at once. *)
  while not (Atomic.get start) do
    Domain.cpu_relax ()
  done;
  let ops = ref 0 in
  (try
     while not (Atomic.get stop) do
       let k = Rng.below rng range in
       (match Workload.pick profile rng with
       | Workload.Insert -> ignore (inst.Registry.insert ~tid k)
       | Workload.Delete -> ignore (inst.Registry.delete ~tid k)
       | Workload.Search -> ignore (inst.Registry.contains ~tid k));
       incr ops
     done
   with Memsim.Arena.Exhausted ->
     (* Only NoRecl can get here (it never reuses); its sized headroom ran
        out, so this worker stops early and the reported throughput is a
        slight underestimate for NoRecl. *)
     ());
  count := !ops

let one_run ~make ~profile ~threads ~range ~duration =
  let inst = make () in
  prefill inst ~range;
  let start = Atomic.make false and stop = Atomic.make false in
  let counts = Array.init threads (fun _ -> ref 0) in
  let domains =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            worker inst ~tid ~range profile start stop counts.(tid)))
  in
  let t0 = Unix.gettimeofday () in
  Atomic.set start true;
  Unix.sleepf duration;
  Atomic.set stop true;
  let t1 = Unix.gettimeofday () in
  List.iter Domain.join domains;
  let total = Array.fold_left (fun acc c -> acc + !c) 0 counts in
  float_of_int total /. (t1 -. t0) /. 1e6

let measure ~make ~profile ~threads ~range ~duration ~repeats =
  let samples =
    List.init repeats (fun _ -> one_run ~make ~profile ~threads ~range ~duration)
  in
  let n = float_of_int repeats in
  let mean = List.fold_left ( +. ) 0.0 samples /. n in
  let var =
    List.fold_left (fun acc s -> acc +. ((s -. mean) ** 2.0)) 0.0 samples /. n
  in
  { threads; mops = mean; stddev = sqrt var; repeats }

let run_stalled ~make ~profile ~threads ~range ~checkpoints
    ~ops_per_checkpoint =
  let inst = make () in
  prefill inst ~range;
  (* The last thread id pins itself and never proceeds. *)
  inst.Registry.pin ~tid:(threads - 1);
  let workers = max 1 (threads - 1) in
  let samples = ref [] in
  let total = ref 0 in
  for _cp = 1 to checkpoints do
    let domains =
      List.init workers (fun tid ->
          Domain.spawn (fun () ->
              let rng = Rng.create ~seed:((tid * 31) + !total + 1) in
              for _ = 1 to ops_per_checkpoint / workers do
                let k = Rng.below rng range in
                match Workload.pick profile rng with
                | Workload.Insert -> ignore (inst.Registry.insert ~tid k)
                | Workload.Delete -> ignore (inst.Registry.delete ~tid k)
                | Workload.Search -> ignore (inst.Registry.contains ~tid k)
              done))
    in
    List.iter Domain.join domains;
    total := !total + ops_per_checkpoint;
    samples :=
      (!total, inst.Registry.unreclaimed (), inst.Registry.allocated ())
      :: !samples
  done;
  List.rev !samples
