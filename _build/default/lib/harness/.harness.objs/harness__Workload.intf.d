lib/harness/workload.mli: Rng
