lib/harness/registry.ml: Arena Dstruct Global_pool List Memsim Option Printf Reclaim Vbr_core
