lib/harness/rng.ml:
