lib/harness/registry.mli:
