lib/harness/report.mli:
