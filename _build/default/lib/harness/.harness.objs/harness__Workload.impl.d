lib/harness/workload.ml: List Rng
