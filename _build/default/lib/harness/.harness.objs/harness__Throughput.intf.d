lib/harness/throughput.mli: Registry Workload
