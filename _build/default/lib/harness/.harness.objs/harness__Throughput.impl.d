lib/harness/throughput.ml: Array Atomic Domain List Memsim Registry Rng Unix Workload
