lib/harness/rng.mli:
