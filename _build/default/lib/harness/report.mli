(** Fixed-width text tables for the regenerated figures. *)

val print_series :
  title:string ->
  ylabel:string ->
  columns:string list ->
  rows:(int * float list) list ->
  unit
(** One figure panel: [rows] are (thread count, one value per column);
    columns are scheme names. Also prints each column normalised to the
    first column (the NoRecl baseline) when that value is positive. *)

val print_counts :
  title:string -> columns:string list -> rows:(int * int list) list -> unit
(** Integer-valued series (robustness: unreclaimed nodes vs. ops). *)
