(** The §5.1 fixed-time micro-benchmark runner.

    One measurement point: build an instance, prefill it to half the key
    range, release [threads] worker domains that sample operations from a
    workload profile for [duration] seconds, and report million operations
    per second. Each point is repeated and averaged. *)

type point = {
  threads : int;
  mops : float;  (** mean throughput, million ops/second *)
  stddev : float;
  repeats : int;
}

val prefill : Registry.instance -> range:int -> unit
(** Insert the deterministic half-range initial set from thread 0. *)

val measure :
  make:(unit -> Registry.instance) ->
  profile:Workload.profile ->
  threads:int ->
  range:int ->
  duration:float ->
  repeats:int ->
  point
(** One averaged measurement point. A fresh instance (and prefill) per
    repeat. *)

val run_stalled :
  make:(unit -> Registry.instance) ->
  profile:Workload.profile ->
  threads:int ->
  range:int ->
  checkpoints:int ->
  ops_per_checkpoint:int ->
  (int * int * int) list
(** The robustness experiment: thread [threads-1] pins itself mid-operation
    and stalls forever while the others execute [ops_per_checkpoint]
    operations between successive samples. Returns
    [(total_ops, unreclaimed, allocated)] per checkpoint — under EBR the
    unreclaimed count grows with traffic; under VBR/HP it stays bounded. *)
