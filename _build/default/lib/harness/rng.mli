(** Deterministic per-thread pseudo-random numbers (splitmix64-style on
    OCaml's 63-bit ints). Each worker thread owns one state, so the
    benchmark loop shares nothing and runs are reproducible from the
    seed. *)

type t

val create : seed:int -> t
val next : t -> int
(** Next raw value in [0, 2^62). *)

val below : t -> int -> int
(** [below t n] is uniform-ish in [0, n). @raise Invalid_argument if
    [n <= 0]. *)
