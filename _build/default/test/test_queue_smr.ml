(* The conservative MS queue and Treiber stack functors, across all five
   schemes: model equivalence, recycling, and concurrent no-loss/no-dup. *)

type qh = {
  qname : string;
  enq : tid:int -> int -> unit;
  deq : tid:int -> int option;
  qlist : unit -> int list;
  qallocated : unit -> int;
}

type sh = {
  sname : string;
  push : tid:int -> int -> unit;
  pop : tid:int -> int option;
  slist : unit -> int list;
  sallocated : unit -> int;
}

let mk_queue (module R : Reclaim.Smr_intf.S) ?(n_threads = 4) () =
  let arena = Memsim.Arena.create ~capacity:300_000 in
  let global = Memsim.Global_pool.create ~max_level:1 in
  let r =
    R.create ~arena ~global ~n_threads ~hazards:2 ~retire_threshold:8
      ~epoch_freq:4
  in
  let module Q = Dstruct.Ms_queue.Make (R) in
  let q = Q.create r ~arena in
  {
    qname = Q.name;
    enq = (fun ~tid v -> Q.enqueue q ~tid v);
    deq = (fun ~tid -> Q.dequeue q ~tid);
    qlist = (fun () -> Q.to_list q);
    qallocated = (fun () -> Memsim.Arena.allocated arena);
  }

let mk_stack (module R : Reclaim.Smr_intf.S) ?(n_threads = 4) () =
  let arena = Memsim.Arena.create ~capacity:300_000 in
  let global = Memsim.Global_pool.create ~max_level:1 in
  let r =
    R.create ~arena ~global ~n_threads ~hazards:1 ~retire_threshold:8
      ~epoch_freq:4
  in
  let module S = Dstruct.Treiber_stack.Make (R) in
  let s = S.create r ~arena in
  {
    sname = S.name;
    push = (fun ~tid v -> S.push s ~tid v);
    pop = (fun ~tid -> S.pop s ~tid);
    slist = (fun () -> S.to_list s);
    sallocated = (fun () -> Memsim.Arena.allocated arena);
  }

let schemes : (string * (module Reclaim.Smr_intf.S)) list =
  [
    ("NoRecl", (module Reclaim.No_recl));
    ("EBR", (module Reclaim.Ebr));
    ("HP", (module Reclaim.Hp));
    ("HE", (module Reclaim.He));
    ("IBR", (module Reclaim.Ibr));
  ]

let queue_model m () =
  let q = mk_queue m () in
  let model = Queue.create () in
  let rng = Random.State.make [| 17 |] in
  for tick = 1 to 2_000 do
    if Random.State.bool rng then begin
      q.enq ~tid:0 tick;
      Queue.push tick model
    end
    else begin
      let expected =
        if Queue.is_empty model then None else Some (Queue.pop model)
      in
      Alcotest.(check (option int)) "deq matches" expected (q.deq ~tid:0)
    end
  done;
  Alcotest.(check (list int)) "final content"
    (List.of_seq (Queue.to_seq model))
    (q.qlist ())

let queue_recycles m ~expect_reuse () =
  let q = mk_queue m () in
  for i = 1 to 2_000 do
    q.enq ~tid:0 i;
    ignore (q.deq ~tid:0)
  done;
  if expect_reuse then
    Alcotest.(check bool) "bounded arena" true (q.qallocated () < 500)
  else Alcotest.(check bool) "NoRecl grows" true (q.qallocated () > 1_500)

let queue_concurrent m () =
  let producers = 2 and consumers = 2 in
  let per = 20_000 in
  let q = mk_queue m ~n_threads:(producers + consumers) () in
  let ps =
    List.init producers (fun tid ->
        Domain.spawn (fun () ->
            for seq = 1 to per do
              q.enq ~tid ((tid * 1_000_000) + seq)
            done))
  in
  let drained = Atomic.make 0 in
  let cs =
    List.init consumers (fun i ->
        Domain.spawn (fun () ->
            let tid = producers + i in
            let got = ref [] in
            while Atomic.get drained < producers * per do
              match q.deq ~tid with
              | Some v ->
                  got := v :: !got;
                  Atomic.incr drained
              | None -> Domain.cpu_relax ()
            done;
            !got))
  in
  List.iter Domain.join ps;
  let all = List.concat_map Domain.join cs in
  Alcotest.(check int) "nothing lost" (producers * per) (List.length all);
  Alcotest.(check int) "nothing duplicated" (List.length all)
    (List.length (List.sort_uniq compare all))

let stack_model m () =
  let s = mk_stack m () in
  let model = Stack.create () in
  let rng = Random.State.make [| 23 |] in
  for tick = 1 to 2_000 do
    if Random.State.bool rng then begin
      s.push ~tid:0 tick;
      Stack.push tick model
    end
    else begin
      let expected =
        if Stack.is_empty model then None else Some (Stack.pop model)
      in
      Alcotest.(check (option int)) "pop matches" expected (s.pop ~tid:0)
    end
  done;
  Alcotest.(check (list int)) "final content"
    (List.of_seq (Stack.to_seq model))
    (s.slist ())

let stack_recycles m ~expect_reuse () =
  let s = mk_stack m () in
  for i = 1 to 2_000 do
    s.push ~tid:0 i;
    ignore (s.pop ~tid:0)
  done;
  if expect_reuse then
    Alcotest.(check bool) "bounded arena" true (s.sallocated () < 500)
  else Alcotest.(check bool) "NoRecl grows" true (s.sallocated () > 1_500)

let stack_concurrent m () =
  let pushers = 2 and poppers = 2 in
  let per = 20_000 in
  let s = mk_stack m ~n_threads:(pushers + poppers) () in
  let ps =
    List.init pushers (fun tid ->
        Domain.spawn (fun () ->
            for seq = 1 to per do
              s.push ~tid ((tid * 1_000_000) + seq)
            done))
  in
  let popped = Atomic.make 0 in
  let cs =
    List.init poppers (fun i ->
        Domain.spawn (fun () ->
            let tid = pushers + i in
            let got = ref [] in
            while Atomic.get popped < pushers * per do
              match s.pop ~tid with
              | Some v ->
                  got := v :: !got;
                  Atomic.incr popped
              | None -> Domain.cpu_relax ()
            done;
            !got))
  in
  List.iter Domain.join ps;
  let all = List.concat_map Domain.join cs in
  Alcotest.(check int) "nothing lost" (pushers * per) (List.length all);
  Alcotest.(check int) "nothing duplicated" (List.length all)
    (List.length (List.sort_uniq compare all))

let () =
  let suites =
    List.concat_map
      (fun (sname, m) ->
        [
          ( "queue/" ^ sname,
            [
              Alcotest.test_case "model" `Quick (queue_model m);
              Alcotest.test_case "recycling" `Quick
                (queue_recycles m ~expect_reuse:(sname <> "NoRecl"));
              Alcotest.test_case "concurrent" `Slow (queue_concurrent m);
            ] );
          ( "stack/" ^ sname,
            [
              Alcotest.test_case "model" `Quick (stack_model m);
              Alcotest.test_case "recycling" `Quick
                (stack_recycles m ~expect_reuse:(sname <> "NoRecl"));
              Alcotest.test_case "concurrent" `Slow (stack_concurrent m);
            ] );
        ])
      schemes
  in
  Alcotest.run "queue_smr" suites
