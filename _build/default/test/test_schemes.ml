(* Unit tests for the conservative reclamation schemes: protection
   semantics (a protected node is never recycled), grace periods,
   robustness differences, and the protect/transfer machinery. *)

open Memsim

(* A monomorphic handle over a scheme instance, so tests can be written
   once for all five schemes without the module type escaping. *)
type sh = {
  sname : string;
  arena : Arena.t;
  salloc : tid:int -> level:int -> key:int -> int;
  sretire : tid:int -> int -> unit;
  sbegin : tid:int -> unit;
  send : tid:int -> unit;
  sprotect : tid:int -> slot:int -> (unit -> Packed.t) -> Packed.t;
  stransfer : tid:int -> src:int -> dst:int -> unit;
  sunreclaimed : unit -> int;
}

let setup (module R : Reclaim.Smr_intf.S) ?(n_threads = 2) ?(hazards = 4)
    ?(retire_threshold = 2) ?(epoch_freq = 1) () =
  let arena = Arena.create ~capacity:1_000 in
  let global = Global_pool.create ~max_level:1 in
  let r =
    R.create ~arena ~global ~n_threads ~hazards ~retire_threshold ~epoch_freq
  in
  {
    sname = R.name;
    arena;
    salloc = (fun ~tid ~level ~key -> R.alloc r ~tid ~level ~key);
    sretire = (fun ~tid i -> R.retire r ~tid i);
    sbegin = (fun ~tid -> R.begin_op r ~tid);
    send = (fun ~tid -> R.end_op r ~tid);
    sprotect = (fun ~tid ~slot read -> R.protect r ~tid ~slot read);
    stransfer = (fun ~tid ~src ~dst -> R.transfer r ~tid ~src ~dst);
    sunreclaimed = (fun () -> R.unreclaimed r);
  }

(* Shared behaviour: alloc gives a clean node; retire/alloc cycles reuse
   slots (except NoRecl); freed/unreclaimed counters move sensibly. *)
let test_alloc_reset m () =
  let h = setup m () in
  let i = h.salloc ~tid:0 ~level:1 ~key:11 in
  let n = Arena.get h.arena i in
  (* Dirty the node, retire it, and check a re-allocation resets it. *)
  Atomic.set (Node.next0 n) (Packed.pack ~marked:true ~index:i ~version:0);
  h.sbegin ~tid:0;
  h.send ~tid:0;
  h.sretire ~tid:0 i;
  (* Drive reclamation with more traffic. *)
  for j = 0 to 19 do
    let x = h.salloc ~tid:0 ~level:1 ~key:j in
    h.sretire ~tid:0 x
  done;
  let fresh = h.salloc ~tid:0 ~level:1 ~key:99 in
  let fn = Arena.get h.arena fresh in
  Alcotest.(check int) "key set" 99 fn.Node.key;
  Alcotest.(check bool) "next cleaned" false
    (Packed.is_marked (Atomic.get (Node.next0 fn)))

let test_reuse_or_not m ~expect_reuse () =
  let h = setup m () in
  for k = 0 to 49 do
    let i = h.salloc ~tid:0 ~level:1 ~key:k in
    h.sretire ~tid:0 i
  done;
  let used = Arena.allocated h.arena in
  if expect_reuse then
    Alcotest.(check bool) "slots were reused" true (used < 50)
  else Alcotest.(check int) "NoRecl always fresh" 50 used

(* EBR: a node retired while another thread is inside an operation that
   began before the retirement must not be recycled until that operation
   ends. *)
let test_ebr_grace () =
  let h = setup (module Reclaim.Ebr) () in
  let i = h.salloc ~tid:0 ~level:1 ~key:1 in
  h.sbegin ~tid:1;
  (* Thread 1 is now pinned at the current epoch. *)
  h.sretire ~tid:0 i;
  for k = 0 to 63 do
    let x = h.salloc ~tid:0 ~level:1 ~key:k in
    h.sretire ~tid:0 x
  done;
  (* Nothing from this era can be freed while tid 1 is in its op... *)
  Alcotest.(check bool) "pinned by reader" true (h.sunreclaimed () > 0);
  let before = Arena.allocated h.arena in
  h.send ~tid:1;
  (* ...but once it leaves, traffic reclaims everything. *)
  for k = 0 to 63 do
    let x = h.salloc ~tid:0 ~level:1 ~key:k in
    h.sretire ~tid:0 x
  done;
  Alcotest.(check bool) "reuse resumed" true
    (Arena.allocated h.arena < before + 64)

(* HP: a slot named by a hazard pointer survives any amount of retire
   traffic; clearing the hazard releases it. *)
let test_hp_pinning () =
  let h = setup (module Reclaim.Hp) () in
  let i = h.salloc ~tid:0 ~level:1 ~key:1 in
  (Arena.get h.arena i).Node.key <- 123;
  (* Reader protects i through a stable read. *)
  let w = Packed.pack ~marked:false ~index:i ~version:0 in
  let got = h.sprotect ~tid:1 ~slot:0 (fun () -> w) in
  Alcotest.(check int) "protect returns the word" w got;
  h.sretire ~tid:0 i;
  for k = 0 to 99 do
    let x = h.salloc ~tid:0 ~level:1 ~key:k in
    h.sretire ~tid:0 x
  done;
  Alcotest.(check int) "hazarded key intact" 123 (Arena.get h.arena i).Node.key;
  Alcotest.(check bool) "i still unreclaimed" true (h.sunreclaimed () > 0);
  h.send ~tid:1;
  (* After release, i must eventually be recycled. *)
  let reused = ref false in
  for k = 0 to 99 do
    let x = h.salloc ~tid:0 ~level:1 ~key:k in
    if x = i then reused := true;
    h.sretire ~tid:0 x
  done;
  Alcotest.(check bool) "slot reused after release" true !reused

let test_hp_protect_validates () =
  (* protect must chase a moving field until two reads agree. *)
  let h = setup (module Reclaim.Hp) () in
  let a = h.salloc ~tid:0 ~level:1 ~key:1 in
  let b = h.salloc ~tid:0 ~level:1 ~key:2 in
  let flips = ref 0 in
  let read () =
    incr flips;
    let v = if !flips <= 3 then if !flips mod 2 = 1 then a else b else b in
    Packed.pack ~marked:false ~index:v ~version:0
  in
  let w = h.sprotect ~tid:0 ~slot:0 read in
  Alcotest.(check int) "settles on the stable value" b (Packed.index w)

let test_hp_transfer () =
  let h = setup (module Reclaim.Hp) () in
  let i = h.salloc ~tid:0 ~level:1 ~key:5 in
  (Arena.get h.arena i).Node.key <- 5;
  let w = Packed.pack ~marked:false ~index:i ~version:0 in
  ignore (h.sprotect ~tid:1 ~slot:0 (fun () -> w));
  (* Move the protection to slot 1 and overwrite slot 0. *)
  h.stransfer ~tid:1 ~src:0 ~dst:1;
  ignore (h.sprotect ~tid:1 ~slot:0 (fun () -> Packed.null));
  h.sretire ~tid:0 i;
  for k = 0 to 99 do
    let x = h.salloc ~tid:0 ~level:1 ~key:k in
    h.sretire ~tid:0 x
  done;
  Alcotest.(check int) "still pinned via transferred slot" 5
    (Arena.get h.arena i).Node.key

(* HE/IBR: retired nodes whose lifetime intersects a published era /
   reservation survive; once released, they are recycled. *)
let test_era_pinning m () =
  let h = setup m () in
  (* Reader begins an op and protects a read — publishing its era. *)
  let i = h.salloc ~tid:0 ~level:1 ~key:1 in
  h.sbegin ~tid:1;
  let w = Packed.pack ~marked:false ~index:i ~version:0 in
  ignore (h.sprotect ~tid:1 ~slot:0 (fun () -> w));
  h.sretire ~tid:0 i;
  for k = 0 to 199 do
    let x = h.salloc ~tid:0 ~level:1 ~key:k in
    h.sretire ~tid:0 x
  done;
  Alcotest.(check bool)
    (h.sname ^ ": something stays pinned while reader active")
    true
    (h.sunreclaimed () > 0);
  h.send ~tid:1;
  for k = 0 to 199 do
    let x = h.salloc ~tid:0 ~level:1 ~key:k in
    h.sretire ~tid:0 x
  done;
  Alcotest.(check bool)
    (h.sname ^ ": drains after release")
    true
    (h.sunreclaimed () <= 4)

(* Robustness contrast (the paper's §1 motivation): with a stalled reader
   pinned in an operation, EBR's unreclaimed count grows without bound,
   while HP's stays bounded by the hazard count. *)
let test_robustness_contrast () =
  let traffic m =
    let h = setup m ~retire_threshold:8 () in
    h.sbegin ~tid:1;
    let i0 = h.salloc ~tid:0 ~level:1 ~key:0 in
    ignore
      (h.sprotect ~tid:1 ~slot:0 (fun () ->
           Packed.pack ~marked:false ~index:i0 ~version:0));
    (* tid 1 now stalls forever. tid 0 churns. *)
    for k = 0 to 499 do
      let x = h.salloc ~tid:0 ~level:1 ~key:k in
      h.sbegin ~tid:0;
      h.send ~tid:0;
      h.sretire ~tid:0 x
    done;
    h.sunreclaimed ()
  in
  let ebr = traffic (module Reclaim.Ebr) in
  let hp = traffic (module Reclaim.Hp) in
  Alcotest.(check bool) "EBR garbage grows with traffic" true (ebr >= 400);
  Alcotest.(check bool) "HP garbage stays bounded" true (hp <= 16)

let conservative_schemes : (string * (module Reclaim.Smr_intf.S)) list =
  [
    ("NoRecl", (module Reclaim.No_recl));
    ("EBR", (module Reclaim.Ebr));
    ("HP", (module Reclaim.Hp));
    ("HE", (module Reclaim.He));
    ("IBR", (module Reclaim.Ibr));
  ]

let () =
  let shared =
    List.concat_map
      (fun (sname, m) ->
        [
          Alcotest.test_case (sname ^ " alloc reset") `Quick
            (test_alloc_reset m);
          Alcotest.test_case
            (sname ^ if sname = "NoRecl" then " never reuses" else " reuses")
            `Quick
            (test_reuse_or_not m ~expect_reuse:(sname <> "NoRecl"));
        ])
      conservative_schemes
  in
  Alcotest.run "schemes"
    [
      ("shared", shared);
      ( "ebr",
        [ Alcotest.test_case "grace period" `Quick test_ebr_grace ] );
      ( "hp",
        [
          Alcotest.test_case "pinning" `Quick test_hp_pinning;
          Alcotest.test_case "protect validates" `Quick
            test_hp_protect_validates;
          Alcotest.test_case "transfer" `Quick test_hp_transfer;
        ] );
      ( "eras",
        [
          Alcotest.test_case "HE pinning" `Quick
            (test_era_pinning (module Reclaim.He));
          Alcotest.test_case "IBR pinning" `Quick
            (test_era_pinning (module Reclaim.Ibr));
        ] );
      ( "robustness",
        [ Alcotest.test_case "EBR vs HP contrast" `Quick test_robustness_contrast ] );
    ]
