(* Harris's original list (the applicability ablation): sequential model
   equivalence for its supported schemes (NoRecl, EBR) plus multi-domain
   stress, and segment-trim specific cases. *)

module Iset = Set.Make (Int)

type handle = {
  hname : string;
  insert : tid:int -> int -> bool;
  delete : tid:int -> int -> bool;
  contains : tid:int -> int -> bool;
  to_list : unit -> int list;
  unreclaimed : unit -> int;
}

let make (module R : Reclaim.Smr_intf.S) ?(n_threads = 5) () =
  let arena = Memsim.Arena.create ~capacity:500_000 in
  let global = Memsim.Global_pool.create ~max_level:1 in
  let r =
    R.create ~arena ~global ~n_threads ~hazards:3 ~retire_threshold:8
      ~epoch_freq:4
  in
  let module L = Dstruct.Harris_list.Make (R) in
  let l = L.create r ~arena in
  {
    hname = L.name;
    insert = (fun ~tid k -> L.insert l ~tid k);
    delete = (fun ~tid k -> L.delete l ~tid k);
    contains = (fun ~tid k -> L.contains l ~tid k);
    to_list = (fun () -> L.to_list l);
    unreclaimed = (fun () -> R.unreclaimed r);
  }

let variants : (string * (unit -> handle)) list =
  [
    ("NoRecl", fun () -> make (module Reclaim.No_recl) ());
    ("EBR", fun () -> make (module Reclaim.Ebr) ());
  ]

let test_basic mk () =
  let h = mk () in
  Alcotest.(check bool) "ins 5" true (h.insert ~tid:0 5);
  Alcotest.(check bool) "ins 1" true (h.insert ~tid:0 1);
  Alcotest.(check bool) "ins 9" true (h.insert ~tid:0 9);
  Alcotest.(check bool) "dup" false (h.insert ~tid:0 5);
  Alcotest.(check bool) "mem 1" true (h.contains ~tid:0 1);
  Alcotest.(check bool) "mem 9" true (h.contains ~tid:0 9);
  Alcotest.(check bool) "not 4" false (h.contains ~tid:0 4);
  Alcotest.(check bool) "del 5" true (h.delete ~tid:0 5);
  Alcotest.(check bool) "del 5 again" false (h.delete ~tid:0 5);
  Alcotest.(check (list int)) "rest" [ 1; 9 ] (h.to_list ())

let test_segment_trim mk () =
  (* Delete a run of adjacent keys, then traverse: the search must trim
     the whole marked segment and still answer correctly. *)
  let h = mk () in
  for k = 0 to 19 do
    ignore (h.insert ~tid:0 k)
  done;
  for k = 5 to 14 do
    Alcotest.(check bool) "del run" true (h.delete ~tid:0 k)
  done;
  Alcotest.(check bool) "before run" true (h.contains ~tid:0 4);
  Alcotest.(check bool) "inside run" false (h.contains ~tid:0 10);
  Alcotest.(check bool) "after run" true (h.contains ~tid:0 15);
  Alcotest.(check (list int)) "remaining"
    (List.init 5 Fun.id @ List.init 5 (fun i -> 15 + i))
    (h.to_list ())

type op = Ins of int | Del of int | Mem of int

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 50 300)
      (let* k = int_range 0 30 in
       let* c = int_range 0 2 in
       return (match c with 0 -> Ins k | 1 -> Del k | _ -> Mem k)))

let prop_model mk =
  QCheck2.Test.make ~name:"random trace matches Set model" ~count:50 gen_ops
    (fun ops ->
      let h = mk () in
      let m = ref Iset.empty in
      List.for_all
        (fun op ->
          let expected, m' =
            match op with
            | Ins k -> (not (Iset.mem k !m), Iset.add k !m)
            | Del k -> (Iset.mem k !m, Iset.remove k !m)
            | Mem k -> (Iset.mem k !m, !m)
          in
          m := m';
          (match op with
          | Ins k -> h.insert ~tid:0 k
          | Del k -> h.delete ~tid:0 k
          | Mem k -> h.contains ~tid:0 k)
          = expected)
        ops
      && h.to_list () = Iset.elements !m)

let test_stress mk () =
  (* Disjoint-ownership writers plus readers, as in test_stress. *)
  let n_writers = 3 and n_readers = 2 in
  let stripe = 16 and rounds = 300 in
  let h = mk () in
  let stop = Atomic.make false in
  let violation = Atomic.make None in
  let writer tid =
    let base = tid * stripe in
    for _round = 1 to rounds do
      for j = 0 to stripe - 1 do
        if not (h.insert ~tid (base + j)) then
          Atomic.set violation (Some "insert of owned key failed")
      done;
      for j = 0 to stripe - 1 do
        if not (h.delete ~tid (base + j)) then
          Atomic.set violation (Some "delete of owned key failed")
      done
    done
  in
  let reader tid =
    while not (Atomic.get stop) do
      for k = 0 to (n_writers * stripe) - 1 do
        ignore (h.contains ~tid k)
      done
    done
  in
  let readers =
    List.init n_readers (fun i ->
        Domain.spawn (fun () -> reader (n_writers + i)))
  in
  let writers =
    List.init n_writers (fun tid -> Domain.spawn (fun () -> writer tid))
  in
  List.iter Domain.join writers;
  Atomic.set stop true;
  List.iter Domain.join readers;
  (match Atomic.get violation with
  | Some msg -> Alcotest.fail msg
  | None -> ());
  Alcotest.(check (list int)) "empty at end" [] (h.to_list ())

let () =
  let suites =
    List.map
      (fun (sname, mk) ->
        ( sname,
          [
            Alcotest.test_case "basic" `Quick (test_basic (fun () -> mk ()));
            Alcotest.test_case "segment trim" `Quick
              (test_segment_trim (fun () -> mk ()));
            QCheck_alcotest.to_alcotest (prop_model (fun () -> mk ()));
            Alcotest.test_case "stress" `Slow (test_stress (fun () -> mk ()));
          ] ))
      variants
  in
  Alcotest.run "harris" suites
