(* Unit tests for the global epoch counter: monotonicity (the paper's
   Observation 4), CAS-advance semantics, and multi-domain races. *)

let test_initial () =
  let e = Vbr_core.Epoch.create () in
  Alcotest.(check int) "starts at 1" 1 (Vbr_core.Epoch.get e);
  Alcotest.(check bool) "above no_epoch" true
    (Vbr_core.Epoch.get e > Memsim.Node.no_epoch);
  Alcotest.(check int) "no advances yet" 0 (Vbr_core.Epoch.advance_counted e)

let test_advance () =
  let e = Vbr_core.Epoch.create () in
  Alcotest.(check bool) "advance from current" true
    (Vbr_core.Epoch.try_advance e ~expected:1);
  Alcotest.(check int) "now 2" 2 (Vbr_core.Epoch.get e);
  Alcotest.(check bool) "stale expected fails" false
    (Vbr_core.Epoch.try_advance e ~expected:1);
  Alcotest.(check int) "still 2" 2 (Vbr_core.Epoch.get e);
  Alcotest.(check int) "one success counted" 1
    (Vbr_core.Epoch.advance_counted e)

let test_parallel_advances () =
  (* Racing advances: the counter rises by exactly the number of
     successful CASes and never decreases. *)
  let e = Vbr_core.Epoch.create () in
  let per_domain = 10_000 in
  let successes = Atomic.make 0 in
  let worker () =
    for _ = 1 to per_domain do
      let cur = Vbr_core.Epoch.get e in
      if Vbr_core.Epoch.try_advance e ~expected:cur then
        Atomic.incr successes
    done
  in
  let ds = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int) "value = 1 + successes"
    (1 + Atomic.get successes)
    (Vbr_core.Epoch.get e);
  Alcotest.(check int) "counter agrees" (Atomic.get successes)
    (Vbr_core.Epoch.advance_counted e)

let test_monotonic_under_race () =
  let e = Vbr_core.Epoch.create () in
  let stop = Atomic.make false in
  let violation = Atomic.make false in
  let observer () =
    let last = ref 0 in
    while not (Atomic.get stop) do
      let v = Vbr_core.Epoch.get e in
      if v < !last then Atomic.set violation true;
      last := v
    done
  in
  let advancer () =
    for _ = 1 to 50_000 do
      ignore (Vbr_core.Epoch.try_advance e ~expected:(Vbr_core.Epoch.get e))
    done
  in
  let o = Domain.spawn observer in
  let a = Domain.spawn advancer in
  Domain.join a;
  Atomic.set stop true;
  Domain.join o;
  Alcotest.(check bool) "never decreases" false (Atomic.get violation)

let () =
  Alcotest.run "epoch"
    [
      ( "unit",
        [
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "advance" `Quick test_advance;
          Alcotest.test_case "parallel advances" `Quick test_parallel_advances;
          Alcotest.test_case "monotonic" `Quick test_monotonic_under_race;
        ] );
    ]
