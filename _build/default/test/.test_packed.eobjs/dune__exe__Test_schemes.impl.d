test/test_schemes.ml: Alcotest Arena Atomic Global_pool List Memsim Node Packed Reclaim
