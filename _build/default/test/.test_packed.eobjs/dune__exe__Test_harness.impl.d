test/test_harness.ml: Alcotest Array Harness List Printf
