test/test_harris.ml: Alcotest Atomic Domain Dstruct Fun Int List Memsim QCheck2 QCheck_alcotest Reclaim Set
