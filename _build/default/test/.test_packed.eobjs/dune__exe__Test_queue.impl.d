test/test_queue.ml: Alcotest Array Atomic Domain Dstruct List Memsim Printf QCheck2 QCheck_alcotest Queue Vbr_core
