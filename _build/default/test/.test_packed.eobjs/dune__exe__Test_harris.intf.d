test/test_harris.mli:
