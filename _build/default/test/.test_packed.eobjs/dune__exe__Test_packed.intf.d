test/test_packed.mli:
