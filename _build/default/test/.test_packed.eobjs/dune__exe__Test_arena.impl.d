test/test_arena.ml: Alcotest Arena Array Atomic Domain List Memsim Node Packed QCheck2 QCheck_alcotest
