test/test_stress.ml: Alcotest Atomic Domain Dstruct List Memsim Printf Random Reclaim Vbr_core
