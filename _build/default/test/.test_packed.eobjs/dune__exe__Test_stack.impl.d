test/test_stack.ml: Alcotest Atomic Domain Dstruct List Memsim QCheck2 QCheck_alcotest Stack Vbr_core
