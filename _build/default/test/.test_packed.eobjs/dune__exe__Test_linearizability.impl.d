test/test_linearizability.ml: Alcotest Array Atomic Domain Harness Lin List Unix
