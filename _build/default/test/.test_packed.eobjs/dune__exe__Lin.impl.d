test/lin.ml: Array Buffer Format Hashtbl
