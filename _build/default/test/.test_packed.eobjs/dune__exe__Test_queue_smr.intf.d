test/test_queue_smr.mli:
