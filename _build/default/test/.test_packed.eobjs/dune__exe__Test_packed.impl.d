test/test_packed.ml: Alcotest List Memsim Printf QCheck2 QCheck_alcotest
