test/test_vbr_prim.ml: Alcotest Arena Array Atomic Epoch Global_pool List Memsim Node Packed Random Vbr Vbr_core
