test/test_queue_smr.ml: Alcotest Atomic Domain Dstruct List Memsim Queue Random Reclaim Stack
