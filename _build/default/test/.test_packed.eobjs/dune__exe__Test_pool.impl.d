test/test_pool.ml: Alcotest Arena Array Atomic Domain Global_pool List Memsim Pool Random
