test/test_vbr_prim.mli:
