test/test_skiplist.ml: Alcotest Arena Array Atomic Dstruct Int List Memsim Node Packed QCheck2 QCheck_alcotest Reclaim Set String Vbr_core
