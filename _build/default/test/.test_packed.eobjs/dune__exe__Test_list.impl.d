test/test_list.ml: Alcotest Atomic Domain Dstruct Int List Memsim Printf QCheck2 QCheck_alcotest Random Reclaim Set Vbr_core
