test/test_epoch.ml: Alcotest Atomic Domain List Memsim Vbr_core
