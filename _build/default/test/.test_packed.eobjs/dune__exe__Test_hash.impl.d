test/test_hash.ml: Alcotest Dstruct Fun Int List Memsim QCheck2 QCheck_alcotest Reclaim Set Vbr_core
