(* Loading the typed trees dune already produces. Every library module
   compiled under <root>/lib leaves a .cmt (binary-annotated typed tree)
   in its library's .<lib>.objs/byte directory; the verifier scans for
   them instead of re-typechecking, so it sees exactly the trees the
   compiler certified, with module aliases, opens and functor parameters
   resolved the way the type-checker resolved them.

   The repo-relative source path is reconstructed from the .cmt's own
   location (its directory minus the dune-internal .objs/byte suffix)
   plus the basename the compiler recorded, so the same Scope/Suppress
   machinery the untyped linter uses applies unchanged. *)

open Lint_core

type file = {
  rel : string;  (* source path relative to the scan root, '/'-separated *)
  scope : Scope.t;
  str : Typedtree.structure;
  spans : Suppress.span list;  (* [@vbr.allow] spans from the typed tree *)
}

let scan_dirs = [ "lib" ]

let rec walk dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path acc
          else if Filename.check_suffix entry ".cmt" then path :: acc
          else acc)
        acc entries

let collect_cmts ~root =
  List.concat_map
    (fun d ->
      let dir = Filename.concat root d in
      if Sys.file_exists dir && Sys.is_directory dir then List.rev (walk dir [])
      else [])
    scan_dirs

(* "<root>/lib/dstruct/.dstruct.objs/byte/x.cmt" -> "lib/dstruct": the
   source directory is the .cmt directory truncated at the first
   dune-internal (dot-prefixed) component. *)
let source_dir ~root cmt_path =
  let dir = Filename.dirname cmt_path in
  let rel =
    let r = root ^ Filename.dir_sep in
    if String.length dir >= String.length r && String.sub dir 0 (String.length r) = r
    then String.sub dir (String.length r) (String.length dir - String.length r)
    else dir
  in
  let parts = String.split_on_char '/' rel in
  let rec keep = function
    | [] -> []
    | p :: _ when String.length p > 0 && p.[0] = '.' -> []
    | p :: rest -> p :: keep rest
  in
  String.concat "/" (keep parts)

let load_one ~root cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception _ -> None  (* unreadable / version-skewed artifact: skip *)
  | cmt -> (
      match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
      | Cmt_format.Implementation str, Some src
        when Filename.check_suffix src ".ml" ->
          (* Wrapper/alias modules dune generates end in .ml-gen and are
             filtered by the suffix test above. *)
          let rel = source_dir ~root cmt_path ^ "/" ^ Filename.basename src in
          Some
            {
              rel;
              scope = Scope.classify rel;
              str;
              spans = Suppress.collect_typed str;
            }
      | _ -> None)

let load ~root =
  collect_cmts ~root
  |> List.filter_map (load_one ~root)
  |> List.sort_uniq (fun a b -> String.compare a.rel b.rel)
