(* checkpoint-dominance: every optimistic-plane read/update must be
   dominated by an installed checkpoint, across function boundaries.

   Lexical coverage comes from the site walk ([in_ckpt]); the
   interprocedural part is a least fixpoint computing, per function,
   "reachable with no checkpoint installed": a function is unprotected
   if it has no uses at all inside lib/ (so nothing proves a caller
   installs one), or if some use is itself uncovered -- outside any
   checkpoint argument, in module-level code or in a function that is
   itself unprotected. A plane primitive then only needs flagging when
   it is lexically uncovered *and* its enclosing function is
   unprotected: the find/skip helpers of vbr_list, whose every call
   chain bottoms out inside a checkpoint2/3 argument, are proven safe
   with no annotation.

   A second, lexical sub-check enforces the paper's post-publish
   protocol (Figure 4, lines 12-13): after [commit_alloc] the still-
   armed pre-publish checkpoint must not see another Rollback-raising
   primitive, because a rollback would re-run the thunk and with it the
   already-successful publishing CAS path. [refresh_epoch] or a fresh
   [checkpoint] between the commit and the next optimistic read
   discharges it. *)

open Lint_core

let name = "checkpoint-dominance"

let doc =
  "optimistic-plane calls must be dominated by a checkpoint on every call \
   chain, and commit_alloc must be re-armed before the next optimistic read"

(* The OPTIMISTIC primitives that demand an installed checkpoint
   (matched by qualified last component, so any binding of the plane --
   V, Vbr, a local alias -- is covered). *)
let prims =
  [
    "alloc";
    "get_next";
    "get_next_word";
    "get_next_packed";
    "get_next_raw";
    "get_birth";
    "get_key";
    "read_root";
    "read_root_packed";
    "update";
    "mark";
    "cas_root";
    "retire";
    "commit_alloc";
    "refresh_next";
    "heal_stale_edge";
  ]

(* The subset that may raise Rollback (per vbr.mli): what must not
   follow a commit_alloc under the old checkpoint. cas_root and mark
   never roll back and are deliberately absent. *)
let rollback_raising =
  [
    "alloc";
    "retire";
    "get_next";
    "get_next_word";
    "get_next_packed";
    "get_next_raw";
    "get_birth";
    "get_key";
    "read_root";
    "read_root_packed";
    "validate_epoch";
  ]

let reestablish = [ "refresh_epoch"; "checkpoint"; "checkpoint2"; "checkpoint3" ]

let is_call_of set (s : Prog.site) =
  match s.kind with
  | Call _ ->
      Ast_util.is_qualified s.canon
      && List.mem (Ast_util.last_component s.canon) set
  | Ref -> false

(* ---- interprocedural dominance ---- *)

let unprotected (p : Prog.t) =
  let n = Array.length p.fns in
  let unprot = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (f : Prog.fn) ->
        if not unprot.(f.id) then
          let us = p.uses.(f.id) in
          let now =
            us = []
            || List.exists
                 (fun (u : Prog.site) ->
                   (not u.in_ckpt)
                   &&
                   match u.owner with
                   | None -> true
                   | Some g -> unprot.(g))
                 us
          in
          if now then (
            unprot.(f.id) <- true;
            changed := true))
      p.fns
  done;
  unprot

let witness (p : Prog.t) unprot (f : Prog.fn) =
  if p.uses.(f.id) = [] then
    "it has no callers in lib/, so nothing installs one"
  else
    match
      List.find_opt
        (fun (u : Prog.site) ->
          (not u.in_ckpt)
          && match u.owner with None -> true | Some g -> unprot.(g))
        p.uses.(f.id)
    with
    | Some u ->
        Printf.sprintf "e.g. the use at %s:%d is outside any checkpoint"
          u.owner_file (Tast_util.line_of u.loc)
    | None -> "a call chain reaches it without one"

let dominance_findings (p : Prog.t) =
  let unprot = unprotected p in
  let of_sites ~why ~file sites =
    List.filter_map
      (fun (s : Prog.site) ->
        if is_call_of prims s && not s.in_ckpt then
          Some
            (Prog.finding ~rule:name ~file s.loc
               ~message:
                 (Printf.sprintf
                    "%s runs with no checkpoint installed on some call chain \
                     (%s)"
                    s.canon why)
               ~hint:
                 "wrap the call in V.checkpoint, or install the checkpoint \
                  in every caller (checkpoint2/checkpoint3 for \
                  allocation-free capture)")
        else None)
      sites
  in
  let fn_findings =
    Array.to_list p.fns
    |> List.concat_map (fun (f : Prog.fn) ->
           if f.scope.kind = Scope.Optimistic && unprot.(f.id) then
             of_sites ~why:(witness p unprot f) ~file:f.file p.fn_sites.(f.id)
           else [])
  in
  let top_findings =
    List.concat_map
      (fun (file : Cmt_load.file) ->
        if file.scope.kind = Scope.Optimistic then
          of_sites ~why:"it executes at module initialization" ~file:file.rel
            (Prog.toplevel_sites p file.rel)
        else [])
      p.files
  in
  fn_findings @ top_findings

(* ---- commit_alloc re-arm (lexical, per function) ---- *)

let loc_after a b = not (Tast_util.pos_leq a b)

let commit_findings (p : Prog.t) =
  let check_group ~file sites =
    let commits = List.filter (fun s -> is_call_of [ "commit_alloc" ] s) sites in
    List.filter_map
      (fun (c : Prog.site) ->
        (* the nearest Rollback-raising primitive lexically after the
           commit, if any *)
        let later =
          List.filter
            (fun (s : Prog.site) ->
              is_call_of rollback_raising s && loc_after s.loc c.loc)
            sites
        in
        match
          List.sort
            (fun (a : Prog.site) b ->
              compare
                (Tast_util.line_of a.loc, Tast_util.col_of a.loc)
                (Tast_util.line_of b.loc, Tast_util.col_of b.loc))
            later
        with
        | [] -> None
        | (r : Prog.site) :: _ ->
            let rearmed =
              List.exists
                (fun (s : Prog.site) ->
                  is_call_of reestablish s
                  && loc_after s.loc c.loc
                  && loc_after r.loc s.loc)
                sites
            in
            if rearmed then None
            else
              Some
                (Prog.finding ~rule:name ~file r.loc
                   ~message:
                     (Printf.sprintf
                        "%s may raise Rollback after the commit_alloc at line \
                         %d under the still-armed pre-publish checkpoint: a \
                         rollback here re-runs the already-successful \
                         publishing CAS path"
                        r.canon
                        (Tast_util.line_of c.loc))
                   ~hint:
                     "call V.refresh_epoch (or install a fresh V.checkpoint) \
                      immediately after commit_alloc, before the next \
                      optimistic read (Figure 4, lines 12-13)"))
      commits
  in
  Array.to_list p.fns
  |> List.concat_map (fun (f : Prog.fn) ->
         if f.scope.kind = Scope.Optimistic then
           check_group ~file:f.file p.fn_sites.(f.id)
         else [])

let check (p : Prog.t) = dominance_findings p @ commit_findings p
