(* blocking-in-critical-section: nothing that can block the domain may
   be reachable from inside a checkpoint or guard scope. A blocked
   thread inside a checkpoint pins its saved epoch; inside a guard it
   pins every retired node behind the guard -- either way reclamation
   stalls for the duration, which defeats the scheme's lock-freedom.

   Critical contexts: lexically inside a checkpoint argument (any
   file), or inside a guard-engaging function of a guarded structure or
   scheme implementation. The reachability fixpoint propagates
   criticality down the call graph: a function is critical if any use
   of it is a critical site, and then every blocking call inside it --
   or inside anything it reaches -- is a finding. *)

open Lint_core

let name = "blocking-in-critical-section"

let doc =
  "no blocking call (Mutex/Condition/Unix sleeps and waits/Domain.join) may \
   be reachable from inside a checkpoint or guard scope"

let guard_plane =
  [ "protect"; "protect_read"; "protect_own"; "transfer"; "begin_op"; "end_op" ]

let blocking =
  [
    "Mutex.lock";
    "Condition.wait";
    "Semaphore.Counting.acquire";
    "Semaphore.Binary.acquire";
    "Thread.delay";
    "Thread.join";
    "Domain.join";
    "Unix.sleep";
    "Unix.sleepf";
    "Unix.select";
    "Unix.wait";
    "Unix.waitpid";
  ]

let is_blocking canon = Ast_util.suffix_matches canon ~suffixes:blocking

(* A guard-engaging function body in guarded/scheme code is a critical
   region by containment (same approximation the untyped linter uses
   for its lexical rules). *)
let guard_critical (p : Prog.t) =
  Array.map
    (fun (f : Prog.fn) ->
      (match f.scope.kind with
      | Scope.Guarded | Scope.Scheme_impl -> true
      | _ -> false)
      && Prog.engages p guard_plane f.id)
    p.fns

let critical_fns (p : Prog.t) =
  let in_guard = guard_critical p in
  let crit = Array.make (Array.length p.fns) false in
  let critical_use (u : Prog.site) =
    u.in_ckpt
    ||
    match u.owner with
    | None -> false
    | Some g -> in_guard.(g) || crit.(g)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (f : Prog.fn) ->
        if not crit.(f.id) then
          if List.exists critical_use p.uses.(f.id) then (
            crit.(f.id) <- true;
            changed := true))
      p.fns
  done;
  (in_guard, crit)

let check (p : Prog.t) =
  let in_guard, crit = critical_fns p in
  List.filter_map
    (fun (s : Prog.site) ->
      let critical_here =
        s.in_ckpt
        ||
        match s.owner with
        | None -> false
        | Some g -> in_guard.(g) || crit.(g)
      in
      match s.kind with
      | Prog.Call _ when critical_here && is_blocking s.canon ->
          let why =
            if s.in_ckpt then "lexically inside a checkpoint argument"
            else
              match s.owner with
              | Some g when in_guard.(g) ->
                  "inside a guard-engaging function"
              | Some g ->
                  Printf.sprintf
                    "in %s, which is reachable from a critical section"
                    p.fns.(g).name
              | None -> "in module-level code"
          in
          Some
            (Prog.finding ~rule:name ~file:s.owner_file s.loc
               ~message:
                 (Printf.sprintf
                    "%s can block while an SMR critical section is open (%s): \
                     a blocked thread pins its epoch/guard and stalls \
                     reclamation"
                    s.canon why)
               ~hint:
                 "move the blocking call outside the checkpoint/guard scope, \
                  or split the operation so reclamation state is released \
                  first")
      | _ -> None)
    p.sites
