(* The verifier's rule table: interprocedural rules over the typed
   program model. Mirrors Lint.Registry so the two drivers read the
   same way; kept separate because these rules consume Prog.t, not
   parse trees. *)

open Lint_core

type rule = { name : string; doc : string; check : Prog.t -> Finding.t list }

let all : rule list =
  [
    { name = Rule_ckpt.name; doc = Rule_ckpt.doc; check = Rule_ckpt.check };
    { name = Rule_taint.name; doc = Rule_taint.doc; check = Rule_taint.check };
    { name = Rule_guard.name; doc = Rule_guard.doc; check = Rule_guard.check };
    { name = Rule_block.name; doc = Rule_block.doc; check = Rule_block.check };
    { name = Rule_raw.name; doc = Rule_raw.doc; check = Rule_raw.check };
  ]

let find name = List.find_opt (fun r -> r.name = name) all
let docs () = List.map (fun r -> (r.name, r.doc)) all
