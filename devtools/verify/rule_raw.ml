(* raw-atomic, typed edition: optimistic vbr_ structures must go
   through the versioned plane, never raw Atomic. The untyped linter
   matches the literal path [Atomic.op] and is blind to [module A =
   Atomic] and [open Atomic]; here the type-checker has already
   resolved every use to its canonical path (Stdlib.Atomic.op), and the
   file-local alias table catches renamings, so both spellings are
   caught. The rule keeps the untyped rule's name on purpose: the
   discipline is the same, so one [@vbr.allow "raw-atomic"] suppresses
   the same exemption in both tools (the quiescent to_list debug
   helpers rely on that).

   The Padded.cell exemption also carries over: reading through the
   false-sharing padding wrapper is how the plane itself is reached. *)

open Lint_core

let name = "raw-atomic"

let doc =
  "vbr_* structures must not touch Atomic directly (resolved through the \
   typed tree: aliases and opens included); use the versioned plane"

let atomic_ops =
  [
    "Atomic.get";
    "Atomic.set";
    "Atomic.compare_and_set";
    "Atomic.exchange";
    "Atomic.fetch_and_add";
    "Atomic.make";
  ]

let is_atomic canon = Ast_util.suffix_matches canon ~suffixes:atomic_ops

let padded_subject (p : Prog.t) (s : Prog.site) =
  match s.kind with
  | Prog.Call args ->
      List.exists
        (fun (_, a) ->
          match
            List.find_opt
              (fun (f : Cmt_load.file) -> f.rel = s.owner_file)
              p.files
          with
          | None -> false
          | Some file -> (
              let aliases = Tast_util.collect_aliases file.str in
              match Tast_util.head_canon aliases a with
              | Some h -> Ast_util.suffix_matches h ~suffixes:[ "Padded.cell" ]
              | None -> false))
        args
  | Prog.Ref -> false

let check (p : Prog.t) =
  List.filter_map
    (fun (s : Prog.site) ->
      if
        Prog.file_kind p s.owner_file = Scope.Optimistic
        && (match s.kind with Prog.Call _ -> true | Prog.Ref -> false)
        && is_atomic s.canon
        && not (padded_subject p s)
      then
        Some
          (Prog.finding ~rule:name ~file:s.owner_file s.loc
             ~message:
               (Printf.sprintf
                  "%s bypasses the versioned plane in an optimistic \
                   structure (typed resolution: aliases and opens cannot \
                   hide it)"
                  s.canon)
             ~hint:
               "go through the OPTIMISTIC signature (read_root/get_next/\
                update); raw Atomic skips version validation")
      else None)
    p.sites
