(* guard-extent: in guarded structures, node-word accesses must stay
   covered by a guard when traversal helpers are extracted.

   A function "engages the plane" if it calls protect/protect_read/
   protect_own/transfer/begin_op/end_op itself. A helper that performs
   raw node-word accesses (Atomic.* or the Memsim.Access shim, with a
   computed subject -- a call like [next_word t n] rather than a field
   projection) without engaging the plane is only safe if every call
   chain reaching it passes through a function that does engage: the
   harris_list idiom, where [search] does the unguarded hand-over-hand
   reads and the public ops bracket it with begin_op/end_op. The
   fixpoint mirrors checkpoint-dominance: a helper is uncovered if it
   has no uses, or some use sits in module-level code or in a function
   that neither engages the plane nor is itself covered. *)

open Lint_core

let name = "guard-extent"

let doc =
  "raw node-word accesses in guarded structures must be covered by a \
   guard-engaging caller on every call chain"

let plane =
  [ "protect"; "protect_read"; "protect_own"; "transfer"; "begin_op"; "end_op" ]

let word_ops =
  [
    "Atomic.get";
    "Atomic.set";
    "Atomic.compare_and_set";
    "Atomic.exchange";
    "Atomic.fetch_and_add";
    "Access.get";
    "Access.set";
    "Access.compare_and_set";
    "Access.exchange";
    "Access.fetch_and_add";
  ]

let is_word_op canon = Ast_util.suffix_matches canon ~suffixes:word_ops

(* A node-word subject is one reached through a call ([next_word t n],
   [V.cell ...]); plain projections ([t.head]) are roots/fields the
   structure owns and may read unguarded. *)
let node_word_site (s : Prog.site) =
  match s.kind with
  | Prog.Call ((_, subject) :: _) ->
      is_word_op s.canon && Tast_util.contains_apply subject
  | _ -> false

let uncovered (p : Prog.t) =
  let n = Array.length p.fns in
  let engages = Array.init n (fun i -> Prog.engages p plane i) in
  let unc = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (f : Prog.fn) ->
        if (not unc.(f.id)) && not engages.(f.id) then
          let us = p.uses.(f.id) in
          let now =
            us = []
            || List.exists
                 (fun (u : Prog.site) ->
                   match u.owner with
                   | None -> true
                   | Some g -> (not engages.(g)) && unc.(g))
                 us
          in
          if now then (
            unc.(f.id) <- true;
            changed := true))
      p.fns
  done;
  (engages, unc)

let witness (p : Prog.t) engages unc (f : Prog.fn) =
  if p.uses.(f.id) = [] then
    "it has no callers in lib/, so no guard-engaging caller covers it"
  else
    match
      List.find_opt
        (fun (u : Prog.site) ->
          match u.owner with
          | None -> true
          | Some g -> (not engages.(g)) && unc.(g))
        p.uses.(f.id)
    with
    | Some u ->
        Printf.sprintf
          "e.g. the use at %s:%d is not under any guard-engaging caller"
          u.owner_file (Tast_util.line_of u.loc)
    | None -> "a call chain reaches it with no guard engaged"

let check (p : Prog.t) =
  let engages, unc = uncovered p in
  let of_sites ~why ~file sites =
    List.filter_map
      (fun (s : Prog.site) ->
        if node_word_site s then
          Some
            (Prog.finding ~rule:name ~file s.loc
               ~message:
                 (Printf.sprintf
                    "%s touches a node word with no guard covering this call \
                     chain (%s)"
                    s.canon why)
               ~hint:
                 "bracket the callers with begin_op/end_op (or protect the \
                  traversal), or keep the access inside the function that \
                  engages the guard")
        else None)
      sites
  in
  let fn_findings =
    Array.to_list p.fns
    |> List.concat_map (fun (f : Prog.fn) ->
           if f.scope.kind = Scope.Guarded && (not engages.(f.id)) && unc.(f.id)
           then of_sites ~why:(witness p engages unc f) ~file:f.file
                  p.fn_sites.(f.id)
           else [])
  in
  let top_findings =
    List.concat_map
      (fun (file : Cmt_load.file) ->
        if file.scope.kind = Scope.Guarded then
          of_sites ~why:"it executes at module initialization" ~file:file.rel
            (Prog.toplevel_sites p file.rel)
        else [])
      p.files
  in
  fn_findings @ top_findings
