(* retire-taint: a value passed to [retire] is dead to this thread; any
   later dereference of it through the plane is a static use-after-
   retire. (VBR's versioned reads make *racing* readers safe; the
   retiring thread itself reusing its stale reference is a plain bug
   the type system cannot see.)

   Intraprocedural part: an abstract interpretation over each function
   body in evaluation order, tracking the set of tainted local idents.
   [retire]'s node arguments (every unlabeled argument after the first,
   which is the plane/instance) taint the idents they mention; a plane
   dereference whose subject mentions a tainted ident is a finding.
   Branches fork the environment and rejoin by union, so a retire in
   one arm never poisons the sibling arm (that is what keeps the
   retire-then-recurse idiom of vbr_list's delete clean).

   Interprocedural part: per-function summaries -- which parameter
   positions a function (transitively) dereferences, and which it
   (transitively) retires -- computed to a fixpoint, then applied at
   call sites: passing a tainted value into a deref-ing position is a
   finding at the call; a call that retires its argument taints the
   caller's idents. This is what catches retire-then-deref split across
   a helper. [is_marked] is deliberately not a deref: VBR guarantees it
   is exact on retired nodes, and unlink-after-retire legitimately
   rechecks marks. *)

open Lint_core

let name = "retire-taint"

let doc =
  "a value that flowed into retire must not be dereferenced again by this \
   thread, across function boundaries"

(* Plane calls that dereference their node argument(s). *)
let deref_prims =
  [
    "get_next";
    "get_next_word";
    "get_next_packed";
    "get_next_raw";
    "get_birth";
    "get_key";
    "update";
    "mark";
    "refresh_next";
    "heal_stale_edge";
  ]

(* Guarded-plane word accesses: the subject expression is the deref. *)
let word_ops =
  [
    "Atomic.get";
    "Atomic.set";
    "Atomic.compare_and_set";
    "Atomic.exchange";
    "Atomic.fetch_and_add";
    "Access.get";
    "Access.set";
    "Access.compare_and_set";
    "Access.exchange";
    "Access.fetch_and_add";
  ]

let is_retire canon =
  Ast_util.is_qualified canon && Ast_util.last_component canon = "retire"

let is_deref_prim canon =
  Ast_util.is_qualified canon
  && List.mem (Ast_util.last_component canon) deref_prims

let is_word_op canon = Ast_util.suffix_matches canon ~suffixes:word_ops

type summary = { derefs : bool array; retires : bool array }

let empty_summary (f : Prog.fn) =
  let n = List.length f.params in
  { derefs = Array.make n false; retires = Array.make n false }

module S = Set.Make (Ident)

let mentions env e = List.exists (fun id -> S.mem id env) (Tast_util.idents_of e)

let param_positions (f : Prog.fn) e =
  (* parameter positions (0-based) whose ident appears in [e] *)
  let ids = Tast_util.idents_of e in
  List.mapi (fun i p -> (i, p)) f.params
  |> List.filter_map (fun (i, p) ->
         if List.exists (Ident.same p) ids then Some i else None)

(* retire's node arguments: unlabeled, all but the first (the plane). *)
let retire_node_args args =
  match List.filter (fun (lbl, _) -> lbl = "") args with
  | [] -> []
  | _plane :: nodes -> List.map snd nodes

let pat_idents pat =
  let acc = ref [] in
  (* the iterator's [pat] field is explicitly polymorphic over the
     pattern category; matching the value-only constructors refines it *)
  let visit : type k.
      Tast_iterator.iterator -> k Typedtree.general_pattern -> unit =
   fun it pat ->
    (match pat.Typedtree.pat_desc with
    | Typedtree.Tpat_var (id, _) -> acc := id :: !acc
    | Typedtree.Tpat_alias (_, id, _) -> acc := id :: !acc
    | _ -> ());
    Tast_iterator.default_iterator.pat it pat
  in
  let it = { Tast_iterator.default_iterator with pat = visit } in
  it.pat it pat;
  !acc

(* One pass over [f]'s body. [aliases_of] supplies the per-file alias
   table, [summaries] the current callee effects; [report] (when set)
   receives findings. Updates [f]'s own summary in place. *)
let analyze (p : Prog.t) ~aliases_of summaries ?report (f : Prog.fn) =
  let sum = summaries.(f.id) in
  let aliases = aliases_of f.file in
  let emit loc message =
    match report with
    | None -> ()
    | Some push ->
        push
          (Prog.finding ~rule:name ~file:f.file loc ~message
             ~hint:
               "re-read the link after retiring (the retired value is dead \
                to this thread); restructure so the retire is the last use")
  in
  let mark_param arr e =
    List.iter (fun i -> arr.(i) <- true) (param_positions f e)
  in
  let target_of canon =
    List.find_map
      (fun (s : Prog.site) ->
        match s.kind with
        | Call _ when s.canon = canon -> s.target
        | _ -> None)
      p.fn_sites.(f.id)
  in
  let taint_all env e =
    List.fold_left (fun env id -> S.add id env) env (Tast_util.idents_of e)
  in
  let rec walk env (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (path, _, _); _ }, args) ->
        let canon = Tast_util.canonical aliases path in
        let argl =
          List.filter_map
            (fun (lbl, a) -> Option.map (fun a -> (Prog.label_text lbl, a)) a)
            args
        in
        (* arguments evaluate before the call *)
        let env = List.fold_left (fun env (_, a) -> walk env a) env argl in
        apply_call env canon argl e.Typedtree.exp_loc
    | Texp_ifthenelse (c, t, e_opt) ->
        let env = walk env c in
        let env_t = walk env t in
        let env_e = match e_opt with Some e' -> walk env e' | None -> env in
        S.union env_t env_e
    | Texp_match (scrut, cases, _) ->
        let env = walk env scrut in
        List.fold_left
          (fun acc c -> S.union acc (walk env c.Typedtree.c_rhs))
          env cases
    | Texp_sequence (a, b) -> walk (walk env a) b
    | Texp_let (_, vbs, body) ->
        let env =
          List.fold_left
            (fun env vb ->
              let env = walk env vb.Typedtree.vb_expr in
              if mentions env vb.Typedtree.vb_expr then
                (* binding a tainted computation taints the bound idents *)
                List.fold_left
                  (fun env id -> S.add id env)
                  env
                  (pat_idents vb.Typedtree.vb_pat)
              else env)
            env vbs
        in
        walk env body
    | _ ->
        (* default: fold over immediate children in order (closures are
           walked as if executed here -- conservative, and exactly what
           the checkpoint-thunk idiom needs) *)
        List.fold_left walk env (Tast_util.sub_exprs e)
  and apply_call env canon argl loc =
    if is_retire canon then
      List.fold_left
        (fun env node ->
          mark_param sum.retires node;
          taint_all env node)
        env (retire_node_args argl)
    else if is_deref_prim canon then (
      (* the node is among the non-plane args; checking every arg is
         safe because the plane/ctx value is never tainted *)
      List.iter
        (fun (_, a) ->
          mark_param sum.derefs a;
          if mentions env a then
            emit loc
              (Printf.sprintf
                 "%s dereferences a value that already flowed into retire \
                  (static use-after-retire)"
                 canon))
        argl;
      env)
    else if is_word_op canon then (
      (match argl with
      | (_, subject) :: _ ->
          mark_param sum.derefs subject;
          if mentions env subject then
            emit loc
              (Printf.sprintf
                 "%s reads through a value that already flowed into retire \
                  (static use-after-retire)"
                 canon)
      | [] -> ());
      env)
    else
      match target_of canon with
      | Some g ->
          let callee = p.fns.(g) in
          let cs = summaries.(g) in
          let n = Array.length cs.derefs in
          List.fold_left
            (fun env (i, (_, a)) ->
              if i >= n then env
              else begin
                if cs.derefs.(i) then begin
                  mark_param sum.derefs a;
                  if mentions env a then
                    emit loc
                      (Printf.sprintf
                         "argument %d of %s is dereferenced inside it \
                          (defined at %s:%d), but the value already flowed \
                          into retire here (static use-after-retire across \
                          the call)"
                         (i + 1) canon callee.file
                         (Tast_util.line_of callee.loc))
                end;
                if cs.retires.(i) then begin
                  mark_param sum.retires a;
                  taint_all env a
                end
                else env
              end)
            env
            (List.mapi (fun i a -> (i, a)) argl)
      | None -> env
  in
  ignore (walk S.empty f.body)

let check (p : Prog.t) =
  let alias_cache = Hashtbl.create 8 in
  let aliases_of rel =
    match Hashtbl.find_opt alias_cache rel with
    | Some t -> t
    | None ->
        let t =
          match
            List.find_opt (fun (x : Cmt_load.file) -> x.rel = rel) p.files
          with
          | Some x -> Tast_util.collect_aliases x.str
          | None -> Hashtbl.create 1
        in
        Hashtbl.add alias_cache rel t;
        t
  in
  let summaries = Array.map empty_summary p.fns in
  let snapshot () =
    Array.map (fun s -> (Array.copy s.derefs, Array.copy s.retires)) summaries
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 20 do
    incr rounds;
    let before = snapshot () in
    Array.iter (fun f -> analyze p ~aliases_of summaries f) p.fns;
    changed := snapshot () <> before
  done;
  let findings = ref [] in
  let push f = findings := f :: !findings in
  Array.iter
    (fun (f : Prog.fn) ->
      match f.scope.kind with
      | Scope.Optimistic | Scope.Guarded ->
          analyze p ~aliases_of summaries ~report:push f
      | _ -> ())
    p.fns;
  List.sort_uniq Stdlib.compare (List.rev !findings)
