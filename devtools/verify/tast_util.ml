(* Typed-tree helpers shared by the verifier's program model and rules.

   The central service is [canonical]: the dotted name of an identifier
   as the type-checker resolved it, with file-local module aliases
   ([module A = Atomic]) expanded transitively. [open]ed modules need no
   work at all -- the typed path already carries the full prefix (an
   [open Atomic] use of [get] shows up as [Stdlib.Atomic.get]) -- which
   is exactly the class of miss the untyped linter cannot see. Functor
   parameters stay literal ([V.get_next]), which the rules rely on:
   structure code written against the OPTIMISTIC signature is matched by
   the suffix of the canonical name, not a hardcoded implementation
   module. *)

open Typedtree

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let col_of (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

let pos_leq (a : Location.t) (b : Location.t) =
  compare
    (line_of a, col_of a)
    (line_of b, col_of b)
  <= 0

(* File-local module alias table: [module P = Memsim.Packed] maps "P" to
   "Memsim.Packed". Aliases of aliases expand through the entries already
   collected (declaration order), so [module B = A] with [module A =
   Atomic] lands on "Stdlib.Atomic". Functor applications and inline
   structs are not aliases and are left out: paths through them keep
   their local head and the rules treat them by suffix. *)
let collect_aliases (str : structure) : (string, string) Hashtbl.t =
  let table = Hashtbl.create 8 in
  let expand_head flat =
    match String.index_opt flat '.' with
    | None -> (
        match Hashtbl.find_opt table flat with
        | Some t -> t
        | None -> flat)
    | Some i -> (
        let head = String.sub flat 0 i in
        let rest = String.sub flat (i + 1) (String.length flat - i - 1) in
        match Hashtbl.find_opt table head with
        | Some t -> t ^ "." ^ rest
        | None -> flat)
  in
  let rec alias_target (me : module_expr) =
    match me.mod_desc with
    | Tmod_ident (p, _) -> Some (Path.name p)
    | Tmod_constraint (me', _, _, _) -> alias_target me'
    | _ -> None
  in
  let it =
    {
      Tast_iterator.default_iterator with
      module_binding =
        (fun it mb ->
          (match (mb.mb_id, alias_target mb.mb_expr) with
          | Some id, Some target ->
              Hashtbl.replace table (Ident.name id) (expand_head target)
          | _ -> ());
          Tast_iterator.default_iterator.module_binding it mb);
    }
  in
  it.structure it str;
  table

let canonical (aliases : (string, string) Hashtbl.t) (p : Path.t) =
  let flat = Path.name p in
  match String.index_opt flat '.' with
  | None -> flat
  | Some i -> (
      let head = String.sub flat 0 i in
      let rest = String.sub flat (i + 1) (String.length flat - i - 1) in
      match Hashtbl.find_opt aliases head with
      | Some target -> target ^ "." ^ rest
      | None -> flat)

(* Immediate sub-expressions of [e], one level deep: the default typed
   iterator visits exactly the children, so capturing its [expr] calls
   without recursing yields them. Used by result-threading walks (the
   taint analysis) that cannot go through a unit-returning iterator. *)
let sub_exprs (e : expression) : expression list =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ child -> acc := child :: !acc);
    }
  in
  Tast_iterator.default_iterator.expr it e;
  List.rev !acc

(* All value identifiers mentioned anywhere inside [e] (including under
   field projections and nested applications). *)
let idents_of (e : expression) : Ident.t list =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it child ->
          (match child.exp_desc with
          | Texp_ident (Path.Pident id, _, _) -> acc := id :: !acc
          | _ -> ());
          Tast_iterator.default_iterator.expr it child);
    }
  in
  it.expr it e;
  !acc

(* Does [e] contain an application? The guard rules use this the same
   way the untyped linter does: [Atomic.get t.head] reads a root cell
   (subject is a projection), [Access.get (next_word t n)] reads a node
   word reached through a helper call. *)
let contains_apply (e : expression) : bool =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it child ->
          (match child.exp_desc with
          | Texp_apply _ -> found := true
          | _ -> ());
          if not !found then Tast_iterator.default_iterator.expr it child);
    }
  in
  it.expr it e;
  !found

(* Head identifier of an application argument, if it is (an application
   of) a plain identifier: used for the Padded.cell exemption. *)
let rec head_canon aliases (e : expression) : string option =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (canonical aliases p)
  | Texp_apply (hd, _) -> head_canon aliases hd
  | _ -> None

(* Peel the curried value parameters off a function body: [fun a b ->
   body] yields ([a; b], body). A multi-case [function] contributes its
   scrutinee parameter and stops (the cases stay inside the returned
   expression, which walkers descend into normally). *)
let peel_params (e : expression) : Ident.t list * expression =
  let rec go acc e =
    match e.exp_desc with
    | Texp_function { param; cases = [ { c_rhs; _ } ]; _ } ->
        go (param :: acc) c_rhs
    | Texp_function { param; _ } -> (List.rev (param :: acc), e)
    | _ -> (List.rev acc, e)
  in
  go [] e
