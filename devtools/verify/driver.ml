(* The verify driver: load every .cmt under the scan root, build the
   whole-program model once, run the interprocedural rule table, filter
   [@vbr.allow] spans (collected from the typed trees, same attribute
   and granularity as vbr-lint), and report text, JSON and SARIF.
   Exit status 1 iff findings remain; 2 if no typed trees were found
   (the build that produces them did not run -- a misconfiguration, not
   a clean tree). *)

open Lint_core

let tool = "vbr-verify"

(* Run the rule table over the .cmt trees under [root]. Returns the
   surviving findings, sorted, plus the number of files analyzed. *)
let run ?(rules = Registry.all) ~root () =
  let files = Cmt_load.load ~root in
  let prog = Prog.build files in
  let findings =
    List.concat_map (fun (r : Registry.rule) -> r.check prog) rules
  in
  let suppressed (f : Finding.t) =
    match
      List.find_opt (fun (x : Cmt_load.file) -> x.rel = f.file) files
    with
    | None -> false
    | Some x -> Suppress.suppressed x.spans ~rule:f.rule ~line:f.line
  in
  let surviving =
    List.filter (fun f -> not (suppressed f)) findings
    |> List.sort_uniq Finding.compare
  in
  (surviving, List.length files)

let report_json ~root findings : Obs.Sink.json =
  Obj
    [
      ("tool", String tool);
      ("root", String root);
      ( "rules",
        List
          (List.map
             (fun (r : Registry.rule) -> Obs.Sink.String r.name)
             Registry.all) );
      ("finding_count", Int (List.length findings));
      ("findings", List (List.map Finding.to_json findings));
    ]

let usage =
  "vbr_verify [--root DIR] [--json FILE] [--sarif FILE] [--rules r1,r2] \
   [--quiet]"

let main () =
  let root = ref "." in
  let json = ref "" in
  let sarif = ref "" in
  let quiet = ref false in
  let rules = ref Registry.all in
  let set_rules s =
    rules :=
      List.map
        (fun n ->
          match Registry.find n with
          | Some r -> r
          | None ->
              raise
                (Arg.Bad
                   (Printf.sprintf "unknown rule %S (known: %s)" n
                      (String.concat ", "
                         (List.map
                            (fun (r : Registry.rule) -> r.name)
                            Registry.all)))))
        (String.split_on_char ',' s)
  in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR scan root (default .)");
      ("--json", Arg.Set_string json, "FILE write a JSON report");
      ("--sarif", Arg.Set_string sarif, "FILE write a SARIF 2.1.0 report");
      ("--rules", Arg.String set_rules, "r1,r2 restrict to these rules");
      ("--quiet", Arg.Set quiet, " suppress per-finding text output");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    usage;
  let findings, nfiles = run ~rules:!rules ~root:!root () in
  if not !quiet then
    List.iter (fun f -> print_endline (Finding.to_string f)) findings;
  if !json <> "" then
    Obs.Sink.write_file !json (report_json ~root:!root findings);
  if !sarif <> "" then
    Sarif.write_file !sarif ~tool ~rules:(Registry.docs ()) findings;
  if nfiles = 0 then begin
    Printf.eprintf
      "vbr-verify: no .cmt files under %s/lib -- build the libraries first \
       (dune build @check)\n"
      !root;
    2
  end
  else if findings = [] then begin
    if not !quiet then
      Printf.printf "vbr-verify: %d typed trees clean (%d rules)\n" nfiles
        (List.length !rules);
    0
  end
  else begin
    Printf.printf "vbr-verify: %d finding(s)\n" (List.length findings);
    1
  end
