(* The whole-program model the rules run over.

   Pass 1 extracts every top-level function (at any module/functor
   nesting depth) from every loaded file into one table, keyed by
   (file, name). Pass 2 walks each function body -- and each piece of
   module-level code -- recording *sites*: applications of a named head
   and bare references to known functions (higher-order uses, e.g. a
   body passed to [checkpoint3]). Every site carries

   - its canonical head name (aliases expanded, opens resolved),
   - the function it resolves to, when the callee is in the table
     (unqualified names resolve within the file; [M.f] resolves when
     [M] names a loaded file that defines [f]; anything else --
     functor parameters like [V.get_next], functor applications --
     stays unresolved and is matched by the rules on its name), and
   - whether it sits lexically inside a [checkpoint]/[checkpoint2]/
     [checkpoint3] argument, which is how lexical protection is
     established: a function *passed to* checkpoint3 is a covered
     reference, and everything inside the passed closure inherits
     coverage.

   The rules then run interprocedural fixpoints over [uses] (who refers
   to whom, covered or not) without touching the trees again. *)

open Typedtree
open Lint_core

type fn = {
  id : int;
  file : string;  (* rel source path *)
  scope : Scope.t;
  name : string;
  loc : Location.t;
  params : Ident.t list;
  body : expression;  (* the full bound expression, params included *)
}

type kind =
  | Call of (string * expression) list
      (* label text ("" for unlabeled) and argument, in source order *)
  | Ref  (* the function's name used as a value, not applied *)

type site = {
  owner : int option;  (* enclosing function; None = module-level code *)
  owner_file : string;
  canon : string;
  target : int option;
  in_ckpt : bool;
  loc : Location.t;
  kind : kind;
}

type t = {
  files : Cmt_load.file list;
  fns : fn array;
  sites : site list;
  uses : site list array;  (* per fn id: sites whose target is that fn *)
  fn_sites : site list array;  (* per fn id: sites owned by that fn *)
}

let checkpoint_heads = [ "checkpoint"; "checkpoint2"; "checkpoint3" ]

let is_checkpoint canon =
  Ast_util.is_qualified canon
  && List.mem (Ast_util.last_component canon) checkpoint_heads

let label_text = function
  | Asttypes.Nolabel -> ""
  | Asttypes.Labelled s | Asttypes.Optional s -> s

(* ---- pass 1: function extraction ---- *)

let extract_fns (files : Cmt_load.file list) : fn array =
  let fns = ref [] in
  let next = ref 0 in
  let add ~file ~scope name loc params body =
    let id = !next in
    incr next;
    fns := { id; file; scope; name; loc; params; body } :: !fns
  in
  List.iter
    (fun (f : Cmt_load.file) ->
      let it =
        {
          Tast_iterator.default_iterator with
          structure_item =
            (fun it si ->
              (match si.str_desc with
              | Tstr_value (_, vbs) ->
                  List.iter
                    (fun vb ->
                      match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
                      | Tpat_var (_, name), Texp_function _ ->
                          let params, _ = Tast_util.peel_params vb.vb_expr in
                          add ~file:f.rel ~scope:f.scope name.txt vb.vb_loc
                            params vb.vb_expr
                      | _ -> ())
                    vbs
              | _ -> ());
              (* Recurse: functions inside [module]/functor bodies are
                 top-level for our purposes. The default iterator
                 visits nested structures. *)
              Tast_iterator.default_iterator.structure_item it si);
        }
      in
      it.structure it f.str)
    files;
  let arr = Array.of_list (List.rev !fns) in
  Array.sort (fun a b -> compare a.id b.id) arr;
  arr

(* ---- pass 2: site collection ---- *)

(* module name ("Vbr_list") -> file defining it *)
let module_file_table (files : Cmt_load.file list) =
  let t = Hashtbl.create 32 in
  List.iter
    (fun (f : Cmt_load.file) ->
      let m =
        String.capitalize_ascii
          (Filename.remove_extension (Filename.basename f.rel))
      in
      if not (Hashtbl.mem t m) then Hashtbl.add t m f.rel)
    files;
  t

let build (files : Cmt_load.file list) : t =
  let fns = extract_fns files in
  let by_file_name = Hashtbl.create 64 in
  Array.iter
    (fun (f : fn) ->
      (* Later bindings shadow earlier ones of the same name. *)
      Hashtbl.replace by_file_name (f.file, f.name) f.id)
    fns;
  let mod_file = module_file_table files in
  let resolve ~file canon =
    if not (Ast_util.is_qualified canon) then
      Hashtbl.find_opt by_file_name (file, canon)
    else
      match List.rev (String.split_on_char '.' canon) with
      | last :: m :: _ -> (
          match Hashtbl.find_opt mod_file m with
          | Some file' -> Hashtbl.find_opt by_file_name (file', last)
          | None -> None)
      | _ -> None
  in
  let sites = ref [] in
  let record s = sites := s :: !sites in
  let walk_fn_body (f : Cmt_load.file) aliases owner (body : expression) =
    let in_ckpt = ref false in
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun it e ->
            match e.exp_desc with
            | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
                let canon = Tast_util.canonical aliases p in
                let argl =
                  List.filter_map
                    (fun (lbl, a) ->
                      Option.map (fun a -> (label_text lbl, a)) a)
                    args
                in
                record
                  {
                    owner;
                    owner_file = f.rel;
                    canon;
                    target = resolve ~file:f.rel canon;
                    in_ckpt = !in_ckpt;
                    loc = e.exp_loc;
                    kind = Call argl;
                  };
                let saved = !in_ckpt in
                if is_checkpoint canon then in_ckpt := true;
                List.iter (fun (_, a) -> it.expr it a) argl;
                in_ckpt := saved
            | Texp_ident (p, _, _) -> (
                let canon = Tast_util.canonical aliases p in
                match resolve ~file:f.rel canon with
                | Some id ->
                    record
                      {
                        owner;
                        owner_file = f.rel;
                        canon;
                        target = Some id;
                        in_ckpt = !in_ckpt;
                        loc = e.exp_loc;
                        kind = Ref;
                      }
                | None -> ())
            | _ -> Tast_iterator.default_iterator.expr it e)
      }
    in
    it.expr it body
  in
  (* Walk every file once: extracted function bodies get their fn id as
     owner; all other module-level expressions get owner [None]. *)
  List.iter
    (fun (f : Cmt_load.file) ->
      let aliases = Tast_util.collect_aliases f.str in
      let it =
        {
          Tast_iterator.default_iterator with
          structure_item =
            (fun it si ->
              (match si.str_desc with
              | Tstr_value (_, vbs) ->
                  List.iter
                    (fun vb ->
                      let owner =
                        match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
                        | Tpat_var (_, name), Texp_function _ ->
                            Hashtbl.find_opt by_file_name (f.rel, name.txt)
                        | _ -> None
                      in
                      walk_fn_body f aliases owner vb.vb_expr)
                    vbs
              | Tstr_eval (e, _) -> walk_fn_body f aliases None e
              | _ -> ());
              Tast_iterator.default_iterator.structure_item it si);
          (* Expressions under Tstr_value/Tstr_eval are walked above
             with ownership; stop the default iterator from walking
             them a second time. *)
          expr = (fun _ _ -> ());
        }
      in
      it.structure it f.str)
    files;
  let sites = List.rev !sites in
  let uses = Array.make (Array.length fns) [] in
  let fn_sites = Array.make (Array.length fns) [] in
  List.iter
    (fun s ->
      (match s.target with
      | Some id -> uses.(id) <- s :: uses.(id)
      | None -> ());
      match s.owner with
      | Some id -> fn_sites.(id) <- s :: fn_sites.(id)
      | None -> ())
    sites;
  Array.iteri (fun i l -> uses.(i) <- List.rev l) uses;
  Array.iteri (fun i l -> fn_sites.(i) <- List.rev l) fn_sites;
  { files; fns; sites; uses; fn_sites }

(* ---- shared helpers for rules ---- *)

let file_kind (p : t) rel : Scope.kind =
  match List.find_opt (fun (f : Cmt_load.file) -> f.rel = rel) p.files with
  | Some f -> f.scope.kind
  | None -> Scope.Other

(* Does [f] call any of [plane] (by qualified last component)? *)
let engages (p : t) plane (id : int) =
  List.exists
    (fun s ->
      match s.kind with
      | Call _ ->
          Ast_util.is_qualified s.canon
          && List.mem (Ast_util.last_component s.canon) plane
      | Ref -> false)
    p.fn_sites.(id)

(* Module-level sites of a given file. *)
let toplevel_sites (p : t) rel =
  List.filter (fun s -> s.owner = None && s.owner_file = rel) p.sites

let finding ~rule ~file (loc : Location.t) ~message ~hint =
  Finding.make ~rule ~file ~line:(Tast_util.line_of loc)
    ~col:(Tast_util.col_of loc) ~message ~hint
