(* raw-atomic: optimistic vbr_* structures must not touch shared words
   with raw Atomic operations — every read goes through the versioned
   plane's epoch-validated methods (read_root/get_next/get_key/...) and
   every write through a versioned CAS (update/mark/cas_root/...), or the
   paper's ABA/staleness argument (PAPER.md §4) no longer covers it. The
   plane implementors (lib/core, lib/memsim) are the only allowlisted
   users of Atomic on node words. *)
open Lint_core

let name = "raw-atomic"

let banned =
  [
    "Atomic.get";
    "Atomic.set";
    "Atomic.compare_and_set";
    "Atomic.exchange";
    "Atomic.fetch_and_add";
    "Atomic.incr";
    "Atomic.decr";
  ]

(* [Atomic.get (Padded.cell c)] and friends are exempt: [Padded.cell] is
   the identity whose whole point is to mark an access as touching padded
   plane bookkeeping (a counter, an announcement slot) rather than a
   simulated node word — see lib/memsim/padded.mli and DESIGN §2.13. *)
let is_padded_cell (arg : Parsetree.expression) =
  match arg.pexp_desc with
  | Parsetree.Pexp_apply (head, _) -> (
      match Ast_util.fn_name head with
      | Some n -> Ast_util.suffix_matches n ~suffixes:[ "Padded.cell" ]
      | None -> false)
  | _ -> false

let check (ctx : Rule.ctx) str =
  let findings = ref [] in
  Ast_util.iter_applications str ~f:(fun ~name:fname ~loc args ->
      if
        Ast_util.suffix_matches fname ~suffixes:banned
        && not (List.exists (fun (_, a) -> is_padded_cell a) args)
      then
        findings :=
          Finding.make ~rule:name ~file:ctx.scope.path
            ~line:(Ast_util.line_of loc) ~col:(Ast_util.col_of loc)
            ~message:
              (Printf.sprintf
                 "raw %s in an OPTIMISTIC-backed structure bypasses the \
                  versioned plane"
                 fname)
            ~hint:
              "use the backend's read_root/get_next/get_key for reads and \
               update/mark/cas_root for writes; quiescent-only helpers may \
               carry [@vbr.allow \"raw-atomic\"]"
          :: !findings);
  List.rev !findings

let rule =
  {
    Rule.name;
    doc =
      "no direct Atomic ops on shared words inside vbr_* structures; use \
       the versioned OPTIMISTIC plane";
    check =
      Rule.Ast
        (fun ctx str ->
          match ctx.scope.kind with
          | Scope.Optimistic -> check ctx str
          | _ -> []);
  }
