(* A named rule of the repo's concurrency discipline. AST rules run per
   parsed file; tree rules see the whole file set (mli-coverage). *)
open Lint_core

type ctx = { scope : Scope.t }

type check =
  | Ast of (ctx -> Parsetree.structure -> Finding.t list)
  | Tree of (root:string -> files:string list -> Finding.t list)

type t = {
  name : string;
  doc : string;  (* one-line: the obligation the rule enforces *)
  check : check;
}
