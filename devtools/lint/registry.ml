(* The rule table. Adding a rule = one module exposing [rule] plus one row
   here; the driver, JSON report, --rules filter and test suite all follow
   the table. *)

let all : Rule.t list =
  [
    Raw_atomic.rule;
    Checkpoint_scope.rule;
    Retire_discipline.rule;
    Guarded_deref.rule;
    Determinism.rule;
    Mli_coverage.rule;
  ]

let find name = List.find_opt (fun (r : Rule.t) -> r.name = name) all
let names () = List.map (fun (r : Rule.t) -> r.name) all
