(* mli-coverage: every lib/ module ships an interface. The capability
   planes only mean something if a module's exported surface is explicit
   — an .mli is where GUARDED vs OPTIMISTIC obligations become visible.
   Signature-only carriers — the *_intf.ml files — are exempt: they exist
   to be included and have no hidden surface. *)
open Lint_core

let name = "mli-coverage"

let check ~root ~files =
  List.filter_map
    (fun rel ->
      let scope = Scope.classify rel in
      if not (Scope.in_lib scope) || Scope.is_intf_module scope then None
      else
        let mli = Filename.concat root (Filename.chop_suffix rel ".ml" ^ ".mli") in
        if Sys.file_exists mli then None
        else
          Some
            (Finding.make ~rule:name ~file:rel ~line:1 ~col:0
               ~message:"library module without an .mli interface"
               ~hint:
                 "add a sibling .mli making the exported plane explicit, or \
                  rename to *_intf.ml if the module only carries signatures"))
    files

let rule =
  {
    Rule.name;
    doc = "every lib/ module ships an .mli (signature carriers *_intf.ml exempt)";
    check = Rule.Tree (fun ~root ~files -> check ~root ~files);
  }
