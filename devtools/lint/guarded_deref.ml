(* guarded-deref: in GUARDED-backed structures, loads and CASes of node
   words (anything reached through an accessor chain like
   [Arena.get]/[Node.next0]/[next_word t i]) are only safe while the
   protection plane is engaged — Brown's critique is precisely that
   integrators skip the protect/validate step. The syntactic contract:
   an Atomic operation whose subject is produced by a function application
   (a node word; root words are plain record fields) must live in a
   function body that engages the plane (protect / protect_own / transfer
   / begin_op / end_op). Construction-time and quiescent helpers document
   their single-threadedness with [@vbr.allow "guarded-deref"]. *)
open Lint_core
open Parsetree

let name = "guarded-deref"

let atomic_ops =
  [
    "Atomic.get";
    "Atomic.set";
    "Atomic.compare_and_set";
    "Atomic.exchange";
    "Atomic.fetch_and_add";
  ]

let plane = [ "protect"; "protect_own"; "transfer"; "begin_op"; "end_op" ]

let engages_plane apps =
  List.exists
    (fun (fname, _, _) ->
      Ast_util.is_qualified fname
      && List.mem (Ast_util.last_component fname) plane)
    apps

let check (ctx : Rule.ctx) str =
  let findings = ref [] in
  Ast_util.iter_toplevel_bindings str ~f:(fun ~name:_ vb ->
      let apps = Ast_util.applications_in vb.pvb_expr in
      if not (engages_plane apps) then
        List.iter
          (fun (fname, loc, args) ->
            if Ast_util.suffix_matches fname ~suffixes:atomic_ops then
              (* Node word iff the subject is computed by an accessor
                 chain; a plain path (t.top, a root word) is exempt. *)
              let subject_is_node_word =
                match args with
                | (_, subject) :: _ -> Ast_util.contains_application subject
                | [] -> false
              in
              if subject_is_node_word then
                findings :=
                  Finding.make ~rule:name ~file:ctx.scope.path
                    ~line:(Ast_util.line_of loc) ~col:(Ast_util.col_of loc)
                    ~message:
                      (Printf.sprintf
                         "%s on a node word in a body that never engages the \
                          protection plane"
                         fname)
                    ~hint:
                      "route the read through R.protect (or call \
                       begin_op/protect_own in this body); single-threaded \
                       construction or quiescent helpers carry [@vbr.allow \
                       \"guarded-deref\"]"
                  :: !findings)
          apps);
  List.rev !findings

let rule =
  {
    Rule.name;
    doc =
      "in GUARDED-backed modules, node-word Atomic ops must sit in bodies \
       that engage the protect/begin_op plane";
    check =
      Rule.Ast
        (fun ctx str ->
          match ctx.scope.kind with
          | Scope.Guarded -> check ctx str
          | _ -> []);
  }
