(* determinism: benchmarks and structures must be replayable — seeded RNG
   only, and wall-clock reads confined to the measurement layer
   (lib/harness + lib/obs). A wall-clock read or self-seeded RNG anywhere
   else makes a failing run unreproducible, which the stress/linearization
   suites depend on. *)
open Lint_core
open Parsetree

let name = "determinism"

let banned =
  [
    "Random.self_init";
    "Random.State.make_self_init";
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.localtime";
    "Unix.gmtime";
    "Sys.time";
  ]

let check (ctx : Rule.ctx) str =
  let findings = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
              let fname = Ast_util.flat_of_longident txt in
              if Ast_util.suffix_matches fname ~suffixes:banned then
                findings :=
                  Finding.make ~rule:name ~file:ctx.scope.path
                    ~line:(Ast_util.line_of e.pexp_loc)
                    ~col:(Ast_util.col_of e.pexp_loc)
                    ~message:
                      (Printf.sprintf
                         "%s outside the measurement layer breaks run \
                          replayability"
                         fname)
                    ~hint:
                      "seed RNGs explicitly (Random.State.make [| seed |]) \
                       and take timings through lib/harness or lib/obs; a \
                       deliberate wall-clock read carries [@vbr.allow \
                       \"determinism\"]"
                  :: !findings
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it str;
  List.rev !findings

let rule =
  {
    Rule.name;
    doc =
      "no self-seeded RNG or wall-clock reads outside lib/harness and \
       lib/obs";
    check =
      Rule.Ast
        (fun ctx str ->
          match ctx.scope.kind with
          | Scope.Timed -> []
          | _ -> check ctx str);
  }
