(* retire-discipline: a node may only be retired after its final unlink,
   i.e. after this operation won a logical-delete mark or an unlink CAS —
   retiring a still-reachable node is the use-after-free the SMR schemes
   exist to prevent. Concretely, every [retire] call must be preceded,
   in the same function body, by a mark/CAS-plane call. [dealloc] is the
   never-published fast path: it must stay local to the operation that
   allocated the node (test code is outside the lint scope and may
   dealloc freely). *)
open Lint_core

let name = "retire-discipline"

(* Calls that witness a logical delete / unlink in the same body. *)
let cas_like = [ "mark"; "update"; "cas_root"; "compare_and_set" ]

let is_retire fname =
  Ast_util.is_qualified fname && Ast_util.last_component fname = "retire"

let is_dealloc fname =
  Ast_util.is_qualified fname && Ast_util.last_component fname = "dealloc"

let is_alloc fname =
  Ast_util.is_qualified fname && Ast_util.last_component fname = "alloc"

let is_cas fname = List.mem (Ast_util.last_component fname) cas_like

let pos_before (a : Location.t) (b : Location.t) =
  a.loc_start.pos_lnum < b.loc_start.pos_lnum
  || a.loc_start.pos_lnum = b.loc_start.pos_lnum
     && a.loc_start.pos_cnum < b.loc_start.pos_cnum

let check (ctx : Rule.ctx) str =
  let findings = ref [] in
  Ast_util.iter_toplevel_bindings str ~f:(fun ~name:_ vb ->
      let apps = Ast_util.applications_in vb.Parsetree.pvb_expr in
      let flag rule_msg hint loc =
        findings :=
          Finding.make ~rule:name ~file:ctx.scope.path
            ~line:(Ast_util.line_of loc) ~col:(Ast_util.col_of loc)
            ~message:rule_msg ~hint
          :: !findings
      in
      List.iter
        (fun (fname, loc, _) ->
          if is_retire fname then begin
            let witnessed =
              List.exists
                (fun (g, gloc, _) -> is_cas g && pos_before gloc loc)
                apps
            in
            if not witnessed then
              flag
                "retire without a preceding successful mark/CAS in the same \
                 function body"
                "retire must follow the logical delete (mark) or unlink CAS \
                 that made the node unreachable; restructure, or move the \
                 retire next to its witness"
                loc
          end
          else if is_dealloc fname then begin
            let local_alloc =
              List.exists
                (fun (g, gloc, _) -> is_alloc g && pos_before gloc loc)
                apps
            in
            if not local_alloc then
              flag
                "dealloc of a node this function did not allocate"
                "dealloc is only for never-published nodes, local to the \
                 allocating operation (alloc ... dealloc in one body); a \
                 shared node must go through retire"
                loc
          end)
        apps);
  List.rev !findings

let rule =
  {
    Rule.name;
    doc =
      "retire only after a successful mark/unlink CAS in the same body; \
       dealloc only next to its alloc";
    check =
      Rule.Ast
        (fun ctx str ->
          match ctx.scope.kind with
          | Scope.Optimistic | Scope.Guarded -> check ctx str
          | _ -> []);
  }
