(* Offline checker for lifecycle traces (DESIGN.md §2.10): replay an
   Obs.Trace.dump in global sequence order against the dynamic SMR
   invariants and report violations as lint findings, anchored to the
   CSV line of the offending event (event [i] sits on line [i + 3],
   matching Obs.Trace.write_csv).

   Soundness (no false positive on a correct execution) rests on the
   emission placement contract documented in Obs.Trace: protection-
   extending / stage-entering events are emitted after their store,
   shrinking / exiting events before. So if a guard's acquire precedes
   a node's retire in the trace and no release intervenes before the
   reclaim, the protection really did overlap the unlink — which a
   correct scheme never reclaims under. *)
open Lint_core
open Obs

(* Per-slot lifecycle state machine. [Unknown] is the pre-history state
   of a slot first seen mid-trace (its earlier events were never emitted
   or were overwritten): transitions out of it are always accepted. *)
type slot_state = Unknown | Free | Live | Retired | Reused

type guard = {
  g_slot : int;  (* protected index, or 0 for an interval guard *)
  g_lo : int;  (* protected birth interval (interval guards) *)
  g_hi : int;  (* -1 = +inf *)
  g_seq : int;  (* seq of the acquire that installed this guard *)
}

type report = {
  findings : Finding.t list;
  truncated : bool;
      (* dropped > 0: the lifecycle, guard and rollback rules were
         skipped (each ring lost its oldest events, so those rules
         would report pre-history as violations); the epoch rules,
         which are suffix-closed, still ran. *)
}

let line_of i = i + 3

(* [birth, retire] conflicts with a guard's [lo, hi] reservation iff the
   intervals intersect; hi = -1 is +inf. An index guard conflicts iff it
   names the slot. Either way the guard only counts when it was acquired
   before the node's retire was emitted (g_seq < retire_seq): a guard
   published after the unlink is what every scheme's validation step
   exists to tolerate. *)
let guard_conflicts g ~slot ~birth ~retire ~retire_seq =
  g.g_seq < retire_seq
  && (if g.g_slot > 0 then g.g_slot = slot
      else (g.g_hi = -1 || birth <= g.g_hi) && g.g_lo <= retire)

let check ~file (d : Trace.dump) =
  let findings = ref [] in
  let add i ~rule ~message ~hint =
    findings :=
      Finding.make ~rule ~file ~line:(line_of i) ~col:0 ~message ~hint
      :: !findings
  in
  let truncated = d.Trace.d_dropped > 0 in
  let events = d.Trace.d_events in
  let n = Array.length events in
  (* trace-order: the dump must be a strictly increasing seq sequence
     (the global fetch-and-add makes seqs unique; a duplicate or
     inversion means the file was edited or two dumps were spliced). *)
  for i = 1 to n - 1 do
    if events.(i).Trace.e_seq <= events.(i - 1).Trace.e_seq then
      add i ~rule:"trace-order"
        ~message:
          (Printf.sprintf "seq %d does not increase over preceding seq %d"
             events.(i).Trace.e_seq
             events.(i - 1).Trace.e_seq)
        ~hint:
          "dumps are sorted by the global emission counter; re-export the \
           trace rather than editing or concatenating CSVs"
  done;
  (* trace-epoch-monotonic: per thread, the epoch stamp never decreases
     over epoch-bearing events (guard events carry a guard id there and
     epoch 0 means "no clock", so both are skipped). *)
  let last_epoch = Hashtbl.create 16 in
  Array.iteri
    (fun i e ->
      match e.Trace.e_kind with
      | Trace.Guard_acquire | Trace.Guard_release -> ()
      | _ ->
          let ep = e.Trace.e_epoch in
          if ep > 0 then begin
            (match Hashtbl.find_opt last_epoch e.Trace.e_tid with
            | Some prev when ep < prev ->
                add i ~rule:"trace-epoch-monotonic"
                  ~message:
                    (Printf.sprintf
                       "thread %d's epoch went backwards: %d after %d"
                       e.Trace.e_tid ep prev)
                  ~hint:
                    "a thread's reads of the global clock are monotone; an \
                     event stamped with a stale cached epoch (e.g. my_e \
                     after a concurrent advance) breaks replay — stamp with \
                     the epoch read at emission"
            | _ -> ());
            Hashtbl.replace last_epoch e.Trace.e_tid ep
          end)
    events;
  (* trace-epoch-advance: each advance is one tick (v2 = v1 + 1) and no
     two advances produce the same new epoch (they are CAS-or-faa
     mediated, so every transition is unique). *)
  let seen_advance = Hashtbl.create 16 in
  Array.iteri
    (fun i e ->
      if e.Trace.e_kind = Trace.Epoch_advance then begin
        if e.Trace.e_v2 <> e.Trace.e_v1 + 1 then
          add i ~rule:"trace-epoch-advance"
            ~message:
              (Printf.sprintf "epoch advance %d -> %d is not one tick"
                 e.Trace.e_v1 e.Trace.e_v2)
            ~hint:
              "advances go through a CAS or fetch-and-add of +1; emit the \
               (old, old+1) pair actually installed";
        match Hashtbl.find_opt seen_advance e.Trace.e_v2 with
        | Some j ->
            add i ~rule:"trace-epoch-advance"
              ~message:
                (Printf.sprintf
                   "epoch %d installed twice (previous advance at line %d)"
                   e.Trace.e_v2 (line_of j))
              ~hint:
                "two threads cannot both win the advance to the same epoch; \
                 emit only on the successful CAS (or use fetch-and-add so \
                 the transition is unique)"
        | None -> Hashtbl.add seen_advance e.Trace.e_v2 i
      end)
    events;
  if not truncated then begin
    (* trace-rollback-scope: a VBR rollback is only handled inside a
       checkpoint window, so a thread must have armed one first. *)
    let checkpointed = Hashtbl.create 16 in
    (* Per-slot lifecycle machine + latest retire seq (for the guard
       rule below). *)
    let state = Hashtbl.create 1024 in
    let retire_seq = Hashtbl.create 1024 in
    let get_state s =
      match Hashtbl.find_opt state s with Some st -> st | None -> Unknown
    in
    (* Active guards, keyed by (tid, guard slot id). A re-acquire on the
       same key replaces the previous reservation and refreshes g_seq —
       conservative: the checker forgets the older (already validated or
       abandoned) reservation rather than accumulating it. *)
    let guards : (int * int, guard) Hashtbl.t = Hashtbl.create 64 in
    Array.iteri
      (fun i e ->
        let slot = e.Trace.e_slot in
        let tid = e.Trace.e_tid in
        match e.Trace.e_kind with
        | Trace.Checkpoint -> Hashtbl.replace checkpointed tid ()
        | Trace.Rollback ->
            if not (Hashtbl.mem checkpointed tid) then
              add i ~rule:"trace-rollback-scope"
                ~message:
                  (Printf.sprintf
                     "thread %d rolled back without an armed checkpoint" tid)
                ~hint:
                  "Rollback must only be raised under Vbr.checkpoint; wrap \
                   the operation body (see DESIGN.md §2.3)"
        | Trace.Guard_acquire ->
            Hashtbl.replace guards
              (tid, e.Trace.e_epoch)
              {
                g_slot = slot;
                g_lo = e.Trace.e_v1;
                g_hi = e.Trace.e_v2;
                g_seq = e.Trace.e_seq;
              }
        | Trace.Guard_release ->
            if e.Trace.e_epoch = -1 then
              (* all guards of this thread *)
              Hashtbl.iter
                (fun (t, g) _ -> if t = tid then Hashtbl.remove guards (t, g))
                (Hashtbl.copy guards)
            else Hashtbl.remove guards (tid, e.Trace.e_epoch)
        | Trace.Alloc ->
            (match get_state slot with
            | Live ->
                add i ~rule:"trace-lifecycle"
                  ~message:(Printf.sprintf "alloc of live slot %d" slot)
                  ~hint:
                    "the slot was allocated and never retired or deallocated \
                     in between; the pool handed one slot out twice"
            | Retired ->
                add i ~rule:"trace-lifecycle"
                  ~message:
                    (Printf.sprintf "alloc of slot %d before its reclaim" slot)
                  ~hint:
                    "a retired slot must be scanned back to the pool \
                     (Reclaim) before reuse; allocating it early is a \
                     use-after-retire"
            | Unknown | Free | Reused -> ());
            Hashtbl.replace state slot Live
        | Trace.Retire ->
            (match get_state slot with
            | Retired ->
                add i ~rule:"trace-lifecycle"
                  ~message:(Printf.sprintf "double retire of slot %d" slot)
                  ~hint:
                    "retire is once per lifetime; a second retire corrupts \
                     the retired list (VBR's double-retire guard exists for \
                     this)"
            | Free | Reused ->
                add i ~rule:"trace-lifecycle"
                  ~message:
                    (Printf.sprintf "retire of unallocated slot %d" slot)
                  ~hint:
                    "only a live (allocated, published) slot can be retired"
            | Live | Unknown -> ());
            Hashtbl.replace state slot Retired;
            Hashtbl.replace retire_seq slot e.Trace.e_seq
        | Trace.Reclaim ->
            (match get_state slot with
            | Live | Reused ->
                add i ~rule:"trace-lifecycle"
                  ~message:
                    (Printf.sprintf "reclaim of slot %d before its retire"
                       slot)
                  ~hint:
                    "reclamation frees retired slots only; freeing a live \
                     slot is the use-after-free every SMR scheme exists to \
                     prevent"
            | Free ->
                add i ~rule:"trace-lifecycle"
                  ~message:(Printf.sprintf "double reclaim of slot %d" slot)
                  ~hint:"the slot is already back in the pool"
            | Retired | Unknown -> ());
            (match Hashtbl.find_opt retire_seq slot with
            | None -> ()  (* pre-history retire; nothing to anchor *)
            | Some rseq ->
                Hashtbl.iter
                  (fun (gtid, gid) g ->
                    if
                      guard_conflicts g ~slot ~birth:e.Trace.e_v1
                        ~retire:e.Trace.e_v2 ~retire_seq:rseq
                    then
                      add i ~rule:"trace-guard-reclaim"
                        ~message:
                          (Printf.sprintf
                             "slot %d reclaimed while thread %d's guard %d \
                              (acquired before the retire) still covers it"
                             slot gtid gid)
                        ~hint:
                          "the scan must treat a protection published \
                           before the retire as pinning the node; check the \
                           hazard/reservation comparison in the scheme's \
                           scan")
                  guards);
            Hashtbl.replace state slot Free
        | Trace.Reuse ->
            (match get_state slot with
            | Retired ->
                add i ~rule:"trace-lifecycle"
                  ~message:
                    (Printf.sprintf "reuse of slot %d before its reclaim" slot)
                  ~hint:
                    "the pool recycled a slot that was never scanned free; \
                     retired slots must pass the scheme's safety check first"
            | Live ->
                add i ~rule:"trace-lifecycle"
                  ~message:(Printf.sprintf "reuse of live slot %d" slot)
                  ~hint:"the pool recycled a slot that is still published"
            | Free | Unknown | Reused -> ());
            Hashtbl.replace state slot Reused
        | Trace.Dealloc ->
            (match get_state slot with
            | Retired ->
                add i ~rule:"trace-lifecycle"
                  ~message:(Printf.sprintf "dealloc of retired slot %d" slot)
                  ~hint:
                    "dealloc is the no-grace-period return of a never-\
                     published slot; a retired slot must go through Reclaim"
            | Free | Reused ->
                add i ~rule:"trace-lifecycle"
                  ~message:
                    (Printf.sprintf "dealloc of unallocated slot %d" slot)
                  ~hint:"the slot is already in the pool"
            | Live | Unknown -> ());
            Hashtbl.replace state slot Free
        | Trace.Epoch_advance | Trace.Cas_fail | Trace.Sched_yield -> ())
      events
  end;
  { findings = List.rev !findings; truncated }
