(* checkpoint-scope: in OPTIMISTIC-backed modules every epoch-validated
   method call must sit lexically inside a [checkpoint] thunk — the
   methods raise Rollback, and only the checkpoint combinator performs
   the Appendix-B rollback duties (PAPER.md §4.2.1). Helper functions
   whose checkpoints are deliberately installed by their callers (the
   Figure-3 find idiom) document that transfer of obligation with
   [@vbr.allow "checkpoint-scope"] on the binding. *)
open Lint_core
open Parsetree

let name = "checkpoint-scope"

(* The ctx-plane methods that either raise Rollback or must not cross a
   rollback boundary. Matched on the last identifier component of a
   module-qualified call (V.get_next, Vbr.update, ...). *)
let checked =
  [
    "alloc";
    "get_next";
    "get_next_word";
    "get_next_packed";
    "get_next_raw";
    "get_birth";
    "get_key";
    "read_root";
    "read_root_packed";
    "update";
    "mark";
    "cas_root";
    "retire";
    "commit_alloc";
    "refresh_next";
    "heal_stale_edge";
  ]

(* The closure-free [checkpoint2]/[checkpoint3] shapes install scope just
   like [checkpoint]; their body arguments are usually references to
   top-level functions, which carry their own allow annotations. *)
let is_checkpoint_head (e : expression) =
  match Ast_util.fn_name e with
  | Some n -> (
      match Ast_util.last_component n with
      | "checkpoint" | "checkpoint2" | "checkpoint3" -> true
      | _ -> false)
  | None -> false

let check (ctx : Rule.ctx) str =
  let findings = ref [] in
  let in_checkpoint = ref false in
  let flag fname loc =
    findings :=
      Finding.make ~rule:name ~file:ctx.scope.path ~line:(Ast_util.line_of loc)
        ~col:(Ast_util.col_of loc)
        ~message:
          (Printf.sprintf
             "%s may raise Rollback but is not lexically inside a checkpoint \
              thunk"
             fname)
        ~hint:
          "wrap the operation body in V.checkpoint c (fun () -> ...); a \
           helper whose caller installs the checkpoint carries [@vbr.allow \
           \"checkpoint-scope\"] on its binding"
      :: !findings
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_apply (head, args) when is_checkpoint_head head ->
              (* Everything inside the checkpoint's arguments (the ctx and
                 the thunk) is covered. *)
              let saved = !in_checkpoint in
              in_checkpoint := true;
              List.iter (fun (_, a) -> it.expr it a) args;
              in_checkpoint := saved
          | Pexp_apply (head, _) ->
              (match Ast_util.fn_name head with
              | Some fname
                when Ast_util.is_qualified fname
                     && List.mem (Ast_util.last_component fname) checked
                     && not !in_checkpoint ->
                  flag fname e.pexp_loc
              | _ -> ());
              Ast_iterator.default_iterator.expr it e
          | _ -> Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it str;
  List.rev !findings

let rule =
  {
    Rule.name;
    doc =
      "in OPTIMISTIC-backed modules, Rollback-raising method calls must be \
       lexically inside a checkpoint thunk";
    check =
      Rule.Ast
        (fun ctx str ->
          match ctx.scope.kind with
          | Scope.Optimistic -> check ctx str
          | _ -> []);
  }
