(* The lint driver: walk the policed directories, parse every .ml with the
   compiler's own parser, run the rule table, filter [@vbr.allow] spans,
   and report human-readable text plus (optionally) machine-readable JSON
   through Obs.Sink. Exit status 1 iff findings remain. *)
open Lint_core

let scan_dirs = [ "lib"; "bench"; "bin"; "examples" ]
let skip_dirs = [ "_build"; ".git"; "lint_fixtures" ]

let rec walk dir rel acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          let rel_path = if rel = "" then entry else rel ^ "/" ^ entry in
          if Sys.is_directory path then
            if List.mem entry skip_dirs then acc else walk path rel_path acc
          else if Filename.check_suffix entry ".ml" then rel_path :: acc
          else acc)
        acc entries

(* All policed .ml files under [root], as root-relative paths. *)
let collect_files ~root =
  List.concat_map
    (fun d ->
      let dir = Filename.concat root d in
      if Sys.file_exists dir && Sys.is_directory dir then
        List.rev (walk dir d [])
      else [])
    scan_dirs
  |> List.sort String.compare

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

type parsed = {
  scope : Scope.t;
  ast : Parsetree.structure option;  (* None when the file failed to parse *)
  spans : Suppress.span list;
  parse_error : Finding.t option;
}

let load ~root rel =
  let scope = Scope.classify rel in
  match parse_file (Filename.concat root rel) with
  | ast -> { scope; ast = Some ast; spans = Suppress.collect ast; parse_error = None }
  | exception exn ->
      let line, msg =
        match exn with
        | Syntaxerr.Error e ->
            ((Syntaxerr.location_of_error e).loc_start.pos_lnum, "syntax error")
        | _ -> (1, Printexc.to_string exn)
      in
      {
        scope;
        ast = None;
        spans = [];
        parse_error =
          Some
            (Finding.make ~rule:"parse-error" ~file:rel ~line ~col:0
               ~message:msg ~hint:"the linter parses with the compiler's own \
                                   grammar; fix the file");
      }

(* Run the rule table over [root]. Returns the surviving findings,
   sorted. [rules] restricts the table (default: all). *)
let run ?(rules = Registry.all) ~root () =
  let files = collect_files ~root in
  let parsed = List.map (fun rel -> (rel, load ~root rel)) files in
  let ast_findings =
    List.concat_map
      (fun (_, p) ->
        match p.ast with
        | None -> Option.to_list p.parse_error
        | Some ast ->
            List.concat_map
              (fun (r : Rule.t) ->
                match r.check with
                | Rule.Ast f -> f { Rule.scope = p.scope } ast
                | Rule.Tree _ -> [])
              rules)
      parsed
  in
  let tree_findings =
    List.concat_map
      (fun (r : Rule.t) ->
        match r.check with
        | Rule.Tree f -> f ~root ~files
        | Rule.Ast _ -> [])
      rules
  in
  let suppressed (f : Finding.t) =
    match List.assoc_opt f.file parsed with
    | None -> false
    | Some p -> Suppress.suppressed p.spans ~rule:f.rule ~line:f.line
  in
  List.filter (fun f -> not (suppressed f)) (ast_findings @ tree_findings)
  |> List.sort Finding.compare

let report_json ~root findings : Obs.Sink.json =
  Obj
    [
      ("tool", String "vbr-lint");
      ("root", String root);
      ("rules", List (List.map (fun n -> Obs.Sink.String n) (Registry.names ())));
      ("finding_count", Int (List.length findings));
      ("findings", List (List.map Finding.to_json findings));
    ]

let usage = "vbr_lint [--root DIR] [--json FILE] [--rules r1,r2] [--quiet]"

let main () =
  let root = ref "." in
  let json = ref "" in
  let quiet = ref false in
  let rules = ref Registry.all in
  let set_rules s =
    rules :=
      List.map
        (fun n ->
          match Registry.find n with
          | Some r -> r
          | None ->
              raise
                (Arg.Bad
                   (Printf.sprintf "unknown rule %S (known: %s)" n
                      (String.concat ", " (Registry.names ())))))
        (String.split_on_char ',' s)
  in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR scan root (default .)");
      ("--json", Arg.Set_string json, "FILE write a JSON report");
      ("--rules", Arg.String set_rules, "r1,r2 restrict to these rules");
      ("--quiet", Arg.Set quiet, " suppress per-finding text output");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    usage;
  let findings = run ~rules:!rules ~root:!root () in
  if not !quiet then
    List.iter (fun f -> print_endline (Finding.to_string f)) findings;
  if !json <> "" then Obs.Sink.write_file !json (report_json ~root:!root findings);
  if findings = [] then begin
    if not !quiet then
      Printf.printf "vbr-lint: %d files clean (%d rules)\n"
        (List.length (collect_files ~root:!root))
        (List.length !rules);
    0
  end
  else begin
    Printf.printf "vbr-lint: %d finding(s)\n" (List.length findings);
    1
  end
