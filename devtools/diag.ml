(* Consolidated debugging drivers. One executable, three subcommands:

     diag pool    — single-threaded allocator exerciser: random put/take
                    churn against one pool, then drain, printing counters.
     diag ticker  — VBR skiplist throughput ticker: 3 workers of random
                    ops, one line of stats per second for 25s.
     diag hang    — skiplist/VBR disjoint-ownership hang reproducer: runs
                    the striped writer/reader workload until progress
                    stops, then dumps every level with anomaly markers.
     diag trace   — pretty-print a lifecycle trace CSV (vbr-bench --trace):
                    per-kind and per-thread event counts plus the last N
                    events, tid-tagged, for eyeballing an execution tail.
     diag top     — live view over a vbr-kv /metrics endpoint (the same
                    renderer as bin/vbr_top.exe), refreshing at 1 Hz.

   These are operator tools, not tests: they print to stdout and are run
   by hand while chasing a bug. *)

open Memsim

(* ------------------------------------------------------------------ *)
(* diag pool                                                          *)
(* ------------------------------------------------------------------ *)

let pool_exercise () =
  let arena = Arena.create ~capacity:1_000 in
  let global = Global_pool.create ~max_level:4 in
  let pool = Pool.create arena global ~spill:5 in
  let held = ref [] in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 2_000 do
    if Random.State.bool rng && !held <> [] then begin
      match !held with
      | s :: rest ->
          held := rest;
          Pool.put pool s
      | [] -> ()
    end
    else begin
      let lvl = 1 + Random.State.int rng 3 in
      held := Pool.take pool ~level:lvl :: !held
    end
  done;
  List.iter (Pool.put pool) !held;
  Printf.printf "allocated=%d local_free=%d global_batches=%d\n"
    (Arena.allocated arena) (Pool.local_free pool)
    (Global_pool.approx_batches global);
  let drained = ref 0 in
  for lvl = 1 to 4 do
    (try
       while true do
         ignore (Pool.take pool ~level:lvl);
         incr drained
       done
     with Arena.Exhausted -> ());
    Printf.printf "after lvl %d: drained=%d allocated=%d\n" lvl !drained
      (Arena.allocated arena)
  done

(* ------------------------------------------------------------------ *)
(* diag ticker                                                        *)
(* ------------------------------------------------------------------ *)

let ticker () =
  let arena = Arena.create ~capacity:500_000 in
  let global = Global_pool.create ~max_level:Dstruct.Skiplist.max_level in
  let vbr =
    Vbr_core.Vbr.create_tuned ~retire_threshold:8 ~arena ~global ~n_threads:4 ()
  in
  let s = Dstruct.Vbr_skiplist.create vbr in
  let ops = Array.init 4 (fun _ -> Atomic.make 0) in
  let stop = Atomic.make false in
  let worker tid =
    let st = ref (Random.State.make [| tid |]) in
    while not (Atomic.get stop) do
      let k = Random.State.int !st 24 in
      (match Random.State.int !st 3 with
      | 0 -> ignore (Dstruct.Vbr_skiplist.insert s ~tid k)
      | 1 -> ignore (Dstruct.Vbr_skiplist.delete s ~tid k)
      | _ -> ignore (Dstruct.Vbr_skiplist.contains s ~tid k));
      Atomic.incr ops.(tid)
    done
  in
  let ds = List.init 3 (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
  for sec = 1 to 25 do
    Unix.sleepf 1.0;
    let total = Array.fold_left (fun a o -> a + Atomic.get o) 0 ops in
    let st = Vbr_core.Vbr.total_stats vbr in
    Format.printf "t=%d ops=%d %a epoch=%d@." sec total Vbr_core.Vbr.pp_stats st
      (Vbr_core.Epoch.get (Vbr_core.Vbr.epoch vbr))
  done;
  Atomic.set stop true;
  List.iter Domain.join ds

(* ------------------------------------------------------------------ *)
(* diag hang                                                          *)
(* ------------------------------------------------------------------ *)

let n_writers = 3
let n_readers = 2
let n_threads = n_writers + n_readers
let stripe = 16

let hang_repro () =
  let arena = Arena.create ~capacity:500_000 in
  let global = Global_pool.create ~max_level:Dstruct.Skiplist.max_level in
  let vbr =
    Vbr_core.Vbr.create_tuned ~retire_threshold:8 ~arena ~global ~n_threads ()
  in
  let s = Dstruct.Vbr_skiplist.create vbr in
  let ops = Array.init n_threads (fun _ -> Atomic.make 0) in
  let stop = Atomic.make false in
  let writer tid =
    let base = tid * stripe in
    while not (Atomic.get stop) do
      for j = 0 to stripe - 1 do
        ignore (Dstruct.Vbr_skiplist.insert s ~tid (base + j));
        Atomic.incr ops.(tid)
      done;
      for j = 0 to stripe - 1 do
        ignore (Dstruct.Vbr_skiplist.contains s ~tid (base + j));
        Atomic.incr ops.(tid)
      done;
      for j = 0 to stripe - 1 do
        ignore (Dstruct.Vbr_skiplist.delete s ~tid (base + j));
        Atomic.incr ops.(tid)
      done
    done
  in
  let reader tid =
    while not (Atomic.get stop) do
      for k = 0 to (n_writers * stripe) + 8 do
        ignore (Dstruct.Vbr_skiplist.contains s ~tid k);
        Atomic.incr ops.(tid)
      done
    done
  in
  let _ds =
    List.init n_writers (fun t -> Domain.spawn (fun () -> writer t))
    @ List.init n_readers (fun i ->
          Domain.spawn (fun () -> reader (n_writers + i)))
  in
  (* head slot: create allocs tail=1 then head=2 *)
  let head = 2 in
  let dump () =
    Printf.printf "=== DUMP epoch=%d ===\n"
      (Vbr_core.Epoch.get (Vbr_core.Vbr.epoch vbr));
    for l = Dstruct.Skiplist.max_level - 1 downto 0 do
      let visited = Hashtbl.create 64 in
      let rec walk i steps prev_key =
        if steps > 300 then Printf.printf "  L%d: ...TRUNCATED (cycle?)\n" l
        else if Hashtbl.mem visited i then
          Printf.printf "  L%d: CYCLE back to slot %d\n" l i
        else begin
          Hashtbl.add visited i ();
          let n = Arena.get arena i in
          let w = Atomic.get n.Node.next.(min l (n.Node.level - 1)) in
          let tgt = Packed.index w in
          let ver = Packed.version w in
          let mk = Packed.is_marked w in
          let b = Atomic.get n.Node.birth in
          let r = Atomic.get n.Node.retire in
          let anomaly =
            if n.Node.key < prev_key then " KEY-ORDER!"
            else if
              tgt <> 0 && ver < Atomic.get (Arena.get arena tgt).Node.birth
            then " STALE-VER!"
            else ""
          in
          if l = 0 || anomaly <> "" || n.Node.key < 1000000 then
            Printf.printf
              "  L%d slot=%d key=%d b=%d r=%d %s ver=%d tgt=%d(tb=%d)%s\n" l i
              n.Node.key b r
              (if mk then "MARKED" else "ok")
              ver tgt
              (if tgt = 0 then -1
               else Atomic.get (Arena.get arena tgt).Node.birth)
              anomaly;
          if tgt <> 0 && n.Node.key < max_int then walk tgt (steps + 1) n.Node.key
        end
      in
      walk head 0 min_int
    done;
    let st = Vbr_core.Vbr.total_stats vbr in
    Format.printf "stats: %a@." Vbr_core.Vbr.pp_stats st
  in
  let last = ref (-1) in
  let frozen = ref 0 in
  (try
     for _sec = 1 to 60 do
       Unix.sleepf 1.0;
       let total = Array.fold_left (fun a o -> a + Atomic.get o) 0 ops in
       Printf.printf "t ops=%d epoch=%d\n%!" total
         (Vbr_core.Epoch.get (Vbr_core.Vbr.epoch vbr));
       if total = !last then begin
         incr frozen;
         if !frozen >= 3 then begin
           dump ();
           exit 2
         end
       end
       else frozen := 0;
       last := total
     done
   with e -> Printf.printf "exn: %s\n" (Printexc.to_string e));
  Atomic.set stop true;
  print_endline "no hang in 60s"

(* ------------------------------------------------------------------ *)
(* diag trace                                                         *)
(* ------------------------------------------------------------------ *)

let trace_tail path n =
  let d = Obs.Trace.load_csv path in
  let events = d.Obs.Trace.d_events in
  Printf.printf "%s: scheme=%s threads=%d capacity=%d dropped=%d events=%d\n"
    path d.Obs.Trace.d_scheme d.Obs.Trace.d_threads d.Obs.Trace.d_capacity
    d.Obs.Trace.d_dropped (Array.length events);
  print_endline "per kind:";
  List.iter
    (fun k ->
      let c =
        Array.fold_left
          (fun acc e -> if e.Obs.Trace.e_kind = k then acc + 1 else acc)
          0 events
      in
      if c > 0 then Printf.printf "  %-14s %8d\n" (Obs.Trace.kind_to_string k) c)
    Obs.Trace.all_kinds;
  print_endline "per thread:";
  for tid = 0 to d.Obs.Trace.d_threads - 1 do
    let c =
      Array.fold_left
        (fun acc e -> if e.Obs.Trace.e_tid = tid then acc + 1 else acc)
        0 events
    in
    Printf.printf "  tid %-3d %8d\n" tid c
  done;
  let total = Array.length events in
  let first = max 0 (total - n) in
  Printf.printf "last %d events:\n" (total - first);
  for i = first to total - 1 do
    let e = events.(i) in
    Printf.printf "  [%d] t=%dns tid=%d %-14s slot=%d v1=%d v2=%d epoch=%d\n"
      e.Obs.Trace.e_seq e.Obs.Trace.e_t_ns e.Obs.Trace.e_tid
      (Obs.Trace.kind_to_string e.Obs.Trace.e_kind)
      e.Obs.Trace.e_slot e.Obs.Trace.e_v1 e.Obs.Trace.e_v2 e.Obs.Trace.e_epoch
  done

(* ------------------------------------------------------------------ *)
(* diag top                                                           *)
(* ------------------------------------------------------------------ *)

let top host port =
  exit (Net.Top.run ~host ~port ~interval_s:1.0 ~once:false ())

let () =
  match Sys.argv with
  | [| _; "pool" |] -> pool_exercise ()
  | [| _; "ticker" |] -> ticker ()
  | [| _; "hang" |] -> hang_repro ()
  | [| _; "trace"; path |] -> trace_tail path 40
  | [| _; "trace"; path; n |] -> trace_tail path (int_of_string n)
  | [| _; "top"; port |] -> top "127.0.0.1" (int_of_string port)
  | [| _; "top"; host; port |] -> top host (int_of_string port)
  | _ ->
      prerr_endline "usage: diag {pool|ticker|hang|trace FILE [N]|top [HOST] PORT}";
      exit 64
