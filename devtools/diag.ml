let () =
  let arena = Memsim.Arena.create ~capacity:500_000 in
  let global = Memsim.Global_pool.create ~max_level:Dstruct.Skiplist.max_level in
  let vbr = Vbr_core.Vbr.create_tuned ~retire_threshold:8 ~arena ~global ~n_threads:4 () in
  let s = Dstruct.Vbr_skiplist.create vbr in
  let ops = Array.init 4 (fun _ -> Atomic.make 0) in
  let stop = Atomic.make false in
  let worker tid =
    let st = ref (Random.State.make [| tid |]) in
    while not (Atomic.get stop) do
      let k = Random.State.int !st 24 in
      (match Random.State.int !st 3 with
      | 0 -> ignore (Dstruct.Vbr_skiplist.insert s ~tid k)
      | 1 -> ignore (Dstruct.Vbr_skiplist.delete s ~tid k)
      | _ -> ignore (Dstruct.Vbr_skiplist.contains s ~tid k));
      Atomic.incr ops.(tid)
    done
  in
  let ds = List.init 3 (fun i -> Domain.spawn (fun () -> worker (i+1))) in
  for sec = 1 to 25 do
    Unix.sleepf 1.0;
    let total = Array.fold_left (fun a o -> a + Atomic.get o) 0 ops in
    let st = Vbr_core.Vbr.total_stats vbr in
    Format.printf "t=%d ops=%d %a epoch=%d@." sec total Vbr_core.Vbr.pp_stats st
      (Vbr_core.Epoch.get (Vbr_core.Vbr.epoch vbr))
  done;
  Atomic.set stop true;
  List.iter Domain.join ds
