(* One lint finding: a rule violation anchored to a file position, with a
   fix hint so the report is actionable without opening DESIGN.md. *)

type t = {
  rule : string;  (* rule name, e.g. "raw-atomic" *)
  file : string;  (* path relative to the scan root, '/'-separated *)
  line : int;  (* 1-based *)
  col : int;  (* 0-based, like the compiler's *)
  message : string;  (* what is wrong at this site *)
  hint : string;  (* how to fix (or suppress) it *)
}

let make ~rule ~file ~line ~col ~message ~hint =
  { rule; file; line; col; message; hint }

(* Order for stable reports: by file, then position, then rule. *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s@,    hint: %s" f.file f.line f.col
    f.rule f.message f.hint

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s\n    hint: %s" f.file f.line f.col f.rule
    f.message f.hint

let to_json f : Obs.Sink.json =
  Obj
    [
      ("rule", String f.rule);
      ("file", String f.file);
      ("line", Int f.line);
      ("col", Int f.col);
      ("message", String f.message);
      ("hint", String f.hint);
    ]
