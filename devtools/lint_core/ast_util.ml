(* Small helpers over compiler-libs Parsetree shared by the rules. *)

open Parsetree

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let col_of (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

(* "Stdlib.Atomic.get" / "Atomic.get" / "V.get_next" -> dotted string. *)
let flat_of_longident (lid : Longident.t) =
  String.concat "." (Longident.flatten lid)

(* The dotted name of the function in application position, if it is a
   plain (possibly qualified) identifier. *)
let fn_name (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (flat_of_longident txt)
  | _ -> None

let last_component name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

(* Whether the identifier is module-qualified (Atomic.get, V.alloc) rather
   than a bare local name. *)
let is_qualified name = String.contains name '.'

(* [suffix_matches name ~suffixes] is true when [name] is one of the
   suffixes or ends with ".suffix" — so "Stdlib.Atomic.get" matches
   "Atomic.get". *)
let suffix_matches name ~suffixes =
  List.exists
    (fun sfx ->
      name = sfx
      ||
      let ln = String.length name and ls = String.length sfx in
      ln > ls + 1
      && String.sub name (ln - ls - 1) (ls + 1) = "." ^ sfx)
    suffixes

(* Does [e]'s subtree contain any function application at all? Used to
   distinguish node words reached through an accessor chain
   (e.g. [next_word t i], [Arena.get a i]) from entry-point/root words
   named by a plain path (e.g. [t.top]). *)
let contains_application (e : expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (_, _) -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* Iterate over every function application in a structure:
   [f ~name ~loc args] for each [Pexp_apply] whose head is an identifier. *)
let iter_applications (str : structure) ~f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (head, args) -> (
              match fn_name head with
              | Some name -> f ~name ~loc:e.pexp_loc args
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it str

(* Iterate over every "function-level" value binding: the bindings of
   structure-level [let]s, at any module-nesting depth (our data-structure
   modules are functors, so their operations live one [module Make] down).
   [f] receives the binding name (when the pattern is a variable) and the
   binding itself. *)
let iter_toplevel_bindings (str : structure) ~f =
  let it =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  let name =
                    match vb.pvb_pat.ppat_desc with
                    | Ppat_var { txt; _ } -> Some txt
                    | _ -> None
                  in
                  f ~name vb)
                vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
      (* Do not descend into expressions from here: [let ... in] bindings
         inside a function body are part of that function, not separate
         top-level bindings. The default structure_item iteration above
         still reaches nested modules/functors. *)
      expr = (fun _ _ -> ());
    }
  in
  it.structure it str

(* Applications inside one expression subtree, with locations. *)
let applications_in (e : expression) =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (head, args) -> (
              match fn_name head with
              | Some name -> acc := (name, e.pexp_loc, args) :: !acc
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  List.rev !acc
