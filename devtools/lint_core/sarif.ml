(* SARIF 2.1.0 emission: the interchange format GitHub code scanning
   ingests, so CI can annotate PR diffs with findings. One run per
   report; every finding becomes a [result] at error level anchored to
   its file/line/col, with the fix hint folded into the message (SARIF
   has no dedicated hint field). Rule metadata is listed once under the
   tool driver so viewers can show per-rule documentation. *)

let version = "2.1.0"
let schema = "https://json.schemastore.org/sarif-2.1.0.json"

(* [rules] is the (name, one-line doc) table of the emitting tool. *)
let rule_json (name, doc) : Obs.Sink.json =
  Obj
    [
      ("id", String name);
      ("shortDescription", Obj [ ("text", String doc) ]);
      ("defaultConfiguration", Obj [ ("level", String "error") ]);
    ]

let result_json (f : Finding.t) : Obs.Sink.json =
  Obj
    [
      ("ruleId", String f.rule);
      ("level", String "error");
      ("message", Obj [ ("text", String (f.message ^ "; hint: " ^ f.hint)) ]);
      ( "locations",
        List
          [
            Obj
              [
                ( "physicalLocation",
                  Obj
                    [
                      ( "artifactLocation",
                        Obj
                          [
                            ("uri", String f.file);
                            ("uriBaseId", String "SRCROOT");
                          ] );
                      ( "region",
                        Obj
                          [
                            ("startLine", Int f.line);
                            (* SARIF columns are 1-based; findings carry
                               the compiler's 0-based column. *)
                            ("startColumn", Int (f.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]

let to_json ~tool ~rules findings : Obs.Sink.json =
  Obj
    [
      ("$schema", String schema);
      ("version", String version);
      ( "runs",
        List
          [
            Obj
              [
                ( "tool",
                  Obj
                    [
                      ( "driver",
                        Obj
                          [
                            ("name", String tool);
                            ("rules", List (List.map rule_json rules));
                          ] );
                    ] );
                (* No originalUriBaseIds: SRCROOT is the conventional
                   id code-scanning resolves to the checkout root. *)
                ("results", List (List.map result_json findings));
              ];
          ] );
    ]

let write_file path ~tool ~rules findings =
  Obs.Sink.write_file path (to_json ~tool ~rules findings)
