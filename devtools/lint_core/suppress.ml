(* [@vbr.allow "<rule>"] suppression spans.

   The attribute can sit on any expression, value binding, or structure
   item; every finding of the named rule whose location falls inside the
   attributed node's span is dropped. A floating [@@@vbr.allow "<rule>"]
   suppresses the rule for the whole file. The rule name "all" suppresses
   every rule. *)

open Parsetree

type span = { rule : string; first : int; last : int }
(* [first]/[last] are 1-based line numbers, inclusive. *)

let attr_name = "vbr.allow"
let whole_file = max_int

let rec strings_of_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
  | Pexp_apply (head, args) ->
      strings_of_expr head
      @ List.concat_map (fun (_, a) -> strings_of_expr a) args
  | Pexp_tuple es -> List.concat_map strings_of_expr es
  | _ -> []

let rules_of_attr (attr : attribute) =
  if attr.attr_name.txt <> attr_name then []
  else
    match attr.attr_payload with
    | PStr items ->
        List.concat_map
          (fun si ->
            match si.pstr_desc with
            | Pstr_eval (e, _) -> strings_of_expr e
            | _ -> [])
          items
    | _ -> []

let spans_of_attrs attrs ~(loc : Location.t) =
  List.concat_map
    (fun attr ->
      List.map
        (fun rule ->
          { rule; first = Ast_util.line_of loc; last = loc.loc_end.pos_lnum })
        (rules_of_attr attr))
    attrs

(* Parse-tree collector (vbr-lint). *)
let collect (str : structure) =
  let spans = ref [] in
  let add s = spans := s @ !spans in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          add (spans_of_attrs e.pexp_attributes ~loc:e.pexp_loc);
          Ast_iterator.default_iterator.expr it e);
      value_binding =
        (fun it vb ->
          add (spans_of_attrs vb.pvb_attributes ~loc:vb.pvb_loc);
          Ast_iterator.default_iterator.value_binding it vb);
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_attribute attr ->
              (* Floating attribute: file-wide suppression. *)
              add
                (List.map
                   (fun rule -> { rule; first = 1; last = whole_file })
                   (rules_of_attr attr))
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
    }
  in
  it.structure it str;
  !spans

(* Typed-tree collector (vbr-verify). Typedtree nodes carry the very
   same Parsetree attributes, so the verifier honors the identical
   attribute at the identical expr/binding/file granularity: the spans
   produced here for a file are the spans [collect] produces from its
   parse tree. *)
let collect_typed (str : Typedtree.structure) =
  let spans = ref [] in
  let add s = spans := s @ !spans in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          add
            (spans_of_attrs e.Typedtree.exp_attributes
               ~loc:e.Typedtree.exp_loc);
          Tast_iterator.default_iterator.expr it e);
      value_binding =
        (fun it vb ->
          add
            (spans_of_attrs vb.Typedtree.vb_attributes
               ~loc:vb.Typedtree.vb_loc);
          Tast_iterator.default_iterator.value_binding it vb);
      structure_item =
        (fun it si ->
          (match si.Typedtree.str_desc with
          | Typedtree.Tstr_attribute attr ->
              (* Floating attribute: file-wide suppression. *)
              add
                (List.map
                   (fun rule -> { rule; first = 1; last = whole_file })
                   (rules_of_attr attr))
          | _ -> ());
          Tast_iterator.default_iterator.structure_item it si);
    }
  in
  it.structure it str;
  !spans

let suppressed spans ~rule ~line =
  List.exists
    (fun s ->
      (s.rule = rule || s.rule = "all") && line >= s.first && line <= s.last)
    spans
