(* File classification: which plane of the SMR discipline a source file
   belongs to. Rules declare applicability in terms of these kinds, so the
   policy ("vbr_* structures may not touch Atomic directly; lib/core and
   lib/memsim implement the plane and may") lives here in one place. *)

type kind =
  | Plane_impl
      (* lib/core + lib/memsim: the versioned plane's implementors — the
         only modules allowed to touch node words with raw Atomic ops. *)
  | Optimistic  (* lib/dstruct/vbr_*.ml: structures over OPTIMISTIC *)
  | Guarded  (* the remaining lib/dstruct modules: structures over GUARDED *)
  | Scheme_impl  (* lib/reclaim: the guarded schemes themselves *)
  | Timed  (* lib/harness + lib/obs: may read the wall clock *)
  | Other  (* bench/, bin/, examples/, remaining lib/ *)

type t = { path : string; kind : kind }

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let basename path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let classify path =
  let kind =
    if has_prefix ~prefix:"lib/core/" path || has_prefix ~prefix:"lib/memsim/" path
    then Plane_impl
    else if has_prefix ~prefix:"lib/dstruct/" path then
      if has_prefix ~prefix:"vbr_" (basename path) then Optimistic else Guarded
    else if has_prefix ~prefix:"lib/reclaim/" path then Scheme_impl
    else if
      has_prefix ~prefix:"lib/harness/" path || has_prefix ~prefix:"lib/obs/" path
    then Timed
    else Other
  in
  { path; kind }

let in_lib t = has_prefix ~prefix:"lib/" t.path

let is_intf_module t =
  let b = basename t.path in
  match String.rindex_opt b '.' with
  | None -> false
  | Some i ->
      let stem = String.sub b 0 i in
      String.length stem >= 5
      && String.sub stem (String.length stem - 5) 5 = "_intf"
