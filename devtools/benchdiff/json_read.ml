(* A reader for the JSON that Obs.Sink writes — the container ships no
   JSON library, and the bench artifacts only use the subset Sink emits
   (no unicode surrogate pairs, no exotic numbers), so a small
   recursive-descent parser into [Obs.Sink.json] keeps benchdiff
   dependency-free. Strict enough for the gate: any malformed input is a
   hard [Error], never a silently-empty parse. *)

type state = { s : string; mutable pos : int }

exception Fail of string * int

let error st msg = raise (Fail (msg, st.pos))
let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let next st =
  match peek st with
  | Some c ->
      st.pos <- st.pos + 1;
      c
  | None -> error st "unexpected end of input"

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        st.pos <- st.pos + 1;
        true
    | _ -> false
  do
    ()
  done

let expect st c =
  let got = next st in
  if got <> c then error st (Printf.sprintf "expected %c, got %c" c got)

let literal st word value =
  String.iter (fun c -> expect st c) word;
  value

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match next st with
    | '"' -> Buffer.contents buf
    | '\\' ->
        (match next st with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            let hex = String.init 4 (fun _ -> next st) in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error st "bad \\u escape"
            in
            (* Sink only escapes control characters; anything wider is
               preserved as '?' rather than attempting UTF-8. *)
            Buffer.add_char buf
              (if code < 0x80 then Char.chr code else '?')
        | c -> error st (Printf.sprintf "bad escape \\%c" c));
        go ()
    | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  if tok = "" then error st "expected a number";
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
    match float_of_string_opt tok with
    | Some f -> Obs.Sink.Float f
    | None -> error st (Printf.sprintf "bad float %S" tok)
  else
    match int_of_string_opt tok with
    | Some i -> Obs.Sink.Int i
    | None -> error st (Printf.sprintf "bad int %S" tok)

let rec parse_value st : Obs.Sink.json =
  skip_ws st;
  match peek st with
  | Some 'n' -> literal st "null" Obs.Sink.Null
  | Some 't' -> literal st "true" (Obs.Sink.Bool true)
  | Some 'f' -> literal st "false" (Obs.Sink.Bool false)
  | Some '"' -> Obs.Sink.String (parse_string st)
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Obs.Sink.List []
      end
      else begin
        let items = ref [ parse_value st ] in
        skip_ws st;
        while peek st = Some ',' do
          st.pos <- st.pos + 1;
          items := parse_value st :: !items;
          skip_ws st
        done;
        expect st ']';
        Obs.Sink.List (List.rev !items)
      end
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obs.Sink.Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          (k, v)
        in
        let fields = ref [ field () ] in
        while peek st = Some ',' do
          st.pos <- st.pos + 1;
          fields := field () :: !fields
        done;
        expect st '}';
        Obs.Sink.Obj (List.rev !fields)
      end
  | Some c -> parse_number_or_fail st c
  | None -> error st "unexpected end of input"

and parse_number_or_fail st c =
  match c with
  | '-' | '0' .. '9' -> parse_number st
  | c -> error st (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Fail (msg, pos) ->
      Error (Printf.sprintf "%s at offset %d" msg pos)

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error msg -> Error msg
