(* The CI perf ratchet: compare a freshly measured BENCH_*.json against
   the committed trajectory, point by point, and fail on any per-point
   throughput regression beyond a threshold. A "point" is one
   (structure, scheme, threads) cell of a panel; matching is by key, so
   adding a scheme or a thread count to a panel never breaks the gate —
   only making an existing point slower does.

   The threshold is a fraction of the baseline: with threshold 0.15, a
   candidate below 0.85x baseline on any shared point is a regression.
   Points present on only one side are reported but never fail the gate
   (new schemes appear, retired panels drop out). *)

module Json_read = Json_read
(** Re-exported: the library is wrapped behind this module, and the CLI
    and tests both want the reader. *)

type point = {
  p_structure : string;  (* "" for single-structure panels *)
  p_scheme : string;
  p_threads : int;
  p_mops : float;
}

type delta = {
  d_point : point;  (* baseline side *)
  d_base : float;
  d_cand : float;
  d_ratio : float;  (* cand / base *)
}

type report = {
  r_panel : string;
  r_threshold : float;
  r_deltas : delta list;  (* every shared point, worst ratio first *)
  r_regressions : delta list;  (* deltas beyond the threshold *)
  r_only_baseline : point list;
  r_only_candidate : point list;
}

let key p = (p.p_structure, p.p_scheme, p.p_threads)

let field name fields = List.assoc_opt name fields

let as_float = function
  | Some (Obs.Sink.Float f) -> Some f
  | Some (Obs.Sink.Int i) -> Some (float_of_int i)
  | _ -> None

let as_int = function Some (Obs.Sink.Int i) -> Some i | _ -> None
let as_string = function Some (Obs.Sink.String s) -> Some s | _ -> None

(* Steady-state throughput from a point's interval time-series: trim the
   first quarter (warmup) and last tenth (rampdown) of the samples, then
   rate the cumulative op counts over the surviving window. Needs at
   least 3 samples to have a window at all; cumulative "ops" and "t_ms"
   must both be present and the window must span positive time. *)
let steady_state_mops (pf : (string * Obs.Sink.json) list) : float option =
  match field "timeline" pf with
  | Some (Obs.Sink.List samples) when List.length samples >= 3 ->
      let parsed =
        List.filter_map
          (function
            | Obs.Sink.Obj sf -> (
                match
                  (as_float (field "t_ms" sf), as_float (field "ops" sf))
                with
                | Some t, Some o -> Some (t, o)
                | _ -> None)
            | _ -> None)
          samples
      in
      let n = List.length parsed in
      if n < 3 then None
      else
        let arr = Array.of_list parsed in
        let lo = n / 4 in
        let hi = n - 1 - (n / 10) in
        if hi <= lo then None
        else
          let t0, o0 = arr.(lo) and t1, o1 = arr.(hi) in
          let dt_s = (t1 -. t0) /. 1000.0 in
          if dt_s <= 0.0 then None else Some ((o1 -. o0) /. dt_s /. 1e6)
  | _ -> None

(* Extract the throughput points of one panel document. Points missing
   any of threads/mops (robust series, micro estimates, trace metrics)
   yield no point — benchdiff only ratchets throughput panels. Net
   panels spell things differently: "clients" stands in for "threads",
   and throughput falls back from "mops" to the timeline's steady-state
   window, then to end-to-end "wire_mops". *)
let points_of_json (j : Obs.Sink.json) : (string * point list, string) result
    =
  match j with
  | Obs.Sink.Obj fields -> (
      match as_string (field "panel" fields) with
      | None -> Error "document has no \"panel\" field"
      | Some panel ->
          let pts =
            match field "points" fields with
            | Some (Obs.Sink.List items) ->
                List.filter_map
                  (function
                    | Obs.Sink.Obj pf -> (
                        let threads =
                          match as_int (field "threads" pf) with
                          | Some t -> Some t
                          | None -> as_int (field "clients" pf)
                        in
                        let mops =
                          match as_float (field "mops" pf) with
                          | Some m -> Some m
                          | None -> (
                              match steady_state_mops pf with
                              | Some m -> Some m
                              | None -> as_float (field "wire_mops" pf))
                        in
                        match (threads, mops) with
                        | Some threads, Some mops ->
                            Some
                              {
                                p_structure =
                                  Option.value
                                    (as_string (field "structure" pf))
                                    ~default:"";
                                p_scheme =
                                  Option.value
                                    (as_string (field "scheme" pf))
                                    ~default:"";
                                p_threads = threads;
                                p_mops = mops;
                              }
                        | _ -> None)
                    | _ -> None)
                  items
            | _ -> []
          in
          Ok (panel, pts))
  | _ -> Error "document is not a JSON object"

let compare_panels ~threshold ~panel ~(baseline : point list)
    ~(candidate : point list) : report =
  let deltas, only_base =
    List.fold_left
      (fun (ds, lone) bp ->
        match List.find_opt (fun cp -> key cp = key bp) candidate with
        | Some cp ->
            let ratio =
              if bp.p_mops > 0.0 then cp.p_mops /. bp.p_mops
              else if cp.p_mops > 0.0 then Float.infinity
              else 1.0
            in
            ( { d_point = bp; d_base = bp.p_mops; d_cand = cp.p_mops;
                d_ratio = ratio }
              :: ds,
              lone )
        | None -> (ds, bp :: lone))
      ([], []) baseline
  in
  let only_cand =
    List.filter
      (fun cp -> not (List.exists (fun bp -> key bp = key cp) baseline))
      candidate
  in
  let deltas =
    List.sort (fun a b -> compare a.d_ratio b.d_ratio) deltas
  in
  {
    r_panel = panel;
    r_threshold = threshold;
    r_deltas = deltas;
    r_regressions =
      List.filter (fun d -> d.d_ratio < 1.0 -. threshold) deltas;
    r_only_baseline = List.rev only_base;
    r_only_candidate = only_cand;
  }

let compare_json ~threshold ~baseline ~candidate :
    (report, string) result =
  match (points_of_json baseline, points_of_json candidate) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("candidate: " ^ e)
  | Ok (bpanel, bpts), Ok (cpanel, cpts) ->
      if bpanel <> cpanel then
        Error
          (Printf.sprintf "panel mismatch: baseline %S vs candidate %S"
             bpanel cpanel)
      else Ok (compare_panels ~threshold ~panel:bpanel ~baseline:bpts
                 ~candidate:cpts)

let compare_files ~threshold ~baseline ~candidate :
    (report, string) result =
  match Json_read.of_file baseline with
  | Error e -> Error (Printf.sprintf "%s: %s" baseline e)
  | Ok bj -> (
      match Json_read.of_file candidate with
      | Error e -> Error (Printf.sprintf "%s: %s" candidate e)
      | Ok cj -> compare_json ~threshold ~baseline:bj ~candidate:cj)

let point_name p =
  if p.p_structure = "" then
    Printf.sprintf "%s@%dT" p.p_scheme p.p_threads
  else Printf.sprintf "%s/%s@%dT" p.p_structure p.p_scheme p.p_threads

let print_report oc r =
  Printf.fprintf oc
    "[benchdiff] panel %s: %d shared points, threshold -%.0f%%\n" r.r_panel
    (List.length r.r_deltas)
    (r.r_threshold *. 100.0);
  List.iter
    (fun d ->
      Printf.fprintf oc "  %-24s %10.4f -> %10.4f  %+7.1f%%%s\n"
        (point_name d.d_point) d.d_base d.d_cand
        ((d.d_ratio -. 1.0) *. 100.0)
        (if d.d_ratio < 1.0 -. r.r_threshold then "  REGRESSION" else ""))
    r.r_deltas;
  List.iter
    (fun p ->
      Printf.fprintf oc "  %-24s only in baseline (ignored)\n" (point_name p))
    r.r_only_baseline;
  List.iter
    (fun p ->
      Printf.fprintf oc "  %-24s only in candidate (ignored)\n"
        (point_name p))
    r.r_only_candidate;
  (match r.r_regressions with
  | [] -> Printf.fprintf oc "  PASS\n"
  | regs -> Printf.fprintf oc "  FAIL: %d regression(s)\n" (List.length regs));
  flush oc

let report_json r =
  Obs.Sink.Obj
    [
      ("panel", Obs.Sink.String r.r_panel);
      ("threshold", Obs.Sink.Float r.r_threshold);
      ("pass", Obs.Sink.Bool (r.r_regressions = []));
      ( "deltas",
        Obs.Sink.List
          (List.map
             (fun d ->
               Obs.Sink.Obj
                 [
                   ("point", Obs.Sink.String (point_name d.d_point));
                   ("structure", Obs.Sink.String d.d_point.p_structure);
                   ("scheme", Obs.Sink.String d.d_point.p_scheme);
                   ("threads", Obs.Sink.Int d.d_point.p_threads);
                   ("baseline_mops", Obs.Sink.Float d.d_base);
                   ("candidate_mops", Obs.Sink.Float d.d_cand);
                   ("ratio", Obs.Sink.Float d.d_ratio);
                   ( "regression",
                     Obs.Sink.Bool (d.d_ratio < 1.0 -. r.r_threshold) );
                 ])
             r.r_deltas) );
      ( "only_baseline",
        Obs.Sink.List
          (List.map (fun p -> Obs.Sink.String (point_name p))
             r.r_only_baseline) );
      ( "only_candidate",
        Obs.Sink.List
          (List.map (fun p -> Obs.Sink.String (point_name p))
             r.r_only_candidate) );
    ]

(* Threshold resolution: explicit flag > BENCH_DIFF_THRESHOLD env var >
   the 0.15 default the CI ratchet documents. *)
let default_threshold = 0.15

let resolve_threshold = function
  | Some t -> t
  | None -> (
      match Sys.getenv_opt "BENCH_DIFF_THRESHOLD" with
      | Some s -> (
          match float_of_string_opt s with
          | Some t when t > 0.0 && t < 1.0 -> t
          | _ ->
              Printf.eprintf
                "benchdiff: ignoring bad BENCH_DIFF_THRESHOLD %S\n" s;
              default_threshold)
      | None -> default_threshold)
