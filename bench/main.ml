(* The benchmark harness: regenerates every panel of the paper's
   evaluation (Figure 2a-2i), the primitive-cost microbenchmark table, the
   robustness (stalled-thread) experiment, and the design ablations listed
   in DESIGN.md.

   Every panel prints its text table (lib/harness/report.ml) AND writes a
   machine-readable BENCH_<panel>.json next to the working directory:
   throughput points with per-scheme Obs counter snapshots, and — for the
   robustness panel — the sampler's unreclaimed-vs-ops time series.

   Absolute numbers are not comparable to the paper's 64-core testbed (see
   EXPERIMENTS.md); the comparisons of interest are the per-panel ordering
   of schemes and the rough ratios between them. *)

open Harness

let json_path panel = "BENCH_" ^ panel ^ ".json"

let write_json panel fields =
  let path = json_path panel in
  Obs.Sink.write_file path (Obs.Sink.Obj (("panel", Obs.Sink.String panel) :: fields));
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Figure 2: the 3x3 grid of throughput panels.                        *)
(* ------------------------------------------------------------------ *)

type figure = {
  fid : string;
  structure : string;
  profile : Workload.profile;
  range : int;
  paper_ref : string;
}

let figures =
  [
    { fid = "fig2a"; structure = "list"; profile = Workload.search_intensive;
      range = 1024; paper_ref = "Fig 2a: list, 10i/10d/80r" };
    { fid = "fig2b"; structure = "list"; profile = Workload.balanced;
      range = 1024; paper_ref = "Fig 2b: list, 25i/25d/50r" };
    { fid = "fig2c"; structure = "list"; profile = Workload.update_intensive;
      range = 1024; paper_ref = "Fig 2c: list, 50i/50d" };
    { fid = "fig2d"; structure = "skiplist";
      profile = Workload.search_intensive; range = 65536;
      paper_ref = "Fig 2d: skiplist, 10i/10d/80r" };
    { fid = "fig2e"; structure = "skiplist"; profile = Workload.balanced;
      range = 65536; paper_ref = "Fig 2e: skiplist, 25i/25d/50r" };
    { fid = "fig2f"; structure = "skiplist";
      profile = Workload.update_intensive; range = 65536;
      paper_ref = "Fig 2f: skiplist, 50i/50d" };
    { fid = "fig2g"; structure = "hash"; profile = Workload.search_intensive;
      range = 262144; paper_ref = "Fig 2g: hash (10M->262k), 10i/10d/80r" };
    { fid = "fig2h"; structure = "hash"; profile = Workload.balanced;
      range = 262144; paper_ref = "Fig 2h: hash (10M->262k), 25i/25d/50r" };
    { fid = "fig2i"; structure = "hash"; profile = Workload.update_intensive;
      range = 262144; paper_ref = "Fig 2i: hash (10M->262k), 50i/50d" };
  ]

(* Arena sizing: sentinels + live set + churn slack; NoRecl additionally
   needs headroom for every insert of the run since it never reuses. *)
let capacity_for ~structure ~scheme ~range ~duration
    ~(profile : Workload.profile) =
  let sentinels = if structure = "hash" then range + 2 else 70 in
  let churn_slack = 400_000 in
  let base = sentinels + range + churn_slack in
  let cap =
    if scheme = "NoRecl" then
      base
      + int_of_float
          (8_000_000.0 *. duration *. float_of_int profile.Workload.inserts
         /. 100.0)
    else base
  in
  min cap Memsim.Packed.max_index

let schemes_for structure =
  List.filter
    (fun s -> Registry.supports ~structure ~scheme:s)
    Registry.schemes

(* One measured cell: throughput point + the last repeat's counter
   snapshot (+ merged latency histograms in timing mode). *)
type cell = {
  c_threads : int;
  c_scheme : string;
  c_point : Throughput.point;
  c_counters : Obs.Counters.snapshot;
  c_latencies : (string * Obs.Histogram.t) list;
}

let measure_cell ?keydist ~structure ~scheme ~threads ~range ~profile
    ~duration ~repeats ~timed () =
  let capacity = capacity_for ~structure ~scheme ~range ~duration ~profile in
  let last = ref None in
  let make () =
    let inst =
      Registry.make ~structure ~scheme ~n_threads:threads ~range ~capacity ()
    in
    last := Some inst;
    inst
  in
  let point, latencies =
    if timed then
      Throughput.measure_timed ?keydist ~make ~profile ~threads ~range
        ~duration ~repeats ()
    else
      ( Throughput.measure ?keydist ~make ~profile ~threads ~range ~duration
          ~repeats (),
        [] )
  in
  let counters =
    match !last with
    | Some inst -> inst.Registry.stats ()
    | None -> Obs.Counters.empty_snapshot ()
  in
  { c_threads = threads; c_scheme = scheme; c_point = point;
    c_counters = counters; c_latencies = latencies }

let cell_json c =
  let open Obs.Sink in
  let base =
    [
      ("threads", Int c.c_threads);
      ("scheme", String c.c_scheme);
      ("mops", Float c.c_point.Throughput.mops);
      ("stddev", Float c.c_point.Throughput.stddev);
      ("repeats", Int c.c_point.Throughput.repeats);
      ("counters", of_counters c.c_counters);
    ]
  in
  match c.c_latencies with
  | [] -> Obj base
  | lat ->
      Obj
        (base
        @ [
            ( "latency_ns",
              Obj
                (List.map
                   (fun (op, h) -> (op, of_summary (Obs.Histogram.summarize h)))
                   lat) );
          ])

(* --profile: the memory-plane story behind a panel's throughput row.
   One block per thread count, schemes as columns, the counters that the
   sharding/batching/amortization work moves as rows — so "CAS traffic
   visibly reduced" is readable straight off the bench output instead of
   requiring a dig through BENCH_*.json. *)
let profile_events =
  Obs.Event.
    [
      Alloc;
      Pool_recycle;
      Arena_fresh;
      Pool_spill;
      Global_push;
      Global_pop;
      Global_steal;
      Retire;
      Reclaim;
      Scan_skip;
      Epoch_advance;
      Advance_skip;
      Rollback;
      Cas_fail;
      Protect_retry;
    ]

let print_profile ~title cells =
  let threads_list =
    List.sort_uniq compare (List.map (fun c -> c.c_threads) cells)
  in
  Printf.printf "\n[profile] %s - memory-plane counters per run\n" title;
  List.iter
    (fun threads ->
      let row = List.filter (fun c -> c.c_threads = threads) cells in
      Printf.printf "-- %d thread%s\n" threads (if threads = 1 then "" else "s");
      Printf.printf "%-20s" "";
      List.iter (fun c -> Printf.printf "%12s" c.c_scheme) row;
      print_newline ();
      List.iter
        (fun ev ->
          Printf.printf "%-20s" (Obs.Event.to_string ev);
          List.iter
            (fun c ->
              Printf.printf "%12d" (Obs.Counters.get c.c_counters ev))
            row;
          print_newline ())
        profile_events)
    threads_list

let run_figure fig ~keydist ~threads_list ~duration ~repeats ~timed ~profile =
  let columns = schemes_for fig.structure in
  let cells =
    List.concat_map
      (fun threads ->
        List.map
          (fun scheme ->
            measure_cell ~keydist ~structure:fig.structure ~scheme ~threads
              ~range:fig.range ~profile:fig.profile ~duration ~repeats ~timed
              ())
          columns)
      threads_list
  in
  let rows =
    List.map
      (fun threads ->
        ( threads,
          List.map
            (fun scheme ->
              let c =
                List.find
                  (fun c -> c.c_threads = threads && c.c_scheme = scheme)
                  cells
              in
              c.c_point.Throughput.mops)
            columns ))
      threads_list
  in
  Report.print_series
    ~title:
      (Printf.sprintf "[%s] %s (range %d)" fig.fid fig.paper_ref fig.range)
    ~ylabel:"Mops/s" ~columns ~rows;
  if profile then print_profile ~title:fig.fid cells;
  let open Obs.Sink in
  write_json fig.fid
    [
      ("paper_ref", String fig.paper_ref);
      ("structure", String fig.structure);
      ("profile", String fig.profile.Workload.pname);
      ("range", Int fig.range);
      ("keydist", String (Keygen.dist_to_string keydist));
      ("duration_s", Float duration);
      ("repeats", Int repeats);
      ("timed", Bool timed);
      ("points", List (List.map cell_json cells));
    ]

(* ------------------------------------------------------------------ *)
(* Microbenchmark: per-primitive costs (the §5.2 cost story).          *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let mk_scheme scheme =
    Registry.make ~structure:"list" ~scheme ~n_threads:2 ~range:1024
      ~capacity:100_000 ()
  in
  let alloc_retire scheme =
    let inst = mk_scheme scheme in
    Test.make
      ~name:(Printf.sprintf "%s insert+delete (alloc/retire cycle)" scheme)
      (Staged.stage (fun () ->
           ignore (inst.Registry.insert ~tid:0 77);
           ignore (inst.Registry.delete ~tid:0 77)))
  in
  let read_hit scheme =
    let inst = mk_scheme scheme in
    for k = 0 to 127 do
      ignore (inst.Registry.insert ~tid:0 (k * 8))
    done;
    let key = ref 0 in
    Test.make
      ~name:(Printf.sprintf "%s contains(hit)" scheme)
      (Staged.stage (fun () ->
           key := (!key + 8) land 1023;
           ignore (inst.Registry.contains ~tid:0 !key)))
  in
  let vbr_specials () =
    let arena = Memsim.Arena.create ~capacity:10_000 in
    let global = Memsim.Global_pool.create ~max_level:1 in
    let vbr = Vbr_core.Vbr.create_tuned ~arena ~global ~n_threads:2 () in
    let c = Vbr_core.Vbr.ctx vbr ~tid:0 in
    let i, _b =
      Vbr_core.Vbr.checkpoint c (fun () ->
          let i, b = Vbr_core.Vbr.alloc vbr ~tid:0 ~level:1 ~key:1 in
          Vbr_core.Vbr.commit_alloc c i;
          (i, b))
    in
    [
      Test.make ~name:"VBR checkpoint install"
        (Staged.stage (fun () -> Vbr_core.Vbr.checkpoint c (fun () -> ())));
      Test.make ~name:"VBR get_next (validated read)"
        (Staged.stage (fun () ->
             Vbr_core.Vbr.checkpoint c (fun () -> Vbr_core.Vbr.get_next c i)));
      Test.make ~name:"VBR rollback (forced, incl. epoch bump)"
        (Staged.stage (fun () ->
             let first = ref true in
             Vbr_core.Vbr.checkpoint c (fun () ->
                 if !first then begin
                   first := false;
                   ignore
                     (Vbr_core.Epoch.try_advance (Vbr_core.Vbr.epoch vbr)
                        ~expected:(Vbr_core.Epoch.get (Vbr_core.Vbr.epoch vbr)));
                   ignore (Vbr_core.Vbr.get_key c i)
                 end)));
    ]
  in
  let tests =
    List.concat_map (fun s -> [ alloc_retire s; read_hit s ]) Registry.schemes
    @ vbr_specials ()
  in
  let grouped = Test.make_grouped ~name:"primitives" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_newline ();
  print_endline "----------------------------------------------------------";
  print_endline "[micro] primitive costs (ns/op, OLS estimate)";
  print_endline "----------------------------------------------------------";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> (name, nan) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, est) -> Printf.printf "%-55s %12.1f\n" name est) rows;
  print_endline "----------------------------------------------------------";
  let open Obs.Sink in
  write_json "micro"
    [
      ( "estimates_ns",
        Obj (List.map (fun (name, est) -> (name, Float est)) rows) );
    ]

(* ------------------------------------------------------------------ *)
(* Robustness: a stalled thread vs. unreclaimed garbage (§1, §A.2).    *)
(* ------------------------------------------------------------------ *)

let robust ~threads =
  let range = 16384 in
  let checkpoints = 4 and ops_per_checkpoint = 50_000 in
  let total_ops = checkpoints * ops_per_checkpoint in
  let columns = Registry.schemes in
  let per_scheme =
    List.map
      (fun scheme ->
        let capacity =
          capacity_for ~structure:"hash" ~scheme ~range ~duration:2.0
            ~profile:Workload.balanced
        in
        let last = ref None in
        let make () =
          let inst =
            Registry.make ~structure:"hash" ~scheme ~n_threads:threads ~range
              ~capacity ()
          in
          last := Some inst;
          inst
        in
        let series =
          Throughput.run_stalled_series ~make ~profile:Workload.balanced
            ~threads ~range ~total_ops ()
        in
        let counters =
          match !last with
          | Some inst -> inst.Registry.stats ()
          | None -> Obs.Counters.empty_snapshot ()
        in
        (scheme, series, counters))
      columns
  in
  (* Project each scheme's async time series onto the shared ops axis. *)
  let milestone series target =
    match
      List.find_opt (fun s -> s.Throughput.ops >= target) series
    with
    | Some s -> s
    | None -> List.nth series (List.length series - 1)
  in
  let ops_axis =
    List.init checkpoints (fun cp -> (cp + 1) * ops_per_checkpoint)
  in
  let row_at target f =
    List.map (fun (_, series, _) -> f (milestone series target)) per_scheme
  in
  Report.print_counts
    ~title:
      (Printf.sprintf
         "[robust] unreclaimed nodes with 1 stalled thread (%d workers, hash \
          range %d, balanced)"
         (threads - 1) range)
    ~columns
    ~rows:
      (List.map
         (fun t -> (t, row_at t (fun s -> s.Throughput.unreclaimed)))
         ops_axis);
  Report.print_counts
    ~title:
      "[robust] arena slots claimed (memory footprint) at same checkpoints"
    ~columns
    ~rows:
      (List.map
         (fun t -> (t, row_at t (fun s -> s.Throughput.allocated)))
         ops_axis);
  let open Obs.Sink in
  write_json "robust"
    [
      ("structure", String "hash");
      ("profile", String "balanced");
      ("range", Int range);
      ("threads", Int threads);
      ("workers", Int (threads - 1));
      ("total_ops", Int total_ops);
      ( "schemes",
        List
          (List.map
             (fun (scheme, series, counters) ->
               Obj
                 [
                   ("scheme", String scheme);
                   ("counters", of_counters counters);
                   ( "series",
                     List
                       (List.map
                          (fun s ->
                            Obj
                              [
                                ("t_ms", Float s.Throughput.t_ms);
                                ("ops", Int s.Throughput.ops);
                                ("unreclaimed", Int s.Throughput.unreclaimed);
                                ("allocated", Int s.Throughput.allocated);
                              ])
                          series) );
                 ])
             per_scheme) );
    ]

(* ------------------------------------------------------------------ *)
(* Ablation: VBR retired-list threshold vs throughput and epoch rate.  *)
(* ------------------------------------------------------------------ *)

let ablate ~threads ~duration ~repeats =
  let range = 16384 in
  let thresholds = [ 0; 8; 64; 512; 4096 ] in
  print_newline ();
  print_endline
    "------------------------------------------------------------";
  Printf.printf
    "[ablate] VBR retired-list threshold (hash, range %d, update-heavy, %d \
     threads)\n"
    range threads;
  print_endline
    "------------------------------------------------------------";
  Printf.printf "%-12s %12s %22s\n" "threshold" "Mops/s"
    "epoch advances / 200k ops";
  let measured =
    List.map
      (fun threshold ->
        let capacity =
          capacity_for ~structure:"hash" ~scheme:"VBR" ~range ~duration
            ~profile:Workload.update_intensive
        in
        let make () =
          Registry.make ~structure:"hash" ~scheme:"VBR" ~n_threads:threads
            ~range ~capacity ~retire_threshold:threshold ()
        in
        let p =
          Throughput.measure ~make ~profile:Workload.update_intensive ~threads
            ~range ~duration ~repeats ()
        in
        (* A deterministic single-threaded drive to report the epoch-advance
           rate this threshold induces. *)
        let inst =
          Registry.make ~structure:"hash" ~scheme:"VBR" ~n_threads:threads
            ~range ~capacity ~retire_threshold:threshold ()
        in
        Throughput.prefill inst ~range;
        let rng = Rng.create ~seed:99 in
        for _ = 1 to 200_000 do
          let k = Rng.below rng range in
          if Rng.below rng 2 = 0 then ignore (inst.Registry.insert ~tid:0 k)
          else ignore (inst.Registry.delete ~tid:0 k)
        done;
        let advances = inst.Registry.epoch_advances () in
        Printf.printf "%-12d %12.3f %22d\n" threshold p.Throughput.mops
          advances;
        (threshold, p, advances, inst.Registry.stats ()))
      thresholds
  in
  print_endline
    "------------------------------------------------------------";
  let open Obs.Sink in
  write_json "ablate"
    [
      ("structure", String "hash");
      ("profile", String "update-heavy");
      ("range", Int range);
      ("threads", Int threads);
      ( "points",
        List
          (List.map
             (fun (threshold, p, advances, counters) ->
               Obj
                 [
                   ("retire_threshold", Int threshold);
                   ("mops", Float p.Throughput.mops);
                   ("stddev", Float p.Throughput.stddev);
                   ("epoch_advances_per_200k_ops", Int advances);
                   ("counters", of_counters counters);
                 ])
             measured) );
    ]

(* Ablation: conservative epoch frequency (EBR/HE/IBR need frequent epoch
   advances to reclaim promptly; VBR does not — §5.2's explanation). *)
let ablate_epoch_freq ~threads ~duration ~repeats =
  let range = 16384 in
  let freqs = [ 1; 8; 32; 128; 1024 ] in
  let columns = [ "EBR"; "HE"; "IBR" ] in
  print_newline ();
  print_endline
    "------------------------------------------------------------";
  Printf.printf
    "[ablate-freq] allocations per epoch advance (hash, range %d, balanced, \
     %d threads) - Mops/s\n"
    range threads;
  print_endline
    "------------------------------------------------------------";
  Printf.printf "%-12s" "freq";
  List.iter (fun c -> Printf.printf "%10s " c) columns;
  print_newline ();
  let measured =
    List.map
      (fun freq ->
        Printf.printf "%-12d" freq;
        let per_scheme =
          List.map
            (fun scheme ->
              let capacity =
                capacity_for ~structure:"hash" ~scheme ~range ~duration
                  ~profile:Workload.balanced
              in
              let make () =
                Registry.make ~structure:"hash" ~scheme ~n_threads:threads
                  ~range ~capacity ~epoch_freq:freq ()
              in
              let p =
                Throughput.measure ~make ~profile:Workload.balanced ~threads
                  ~range ~duration ~repeats ()
              in
              Printf.printf "%10.3f " p.Throughput.mops;
              (scheme, p))
            columns
        in
        print_newline ();
        (freq, per_scheme))
      freqs
  in
  print_endline
    "------------------------------------------------------------";
  let open Obs.Sink in
  write_json "ablate_freq"
    [
      ("structure", String "hash");
      ("profile", String "balanced");
      ("range", Int range);
      ("threads", Int threads);
      ( "points",
        List
          (List.concat_map
             (fun (freq, per_scheme) ->
               List.map
                 (fun (scheme, (p : Throughput.point)) ->
                   Obj
                     [
                       ("epoch_freq", Int freq);
                       ("scheme", String scheme);
                       ("mops", Float p.Throughput.mops);
                       ("stddev", Float p.Throughput.stddev);
                     ])
                 per_scheme)
             measured) );
    ]

(* ------------------------------------------------------------------ *)
(* Applicability: Harris's original list (§5's HP-inapplicability).    *)
(* ------------------------------------------------------------------ *)

let harris ~threads_list ~duration ~repeats =
  let range = 1024 in
  let profile = Workload.balanced in
  let columns =
    [ "harris/NoRecl"; "harris/EBR"; "harris/VBR"; "michael/EBR" ]
  in
  let make_of = function
    | "harris/NoRecl" -> ("harris", "NoRecl")
    | "harris/EBR" -> ("harris", "EBR")
    | "harris/VBR" -> ("harris", "VBR")
    | _ -> ("list", "EBR")
  in
  let cells =
    List.concat_map
      (fun threads ->
        List.map
          (fun col ->
            let structure, scheme = make_of col in
            let capacity =
              capacity_for ~structure ~scheme ~range ~duration ~profile
            in
            let make () =
              Registry.make ~structure ~scheme ~n_threads:threads ~range
                ~capacity ()
            in
            let p =
              Throughput.measure ~make ~profile ~threads ~range ~duration
                ~repeats ()
            in
            (threads, col, p))
          columns)
      threads_list
  in
  let rows =
    List.map
      (fun threads ->
        ( threads,
          List.map
            (fun col ->
              let _, _, p =
                List.find (fun (t, c, _) -> t = threads && c = col) cells
              in
              p.Throughput.mops)
            columns ))
      threads_list
  in
  Report.print_series
    ~title:
      "[harris] Harris's original list: applicable schemes only (HP/HE/IBR \
       cannot support it, section 5)"
    ~ylabel:"Mops/s" ~columns ~rows;
  let open Obs.Sink in
  write_json "harris"
    [
      ("range", Int range);
      ("profile", String profile.Workload.pname);
      ( "points",
        List
          (List.map
             (fun (threads, col, (p : Throughput.point)) ->
               Obj
                 [
                   ("threads", Int threads);
                   ("variant", String col);
                   ("mops", Float p.Throughput.mops);
                   ("stddev", Float p.Throughput.stddev);
                 ])
             cells) );
    ]

(* ------------------------------------------------------------------ *)
(* Extension: queue and stack throughput across schemes (structures    *)
(* the paper cites as VBR-compatible but does not evaluate). Driven    *)
(* entirely off the registry tables: every structure whose kind is     *)
(* Queue or Stack, under every scheme its row supports — no per-scheme *)
(* or per-structure dispatch here.                                     *)
(* ------------------------------------------------------------------ *)

let queue_stack_structures () =
  List.filter
    (fun st ->
      match Registry.structure_kind ~structure:st with
      | Some Registry.Queue | Some Registry.Stack -> true
      | Some Registry.Set | None -> false)
    Registry.structures

let queue ~keydist ~threads_list ~duration ~repeats ~profile:show_profile =
  (* The 50/50 insert/delete profile is exactly a produce/consume pair
     stream through the set-shaped instance ops: insert enqueues/pushes
     the key, delete dequeues/pops one element. Prefill warms the pool so
     consumers rarely see empty. *)
  let profile = Workload.update_intensive in
  let range = 16384 in
  let all =
    List.map
      (fun structure ->
        let columns = schemes_for structure in
        let cells =
          List.concat_map
            (fun threads ->
              List.map
                (fun scheme ->
                  measure_cell ~keydist ~structure ~scheme ~threads ~range
                    ~profile ~duration ~repeats ~timed:false ())
                columns)
            threads_list
        in
        let rows =
          List.map
            (fun threads ->
              ( threads,
                List.map
                  (fun scheme ->
                    let c =
                      List.find
                        (fun c -> c.c_threads = threads && c.c_scheme = scheme)
                        cells
                    in
                    c.c_point.Throughput.mops)
                  columns ))
            threads_list
        in
        Report.print_series
          ~title:
            (Printf.sprintf
               "[queue] %s: produce+consume pairs (extension; not in the \
                paper)"
               structure)
          ~ylabel:"Mops/s" ~columns ~rows;
        if show_profile then print_profile ~title:structure cells;
        (structure, cells))
      (queue_stack_structures ())
  in
  let open Obs.Sink in
  write_json "queue"
    [
      ("profile", String profile.Workload.pname);
      ("range", Int range);
      ("keydist", String (Keygen.dist_to_string keydist));
      ("duration_s", Float duration);
      ("repeats", Int repeats);
      ( "points",
        List
          (List.concat_map
             (fun (structure, cells) ->
               List.map
                 (fun c ->
                   match cell_json c with
                   | Obj fields ->
                       Obj (("structure", String structure) :: fields)
                   | other -> other)
                 cells)
             all) );
    ]

(* ------------------------------------------------------------------ *)
(* Tracing: one lifecycle trace per scheme over a fixed op budget, plus *)
(* the derived temporal metrics end-of-run counter totals hide          *)
(* (DESIGN.md §2.10). The CSVs feed the offline checker (vbr-trace);    *)
(* the .chrome.json files open in chrome://tracing / Perfetto.          *)
(* ------------------------------------------------------------------ *)

let trace_panel ~threads =
  let structure = "hash" in
  let range = 4096 in
  let total_ops = 24_000 in
  let profile = Workload.balanced in
  (* Sized so the op budget above never overwrites a ring: the CI gate
     replays these CSVs under vbr-trace --no-truncation. *)
  let ring_capacity = 1 lsl 18 in
  print_newline ();
  print_endline
    "------------------------------------------------------------";
  Printf.printf
    "[trace] lifecycle traces (hash, range %d, balanced, %d threads, %d ops)\n"
    range threads total_ops;
  print_endline
    "------------------------------------------------------------";
  Printf.printf "%-8s %9s %8s %10s %12s %12s %12s\n" "scheme" "events"
    "dropped" "rollbacks" "age p50 ns" "age p99 ns" "unreclaimed";
  let per_scheme =
    List.filter
      (fun scheme -> Registry.supports ~structure ~scheme)
      Registry.schemes
    |> List.map (fun scheme ->
           let capacity =
             capacity_for ~structure ~scheme ~range ~duration:1.0 ~profile
           in
           let trace =
             Obs.Trace.create ~capacity:ring_capacity ~n_threads:threads
               ~scheme ()
           in
           let make () =
             Registry.make ~structure ~scheme ~n_threads:threads ~range
               ~capacity ~trace ()
           in
           let _mops, _inst =
             Throughput.run_ops ~make ~profile ~threads ~range ~total_ops ()
           in
           let d = Obs.Trace.dump trace in
           let csv = Printf.sprintf "TRACE_%s.csv" scheme in
           let chrome = Printf.sprintf "TRACE_%s.chrome.json" scheme in
           Obs.Trace.write_csv csv d;
           Obs.Trace.write_chrome chrome d;
           let m = Obs.Trace_metrics.compute d in
           Printf.printf "%-8s %9d %8d %10d %12d %12d %12d\n" scheme
             m.Obs.Trace_metrics.m_events m.Obs.Trace_metrics.m_dropped
             m.Obs.Trace_metrics.m_rollbacks
             m.Obs.Trace_metrics.m_age.Obs.Histogram.p50
             m.Obs.Trace_metrics.m_age.Obs.Histogram.p99
             m.Obs.Trace_metrics.m_unreclaimed_end;
           (scheme, csv, chrome, m))
  in
  print_endline
    "------------------------------------------------------------";
  List.iter
    (fun (_, csv, chrome, _) -> Printf.printf "wrote %s, %s\n%!" csv chrome)
    per_scheme;
  let open Obs.Sink in
  write_json "trace"
    [
      ("structure", String structure);
      ("profile", String profile.Workload.pname);
      ("range", Int range);
      ("threads", Int threads);
      ("total_ops", Int total_ops);
      ( "schemes",
        List
          (List.map
             (fun (_, csv, chrome, m) ->
               match Obs.Trace_metrics.to_json m with
               | Obj fields ->
                   Obj
                     (fields @ [ ("csv", String csv); ("chrome", String chrome) ])
               | other -> other)
             per_scheme) );
    ]

(* ------------------------------------------------------------------ *)
(* Net: the vbr-kv service end to end over loopback — every hash-      *)
(* capable scheme serves real sockets while the loadgen measures wire  *)
(* throughput/latency and samples the server's SMR counters (STATS),   *)
(* so reclamation behaviour under served traffic lands next to the     *)
(* in-process panels (DESIGN.md 2.12).                                 *)
(* ------------------------------------------------------------------ *)

let net_panel ~keydist ~threads ~duration =
  let range = 16384 in
  let columns = schemes_for "hash" in
  print_newline ();
  print_endline
    "------------------------------------------------------------";
  Printf.printf
    "[net] vbr-kv over loopback (hash, range %d, %d clients, batch 8, 90%% \
     reads, %s)\n"
    range threads
    (Keygen.dist_to_string keydist);
  print_endline
    "------------------------------------------------------------";
  Printf.printf "%-8s %10s %10s %10s %8s %12s %14s\n" "scheme" "wire Mops"
    "p50 ns" "p99 ns" "errors" "unreclaimed" "epoch advances";
  let points =
    List.map
      (fun scheme ->
        let server =
          Net.Server.start
            {
              Net.Server.default_config with
              Net.Server.scheme;
              range;
              buckets = range;
              workers = 2;
              prefill = true;
            }
        in
        let cfg =
          {
            Net.Loadgen.default_config with
            Net.Loadgen.port = Net.Server.port server;
            clients = max 1 threads;
            duration;
            keydist;
            range;
            batch = 8;
            reads = 90;
          }
        in
        let r = Net.Loadgen.run cfg in
        ignore (Net.Server.stop server);
        let s = Obs.Histogram.summarize r.Net.Loadgen.r_latency in
        let gauge k =
          Option.value
            (List.assoc_opt k r.Net.Loadgen.r_server_after)
            ~default:0
        in
        Printf.printf "%-8s %10.3f %10d %10d %8d %12d %14d\n" scheme
          r.Net.Loadgen.r_mops s.Obs.Histogram.p50 s.Obs.Histogram.p99
          r.Net.Loadgen.r_errors (gauge "unreclaimed")
          (gauge "epoch_advances");
        (scheme, cfg, r))
      columns
  in
  print_endline
    "------------------------------------------------------------";
  let open Obs.Sink in
  write_json "net"
    [
      ("structure", String "hash");
      ("range", Int range);
      ( "points",
        List
          (List.map
             (fun (scheme, cfg, r) ->
               match Net.Loadgen.report_json cfg r with
               | Obj fields -> Obj (("scheme", String scheme) :: fields)
               | other -> other)
             points) );
    ]

(* ------------------------------------------------------------------ *)
(* CLI.                                                                *)
(* ------------------------------------------------------------------ *)

let all_experiments =
  List.map (fun f -> f.fid) figures
  @ [
      "micro"; "robust"; "ablate"; "ablate-freq"; "harris"; "queue"; "trace";
      "net";
    ]

let run_experiments names ~keydist ~threads_list ~duration ~repeats ~timed
    ~profile =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.find_opt (fun f -> f.fid = name) figures with
      | Some fig ->
          run_figure fig ~keydist ~threads_list ~duration ~repeats ~timed
            ~profile
      | None -> (
          match name with
          | "micro" -> micro ()
          | "robust" ->
              robust ~threads:(max 2 (List.fold_left max 1 threads_list))
          | "ablate" ->
              ablate
                ~threads:(max 2 (List.fold_left max 1 threads_list))
                ~duration ~repeats
          | "ablate-freq" ->
              ablate_epoch_freq
                ~threads:(max 2 (List.fold_left max 1 threads_list))
                ~duration ~repeats
          | "harris" -> harris ~threads_list ~duration ~repeats
          | "queue" -> queue ~keydist ~threads_list ~duration ~repeats ~profile
          | "trace" ->
              trace_panel ~threads:(max 2 (List.fold_left max 1 threads_list))
          | "net" ->
              net_panel ~keydist
                ~threads:(max 2 (List.fold_left max 1 threads_list))
                ~duration
          | other -> Printf.eprintf "unknown experiment: %s (skipped)\n" other))
    names;
  Printf.printf "\ntotal bench time: %.1fs\n%!" (Unix.gettimeofday () -. t0)
  (* Deliberate wall-clock read: total bench time is operator feedback,
     never part of a recorded measurement. *)
  [@@vbr.allow "determinism"]

let () =
  let open Cmdliner in
  let experiments =
    let doc =
      "Experiments to run: fig2a..fig2i, micro, robust, ablate, ablate-freq, \
       harris, queue, trace, net, or 'all' / 'figures'."
    in
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let threads =
    let doc = "Comma-separated worker-thread counts." in
    Arg.(value & opt (list int) [ 1; 2; 4; 8 ] & info [ "threads" ] ~doc)
  in
  let duration =
    let doc = "Seconds per measurement point." in
    Arg.(value & opt float 0.4 & info [ "duration" ] ~doc)
  in
  let repeats =
    let doc = "Repeats per point (mean reported)." in
    Arg.(value & opt int 3 & info [ "repeats" ] ~doc)
  in
  let quick =
    let doc = "Shrink to a smoke-test run (threads 1,4; 0.1s; 1 repeat)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let keydist =
    let doc =
      "Key distribution for the figure/queue/net panel traffic: uniform, or \
       zipf:<theta> with theta in (0, 1) — e.g. zipf:0.99 for the YCSB-style \
       hot-key skew."
    in
    Arg.(value & opt string "uniform" & info [ "keydist" ] ~doc)
  in
  let timed =
    let doc =
      "Per-operation latency mode for the figure panels: time every \
       operation into log-bucketed histograms and include p50/p90/p99 \
       summaries in the BENCH_*.json output. Slightly depresses the \
       throughput numbers; off by default."
    in
    Arg.(value & flag & info [ "timed" ] ~doc)
  in
  let profile =
    let doc =
      "Print a memory-plane counter breakdown (pool recycles, global-pool \
       push/pop/steal CAS traffic, skipped scans, epoch-advance cadence, \
       rollbacks) per scheme under each figure/queue panel."
    in
    Arg.(value & flag & info [ "profile" ] ~doc)
  in
  let main exps threads duration repeats quick keydist timed profile =
    let keydist =
      match Keygen.parse keydist with
      | Ok d -> d
      | Result.Error msg ->
          Printf.eprintf "--keydist: %s\n" msg;
          exit 2
    in
    let names =
      List.concat_map
        (function
          | "all" -> all_experiments
          | "figures" -> List.map (fun f -> f.fid) figures
          | n -> [ n ])
        exps
    in
    let threads_list, duration, repeats =
      if quick then ([ 1; 4 ], 0.1, 1) else (threads, duration, repeats)
    in
    run_experiments names ~keydist ~threads_list ~duration ~repeats ~timed
      ~profile
  in
  let cmd =
    Cmd.v
      (Cmd.info "vbr-bench"
         ~doc:"Regenerate the VBR paper's evaluation (SPAA 2021, Figure 2)")
      Term.(
        const main $ experiments $ threads $ duration $ repeats $ quick
        $ keydist $ timed $ profile)
  in
  exit (Cmd.eval cmd)
