(* Sequential correctness of the hash-table variants: bucket routing,
   cross-bucket behaviour, shared-tail safety, and Set-model equivalence. *)

module Iset = Set.Make (Int)

type handle = {
  hname : string;
  insert : int -> bool;
  delete : int -> bool;
  contains : int -> bool;
  to_list : unit -> int list;
}

let buckets = 8

let make_conservative (module R : Reclaim.Smr_intf.S) () =
  let arena = Memsim.Arena.create ~capacity:100_000 in
  let global = Memsim.Global_pool.create ~max_level:1 in
  let r =
    R.create ~arena ~global ~n_threads:2 ~hazards:3 ~retire_threshold:8
      ~epoch_freq:4
  in
  let module H = Dstruct.Hash_table.Make (R) in
  let h = H.create r ~arena ~buckets in
  {
    hname = H.name;
    insert = (fun k -> H.insert h ~tid:0 k);
    delete = (fun k -> H.delete h ~tid:0 k);
    contains = (fun k -> H.contains h ~tid:0 k);
    to_list = (fun () -> H.to_list h);
  }

let make_vbr () =
  let arena = Memsim.Arena.create ~capacity:100_000 in
  let global = Memsim.Global_pool.create ~max_level:1 in
  let vbr =
    Vbr_core.Vbr.create_tuned ~retire_threshold:4 ~arena ~global ~n_threads:2 ()
  in
  let h = Dstruct.Vbr_hash.create vbr ~buckets in
  {
    hname = Dstruct.Vbr_hash.name;
    insert = (fun k -> Dstruct.Vbr_hash.insert h ~tid:0 k);
    delete = (fun k -> Dstruct.Vbr_hash.delete h ~tid:0 k);
    contains = (fun k -> Dstruct.Vbr_hash.contains h ~tid:0 k);
    to_list = (fun () -> Dstruct.Vbr_hash.to_list h);
  }

let variants =
  [
    ("NoRecl", make_conservative (module Reclaim.No_recl));
    ("EBR", make_conservative (module Reclaim.Ebr));
    ("HP", make_conservative (module Reclaim.Hp));
    ("HE", make_conservative (module Reclaim.He));
    ("IBR", make_conservative (module Reclaim.Ibr));
    ("VBR", make_vbr);
  ]

let test_bucket_collisions mk () =
  (* Keys congruent mod buckets land in one bucket list and must coexist. *)
  let h = mk () in
  let keys = List.init 10 (fun i -> i * buckets) in
  List.iter (fun k -> Alcotest.(check bool) "ins" true (h.insert k)) keys;
  Alcotest.(check bool) "dup" false (h.insert (3 * buckets));
  List.iter (fun k -> Alcotest.(check bool) "mem" true (h.contains k)) keys;
  Alcotest.(check bool) "other residue absent" false (h.contains 1);
  Alcotest.(check bool) "delete middle" true (h.delete (5 * buckets));
  Alcotest.(check bool) "gone" false (h.contains (5 * buckets));
  Alcotest.(check int) "count" 9 (List.length (h.to_list ()))

let test_all_buckets mk () =
  let h = mk () in
  for k = 0 to 63 do
    Alcotest.(check bool) "ins" true (h.insert k)
  done;
  Alcotest.(check (list int)) "all present" (List.init 64 Fun.id)
    (h.to_list ());
  for k = 0 to 63 do
    Alcotest.(check bool) "del" true (h.delete k)
  done;
  Alcotest.(check (list int)) "empty" [] (h.to_list ())

let test_churn mk () =
  let h = mk () in
  for _round = 1 to 40 do
    for k = 0 to 31 do
      ignore (h.insert k)
    done;
    for k = 0 to 31 do
      ignore (h.delete k)
    done
  done;
  Alcotest.(check (list int)) "empty after churn" [] (h.to_list ())

type op = Ins of int | Del of int | Mem of int

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 50 300)
      (let* k = int_range 0 60 in
       let* c = int_range 0 2 in
       return (match c with 0 -> Ins k | 1 -> Del k | _ -> Mem k)))

let prop_model mk =
  QCheck2.Test.make ~name:"random trace matches Set model" ~count:40 gen_ops
    (fun ops ->
      let h = mk () in
      let m = ref Iset.empty in
      List.for_all
        (fun op ->
          let expected, m' =
            match op with
            | Ins k -> (not (Iset.mem k !m), Iset.add k !m)
            | Del k -> (Iset.mem k !m, Iset.remove k !m)
            | Mem k -> (Iset.mem k !m, !m)
          in
          m := m';
          (match op with
          | Ins k -> h.insert k
          | Del k -> h.delete k
          | Mem k -> h.contains k)
          = expected)
        ops
      && h.to_list () = Iset.elements !m)

let () =
  let suites =
    List.map
      (fun (sname, mk) ->
        ( sname,
          [
            Alcotest.test_case "bucket collisions" `Quick
              (test_bucket_collisions mk);
            Alcotest.test_case "all buckets" `Quick (test_all_buckets mk);
            Alcotest.test_case "churn" `Quick (test_churn mk);
            QCheck_alcotest.to_alcotest (prop_model mk);
          ] ))
      variants
  in
  Alcotest.run "hash" suites
