(* The telemetry plane: the Obs.Metrics registry (registration rules,
   counter watermarks, exposition encoding and its parser), the
   Histogram additions behind windowed timelines (count_le / diff /
   clear / copy), and the Sampler's absolute-deadline scheduling. *)

module Metrics = Obs.Metrics
module Histogram = Obs.Histogram
module Sampler = Obs.Sampler

(* ------------------------------------------------------------------ *)
(* registry rules                                                     *)
(* ------------------------------------------------------------------ *)

let test_register_validation () =
  let t = Metrics.create () in
  let _c = Metrics.counter t ~cells:2 "good_name_total_ops" in
  Alcotest.check_raises "bad metric name" (Invalid_argument "dummy")
    (fun () ->
      try ignore (Metrics.counter t ~cells:1 "0bad")
      with Invalid_argument _ -> raise (Invalid_argument "dummy"));
  Alcotest.check_raises "bad label name" (Invalid_argument "dummy")
    (fun () ->
      try
        ignore
          (Metrics.counter t ~cells:1 ~labels:[ ("a:b", "v") ] "ok_name")
      with Invalid_argument _ -> raise (Invalid_argument "dummy"))

let test_register_duplicates () =
  let t = Metrics.create () in
  let _a =
    Metrics.counter t ~cells:1 ~labels:[ ("op", "get"); ("x", "1") ] "reqs"
  in
  (* same series spelled with labels in the other order *)
  Alcotest.check_raises "duplicate series" (Invalid_argument "dummy")
    (fun () ->
      try
        ignore
          (Metrics.counter t ~cells:1
             ~labels:[ ("x", "1"); ("op", "get") ]
             "reqs")
      with Invalid_argument _ -> raise (Invalid_argument "dummy"));
  (* a different label set on the same family is fine *)
  let _b = Metrics.counter t ~cells:1 ~labels:[ ("op", "put") ] "reqs" in
  (* the same name as a different kind is not *)
  Alcotest.check_raises "kind clash" (Invalid_argument "dummy") (fun () ->
      try Metrics.gauge t "reqs" (fun () -> 0.0)
      with Invalid_argument _ -> raise (Invalid_argument "dummy"))

let test_counter_cells () =
  let t = Metrics.create () in
  let c = Metrics.counter t ~cells:4 "ops" in
  for cell = 0 to 3 do
    for _ = 1 to cell + 1 do
      Metrics.incr c ~cell
    done
  done;
  Metrics.add c ~cell:0 10;
  Alcotest.(check int) "sum across cells" 20 (Metrics.counter_value c);
  Alcotest.check_raises "negative add" (Invalid_argument "dummy") (fun () ->
      try Metrics.add c ~cell:0 (-1)
      with Invalid_argument _ -> raise (Invalid_argument "dummy"))

(* ------------------------------------------------------------------ *)
(* exposition: golden page, escaping, parser                          *)
(* ------------------------------------------------------------------ *)

let golden_registry () =
  let t = Metrics.create () in
  let c =
    Metrics.counter t ~help:"Requests served." ~cells:1
      ~labels:[ ("op", "get") ] "vbr_requests"
  in
  Metrics.add c ~cell:0 42;
  Metrics.gauge t ~help:"Live connections." "vbr_conns" (fun () -> 3.0);
  let h =
    Metrics.histogram t ~help:"Latency." ~le:[ 1_000; 1_000_000 ]
      ~scale:1e-9 ~cells:1 "vbr_lat_seconds"
  in
  Metrics.observe h ~cell:0 500;
  Metrics.observe h ~cell:0 2_000;
  t

let golden_page =
  "# HELP vbr_requests Requests served.\n\
   # TYPE vbr_requests counter\n\
   vbr_requests_total{op=\"get\"} 42\n\
   # HELP vbr_conns Live connections.\n\
   # TYPE vbr_conns gauge\n\
   vbr_conns 3.0\n\
   # HELP vbr_lat_seconds Latency.\n\
   # TYPE vbr_lat_seconds histogram\n\
   vbr_lat_seconds_bucket{le=\"1e-06\"} 1\n\
   vbr_lat_seconds_bucket{le=\"0.001\"} 2\n\
   vbr_lat_seconds_bucket{le=\"+Inf\"} 2\n\
   vbr_lat_seconds_sum 2.5e-06\n\
   vbr_lat_seconds_count 2\n\
   # EOF\n"

let test_expose_golden () =
  let t = golden_registry () in
  Alcotest.(check string) "exposition page" golden_page (Metrics.expose t)

let test_expose_parses () =
  let t = golden_registry () in
  match Metrics.parse (Metrics.expose t) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok fams ->
      Alcotest.(check int) "families" 3 (List.length fams);
      Alcotest.(check (option (float 0.0)))
        "counter value" (Some 42.0)
        (Metrics.sample_value fams ~labels:[ ("op", "get") ]
           "vbr_requests_total");
      Alcotest.(check (option (float 0.0)))
        "gauge value" (Some 3.0)
        (Metrics.sample_value fams "vbr_conns");
      let f = Option.get (Metrics.find_family fams "vbr_lat_seconds") in
      Alcotest.(check string) "histogram kind" "histogram" f.Metrics.pf_kind;
      let buckets = Metrics.buckets_of f ~labels:[] in
      Alcotest.(check int) "bucket count" 3 (List.length buckets);
      Alcotest.(check bool)
        "last bucket is +Inf" true
        (fst (List.nth buckets 2) = infinity);
      Alcotest.(check (option (float 1e-9)))
        "p50 from buckets" (Some 1e-6)
        (Metrics.quantile_of_buckets buckets 0.5)

let test_label_escaping_roundtrip () =
  let nasty = "a\\b\"c\nd" in
  let t = Metrics.create () in
  let c = Metrics.counter t ~cells:1 ~labels:[ ("path", nasty) ] "esc" in
  Metrics.incr c ~cell:0;
  let page = Metrics.expose t in
  (* escaped on the wire... *)
  Alcotest.(check bool)
    "raw newline absent from sample line" false
    (let lines = String.split_on_char '\n' page in
     List.exists
       (fun l ->
         String.length l > 3
         && String.sub l 0 3 = "esc"
         && String.contains l '\t')
       lines);
  (* ...and recovered by the parser *)
  match Metrics.parse page with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok fams -> (
      match Metrics.find_sample fams "esc_total" with
      | None -> Alcotest.fail "escaped sample not found"
      | Some s ->
          Alcotest.(check (option string))
            "label round-trips" (Some nasty)
            (List.assoc_opt "path" s.Metrics.ps_labels))

let test_parse_rejects () =
  let reject what text =
    match Metrics.parse text with
    | Ok _ -> Alcotest.failf "parser accepted %s" what
    | Error _ -> ()
  in
  reject "missing EOF" "# TYPE a counter\na_total 1\n";
  reject "garbage line" "# TYPE a counter\nnot a sample !!\n# EOF\n";
  reject "trailing content" "# EOF\n# TYPE a counter\n";
  reject "bad value" "a 1.2.3\n# EOF\n";
  match Metrics.parse "# TYPE a counter\na_total 1\na{l=\"+Inf\"} 2\n# EOF\n" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok fams ->
      Alcotest.(check (option (float 0.0)))
        "ordinary page parses" (Some 1.0)
        (Metrics.sample_value fams "a_total")

(* ------------------------------------------------------------------ *)
(* histogram: count_le monotonicity, diff windows, clear              *)
(* ------------------------------------------------------------------ *)

let test_hist_count_le () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 10; 100; 1_000; 1_000_000 ];
  Alcotest.(check int) "below zero" 0 (Histogram.count_le h (-1));
  Alcotest.(check int) "everything" 5 (Histogram.count_le h max_int);
  Alcotest.(check int) "partial" 4 (Histogram.count_le h 1_000)

let qcheck_count_le_monotone =
  QCheck.Test.make ~name:"count_le monotone in v"
    ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (int_bound 2_000_000))
        (pair (int_bound 3_000_000) (int_bound 3_000_000)))
    (fun (values, (a, b)) ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) values;
      let lo = min a b and hi = max a b in
      Histogram.count_le h lo <= Histogram.count_le h hi
      && Histogram.count_le h max_int = List.length values)

let test_hist_diff () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 5; 50; 500 ];
  let before = Histogram.copy h in
  List.iter (Histogram.record h) [ 7; 5_000; 5_000 ];
  let w = Histogram.diff ~since:before h in
  Alcotest.(check int) "window count" 3 (Histogram.count w);
  Alcotest.(check (float 0.01)) "window sum" 10_007.0 (Histogram.sum w);
  Alcotest.(check int) "cumulative untouched" 6 (Histogram.count h);
  (* the window only contains the new samples *)
  Alcotest.(check int) "window below 100" 1 (Histogram.count_le w 100);
  let empty = Histogram.diff ~since:h (Histogram.copy h) in
  Alcotest.(check int) "self-diff empty" 0 (Histogram.count empty)

let test_hist_clear () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 3; 30; 300 ];
  Histogram.clear h;
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check (float 0.0)) "sum" 0.0 (Histogram.sum h);
  Alcotest.(check int) "quantile of empty" 0 (Histogram.quantile h 0.5);
  Histogram.record h 42;
  Alcotest.(check int) "usable after clear" 1 (Histogram.count h)

let test_hist_quantile_edges () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty p99" 0 (Histogram.quantile h 0.99);
  Histogram.record h 17;
  let q0 = Histogram.quantile h 0.0 in
  let q1 = Histogram.quantile h 1.0 in
  Alcotest.(check bool) "single-value q0 <= q1" true (q0 <= q1);
  Alcotest.(check bool) "q1 covers the sample" true (q1 >= 17);
  Histogram.record h max_int;
  Alcotest.(check bool)
    "overflow bucket survives q1" true
    (Histogram.quantile h 1.0 >= 17)

(* ------------------------------------------------------------------ *)
(* histogram instrument end to end                                    *)
(* ------------------------------------------------------------------ *)

let test_histogram_instrument () =
  let t = Metrics.create () in
  let h = Metrics.histogram t ~cells:3 "lat_seconds" ~scale:1e-9 in
  (* spread observations over cells like workers would *)
  List.iteri
    (fun i v -> Metrics.observe h ~cell:(i mod 3) v)
    [ 100; 10_000; 1_000_000; 100_000_000; 2_000_000_000 ];
  let m = Metrics.histogram_merged h in
  Alcotest.(check int) "merged count" 5 (Histogram.count m);
  match Metrics.parse (Metrics.expose t) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok fams ->
      let f = Option.get (Metrics.find_family fams "lat_seconds") in
      let buckets = Metrics.buckets_of f ~labels:[] in
      (* cumulative buckets are monotone and end at the total count *)
      let last = ref 0.0 in
      List.iter
        (fun (_, c) ->
          Alcotest.(check bool) "bucket monotone" true (c >= !last);
          last := c)
        buckets;
      Alcotest.(check (float 0.0)) "+Inf = count" 5.0 !last

(* ------------------------------------------------------------------ *)
(* sampler scheduling                                                 *)
(* ------------------------------------------------------------------ *)

let test_sampler_drift () =
  (* Absolute-deadline scheduling: over 0.55 s at 50 ms the tick count
     stays near 11 even though each read burns 10 ms. The bound is
     deliberately generous — CI machines stall — but a sleep-after-work
     loop (interval + work per tick) would land near 9 and the old
     drifting behaviour compounds further at scale. *)
  let ticks = Atomic.make 0 in
  let s =
    Sampler.start ~interval_ms:50.0
      ~read:(fun () ->
        Unix.sleepf 0.010;
        Atomic.incr ticks)
      ()
  in
  Unix.sleepf 0.55;
  let samples = Sampler.stop s in
  let n = List.length samples in
  Alcotest.(check bool)
    (Printf.sprintf "tick count %d in [9, 16]" n)
    true
    (n >= 9 && n <= 16);
  (* timestamps are strictly increasing *)
  let rec mono = function
    | a :: (b :: _ as rest) ->
        a.Sampler.elapsed_ms <= b.Sampler.elapsed_ms && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps monotone" true (mono samples)

let test_sampler_read_now_and_keep_last () =
  let calls = Atomic.make 0 in
  let s =
    Sampler.start ~interval_ms:20.0 ~keep_last:2
      ~read:(fun () -> Atomic.fetch_and_add calls 1)
      ()
  in
  let r = Sampler.read_now s in
  Alcotest.(check bool) "read_now evaluates" true (r.Sampler.value >= 0);
  Unix.sleepf 0.2;
  (match Sampler.last s with
  | None -> Alcotest.fail "no background sample published"
  | Some _ -> ());
  let samples = Sampler.stop s in
  Alcotest.(check bool)
    (Printf.sprintf "keep_last bounds retention (%d)" (List.length samples))
    true
    (List.length samples <= 3)

(* ------------------------------------------------------------------ *)
(* flat snapshots                                                     *)
(* ------------------------------------------------------------------ *)

let test_to_assoc () =
  let t = golden_registry () in
  let kvs = Metrics.to_assoc t in
  Alcotest.(check (option int))
    "counter" (Some 42)
    (List.assoc_opt "vbr_requests_total{op=get}" kvs);
  Alcotest.(check (option int)) "gauge" (Some 3) (List.assoc_opt "vbr_conns" kvs);
  Alcotest.(check (option int))
    "histogram count" (Some 2)
    (List.assoc_opt "vbr_lat_seconds_count" kvs);
  Alcotest.(check bool)
    "histogram p99 present" true
    (List.mem_assoc "vbr_lat_seconds_p99" kvs)

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "name validation" `Quick test_register_validation;
          Alcotest.test_case "duplicates and kind clashes" `Quick
            test_register_duplicates;
          Alcotest.test_case "counter cells" `Quick test_counter_cells;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "golden page" `Quick test_expose_golden;
          Alcotest.test_case "parses back" `Quick test_expose_parses;
          Alcotest.test_case "label escaping round-trip" `Quick
            test_label_escaping_roundtrip;
          Alcotest.test_case "parser rejections" `Quick test_parse_rejects;
          Alcotest.test_case "histogram instrument" `Quick
            test_histogram_instrument;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "count_le" `Quick test_hist_count_le;
          QCheck_alcotest.to_alcotest qcheck_count_le_monotone;
          Alcotest.test_case "diff windows" `Quick test_hist_diff;
          Alcotest.test_case "clear" `Quick test_hist_clear;
          Alcotest.test_case "quantile edges" `Quick test_hist_quantile_edges;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "deadline scheduling resists drift" `Quick
            test_sampler_drift;
          Alcotest.test_case "read_now and keep_last" `Quick
            test_sampler_read_now_and_keep_last;
        ] );
      ( "snapshots",
        [ Alcotest.test_case "to_assoc" `Quick test_to_assoc ] );
    ]
