(* Unit tests for the simulated heap: slot allocation, node shapes, bounds
   checking, and multi-domain fresh-slot races. *)

open Memsim

let test_fresh_sequence () =
  let a = Arena.create ~capacity:100 in
  Alcotest.(check int) "capacity" 100 (Arena.capacity a);
  Alcotest.(check int) "no allocations yet" 0 (Arena.allocated a);
  let i1 = Arena.fresh a ~level:1 in
  let i2 = Arena.fresh a ~level:3 in
  Alcotest.(check int) "first slot is 1 (0 is NULL)" 1 i1;
  Alcotest.(check int) "second slot is 2" 2 i2;
  Alcotest.(check int) "allocated count" 2 (Arena.allocated a);
  let n1 = Arena.get a i1 and n2 = Arena.get a i2 in
  Alcotest.(check int) "level 1 tower" 1 n1.Node.level;
  Alcotest.(check int) "level 3 tower" 3 n2.Node.level;
  Alcotest.(check int) "3 next words" 3 (Array.length n2.Node.next);
  Alcotest.(check int) "fresh birth" 0 (Atomic.get n1.Node.birth);
  Alcotest.(check int) "fresh retire is bottom" Node.no_epoch
    (Atomic.get n1.Node.retire);
  Array.iter
    (fun w -> Alcotest.(check int) "next starts NULL" Packed.null (Atomic.get w))
    n2.Node.next

let test_exhaustion () =
  let a = Arena.create ~capacity:3 in
  ignore (Arena.fresh a ~level:1);
  ignore (Arena.fresh a ~level:1);
  ignore (Arena.fresh a ~level:1);
  Alcotest.check_raises "exhausted" Arena.Exhausted (fun () ->
      ignore (Arena.fresh a ~level:1))

let test_bounds () =
  let a = Arena.create ~capacity:10 in
  ignore (Arena.fresh a ~level:1);
  Alcotest.check_raises "slot 0 rejected"
    (Invalid_argument "Arena.get: slot 0 out of range") (fun () ->
      ignore (Arena.get a 0));
  Alcotest.check_raises "beyond capacity"
    (Invalid_argument "Arena.get: slot 11 out of range") (fun () ->
      ignore (Arena.get a 11));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Arena.create: capacity 0 out of range") (fun () ->
      ignore (Arena.create ~capacity:0));
  Alcotest.check_raises "bad level" (Invalid_argument "Node.make: level must be >= 1")
    (fun () -> ignore (Arena.fresh a ~level:0))

let test_chunk_boundaries () =
  (* Slots spanning multiple 16K chunks stay addressable and distinct. *)
  let cap = 40_000 in
  let a = Arena.create ~capacity:cap in
  for i = 1 to cap do
    let j = Arena.fresh a ~level:1 in
    Alcotest.(check int) "sequential slots" i j;
    (Arena.get a j).Node.key <- j * 7
  done;
  for i = 1 to cap do
    Alcotest.(check int) "keys survive" (i * 7) (Arena.get a i).Node.key
  done;
  Alcotest.check_raises "exhausted at capacity" Arena.Exhausted (fun () ->
      ignore (Arena.fresh a ~level:1))

let test_parallel_fresh () =
  (* Concurrent fresh claims never hand out the same slot twice. *)
  let a = Arena.create ~capacity:40_000 in
  let per_domain = 8_000 in
  let claim () = Array.init per_domain (fun _ -> Arena.fresh a ~level:1) in
  let domains = List.init 4 (fun _ -> Domain.spawn claim) in
  let all = List.concat_map (fun d -> Array.to_list (Domain.join d)) domains in
  let unique = List.sort_uniq compare all in
  Alcotest.(check int) "no duplicate slot" (List.length all)
    (List.length unique);
  Alcotest.(check int) "allocated total" (4 * per_domain) (Arena.allocated a)

(* Sanitizer: the opt-in debug layer over arena + pool. *)

let sanitized mode =
  let arena = Arena.create ~capacity:16 in
  let san = Arena.attach_sanitizer arena mode in
  let global = Global_pool.create ~max_level:1 in
  let pool = Pool.create arena global ~spill:8 in
  (arena, san, pool)

let test_sanitizer_double_retire () =
  let arena, san, pool = sanitized Sanitizer.Track in
  let i = Arena.fresh arena ~level:1 in
  Pool.put pool i;
  Alcotest.(check bool) "slot marked free" true (Sanitizer.freed san i);
  Alcotest.check_raises "second put raises"
    (Sanitizer.Violation
       (Printf.sprintf
          "double retire: slot %d (key 0) is already on a free list" i))
    (fun () -> Pool.put pool i)

let test_sanitizer_reuse_clears () =
  let arena, san, pool = sanitized Sanitizer.Track in
  let i = Arena.fresh arena ~level:1 in
  Pool.put pool i;
  let j = Pool.take pool ~level:1 in
  Alcotest.(check int) "recycled the freed slot" i j;
  Alcotest.(check bool) "flag cleared on reuse" false (Sanitizer.freed san i);
  (* The full cycle is legal again. *)
  Pool.put pool i;
  Alcotest.(check int) "recycled twice" i (Pool.take pool ~level:1)

let test_sanitizer_poison () =
  let arena, _san, pool = sanitized Sanitizer.Poison in
  let i = Arena.fresh arena ~level:1 in
  (Arena.get arena i).Node.key <- 42;
  Pool.put pool i;
  Alcotest.(check int) "freed key is poisoned" Sanitizer.poison_key
    (Arena.get arena i).Node.key

let test_sanitizer_strict_read () =
  let arena, _san, pool = sanitized Sanitizer.Strict in
  let i = Arena.fresh arena ~level:1 in
  ignore (Arena.get arena i);
  Pool.put pool i;
  Alcotest.check_raises "read after dealloc raises"
    (Sanitizer.Violation
       (Printf.sprintf "read after dealloc: slot %d is on a free list" i))
    (fun () -> ignore (Arena.get arena i));
  (* Reallocation makes the slot readable again. *)
  let j = Pool.take pool ~level:1 in
  Alcotest.(check int) "reuses the slot" i j;
  ignore (Arena.get arena i)

let test_sanitizer_off_is_silent () =
  let arena, san, pool = sanitized Sanitizer.Off in
  let i = Arena.fresh arena ~level:1 in
  Pool.put pool i;
  Alcotest.(check bool) "off mode tracks nothing" false (Sanitizer.freed san i);
  Pool.put pool i (* double put tolerated when off *)

let prop_levels =
  QCheck2.Test.make ~name:"fresh node shape matches requested level"
    ~count:200
    QCheck2.Gen.(int_range 1 24)
    (fun level ->
      let a = Arena.create ~capacity:4 in
      let i = Arena.fresh a ~level in
      let n = Arena.get a i in
      n.Node.level = level && Array.length n.Node.next = level)

let () =
  Alcotest.run "arena"
    [
      ( "unit",
        [
          Alcotest.test_case "fresh sequence" `Quick test_fresh_sequence;
          Alcotest.test_case "exhaustion" `Quick test_exhaustion;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "chunk boundaries" `Quick test_chunk_boundaries;
          Alcotest.test_case "parallel fresh" `Quick test_parallel_fresh;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "double retire" `Quick test_sanitizer_double_retire;
          Alcotest.test_case "reuse clears flag" `Quick
            test_sanitizer_reuse_clears;
          Alcotest.test_case "poisoned key" `Quick test_sanitizer_poison;
          Alcotest.test_case "strict read" `Quick test_sanitizer_strict_read;
          Alcotest.test_case "off is silent" `Quick test_sanitizer_off_is_silent;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_levels ]);
    ]
