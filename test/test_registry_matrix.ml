(* Matrix smoke test: drive every supported structure × scheme pair
   through the registry's one generic builder with a short concurrent
   run, then check the invariants that hold for every kind:

   - size() equals successful inserts minus successful deletes (for the
     queue/stack rows the adapted ops keep the same ledger: insert
     enqueues/pushes, delete reports whether an element came out);
   - the reclamation gauges are sane: 0 <= unreclaimed <= allocated;
   - epoch_advances() is 0 for the clockless schemes (NoRecl, HP) and
     comes from the scheme's own counters otherwise — regression-tested
     deterministically below (it used to be hardwired to 0 for every
     conservative scheme). *)

open Harness

let threads = 3
let range = 32
let ops_per_thread = 3_000

let run_pair ~structure ~scheme () =
  let inst =
    Registry.make ~structure ~scheme ~n_threads:threads ~range
      ~capacity:300_000 ()
  in
  Alcotest.(check string)
    "instance name" (structure ^ "/" ^ scheme) inst.Registry.iname;
  let barrier = Atomic.make 0 in
  let inserted = Array.make threads 0 in
  let deleted = Array.make threads 0 in
  let domains =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            let rng = Rng.create ~seed:((tid * 131) + 17) in
            Atomic.incr barrier;
            while Atomic.get barrier < threads do
              Domain.cpu_relax ()
            done;
            for _ = 1 to ops_per_thread do
              let k = Rng.below rng range in
              match Rng.below rng 3 with
              | 0 ->
                  if inst.Registry.insert ~tid k then
                    inserted.(tid) <- inserted.(tid) + 1
              | 1 ->
                  if inst.Registry.delete ~tid k then
                    deleted.(tid) <- deleted.(tid) + 1
              | _ -> ignore (inst.Registry.contains ~tid k)
            done))
  in
  List.iter Domain.join domains;
  let net =
    Array.fold_left ( + ) 0 inserted - Array.fold_left ( + ) 0 deleted
  in
  Alcotest.(check int) "size = inserts - deletes" net (inst.Registry.size ());
  let unreclaimed = inst.Registry.unreclaimed () in
  let allocated = inst.Registry.allocated () in
  Alcotest.(check bool)
    (Printf.sprintf "0 <= unreclaimed (%d) <= allocated (%d)" unreclaimed
       allocated)
    true
    (unreclaimed >= 0 && unreclaimed <= allocated);
  let advances = inst.Registry.epoch_advances () in
  if List.mem scheme [ "NoRecl"; "HP" ] then
    Alcotest.(check int) "clockless scheme never advances" 0 advances
  else
    Alcotest.(check bool)
      (Printf.sprintf "epoch advances non-negative (%d)" advances)
      true (advances >= 0)

let test_conservative_epoch_advances () =
  (* Deterministic single-thread regression for the epoch_advances gauge:
     EBR with epoch_freq 1 attempts an advance on every allocation, and
     with one registered thread every attempt succeeds. The registry used
     to report 0 here unconditionally. *)
  let inst =
    Registry.make ~structure:"list" ~scheme:"EBR" ~n_threads:1 ~range:16
      ~capacity:10_000 ~epoch_freq:1 ()
  in
  for k = 0 to 15 do
    ignore (inst.Registry.insert ~tid:0 k);
    ignore (inst.Registry.delete ~tid:0 k)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "EBR advances visible through the instance (%d)"
       (inst.Registry.epoch_advances ()))
    true
    (inst.Registry.epoch_advances () > 0)

let test_hash_buckets () =
  (* The ?buckets tuning surface: a hash table sized away from the
     load-factor-1 default still works (correctness does not depend on
     the bucket count), and a nonsensical count is rejected. *)
  List.iter
    (fun buckets ->
      let inst =
        Registry.make ~structure:"hash" ~scheme:"VBR" ~n_threads:1 ~range:64
          ~capacity:10_000 ~buckets ()
      in
      for k = 0 to 63 do
        ignore (inst.Registry.insert ~tid:0 k)
      done;
      Alcotest.(check int)
        (Printf.sprintf "all present with %d buckets" buckets)
        64 (inst.Registry.size ());
      for k = 0 to 63 do
        Alcotest.(check bool) "contains" true (inst.Registry.contains ~tid:0 k)
      done)
    [ 1; 7; 64; 512 ];
  Alcotest.check_raises "buckets < 1 rejected"
    (Invalid_argument "Registry: buckets < 1") (fun () ->
      ignore
        (Registry.make ~structure:"hash" ~scheme:"VBR" ~n_threads:1 ~range:64
           ~capacity:10_000 ~buckets:0 ()))

let () =
  let combos =
    List.concat_map
      (fun structure ->
        List.filter_map
          (fun scheme ->
            if Registry.supports ~structure ~scheme then
              Some
                (Alcotest.test_case
                   (structure ^ "/" ^ scheme)
                   `Slow (run_pair ~structure ~scheme))
            else None)
          Registry.schemes)
      Registry.structures
  in
  Alcotest.run "registry_matrix"
    [
      ( "gauges",
        [
          Alcotest.test_case "conservative epoch_advances" `Quick
            test_conservative_epoch_advances;
          Alcotest.test_case "hash buckets knob" `Quick test_hash_buckets;
        ] );
      ("matrix", combos);
    ]
