(* Linearizability checking (the paper's Theorem 1, empirically): record
   real concurrent histories of every structure × scheme combination on a
   tiny key space and verify with the Wing–Gong checker in Lin that each
   history has a valid linearisation.

   Also sanity-checks the checker itself on hand-written histories, both
   linearizable and not. *)

module Lin = Harness.Lin

(* One base seed for every recorded history, printed up front so a failed
   run can be replayed exactly: VBR_TEST_SEED=<n> dune exec ... *)
let base_seed =
  match Sys.getenv_opt "VBR_TEST_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some v -> v
      | None -> invalid_arg "VBR_TEST_SEED must be an integer")
  | None -> 0xC0FFEE

let () =
  Printf.printf "PRNG base seed: %d (override with VBR_TEST_SEED)\n%!"
    base_seed

(* --- checker properties ------------------------------------------- *)

(* Random valid sequential histories must be accepted, and the same
   history with exactly one result flipped must be rejected: with
   disjoint, totally ordered intervals the replay from the empty set is
   forced, so there is exactly one linearisation and any single lie
   contradicts it. *)

let gen_seq_ops =
  (* (tid, op kind, key) triples, applied in sequence. *)
  QCheck2.Gen.(
    list_size (int_range 1 40) (triple (int_bound 2) (int_bound 2) (int_bound 7)))

(* Sequential set semantics: the forced result of each op in order. *)
let forced_results ops =
  let module S = Set.Make (Int) in
  let state = ref S.empty in
  List.map
    (fun (tid, kind, key) ->
      let op, result =
        match kind with
        | 0 ->
            ( Lin.Insert key,
              if S.mem key !state then false
              else begin
                state := S.add key !state;
                true
              end )
        | 1 ->
            ( Lin.Delete key,
              if S.mem key !state then begin
                state := S.remove key !state;
                true
              end
              else false )
        | _ -> (Lin.Contains key, S.mem key !state)
      in
      (tid, op, result))
    ops

(* Thread streams with strictly increasing disjoint intervals; [flip]
   negates the result of the op at that global position. *)
let sequential_history ?flip ops =
  let streams = Array.make 3 [] in
  List.iteri
    (fun i (tid, op, result) ->
      let result = if flip = Some i then not result else result in
      streams.(tid) <-
        {
          Lin.op;
          result;
          inv = float_of_int (2 * i);
          res = float_of_int ((2 * i) + 1);
        }
        :: streams.(tid))
    (forced_results ops);
  Array.map (fun l -> Array.of_list (List.rev l)) streams

let prop_accepts_sequential =
  QCheck2.Test.make ~name:"accepts random valid sequential histories"
    ~count:500 gen_seq_ops (fun ops -> Lin.check (sequential_history ops))

let prop_rejects_mutation =
  QCheck2.Test.make ~name:"rejects one flipped result" ~count:500
    QCheck2.Gen.(pair gen_seq_ops nat)
    (fun (ops, n) ->
      let flip = n mod List.length ops in
      not (Lin.check (sequential_history ~flip ops)))

(* --- checker self-tests ------------------------------------------- *)

let ev op result inv res = { Lin.op; result; inv; res }

let test_checker_accepts () =
  (* T0: insert 1 (true). T1: contains 1 overlapping it — both answers
     are justifiable depending on the linearisation chosen. *)
  let h_true =
    [|
      [| ev (Lin.Insert 1) true 0.0 2.0 |];
      [| ev (Lin.Contains 1) true 1.0 3.0 |];
    |]
  in
  Alcotest.(check bool) "overlapping contains=true" true (Lin.check h_true);
  let h_false =
    [|
      [| ev (Lin.Insert 1) true 0.0 2.0 |];
      [| ev (Lin.Contains 1) false 1.0 3.0 |];
    |]
  in
  Alcotest.(check bool) "overlapping contains=false" true (Lin.check h_false);
  (* Sequentially: insert; delete; contains=false. *)
  let h_seq =
    [|
      [|
        ev (Lin.Insert 3) true 0.0 1.0;
        ev (Lin.Delete 3) true 2.0 3.0;
        ev (Lin.Contains 3) false 4.0 5.0;
      |];
    |]
  in
  Alcotest.(check bool) "sequential trace" true (Lin.check h_seq)

let test_checker_rejects () =
  (* contains strictly after a completed insert must be true. *)
  let h =
    [|
      [| ev (Lin.Insert 1) true 0.0 1.0 |];
      [| ev (Lin.Contains 1) false 2.0 3.0 |];
    |]
  in
  Alcotest.(check bool) "stale read detected" false (Lin.check h);
  (* Two non-overlapping inserts of the same key both returning true. *)
  let h2 =
    [|
      [| ev (Lin.Insert 5) true 0.0 1.0 |];
      [| ev (Lin.Insert 5) true 2.0 3.0 |];
    |]
  in
  Alcotest.(check bool) "double insert detected" false (Lin.check h2);
  (* Delete of a never-inserted key returning true. *)
  let h3 = [| [| ev (Lin.Delete 7) true 0.0 1.0 |] |] in
  Alcotest.(check bool) "phantom delete detected" false (Lin.check h3);
  Alcotest.(check bool) "check_exn raises" true
    (try
       Lin.check_exn h3;
       false
     with Lin.Non_linearizable _ -> true)

(* --- recorded histories from the real structures ------------------- *)

let record_history (inst : Harness.Registry.instance) ~threads ~ops_per_thread
    ~keys ~round =
  let histories = Array.make threads [||] in
  let barrier = Atomic.make 0 in
  let domains =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            let rng =
              Harness.Rng.create ~seed:(base_seed + (tid * 31) + round)
            in
            let events = ref [] in
            Atomic.incr barrier;
            while Atomic.get barrier < threads do
              Domain.cpu_relax ()
            done;
            for _ = 1 to ops_per_thread do
              let k = Harness.Rng.below rng keys in
              let c = Harness.Rng.below rng 3 in
              let inv = Unix.gettimeofday () in
              let op, result =
                match c with
                | 0 -> (Lin.Insert k, inst.Harness.Registry.insert ~tid k)
                | 1 -> (Lin.Delete k, inst.Harness.Registry.delete ~tid k)
                | _ -> (Lin.Contains k, inst.Harness.Registry.contains ~tid k)
              in
              let res = Unix.gettimeofday () in
              events := { Lin.op; result; inv; res } :: !events
            done;
            (tid, Array.of_list (List.rev !events))))
  in
  List.iter
    (fun d ->
      let tid, stream = Domain.join d in
      histories.(tid) <- stream)
    domains;
  histories

let test_structure ~structure ~scheme () =
  let threads = 3 in
  (* Several rounds of short histories keep the checker fast while still
     covering many interleavings. A fresh (empty) instance per round: the
     checker assumes the initial state is the empty set. *)
  for round = 1 to 5 do
    let inst =
      Harness.Registry.make ~structure ~scheme ~n_threads:threads ~range:8
        ~capacity:200_000 ()
    in
    let h = record_history inst ~threads ~ops_per_thread:60 ~keys:8 ~round in
    Lin.check_exn h
  done

let () =
  (* Only set-kind structures: [Lin] models set semantics, which the
     queue/stack rows deliberately do not follow through their adapted
     instance ops (insert enqueues, delete pops an arbitrary element).
     The registry-matrix test covers those rows with kind-appropriate
     invariants instead. *)
  let set_structures =
    List.filter
      (fun structure ->
        Harness.Registry.structure_kind ~structure
        = Some Harness.Registry.Set)
      Harness.Registry.structures
  in
  let combos =
    List.concat_map
      (fun structure ->
        List.filter_map
          (fun scheme ->
            if Harness.Registry.supports ~structure ~scheme then
              Some
                (Alcotest.test_case
                   (structure ^ "/" ^ scheme)
                   `Slow
                   (test_structure ~structure ~scheme))
            else None)
          Harness.Registry.schemes)
      set_structures
  in
  Alcotest.run "linearizability"
    [
      ( "checker",
        [
          Alcotest.test_case "accepts valid histories" `Quick
            test_checker_accepts;
          Alcotest.test_case "rejects invalid histories" `Quick
            test_checker_rejects;
        ] );
      ( "checker-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_accepts_sequential; prop_rejects_mutation ] );
      ("recorded", combos);
    ]
