(* Concurrent integration tests: real multi-domain executions with
   checkable invariants.

   Disjoint-ownership stress: each writer domain owns a key stripe and
   alternately inserts and deletes its own keys, so every one of its
   operations must report success; reader domains hammer [contains]
   concurrently. At the end the structure must be exactly empty. This
   catches lost updates, erroneous CAS successes (ABA), duplicate keys and
   broken reclamation under interleaving. *)

(* One base seed for the churn PRNGs, printed up front so a failing run
   can be replayed exactly: VBR_TEST_SEED=<n> dune exec ... *)
let base_seed =
  match Sys.getenv_opt "VBR_TEST_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some v -> v
      | None -> invalid_arg "VBR_TEST_SEED must be an integer")
  | None -> 0xC0FFEE

let () =
  Printf.printf "PRNG base seed: %d (override with VBR_TEST_SEED)\n%!"
    base_seed

type handle = {
  hname : string;
  insert : tid:int -> int -> bool;
  delete : tid:int -> int -> bool;
  contains : tid:int -> int -> bool;
  to_list : unit -> int list;
}

let n_writers = 3
let n_readers = 2
let n_threads = n_writers + n_readers
let stripe = 16
let rounds = 400

let make_list_conservative (module R : Reclaim.Smr_intf.S) () =
  let arena = Memsim.Arena.create ~capacity:500_000 in
  (* Poison freed keys: guarded schemes reset the key on alloc and never
     deref an unvalidated slot, so a poisoned value escaping into a
     result is a real reclamation bug. *)
  ignore (Memsim.Arena.attach_sanitizer arena Memsim.Sanitizer.Poison);
  let global = Memsim.Global_pool.create ~max_level:1 in
  let r =
    R.create ~arena ~global ~n_threads ~hazards:3 ~retire_threshold:16
      ~epoch_freq:4
  in
  let module L = Dstruct.Linked_list.Make (R) in
  let l = L.create r ~arena in
  {
    hname = L.name;
    insert = (fun ~tid k -> L.insert l ~tid k);
    delete = (fun ~tid k -> L.delete l ~tid k);
    contains = (fun ~tid k -> L.contains l ~tid k);
    to_list = (fun () -> L.to_list l);
  }

let make_list_vbr () =
  let arena = Memsim.Arena.create ~capacity:500_000 in
  (* Track only: VBR readers legitimately read freed slots until the
     epoch check invalidates them, so poisoning would break the
     type-preservation invariant the algorithm relies on. *)
  ignore (Memsim.Arena.attach_sanitizer arena Memsim.Sanitizer.Track);
  let global = Memsim.Global_pool.create ~max_level:1 in
  let vbr =
    Vbr_core.Vbr.create_tuned ~retire_threshold:8 ~arena ~global ~n_threads ()
  in
  let l = Dstruct.Vbr_list.create vbr in
  {
    hname = Dstruct.Vbr_list.name;
    insert = (fun ~tid k -> Dstruct.Vbr_list.insert l ~tid k);
    delete = (fun ~tid k -> Dstruct.Vbr_list.delete l ~tid k);
    contains = (fun ~tid k -> Dstruct.Vbr_list.contains l ~tid k);
    to_list = (fun () -> Dstruct.Vbr_list.to_list l);
  }

let make_hash_conservative (module R : Reclaim.Smr_intf.S) () =
  let arena = Memsim.Arena.create ~capacity:500_000 in
  ignore (Memsim.Arena.attach_sanitizer arena Memsim.Sanitizer.Poison);
  let global = Memsim.Global_pool.create ~max_level:1 in
  let r =
    R.create ~arena ~global ~n_threads ~hazards:3 ~retire_threshold:16
      ~epoch_freq:4
  in
  let module H = Dstruct.Hash_table.Make (R) in
  let h = H.create r ~arena ~buckets:16 in
  {
    hname = H.name;
    insert = (fun ~tid k -> H.insert h ~tid k);
    delete = (fun ~tid k -> H.delete h ~tid k);
    contains = (fun ~tid k -> H.contains h ~tid k);
    to_list = (fun () -> H.to_list h);
  }

let make_hash_vbr () =
  let arena = Memsim.Arena.create ~capacity:500_000 in
  ignore (Memsim.Arena.attach_sanitizer arena Memsim.Sanitizer.Track);
  let global = Memsim.Global_pool.create ~max_level:1 in
  let vbr =
    Vbr_core.Vbr.create_tuned ~retire_threshold:8 ~arena ~global ~n_threads ()
  in
  let h = Dstruct.Vbr_hash.create vbr ~buckets:16 in
  {
    hname = Dstruct.Vbr_hash.name;
    insert = (fun ~tid k -> Dstruct.Vbr_hash.insert h ~tid k);
    delete = (fun ~tid k -> Dstruct.Vbr_hash.delete h ~tid k);
    contains = (fun ~tid k -> Dstruct.Vbr_hash.contains h ~tid k);
    to_list = (fun () -> Dstruct.Vbr_hash.to_list h);
  }

let make_skip_conservative (module R : Reclaim.Smr_intf.S) () =
  let arena = Memsim.Arena.create ~capacity:500_000 in
  ignore (Memsim.Arena.attach_sanitizer arena Memsim.Sanitizer.Poison);
  let global = Memsim.Global_pool.create ~max_level:Dstruct.Skiplist.max_level in
  let r =
    R.create ~arena ~global ~n_threads
      ~hazards:((2 * Dstruct.Skiplist.max_level) + 2)
      ~retire_threshold:16 ~epoch_freq:4
  in
  let module S = Dstruct.Skiplist.Make (R) in
  let s = S.create r ~arena in
  {
    hname = S.name;
    insert = (fun ~tid k -> S.insert s ~tid k);
    delete = (fun ~tid k -> S.delete s ~tid k);
    contains = (fun ~tid k -> S.contains s ~tid k);
    to_list = (fun () -> S.to_list s);
  }

let make_skip_vbr () =
  let arena = Memsim.Arena.create ~capacity:500_000 in
  ignore (Memsim.Arena.attach_sanitizer arena Memsim.Sanitizer.Track);
  let global = Memsim.Global_pool.create ~max_level:Dstruct.Skiplist.max_level in
  let vbr =
    Vbr_core.Vbr.create_tuned ~retire_threshold:8 ~arena ~global ~n_threads ()
  in
  let s = Dstruct.Vbr_skiplist.create vbr in
  {
    hname = Dstruct.Vbr_skiplist.name;
    insert = (fun ~tid k -> Dstruct.Vbr_skiplist.insert s ~tid k);
    delete = (fun ~tid k -> Dstruct.Vbr_skiplist.delete s ~tid k);
    contains = (fun ~tid k -> Dstruct.Vbr_skiplist.contains s ~tid k);
    to_list = (fun () -> Dstruct.Vbr_skiplist.to_list s);
  }

exception Violation of string

let writer h ~tid =
  let base = tid * stripe in
  for round = 1 to rounds do
    for j = 0 to stripe - 1 do
      let k = base + j in
      if not (h.insert ~tid k) then
        raise
          (Violation (Printf.sprintf "tid %d round %d: insert %d failed" tid round k))
    done;
    for j = 0 to stripe - 1 do
      let k = base + j in
      if not (h.contains ~tid k) then
        raise
          (Violation
             (Printf.sprintf "tid %d round %d: own key %d not found" tid round k))
    done;
    for j = 0 to stripe - 1 do
      let k = base + j in
      if not (h.delete ~tid k) then
        raise
          (Violation (Printf.sprintf "tid %d round %d: delete %d failed" tid round k))
    done
  done

let reader h ~tid stop =
  (* Readers may see any subset of live keys; they only check for crashes
     and for keys outside the writers' universe. *)
  let seen_garbage = ref None in
  while not (Atomic.get stop) do
    for k = 0 to (n_writers * stripe) + 8 do
      let present = h.contains ~tid k in
      if present && k >= n_writers * stripe then
        seen_garbage := Some k
    done
  done;
  match !seen_garbage with
  | Some k -> raise (Violation (Printf.sprintf "phantom key %d observed" k))
  | None -> ()

let run_stress mk () =
  let h = mk () in
  let stop = Atomic.make false in
  let readers =
    List.init n_readers (fun i ->
        Domain.spawn (fun () -> reader h ~tid:(n_writers + i) stop))
  in
  let writers =
    List.init n_writers (fun tid -> Domain.spawn (fun () -> writer h ~tid))
  in
  let writer_results = List.map (fun d -> try Domain.join d; None with e -> Some e) writers in
  Atomic.set stop true;
  let reader_results = List.map (fun d -> try Domain.join d; None with e -> Some e) readers in
  List.iter (function Some e -> raise e | None -> ()) writer_results;
  List.iter (function Some e -> raise e | None -> ()) reader_results;
  Alcotest.(check (list int)) "empty at end" [] (h.to_list ())

(* Churn stress: all writers fight over the SAME small key range, so
   every interleaving hazard (competing marks, competing unlinks, failed
   inserts retiring fresh nodes, heavy recycling) is exercised. The final
   content must equal the union of keys whose last op (per a happens-after
   reconciliation we can't observe) — so we only check structural sanity:
   sorted, duplicate-free, within range. *)
let run_churn mk () =
  let h = mk () in
  let range = 24 in
  let workers =
    List.init n_threads (fun tid ->
        Domain.spawn (fun () ->
            let st = ref (Random.State.make [| tid; base_seed |]) in
            for _ = 1 to rounds * 10 do
              let k = Random.State.int !st range in
              match Random.State.int !st 3 with
              | 0 -> ignore (h.insert ~tid k)
              | 1 -> ignore (h.delete ~tid k)
              | _ -> ignore (h.contains ~tid k)
            done))
  in
  let results = List.map (fun d -> try Domain.join d; None with e -> Some e) workers in
  List.iter (function Some e -> raise e | None -> ()) results;
  let l = h.to_list () in
  let sorted_unique = List.sort_uniq compare l in
  Alcotest.(check (list int)) "sorted and duplicate-free" sorted_unique l;
  List.iter
    (fun k ->
      if k < 0 || k >= range then
        Alcotest.failf "key %d out of range in final state" k)
    l

let variants =
  [
    ("list/NoRecl", make_list_conservative (module Reclaim.No_recl));
    ("list/EBR", make_list_conservative (module Reclaim.Ebr));
    ("list/HP", make_list_conservative (module Reclaim.Hp));
    ("list/HE", make_list_conservative (module Reclaim.He));
    ("list/IBR", make_list_conservative (module Reclaim.Ibr));
    ("list/VBR", make_list_vbr);
    ("hash/NoRecl", make_hash_conservative (module Reclaim.No_recl));
    ("hash/EBR", make_hash_conservative (module Reclaim.Ebr));
    ("hash/HP", make_hash_conservative (module Reclaim.Hp));
    ("hash/HE", make_hash_conservative (module Reclaim.He));
    ("hash/IBR", make_hash_conservative (module Reclaim.Ibr));
    ("hash/VBR", make_hash_vbr);
    ("skiplist/NoRecl", make_skip_conservative (module Reclaim.No_recl));
    ("skiplist/EBR", make_skip_conservative (module Reclaim.Ebr));
    ("skiplist/HP", make_skip_conservative (module Reclaim.Hp));
    ("skiplist/HE", make_skip_conservative (module Reclaim.He));
    ("skiplist/IBR", make_skip_conservative (module Reclaim.Ibr));
    ("skiplist/VBR", make_skip_vbr);
  ]

let () =
  let suites =
    List.map
      (fun (vname, mk) ->
        ( vname,
          [
            Alcotest.test_case "disjoint-ownership stress" `Slow
              (run_stress mk);
            Alcotest.test_case "same-range churn" `Slow (run_churn mk);
          ] ))
      variants
  in
  Alcotest.run "stress" suites
