(* vbr-verify test suite. Drives the same [Verify] library that backs
   bin/vbr_verify.exe over the compiled fixture tree in
   verify_fixtures/ (a real dune library, because the verifier consumes
   .cmt typed trees) and asserts exact (rule, file, line) matches for
   each seeded violation, plus the clean status of every good twin and
   of the suppression-granularity file. The alias fixture doubles as
   the raw-atomic false-negative regression: the untyped linter is run
   over the same sources and must see nothing where the typed rule sees
   two findings. Finally asserts the shipped tree is finding-free via
   the @verify report built by the root dune rule (a dep of this
   test). *)

let fixture_root = "verify_fixtures"
let fixture_run = lazy (Verify.Driver.run ~root:fixture_root ())
let fixture_findings = lazy (fst (Lazy.force fixture_run))

let pp_findings fs =
  String.concat "\n"
    (List.map
       (fun (f : Lint_core.Finding.t) ->
         Printf.sprintf "%s:%d [%s]" f.file f.line f.rule)
       fs)

(* The seeded violation at (file, line) must be flagged with exactly
   [rule]. *)
let check_flagged ~rule ~file ~line () =
  let fs = Lazy.force fixture_findings in
  let hit =
    List.exists
      (fun (f : Lint_core.Finding.t) ->
        f.rule = rule && f.file = file && f.line = line)
      fs
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s flagged at %s:%d (got:\n%s)" rule file line
       (pp_findings fs))
    true hit

(* Nothing in [file] outside the seeded lines may be flagged: the good
   twins prove the interprocedural coverage propagation. *)
let check_only_seeded ~file ~lines () =
  let fs = Lazy.force fixture_findings in
  let offending =
    List.filter
      (fun (f : Lint_core.Finding.t) ->
        f.file = file && not (List.mem f.line lines))
      fs
  in
  Alcotest.(check string)
    (Printf.sprintf "%s has findings only at seeded lines" file)
    "" (pp_findings offending)

let test_fixture_count () =
  (* One finding per seeded violation and nothing else. *)
  Alcotest.(check int) "total fixture findings" 8
    (List.length (Lazy.force fixture_findings))

let test_cmt_trees_loaded () =
  (* Guards the whole suite against a silently-empty scan: zero loaded
     trees would make every "clean" assertion pass vacuously. *)
  let _, nfiles = Lazy.force fixture_run in
  Alcotest.(check int) "typed trees loaded from the fixture library" 7 nfiles

let test_suppression_granularity () =
  (* vbr_fx_suppress.ml re-seeds three violations other fixture files
     prove are caught, silenced at expr, binding and file granularity
     with the same [@vbr.allow] vbr-lint honors. *)
  let offending =
    List.filter
      (fun (f : Lint_core.Finding.t) ->
        f.file = "lib/dstruct/vbr_fx_suppress.ml")
      (Lazy.force fixture_findings)
  in
  Alcotest.(check string) "suppressed at all three levels" ""
    (pp_findings offending)

let test_syntactic_false_negative () =
  (* Satellite regression for the untyped raw-atomic rule: the alias and
     open spellings escape the parse-tree matcher entirely... *)
  let raw =
    match Lint.Registry.find "raw-atomic" with
    | Some r -> r
    | None -> Alcotest.fail "lint registry lost raw-atomic"
  in
  let lint_fs = Lint.Driver.run ~rules:[ raw ] ~root:fixture_root () in
  let in_alias =
    List.filter
      (fun (f : Lint_core.Finding.t) ->
        f.file = "lib/dstruct/vbr_fx_alias.ml")
      lint_fs
  in
  Alcotest.(check string) "untyped linter misses both spellings" ""
    (pp_findings in_alias);
  (* ...while the typed rule resolves both to Stdlib.Atomic.get. *)
  let verify_hits =
    List.filter
      (fun (f : Lint_core.Finding.t) ->
        f.file = "lib/dstruct/vbr_fx_alias.ml" && f.rule = "raw-atomic")
      (Lazy.force fixture_findings)
  in
  Alcotest.(check int) "typed rule catches both" 2 (List.length verify_hits)

let test_rule_registry () =
  Alcotest.(check (list string))
    "registry lists the documented rules"
    [
      "checkpoint-dominance";
      "retire-taint";
      "guard-extent";
      "blocking-in-critical-section";
      "raw-atomic";
    ]
    (List.map (fun (r : Verify.Registry.rule) -> r.name) Verify.Registry.all)

let test_tree_clean () =
  (* verify_report.json is the target of the root @verify rule and a
     declared dep of this test: dune already failed the build if the
     tree had findings, so here we just pin the artifact's shape. *)
  let ic = open_in "../verify_report.json" in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  let has_sub sub =
    let ls = String.length sub and lb = String.length body in
    let rec go i = i + ls <= lb && (String.sub body i ls = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report says zero findings" true
    (has_sub {|"finding_count":0|});
  Alcotest.(check bool) "report is vbr-verify's" true
    (has_sub {|"tool":"vbr-verify"|})

let test_sarif_shape () =
  (* verify.sarif rides along from the same rule; pin the SARIF 2.1.0
     envelope GitHub code scanning requires. *)
  let ic = open_in "../verify.sarif" in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  let has_sub sub =
    let ls = String.length sub and lb = String.length body in
    let rec go i = i + ls <= lb && (String.sub body i ls = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "sarif contains %s" sub) true
        (has_sub sub))
    [
      {|"version":"2.1.0"|};
      {|"name":"vbr-verify"|};
      {|"checkpoint-dominance"|};
      {|"results":[]|};
    ]

let violation_cases =
  [
    (* checkpoint moved to the callee and lost *)
    ("checkpoint-dominance", "lib/dstruct/vbr_fx_ckpt.ml", 11);
    (* optimistic read after commit_alloc, no refresh/checkpoint *)
    ("checkpoint-dominance", "lib/dstruct/vbr_fx_ckpt.ml", 31);
    (* retire-then-deref split across a helper *)
    ("retire-taint", "lib/dstruct/vbr_fx_retire.ml", 15);
    (* same-function use-after-retire *)
    ("retire-taint", "lib/dstruct/vbr_fx_retire.ml", 22);
    (* guard dropped before the extracted traversal *)
    ("guard-extent", "lib/dstruct/fx_guard.ml", 13);
    (* Mutex.lock two calls deep inside a checkpoint *)
    ("blocking-in-critical-section", "lib/dstruct/vbr_fx_block.ml", 10);
    (* raw Atomic behind a module alias *)
    ("raw-atomic", "lib/dstruct/vbr_fx_alias.ml", 12);
    (* raw Atomic behind an open *)
    ("raw-atomic", "lib/dstruct/vbr_fx_alias.ml", 15);
  ]

(* Good-twin coverage: per file, only the seeded lines may fire. *)
let twin_cases =
  [
    ("lib/dstruct/vbr_fx_ckpt.ml", [ 11; 31 ]);
    ("lib/dstruct/vbr_fx_retire.ml", [ 15; 22 ]);
    ("lib/dstruct/fx_guard.ml", [ 13 ]);
    ("lib/dstruct/vbr_fx_block.ml", [ 10 ]);
    ("lib/dstruct/fx_intf.ml", []);
  ]

let () =
  Alcotest.run "verify"
    [
      ( "violations",
        List.map
          (fun (rule, file, line) ->
            Alcotest.test_case
              (Printf.sprintf "%s %s:%d" rule file line)
              `Quick
              (check_flagged ~rule ~file ~line))
          violation_cases );
      ( "clean twins",
        List.map
          (fun (file, lines) ->
            Alcotest.test_case file `Quick (check_only_seeded ~file ~lines))
          twin_cases );
      ( "meta",
        [
          Alcotest.test_case "cmt trees loaded" `Quick test_cmt_trees_loaded;
          Alcotest.test_case "finding count" `Quick test_fixture_count;
          Alcotest.test_case "suppression granularity" `Quick
            test_suppression_granularity;
          Alcotest.test_case "syntactic false negative" `Quick
            test_syntactic_false_negative;
          Alcotest.test_case "rule registry" `Quick test_rule_registry;
          Alcotest.test_case "shipped tree clean" `Quick test_tree_clean;
          Alcotest.test_case "sarif shape" `Quick test_sarif_shape;
        ] );
    ]
