(* The net subsystem suite: qcheck round-trips for the wire codec,
   in-process loopback server tests (all five commands, pipelined
   batches, concurrent clients, malformed-frame disconnect, every
   registry scheme), a mini in-process loadgen run in both loop modes,
   and the zipfian key generator. Every server binds port 0, so the
   suite runs anywhere dune runtest does. *)

open Net

(* ------------------------------------------------------------------ *)
(* Codec round-trips                                                   *)
(* ------------------------------------------------------------------ *)

let gen_key = QCheck2.Gen.(map (fun i -> i land max_int) int)

let gen_value =
  QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 200))

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        map (fun k -> Protocol.Get k) gen_key;
        map2 (fun k v -> Protocol.Put (k, v)) gen_key gen_value;
        map (fun k -> Protocol.Delete k) gen_key;
        return Protocol.Stats;
        return Protocol.Ping;
      ])

let gen_stats_entry =
  QCheck2.Gen.(
    pair (string_size ~gen:(char_range 'a' 'z') (int_bound 24)) int)

let gen_response =
  QCheck2.Gen.(
    oneof
      [
        map (fun v -> Protocol.Value v) gen_value;
        return Protocol.Not_found;
        map (fun b -> Protocol.Stored b) bool;
        return Protocol.Deleted;
        map
          (fun kvs -> Protocol.Stats_reply kvs)
          (list_size (int_bound 12) gen_stats_entry);
        return Protocol.Pong;
        map
          (fun m -> Protocol.Error m)
          (string_size ~gen:(char_range ' ' '~') (int_bound 60));
      ])

let encode_to_bytes encode v =
  let b = Buffer.create 64 in
  encode b v;
  Buffer.to_bytes b

(* encode ∘ frame_peek ∘ decode = id, and the frame spans exactly the
   encoded bytes. *)
let roundtrip encode decode v =
  let bytes = encode_to_bytes encode v in
  let avail = Bytes.length bytes in
  match Protocol.frame_peek bytes ~pos:0 ~avail with
  | `Need_more -> QCheck2.Test.fail_report "complete frame read as Need_more"
  | `Bad msg -> QCheck2.Test.fail_report ("complete frame read as Bad: " ^ msg)
  | `Frame (body_pos, body_len, total) ->
      if total <> avail then
        QCheck2.Test.fail_report "frame total <> encoded length";
      (match decode bytes ~pos:body_pos ~len:body_len with
      | Ok v' -> v' = v
      | Error msg -> QCheck2.Test.fail_report ("decode failed: " ^ msg))

let qcheck_roundtrip_request =
  QCheck2.Test.make ~name:"request roundtrip" ~count:1000 gen_request
    (roundtrip Protocol.encode_request Protocol.decode_request)

let qcheck_roundtrip_response =
  QCheck2.Test.make ~name:"response roundtrip" ~count:1000 gen_response
    (roundtrip Protocol.encode_response Protocol.decode_response)

(* Every proper prefix of a well-formed frame is Need_more — a truncated
   buffer never decodes and never errors. *)
let qcheck_truncated =
  QCheck2.Test.make ~name:"truncated prefixes are Need_more" ~count:300
    gen_request (fun req ->
      let bytes = encode_to_bytes Protocol.encode_request req in
      let n = Bytes.length bytes in
      let ok = ref true in
      for avail = 0 to n - 1 do
        match Protocol.frame_peek bytes ~pos:0 ~avail with
        | `Need_more -> ()
        | `Frame _ | `Bad _ -> ok := false
      done;
      !ok)

let test_max_length_values () =
  let big = String.make Protocol.max_value_len 'x' in
  let check encode decode v =
    Alcotest.(check bool) "max-length roundtrip" true (roundtrip encode decode v)
  in
  check Protocol.encode_request Protocol.decode_request
    (Protocol.Put (max_int, big));
  check Protocol.encode_response Protocol.decode_response (Protocol.Value big);
  (* One past the limit must be rejected at encode time. *)
  let over = String.make (Protocol.max_value_len + 1) 'x' in
  Alcotest.check_raises "over-long value"
    (Invalid_argument "Protocol: value too long") (fun () ->
      Protocol.encode_request (Buffer.create 16) (Protocol.Put (0, over)))

let test_corrupt_frames () =
  let body_of bytes =
    match
      Protocol.frame_peek bytes ~pos:0 ~avail:(Bytes.length bytes)
    with
    | `Frame (p, l, _) -> (p, l)
    | _ -> Alcotest.fail "expected a complete frame"
  in
  let expect_error what bytes =
    let pos, len = body_of bytes in
    match Protocol.decode_request bytes ~pos ~len with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ ": decoded a corrupt frame")
  in
  let ping = encode_to_bytes Protocol.encode_request Protocol.Ping in
  (* Corrupt magic. *)
  let bad_magic = Bytes.copy ping in
  Bytes.set bad_magic 4 'X';
  expect_error "bad magic" bad_magic;
  (* Wrong version. *)
  let bad_version = Bytes.copy ping in
  Bytes.set bad_version 6 '\x07';
  expect_error "bad version" bad_version;
  (* Unknown opcode. *)
  let bad_op = Bytes.copy ping in
  Bytes.set bad_op 7 '\x7f';
  expect_error "bad opcode" bad_op;
  (* Trailing junk after a complete payload. *)
  let padded = Bytes.extend ping 0 1 in
  Bytes.set padded (Bytes.length padded - 1) '!';
  (* Fix up the length prefix to claim the junk byte as body. *)
  Bytes.set_int32_be padded 0 (Int32.of_int (Bytes.length padded - 4));
  expect_error "trailing junk" padded;
  (* A length prefix above max_frame_body is rejected before buffering. *)
  let huge = Bytes.create 4 in
  Bytes.set_int32_be huge 0 (Int32.of_int (Protocol.max_frame_body + 1));
  (match Protocol.frame_peek huge ~pos:0 ~avail:4 with
  | `Bad _ -> ()
  | `Need_more | `Frame _ -> Alcotest.fail "oversized prefix not rejected");
  (* A negative length prefix likewise. *)
  let neg = Bytes.create 4 in
  Bytes.set_int32_be neg 0 0xffff_ffffl;
  match Protocol.frame_peek neg ~pos:0 ~avail:4 with
  | `Bad _ -> ()
  | `Need_more | `Frame _ -> Alcotest.fail "negative prefix not rejected"

(* ------------------------------------------------------------------ *)
(* Loopback server                                                     *)
(* ------------------------------------------------------------------ *)

let with_server ?(scheme = "VBR") ?(range = 1024) ?(buckets = 256)
    ?(prefill = false) ?(metrics = false) f =
  let cfg =
    {
      Server.default_config with
      Server.scheme;
      range;
      buckets;
      workers = 2;
      prefill;
      metrics_port = (if metrics then Some 0 else None);
    }
  in
  let server = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop server))
    (fun () -> f server)

let with_client server f =
  let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port server) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let resp = Alcotest.testable
    (fun fmt r -> Format.pp_print_string fmt (Protocol.response_to_string r))
    ( = )

let test_five_commands () =
  with_server (fun server ->
      with_client server (fun c ->
          let req = Client.request c in
          Alcotest.check resp "ping" Protocol.Pong (req Protocol.Ping);
          Alcotest.check resp "get miss" Protocol.Not_found
            (req (Protocol.Get 7));
          Alcotest.check resp "put creates" (Protocol.Stored true)
            (req (Protocol.Put (7, "hello")));
          Alcotest.check resp "put replaces" (Protocol.Stored false)
            (req (Protocol.Put (7, "world")));
          Alcotest.check resp "get hit" (Protocol.Value "world")
            (req (Protocol.Get 7));
          Alcotest.check resp "delete hit" Protocol.Deleted
            (req (Protocol.Delete 7));
          Alcotest.check resp "delete miss" Protocol.Not_found
            (req (Protocol.Delete 7));
          Alcotest.check resp "get after delete" Protocol.Not_found
            (req (Protocol.Get 7));
          (match req (Protocol.Get 99999999) with
          | Protocol.Error _ -> ()
          | r ->
              Alcotest.failf "out-of-range GET: %s"
                (Protocol.response_to_string r));
          match req Protocol.Stats with
          | Protocol.Stats_reply kvs ->
              let get k = List.assoc k kvs in
              Alcotest.(check int) "stats version" Protocol.version
                (get "version");
              Alcotest.(check int) "stats buckets" 256 (get "buckets");
              Alcotest.(check bool) "counted the gets" true (get "ops_get" >= 3)
          | r ->
              Alcotest.failf "STATS: %s" (Protocol.response_to_string r)))

let test_pipelined_batch () =
  with_server (fun server ->
      with_client server (fun c ->
          let n = 200 in
          let puts =
            List.init n (fun i -> Protocol.Put (i, Printf.sprintf "v%d" i))
          in
          let acks = Client.batch c puts in
          Alcotest.(check int) "one ack per put" n (List.length acks);
          List.iter
            (fun r -> Alcotest.check resp "stored" (Protocol.Stored true) r)
            acks;
          let gets = List.init n (fun i -> Protocol.Get i) in
          let values = Client.batch c gets in
          List.iteri
            (fun i r ->
              Alcotest.check resp "value back in order"
                (Protocol.Value (Printf.sprintf "v%d" i))
                r)
            values))

let test_concurrent_clients () =
  with_server (fun server ->
      let n_clients = 4 and per_client = 300 in
      let errors = Atomic.make 0 in
      let domains =
        List.init n_clients (fun id ->
            Domain.spawn (fun () ->
                with_client server (fun c ->
                    for i = 0 to per_client - 1 do
                      let k = ((id * per_client) + i) mod 1024 in
                      (match Client.request c (Protocol.Put (k, "x")) with
                      | Protocol.Stored _ -> ()
                      | _ -> Atomic.incr errors);
                      match Client.request c (Protocol.Get k) with
                      | Protocol.Value _ | Protocol.Not_found -> ()
                      | _ -> Atomic.incr errors
                    done)))
      in
      List.iter Domain.join domains;
      Alcotest.(check int) "no unexpected responses" 0 (Atomic.get errors);
      let served =
        List.assoc "accepted" (Server.stats server)
      in
      Alcotest.(check int) "every client was accepted" n_clients served)

let test_malformed_disconnect () =
  with_server (fun server ->
      (* A raw socket speaking garbage: a plausible length prefix whose
         body fails the magic check. The server must drop us, not hang
         or crash — and must keep serving others. *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd
            (Unix.ADDR_INET
               (Unix.inet_addr_of_string "127.0.0.1", Server.port server));
          let junk = Bytes.of_string "\x00\x00\x00\x04JUNK" in
          let n = Unix.write fd junk 0 (Bytes.length junk) in
          Alcotest.(check int) "junk written" (Bytes.length junk) n;
          let buf = Bytes.create 64 in
          let got = Unix.read fd buf 0 64 in
          Alcotest.(check int) "server closed on malformed frame" 0 got);
      with_client server (fun c ->
          Alcotest.check resp "still serving" Protocol.Pong
            (Client.request c Protocol.Ping));
      let pe = List.assoc "protocol_errors" (Server.stats server) in
      Alcotest.(check int) "counted as protocol error" 1 pe)

let test_every_scheme () =
  List.iter
    (fun scheme ->
      with_server ~scheme ~range:256 ~buckets:64 ~prefill:true (fun server ->
          with_client server (fun c ->
              let req = Client.request c in
              (match req (Protocol.Put (3, "s")) with
              | Protocol.Stored _ -> ()
              | r ->
                  Alcotest.failf "%s PUT: %s" scheme
                    (Protocol.response_to_string r));
              Alcotest.check resp
                (scheme ^ " get")
                (Protocol.Value "s")
                (req (Protocol.Get 3));
              Alcotest.check resp
                (scheme ^ " delete")
                Protocol.Deleted
                (req (Protocol.Delete 3));
              match req Protocol.Stats with
              | Protocol.Stats_reply kvs ->
                  Alcotest.(check bool)
                    (scheme ^ " gauges sane")
                    true
                    (List.assoc "unreclaimed" kvs >= 0
                    && List.assoc "allocated" kvs >= 0)
              | r ->
                  Alcotest.failf "%s STATS: %s" scheme
                    (Protocol.response_to_string r))))
    Harness.Registry.schemes

(* ------------------------------------------------------------------ *)
(* Telemetry: STATS_FULL and the /metrics scrape plane                 *)
(* ------------------------------------------------------------------ *)

let test_stats_full () =
  with_server (fun server ->
      with_client server (fun c ->
          let req = Client.request c in
          ignore (req (Protocol.Put (1, "v")));
          ignore (req (Protocol.Get 1));
          ignore (req Protocol.Ping);
          match req Protocol.Stats_full with
          | Protocol.Stats_reply kvs ->
              let get k = Option.value (List.assoc_opt k kvs) ~default:(-1) in
              Alcotest.(check int) "version rides along" Protocol.version
                (get "version");
              Alcotest.(check bool) "per-op counter present" true
                (get "vbr_net_requests_total{op=get}" >= 1);
              Alcotest.(check bool) "latency count present" true
                (get "vbr_net_request_duration_seconds_count{op=get}" >= 1);
              Alcotest.(check bool) "SMR gauge present" true
                (get "vbr_smr_unreclaimed_slots{scheme=VBR}" >= 0);
              Alcotest.(check bool) "reply fits the wire bound" true
                (List.length kvs <= Protocol.max_stats_entries);
              List.iter
                (fun (k, _) ->
                  Alcotest.(check bool) "name fits the wire bound" true
                    (String.length k <= Protocol.max_stats_name_len))
                kvs
          | r ->
              Alcotest.failf "STATS_FULL: %s" (Protocol.response_to_string r)))

let test_metrics_scrape () =
  with_server ~metrics:true (fun server ->
      let mport = Option.get (Server.metrics_port server) in
      with_client server (fun c ->
          let req = Client.request c in
          ignore (req (Protocol.Put (2, "v")));
          ignore (req (Protocol.Get 2));
          ignore (req Protocol.Ping));
      (match Net.Http.get ~host:"127.0.0.1" ~port:mport "/metrics" with
      | Error e -> Alcotest.failf "scrape: %s" e
      | Ok body -> (
          match Obs.Metrics.parse body with
          | Error e -> Alcotest.failf "exposition: %s" e
          | Ok fams ->
              List.iter
                (fun fam ->
                  Alcotest.(check bool) (fam ^ " exposed") true
                    (Obs.Metrics.find_family fams fam <> None))
                [
                  "vbr_net_requests";
                  "vbr_net_request_duration_seconds";
                  "vbr_net_rx_bytes";
                  "vbr_net_tx_bytes";
                  "vbr_net_active_connections";
                  "vbr_smr_unreclaimed_slots";
                  "vbr_smr_retires";
                ];
              Alcotest.(check bool) "ping counted" true
                (Option.value ~default:0.0
                   (Obs.Metrics.sample_value fams
                      ~labels:[ ("op", "ping") ]
                      "vbr_net_requests_total")
                >= 1.0)));
      (* the JSON twin serves an object *)
      (match Net.Http.get ~host:"127.0.0.1" ~port:mport "/metrics.json" with
      | Error e -> Alcotest.failf "json scrape: %s" e
      | Ok body ->
          Alcotest.(check bool) "json object" true
            (String.length body > 0 && body.[0] = '{'));
      (* unknown path is a 404 (reported as a non-200 by the client) *)
      (match Net.Http.get ~host:"127.0.0.1" ~port:mport "/nope" with
      | Ok _ -> Alcotest.fail "404 expected"
      | Error _ -> ());
      (* the full vbr-top validation: two scrapes, required families,
         bucket monotonicity, counter monotonicity *)
      match Net.Top.check ~host:"127.0.0.1" ~port:mport with
      | Ok () -> ()
      | Error e -> Alcotest.failf "top check: %s" e)

let test_top_render () =
  with_server ~metrics:true (fun server ->
      let mport = Option.get (Server.metrics_port server) in
      with_client server (fun c ->
          ignore (Client.request c Protocol.Ping));
      match Net.Top.scrape ~host:"127.0.0.1" ~port:mport with
      | Error e -> Alcotest.failf "scrape: %s" e
      | Ok s ->
          let page = Net.Top.render s in
          let contains needle =
            let nh = String.length page and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub page i nn = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "op table" true (contains "ping");
          Alcotest.(check bool) "scheme row" true (contains "VBR"))

(* ------------------------------------------------------------------ *)
(* In-process loadgen                                                  *)
(* ------------------------------------------------------------------ *)

let test_loadgen_closed () =
  with_server ~prefill:true (fun server ->
      let cfg =
        {
          Loadgen.default_config with
          Loadgen.port = Server.port server;
          clients = 2;
          duration = 0.5;
          batch = 4;
          range = 1024;
          keydist = Harness.Keygen.Zipf 0.9;
          timeline_ms = 100.0;
        }
      in
      let r = Loadgen.run cfg in
      Alcotest.(check int) "no protocol errors" 0 r.Loadgen.r_errors;
      Alcotest.(check bool) "made progress" true (r.Loadgen.r_ops > 0);
      (* the interval time-series: several samples, cumulative counters
         monotone, final sample consistent with the aggregate *)
      Alcotest.(check bool) "timeline sampled" true
        (List.length r.Loadgen.r_timeline >= 3);
      let rec mono = function
        | a :: (b :: _ as rest) ->
            a.Loadgen.tp_ms <= b.Loadgen.tp_ms
            && a.Loadgen.tp_ops <= b.Loadgen.tp_ops
            && a.Loadgen.tp_errors <= b.Loadgen.tp_errors
            && mono rest
        | _ -> true
      in
      Alcotest.(check bool) "timeline monotone" true
        (mono r.Loadgen.r_timeline);
      let last = List.nth r.Loadgen.r_timeline
          (List.length r.Loadgen.r_timeline - 1) in
      Alcotest.(check int) "final sample = aggregate ops" r.Loadgen.r_ops
        last.Loadgen.tp_ops;
      Alcotest.(check bool) "unreclaimed sampled" true
        (last.Loadgen.tp_unreclaimed >= 0);
      (* The JSON point is well-formed and carries both STATS snapshots. *)
      let json = Obs.Sink.to_string (Loadgen.report_json cfg r) in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "json has server counters" true
        (contains json "unreclaimed"
        && contains json "p999_ns"
        && contains json "mops");
      Alcotest.(check bool) "json has the timeline panel" true
        (contains json "timeline" && contains json "win_ops_per_s"))

let test_loadgen_open () =
  with_server ~prefill:true (fun server ->
      let cfg =
        {
          Loadgen.default_config with
          Loadgen.port = Server.port server;
          clients = 2;
          duration = 0.3;
          rate = Some 500;
          range = 1024;
        }
      in
      let r = Loadgen.run cfg in
      Alcotest.(check int) "no protocol errors" 0 r.Loadgen.r_errors;
      Alcotest.(check bool) "made progress" true (r.Loadgen.r_ops > 0))

(* ------------------------------------------------------------------ *)
(* Keygen                                                              *)
(* ------------------------------------------------------------------ *)

let test_keygen_parse () =
  let ok s d =
    match Harness.Keygen.parse s with
    | Ok d' -> Alcotest.(check bool) s true (d = d')
    | Error m -> Alcotest.failf "%s: %s" s m
  in
  ok "uniform" Harness.Keygen.Uniform;
  ok "zipf:0.9" (Harness.Keygen.Zipf 0.9);
  List.iter
    (fun s ->
      match Harness.Keygen.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parsed %S" s)
    [ "zipf"; "zipf:"; "zipf:0"; "zipf:1.5"; "zipf:-0.5"; "bogus" ]

let test_keygen_deterministic_and_bounded () =
  let range = 1000 in
  let draw dist =
    let kg = Harness.Keygen.create dist ~range in
    let rng = Harness.Rng.create ~seed:7 in
    List.init 5000 (fun _ -> Harness.Keygen.next kg rng)
  in
  List.iter
    (fun dist ->
      let a = draw dist and b = draw dist in
      Alcotest.(check bool) "same seed, same keys" true (a = b);
      Alcotest.(check bool) "all in range" true
        (List.for_all (fun k -> k >= 0 && k < range) a))
    [ Harness.Keygen.Uniform; Harness.Keygen.Zipf 0.5;
      Harness.Keygen.Zipf 0.99 ];
  (* Uniform through Keygen is bit-identical to the historical direct
     Rng.below draw — existing panels are unperturbed. *)
  let direct =
    let rng = Harness.Rng.create ~seed:7 in
    List.init 5000 (fun _ -> Harness.Rng.below rng range)
  in
  Alcotest.(check bool) "uniform = Rng.below" true
    (draw Harness.Keygen.Uniform = direct)

let test_keygen_skew () =
  let range = 1000 and draws = 50_000 in
  let hot_mass dist =
    let kg = Harness.Keygen.create dist ~range in
    let rng = Harness.Rng.create ~seed:11 in
    let hot = ref 0 in
    for _ = 1 to draws do
      if Harness.Keygen.next kg rng < 10 then incr hot
    done;
    float_of_int !hot /. float_of_int draws
  in
  let uniform = hot_mass Harness.Keygen.Uniform in
  let zipf = hot_mass (Harness.Keygen.Zipf 0.99) in
  Alcotest.(check bool)
    (Printf.sprintf "uniform hot mass ~1%% (got %.3f)" uniform)
    true
    (uniform < 0.03);
  Alcotest.(check bool)
    (Printf.sprintf "zipf 0.99 concentrates on hot keys (got %.3f)" zipf)
    true (zipf > 0.15)

let () =
  Alcotest.run "net"
    [
      ( "codec",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_roundtrip_request; qcheck_roundtrip_response;
            qcheck_truncated ]
        @ [
            Alcotest.test_case "max-length values" `Quick
              test_max_length_values;
            Alcotest.test_case "corrupt frames" `Quick test_corrupt_frames;
          ] );
      ( "server",
        [
          Alcotest.test_case "five commands" `Quick test_five_commands;
          Alcotest.test_case "pipelined batch" `Quick test_pipelined_batch;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
          Alcotest.test_case "malformed frame disconnects" `Quick
            test_malformed_disconnect;
          Alcotest.test_case "every scheme serves" `Quick test_every_scheme;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "STATS_FULL snapshot" `Quick test_stats_full;
          Alcotest.test_case "loopback /metrics scrape" `Quick
            test_metrics_scrape;
          Alcotest.test_case "top renders" `Quick test_top_render;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "closed loop" `Quick test_loadgen_closed;
          Alcotest.test_case "open loop" `Quick test_loadgen_open;
        ] );
      ( "keygen",
        [
          Alcotest.test_case "parse" `Quick test_keygen_parse;
          Alcotest.test_case "deterministic and bounded" `Quick
            test_keygen_deterministic_and_bounded;
          Alcotest.test_case "zipf skew" `Quick test_keygen_skew;
        ] );
    ]
