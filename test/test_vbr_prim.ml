(* Unit tests for the VBR primitives themselves: the allocation/retire
   lifecycle (Figure 1), the §2 ABA scenario, the double-retire guard, the
   rollback machinery, and the version invariants of Appendix A. *)

open Vbr_core
open Memsim

let setup ?(retire_threshold = 0) ?(n_threads = 2) () =
  let arena = Arena.create ~capacity:1_000 in
  let global = Global_pool.create ~max_level:4 in
  let vbr = Vbr.create_tuned ~retire_threshold ~arena ~global ~n_threads () in
  (arena, vbr)

let run_ckpt c f = Vbr.checkpoint c f

let test_alloc_shape () =
  let arena, vbr = setup () in
  let c = Vbr.ctx vbr ~tid:0 in
  let i, b =
    run_ckpt c (fun () ->
        let i, b = Vbr.alloc vbr ~tid:0 ~level:3 ~key:42 in
        Vbr.commit_alloc c i;
        (i, b))
  in
  let n = Arena.get arena i in
  Alcotest.(check int) "key" 42 n.Node.key;
  Alcotest.(check int) "birth = epoch at alloc" b (Atomic.get n.Node.birth);
  Alcotest.(check int) "retire is bottom" Node.no_epoch
    (Atomic.get n.Node.retire);
  Array.iter
    (fun w ->
      let v = Atomic.get w in
      Alcotest.(check int) "next NULL" 0 (Packed.index v);
      Alcotest.(check int) "version = birth" b (Packed.version v);
      Alcotest.(check bool) "unmarked" false (Packed.is_marked v))
    n.Node.next

let test_reallocation_epoch_advances () =
  (* Re-allocating a slot retired in the current epoch must bump the
     global epoch so the new birth strictly exceeds the old retire
     (Claim 6, part 4). retire_threshold = 0 recycles immediately. *)
  let _, vbr = setup () in
  let c = Vbr.ctx vbr ~tid:0 in
  let i1, b1 =
    run_ckpt c (fun () ->
        let i, b = Vbr.alloc vbr ~tid:0 ~level:1 ~key:1 in
        Vbr.commit_alloc c i;
        (i, b))
  in
  run_ckpt c (fun () -> Vbr.retire vbr ~tid:0 (i1, b1));
  let old_retire = Vbr.read_retire vbr i1 in
  let i2, b2 =
    run_ckpt c (fun () ->
        let i, b = Vbr.alloc vbr ~tid:0 ~level:1 ~key:2 in
        Vbr.commit_alloc c i;
        (i, b))
  in
  Alcotest.(check int) "same slot recycled" i1 i2;
  Alcotest.(check bool) "new birth > old retire" true (b2 > old_retire);
  Alcotest.(check bool) "epoch advanced" true
    (Epoch.get (Vbr.epoch vbr) > b1)

let test_double_retire_guard () =
  let _, vbr = setup ~retire_threshold:100 () in
  let c = Vbr.ctx vbr ~tid:0 in
  let i, b =
    run_ckpt c (fun () ->
        let i, b = Vbr.alloc vbr ~tid:0 ~level:1 ~key:7 in
        Vbr.commit_alloc c i;
        (i, b))
  in
  run_ckpt c (fun () -> Vbr.retire vbr ~tid:0 (i, b));
  let retires_before = (Vbr.ctx_stats c).Vbr.retires in
  run_ckpt c (fun () -> Vbr.retire vbr ~tid:0 (i, b));
  (* Stale-birth retire must also be rejected. *)
  run_ckpt c (fun () -> Vbr.retire vbr ~tid:0 (i, b - 1));
  Alcotest.(check int) "retire is once" retires_before (Vbr.ctx_stats c).Vbr.retires

let test_aba_scenario () =
  (* The §2 scenario. List n -> m -> k. T1 prepares to unlink m by CASing
     n.next from m to k, but stalls. Meanwhile T2 removes m, m's slot is
     recycled as d, and d is inserted between n and k. T1's stale CAS must
     now FAIL thanks to the versions. *)
  let _, vbr = setup () in
  let c = Vbr.ctx vbr ~tid:0 in
  let mk key =
    run_ckpt c (fun () ->
        let i, b = Vbr.alloc vbr ~tid:0 ~level:1 ~key:key in
        Vbr.commit_alloc c i;
        (i, b))
  in
  let n, n_b = mk 10 in
  let m, m_b = mk 20 in
  let k, k_b = mk 30 in
  let link a a_b x x_b =
    run_ckpt c (fun () ->
        Alcotest.(check bool) "link" true
          (Vbr.update c a ~birth:a_b ~expected:0 ~expected_birth:a_b ~new_:x
             ~new_birth:x_b))
  in
  link m m_b k k_b;
  link n n_b m m_b;
  (* T1 "reads" its CAS operands here: (n, n_b), expected (m, m_b),
     new (k, k_b) — then stalls. *)
  (* T2: logically delete m, unlink it, retire it. *)
  run_ckpt c (fun () ->
      Alcotest.(check bool) "mark m" true (Vbr.mark c m ~birth:m_b);
      Alcotest.(check bool) "unlink m" true
        (Vbr.update c n ~birth:n_b ~expected:m ~expected_birth:m_b ~new_:k
           ~new_birth:k_b));
  run_ckpt c (fun () -> Vbr.retire vbr ~tid:0 (m, m_b));
  (* Recycle m's slot as d and insert d between n and k. *)
  let d, d_b = mk 25 in
  Alcotest.(check int) "d reuses m's slot" m d;
  Alcotest.(check bool) "d's birth exceeds m's" true (d_b > m_b);
  run_ckpt c (fun () ->
      ignore
        (Vbr.update c d ~birth:d_b ~expected:0 ~expected_birth:d_b ~new_:k
           ~new_birth:k_b);
      Alcotest.(check bool) "insert d after n" true
        (Vbr.update c n ~birth:n_b ~expected:k ~expected_birth:k_b ~new_:d
           ~new_birth:d_b));
  (* T1 wakes up and executes its stale CAS: n.next from (m, m_b-version)
     to (k, ...). Without versions this would succeed (n.next's index IS
     m's slot index). With versions it must fail. *)
  run_ckpt c (fun () ->
      Alcotest.(check bool) "stale CAS fails" false
        (Vbr.update c n ~birth:n_b ~expected:m ~expected_birth:m_b ~new_:k
           ~new_birth:k_b));
  (* And d is still linked. *)
  run_ckpt c (fun () ->
      let succ, succ_b = Vbr.get_next c n in
      Alcotest.(check int) "n still points at d" d succ;
      Alcotest.(check int) "with d's birth" d_b succ_b)

let test_mark_semantics () =
  let _, vbr = setup () in
  let c = Vbr.ctx vbr ~tid:0 in
  let i, b =
    run_ckpt c (fun () ->
        let i, b = Vbr.alloc vbr ~tid:0 ~level:1 ~key:5 in
        Vbr.commit_alloc c i;
        (i, b))
  in
  Alcotest.(check bool) "fresh unmarked" false (Vbr.is_marked c i ~birth:b);
  run_ckpt c (fun () ->
      Alcotest.(check bool) "mark succeeds" true (Vbr.mark c i ~birth:b));
  Alcotest.(check bool) "now marked" true (Vbr.is_marked c i ~birth:b);
  run_ckpt c (fun () ->
      Alcotest.(check bool) "second mark fails" false (Vbr.mark c i ~birth:b));
  (* A marked word is invalidated: updates must fail. *)
  run_ckpt c (fun () ->
      Alcotest.(check bool) "update on marked fails" false
        (Vbr.update c i ~birth:b ~expected:0 ~expected_birth:b ~new_:0
           ~new_birth:b));
  (* Stale-birth mark reports the node as already removed. *)
  Alcotest.(check bool) "stale birth reads as marked" true
    (Vbr.is_marked c i ~birth:(b - 1));
  run_ckpt c (fun () ->
      Alcotest.(check bool) "stale mark fails" false
        (Vbr.mark c i ~birth:(b - 1)))

let test_rollback_on_epoch_change () =
  (* A get_next between epoch changes must roll back; the checkpoint
     re-runs the body with a refreshed epoch and it then succeeds. *)
  let _, vbr = setup () in
  let c = Vbr.ctx vbr ~tid:0 in
  let i, b =
    run_ckpt c (fun () ->
        let i, b = Vbr.alloc vbr ~tid:0 ~level:1 ~key:1 in
        Vbr.commit_alloc c i;
        (i, b))
  in
  ignore b;
  let attempts = ref 0 in
  let bumped = ref false in
  let v =
    run_ckpt c (fun () ->
        incr attempts;
        if not !bumped then begin
          (* Simulate another thread moving the epoch mid-operation. *)
          bumped := true;
          ignore
            (Epoch.try_advance (Vbr.epoch vbr)
               ~expected:(Epoch.get (Vbr.epoch vbr)))
        end;
        let succ, _ = Vbr.get_next c i in
        succ)
  in
  Alcotest.(check int) "eventually reads" 0 v;
  Alcotest.(check int) "exactly one rollback" 2 !attempts;
  Alcotest.(check int) "rollback counted" 1 (Vbr.ctx_stats c).Vbr.rollbacks

let test_pending_recycled_on_rollback () =
  (* Appendix B, type 1: a node allocated after the checkpoint that never
     became reachable is returned to the allocation pool on rollback, so
     the next alloc reuses it immediately (Claim 22's flavour). *)
  let _, vbr = setup () in
  let c = Vbr.ctx vbr ~tid:0 in
  let first = ref true in
  let seen = ref [] in
  let _ =
    run_ckpt c (fun () ->
        let i, _ = Vbr.alloc vbr ~tid:0 ~level:1 ~key:9 in
        seen := i :: !seen;
        if !first then begin
          first := false;
          ignore
            (Epoch.try_advance (Vbr.epoch vbr)
               ~expected:(Epoch.get (Vbr.epoch vbr)));
          (* Trigger a rollback after the alloc. *)
          ignore (Vbr.get_key c i)
        end;
        Vbr.commit_alloc c i;
        i)
  in
  match !seen with
  | [ second; first_alloc ] ->
      Alcotest.(check int) "slot recycled across rollback" first_alloc second
  | l -> Alcotest.failf "expected 2 allocs, saw %d" (List.length l)

let test_refresh_next_semantics () =
  let _, vbr = setup () in
  let c = Vbr.ctx vbr ~tid:0 in
  let mk key =
    run_ckpt c (fun () ->
        let i, b = Vbr.alloc vbr ~tid:0 ~level:1 ~key:key in
        Vbr.commit_alloc c i;
        (i, b))
  in
  let a, a_b = mk 1 in
  let x, x_b = mk 2 in
  let y, y_b = mk 3 in
  run_ckpt c (fun () ->
      Alcotest.(check bool) "redirect from NULL" true
        (Vbr.refresh_next c a ~birth:a_b ~new_:x ~new_birth:x_b);
      Alcotest.(check bool) "redirect again (raw expected)" true
        (Vbr.refresh_next c a ~birth:a_b ~new_:y ~new_birth:y_b);
      let succ, _ = Vbr.get_next c a in
      Alcotest.(check int) "points at y" y succ;
      Alcotest.(check bool) "stale birth fails" false
        (Vbr.refresh_next c a ~birth:(a_b - 1) ~new_:x ~new_birth:x_b);
      Alcotest.(check bool) "mark a" true (Vbr.mark c a ~birth:a_b);
      Alcotest.(check bool) "marked word immutable" false
        (Vbr.refresh_next c a ~birth:a_b ~new_:x ~new_birth:x_b))

let test_heal_stale_edge () =
  (* Manufacture a garbage edge (version below the target's current
     birth) and check that healing redirects it — and that healthy,
     marked or re-allocated words are left alone. *)
  let arena, vbr = setup () in
  let c = Vbr.ctx vbr ~tid:0 in
  let mk key =
    run_ckpt c (fun () ->
        let i, b = Vbr.alloc vbr ~tid:0 ~level:1 ~key:key in
        Vbr.commit_alloc c i;
        (i, b))
  in
  let p, p_b = mk 1 in
  let x, x_b = mk 2 in
  let sentinel, sentinel_b = mk 99 in
  run_ckpt c (fun () ->
      ignore (Vbr.refresh_next c p ~birth:p_b ~new_:x ~new_birth:x_b));
  (* Healthy edge: no heal. *)
  run_ckpt c (fun () ->
      Alcotest.(check bool) "healthy edge untouched" false
        (Vbr.heal_stale_edge c p ~birth:p_b ~to_:sentinel
           ~to_birth:sentinel_b));
  (* Recycle x: mark, retire, re-allocate the slot. *)
  run_ckpt c (fun () ->
      ignore (Vbr.mark c x ~birth:x_b);
      Vbr.retire vbr ~tid:0 (x, x_b));
  let x', x'_b = mk 3 in
  Alcotest.(check int) "slot reused" x x';
  Alcotest.(check bool) "birth advanced" true (x'_b > x_b);
  (* p's edge to the slot is now garbage: version < current birth. *)
  let w = Atomic.get (Memsim.Node.next0 (Arena.get arena p)) in
  Alcotest.(check bool) "edge is stale" true
    (Memsim.Packed.version w < x'_b);
  run_ckpt c (fun () ->
      Alcotest.(check bool) "garbage edge healed" true
        (Vbr.heal_stale_edge c p ~birth:p_b ~to_:sentinel
           ~to_birth:sentinel_b));
  run_ckpt c (fun () ->
      let succ, succ_b = Vbr.get_next c p in
      Alcotest.(check int) "redirected to sentinel" sentinel succ;
      Alcotest.(check int) "with sentinel's birth" sentinel_b succ_b);
  (* Stale caller birth: refused. *)
  run_ckpt c (fun () ->
      Alcotest.(check bool) "stale birth refused" false
        (Vbr.heal_stale_edge c p ~birth:(p_b - 1) ~to_:sentinel
           ~to_birth:sentinel_b))

let test_version_invariant_random () =
  (* Claim 10 flavour: after arbitrary single-threaded update/mark/retire
     traffic, every reachable-word version is >= the pointing node's birth
     and >= the target node's birth. *)
  let arena, vbr = setup ~retire_threshold:0 () in
  let c = Vbr.ctx vbr ~tid:0 in
  let rng = Random.State.make [| 7 |] in
  let live = ref [] in
  for _ = 1 to 500 do
    match Random.State.int rng 3 with
    | 0 ->
        let i, b =
          run_ckpt c (fun () ->
              let i, b = Vbr.alloc vbr ~tid:0 ~level:1 ~key:(Random.State.int rng 100) in
              Vbr.commit_alloc c i;
              (i, b))
        in
        live := (i, b) :: !live
    | 1 -> (
        match !live with
        | (x, x_b) :: rest when List.length !live >= 2 ->
            let y, y_b = List.nth rest (Random.State.int rng (List.length rest)) in
            run_ckpt c (fun () ->
                ignore
                  (Vbr.refresh_next c x ~birth:x_b ~new_:y ~new_birth:y_b))
        | _ -> ())
    | _ -> (
        match !live with
        | (x, x_b) :: rest ->
            run_ckpt c (fun () ->
                ignore (Vbr.mark c x ~birth:x_b);
                Vbr.retire vbr ~tid:0 (x, x_b));
            live := rest
        | [] -> ())
  done;
  List.iter
    (fun (i, b) ->
      let n = Arena.get arena i in
      if Atomic.get n.Node.birth = b then begin
        let w = Atomic.get (Node.next0 n) in
        Alcotest.(check bool) "version >= own birth" true
          (Packed.version w >= b);
        let tgt = Packed.index w in
        if tgt <> 0 then
          Alcotest.(check bool) "version >= target birth" true
            (Packed.version w >= Vbr.read_birth vbr tgt)
      end)
    !live

let () =
  Alcotest.run "vbr_prim"
    [
      ( "unit",
        [
          Alcotest.test_case "alloc shape" `Quick test_alloc_shape;
          Alcotest.test_case "reallocation advances epoch" `Quick
            test_reallocation_epoch_advances;
          Alcotest.test_case "double-retire guard" `Quick
            test_double_retire_guard;
          Alcotest.test_case "ABA scenario (section 2)" `Quick
            test_aba_scenario;
          Alcotest.test_case "mark semantics" `Quick test_mark_semantics;
          Alcotest.test_case "rollback on epoch change" `Quick
            test_rollback_on_epoch_change;
          Alcotest.test_case "pending recycled on rollback" `Quick
            test_pending_recycled_on_rollback;
          Alcotest.test_case "refresh_next semantics" `Quick
            test_refresh_next_semantics;
          Alcotest.test_case "heal_stale_edge" `Quick test_heal_stale_edge;
          Alcotest.test_case "version invariant (random)" `Quick
            test_version_invariant_random;
        ] );
    ]
