(* Unit and property tests for the packed-word codec — the WCAS
   substitute. Everything else depends on this being exactly right. *)

let check_roundtrip ~marked ~index ~version () =
  let w = Memsim.Packed.pack ~marked ~index ~version in
  Alcotest.(check int) "index" index (Memsim.Packed.index w);
  Alcotest.(check int) "version" version (Memsim.Packed.version w);
  Alcotest.(check bool) "mark" marked (Memsim.Packed.is_marked w)

let test_null () =
  let open Memsim.Packed in
  Alcotest.(check int) "null is zero" 0 null;
  Alcotest.(check bool) "null is null" true (is_null null);
  Alcotest.(check bool) "marked null still null" true (is_null (set_mark null));
  Alcotest.(check bool) "index 1 not null" false
    (is_null (pack ~marked:false ~index:1 ~version:0))

let test_extremes () =
  let open Memsim.Packed in
  check_roundtrip ~marked:false ~index:0 ~version:0 ();
  check_roundtrip ~marked:true ~index:max_index ~version:max_version ();
  check_roundtrip ~marked:false ~index:max_index ~version:0 ();
  check_roundtrip ~marked:true ~index:0 ~version:max_version ();
  check_roundtrip ~marked:false ~index:1 ~version:1 ()

let test_mark_ops () =
  let open Memsim.Packed in
  let w = pack ~marked:false ~index:42 ~version:7 in
  Alcotest.(check bool) "unmarked" false (is_marked w);
  let m = set_mark w in
  Alcotest.(check bool) "marked" true (is_marked m);
  Alcotest.(check int) "mark preserves index" 42 (index m);
  Alcotest.(check int) "mark preserves version" 7 (version m);
  Alcotest.(check int) "clear_mark restores" w (clear_mark m);
  Alcotest.(check int) "clear idempotent" w (clear_mark w);
  Alcotest.(check int) "set idempotent" m (set_mark m)

let test_with_version () =
  let open Memsim.Packed in
  let w = pack ~marked:true ~index:99 ~version:5 in
  let w' = with_version w 123456 in
  Alcotest.(check int) "index kept" 99 (index w');
  Alcotest.(check bool) "mark kept" true (is_marked w');
  Alcotest.(check int) "version replaced" 123456 (version w')

let test_invalid () =
  let open Memsim.Packed in
  Alcotest.check_raises "negative index"
    (Invalid_argument "Packed.pack: index -1 out of range") (fun () ->
      ignore (pack ~marked:false ~index:(-1) ~version:0));
  Alcotest.check_raises "index too big"
    (Invalid_argument
       (Printf.sprintf "Packed.pack: index %d out of range" (max_index + 1)))
    (fun () -> ignore (pack ~marked:false ~index:(max_index + 1) ~version:0));
  Alcotest.check_raises "version too big"
    (Invalid_argument
       (Printf.sprintf "Packed.pack: version %d out of range" (max_version + 1)))
    (fun () ->
      ignore (pack ~marked:false ~index:0 ~version:(max_version + 1)))

let test_distinct_words () =
  (* Words differing in any component must differ as ints: CAS correctness
     depends on it. *)
  let open Memsim.Packed in
  let base = pack ~marked:false ~index:5 ~version:9 in
  Alcotest.(check bool) "index distinct" true
    (base <> pack ~marked:false ~index:6 ~version:9);
  Alcotest.(check bool) "version distinct" true
    (base <> pack ~marked:false ~index:5 ~version:10);
  Alcotest.(check bool) "mark distinct" true
    (base <> pack ~marked:true ~index:5 ~version:9)

(* Property tests. *)
let gen_components =
  QCheck2.Gen.(
    triple bool (int_bound Memsim.Packed.max_index)
      (int_bound (1 lsl 30)))

let prop_roundtrip =
  QCheck2.Test.make ~name:"packed roundtrip (small versions)" ~count:1000
    gen_components (fun (marked, i, v) ->
      let w = Memsim.Packed.pack ~marked ~index:i ~version:v in
      Memsim.Packed.index w = i
      && Memsim.Packed.version w = v
      && Memsim.Packed.is_marked w = marked)

let prop_roundtrip_big =
  QCheck2.Test.make ~name:"packed roundtrip (big versions)" ~count:1000
    QCheck2.Gen.(
      triple bool (int_bound Memsim.Packed.max_index)
        (map
           (fun v -> Memsim.Packed.max_version - v)
           (int_bound (1 lsl 30))))
    (fun (marked, i, v) ->
      let w = Memsim.Packed.pack ~marked ~index:i ~version:v in
      Memsim.Packed.index w = i
      && Memsim.Packed.version w = v
      && Memsim.Packed.is_marked w = marked)

let prop_mark_involution =
  QCheck2.Test.make ~name:"clear_mark ∘ set_mark = clear_mark" ~count:500
    gen_components (fun (marked, i, v) ->
      let open Memsim.Packed in
      let w = pack ~marked ~index:i ~version:v in
      clear_mark (set_mark w) = clear_mark w)

(* The mli promises pack_unchecked = pack on every in-range input; the
   hot paths (vbr.ml update/read) lean on that promise. Cover both the
   small-version region and the top of the version range, where a missing
   mask would overflow into the sign bit. *)
let prop_unchecked_agrees =
  QCheck2.Test.make ~name:"pack_unchecked = pack on valid inputs" ~count:1000
    QCheck2.Gen.(
      triple bool (int_bound Memsim.Packed.max_index)
        (oneof
           [
             int_bound (1 lsl 30);
             map
               (fun v -> Memsim.Packed.max_version - v)
               (int_bound (1 lsl 30));
           ]))
    (fun (marked, i, v) ->
      Memsim.Packed.pack_unchecked ~marked ~index:i ~version:v
      = Memsim.Packed.pack ~marked ~index:i ~version:v)

let prop_with_version =
  QCheck2.Test.make ~name:"with_version replaces only version" ~count:500
    QCheck2.Gen.(pair gen_components (int_bound (1 lsl 30)))
    (fun ((marked, i, v), v') ->
      let w =
        Memsim.Packed.with_version
          (Memsim.Packed.pack ~marked ~index:i ~version:v)
          v'
      in
      Memsim.Packed.index w = i
      && Memsim.Packed.is_marked w = marked
      && Memsim.Packed.version w = v')

let () =
  Alcotest.run "packed"
    [
      ( "unit",
        [
          Alcotest.test_case "null" `Quick test_null;
          Alcotest.test_case "extremes" `Quick test_extremes;
          Alcotest.test_case "mark ops" `Quick test_mark_ops;
          Alcotest.test_case "with_version" `Quick test_with_version;
          Alcotest.test_case "invalid inputs" `Quick test_invalid;
          Alcotest.test_case "distinct words" `Quick test_distinct_words;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip;
            prop_roundtrip_big;
            prop_mark_involution;
            prop_unchecked_agrees;
            prop_with_version;
          ] );
    ]
