(* Fixture: determinism. A wall-clock read outside the measurement layer.
   Expected finding: determinism at line 4. *)

let now () = Unix.gettimeofday ()
