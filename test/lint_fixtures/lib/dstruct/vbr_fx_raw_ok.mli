(* Interface stub so the fixture does not trip mli-coverage. *)
type t

val peek : t -> int
