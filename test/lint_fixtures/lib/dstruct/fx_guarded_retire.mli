(* Interface stub so the fixture does not trip mli-coverage. *)
