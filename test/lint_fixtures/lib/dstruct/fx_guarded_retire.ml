(* Fixture: retire-discipline. A retire with no successful unlink before
   it, and a dealloc that is not local to its alloc. Expected findings:
   retire-discipline at lines 6 and 8; the two disciplined bindings stay
   clean. *)

let bad_retire t ~tid n = R.retire t ~tid n

let bad_dealloc t ~tid n = R.dealloc t ~tid n

let good_retire t ~tid w n =
  if Atomic.compare_and_set w 0 1 then R.retire t ~tid n

let good_dealloc t ~tid =
  let n = R.alloc t ~tid ~level:1 ~key:0 in
  R.dealloc t ~tid n
