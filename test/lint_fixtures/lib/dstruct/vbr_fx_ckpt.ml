(* Fixture: checkpoint-scope. A rollback-raising read outside any
   checkpoint thunk. Expected finding: checkpoint-scope at line 5; the
   wrapped and the annotated bindings stay clean. *)

let probe t c = V.get_next c t.head

let lookup t c =
  V.checkpoint c (fun () ->
      let curr, _ = V.get_next c t.head in
      V.get_key c curr)

(* Figure-3 idiom: the caller installs the checkpoint. *)
let helper c n = V.get_key c n [@@vbr.allow "checkpoint-scope"]
