(* Fixture: guarded-deref. A node-word read in a body that never engages
   the protection plane. Expected finding: guarded-deref at line 5; the
   protected binding stays clean. *)

let bad t i = Atomic.get (next_word t i)

let good t ~tid i =
  let j = R.protect t ~tid i in
  Atomic.get (next_word t j)
