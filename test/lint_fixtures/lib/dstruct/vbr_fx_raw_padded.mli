(* Fixture interface: raw-atomic Padded.cell exemption. *)
type t = { hits : int Atomic.t }

val peek : t -> int
val bump : t -> unit
