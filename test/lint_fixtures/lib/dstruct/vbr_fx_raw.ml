(* Fixture: raw-atomic. A vbr_* module reading a shared word with a raw
   Atomic op. Expected finding: raw-atomic at line 5. *)
type t = { head : int Atomic.t }

let peek t = Atomic.get t.head
