(* Fixture: raw-atomic, suppressed. Same shape as vbr_fx_raw.ml but the
   binding carries the allow attribute — must produce no finding (this is
   the test for the suppression machinery itself). *)
type t = { head : int Atomic.t }

let peek t = Atomic.get t.head [@@vbr.allow "raw-atomic"]
