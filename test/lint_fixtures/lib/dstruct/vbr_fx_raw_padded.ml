(* Fixture: raw-atomic, Padded exemption. The access goes through
   [Padded.cell] — the identity marker for padded plane bookkeeping — so
   the rule must produce no finding without any allow attribute. *)
type t = { hits : int Atomic.t }

let peek t = Atomic.get (Padded.cell t.hits)
let bump t = Atomic.incr (Memsim.Padded.cell t.hits)
