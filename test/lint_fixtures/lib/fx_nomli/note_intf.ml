(* Fixture: mli-coverage exemption. Signature carriers named *_intf.ml are
   exempt from the .mli requirement — no finding expected despite the
   missing interface. *)

module type NOTE = sig
  val answer : int
end
