(* Fixture: mli-coverage. A lib/ module with no sibling .mli. Expected
   finding: mli-coverage at line 1. *)

let answer = 42
