(* Fixture: determinism, clean. lib/harness is a blessed timing layer, so
   the same wall-clock read produces no finding here. *)

let now () = Unix.gettimeofday ()
