(* Unit tests for the recycling pools: local take/put, level size classes,
   global spill/redistribution, and slot conservation (nothing lost,
   nothing duplicated). *)

open Memsim

let setup ?(capacity = 10_000) ?(max_level = 4) ?(spill = 8) () =
  let arena = Arena.create ~capacity in
  let global = Global_pool.create ~max_level in
  let pool = Pool.create arena global ~spill in
  (arena, global, pool)

let test_take_fresh_then_recycle () =
  let _, _, pool = setup () in
  let i = Pool.take pool ~level:1 in
  Alcotest.(check int) "fresh slot" 1 i;
  Alcotest.(check int) "not recycled" 0 (Pool.recycled pool);
  Pool.put pool i;
  Alcotest.(check int) "one free" 1 (Pool.local_free pool);
  let j = Pool.take pool ~level:1 in
  Alcotest.(check int) "same slot back" i j;
  Alcotest.(check int) "recycled count" 1 (Pool.recycled pool);
  Alcotest.(check int) "free drained" 0 (Pool.local_free pool)

let test_level_classes () =
  (* A level-2 slot must never satisfy a level-1 request and vice versa. *)
  let _, _, pool = setup () in
  let a1 = Pool.take pool ~level:1 in
  let a2 = Pool.take pool ~level:2 in
  Pool.put pool a1;
  Pool.put pool a2;
  let b2 = Pool.take pool ~level:2 in
  let b1 = Pool.take pool ~level:1 in
  Alcotest.(check int) "level-2 slot reused for level 2" a2 b2;
  Alcotest.(check int) "level-1 slot reused for level 1" a1 b1

let test_spill_to_global () =
  let _, global, pool = setup ~spill:4 () in
  let slots = List.init 8 (fun _ -> Pool.take pool ~level:1) in
  Alcotest.(check int) "global empty before" 0
    (Global_pool.approx_batches global);
  List.iter (Pool.put pool) slots;
  Alcotest.(check bool) "spilled to global" true
    (Global_pool.approx_batches global > 0);
  Alcotest.(check bool) "local kept some" true (Pool.local_free pool > 0)

let test_global_redistribution () =
  (* Slots freed by one pool become allocatable from another. *)
  let arena, global, pool_a = setup ~spill:2 () in
  let pool_b = Pool.create arena global ~spill:2 in
  let slots = List.init 6 (fun _ -> Pool.take pool_a ~level:1) in
  List.iter (Pool.put pool_a) slots;
  let from_b = Pool.take pool_b ~level:1 in
  Alcotest.(check bool) "b reuses a's slot" true (List.mem from_b slots);
  Alcotest.(check bool) "counted as recycled" true (Pool.recycled pool_b > 0)

let test_global_pool_batches () =
  let g = Global_pool.create ~max_level:2 in
  Global_pool.push_batch g ~level:1 [ 1; 2; 3 ];
  Global_pool.push_batch g ~level:2 [ 4 ];
  Global_pool.push_batch g ~level:1 [];
  Alcotest.(check int) "two batches" 2 (Global_pool.approx_batches g);
  (match Global_pool.pop_batch g ~level:1 with
  | Some b -> Alcotest.(check (list int)) "lifo batch" [ 1; 2; 3 ] b
  | None -> Alcotest.fail "expected a batch");
  Alcotest.(check bool) "level 2 separate" true
    (Global_pool.pop_batch g ~level:2 = Some [ 4 ]);
  Alcotest.(check bool) "drained" true (Global_pool.pop_batch g ~level:1 = None);
  Alcotest.check_raises "bad level"
    (Invalid_argument "Global_pool: level 3 out of range") (fun () ->
      ignore (Global_pool.pop_batch g ~level:3))

let test_put_batch_single_spill () =
  (* put_batch runs the spill check at most once per touched level, after
     the whole batch has landed: one donation batch per level, however
     large the batch. *)
  let _, global, pool = setup ~spill:4 () in
  let l1 = List.init 12 (fun _ -> Pool.take pool ~level:1) in
  let l2 = List.init 12 (fun _ -> Pool.take pool ~level:2) in
  Alcotest.(check int) "global empty before" 0
    (Global_pool.approx_batches global);
  Pool.put_batch pool (l1 @ l2);
  Alcotest.(check int) "one spill batch per touched level" 2
    (Global_pool.approx_batches global);
  (* One halving per level: 12 kept locally per level, 12 donated. *)
  Alcotest.(check int) "each level kept half locally" 12
    (Pool.local_free pool);
  (* The same traffic as repeated put crosses the threshold repeatedly and
     donates several batches per level — the behaviour put_batch avoids. *)
  let _, global', pool' = setup ~spill:4 () in
  let l1' = List.init 12 (fun _ -> Pool.take pool' ~level:1) in
  List.iter (Pool.put pool') l1';
  Alcotest.(check bool) "repeated put spills more than once" true
    (Global_pool.approx_batches global' > 1)

let test_conservation () =
  (* Random put/take traffic: every slot is either held by the client,
     in the local pool, or in the global pool — never lost or duplicated. *)
  let arena, _, pool = setup ~capacity:1_000 ~spill:5 () in
  let held = ref [] in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 2_000 do
    if Random.State.bool rng && !held <> [] then begin
      match !held with
      | s :: rest ->
          held := rest;
          Pool.put pool s
      | [] -> ()
    end
    else begin
      let lvl = 1 + Random.State.int rng 3 in
      held := Pool.take pool ~level:lvl :: !held
    end
  done;
  (* Drain everything back and count distinct slots. *)
  List.iter (Pool.put pool) !held;
  let drained = ref [] in
  for lvl = 1 to 4 do
    try
      while true do
        drained := (Pool.take pool ~level:lvl, lvl) :: !drained
      done
    with Arena.Exhausted -> ()
  done;
  let slots = List.map fst !drained in
  Alcotest.(check int) "no duplicates after drain" (List.length slots)
    (List.length (List.sort_uniq compare slots));
  Alcotest.(check bool) "drained at least as many as arena handed out" true
    (List.length slots >= Arena.allocated arena)

let test_concurrent_global () =
  (* Hammer the global pool from several domains; batches never vanish or
     duplicate. *)
  let g = Global_pool.create ~max_level:1 in
  let n_batches = 2_000 in
  let producer lo =
    for b = lo to lo + n_batches - 1 do
      Global_pool.push_batch g ~level:1 [ b ]
    done
  in
  let consumed = Atomic.make 0 in
  let seen = Array.make (4 * n_batches) false in
  let consumer () =
    let got = ref 0 in
    while !got < n_batches do
      match Global_pool.pop_batch g ~level:1 with
      | Some [ b ] ->
          if seen.(b) then failwith "duplicate batch";
          seen.(b) <- true;
          incr got;
          Atomic.incr consumed
      | Some _ -> failwith "mangled batch"
      | None -> Domain.cpu_relax ()
    done
  in
  let ps =
    List.init 2 (fun i -> Domain.spawn (fun () -> producer (i * n_batches)))
  in
  let cs = List.init 2 (fun _ -> Domain.spawn consumer) in
  List.iter Domain.join ps;
  List.iter Domain.join cs;
  Alcotest.(check int) "all consumed" (2 * n_batches) (Atomic.get consumed)

let test_steal_counters () =
  (* An own-shard pop counts only Global_pop; a foreign-shard pop counts
     Global_pop plus Global_steal; pushes count Global_push. *)
  let g = Global_pool.create ~max_level:1 in
  let c = Obs.Counters.create ~shards:1 in
  let sh = Obs.Counters.shard c 0 in
  Global_pool.push_batch ~stats:sh ~shard:3 g ~level:1 [ 1; 2 ];
  Global_pool.push_batch ~stats:sh ~shard:3 g ~level:1 [ 3 ];
  (match Global_pool.pop_batch ~stats:sh ~shard:3 g ~level:1 with
  | Some _ -> ()
  | None -> Alcotest.fail "expected an own-shard batch");
  Alcotest.(check int) "no steal from own shard" 0
    (Obs.Counters.read c Obs.Event.Global_steal);
  (match Global_pool.pop_batch ~stats:sh ~shard:0 ~probe:5 g ~level:1 with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a stolen batch");
  Alcotest.(check int) "two pushes" 2
    (Obs.Counters.read c Obs.Event.Global_push);
  Alcotest.(check int) "two pops" 2
    (Obs.Counters.read c Obs.Event.Global_pop);
  Alcotest.(check int) "one steal" 1
    (Obs.Counters.read c Obs.Event.Global_steal)

(* Conservation across shards under real steal races: two producer
   domains push singleton batches to their own shards while a thief whose
   own shard is never fed pops concurrently — every one of its hits is a
   cross-shard steal. After the dust settles, thief loot + a full drain
   must be exactly the pushed set: nothing lost, nothing duplicated. *)
let prop_sharded_conservation =
  QCheck2.Test.make ~name:"sharded conservation under steal races" ~count:10
    QCheck2.Gen.(pair (int_range 8 120) (int_bound 7))
    (fun (n, probe) ->
      let g = Global_pool.create ~max_level:1 in
      let c = Obs.Counters.create ~shards:1 in
      let producer p () =
        for b = 0 to n - 1 do
          Global_pool.push_batch g ~shard:((4 * p) + 1) ~level:1
            [ (p * n) + b ]
        done
      in
      let loot = ref [] in
      let thief () =
        let sh = Obs.Counters.shard c 0 in
        let got = ref 0 in
        while !got < n do
          match
            Global_pool.pop_batch ~stats:sh ~shard:6 ~probe g ~level:1
          with
          | Some b ->
              loot := b @ !loot;
              incr got
          | None -> Domain.cpu_relax ()
        done
      in
      let ds =
        Domain.spawn thief
        :: List.init 2 (fun p -> Domain.spawn (producer p))
      in
      List.iter Domain.join ds;
      let rec drain acc =
        match Global_pool.pop_batch g ~level:1 with
        | Some b -> drain (b @ acc)
        | None -> acc
      in
      let all = drain !loot in
      List.sort compare all = List.init (2 * n) Fun.id
      && Obs.Counters.read c Obs.Event.Global_steal = n
      && Global_pool.approx_batches g = 0)

(* The adaptive epoch-advance cadence (EBR): a countdown of [epoch_freq]
   allocations per advance attempt, with the period doubling on a lost
   CAS. Uncontended the cadence is exact; contended, total attempts stay
   within the allocs/freq budget because the period never shrinks below
   [epoch_freq]. *)
let test_advance_budget_single () =
  let arena = Arena.create ~capacity:4096 in
  let global = Global_pool.create ~max_level:1 in
  let freq = 8 and allocs = 1_000 in
  let r =
    Reclaim.Ebr.create ~arena ~global ~n_threads:1 ~hazards:1
      ~retire_threshold:64 ~epoch_freq:freq
  in
  for _ = 1 to allocs do
    let i = Reclaim.Ebr.alloc r ~tid:0 ~level:1 ~key:0 in
    Reclaim.Ebr.dealloc r ~tid:0 i
  done;
  let s = Reclaim.Ebr.stats r in
  Alcotest.(check int) "exactly allocs/freq advances" (allocs / freq)
    (Obs.Counters.get s Obs.Event.Epoch_advance);
  Alcotest.(check int) "no lost races single-threaded" 0
    (Obs.Counters.get s Obs.Event.Advance_skip)

let test_advance_budget_contended () =
  let arena = Arena.create ~capacity:8192 in
  let global = Global_pool.create ~max_level:1 in
  let freq = 8 and allocs = 600 in
  let r =
    Reclaim.Ebr.create ~arena ~global ~n_threads:2 ~hazards:1
      ~retire_threshold:64 ~epoch_freq:freq
  in
  let worker tid () =
    for _ = 1 to allocs do
      let i = Reclaim.Ebr.alloc r ~tid ~level:1 ~key:0 in
      Reclaim.Ebr.dealloc r ~tid i
    done
  in
  let ds = List.init 2 (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  let s = Reclaim.Ebr.stats r in
  let adv = Obs.Counters.get s Obs.Event.Epoch_advance in
  let skips = Obs.Counters.get s Obs.Event.Advance_skip in
  (* Every attempt (win or lose) consumed at least [freq] allocations of
     countdown, so attempts are bounded by the global budget even though
     the backoff redistributes them between threads. *)
  Alcotest.(check bool) "attempts within allocs/freq budget" true
    (adv + skips <= 2 * allocs / freq);
  Alcotest.(check bool) "the clock still advances" true (adv >= 1)

let () =
  Alcotest.run "pool"
    [
      ( "unit",
        [
          Alcotest.test_case "take/recycle" `Quick test_take_fresh_then_recycle;
          Alcotest.test_case "level classes" `Quick test_level_classes;
          Alcotest.test_case "spill" `Quick test_spill_to_global;
          Alcotest.test_case "redistribution" `Quick test_global_redistribution;
          Alcotest.test_case "global batches" `Quick test_global_pool_batches;
          Alcotest.test_case "put_batch single spill" `Quick
            test_put_batch_single_spill;
          Alcotest.test_case "conservation" `Quick test_conservation;
          Alcotest.test_case "concurrent global" `Quick test_concurrent_global;
          Alcotest.test_case "steal counters" `Quick test_steal_counters;
          Alcotest.test_case "advance budget (single)" `Quick
            test_advance_budget_single;
          Alcotest.test_case "advance budget (contended)" `Quick
            test_advance_budget_contended;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_sharded_conservation ] );
    ]
