(* The VBR Treiber stack: sequential LIFO semantics against a Stack
   model, recycling, and multi-domain push/pop integrity. *)

let setup ?(n_threads = 4) () =
  let arena = Memsim.Arena.create ~capacity:200_000 in
  let global = Memsim.Global_pool.create ~max_level:1 in
  let vbr =
    Vbr_core.Vbr.create_tuned ~retire_threshold:4 ~arena ~global ~n_threads ()
  in
  (arena, vbr, Dstruct.Vbr_stack.create vbr)

let test_lifo () =
  let _, _, s = setup () in
  Alcotest.(check bool) "empty" true (Dstruct.Vbr_stack.is_empty s ~tid:0);
  Alcotest.(check (option int)) "pop empty" None
    (Dstruct.Vbr_stack.pop s ~tid:0);
  List.iter (fun v -> Dstruct.Vbr_stack.push s ~tid:0 v) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "top to bottom" [ 3; 2; 1 ]
    (Dstruct.Vbr_stack.to_list s);
  Alcotest.(check (option int)) "pop 3" (Some 3)
    (Dstruct.Vbr_stack.pop s ~tid:0);
  Dstruct.Vbr_stack.push s ~tid:0 4;
  Alcotest.(check (option int)) "pop 4" (Some 4)
    (Dstruct.Vbr_stack.pop s ~tid:0);
  Alcotest.(check (option int)) "pop 2" (Some 2)
    (Dstruct.Vbr_stack.pop s ~tid:0);
  Alcotest.(check (option int)) "pop 1" (Some 1)
    (Dstruct.Vbr_stack.pop s ~tid:0);
  Alcotest.(check (option int)) "empty again" None
    (Dstruct.Vbr_stack.pop s ~tid:0)

let test_recycling () =
  let arena, vbr, s = setup () in
  for round = 1 to 2_000 do
    Dstruct.Vbr_stack.push s ~tid:0 round;
    Dstruct.Vbr_stack.push s ~tid:0 (-round);
    Alcotest.(check (option int)) "pop newest" (Some (-round))
      (Dstruct.Vbr_stack.pop s ~tid:0);
    Alcotest.(check (option int)) "pop next" (Some round)
      (Dstruct.Vbr_stack.pop s ~tid:0)
  done;
  Alcotest.(check bool) "bounded arena" true
    (Memsim.Arena.allocated arena < 1_000);
  Alcotest.(check bool) "recycled" true
    ((Vbr_core.Vbr.total_stats vbr).Vbr_core.Vbr.recycled > 1_000)

let prop_model =
  QCheck2.Test.make ~name:"random trace matches Stack model" ~count:60
    QCheck2.Gen.(list_size (int_range 20 200) (int_range 0 2))
    (fun ops ->
      let _, _, s = setup () in
      let model = Stack.create () in
      let tick = ref 0 in
      List.for_all
        (fun c ->
          incr tick;
          match c with
          | 0 ->
              Dstruct.Vbr_stack.push s ~tid:0 !tick;
              Stack.push !tick model;
              true
          | 1 ->
              let expected =
                if Stack.is_empty model then None else Some (Stack.pop model)
              in
              Dstruct.Vbr_stack.pop s ~tid:0 = expected
          | _ -> Dstruct.Vbr_stack.is_empty s ~tid:0 = Stack.is_empty model)
        ops
      && Dstruct.Vbr_stack.to_list s = List.of_seq (Stack.to_seq model))

let test_concurrent_no_loss () =
  (* Every pushed value is popped exactly once across all domains. *)
  let n_pushers = 2 and n_poppers = 2 in
  let per_pusher = 30_000 in
  let _, _, s = setup ~n_threads:(n_pushers + n_poppers) () in
  let pushers =
    List.init n_pushers (fun tid ->
        Domain.spawn (fun () ->
            for seq = 1 to per_pusher do
              Dstruct.Vbr_stack.push s ~tid ((tid * 1_000_000) + seq)
            done))
  in
  let popped = Atomic.make 0 in
  let poppers =
    List.init n_poppers (fun i ->
        Domain.spawn (fun () ->
            let tid = n_pushers + i in
            let got = ref [] in
            while Atomic.get popped < n_pushers * per_pusher do
              match Dstruct.Vbr_stack.pop s ~tid with
              | Some v ->
                  got := v :: !got;
                  Atomic.incr popped
              | None -> Domain.cpu_relax ()
            done;
            !got))
  in
  List.iter Domain.join pushers;
  let all = List.concat_map Domain.join poppers in
  Alcotest.(check int) "nothing lost" (n_pushers * per_pusher)
    (List.length all);
  Alcotest.(check int) "nothing duplicated" (List.length all)
    (List.length (List.sort_uniq compare all))

let () =
  Alcotest.run "stack"
    [
      ( "vbr-stack",
        [
          Alcotest.test_case "lifo" `Quick test_lifo;
          Alcotest.test_case "recycling" `Quick test_recycling;
          QCheck_alcotest.to_alcotest prop_model;
          Alcotest.test_case "concurrent no-loss no-dup" `Slow
            test_concurrent_no_loss;
        ] );
    ]
