(* vbr-lint test suite. Drives the same [Lint] library that backs
   bin/vbr_lint.exe over the fixture tree in lint_fixtures/ — one
   deliberately violating snippet and one clean snippet per rule — and
   asserts exact (rule, file, line) matches. Finally asserts the shipped
   tree is finding-free by checking the @lint report built by the root
   dune rule (a dep of this test). *)

let fixture_findings = lazy (Lint.Driver.run ~root:"lint_fixtures" ())

let pp_findings fs =
  String.concat "\n"
    (List.map
       (fun (f : Lint_core.Finding.t) ->
         Printf.sprintf "%s:%d [%s]" f.file f.line f.rule)
       fs)

(* The bad fixture at (file, line) must be flagged with exactly [rule]. *)
let check_flagged ~rule ~file ~line () =
  let fs = Lazy.force fixture_findings in
  let hit =
    List.exists
      (fun (f : Lint_core.Finding.t) ->
        f.rule = rule && f.file = file && f.line = line)
      fs
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s flagged at %s:%d (got:\n%s)" rule file line
       (pp_findings fs))
    true hit

(* The clean fixture must produce no finding at all. *)
let check_clean ~file () =
  let fs = Lazy.force fixture_findings in
  let offending =
    List.filter (fun (f : Lint_core.Finding.t) -> f.file = file) fs
  in
  Alcotest.(check string)
    (Printf.sprintf "%s clean" file)
    "" (pp_findings offending)

let test_fixture_count () =
  (* One finding per bad fixture and nothing else: catches both missed
     violations and over-eager rules drowning the report in noise. *)
  Alcotest.(check int) "total fixture findings" 7
    (List.length (Lazy.force fixture_findings))

let test_rule_registry () =
  Alcotest.(check (list string))
    "registry lists the documented rules"
    [
      "raw-atomic";
      "checkpoint-scope";
      "retire-discipline";
      "guarded-deref";
      "determinism";
      "mli-coverage";
    ]
    (Lint.Registry.names ())

let test_tree_clean () =
  (* lint_report.json is the target of the root @lint rule and a declared
     dep of this test: dune already failed the build if the tree had
     findings, so here we just pin the artifact's shape. *)
  let ic = open_in "../lint_report.json" in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  let has_sub sub =
    let ls = String.length sub and lb = String.length body in
    let rec go i = i + ls <= lb && (String.sub body i ls = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report says zero findings" true
    (has_sub {|"finding_count":0|});
  Alcotest.(check bool) "report is vbr-lint's" true (has_sub {|"tool":"vbr-lint"|})

let violation_cases =
  [
    ("raw-atomic", "lib/dstruct/vbr_fx_raw.ml", 5);
    ("checkpoint-scope", "lib/dstruct/vbr_fx_ckpt.ml", 5);
    ("retire-discipline", "lib/dstruct/fx_guarded_retire.ml", 6);
    ("retire-discipline", "lib/dstruct/fx_guarded_retire.ml", 8);
    ("guarded-deref", "lib/dstruct/fx_guarded.ml", 5);
    ("determinism", "bench/fx_time.ml", 4);
    ("mli-coverage", "lib/fx_nomli/orphan.ml", 1);
  ]

let clean_cases =
  [
    (* Suppression machinery: same violation as vbr_fx_raw.ml, silenced by
       the binding attribute. *)
    "lib/dstruct/vbr_fx_raw_ok.ml";
    (* Padded exemption: Atomic ops routed through Padded.cell are plane
       bookkeeping, not node words — clean with no annotation. *)
    "lib/dstruct/vbr_fx_raw_padded.ml";
    (* Timed scope: the wall clock is legal in lib/harness. *)
    "lib/harness/fx_clock_ok.ml";
    (* Signature carrier: *_intf.ml is exempt from mli-coverage. *)
    "lib/fx_nomli/note_intf.ml";
  ]

let () =
  Alcotest.run "lint"
    [
      ( "violations",
        List.map
          (fun (rule, file, line) ->
            Alcotest.test_case
              (Printf.sprintf "%s %s:%d" rule file line)
              `Quick
              (check_flagged ~rule ~file ~line))
          violation_cases );
      ( "clean",
        List.map
          (fun file ->
            Alcotest.test_case file `Quick (check_clean ~file))
          clean_cases );
      ( "meta",
        [
          Alcotest.test_case "finding count" `Quick test_fixture_count;
          Alcotest.test_case "rule registry" `Quick test_rule_registry;
          Alcotest.test_case "shipped tree clean" `Quick test_tree_clean;
        ] );
    ]
