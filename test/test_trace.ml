(* Lifecycle tracing (Obs.Trace) and the offline invariant checker
   (Lint.Trace_check): ring overwrite semantics, CSV roundtrip, zero
   violations on real traced stress runs under every scheme, and one
   injected-fault fixture per checker rule. *)

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Ring semantics.                                                     *)
(* ------------------------------------------------------------------ *)

let test_ring_overwrite () =
  let t = Obs.Trace.create ~capacity:8 ~n_threads:1 ~scheme:"TEST" () in
  let r = Obs.Trace.ring t ~tid:0 in
  for i = 0 to 19 do
    Obs.Trace.emit r Obs.Trace.Alloc ~slot:(i + 1) ~v1:i ~v2:0 ~epoch:0
  done;
  check_int "dropped counts overwritten rows" 12 (Obs.Trace.dropped t);
  let d = Obs.Trace.dump t in
  check_int "dump keeps capacity rows" 8 (Array.length d.Obs.Trace.d_events);
  check_int "d_dropped" 12 d.Obs.Trace.d_dropped;
  (* The survivors are the newest 8 emissions, in emission order. *)
  Array.iteri
    (fun j e ->
      check_int "surviving seq" (12 + j) e.Obs.Trace.e_seq;
      check_int "surviving slot" (12 + j + 1) e.Obs.Trace.e_slot)
    d.Obs.Trace.d_events

let test_unattached_records_nothing () =
  (* A trace that is never attached to a backend stays empty even while
     the instance runs a workload (every hook is a match on None). *)
  let t = Obs.Trace.create ~capacity:64 ~n_threads:1 ~scheme:"EBR" () in
  let inst =
    Harness.Registry.make ~structure:"list" ~scheme:"EBR" ~n_threads:1
      ~range:64 ~capacity:10_000 ()
  in
  for k = 0 to 63 do
    ignore (inst.Harness.Registry.insert ~tid:0 k);
    ignore (inst.Harness.Registry.delete ~tid:0 k)
  done;
  let d = Obs.Trace.dump t in
  check_int "no events" 0 (Array.length d.Obs.Trace.d_events);
  check_int "no drops" 0 d.Obs.Trace.d_dropped

let test_kind_roundtrip () =
  List.iter
    (fun k ->
      match Obs.Trace.kind_of_string (Obs.Trace.kind_to_string k) with
      | Some k' -> Alcotest.(check bool) "kind roundtrip" true (k = k')
      | None -> Alcotest.fail "kind_of_string failed on kind_to_string output")
    Obs.Trace.all_kinds;
  Alcotest.(check bool)
    "unknown kind" true
    (Obs.Trace.kind_of_string "no-such-kind" = None)

let test_csv_roundtrip () =
  let t = Obs.Trace.create ~capacity:16 ~n_threads:2 ~scheme:"VBR" () in
  let r0 = Obs.Trace.ring t ~tid:0 and r1 = Obs.Trace.ring t ~tid:1 in
  Obs.Trace.emit r0 Obs.Trace.Alloc ~slot:3 ~v1:1 ~v2:0 ~epoch:1;
  Obs.Trace.emit r1 Obs.Trace.Checkpoint ~slot:0 ~v1:0 ~v2:0 ~epoch:1;
  Obs.Trace.emit r0 Obs.Trace.Retire ~slot:3 ~v1:1 ~v2:2 ~epoch:2;
  Obs.Trace.emit r1 Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:(-1);
  let d = Obs.Trace.dump t in
  let path = Filename.temp_file "trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.write_csv path d;
      let d' = Obs.Trace.load_csv path in
      Alcotest.(check string) "scheme" d.Obs.Trace.d_scheme d'.Obs.Trace.d_scheme;
      check_int "threads" d.Obs.Trace.d_threads d'.Obs.Trace.d_threads;
      check_int "capacity" d.Obs.Trace.d_capacity d'.Obs.Trace.d_capacity;
      check_int "dropped" d.Obs.Trace.d_dropped d'.Obs.Trace.d_dropped;
      Alcotest.(check bool)
        "events identical" true
        (d.Obs.Trace.d_events = d'.Obs.Trace.d_events))

(* ------------------------------------------------------------------ *)
(* Real runs: every scheme's trace validates, untruncated.              *)
(* ------------------------------------------------------------------ *)

let traced_stress scheme () =
  let threads = 4 and range = 512 and total_ops = 4_000 in
  let trace =
    Obs.Trace.create ~capacity:(1 lsl 15) ~n_threads:threads ~scheme ()
  in
  let make () =
    Harness.Registry.make ~structure:"hash" ~scheme ~n_threads:threads ~range
      ~capacity:60_000 ~trace ()
  in
  let _mops, _inst =
    Harness.Throughput.run_ops ~make ~profile:Harness.Workload.update_intensive
      ~threads ~range ~total_ops ()
  in
  let d = Obs.Trace.dump trace in
  Alcotest.(check bool)
    "trace non-empty" true
    (Array.length d.Obs.Trace.d_events > 0);
  check_int "untruncated" 0 d.Obs.Trace.d_dropped;
  let { Lint.Trace_check.findings; truncated } =
    Lint.Trace_check.check ~file:(scheme ^ ".csv") d
  in
  Alcotest.(check bool) "not truncated" false truncated;
  match findings with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%d violation(s) on a clean %s run, first: %s"
        (List.length findings) scheme
        (Lint_core.Finding.to_string f)

(* ------------------------------------------------------------------ *)
(* Injected faults: each rule fires on its fixture.                     *)
(* ------------------------------------------------------------------ *)

let ev ~tid ~seq kind ~slot ~v1 ~v2 ~epoch =
  {
    Obs.Trace.e_tid = tid;
    e_seq = seq;
    e_t_ns = seq * 10;
    e_kind = kind;
    e_slot = slot;
    e_v1 = v1;
    e_v2 = v2;
    e_epoch = epoch;
  }

let mk_dump ?(dropped = 0) events =
  {
    Obs.Trace.d_scheme = "TEST";
    d_threads = 4;
    d_capacity = 1024;
    d_dropped = dropped;
    d_events = Array.of_list events;
  }

let rules fs = List.map (fun f -> f.Lint_core.Finding.rule) fs

let expect_rule name fixture rule ~substring =
  let { Lint.Trace_check.findings; _ } =
    Lint.Trace_check.check ~file:"fixture.csv" (mk_dump fixture)
  in
  match
    List.find_opt
      (fun f ->
        f.Lint_core.Finding.rule = rule
        &&
        let m = f.Lint_core.Finding.message and s = substring in
        let lm = String.length m and ls = String.length s in
        let rec at i = i + ls <= lm && (String.sub m i ls = s || at (i + 1)) in
        at 0)
      findings
  with
  | Some _ -> ()
  | None ->
      Alcotest.failf "%s: no [%s] finding mentioning %S (got: %s)" name rule
        substring
        (String.concat "; " (rules findings))

let expect_clean name fixture =
  let { Lint.Trace_check.findings; _ } =
    Lint.Trace_check.check ~file:"fixture.csv" (mk_dump fixture)
  in
  if findings <> [] then
    Alcotest.failf "%s: expected clean, got %s" name
      (String.concat "; " (List.map Lint_core.Finding.to_string findings))

let test_double_retire () =
  expect_rule "double retire"
    [
      ev ~tid:0 ~seq:0 Obs.Trace.Alloc ~slot:7 ~v1:1 ~v2:0 ~epoch:0;
      ev ~tid:0 ~seq:1 Obs.Trace.Retire ~slot:7 ~v1:1 ~v2:2 ~epoch:0;
      ev ~tid:1 ~seq:2 Obs.Trace.Retire ~slot:7 ~v1:1 ~v2:2 ~epoch:0;
    ]
    "trace-lifecycle" ~substring:"double retire";
  (* The legitimate cycle is clean. *)
  expect_clean "retire cycle"
    [
      ev ~tid:0 ~seq:0 Obs.Trace.Alloc ~slot:7 ~v1:1 ~v2:0 ~epoch:0;
      ev ~tid:0 ~seq:1 Obs.Trace.Retire ~slot:7 ~v1:1 ~v2:2 ~epoch:0;
      ev ~tid:0 ~seq:2 Obs.Trace.Reclaim ~slot:7 ~v1:1 ~v2:2 ~epoch:0;
      ev ~tid:0 ~seq:3 Obs.Trace.Reuse ~slot:7 ~v1:0 ~v2:0 ~epoch:0;
      ev ~tid:0 ~seq:4 Obs.Trace.Alloc ~slot:7 ~v1:3 ~v2:0 ~epoch:0;
    ]

let test_reclaim_before_retire () =
  expect_rule "reclaim before retire"
    [
      ev ~tid:0 ~seq:0 Obs.Trace.Alloc ~slot:9 ~v1:1 ~v2:0 ~epoch:0;
      ev ~tid:0 ~seq:1 Obs.Trace.Reclaim ~slot:9 ~v1:1 ~v2:2 ~epoch:0;
    ]
    "trace-lifecycle" ~substring:"before its retire"

let test_guarded_reclaim () =
  (* Index guard (HP-style): thread 1 protects slot 5 before thread 0
     retires it; reclaiming while the guard is up is the use-after-free
     HP scans exist to prevent. *)
  let acquire_then_reclaim release =
    [
      ev ~tid:0 ~seq:0 Obs.Trace.Alloc ~slot:5 ~v1:0 ~v2:0 ~epoch:0;
      ev ~tid:1 ~seq:1 Obs.Trace.Guard_acquire ~slot:5 ~v1:0 ~v2:0 ~epoch:2;
    ]
    @ (if release then
         [ ev ~tid:1 ~seq:2 Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:2 ]
       else [])
    @ [
        ev ~tid:0 ~seq:3 Obs.Trace.Retire ~slot:5 ~v1:0 ~v2:0 ~epoch:0;
        ev ~tid:0 ~seq:4 Obs.Trace.Reclaim ~slot:5 ~v1:0 ~v2:0 ~epoch:0;
      ]
  in
  expect_rule "guarded reclaim (index)"
    (acquire_then_reclaim false)
    "trace-guard-reclaim" ~substring:"still covers it";
  expect_clean "released guard" (acquire_then_reclaim true);
  (* A guard published after the retire does not count: validation would
     have caught the stale pointer, which is exactly what the schemes'
     protect loops re-check. *)
  expect_clean "late guard"
    [
      ev ~tid:0 ~seq:0 Obs.Trace.Alloc ~slot:5 ~v1:0 ~v2:0 ~epoch:0;
      ev ~tid:0 ~seq:1 Obs.Trace.Retire ~slot:5 ~v1:0 ~v2:0 ~epoch:0;
      ev ~tid:1 ~seq:2 Obs.Trace.Guard_acquire ~slot:5 ~v1:0 ~v2:0 ~epoch:2;
      ev ~tid:0 ~seq:3 Obs.Trace.Reclaim ~slot:5 ~v1:0 ~v2:0 ~epoch:0;
    ];
  (* Interval guard (EBR/HE/IBR-style): reservation [5, +inf) overlaps a
     node with lifetime [6, 8]. *)
  expect_rule "guarded reclaim (interval)"
    [
      ev ~tid:0 ~seq:0 Obs.Trace.Alloc ~slot:7 ~v1:6 ~v2:0 ~epoch:0;
      ev ~tid:1 ~seq:1 Obs.Trace.Guard_acquire ~slot:0 ~v1:5 ~v2:(-1) ~epoch:0;
      ev ~tid:0 ~seq:2 Obs.Trace.Retire ~slot:7 ~v1:6 ~v2:8 ~epoch:0;
      ev ~tid:0 ~seq:3 Obs.Trace.Reclaim ~slot:7 ~v1:6 ~v2:8 ~epoch:0;
    ]
    "trace-guard-reclaim" ~substring:"still covers it";
  (* A disjoint reservation is clean: [10, +inf) cannot pin [6, 8]. *)
  expect_clean "disjoint interval"
    [
      ev ~tid:0 ~seq:0 Obs.Trace.Alloc ~slot:7 ~v1:6 ~v2:0 ~epoch:0;
      ev ~tid:1 ~seq:1 Obs.Trace.Guard_acquire ~slot:0 ~v1:10 ~v2:(-1) ~epoch:0;
      ev ~tid:0 ~seq:2 Obs.Trace.Retire ~slot:7 ~v1:6 ~v2:8 ~epoch:0;
      ev ~tid:0 ~seq:3 Obs.Trace.Reclaim ~slot:7 ~v1:6 ~v2:8 ~epoch:0;
    ]

let test_epoch_rules () =
  expect_rule "epoch went backwards"
    [
      ev ~tid:0 ~seq:0 Obs.Trace.Checkpoint ~slot:0 ~v1:0 ~v2:0 ~epoch:5;
      ev ~tid:0 ~seq:1 Obs.Trace.Checkpoint ~slot:0 ~v1:0 ~v2:0 ~epoch:3;
    ]
    "trace-epoch-monotonic" ~substring:"backwards";
  (* Per thread: another thread at a lower epoch is not a violation. *)
  expect_clean "cross-thread epochs"
    [
      ev ~tid:0 ~seq:0 Obs.Trace.Checkpoint ~slot:0 ~v1:0 ~v2:0 ~epoch:5;
      ev ~tid:1 ~seq:1 Obs.Trace.Checkpoint ~slot:0 ~v1:0 ~v2:0 ~epoch:3;
    ];
  expect_rule "non-unit advance"
    [ ev ~tid:0 ~seq:0 Obs.Trace.Epoch_advance ~slot:0 ~v1:4 ~v2:6 ~epoch:6 ]
    "trace-epoch-advance" ~substring:"not one tick";
  expect_rule "duplicate advance"
    [
      ev ~tid:0 ~seq:0 Obs.Trace.Epoch_advance ~slot:0 ~v1:4 ~v2:5 ~epoch:5;
      ev ~tid:1 ~seq:1 Obs.Trace.Epoch_advance ~slot:0 ~v1:4 ~v2:5 ~epoch:5;
    ]
    "trace-epoch-advance" ~substring:"twice"

let test_rollback_scope () =
  expect_rule "rollback without checkpoint"
    [ ev ~tid:0 ~seq:0 Obs.Trace.Rollback ~slot:0 ~v1:1 ~v2:2 ~epoch:2 ]
    "trace-rollback-scope" ~substring:"without an armed checkpoint";
  expect_clean "rollback inside checkpoint"
    [
      ev ~tid:0 ~seq:0 Obs.Trace.Checkpoint ~slot:0 ~v1:0 ~v2:0 ~epoch:1;
      ev ~tid:0 ~seq:1 Obs.Trace.Rollback ~slot:0 ~v1:1 ~v2:2 ~epoch:2;
    ]

let test_trace_order () =
  expect_rule "seq inversion"
    [
      ev ~tid:0 ~seq:5 Obs.Trace.Checkpoint ~slot:0 ~v1:0 ~v2:0 ~epoch:1;
      ev ~tid:1 ~seq:5 Obs.Trace.Checkpoint ~slot:0 ~v1:0 ~v2:0 ~epoch:1;
    ]
    "trace-order" ~substring:"does not increase"

let test_truncation_policy () =
  (* A truncated trace skips the lifecycle/guard/rollback rules (their
     pre-history is gone) but keeps the epoch rules. *)
  let fixture =
    [
      ev ~tid:0 ~seq:0 Obs.Trace.Retire ~slot:7 ~v1:1 ~v2:2 ~epoch:0;
      ev ~tid:1 ~seq:1 Obs.Trace.Retire ~slot:7 ~v1:1 ~v2:2 ~epoch:0;
      ev ~tid:0 ~seq:2 Obs.Trace.Epoch_advance ~slot:0 ~v1:4 ~v2:6 ~epoch:6;
    ]
  in
  let { Lint.Trace_check.findings; truncated } =
    Lint.Trace_check.check ~file:"fixture.csv" (mk_dump ~dropped:3 fixture)
  in
  Alcotest.(check bool) "flagged truncated" true truncated;
  Alcotest.(check (list string))
    "only epoch rules ran" [ "trace-epoch-advance" ] (rules findings);
  (* The same events untruncated flag the double retire too. *)
  let { Lint.Trace_check.findings; truncated } =
    Lint.Trace_check.check ~file:"fixture.csv" (mk_dump fixture)
  in
  Alcotest.(check bool) "not truncated" false truncated;
  Alcotest.(check (list string))
    "both rules ran"
    [ "trace-epoch-advance"; "trace-lifecycle" ]
    (rules findings)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "overwrite at capacity" `Quick test_ring_overwrite;
          Alcotest.test_case "unattached records nothing" `Quick
            test_unattached_records_nothing;
          Alcotest.test_case "kind roundtrip" `Quick test_kind_roundtrip;
          Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
        ] );
      ( "clean runs",
        List.map
          (fun scheme ->
            Alcotest.test_case scheme `Quick (traced_stress scheme))
          Harness.Registry.schemes );
      ( "checker",
        [
          Alcotest.test_case "double retire" `Quick test_double_retire;
          Alcotest.test_case "reclaim before retire" `Quick
            test_reclaim_before_retire;
          Alcotest.test_case "guarded reclaim" `Quick test_guarded_reclaim;
          Alcotest.test_case "epoch rules" `Quick test_epoch_rules;
          Alcotest.test_case "rollback scope" `Quick test_rollback_scope;
          Alcotest.test_case "trace order" `Quick test_trace_order;
          Alcotest.test_case "truncation policy" `Quick test_truncation_policy;
        ] );
    ]
