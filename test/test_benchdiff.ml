(* The perf-ratchet library behind bin/vbr_benchdiff.exe: the Sink-subset
   JSON reader, per-point panel comparison, and threshold resolution.
   The injected-regression case is the gate's reason to exist — a 20%
   throughput drop must fail at the default threshold. *)

module Json_read = Benchdiff.Json_read

let panel ?(name = "fig2b") pts =
  Obs.Sink.Obj
    [
      ("panel", Obs.Sink.String name);
      ( "points",
        Obs.Sink.List
          (List.map
             (fun (scheme, threads, mops) ->
               Obs.Sink.Obj
                 [
                   ("scheme", Obs.Sink.String scheme);
                   ("threads", Obs.Sink.Int threads);
                   ("mops", Obs.Sink.Float mops);
                 ])
             pts) );
    ]

let baseline_pts =
  [ ("VBR", 1, 0.08); ("VBR", 8, 0.09); ("EBR", 1, 0.08); ("EBR", 8, 0.084) ]

let scale f pts = List.map (fun (s, t, m) -> (s, t, m *. f)) pts

(* ---------- Json_read ---------- *)

let test_roundtrip () =
  (* Whatever Sink writes, the reader must reproduce structurally —
     including escapes, nested containers, negative ints and floats. *)
  let doc =
    Obs.Sink.Obj
      [
        ("s", Obs.Sink.String "a\"b\\c\nd\te");
        ("i", Obs.Sink.Int (-42));
        ("f", Obs.Sink.Float 0.125);
        ("b", Obs.Sink.Bool true);
        ("n", Obs.Sink.Null);
        ( "l",
          Obs.Sink.List
            [ Obs.Sink.Int 1; Obs.Sink.Obj []; Obs.Sink.List [] ] );
        ("panel", panel baseline_pts);
      ]
  in
  let path = Filename.temp_file "benchdiff_rt" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Sink.write_file path doc;
      match Json_read.of_file path with
      | Ok got ->
          Alcotest.(check bool) "structurally equal" true (got = doc)
      | Error e -> Alcotest.fail ("parse failed: " ^ e))

let test_parse_errors () =
  let bad s =
    match Json_read.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "nul";
  bad "{} trailing";
  bad "\"unterminated"

(* ---------- compare_json ---------- *)

let compare_exn ~threshold ~baseline ~candidate =
  match Benchdiff.compare_json ~threshold ~baseline ~candidate with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_identical_pass () =
  let r =
    compare_exn ~threshold:0.15 ~baseline:(panel baseline_pts)
      ~candidate:(panel baseline_pts)
  in
  Alcotest.(check int) "all points shared" (List.length baseline_pts)
    (List.length r.Benchdiff.r_deltas);
  Alcotest.(check int) "no regressions" 0
    (List.length r.Benchdiff.r_regressions)

let test_injected_regression_fails () =
  (* The acceptance case: a uniform 20% drop trips the default 15%
     threshold on every point, and the worst ratio sorts first. *)
  let r =
    compare_exn ~threshold:Benchdiff.default_threshold
      ~baseline:(panel baseline_pts)
      ~candidate:(panel (scale 0.8 baseline_pts))
  in
  Alcotest.(check int) "every point regressed" (List.length baseline_pts)
    (List.length r.Benchdiff.r_regressions);
  (match r.Benchdiff.r_deltas with
  | d :: _ ->
      Alcotest.(check bool) "ratio is 0.8" true
        (Float.abs (d.Benchdiff.d_ratio -. 0.8) < 1e-9)
  | [] -> Alcotest.fail "no deltas");
  (* The same drop passes a looser gate. *)
  let loose =
    compare_exn ~threshold:0.25 ~baseline:(panel baseline_pts)
      ~candidate:(panel (scale 0.8 baseline_pts))
  in
  Alcotest.(check int) "passes at 25%" 0
    (List.length loose.Benchdiff.r_regressions)

let test_single_point_regression () =
  (* Only the slowed point fails; improvements elsewhere don't mask it. *)
  let candidate =
    List.map
      (fun (s, t, m) ->
        if s = "VBR" && t = 8 then (s, t, m *. 0.5) else (s, t, m *. 1.5))
      baseline_pts
  in
  let r =
    compare_exn ~threshold:0.15 ~baseline:(panel baseline_pts)
      ~candidate:(panel candidate)
  in
  match r.Benchdiff.r_regressions with
  | [ d ] ->
      Alcotest.(check string) "the slowed scheme" "VBR"
        d.Benchdiff.d_point.Benchdiff.p_scheme;
      Alcotest.(check int) "the slowed thread count" 8
        d.Benchdiff.d_point.Benchdiff.p_threads
  | rs ->
      Alcotest.fail (Printf.sprintf "expected 1 regression, got %d"
                       (List.length rs))

let test_unmatched_points_ignored () =
  (* Schemes appearing on only one side are reported but never fail. *)
  let r =
    compare_exn ~threshold:0.15
      ~baseline:(panel (("HP", 8, 0.02) :: baseline_pts))
      ~candidate:(panel (("HE", 8, 0.02) :: scale 0.9 baseline_pts))
  in
  Alcotest.(check int) "shared points only" (List.length baseline_pts)
    (List.length r.Benchdiff.r_deltas);
  Alcotest.(check int) "baseline-only reported" 1
    (List.length r.Benchdiff.r_only_baseline);
  Alcotest.(check int) "candidate-only reported" 1
    (List.length r.Benchdiff.r_only_candidate);
  Alcotest.(check int) "a 10% dip is not a regression" 0
    (List.length r.Benchdiff.r_regressions)

let test_panel_mismatch () =
  match
    Benchdiff.compare_json ~threshold:0.15
      ~baseline:(panel ~name:"fig2b" baseline_pts)
      ~candidate:(panel ~name:"queue" baseline_pts)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "panel mismatch accepted"

(* ---------- net-panel timelines ---------- *)

(* A net point: "clients" instead of "threads", no "mops", an interval
   timeline of cumulative ops — the shape vbr-loadgen writes. *)
let net_point ?(scheme = "VBR") ?timeline ?wire_mops ~clients () =
  let fields =
    [ ("scheme", Obs.Sink.String scheme); ("clients", Obs.Sink.Int clients) ]
  in
  let fields =
    match wire_mops with
    | None -> fields
    | Some m -> fields @ [ ("wire_mops", Obs.Sink.Float m) ]
  in
  let fields =
    match timeline with
    | None -> fields
    | Some samples ->
        fields
        @ [
            ( "timeline",
              Obs.Sink.List
                (List.map
                   (fun (t_ms, ops) ->
                     Obs.Sink.Obj
                       [
                         ("t_ms", Obs.Sink.Float t_ms);
                         ("ops", Obs.Sink.Int ops);
                       ])
                   samples) );
          ]
  in
  Obs.Sink.Obj fields

let net_panel pts =
  Obs.Sink.Obj [ ("panel", Obs.Sink.String "net"); ("points", Obs.Sink.List pts) ]

(* 11 samples, 1 op/ms in steady state but a slow first and last stretch:
   the trimmed window must rate only the steady middle. *)
let ramped_timeline rate =
  List.init 11 (fun i ->
      let t = float_of_int i *. 1000.0 in
      let ops =
        if i = 0 then 0
        else if i <= 2 then i * 100 (* warmup: slow *)
        else 200 + int_of_float (float_of_int (i - 2) *. rate)
      in
      (t, ops))

let test_timeline_steady_state () =
  let p = net_point ~clients:4 ~timeline:(ramped_timeline 1000.0) () in
  match Benchdiff.points_of_json (net_panel [ p ]) with
  | Error e -> Alcotest.fail e
  | Ok (panel, pts) -> (
      Alcotest.(check string) "panel" "net" panel;
      match pts with
      | [ pt ] ->
          Alcotest.(check string) "scheme" "VBR" pt.Benchdiff.p_scheme;
          Alcotest.(check int) "clients stand in for threads" 4
            pt.Benchdiff.p_threads;
          (* window [2s, 9s]: 7000 ops over 7 s = 1000 ops/s = 1e-3 Mops *)
          Alcotest.(check bool)
            (Printf.sprintf "steady-state rate (%g)" pt.Benchdiff.p_mops)
            true
            (Float.abs (pt.Benchdiff.p_mops -. 1e-3) < 1e-9)
      | _ -> Alcotest.fail "expected one point")

let test_timeline_regression_gate () =
  let base = net_point ~clients:4 ~timeline:(ramped_timeline 1000.0) () in
  let slow = net_point ~clients:4 ~timeline:(ramped_timeline 700.0) () in
  match
    Benchdiff.compare_json ~threshold:0.15 ~baseline:(net_panel [ base ])
      ~candidate:(net_panel [ slow ])
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "a 30% steady-state drop is a regression" 1
        (List.length r.Benchdiff.r_regressions)

let test_timeline_fallbacks () =
  (* too few samples -> wire_mops; no timeline at all -> wire_mops;
     neither -> no point *)
  let short =
    net_point ~clients:2
      ~timeline:[ (0.0, 0); (1000.0, 50) ]
      ~wire_mops:0.5 ()
  in
  let bare = net_point ~clients:2 ~wire_mops:0.25 () in
  let useless = net_point ~clients:2 () in
  match Benchdiff.points_of_json (net_panel [ short; bare; useless ]) with
  | Error e -> Alcotest.fail e
  | Ok (_, pts) ->
      Alcotest.(check int) "unusable point dropped" 2 (List.length pts);
      Alcotest.(check (list (float 1e-9)))
        "fallback to wire_mops" [ 0.5; 0.25 ]
        (List.map (fun p -> p.Benchdiff.p_mops) pts)

(* ---------- threshold resolution ---------- *)

let test_threshold_resolution () =
  let check_f name expect got =
    Alcotest.(check bool) name true (Float.abs (expect -. got) < 1e-9)
  in
  Unix.putenv "BENCH_DIFF_THRESHOLD" "0.30";
  check_f "env var honoured" 0.30 (Benchdiff.resolve_threshold None);
  check_f "flag beats env" 0.05 (Benchdiff.resolve_threshold (Some 0.05));
  Unix.putenv "BENCH_DIFF_THRESHOLD" "bogus";
  check_f "bad env falls back to default" Benchdiff.default_threshold
    (Benchdiff.resolve_threshold None);
  Unix.putenv "BENCH_DIFF_THRESHOLD" "1.5";
  check_f "out-of-range env falls back" Benchdiff.default_threshold
    (Benchdiff.resolve_threshold None)

let () =
  Alcotest.run "benchdiff"
    [
      ( "json_read",
        [
          Alcotest.test_case "sink round-trip" `Quick test_roundtrip;
          Alcotest.test_case "malformed inputs" `Quick test_parse_errors;
        ] );
      ( "compare",
        [
          Alcotest.test_case "identical panels pass" `Quick
            test_identical_pass;
          Alcotest.test_case "injected 20% regression fails" `Quick
            test_injected_regression_fails;
          Alcotest.test_case "single-point regression" `Quick
            test_single_point_regression;
          Alcotest.test_case "unmatched points ignored" `Quick
            test_unmatched_points_ignored;
          Alcotest.test_case "panel mismatch" `Quick test_panel_mismatch;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "steady-state window" `Quick
            test_timeline_steady_state;
          Alcotest.test_case "steady-state regression gates" `Quick
            test_timeline_regression_gate;
          Alcotest.test_case "fallback keys" `Quick test_timeline_fallbacks;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "resolution order" `Quick
            test_threshold_resolution;
        ] );
    ]
