(* Sequential correctness of every skiplist variant against a Set model,
   plus skiplist-specific structural checks (tower ordering at every
   level, level histogram sanity). *)

module Iset = Set.Make (Int)

type handle = {
  hname : string;
  insert : int -> bool;
  delete : int -> bool;
  contains : int -> bool;
  to_list : unit -> int list;
  check_levels : unit -> unit;  (* every level sorted and a sublist of bottom *)
}

let max_level = Dstruct.Skiplist.max_level

(* Walk level [l] and return its keys (unmarked nodes only). *)
let level_keys arena head l =
  let open Memsim in
  let rec go acc i =
    let n = Arena.get arena i in
    if n.Node.key = Dstruct.Set_intf.max_key_bound then List.rev acc
    else begin
      let w = Atomic.get n.Node.next.(min l (n.Node.level - 1)) in
      let w0 = Atomic.get (Node.next0 n) in
      let acc =
        if i <> head && not (Packed.is_marked w0) then n.Node.key :: acc
        else acc
      in
      go acc (Packed.index w)
    end
  in
  (* At level l only nodes with level > l are linked; walk from head's
     level-l pointer. *)
  let rec walk acc i =
    let n = Arena.get arena i in
    if n.Node.key = Dstruct.Set_intf.max_key_bound then List.rev acc
    else begin
      let acc = if i <> head then n.Node.key :: acc else acc in
      walk acc (Packed.index (Atomic.get n.Node.next.(l)))
    end
  in
  ignore go;
  walk [] head

let check_levels_generic arena head () =
  let bottom = level_keys arena head 0 in
  let bottom_set = Iset.of_list bottom in
  for l = 1 to max_level - 1 do
    let keys = level_keys arena head l in
    let sorted = List.sort compare keys in
    if keys <> sorted then
      Alcotest.failf "level %d not sorted: %s" l
        (String.concat "," (List.map string_of_int keys));
    List.iter
      (fun k ->
        if not (Iset.mem k bottom_set) then
          Alcotest.failf "level %d key %d missing from bottom level" l k)
      keys
  done

let make_conservative (module R : Reclaim.Smr_intf.S) () =
  let arena = Memsim.Arena.create ~capacity:200_000 in
  let global = Memsim.Global_pool.create ~max_level in
  let r =
    R.create ~arena ~global ~n_threads:2
      ~hazards:((2 * max_level) + 2)
      ~retire_threshold:8 ~epoch_freq:4
  in
  let module S = Dstruct.Skiplist.Make (R) in
  let s = S.create r ~arena in
  let head =
    (* reach in via to_list is enough for keys; for structure checks we
       need the head index, which create put at slot 2 (tail is 1). *)
    2
  in
  {
    hname = S.name;
    insert = (fun k -> S.insert s ~tid:0 k);
    delete = (fun k -> S.delete s ~tid:0 k);
    contains = (fun k -> S.contains s ~tid:0 k);
    to_list = (fun () -> S.to_list s);
    check_levels = check_levels_generic arena head;
  }

let make_vbr () =
  let arena = Memsim.Arena.create ~capacity:200_000 in
  let global = Memsim.Global_pool.create ~max_level in
  let vbr =
    Vbr_core.Vbr.create_tuned ~retire_threshold:4 ~arena ~global ~n_threads:2 ()
  in
  let s = Dstruct.Vbr_skiplist.create vbr in
  let head = 2 in
  {
    hname = Dstruct.Vbr_skiplist.name;
    insert = (fun k -> Dstruct.Vbr_skiplist.insert s ~tid:0 k);
    delete = (fun k -> Dstruct.Vbr_skiplist.delete s ~tid:0 k);
    contains = (fun k -> Dstruct.Vbr_skiplist.contains s ~tid:0 k);
    to_list = (fun () -> Dstruct.Vbr_skiplist.to_list s);
    check_levels = check_levels_generic arena head;
  }

let variants =
  [
    ("NoRecl", make_conservative (module Reclaim.No_recl));
    ("EBR", make_conservative (module Reclaim.Ebr));
    ("HP", make_conservative (module Reclaim.Hp));
    ("HE", make_conservative (module Reclaim.He));
    ("IBR", make_conservative (module Reclaim.Ibr));
    ("VBR", make_vbr);
  ]

let test_basic mk () =
  let h = mk () in
  Alcotest.(check bool) "empty contains" false (h.contains 7);
  Alcotest.(check bool) "insert 7" true (h.insert 7);
  Alcotest.(check bool) "insert 3" true (h.insert 3);
  Alcotest.(check bool) "insert 11" true (h.insert 11);
  Alcotest.(check bool) "dup" false (h.insert 7);
  Alcotest.(check bool) "contains 3" true (h.contains 3);
  Alcotest.(check bool) "contains 11" true (h.contains 11);
  Alcotest.(check bool) "not contains 5" false (h.contains 5);
  Alcotest.(check (list int)) "sorted" [ 3; 7; 11 ] (h.to_list ());
  Alcotest.(check bool) "delete 7" true (h.delete 7);
  Alcotest.(check bool) "delete 7 again" false (h.delete 7);
  Alcotest.(check (list int)) "after delete" [ 3; 11 ] (h.to_list ());
  h.check_levels ()

let test_bulk mk () =
  let h = mk () in
  let keys = List.init 200 (fun i -> (i * 37) mod 1009) |> List.sort_uniq compare in
  List.iter (fun k -> Alcotest.(check bool) "ins" true (h.insert k)) keys;
  h.check_levels ();
  List.iter (fun k -> Alcotest.(check bool) "mem" true (h.contains k)) keys;
  Alcotest.(check (list int)) "all present" keys (h.to_list ());
  let half = List.filteri (fun i _ -> i mod 2 = 0) keys in
  List.iter (fun k -> Alcotest.(check bool) "del" true (h.delete k)) half;
  h.check_levels ();
  let rest = List.filter (fun k -> not (List.mem k half)) keys in
  Alcotest.(check (list int)) "half left" rest (h.to_list ())

let test_churn mk () =
  let h = mk () in
  for _round = 1 to 30 do
    for k = 0 to 49 do
      ignore (h.insert k)
    done;
    for k = 0 to 49 do
      ignore (h.delete k)
    done
  done;
  Alcotest.(check (list int)) "empty" [] (h.to_list ());
  h.check_levels ()

type op = Ins of int | Del of int | Mem of int

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 50 300)
      (let* k = int_range 0 40 in
       let* c = int_range 0 2 in
       return (match c with 0 -> Ins k | 1 -> Del k | _ -> Mem k)))

let prop_model mk =
  QCheck2.Test.make ~name:"random trace matches Set model" ~count:40 gen_ops
    (fun ops ->
      let h = mk () in
      let m = ref Iset.empty in
      List.for_all
        (fun op ->
          let expected, m' =
            match op with
            | Ins k -> (not (Iset.mem k !m), Iset.add k !m)
            | Del k -> (Iset.mem k !m, Iset.remove k !m)
            | Mem k -> (Iset.mem k !m, !m)
          in
          m := m';
          let got =
            match op with
            | Ins k -> h.insert k
            | Del k -> h.delete k
            | Mem k -> h.contains k
          in
          got = expected)
        ops
      && h.to_list () = Iset.elements !m)

let () =
  let suites =
    List.map
      (fun (sname, mk) ->
        ( sname,
          [
            Alcotest.test_case "basic" `Quick (test_basic mk);
            Alcotest.test_case "bulk" `Quick (test_bulk mk);
            Alcotest.test_case "churn" `Quick (test_churn mk);
            QCheck_alcotest.to_alcotest (prop_model mk);
          ] ))
      variants
  in
  Alcotest.run "skiplist" suites
