(* The virtual-thread scheduler end to end: decision-string determinism
   and bit-for-bit replay, tail policies, fault injection, replay-token
   round-trips, ddmin shrinking, the Strict sanitizer under virtual
   scheduling, the robustness assertions (stalled reader: EBR grows,
   everyone else keeps reclaiming) for list AND skiplist, exploration
   finding a seeded bug, and the sched_fixtures/ token corpus. *)

open Schedsim
module Access = Memsim.Access

(* ---------- scheduler primitives ---------- *)

(* Each body takes three yield points (one per Access.get) and logs its
   tid per slice; the log is the observable schedule. *)
let logging_bodies log =
  let a = Atomic.make 0 in
  Array.init 2 (fun tid () ->
      for _ = 1 to 3 do
        ignore (Access.get a);
        log := tid :: !log
      done)

let test_tail_first () =
  let log = ref [] in
  let o = Sched.run (logging_bodies log) in
  Alcotest.(check (list int))
    "first-runnable runs thread 0 to completion" [ 0; 0; 0; 1; 1; 1 ]
    (List.rev !log);
  Alcotest.(check bool) "no error" true (o.Sched.error = None);
  Alcotest.(check (array bool)) "both completed" [| true; true |] o.Sched.completed

let test_decisions_determinism () =
  let run () =
    let log = ref [] in
    let o =
      Sched.run ~decisions:[| 1; 1; 0; 1; 0; 0 |] (logging_bodies log)
    in
    (List.rev !log, o.Sched.recorded, o.Sched.steps)
  in
  let l1, r1, s1 = run () in
  let l2, r2, s2 = run () in
  Alcotest.(check (list int)) "same log" l1 l2;
  Alcotest.(check (array int)) "same recorded" r1 r2;
  Alcotest.(check int) "same steps" s1 s2

let test_recorded_replays () =
  let o1 = Sched.run ~decisions:[| 1; 0; 1 |] ~tail:Sched.Round_robin
      (logging_bodies (ref []))
  in
  (* Replaying the full recorded string under the OTHER tail policy must
     reproduce the schedule: every pick is in the string. *)
  let log = ref [] in
  let o2 =
    Sched.run ~decisions:o1.Sched.recorded ~tail:Sched.First
      (logging_bodies log)
  in
  Alcotest.(check (array int)) "recorded stable" o1.Sched.recorded
    o2.Sched.recorded;
  Alcotest.(check int) "steps stable" o1.Sched.steps o2.Sched.steps

let test_fault_transient () =
  let log = ref [] in
  let o =
    Sched.run
      ~fault:{ Sched.victim = 0; after_yields = 1; for_steps = 2 }
      (logging_bodies log)
  in
  Alcotest.(check (array bool))
    "a transient stall still completes" [| true; true |] o.Sched.completed;
  (* Thread 0 stalls at its first yield, so thread 1 logs first. *)
  Alcotest.(check int) "thread 1 overtook" 1 (List.nth (List.rev !log) 0)

let test_fault_forever () =
  let log = ref [] in
  let o =
    Sched.run
      ~fault:{ Sched.victim = 0; after_yields = 1; for_steps = Sched.forever }
      (logging_bodies log)
  in
  Alcotest.(check (array bool))
    "victim never completes" [| false; true |] o.Sched.completed;
  Alcotest.(check bool) "a stall is not an error" true (o.Sched.error = None);
  Alcotest.(check (list int)) "only thread 1 logged" [ 1; 1; 1 ] (List.rev !log)

let test_quota () =
  let a = Atomic.make 0 in
  let spin () =
    while true do
      ignore (Access.get a)
    done
  in
  let o = Sched.run ~max_steps:50 [| spin |] in
  match o.Sched.error with
  | Some (Sched.Quota_exceeded n) -> Alcotest.(check int) "quota" 50 n
  | _ -> Alcotest.fail "expected Quota_exceeded"

let test_sched_yield_trace () =
  let trace = Obs.Trace.create ~capacity:64 ~n_threads:2 ~scheme:"sched" () in
  ignore (Sched.run ~trace ~tail:Sched.Round_robin (logging_bodies (ref [])));
  let d = Obs.Trace.dump trace in
  let yields =
    Array.to_list d.Obs.Trace.d_events
    |> List.filter (fun e -> e.Obs.Trace.e_kind = Obs.Trace.Sched_yield)
  in
  Alcotest.(check bool) "context switches were traced" true
    (List.length yields >= 2)

(* ---------- Strict sanitization under virtual scheduling ---------- *)

(* The injected bug Strict must catch: a reader parked at a yield point
   holding a slot index, the slot freed under it, the read resuming into
   Arena.get. Also the exemption that makes Strict usable at all for
   optimistic readers: get_speculative on the same schedule is clean. *)
let strict_outcome ~speculative =
  let open Memsim in
  let arena = Arena.create ~capacity:8 in
  ignore (Arena.attach_sanitizer arena Sanitizer.Strict);
  let global = Global_pool.create ~max_level:1 in
  let pool = Pool.create arena global ~spill:64 in
  let slot = Arena.fresh arena ~level:1 in
  let flag = Atomic.make 0 in
  let reader () =
    ignore (Access.get flag);
    if speculative then ignore (Arena.get_speculative arena slot)
    else ignore (Arena.get arena slot)
  in
  let freer () = Pool.put pool slot in
  Sched.run ~decisions:[| 0; 1 |] [| reader; freer |]

let test_strict_catches_deref_after_free () =
  match (strict_outcome ~speculative:false).Sched.error with
  | Some (Memsim.Sanitizer.Violation _) -> ()
  | Some e -> Alcotest.fail ("wrong error: " ^ Printexc.to_string e)
  | None -> Alcotest.fail "Strict missed a guarded deref-after-free"

let test_strict_spares_speculative_read () =
  Alcotest.(check bool) "speculative read is exempt" true
    ((strict_outcome ~speculative:true).Sched.error = None)

(* ---------- tokens ---------- *)

let test_token_roundtrip () =
  let cases =
    [ [||]; [| 0 |]; [| 2; 2; 2 |]; [| 0; 1; 1; 0; 3; 3; 3; 3; 0 |] ]
  in
  List.iter
    (fun d ->
      List.iter
        (fun tail ->
          let t = Token.encode ~scenario:"lin-list-VBR" ~tail d in
          let n, tl, d' = Token.decode t in
          Alcotest.(check string) "scenario" "lin-list-VBR" n;
          Alcotest.(check bool) "tail" true (tl = tail);
          Alcotest.(check (array int)) "decisions" d d')
        [ Sched.First; Sched.Round_robin ])
    cases

let test_token_malformed () =
  List.iter
    (fun t ->
      match Token.decode t with
      | _ -> Alcotest.fail ("decoded malformed token " ^ t)
      | exception Token.Malformed _ -> ())
    [
      "";
      "S0.x.f.-" (* wrong version *);
      "S1.x.q.-" (* bad tail *);
      "S1.x.f" (* missing decisions *);
      "S1.x.f.1x" (* bad RLE *);
      "S1.x.f.1x0" (* zero repeat *);
      "S1.x.f.a" (* not a number *);
    ]

(* ---------- shrinking ---------- *)

let test_ddmin () =
  (* Fails iff the string contains two 1s: minimum is exactly [|1;1|]. *)
  let fails a = Array.fold_left (fun n v -> n + min v 1) 0 a >= 2 in
  let shrunk = Shrink.ddmin fails [| 0; 1; 3; 0; 0; 1; 0; 2; 1; 0 |] in
  Alcotest.(check bool) "still fails" true (fails shrunk);
  Alcotest.(check int) "minimal" 2 (Array.length shrunk);
  match Shrink.ddmin fails [| 0; 0 |] with
  | _ -> Alcotest.fail "ddmin accepted a passing input"
  | exception Invalid_argument _ -> ()

let test_explore_finds_and_shrinks () =
  match Explore.explore ~seed:0 ~budget:100 ~scenario:"double-retire" () with
  | Explore.Clean _ -> Alcotest.fail "explorer missed the seeded double retire"
  | Explore.Found f ->
      Alcotest.(check string) "class" "sanitizer" f.Explore.f_failure.Explore.cls;
      let _, _, full = Token.decode f.Explore.f_token in
      let _, _, shrunk = Token.decode f.Explore.f_shrunk in
      Alcotest.(check bool) "shrunk no longer than the original" true
        (Array.length shrunk <= Array.length full);
      (* Both tokens must still replay to the same failure class. *)
      List.iter
        (fun token ->
          match (Explore.replay token).Explore.failure with
          | Some { Explore.cls = "sanitizer"; _ } -> ()
          | _ -> Alcotest.fail ("token did not replay: " ^ token))
        [ f.Explore.f_token; f.Explore.f_shrunk ]

(* ---------- the robustness assertions ---------- *)

(* The scenario itself encodes the assertion (EBR unreclaimed grows past
   the linear bound, the others stay bounded AND keep reclaiming), so
   the test just demands a clean report for every scheme and both
   structures — under the canonical round-robin schedule. *)
let test_robustness structure scheme () =
  let name = Printf.sprintf "robust-%s-%s" scheme structure in
  match (Explore.run_scenario name).Explore.failure with
  | None -> ()
  | Some f ->
      Alcotest.fail (Printf.sprintf "%s: [%s] %s" name f.Explore.cls f.Explore.detail)

(* ---------- the fixture corpus ---------- *)

let parse_fixture path =
  let ic = open_in path in
  let rec lines acc =
    match input_line ic with
    | l -> lines (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  let content =
    lines []
    |> List.filter (fun l ->
           String.trim l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match content with
  | [ token; expected ] -> (String.trim token, String.trim expected)
  | _ -> Alcotest.fail (path ^ ": expected exactly a token and a class line")

let test_fixture file () =
  let token, expected = parse_fixture (Filename.concat "sched_fixtures" file) in
  let r = Explore.replay token in
  match (expected, r.Explore.failure) with
  | "pass", None -> ()
  | "pass", Some f ->
      Alcotest.fail
        (Printf.sprintf "expected pass, got [%s] %s" f.Explore.cls
           f.Explore.detail)
  | cls, Some f when f.Explore.cls = cls -> ()
  | cls, Some f ->
      Alcotest.fail
        (Printf.sprintf "expected [%s], got [%s] %s" cls f.Explore.cls
           f.Explore.detail)
  | cls, None -> Alcotest.fail (Printf.sprintf "expected [%s], run passed" cls)

let fixture_files () =
  Sys.readdir "sched_fixtures" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".token")
  |> List.sort compare

(* ---------- a short exploration sweep over the real schemes ---------- *)

let test_lin_sweep () =
  (* A handful of random schedules per structure under the two extreme
     schemes; the full-budget sweep lives behind `dune build @schedsim`. *)
  List.iter
    (fun scenario ->
      match Explore.explore ~seed:11 ~budget:6 ~scenario () with
      | Explore.Clean _ -> ()
      | Explore.Found f ->
          Alcotest.fail
            (Printf.sprintf "%s: [%s] %s — replay with: %s" scenario
               f.Explore.f_failure.Explore.cls f.Explore.f_failure.Explore.detail
               f.Explore.f_token))
    [ "lin-list-EBR"; "lin-list-VBR"; "lin-skiplist-HP"; "lin-skiplist-VBR" ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "schedsim"
    [
      ( "sched",
        [
          quick "tail-first" test_tail_first;
          quick "decision-determinism" test_decisions_determinism;
          quick "recorded-replays" test_recorded_replays;
          quick "fault-transient" test_fault_transient;
          quick "fault-forever" test_fault_forever;
          quick "quota" test_quota;
          quick "sched-yield-trace" test_sched_yield_trace;
        ] );
      ( "sanitizer",
        [
          quick "strict-catches-deref-after-free"
            test_strict_catches_deref_after_free;
          quick "strict-spares-speculative" test_strict_spares_speculative_read;
        ] );
      ( "token",
        [
          quick "roundtrip" test_token_roundtrip;
          quick "malformed" test_token_malformed;
        ] );
      ( "shrink",
        [
          quick "ddmin" test_ddmin;
          quick "explore-finds-and-shrinks" test_explore_finds_and_shrinks;
        ] );
      ( "robustness",
        List.concat_map
          (fun structure ->
            List.map
              (fun scheme ->
                quick
                  (Printf.sprintf "%s-%s" scheme structure)
                  (test_robustness structure scheme))
              [ "EBR"; "HP"; "HE"; "IBR"; "VBR" ])
          [ "list"; "skiplist" ] );
      ( "fixtures",
        List.map (fun f -> quick f (test_fixture f)) (fixture_files ()) );
      ("sweep", [ quick "lin-short-sweep" test_lin_sweep ]);
    ]
