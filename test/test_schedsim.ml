(* The virtual-thread scheduler end to end: decision-string determinism
   and bit-for-bit replay, tail policies, fault injection, replay-token
   round-trips (S2, with the mode field), ddmin shrinking, the Strict
   sanitizer under virtual scheduling, the robustness assertions
   (stalled reader: EBR grows, everyone else keeps reclaiming) for list
   AND skiplist, the DPOR commutativity predicate, the sleep-set
   soundness property (Plain and Dpor both find every seeded bug), the
   coverage-guided search beating uniform-random tails, parallel fleet
   determinism, and the sched_fixtures/ token corpus. *)

open Schedsim
module Access = Memsim.Access

(* ---------- scheduler primitives ---------- *)

(* Each body takes three yield points (one per Access.get) and logs its
   tid per slice; the log is the observable schedule. *)
let logging_bodies log =
  let a = Atomic.make 0 in
  Array.init 2 (fun tid () ->
      for _ = 1 to 3 do
        ignore (Access.get a);
        log := tid :: !log
      done)

let test_tail_first () =
  let log = ref [] in
  let o = Sched.run (logging_bodies log) in
  Alcotest.(check (list int))
    "first-runnable runs thread 0 to completion" [ 0; 0; 0; 1; 1; 1 ]
    (List.rev !log);
  Alcotest.(check bool) "no error" true (o.Sched.error = None);
  Alcotest.(check (array bool)) "both completed" [| true; true |] o.Sched.completed

let test_decisions_determinism () =
  let run () =
    let log = ref [] in
    let o =
      Sched.run ~decisions:[| 1; 1; 0; 1; 0; 0 |] (logging_bodies log)
    in
    (List.rev !log, o.Sched.recorded, o.Sched.steps)
  in
  let l1, r1, s1 = run () in
  let l2, r2, s2 = run () in
  Alcotest.(check (list int)) "same log" l1 l2;
  Alcotest.(check (array int)) "same recorded" r1 r2;
  Alcotest.(check int) "same steps" s1 s2

let test_recorded_replays () =
  let o1 = Sched.run ~decisions:[| 1; 0; 1 |] ~tail:Sched.Round_robin
      (logging_bodies (ref []))
  in
  (* Replaying the full recorded string under the OTHER tail policy must
     reproduce the schedule: every pick is in the string. *)
  let log = ref [] in
  let o2 =
    Sched.run ~decisions:o1.Sched.recorded ~tail:Sched.First
      (logging_bodies log)
  in
  Alcotest.(check (array int)) "recorded stable" o1.Sched.recorded
    o2.Sched.recorded;
  Alcotest.(check int) "steps stable" o1.Sched.steps o2.Sched.steps

let test_fault_transient () =
  let log = ref [] in
  let o =
    Sched.run
      ~fault:{ Sched.victim = 0; after_yields = 1; for_steps = 2 }
      (logging_bodies log)
  in
  Alcotest.(check (array bool))
    "a transient stall still completes" [| true; true |] o.Sched.completed;
  (* Thread 0 stalls at its first yield, so thread 1 logs first. *)
  Alcotest.(check int) "thread 1 overtook" 1 (List.nth (List.rev !log) 0)

let test_fault_forever () =
  let log = ref [] in
  let o =
    Sched.run
      ~fault:{ Sched.victim = 0; after_yields = 1; for_steps = Sched.forever }
      (logging_bodies log)
  in
  Alcotest.(check (array bool))
    "victim never completes" [| false; true |] o.Sched.completed;
  Alcotest.(check bool) "a stall is not an error" true (o.Sched.error = None);
  Alcotest.(check (list int)) "only thread 1 logged" [ 1; 1; 1 ] (List.rev !log)

let test_quota () =
  let a = Atomic.make 0 in
  let spin () =
    while true do
      ignore (Access.get a)
    done
  in
  let o = Sched.run ~max_steps:50 [| spin |] in
  match o.Sched.error with
  | Some (Sched.Quota_exceeded n) -> Alcotest.(check int) "quota" 50 n
  | _ -> Alcotest.fail "expected Quota_exceeded"

let test_sched_yield_trace () =
  let trace = Obs.Trace.create ~capacity:64 ~n_threads:2 ~scheme:"sched" () in
  ignore (Sched.run ~trace ~tail:Sched.Round_robin (logging_bodies (ref [])));
  let d = Obs.Trace.dump trace in
  let yields =
    Array.to_list d.Obs.Trace.d_events
    |> List.filter (fun e -> e.Obs.Trace.e_kind = Obs.Trace.Sched_yield)
  in
  Alcotest.(check bool) "context switches were traced" true
    (List.length yields >= 2)

(* ---------- the DPOR commutativity predicate ---------- *)

let op kind word = { Access.kind; word = Obj.repr word }

let test_dpor_predicate () =
  let a = Atomic.make 0 and b = Atomic.make 0 in
  let check msg v got = Alcotest.(check bool) msg v got in
  check "write/write same word conflicts" true
    (Dpor.conflicts (op Access.Write a) (op Access.Write a));
  check "read/write same word conflicts" true
    (Dpor.conflicts (op Access.Read a) (op Access.Write a));
  check "cas/read same word conflicts" true
    (Dpor.conflicts (op Access.Cas a) (op Access.Read a));
  check "read/read same word commutes" true
    (Dpor.commutes (op Access.Read a) (op Access.Read a));
  check "write/write disjoint words commutes" true
    (Dpor.commutes (op Access.Write a) (op Access.Write b));
  check "cas/exchange disjoint words commutes" true
    (Dpor.commutes (op Access.Cas a) (op Access.Exchange b));
  check "only Read does not write" true
    (List.for_all Dpor.writes
       [ Access.Write; Access.Cas; Access.Exchange; Access.Fetch_add ]
    && not (Dpor.writes Access.Read))

let test_dpor_yield_marker_commutes () =
  (* yield_point is modelled as a Read of a private marker word, so it
     must commute with every access to a real word. *)
  let seen = ref None in
  Access.install (fun o -> seen := Some o);
  Fun.protect ~finally:Access.uninstall Access.yield_point;
  match !seen with
  | None -> Alcotest.fail "yield_point did not reach the hook"
  | Some marker ->
      Alcotest.(check bool) "marker is a read" true
        (marker.Access.kind = Access.Read);
      let a = Atomic.make 0 in
      Alcotest.(check bool) "marker commutes with a write" true
        (Dpor.commutes marker (op Access.Write a))

let prop_dpor_commutes =
  (* conflicts is symmetric, commutes is its exact negation, and two
     accesses to distinct words always commute. *)
  let kind_gen =
    QCheck.Gen.oneofl
      [ Access.Read; Access.Write; Access.Cas; Access.Exchange;
        Access.Fetch_add ]
  in
  let words = Array.init 4 (fun _ -> Atomic.make 0) in
  let op_gen =
    QCheck.Gen.map2
      (fun k i -> (op k words.(i), i))
      kind_gen (QCheck.Gen.int_bound 3)
  in
  QCheck.Test.make ~name:"conflicts symmetric, commutes = negation"
    ~count:200
    (QCheck.make (QCheck.Gen.pair op_gen op_gen))
    (fun ((x, i), (y, j)) ->
      let implies p q = (not p) || q in
      Dpor.conflicts x y = Dpor.conflicts y x
      && Dpor.commutes x y = not (Dpor.conflicts x y)
      && implies (i <> j) (Dpor.commutes x y)
      && implies
           (i = j && (Dpor.writes x.Access.kind || Dpor.writes y.Access.kind))
           (Dpor.conflicts x y))

(* ---------- Strict sanitization under virtual scheduling ---------- *)

(* The injected bug Strict must catch: a reader parked at a yield point
   holding a slot index, the slot freed under it, the read resuming into
   Arena.get. Also the exemption that makes Strict usable at all for
   optimistic readers: get_speculative on the same schedule is clean. *)
let strict_outcome ~speculative =
  let open Memsim in
  let arena = Arena.create ~capacity:8 in
  ignore (Arena.attach_sanitizer arena Sanitizer.Strict);
  let global = Global_pool.create ~max_level:1 in
  let pool = Pool.create arena global ~spill:64 in
  let slot = Arena.fresh arena ~level:1 in
  let flag = Atomic.make 0 in
  let reader () =
    ignore (Access.get flag);
    if speculative then ignore (Arena.get_speculative arena slot)
    else ignore (Arena.get arena slot)
  in
  let freer () = Pool.put pool slot in
  Sched.run ~decisions:[| 0; 1 |] [| reader; freer |]

let test_strict_catches_deref_after_free () =
  match (strict_outcome ~speculative:false).Sched.error with
  | Some (Memsim.Sanitizer.Violation _) -> ()
  | Some e -> Alcotest.fail ("wrong error: " ^ Printexc.to_string e)
  | None -> Alcotest.fail "Strict missed a guarded deref-after-free"

let test_strict_spares_speculative_read () =
  Alcotest.(check bool) "speculative read is exempt" true
    ((strict_outcome ~speculative:true).Sched.error = None)

(* ---------- tokens ---------- *)

let test_token_roundtrip () =
  let cases =
    [ [||]; [| 0 |]; [| 2; 2; 2 |]; [| 0; 1; 1; 0; 3; 3; 3; 3; 0 |] ]
  in
  List.iter
    (fun d ->
      List.iter
        (fun tail ->
          List.iter
            (fun mode ->
              let t = Token.encode ~scenario:"lin-list-VBR" ~tail ~mode d in
              let n, tl, md, d' = Token.decode t in
              Alcotest.(check string) "scenario" "lin-list-VBR" n;
              Alcotest.(check bool) "tail" true (tl = tail);
              Alcotest.(check bool) "mode" true (md = mode);
              Alcotest.(check (array int)) "decisions" d d')
            [ Sched.Plain; Sched.Dpor ])
        [ Sched.First; Sched.Round_robin ])
    cases

let test_token_malformed () =
  List.iter
    (fun t ->
      match Token.decode t with
      | _ -> Alcotest.fail ("decoded malformed token " ^ t)
      | exception Token.Malformed _ -> ())
    [
      "";
      "S0.x.f.p.-" (* wrong version *);
      "S2.x.q.p.-" (* bad tail *);
      "S2.x.f.z.-" (* bad mode *);
      "S2.x.f.-" (* missing mode field *);
      "S2.x.f.p" (* missing decisions *);
      "S2.x.f.p.1x" (* bad RLE *);
      "S2.x.f.p.1x0" (* zero repeat *);
      "S2.x.f.p.a" (* not a number *);
    ]

let test_token_stale_s1 () =
  (* Pre-fleet tokens must fail with the upgrade recipe, not a generic
     version error: their decision strings are still meaningful (today's
     mode 'p'), and the message says exactly how to port one. *)
  match Token.decode "S1.late-guard.f.1x32" with
  | _ -> Alcotest.fail "decoded a stale S1 token"
  | exception Token.Malformed m ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        m = 0 || go 0
      in
      Alcotest.(check bool) "names S1" true (contains m "S1");
      Alcotest.(check bool) "gives the upgrade recipe" true
        (contains m "insert \".p\"")

(* ---------- per-scenario step quotas ---------- *)

let test_quota_scales_with_threads () =
  (* Step quotas are threads × a per-thread allowance, so a 3-thread
     scenario is not starved by a 2-thread budget (the flaky-soak fix).
     robust-* runs to a fault horizon and gets the bigger allowance. *)
  let per_thread name =
    let sp = Explore.spec name in
    Alcotest.(check bool)
      (name ^ ": quota divisible by thread count")
      true
      (sp.Explore.sp_quota mod sp.Explore.sp_threads = 0);
    sp.Explore.sp_quota / sp.Explore.sp_threads
  in
  let lin = per_thread "lin-list-VBR" in
  let robust = per_thread "robust-EBR-list" in
  Alcotest.(check int) "lin scenarios: 400k steps per thread" 400_000 lin;
  Alcotest.(check int) "robust scenarios: 700k steps per thread" 700_000
    robust;
  Alcotest.(check int) "late-guard shares the standard allowance" 400_000
    (per_thread "late-guard")

(* ---------- shrinking ---------- *)

let test_ddmin () =
  (* Fails iff the string contains two 1s: minimum is exactly [|1;1|]. *)
  let fails a = Array.fold_left (fun n v -> n + min v 1) 0 a >= 2 in
  let shrunk = Shrink.ddmin fails [| 0; 1; 3; 0; 0; 1; 0; 2; 1; 0 |] in
  Alcotest.(check bool) "still fails" true (fails shrunk);
  Alcotest.(check int) "minimal" 2 (Array.length shrunk);
  match Shrink.ddmin fails [| 0; 0 |] with
  | _ -> Alcotest.fail "ddmin accepted a passing input"
  | exception Invalid_argument _ -> ()

let test_explore_finds_and_shrinks () =
  match Explore.explore ~seed:0 ~budget:100 ~scenario:"double-retire" () with
  | Explore.Clean _ -> Alcotest.fail "explorer missed the seeded double retire"
  | Explore.Found f ->
      Alcotest.(check string) "class" "sanitizer" f.Explore.f_failure.Explore.cls;
      let _, _, _, full = Token.decode f.Explore.f_token in
      let _, _, _, shrunk = Token.decode f.Explore.f_shrunk in
      Alcotest.(check bool) "shrunk no longer than the original" true
        (Array.length shrunk <= Array.length full);
      (* Both tokens must still replay to the same failure class. *)
      List.iter
        (fun token ->
          match (Explore.replay token).Explore.failure with
          | Some { Explore.cls = "sanitizer"; _ } -> ()
          | _ -> Alcotest.fail ("token did not replay: " ^ token))
        [ f.Explore.f_token; f.Explore.f_shrunk ]

(* ---------- sleep-set soundness ---------- *)

(* The property that makes DPOR admissible at all: pruning only ever
   discards schedules Mazurkiewicz-equivalent to ones still explored, so
   exploration with sleep sets must find every seeded bug that
   exploration without them finds. Run as a property over seeds: any
   seed where one mode finds a bug and the other exhausts its budget is
   a soundness (or addressability) regression. *)
let prop_sleep_sets_sound =
  QCheck.Test.make ~name:"Plain and Dpor both find every seeded bug"
    ~count:2
    (QCheck.int_range 0 999)
    (fun seed ->
      List.for_all
        (fun scenario ->
          List.for_all
            (fun mode ->
              match Explore.explore ~seed ~mode ~scenario () with
              | Explore.Found _ -> true
              | Explore.Clean _ ->
                  QCheck.Test.fail_reportf "seed %d: %s clean under %s" seed
                    scenario
                    (match mode with Sched.Plain -> "plain" | _ -> "dpor"))
            [ Sched.Plain; Sched.Dpor ])
        Explore.seeded_bugs)

let test_dpor_prunes_and_replays () =
  (* Dpor mode actually prunes on a real scenario, and a schedule
     recorded under Dpor replays bit-for-bit in Dpor mode (the mode is
     part of the token, so this is the replay path for 'd' tokens). *)
  let r1 =
    Explore.run_scenario ~decisions:[| 1; 0; 2; 1; 0; 1 |] ~mode:Sched.Dpor
      "lin-list-VBR"
  in
  Alcotest.(check bool) "clean run" true (r1.Explore.failure = None);
  Alcotest.(check bool) "sleep sets pruned candidates" true
    (r1.Explore.outcome.Sched.pruned > 0);
  let r2 =
    Explore.run_scenario ~decisions:r1.Explore.outcome.Sched.recorded
      ~mode:Sched.Dpor "lin-list-VBR"
  in
  Alcotest.(check (array int)) "recorded replays under Dpor"
    r1.Explore.outcome.Sched.recorded r2.Explore.outcome.Sched.recorded;
  Alcotest.(check int) "steps stable" r1.Explore.outcome.Sched.steps
    r2.Explore.outcome.Sched.steps

(* ---------- coverage-guided search vs uniform-random tails ---------- *)

let distinct_of = function
  | Explore.Clean s -> s.Explore.st_distinct
  | Explore.Found f -> f.Explore.f_stats.Explore.st_distinct

let test_guided_beats_uniform () =
  (* Same scenario, same budget ceiling: the guided search must visit
     at least 5× the distinct coverage states uniform tails visit.
     late-guard is the stress case — its bug window needs a ~32-long
     run of one thread, which per-position uniform draws essentially
     never produce under sleep-set pruning. *)
  let uniform =
    Explore.explore ~seed:7 ~budget:40 ~guided:false ~mode:Sched.Dpor
      ~scenario:"late-guard" ()
  in
  let guided =
    Explore.explore ~seed:7 ~budget:40 ~guided:true ~mode:Sched.Dpor
      ~scenario:"late-guard" ()
  in
  let u = distinct_of uniform and g = distinct_of guided in
  Alcotest.(check bool)
    (Printf.sprintf "guided %d >= 5x uniform %d distinct states" g u)
    true
    (g >= 5 * u)

(* ---------- the parallel fleet ---------- *)

let test_fleet_deterministic () =
  (* The visited-signature set is a pure function of (scenario, seed,
     domains, budget, guided, mode): two runs must agree byte for byte,
     whatever the worker domains' timing did. *)
  let run () =
    Schedsim.Fleet.explore ~seed:3 ~budget:96 ~domains:4
      ~scenario:"lin-list-VBR" ()
  in
  let a = run () and b = run () in
  Alcotest.(check (array int)) "identical signature sets"
    a.Fleet.r_signatures b.Fleet.r_signatures;
  Alcotest.(check int) "identical execution counts" a.Fleet.r_execs
    b.Fleet.r_execs;
  Alcotest.(check bool) "visited more than one state" true
    (a.Fleet.r_distinct > 1)

let test_fleet_finds_with_token () =
  (* A fleet catch carries a deterministic replay token like any
     single-domain catch; the shrunk token must reproduce the class. *)
  match
    (Schedsim.Fleet.explore ~seed:0 ~budget:512 ~domains:4
       ~scenario:"double-retire" ())
      .Fleet.r_found
  with
  | None -> Alcotest.fail "fleet missed the seeded double retire"
  | Some f -> (
      Alcotest.(check string) "class" "sanitizer"
        f.Explore.f_failure.Explore.cls;
      match (Explore.replay f.Explore.f_shrunk).Explore.failure with
      | Some { Explore.cls = "sanitizer"; _ } -> ()
      | _ ->
          Alcotest.fail
            ("fleet token did not replay: " ^ f.Explore.f_shrunk))

(* ---------- the robustness assertions ---------- *)

(* The scenario itself encodes the assertion (EBR unreclaimed grows past
   the linear bound, the others stay bounded AND keep reclaiming), so
   the test just demands a clean report for every scheme and both
   structures — under the canonical round-robin schedule. *)
let test_robustness structure scheme () =
  let name = Printf.sprintf "robust-%s-%s" scheme structure in
  match (Explore.run_scenario name).Explore.failure with
  | None -> ()
  | Some f ->
      Alcotest.fail (Printf.sprintf "%s: [%s] %s" name f.Explore.cls f.Explore.detail)

(* ---------- the fixture corpus ---------- *)

let parse_fixture path =
  let ic = open_in path in
  let rec lines acc =
    match input_line ic with
    | l -> lines (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  let content =
    lines []
    |> List.filter (fun l ->
           String.trim l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match content with
  | [ token; expected ] -> (String.trim token, String.trim expected)
  | _ -> Alcotest.fail (path ^ ": expected exactly a token and a class line")

let test_fixture file () =
  let token, expected = parse_fixture (Filename.concat "sched_fixtures" file) in
  let r = Explore.replay token in
  match (expected, r.Explore.failure) with
  | "pass", None -> ()
  | "pass", Some f ->
      Alcotest.fail
        (Printf.sprintf "expected pass, got [%s] %s" f.Explore.cls
           f.Explore.detail)
  | cls, Some f when f.Explore.cls = cls -> ()
  | cls, Some f ->
      Alcotest.fail
        (Printf.sprintf "expected [%s], got [%s] %s" cls f.Explore.cls
           f.Explore.detail)
  | cls, None -> Alcotest.fail (Printf.sprintf "expected [%s], run passed" cls)

let fixture_files () =
  Sys.readdir "sched_fixtures" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".token")
  |> List.sort compare

(* ---------- a short exploration sweep over the real schemes ---------- *)

let test_lin_sweep () =
  (* A handful of schedules per structure under the two extreme schemes;
     the full-budget sweep lives behind `dune build @schedsim`. *)
  List.iter
    (fun scenario ->
      match Explore.explore ~seed:11 ~budget:6 ~scenario () with
      | Explore.Clean _ -> ()
      | Explore.Found f ->
          Alcotest.fail
            (Printf.sprintf "%s: [%s] %s — replay with: %s" scenario
               f.Explore.f_failure.Explore.cls f.Explore.f_failure.Explore.detail
               f.Explore.f_token))
    [ "lin-list-EBR"; "lin-list-VBR"; "lin-skiplist-HP"; "lin-skiplist-VBR" ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "schedsim"
    [
      ( "sched",
        [
          quick "tail-first" test_tail_first;
          quick "decision-determinism" test_decisions_determinism;
          quick "recorded-replays" test_recorded_replays;
          quick "fault-transient" test_fault_transient;
          quick "fault-forever" test_fault_forever;
          quick "quota" test_quota;
          quick "sched-yield-trace" test_sched_yield_trace;
        ] );
      ( "dpor",
        [
          quick "predicate" test_dpor_predicate;
          quick "yield-marker-commutes" test_dpor_yield_marker_commutes;
          qcheck prop_dpor_commutes;
          quick "prunes-and-replays" test_dpor_prunes_and_replays;
        ] );
      ( "sanitizer",
        [
          quick "strict-catches-deref-after-free"
            test_strict_catches_deref_after_free;
          quick "strict-spares-speculative" test_strict_spares_speculative_read;
        ] );
      ( "token",
        [
          quick "roundtrip" test_token_roundtrip;
          quick "malformed" test_token_malformed;
          quick "stale-s1" test_token_stale_s1;
        ] );
      ("quotas", [ quick "per-thread-scaling" test_quota_scales_with_threads ]);
      ( "shrink",
        [
          quick "ddmin" test_ddmin;
          quick "explore-finds-and-shrinks" test_explore_finds_and_shrinks;
        ] );
      ( "coverage",
        [
          qcheck prop_sleep_sets_sound;
          quick "guided-beats-uniform" test_guided_beats_uniform;
        ] );
      ( "fleet",
        [
          quick "deterministic" test_fleet_deterministic;
          quick "finds-with-token" test_fleet_finds_with_token;
        ] );
      ( "robustness",
        List.concat_map
          (fun structure ->
            List.map
              (fun scheme ->
                quick
                  (Printf.sprintf "%s-%s" scheme structure)
                  (test_robustness structure scheme))
              [ "EBR"; "HP"; "HE"; "IBR"; "VBR" ])
          [ "list"; "skiplist" ] );
      ( "fixtures",
        List.map (fun f -> quick f (test_fixture f)) (fixture_files ()) );
      ("sweep", [ quick "lin-short-sweep" test_lin_sweep ]);
    ]
