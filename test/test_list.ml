(* Sequential correctness of every linked-list variant (5 conservative
   schemes + VBR) against a reference Set model: directed unit cases plus
   a qcheck random-trace equivalence property. *)

module Iset = Set.Make (Int)

(* A uniform first-class handle over all list variants. *)
type handle = {
  hname : string;
  insert : int -> bool;
  delete : int -> bool;
  contains : int -> bool;
  to_list : unit -> int list;
}

let make_conservative (module R : Reclaim.Smr_intf.S) () =
  let arena = Memsim.Arena.create ~capacity:100_000 in
  let global = Memsim.Global_pool.create ~max_level:1 in
  let r =
    R.create ~arena ~global ~n_threads:2 ~hazards:3 ~retire_threshold:8
      ~epoch_freq:4
  in
  let module L = Dstruct.Linked_list.Make (R) in
  let l = L.create r ~arena in
  {
    hname = L.name;
    insert = (fun k -> L.insert l ~tid:0 k);
    delete = (fun k -> L.delete l ~tid:0 k);
    contains = (fun k -> L.contains l ~tid:0 k);
    to_list = (fun () -> L.to_list l);
  }

let make_vbr () =
  let arena = Memsim.Arena.create ~capacity:100_000 in
  let global = Memsim.Global_pool.create ~max_level:1 in
  let vbr =
    Vbr_core.Vbr.create_tuned ~retire_threshold:4 ~arena ~global ~n_threads:2 ()
  in
  let l = Dstruct.Vbr_list.create vbr in
  {
    hname = Dstruct.Vbr_list.name;
    insert = (fun k -> Dstruct.Vbr_list.insert l ~tid:0 k);
    delete = (fun k -> Dstruct.Vbr_list.delete l ~tid:0 k);
    contains = (fun k -> Dstruct.Vbr_list.contains l ~tid:0 k);
    to_list = (fun () -> Dstruct.Vbr_list.to_list l);
  }

let variants : (string * (unit -> handle)) list =
  [
    ("NoRecl", make_conservative (module Reclaim.No_recl));
    ("EBR", make_conservative (module Reclaim.Ebr));
    ("HP", make_conservative (module Reclaim.Hp));
    ("HE", make_conservative (module Reclaim.He));
    ("IBR", make_conservative (module Reclaim.Ibr));
    ("VBR", make_vbr);
  ]

(* Directed cases. *)

let test_empty mk () =
  let h = mk () in
  Alcotest.(check bool) "contains on empty" false (h.contains 5);
  Alcotest.(check bool) "delete on empty" false (h.delete 5);
  Alcotest.(check (list int)) "to_list empty" [] (h.to_list ())

let test_insert_contains mk () =
  let h = mk () in
  Alcotest.(check bool) "insert 3" true (h.insert 3);
  Alcotest.(check bool) "insert 1" true (h.insert 1);
  Alcotest.(check bool) "insert 2" true (h.insert 2);
  Alcotest.(check bool) "dup insert" false (h.insert 2);
  Alcotest.(check bool) "contains 1" true (h.contains 1);
  Alcotest.(check bool) "contains 2" true (h.contains 2);
  Alcotest.(check bool) "contains 3" true (h.contains 3);
  Alcotest.(check bool) "contains 4" false (h.contains 4);
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (h.to_list ())

let test_delete mk () =
  let h = mk () in
  List.iter (fun k -> ignore (h.insert k)) [ 10; 20; 30; 40 ];
  Alcotest.(check bool) "delete middle" true (h.delete 20);
  Alcotest.(check bool) "gone" false (h.contains 20);
  Alcotest.(check bool) "delete again" false (h.delete 20);
  Alcotest.(check bool) "delete head" true (h.delete 10);
  Alcotest.(check bool) "delete tail" true (h.delete 40);
  Alcotest.(check (list int)) "one left" [ 30 ] (h.to_list ());
  Alcotest.(check bool) "delete last" true (h.delete 30);
  Alcotest.(check (list int)) "empty again" [] (h.to_list ())

let test_reinsert_cycles mk () =
  (* Exercises recycling: the same keys inserted and deleted repeatedly
     force slots through many lifecycles. *)
  let h = mk () in
  for round = 1 to 50 do
    for k = 0 to 19 do
      Alcotest.(check bool)
        (Printf.sprintf "round %d insert %d" round k)
        true (h.insert k)
    done;
    for k = 0 to 19 do
      Alcotest.(check bool)
        (Printf.sprintf "round %d delete %d" round k)
        true (h.delete k)
    done
  done;
  Alcotest.(check (list int)) "empty at end" [] (h.to_list ())

let test_negative_and_extreme_keys mk () =
  let h = mk () in
  let keys = [ -1000; -1; 0; 1; 1000; max_int - 1; min_int + 1 ] in
  List.iter (fun k -> Alcotest.(check bool) "ins" true (h.insert k)) keys;
  List.iter (fun k -> Alcotest.(check bool) "mem" true (h.contains k)) keys;
  Alcotest.(check (list int))
    "sorted extremes" (List.sort compare keys) (h.to_list ())

let test_interleaved_ops mk () =
  let h = mk () in
  ignore (h.insert 5);
  ignore (h.insert 7);
  Alcotest.(check bool) "del 5" true (h.delete 5);
  Alcotest.(check bool) "ins 5 again" true (h.insert 5);
  Alcotest.(check bool) "del 7" true (h.delete 7);
  Alcotest.(check bool) "ins 6" true (h.insert 6);
  Alcotest.(check (list int)) "state" [ 5; 6 ] (h.to_list ())

(* Random-trace equivalence with a Set model. *)

type op = Ins of int | Del of int | Mem of int

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 50 400)
      (let* k = int_range 0 30 in
       let* c = int_range 0 2 in
       return (match c with 0 -> Ins k | 1 -> Del k | _ -> Mem k)))

let apply_model m = function
  | Ins k -> (Iset.add k m, not (Iset.mem k m))
  | Del k -> (Iset.remove k m, Iset.mem k m)
  | Mem k -> (m, Iset.mem k m)

let prop_model mk =
  QCheck2.Test.make ~name:"random trace matches Set model" ~count:60 gen_ops
    (fun ops ->
      let h = mk () in
      let m = ref Iset.empty in
      List.for_all
        (fun op ->
          let m', expected = apply_model !m op in
          m := m';
          let got =
            match op with
            | Ins k -> h.insert k
            | Del k -> h.delete k
            | Mem k -> h.contains k
          in
          got = expected)
        ops
      && h.to_list () = Iset.elements !m)

(* Failure injection: a hostile domain advances the global epoch as fast
   as it can, so nearly every VBR read is forced through the rollback
   path; the results must still match the model exactly. *)
let test_adversarial_epoch () =
  let arena = Memsim.Arena.create ~capacity:100_000 in
  let global = Memsim.Global_pool.create ~max_level:1 in
  let vbr =
    Vbr_core.Vbr.create_tuned ~retire_threshold:2 ~arena ~global ~n_threads:2 ()
  in
  let l = Dstruct.Vbr_list.create vbr in
  let stop = Atomic.make false in
  let bumper =
    Domain.spawn (fun () ->
        let e = Vbr_core.Vbr.epoch vbr in
        while not (Atomic.get stop) do
          ignore
            (Vbr_core.Epoch.try_advance e ~expected:(Vbr_core.Epoch.get e))
        done)
  in
  let m = ref Iset.empty in
  let rng = Random.State.make [| 2026 |] in
  for _ = 1 to 3_000 do
    let k = Random.State.int rng 40 in
    match Random.State.int rng 3 with
    | 0 ->
        let expected = not (Iset.mem k !m) in
        m := Iset.add k !m;
        Alcotest.(check bool) "insert under epoch storm" expected
          (Dstruct.Vbr_list.insert l ~tid:0 k)
    | 1 ->
        let expected = Iset.mem k !m in
        m := Iset.remove k !m;
        Alcotest.(check bool) "delete under epoch storm" expected
          (Dstruct.Vbr_list.delete l ~tid:0 k)
    | _ ->
        Alcotest.(check bool) "contains under epoch storm" (Iset.mem k !m)
          (Dstruct.Vbr_list.contains l ~tid:0 k)
  done;
  Atomic.set stop true;
  Domain.join bumper;
  Alcotest.(check (list int)) "final state" (Iset.elements !m)
    (Dstruct.Vbr_list.to_list l);
  (* The storm must actually have exercised rollbacks. *)
  let stats = Vbr_core.Vbr.total_stats vbr in
  Alcotest.(check bool) "rollbacks occurred" true
    (stats.Vbr_core.Vbr.rollbacks > 100)

let () =
  let suites =
    List.map
      (fun (sname, mk) ->
        ( sname,
          [
            Alcotest.test_case "empty" `Quick (test_empty mk);
            Alcotest.test_case "insert/contains" `Quick
              (test_insert_contains mk);
            Alcotest.test_case "delete" `Quick (test_delete mk);
            Alcotest.test_case "reinsert cycles" `Quick
              (test_reinsert_cycles mk);
            Alcotest.test_case "extreme keys" `Quick
              (test_negative_and_extreme_keys mk);
            Alcotest.test_case "interleaved" `Quick (test_interleaved_ops mk);
            QCheck_alcotest.to_alcotest (prop_model mk);
          ] ))
      variants
  in
  let suites =
    suites
    @ [
        ( "VBR-adversarial",
          [
            Alcotest.test_case "epoch storm vs model" `Slow
              test_adversarial_epoch;
          ] );
      ]
  in
  Alcotest.run "list" suites
