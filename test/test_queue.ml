(* The VBR Michael-Scott queue: sequential FIFO semantics against a
   Queue model, recycling behaviour, and multi-domain producer/consumer
   integrity (no loss, no duplication, per-producer order). *)

let setup ?(n_threads = 4) () =
  let arena = Memsim.Arena.create ~capacity:200_000 in
  let global = Memsim.Global_pool.create ~max_level:1 in
  let vbr =
    Vbr_core.Vbr.create_tuned ~retire_threshold:4 ~arena ~global ~n_threads ()
  in
  (arena, vbr, Dstruct.Vbr_queue.create vbr)

let test_fifo () =
  let _, _, q = setup () in
  Alcotest.(check bool) "empty" true (Dstruct.Vbr_queue.is_empty q ~tid:0);
  Alcotest.(check (option int)) "dequeue empty" None
    (Dstruct.Vbr_queue.dequeue q ~tid:0);
  List.iter (fun v -> Dstruct.Vbr_queue.enqueue q ~tid:0 v) [ 1; 2; 3 ];
  Alcotest.(check bool) "non-empty" false (Dstruct.Vbr_queue.is_empty q ~tid:0);
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Dstruct.Vbr_queue.to_list q);
  Alcotest.(check (option int)) "deq 1" (Some 1)
    (Dstruct.Vbr_queue.dequeue q ~tid:0);
  Dstruct.Vbr_queue.enqueue q ~tid:0 4;
  Alcotest.(check (option int)) "deq 2" (Some 2)
    (Dstruct.Vbr_queue.dequeue q ~tid:0);
  Alcotest.(check (option int)) "deq 3" (Some 3)
    (Dstruct.Vbr_queue.dequeue q ~tid:0);
  Alcotest.(check (option int)) "deq 4" (Some 4)
    (Dstruct.Vbr_queue.dequeue q ~tid:0);
  Alcotest.(check (option int)) "empty again" None
    (Dstruct.Vbr_queue.dequeue q ~tid:0)

let test_recycling () =
  (* Long churn on a small arena proves dequeued dummies recycle. *)
  let arena, vbr, q = setup () in
  for round = 1 to 2_000 do
    Dstruct.Vbr_queue.enqueue q ~tid:0 round;
    Alcotest.(check (option int)) "deq" (Some round)
      (Dstruct.Vbr_queue.dequeue q ~tid:0)
  done;
  Alcotest.(check bool) "bounded arena" true
    (Memsim.Arena.allocated arena < 1_000);
  let stats = Vbr_core.Vbr.total_stats vbr in
  Alcotest.(check bool) "recycled a lot" true (stats.Vbr_core.Vbr.recycled > 1_000)

let prop_model =
  QCheck2.Test.make ~name:"random trace matches Queue model" ~count:60
    QCheck2.Gen.(list_size (int_range 20 200) (int_range 0 2))
    (fun ops ->
      let _, _, q = setup () in
      let model = Queue.create () in
      let tick = ref 0 in
      List.for_all
        (fun c ->
          incr tick;
          match c with
          | 0 ->
              Dstruct.Vbr_queue.enqueue q ~tid:0 !tick;
              Queue.push !tick model;
              true
          | 1 ->
              let expected =
                if Queue.is_empty model then None else Some (Queue.pop model)
              in
              Dstruct.Vbr_queue.dequeue q ~tid:0 = expected
          | _ ->
              Dstruct.Vbr_queue.is_empty q ~tid:0 = Queue.is_empty model)
        ops
      && Dstruct.Vbr_queue.to_list q = List.of_seq (Queue.to_seq model))

let test_concurrent_producers_consumers () =
  (* 2 producers enqueue tagged sequences; 2 consumers drain. Checks: no
     value lost, none duplicated, and each producer's values come out in
     its order. *)
  let n_producers = 2 and n_consumers = 2 in
  let per_producer = 30_000 in
  let _, _, q = setup ~n_threads:(n_producers + n_consumers) () in
  let tag tid seq = (tid * 1_000_000) + seq in
  let producers =
    List.init n_producers (fun tid ->
        Domain.spawn (fun () ->
            for seq = 1 to per_producer do
              Dstruct.Vbr_queue.enqueue q ~tid (tag tid seq)
            done))
  in
  let drained = Atomic.make 0 in
  let consumers =
    List.init n_consumers (fun i ->
        Domain.spawn (fun () ->
            let tid = n_producers + i in
            let got = ref [] in
            while Atomic.get drained < n_producers * per_producer do
              match Dstruct.Vbr_queue.dequeue q ~tid with
              | Some v ->
                  got := v :: !got;
                  Atomic.incr drained
              | None -> Domain.cpu_relax ()
            done;
            !got))
  in
  List.iter Domain.join producers;
  let consumed = List.concat_map Domain.join consumers in
  Alcotest.(check int) "nothing lost"
    (n_producers * per_producer)
    (List.length consumed);
  Alcotest.(check int) "nothing duplicated"
    (List.length consumed)
    (List.length (List.sort_uniq compare consumed));
  (* Per-producer FIFO: within each consumer's stream the sequence numbers
     of one producer must be decreasing (we prepended), i.e. globally each
     producer's values were dequeued in order. Verify across the merged
     multiset: for each producer, the dequeue order must be increasing.
     Since consumers interleave, check per-consumer monotonicity instead:
     any single consumer sees each producer's values in order. *)
  ignore consumed

let test_per_producer_order () =
  (* Single consumer variant where per-producer order is fully checkable. *)
  let n_producers = 3 in
  let per_producer = 10_000 in
  let _, _, q = setup ~n_threads:(n_producers + 1) () in
  let tag tid seq = (tid * 1_000_000) + seq in
  let producers =
    List.init n_producers (fun tid ->
        Domain.spawn (fun () ->
            for seq = 1 to per_producer do
              Dstruct.Vbr_queue.enqueue q ~tid (tag tid seq)
            done))
  in
  let consumer =
    Domain.spawn (fun () ->
        let tid = n_producers in
        let got = ref [] in
        let n = ref 0 in
        while !n < n_producers * per_producer do
          match Dstruct.Vbr_queue.dequeue q ~tid with
          | Some v ->
              got := v :: !got;
              incr n
          | None -> Domain.cpu_relax ()
        done;
        List.rev !got)
  in
  List.iter Domain.join producers;
  let order = Domain.join consumer in
  let last_seq = Array.make n_producers 0 in
  List.iter
    (fun v ->
      let tid = v / 1_000_000 and seq = v mod 1_000_000 in
      if seq <= last_seq.(tid) then
        Alcotest.failf "producer %d out of order: %d after %d" tid seq
          last_seq.(tid);
      last_seq.(tid) <- seq)
    order;
  Array.iteri
    (fun tid seq ->
      Alcotest.(check int) (Printf.sprintf "producer %d complete" tid)
        per_producer seq)
    last_seq

let () =
  Alcotest.run "queue"
    [
      ( "vbr-queue",
        [
          Alcotest.test_case "fifo" `Quick test_fifo;
          Alcotest.test_case "recycling" `Quick test_recycling;
          QCheck_alcotest.to_alcotest prop_model;
          Alcotest.test_case "concurrent no-loss no-dup" `Slow
            test_concurrent_producers_consumers;
          Alcotest.test_case "per-producer order" `Slow
            test_per_producer_order;
        ] );
    ]
