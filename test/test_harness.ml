(* The measurement infrastructure itself: PRNG determinism and spread,
   workload sampling, the registry's support matrix, the prefill
   predicate, and a tiny end-to-end throughput measurement. *)

let test_rng_determinism () =
  let a = Harness.Rng.create ~seed:7 and b = Harness.Rng.create ~seed:7 in
  for _ = 1 to 1_000 do
    Alcotest.(check int) "same stream" (Harness.Rng.next a)
      (Harness.Rng.next b)
  done;
  let c = Harness.Rng.create ~seed:8 in
  let same = ref 0 in
  for _ = 1 to 1_000 do
    if Harness.Rng.next a = Harness.Rng.next c then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 5)

let test_rng_below_range () =
  let r = Harness.Rng.create ~seed:3 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 100_000 do
    let v = Harness.Rng.below r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i n ->
      if n < 8_000 || n > 12_000 then
        Alcotest.failf "bucket %d badly skewed: %d/100000" i n)
    buckets;
  Alcotest.check_raises "n<=0 rejected" (Invalid_argument "Rng.below: n <= 0")
    (fun () -> ignore (Harness.Rng.below r 0))

let test_workload_mix () =
  let count p =
    let r = Harness.Rng.create ~seed:11 in
    let i = ref 0 and d = ref 0 and s = ref 0 in
    for _ = 1 to 100_000 do
      match Harness.Workload.pick p r with
      | Harness.Workload.Insert -> incr i
      | Harness.Workload.Delete -> incr d
      | Harness.Workload.Search -> incr s
    done;
    (!i, !d, !s)
  in
  let check_close name got expected =
    let diff = abs (got - expected) in
    if diff > 1_500 then
      Alcotest.failf "%s: got %d, expected ~%d" name got expected
  in
  let i, d, s = count Harness.Workload.search_intensive in
  check_close "ri" i 10_000;
  check_close "rd" d 10_000;
  check_close "rs" s 80_000;
  let i, d, s = count Harness.Workload.update_intensive in
  check_close "ui" i 50_000;
  check_close "ud" d 50_000;
  Alcotest.(check int) "no searches in update-heavy" 0 s;
  Alcotest.(check bool) "of_name roundtrip" true
    (Harness.Workload.of_name "balanced" = Some Harness.Workload.balanced);
  Alcotest.(check bool) "of_name unknown" true
    (Harness.Workload.of_name "nope" = None)

let test_prefill_half () =
  let members = ref 0 in
  let n = 100_000 in
  for k = 0 to n - 1 do
    if Harness.Workload.prefill_member k then incr members
  done;
  let frac = float_of_int !members /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "about half are members (%.3f)" frac)
    true
    (frac > 0.47 && frac < 0.53)

let test_registry_matrix () =
  List.iter
    (fun structure ->
      List.iter
        (fun scheme ->
          let expected =
            structure <> "harris" || List.mem scheme [ "NoRecl"; "EBR"; "VBR" ]
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s" structure scheme)
            expected
            (Harness.Registry.supports ~structure ~scheme))
        Harness.Registry.schemes)
    Harness.Registry.structures;
  Alcotest.(check bool) "unknown structure" false
    (Harness.Registry.supports ~structure:"btree" ~scheme:"VBR");
  Alcotest.check_raises "make rejects unsupported"
    (Invalid_argument "Registry: harris does not support HP") (fun () ->
      ignore
        (Harness.Registry.make ~structure:"harris" ~scheme:"HP" ~n_threads:1
           ~range:8 ~capacity:64 ()))

let test_instances_work () =
  (* Every supported combination performs a few sane operations. *)
  List.iter
    (fun structure ->
      List.iter
        (fun scheme ->
          if Harness.Registry.supports ~structure ~scheme then begin
            let inst =
              Harness.Registry.make ~structure ~scheme ~n_threads:2 ~range:64
                ~capacity:10_000 ()
            in
            Alcotest.(check bool)
              (inst.Harness.Registry.iname ^ " insert")
              true
              (inst.Harness.Registry.insert ~tid:0 7);
            Alcotest.(check bool)
              (inst.Harness.Registry.iname ^ " member")
              true
              (inst.Harness.Registry.contains ~tid:0 7);
            Alcotest.(check bool)
              (inst.Harness.Registry.iname ^ " delete")
              true
              (inst.Harness.Registry.delete ~tid:0 7);
            Alcotest.(check int)
              (inst.Harness.Registry.iname ^ " size")
              0
              (inst.Harness.Registry.size ())
          end)
        Harness.Registry.schemes)
    Harness.Registry.structures

let test_throughput_smoke () =
  let make () =
    Harness.Registry.make ~structure:"hash" ~scheme:"VBR" ~n_threads:2
      ~range:256 ~capacity:50_000 ()
  in
  let p =
    Harness.Throughput.measure ~make ~profile:Harness.Workload.balanced
      ~threads:2 ~range:256 ~duration:0.05 ~repeats:2 ()
  in
  Alcotest.(check bool) "positive throughput" true (p.Harness.Throughput.mops > 0.0);
  Alcotest.(check int) "repeats recorded" 2 p.Harness.Throughput.repeats

let test_stalled_smoke () =
  let make () =
    Harness.Registry.make ~structure:"hash" ~scheme:"EBR" ~n_threads:3
      ~range:256 ~capacity:100_000 ()
  in
  let series =
    Harness.Throughput.run_stalled ~make ~profile:Harness.Workload.balanced
      ~threads:3 ~range:256 ~checkpoints:2 ~ops_per_checkpoint:5_000
  in
  Alcotest.(check int) "two checkpoints" 2 (List.length series);
  match series with
  | [ (o1, u1, _); (o2, u2, _) ] ->
      Alcotest.(check int) "ops accumulate" (2 * o1) o2;
      Alcotest.(check bool) "EBR garbage grows under a stalled thread" true
        (u2 >= u1 && u2 > 0)
  | _ -> Alcotest.fail "unexpected series shape"

let () =
  Alcotest.run "harness"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "below range/spread" `Quick test_rng_below_range;
        ] );
      ( "workload",
        [
          Alcotest.test_case "profile mix" `Quick test_workload_mix;
          Alcotest.test_case "prefill half" `Quick test_prefill_half;
        ] );
      ( "registry",
        [
          Alcotest.test_case "support matrix" `Quick test_registry_matrix;
          Alcotest.test_case "all instances work" `Quick test_instances_work;
        ] );
      ( "throughput",
        [
          Alcotest.test_case "measure smoke" `Quick test_throughput_smoke;
          Alcotest.test_case "stalled smoke" `Quick test_stalled_smoke;
        ] );
    ]
