(* The raw-atomic false-negative fixture: both uses below bypass the
   versioned plane, but neither spells the literal path "Atomic.op", so
   the untyped linter (which matches the parse tree) sees nothing.
   vbr-verify resolves through the typed tree -- the alias via the
   file-local module-alias table, the open because the compiler already
   recorded the canonical path Stdlib.Atomic.get -- and flags both. *)

module A = Atomic
open Atomic

(* BAD (typed only): the alias hides the path syntactically. *)
let read_aliased (r : int A.t) = A.get r

(* BAD (typed only): the open removes the qualifier entirely. *)
let read_opened (r : int Atomic.t) = get r
