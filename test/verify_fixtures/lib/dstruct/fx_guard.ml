(* guard-extent fixtures (Guarded scope: no vbr_ prefix). The bad shape
   is the "guard dropped before the extracted traversal" refactor: the
   hand-over-hand reads moved into [traverse], and the public op calls
   it with no begin_op/end_op bracket on any chain. The good twin is
   the harris_list idiom: the same extracted traversal, covered because
   its only caller engages the guard. *)

type t = { words : int Atomic.t array; head : int }

let next_word t i = t.words.(i)

(* BAD: flagged at the Atomic.get line. *)
let traverse t i = Atomic.get (next_word t i)
let contains t key = traverse t (t.head + key)

module MakeGuarded (R : Fx_intf.GUARD) = struct
  (* GOOD: identical traversal, covered by the bracketing caller. *)
  let traverse_ok t i = Atomic.get (next_word t i)

  let contains_ok r t key =
    R.begin_op r ~tid:0;
    let v = traverse_ok t (t.head + key) in
    R.end_op r ~tid:0;
    v
end
