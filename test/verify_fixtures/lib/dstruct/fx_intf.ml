(* Stub plane signatures the verify fixtures are functorized over, so
   their call sites look exactly like the real structures' (the plane is
   a functor parameter V/R and the verifier matches canonical-name
   suffixes, never a concrete implementation module). *)

module type OPT = sig
  type t
  type ctx

  val ctx : t -> tid:int -> ctx
  val checkpoint : ctx -> (unit -> 'a) -> 'a
  val alloc : ctx -> int * int
  val commit_alloc : ctx -> int -> unit
  val refresh_epoch : ctx -> unit
  val get_key : ctx -> int -> int
  val get_next : ctx -> int -> int * int
  val update : ctx -> int -> new_:int -> bool
  val retire : ctx -> int * int -> unit
end

module type GUARD = sig
  type t

  val begin_op : t -> tid:int -> unit
  val end_op : t -> tid:int -> unit
end
