(* checkpoint-dominance fixtures. The bad helper is the "checkpoint
   moved to the callee and then lost" refactor: the optimistic read
   itself is uncovered, and no call chain installs a checkpoint. The
   good twin has the identical helper shape, proven safe because its
   only caller wraps the call. [publish] seeds the post-publish
   protocol violation: an optimistic read after commit_alloc with no
   refresh_epoch/checkpoint in between. *)

module Make (V : Fx_intf.OPT) = struct
  (* BAD: flagged at the V.get_key line. *)
  let helper c key = V.get_key c key

  let lookup (t : V.t) key =
    let c = V.ctx t ~tid:0 in
    helper c key

  (* GOOD: same helper, every call chain installs the checkpoint. *)
  let helper_ok c key = V.get_key c key

  let lookup_ok (t : V.t) key =
    let c = V.ctx t ~tid:0 in
    V.checkpoint c (fun () -> helper_ok c key)

  (* BAD: flagged at the V.get_next line (rollback would re-run the
     publishing path). *)
  let publish (t : V.t) =
    let c = V.ctx t ~tid:0 in
    V.checkpoint c (fun () ->
        let n, _b = V.alloc c in
        if V.update c n ~new_:n then V.commit_alloc c n;
        V.get_next c n)
end
