(* Suppression granularity regression: the same [@vbr.allow] attribute
   vbr-lint honors must silence vbr-verify at the same three levels.
   Each block below reproduces a violation another fixture file proves
   is caught, then suppresses it -- at expression, binding and file
   granularity. This file must contribute zero findings. *)

(* file-level: floating attribute suppresses the whole file *)
[@@@vbr.allow "blocking-in-critical-section"]

module Make (V : Fx_intf.OPT) = struct
  let m = Mutex.create ()

  (* expr-level: the attribute rides on the read itself *)
  let helper c key = (V.get_key c key [@vbr.allow "checkpoint-dominance"])

  let lookup (t : V.t) key =
    let c = V.ctx t ~tid:0 in
    helper c key

  (* binding-level: the quiescent-helper idiom from the real tree *)
  let to_list (r : int Atomic.t) = Atomic.get r
  [@@vbr.allow "raw-atomic"]

  (* suppressed by the file-level attribute above *)
  let blocked () = Mutex.lock m

  let op (t : V.t) =
    let c = V.ctx t ~tid:0 in
    V.checkpoint c (fun () -> blocked ())
end
