(* blocking-in-critical-section fixture: Mutex.lock two calls deep
   below a checkpoint argument. Criticality propagates op -> helper1 ->
   helper2 through the call graph; the finding lands on the blocking
   call itself. The good twin blocks outside any critical scope. *)

module Make (V : Fx_intf.OPT) = struct
  let m = Mutex.create ()

  (* BAD: flagged at the Mutex.lock line. *)
  let helper2 () = Mutex.lock m
  let helper1 () = helper2 ()

  let op (t : V.t) =
    let c = V.ctx t ~tid:0 in
    V.checkpoint c (fun () -> helper1 ())

  (* GOOD: no checkpoint or guard is open here. *)
  let op_ok () =
    Mutex.lock m;
    Mutex.unlock m
end
