(* retire-taint fixtures: retire-then-deref split across a helper (the
   taint flows through the call into the helper's dereferencing
   parameter) and the same bug in one function. The good twin retires
   one node and keeps traversing from a different one. *)

module Make (V : Fx_intf.OPT) = struct
  (* dereferences its node argument *)
  let read_next c n = fst (V.get_next c n)

  (* BAD: flagged at the read_next call. *)
  let remove (t : V.t) n =
    let c = V.ctx t ~tid:0 in
    V.checkpoint c (fun () ->
        V.retire c (n, 0);
        read_next c n)

  (* BAD: flagged at the V.get_key line (same-function use-after-retire). *)
  let remove_direct (t : V.t) n =
    let c = V.ctx t ~tid:0 in
    V.checkpoint c (fun () ->
        V.retire c (n, 0);
        V.get_key c n)

  (* GOOD: the retired node is dead; traversal continues elsewhere. *)
  let remove_ok (t : V.t) n nxt =
    let c = V.ctx t ~tid:0 in
    V.checkpoint c (fun () ->
        V.retire c (n, 0);
        read_next c nxt)
end
