(* The observability layer: event taxonomy, sharded counters (including a
   multi-domain increment smoke test), histogram bucketing and quantiles,
   the background sampler, and the JSON/CSV sinks. *)

let check = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Events.                                                             *)
(* ------------------------------------------------------------------ *)

let test_event_roundtrip () =
  check "count" Obs.Event.count (List.length Obs.Event.all);
  List.iteri
    (fun i ev ->
      check "dense index" i (Obs.Event.to_index ev);
      match Obs.Event.of_string (Obs.Event.to_string ev) with
      | Some ev' ->
          Alcotest.(check bool) "of_string/to_string" true (ev = ev')
      | None -> Alcotest.fail "of_string failed on to_string output")
    Obs.Event.all;
  Alcotest.(check (option reject))
    "unknown name" None
    (Obs.Event.of_string "no-such-event")

(* ------------------------------------------------------------------ *)
(* Counters.                                                           *)
(* ------------------------------------------------------------------ *)

let test_counters_basic () =
  let c = Obs.Counters.create ~shards:3 in
  check "n_shards" 3 (Obs.Counters.n_shards c);
  Obs.Counters.incr c ~shard:0 Obs.Event.Alloc;
  Obs.Counters.add c ~shard:1 Obs.Event.Alloc 41;
  Obs.Counters.incr c ~shard:2 Obs.Event.Retire;
  Obs.Counters.shard_incr (Obs.Counters.shared_shard c) Obs.Event.Retire;
  check "racy total" 42 (Obs.Counters.read c Obs.Event.Alloc);
  let s = Obs.Counters.snapshot c in
  check "snapshot alloc" 42 (Obs.Counters.get s Obs.Event.Alloc);
  check "snapshot retire incl. shared shard" 2
    (Obs.Counters.get s Obs.Event.Retire);
  check "snapshot untouched" 0 (Obs.Counters.get s Obs.Event.Reclaim);
  (* Per-shard reads are exact. *)
  check "shard 1 view" 41
    (Obs.Counters.shard_get (Obs.Counters.shard c 1) Obs.Event.Alloc);
  check "shard 0 view" 1
    (Obs.Counters.shard_get (Obs.Counters.shard c 0) Obs.Event.Alloc)

let test_counters_merge () =
  let mk n =
    let c = Obs.Counters.create ~shards:1 in
    Obs.Counters.add c ~shard:0 Obs.Event.Reclaim n;
    Obs.Counters.incr c ~shard:0 Obs.Event.Rollback;
    Obs.Counters.snapshot c
  in
  let merged = Obs.Counters.merge (mk 10) (mk 32) in
  check "merged reclaim" 42 (Obs.Counters.get merged Obs.Event.Reclaim);
  check "merged rollback" 2 (Obs.Counters.get merged Obs.Event.Rollback);
  let assoc = Obs.Counters.to_assoc merged in
  check "assoc covers all events" Obs.Event.count (List.length assoc);
  check "assoc lookup" 42 (List.assoc "reclaim" assoc)

(* Each domain hammers its own shard; totals must be exact because no two
   domains share a cache line, let alone a counter word. *)
let test_counters_domains () =
  let n_domains = 4 and per_domain = 100_000 in
  let c = Obs.Counters.create ~shards:n_domains in
  let domains =
    List.init n_domains (fun i ->
        Domain.spawn (fun () ->
            let sh = Obs.Counters.shard c i in
            for _ = 1 to per_domain do
              Obs.Counters.shard_incr sh Obs.Event.Cas_fail
            done))
  in
  List.iter Domain.join domains;
  check "exact multi-domain total" (n_domains * per_domain)
    (Obs.Counters.read c Obs.Event.Cas_fail)

(* ------------------------------------------------------------------ *)
(* Histogram.                                                          *)
(* ------------------------------------------------------------------ *)

let test_histogram_buckets () =
  (* Values below one sub-bucket span are bucketed exactly. *)
  for v = 0 to 31 do
    check "small exact" v (Obs.Histogram.bucket_of_value v)
  done;
  (* The bucket map is monotone and consistent with its lower bounds. *)
  let prev = ref (-1) in
  List.iter
    (fun v ->
      let b = Obs.Histogram.bucket_of_value v in
      Alcotest.(check bool)
        (Printf.sprintf "monotone at %d" v)
        true (b >= !prev);
      prev := b;
      check
        (Printf.sprintf "lower_bound roundtrip at %d" v)
        b
        (Obs.Histogram.bucket_of_value (Obs.Histogram.bucket_lower_bound b)))
    [ 32; 33; 63; 64; 100; 1_000; 65_535; 1_000_000; max_int / 2; max_int ];
  Alcotest.(check bool)
    "max_int inside table" true
    (Obs.Histogram.bucket_of_value max_int < Obs.Histogram.n_buckets)

let test_histogram_quantiles () =
  let h = Obs.Histogram.create () in
  check "empty p50" 0 (Obs.Histogram.quantile h 0.5);
  for v = 1 to 1000 do
    Obs.Histogram.record h v
  done;
  check "count" 1000 (Obs.Histogram.count h);
  check "max exact" 1000 (Obs.Histogram.max_value h);
  check "min exact" 1 (Obs.Histogram.min_value h);
  (* ~3% relative error bound from 32 sub-buckets per octave. *)
  let near name got want =
    let err = abs (got - want) in
    if err * 100 > want * 5 then
      Alcotest.failf "%s: got %d, want %d ±5%%" name got want
  in
  near "p50" (Obs.Histogram.quantile h 0.5) 500;
  near "p90" (Obs.Histogram.quantile h 0.9) 900;
  near "p99" (Obs.Histogram.quantile h 0.99) 990;
  check "p100 clamps to max" 1000 (Obs.Histogram.quantile h 1.0);
  Obs.Histogram.record h (-5);
  check "negative clamps to 0" 0 (Obs.Histogram.min_value h)

let test_histogram_merge () =
  let a = Obs.Histogram.create () and b = Obs.Histogram.create () in
  for v = 1 to 500 do
    Obs.Histogram.record a v
  done;
  for v = 501 to 1000 do
    Obs.Histogram.record b v
  done;
  let m = Obs.Histogram.merge a b in
  check "merged count" 1000 (Obs.Histogram.count m);
  check "merged max" 1000 (Obs.Histogram.max_value m);
  check "merged min" 1 (Obs.Histogram.min_value m);
  let s = Obs.Histogram.summarize m in
  check "summary count" 1000 s.Obs.Histogram.count;
  Alcotest.(check bool)
    "summary mean" true
    (abs_float (s.Obs.Histogram.mean -. 500.5) < 0.01);
  (* merge_into leaves the source untouched. *)
  Obs.Histogram.merge_into ~into:a b;
  check "merge_into count" 1000 (Obs.Histogram.count a);
  check "source intact" 500 (Obs.Histogram.count b)

let test_histogram_merge_all () =
  check "empty list" 0 (Obs.Histogram.count (Obs.Histogram.merge_all []));
  (* The per-thread aggregation pattern: each "thread" records into its
     own histogram; one merge_all at the end. *)
  let hs =
    List.init 4 (fun t ->
        let h = Obs.Histogram.create () in
        for v = 1 to 100 do
          Obs.Histogram.record h ((t * 1000) + v)
        done;
        h)
  in
  let m = Obs.Histogram.merge_all hs in
  check "count sums" 400 (Obs.Histogram.count m);
  check "max spans inputs" 3100 (Obs.Histogram.max_value m);
  check "min spans inputs" 1 (Obs.Histogram.min_value m);
  List.iter
    (fun h -> check "sources intact" 100 (Obs.Histogram.count h))
    hs

(* ------------------------------------------------------------------ *)
(* Sampler.                                                            *)
(* ------------------------------------------------------------------ *)

let test_sampler () =
  let gauge = Atomic.make 0 in
  let s =
    Obs.Sampler.start ~interval_ms:1.0 ~read:(fun () -> Atomic.get gauge) ()
  in
  for i = 1 to 50 do
    Atomic.set gauge i;
    Unix.sleepf 0.001
  done;
  let samples = Obs.Sampler.stop s in
  Alcotest.(check bool)
    "several samples" true
    (List.length samples >= 2);
  let values = List.map (fun s -> s.Obs.Sampler.value) samples in
  (* The immediate first sample races with the test's own first writes, so
     only bound it; the final sample is taken after [stop] and is exact. *)
  Alcotest.(check bool) "first sample in range" true (List.hd values <= 50);
  check "final sample sees last write" 50 (List.nth values (List.length values - 1));
  (* Timestamps are non-decreasing and start near zero. *)
  let rec mono = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "timestamps sorted" true
          (a.Obs.Sampler.elapsed_ms <= b.Obs.Sampler.elapsed_ms);
        mono rest
    | _ -> ()
  in
  mono samples

(* Regression for the shutdown race: [stop] must wait for the sampler
   domain to publish its final post-stop sample (drain) before reading
   the series. The old join-only shutdown could read the list while the
   dying domain still owed the last interval, dropping the final sample.
   Tight start/write/stop cycles make the window easy to hit. *)
let test_sampler_drain () =
  for i = 1 to 25 do
    let gauge = Atomic.make 0 in
    let s =
      Obs.Sampler.start ~interval_ms:0.2 ~read:(fun () -> Atomic.get gauge) ()
    in
    Atomic.set gauge i;
    let samples = Obs.Sampler.stop s in
    Alcotest.(check bool) "non-empty series" true (samples <> []);
    check "final sample taken after stop"
      i
      (List.nth samples (List.length samples - 1)).Obs.Sampler.value
  done

(* ------------------------------------------------------------------ *)
(* Sinks.                                                              *)
(* ------------------------------------------------------------------ *)

let test_json_golden () =
  let open Obs.Sink in
  let j =
    Obj
      [
        ("name", String "he\"llo\n");
        ("n", Int 42);
        ("x", Float 1.5);
        ("whole", Float 3.0);
        ("bad", Float nan);
        ("ok", Bool true);
        ("none", Null);
        ("xs", List [ Int 1; Int 2 ]);
      ]
  in
  Alcotest.(check string)
    "golden object"
    "{\"name\":\"he\\\"llo\\n\",\"n\":42,\"x\":1.5,\"whole\":3.0,\"bad\":null,\"ok\":true,\"none\":null,\"xs\":[1,2]}"
    (to_string j)

let test_json_counters () =
  let c = Obs.Counters.create ~shards:1 in
  Obs.Counters.add c ~shard:0 Obs.Event.Retire 7;
  let s = Obs.Sink.to_string (Obs.Sink.of_counters (Obs.Counters.snapshot c)) in
  Alcotest.(check bool) "has retire" true
    (String.length s > 0
    &&
    let re = "\"retire\":7" in
    let rec find i =
      i + String.length re <= String.length s
      && (String.sub s i (String.length re) = re || find (i + 1))
    in
    find 0)

let test_csv () =
  Alcotest.(check string)
    "quoting" "a,b\n1,\"x,y\"\n2,\"he said \"\"hi\"\"\"\n"
    (Obs.Sink.csv ~header:[ "a"; "b" ]
       ~rows:[ [ "1"; "x,y" ]; [ "2"; "he said \"hi\"" ] ])

let () =
  Alcotest.run "obs"
    [
      ("event", [ Alcotest.test_case "roundtrip" `Quick test_event_roundtrip ]);
      ( "counters",
        [
          Alcotest.test_case "basic" `Quick test_counters_basic;
          Alcotest.test_case "merge" `Quick test_counters_merge;
          Alcotest.test_case "multi-domain" `Quick test_counters_domains;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "merge_all" `Quick test_histogram_merge_all;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "smoke" `Quick test_sampler;
          Alcotest.test_case "drain on stop" `Quick test_sampler_drain;
        ] );
      ( "sink",
        [
          Alcotest.test_case "json golden" `Quick test_json_golden;
          Alcotest.test_case "json counters" `Quick test_json_counters;
          Alcotest.test_case "csv" `Quick test_csv;
        ] );
    ]
