(* Retired-list bookkeeping shared by the guarded schemes' scans.

   [List.partition] + [List.length keep] walked the surviving half twice
   per scan; one fused pass returns the survivor count for free. The
   relative order of the retired list is irrelevant (it is a set — every
   element is tested against the same horizon/guard predicate), so the
   accumulator reversal is harmless. *)

let partition_keep ~keep retired =
  let rec go kept klen free = function
    | [] -> (kept, klen, free)
    | i :: rest ->
        if keep i then go (i :: kept) (klen + 1) free rest
        else go kept klen (i :: free) rest
  in
  go [] 0 [] retired
