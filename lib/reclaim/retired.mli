(** Shared retired-list scan bookkeeping for the guarded schemes. *)

val partition_keep :
  keep:(int -> bool) -> int list -> int list * int * int list
(** [partition_keep ~keep retired] is [(kept, length kept, freed)] in a
    single pass. Element order is not preserved (retired lists are
    sets). *)
