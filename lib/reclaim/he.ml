open Memsim

(* An unpublished era slot. *)
let none = 0

type thread_state = {
  eras : int Atomic.t array;
  pool : Pool.t;
  obs : Obs.Counters.shard;
  mutable retired : int list;
  mutable retired_len : int;
  (* Adaptive scan trigger: scan when the retired list doubles past what
     survived the previous scan, so scan work stays amortized O(1) per
     retirement even while a descheduled thread pins the horizon (an
     oversubscription regime the paper's testbed never enters). *)
  mutable scan_trigger : int;
  (* Allocations until the next era/epoch advance: same cadence as the
     old [alloc_ticks mod epoch_freq] but without a hardware division
     on every allocation. *)
  mutable advance_countdown : int;
  mutable tr : Obs.Trace.ring option;
}

type t = {
  arena : Arena.t;
  era : int Atomic.t;
  threads : thread_state array;
  counters : Obs.Counters.t;
  retire_threshold : int;
  epoch_freq : int;
}

type node = int

let name = "HE"

let create ~arena ~global ~n_threads ~hazards ~retire_threshold ~epoch_freq =
  if hazards < 1 then invalid_arg "He.create: hazards < 1";
  let counters = Obs.Counters.create ~shards:(max 1 n_threads) in
  {
    arena;
    era = Padded.atomic 1;
    threads =
      Array.init n_threads (fun tid ->
          let obs = Obs.Counters.shard counters tid in
          {
            eras = Padded.atomic_array hazards none;
            pool = Pool.create ~stats:obs ~shard:tid arena global ~spill:4096;
            obs;
            retired = [];
            retired_len = 0;
            scan_trigger = max 1 retire_threshold;
            advance_countdown = max 1 epoch_freq;
            tr = None;
          });
    counters;
    retire_threshold = max 1 retire_threshold;
    epoch_freq = max 1 epoch_freq;
  }

let set_trace t trace =
  Array.iteri
    (fun tid ts ->
      let r = Obs.Trace.ring trace ~tid in
      ts.tr <- Some r;
      Pool.set_trace ts.pool r)
    t.threads

let emit ts k ~slot ~v1 ~v2 ~epoch =
  match ts.tr with
  | None -> ()
  | Some r -> Obs.Trace.emit r k ~slot ~v1 ~v2 ~epoch

let begin_op _ ~tid:_ = ()

let end_op t ~tid =
  let ts = t.threads.(tid) in
  (* Release BEFORE the eras are cleared (Obs.Trace contract). *)
  emit ts Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:(-1);
  Array.iter (fun h -> Access.set h none) ts.eras

(* Publish the era that was current when the pointer was read; stable once
   two consecutive reads happen under the same global era. *)
let protect t ~tid ~slot read =
  let ts = t.threads.(tid) in
  let h = ts.eras.(slot) in
  (* The loop republishes era slot [slot], possibly with a later era that
     protects fewer nodes — release the old reservation before the first
     store, acquire the settled one after the loop. *)
  emit ts Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:slot;
  let rec loop prev_era =
    let w = read () in
    let e = Access.get t.era in
    if e = prev_era then w
    else begin
      Access.set h e;
      Obs.Counters.shard_incr ts.obs Obs.Event.Protect_retry;
      loop e
    end
  in
  let e0 = Access.get t.era in
  Access.set h e0;
  let w = loop e0 in
  (match ts.tr with
  | None -> ()
  | Some r ->
      let g = Atomic.get h in
      Obs.Trace.emit r Obs.Trace.Guard_acquire ~slot:0 ~v1:g ~v2:g ~epoch:slot);
  w

(* [protect] with the load inlined: traversals call this once per hop, so
   the closure the [read] thunk would allocate is worth eliding. *)
let protect_read t ~tid ~slot field =
  let ts = t.threads.(tid) in
  let h = ts.eras.(slot) in
  emit ts Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:slot;
  let rec loop prev_era =
    let w = Access.get field in
    let e = Access.get t.era in
    if e = prev_era then w
    else begin
      Access.set h e;
      Obs.Counters.shard_incr ts.obs Obs.Event.Protect_retry;
      loop e
    end
  in
  let e0 = Access.get t.era in
  Access.set h e0;
  let w = loop e0 in
  (match ts.tr with
  | None -> ()
  | Some r ->
      let g = Atomic.get h in
      Obs.Trace.emit r Obs.Trace.Guard_acquire ~slot:0 ~v1:g ~v2:g ~epoch:slot);
  w

let reset_node t i ~key =
  let n = Arena.get t.arena i in
  n.Node.key <- key;
  Access.set n.Node.birth (Access.get t.era);
  Access.set n.Node.retire Node.no_epoch;
  Array.iter (fun w -> Access.set w Packed.null) n.Node.next

let alloc t ~tid ~level ~key =
  let ts = t.threads.(tid) in
  ts.advance_countdown <- ts.advance_countdown - 1;
  if ts.advance_countdown <= 0 then begin
    ts.advance_countdown <- t.epoch_freq;
    (* fetch_and_add rather than incr so the traced old -> new transition
       is unique per advance. *)
    let old = Access.fetch_and_add t.era 1 in
    Obs.Counters.shard_incr ts.obs Obs.Event.Epoch_advance;
    emit ts Obs.Trace.Epoch_advance ~slot:0 ~v1:old ~v2:(old + 1)
      ~epoch:(old + 1)
  end;
  let i = Pool.take ts.pool ~level in
  Obs.Counters.shard_incr ts.obs Obs.Event.Alloc;
  reset_node t i ~key;
  (match ts.tr with
  | None -> ()
  | Some r ->
      let b = Atomic.get (Arena.get t.arena i).Node.birth in
      Obs.Trace.emit r Obs.Trace.Alloc ~slot:i ~v1:b ~v2:0 ~epoch:b);
  i

(* Publishing the current era pins any node alive right now: its birth
   era is at most the published era and its retire era will be at least
   it. *)
let protect_own t ~tid ~slot _i =
  let ts = t.threads.(tid) in
  emit ts Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:slot;
  let e = Access.get t.era in
  Access.set ts.eras.(slot) e;
  emit ts Obs.Trace.Guard_acquire ~slot:0 ~v1:e ~v2:e ~epoch:slot

let transfer t ~tid ~src ~dst =
  let ts = t.threads.(tid) in
  emit ts Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:dst;
  let v = Atomic.get ts.eras.(src) in
  Access.set ts.eras.(dst) v;
  if v <> none then
    emit ts Obs.Trace.Guard_acquire ~slot:0 ~v1:v ~v2:v ~epoch:dst

let dealloc t ~tid i =
  let ts = t.threads.(tid) in
  Obs.Counters.shard_incr ts.obs Obs.Event.Dealloc;
  emit ts Obs.Trace.Dealloc ~slot:i ~v1:0 ~v2:0 ~epoch:0;
  Pool.put ts.pool i

(* A node is pinned iff some published era lies in its lifetime. *)
let pinned t ~birth ~retire =
  Array.exists
    (fun ts ->
      Array.exists
        (fun h ->
          let g = Access.get h in
          g <> none && birth <= g && g <= retire)
        ts.eras)
    t.threads

let scan t ts =
  let keep, keep_len, free =
    Retired.partition_keep
      ~keep:(fun i ->
        let n = Arena.get t.arena i in
        pinned t ~birth:(Atomic.get n.Node.birth)
          ~retire:(Atomic.get n.Node.retire))
      ts.retired
  in
  ts.retired <- keep;
  ts.retired_len <- keep_len;
  List.iter
    (fun i ->
      Obs.Counters.shard_incr ts.obs Obs.Event.Reclaim;
      (match ts.tr with
      | None -> ()
      | Some r ->
          let n = Arena.get t.arena i in
          Obs.Trace.emit r Obs.Trace.Reclaim ~slot:i
            ~v1:(Atomic.get n.Node.birth)
            ~v2:(Atomic.get n.Node.retire) ~epoch:0);
      Pool.put ts.pool i)
    free

let retire t ~tid i =
  let ts = t.threads.(tid) in
  let n = Arena.get t.arena i in
  let re = Access.get t.era in
  (* Emitted before the retire stamp becomes visible (Obs.Trace
     contract): a reservation logged after this event postdates the
     unlink. *)
  (match ts.tr with
  | None -> ()
  | Some r ->
      Obs.Trace.emit r Obs.Trace.Retire ~slot:i
        ~v1:(Atomic.get n.Node.birth) ~v2:re ~epoch:re);
  Access.set n.Node.retire re;
  ts.retired <- i :: ts.retired;
  ts.retired_len <- ts.retired_len + 1;
  Obs.Counters.shard_incr ts.obs Obs.Event.Retire;
  if ts.retired_len >= ts.scan_trigger then begin
    scan t ts;
    ts.scan_trigger <- max t.retire_threshold (2 * ts.retired_len)
  end
  else if ts.retired_len >= t.retire_threshold then
    (* A per-op policy would have scanned here; amortized away. *)
    Obs.Counters.shard_incr ts.obs Obs.Event.Scan_skip

let stats t = Obs.Counters.snapshot t.counters
let freed t = Obs.Counters.read t.counters Obs.Event.Reclaim

let unreclaimed t =
  Obs.Counters.read t.counters Obs.Event.Retire
  - Obs.Counters.read t.counters Obs.Event.Reclaim
