open Memsim

(* An unpublished era slot. *)
let none = 0

type thread_state = {
  eras : int Atomic.t array;
  pool : Pool.t;
  obs : Obs.Counters.shard;
  mutable retired : int list;
  mutable retired_len : int;
  (* Adaptive scan trigger: scan when the retired list doubles past what
     survived the previous scan, so scan work stays amortized O(1) per
     retirement even while a descheduled thread pins the horizon (an
     oversubscription regime the paper's testbed never enters). *)
  mutable scan_trigger : int;
  mutable alloc_ticks : int;
}

type t = {
  arena : Arena.t;
  era : int Atomic.t;
  threads : thread_state array;
  counters : Obs.Counters.t;
  retire_threshold : int;
  epoch_freq : int;
}

type node = int

let name = "HE"

let create ~arena ~global ~n_threads ~hazards ~retire_threshold ~epoch_freq =
  if hazards < 1 then invalid_arg "He.create: hazards < 1";
  let counters = Obs.Counters.create ~shards:(max 1 n_threads) in
  {
    arena;
    era = Atomic.make 1;
    threads =
      Array.init n_threads (fun tid ->
          let obs = Obs.Counters.shard counters tid in
          {
            eras = Array.init hazards (fun _ -> Atomic.make none);
            pool = Pool.create ~stats:obs arena global ~spill:4096;
            obs;
            retired = [];
            retired_len = 0;
            scan_trigger = max 1 retire_threshold;
            alloc_ticks = 0;
          });
    counters;
    retire_threshold = max 1 retire_threshold;
    epoch_freq = max 1 epoch_freq;
  }

let begin_op _ ~tid:_ = ()

let end_op t ~tid =
  Array.iter (fun h -> Atomic.set h none) t.threads.(tid).eras

(* Publish the era that was current when the pointer was read; stable once
   two consecutive reads happen under the same global era. *)
let protect t ~tid ~slot read =
  let ts = t.threads.(tid) in
  let h = ts.eras.(slot) in
  let rec loop prev_era =
    let w = read () in
    let e = Atomic.get t.era in
    if e = prev_era then w
    else begin
      Atomic.set h e;
      Obs.Counters.shard_incr ts.obs Obs.Event.Protect_retry;
      loop e
    end
  in
  let e0 = Atomic.get t.era in
  Atomic.set h e0;
  loop e0

let reset_node t i ~key =
  let n = Arena.get t.arena i in
  n.Node.key <- key;
  Atomic.set n.Node.birth (Atomic.get t.era);
  Atomic.set n.Node.retire Node.no_epoch;
  Array.iter (fun w -> Atomic.set w Packed.null) n.Node.next

let alloc t ~tid ~level ~key =
  let ts = t.threads.(tid) in
  ts.alloc_ticks <- ts.alloc_ticks + 1;
  if ts.alloc_ticks mod t.epoch_freq = 0 then begin
    Atomic.incr t.era;
    Obs.Counters.shard_incr ts.obs Obs.Event.Epoch_advance
  end;
  let i = Pool.take ts.pool ~level in
  Obs.Counters.shard_incr ts.obs Obs.Event.Alloc;
  reset_node t i ~key;
  i

(* Publishing the current era pins any node alive right now: its birth
   era is at most the published era and its retire era will be at least
   it. *)
let protect_own t ~tid ~slot _i =
  Atomic.set t.threads.(tid).eras.(slot) (Atomic.get t.era)

let transfer t ~tid ~src ~dst =
  let ts = t.threads.(tid) in
  Atomic.set ts.eras.(dst) (Atomic.get ts.eras.(src))

let dealloc t ~tid i =
  let ts = t.threads.(tid) in
  Obs.Counters.shard_incr ts.obs Obs.Event.Dealloc;
  Pool.put ts.pool i

(* A node is pinned iff some published era lies in its lifetime. *)
let pinned t ~birth ~retire =
  Array.exists
    (fun ts ->
      Array.exists
        (fun h ->
          let g = Atomic.get h in
          g <> none && birth <= g && g <= retire)
        ts.eras)
    t.threads

let scan t ts =
  let keep, free =
    List.partition
      (fun i ->
        let n = Arena.get t.arena i in
        pinned t ~birth:(Atomic.get n.Node.birth)
          ~retire:(Atomic.get n.Node.retire))
      ts.retired
  in
  ts.retired <- keep;
  ts.retired_len <- List.length keep;
  List.iter
    (fun i ->
      Obs.Counters.shard_incr ts.obs Obs.Event.Reclaim;
      Pool.put ts.pool i)
    free

let retire t ~tid i =
  let ts = t.threads.(tid) in
  Atomic.set (Arena.get t.arena i).Node.retire (Atomic.get t.era);
  ts.retired <- i :: ts.retired;
  ts.retired_len <- ts.retired_len + 1;
  Obs.Counters.shard_incr ts.obs Obs.Event.Retire;
  if ts.retired_len >= ts.scan_trigger then begin
    scan t ts;
    ts.scan_trigger <- max t.retire_threshold (2 * ts.retired_len)
  end

let stats t = Obs.Counters.snapshot t.counters
let freed t = Obs.Counters.read t.counters Obs.Event.Reclaim

let unreclaimed t =
  Obs.Counters.read t.counters Obs.Event.Retire
  - Obs.Counters.read t.counters Obs.Event.Reclaim
