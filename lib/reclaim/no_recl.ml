open Memsim

type t = { arena : Arena.t; counters : Obs.Counters.t }

type node = int

let name = "NoRecl"

let create ~arena ~global:_ ~n_threads ~hazards:_ ~retire_threshold:_
    ~epoch_freq:_ =
  { arena; counters = Obs.Counters.create ~shards:(max 1 n_threads) }

let begin_op _ ~tid:_ = ()
let end_op _ ~tid:_ = ()
let protect _ ~tid:_ ~slot:_ read = read ()

let alloc t ~tid ~level ~key =
  let c = t.counters in
  let i =
    match Arena.fresh t.arena ~level with
    | i ->
        Obs.Counters.incr c ~shard:tid Obs.Event.Arena_fresh;
        i
    | exception Arena.Exhausted ->
        Obs.Counters.incr c ~shard:tid Obs.Event.Arena_exhausted;
        raise Arena.Exhausted
  in
  Obs.Counters.incr c ~shard:tid Obs.Event.Alloc;
  let n = Arena.get t.arena i in
  n.Node.key <- key;
  i

let protect_own _ ~tid:_ ~slot:_ _i = ()

let transfer _ ~tid:_ ~src:_ ~dst:_ = ()

let dealloc t ~tid _i = Obs.Counters.incr t.counters ~shard:tid Obs.Event.Dealloc

let retire t ~tid _i = Obs.Counters.incr t.counters ~shard:tid Obs.Event.Retire
let stats t = Obs.Counters.snapshot t.counters
let freed t = Obs.Counters.read t.counters Obs.Event.Reclaim

let unreclaimed t =
  Obs.Counters.read t.counters Obs.Event.Retire
  - Obs.Counters.read t.counters Obs.Event.Reclaim
