open Memsim

type t = {
  arena : Arena.t;
  counters : Obs.Counters.t;
  trs : Obs.Trace.ring option array;  (* per-thread; all None when untraced *)
}

type node = int

let name = "NoRecl"

let create ~arena ~global:_ ~n_threads ~hazards:_ ~retire_threshold:_
    ~epoch_freq:_ =
  {
    arena;
    counters = Obs.Counters.create ~shards:(max 1 n_threads);
    trs = Array.make (max 1 n_threads) None;
  }

let set_trace t trace =
  Array.iteri (fun tid _ -> t.trs.(tid) <- Some (Obs.Trace.ring trace ~tid)) t.trs

let emit t ~tid k ~slot ~v1 ~v2 ~epoch =
  match t.trs.(tid) with
  | None -> ()
  | Some r -> Obs.Trace.emit r k ~slot ~v1 ~v2 ~epoch

let begin_op _ ~tid:_ = ()
let end_op _ ~tid:_ = ()
let protect _ ~tid:_ ~slot:_ read = read ()
let protect_read _ ~tid:_ ~slot:_ field = Access.get field

let alloc t ~tid ~level ~key =
  let c = t.counters in
  let i =
    match Arena.fresh t.arena ~level with
    | i ->
        Obs.Counters.incr c ~shard:tid Obs.Event.Arena_fresh;
        i
    | exception Arena.Exhausted ->
        Obs.Counters.incr c ~shard:tid Obs.Event.Arena_exhausted;
        raise Arena.Exhausted
  in
  Obs.Counters.incr c ~shard:tid Obs.Event.Alloc;
  let n = Arena.get t.arena i in
  n.Node.key <- key;
  emit t ~tid Obs.Trace.Alloc ~slot:i ~v1:0 ~v2:0 ~epoch:0;
  i

let protect_own _ ~tid:_ ~slot:_ _i = ()

let transfer _ ~tid:_ ~src:_ ~dst:_ = ()

let dealloc t ~tid i =
  emit t ~tid Obs.Trace.Dealloc ~slot:i ~v1:0 ~v2:0 ~epoch:0;
  Obs.Counters.incr t.counters ~shard:tid Obs.Event.Dealloc

let retire t ~tid i =
  emit t ~tid Obs.Trace.Retire ~slot:i ~v1:0 ~v2:0 ~epoch:0;
  Obs.Counters.incr t.counters ~shard:tid Obs.Event.Retire
let stats t = Obs.Counters.snapshot t.counters
let freed t = Obs.Counters.read t.counters Obs.Event.Reclaim

let unreclaimed t =
  Obs.Counters.read t.counters Obs.Event.Retire
  - Obs.Counters.read t.counters Obs.Event.Reclaim
