(** The common interface of the conservative safe-memory-reclamation
    schemes the paper evaluates VBR against (§5): NoRecl, EBR, HP, HE and
    IBR. Data structures are written once as functors over {!S} and get
    all five backends for free.

    The protocol expected from data-structure code, per operation:
    + [begin_op] before touching shared memory;
    + every load of a shared pointer field goes through {!S.protect},
      giving the scheme a chance to publish a hazard/era and validate it;
    + [retire] on nodes after their final unlink;
    + [end_op] when the operation returns (clears hazards / reservations).

    Slot indices, packed words and node fields are those of {!Memsim}. *)

module type S = sig
  type t

  val name : string
  (** Short scheme name as used in the paper's plots (e.g. "EBR"). *)

  val create :
    arena:Memsim.Arena.t ->
    global:Memsim.Global_pool.t ->
    n_threads:int ->
    hazards:int ->
    retire_threshold:int ->
    epoch_freq:int ->
    t
  (** [create ~arena ~global ~n_threads ~hazards ~retire_threshold
      ~epoch_freq] builds an instance.
      [hazards] is the number of protection slots each thread may use
      (pointer-based schemes only; 3 for lists, [2*max_level + 2] for
      skiplists). [retire_threshold] is the retired-list length that
      triggers a reclamation scan. [epoch_freq] is the number of
      allocations between global epoch/era advances (EBR/HE/IBR). *)

  val begin_op : t -> tid:int -> unit
  val end_op : t -> tid:int -> unit

  val protect : t -> tid:int -> slot:int -> (unit -> Memsim.Packed.t) -> Memsim.Packed.t
  (** [protect t ~tid ~slot read] returns a packed word obtained from
      [read ()] whose index component is protected from reclamation until
      the slot is reused or [end_op]. [read] must be an idempotent load of
      the same shared field; it is re-invoked until validation succeeds.
      Epoch-based schemes return [read ()] unchanged. *)

  val protect_own : t -> tid:int -> slot:int -> int -> unit
  (** Unconditionally publish protection for a node the caller knows is
      not yet retired (typically its own node around the publishing CAS,
      e.g. a skiplist inserter that keeps linking upper levels after the
      bottom-level link made the node deletable by others). No validation
      loop is needed because a not-yet-retired node cannot have been
      missed by a reclamation scan. *)

  val transfer : t -> tid:int -> src:int -> dst:int -> unit
  (** Copy the protection held in slot [src] to slot [dst] (hand-over-hand
      traversal advancing [curr] into [pred]). No-op for schemes without
      per-slot protection. *)

  val alloc : t -> tid:int -> level:int -> key:int -> int
  (** A node ready for insertion: key set, next words NULL and unmarked,
      birth era stamped where the scheme needs one.
      @raise Memsim.Arena.Exhausted when the simulated heap is full. *)

  val dealloc : t -> tid:int -> int -> unit
  (** Return a node that was allocated but never published (its insertion
      CAS failed), so it can be reused immediately — it was never shared,
      so no grace period is needed. *)

  val retire : t -> tid:int -> int -> unit
  (** Announce that the node was unlinked for the last time. The scheme
      decides when the slot really returns to the pools. *)

  val stats : t -> Obs.Counters.snapshot
  (** Racy merged snapshot of the scheme's event counters (one padded
      shard per thread; see {!Obs.Counters}). Every backend counts the
      protocol events ([Alloc]/[Dealloc]/[Retire]/[Reclaim]), its
      protection retries and epoch/era advances, and — through the shards
      it hands to {!Memsim.Pool} — the allocator events underneath. *)

  val freed : t -> int
  (** Total slots returned to the pools so far: the [Reclaim] counter
      (stats; racy). *)

  val unreclaimed : t -> int
  (** Retired slots not yet returned to the pools: [Retire] minus
      [Reclaim] (stats; racy). This is the robustness metric: a stalled
      thread makes it grow without bound under EBR but not under HP. *)
end
