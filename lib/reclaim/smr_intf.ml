(** The capability signatures of every safe-memory-reclamation backend in
    this repository.

    All backends share {!CORE} — lifecycle (create/alloc/dealloc/retire)
    plus observability (stats/freed/unreclaimed) — and add exactly one
    *access capability* describing how data-structure code may read shared
    memory under them:

    - {!GUARDED}: the conservative plane (NoRecl, EBR, HP, HE, IBR). Every
      load of a shared pointer goes through a protect/validate call and
      operations are bracketed by [begin_op]/[end_op]; a node named by a
      published guard is never reclaimed.
    - {!OPTIMISTIC}: VBR's Figure-1 plane. Reads are unprotected but
      epoch-validated after the fact; a stale read raises [Rollback],
      which the [checkpoint] combinator catches to re-run the operation;
      writes are versioned CASes that fail on any reincarnated node.

    The two capabilities differ in their node identity: a guarded scheme
    hands out bare slot indices (protection makes the index stable), while
    an optimistic scheme hands out (index, birth-epoch) pairs — the birth
    is the part of the identity that survives recycling.

    {!backend} packs one scheme of either capability as a first-class
    module, so harness code can enumerate the whole scheme family from one
    table (see {!Harness.Registry}). *)

(** Shared by every scheme: construction, the node lifecycle, and the
    observability plane. [node] is the scheme's node identity — what a
    structure stores and passes back to [retire]. *)
module type CORE = sig
  type t

  type node
  (** The scheme's node identity: [int] (a slot index) for guarded
      schemes, [int * int] (index, birth epoch) for optimistic ones. *)

  val name : string
  (** Short scheme name as used in the paper's plots (e.g. "EBR"). *)

  val create :
    arena:Memsim.Arena.t ->
    global:Memsim.Global_pool.t ->
    n_threads:int ->
    hazards:int ->
    retire_threshold:int ->
    epoch_freq:int ->
    t
  (** [create ~arena ~global ~n_threads ~hazards ~retire_threshold
      ~epoch_freq] builds an instance.
      [hazards] is the number of protection slots each thread may use
      (pointer-based schemes only; 3 for lists, [2*max_level + 2] for
      skiplists). [retire_threshold] is the retired-list length that
      triggers a reclamation scan (for VBR: the batched recycle, §4.1).
      [epoch_freq] is the number of allocations between global epoch/era
      advances (EBR/HE/IBR; ignored by schemes without an allocation-driven
      clock). *)

  val set_trace : t -> Obs.Trace.t -> unit
  (** Attach a lifecycle trace (one ring per thread; see {!Obs.Trace}):
      every subsequent alloc/dealloc/retire/reclaim, guard transition,
      epoch advance and (for VBR) checkpoint/rollback emits an event on
      the acting thread's ring, following the emission-placement contract
      documented in {!Obs.Trace}. Call once, before any operation runs —
      attaching is not synchronised against concurrent workers. When
      never called, every hook is a single match on an immediate [None],
      so Figure-2 numbers are unaffected. *)

  val alloc : t -> tid:int -> level:int -> key:int -> node
  (** A node ready for insertion: key set, next words NULL and unmarked,
      birth era/epoch stamped where the scheme needs one.
      @raise Memsim.Arena.Exhausted when the simulated heap is full. *)

  val dealloc : t -> tid:int -> node -> unit
  (** Return a node that was allocated but never published (its insertion
      CAS failed), so it can be reused immediately — it was never shared,
      so no grace period is needed. *)

  val retire : t -> tid:int -> node -> unit
  (** Announce that the node was unlinked for the last time. The scheme
      decides when the slot really returns to the pools. *)

  val stats : t -> Obs.Counters.snapshot
  (** Racy merged snapshot of the scheme's event counters (one padded
      shard per thread; see {!Obs.Counters}). Every backend counts the
      protocol events ([Alloc]/[Dealloc]/[Retire]/[Reclaim]), its
      protection retries or rollbacks, epoch/era advances, and — through
      the shards it hands to {!Memsim.Pool} — the allocator events
      underneath. *)

  val freed : t -> int
  (** Total slots returned to the pools so far: the [Reclaim] counter
      (stats; racy). *)

  val unreclaimed : t -> int
  (** Retired slots not yet returned to the pools: [Retire] minus
      [Reclaim] (stats; racy). This is the robustness metric: a stalled
      thread makes it grow without bound under EBR but not under HP or
      VBR. *)
end

(** The conservative access capability (NoRecl, EBR, HP, HE, IBR): data
    structures are written once as functors over this signature and get
    all five backends for free.

    The protocol expected from data-structure code, per operation:
    + [begin_op] before touching shared memory;
    + every load of a shared pointer field goes through {!GUARDED.protect},
      giving the scheme a chance to publish a hazard/era and validate it;
    + [retire] on nodes after their final unlink;
    + [end_op] when the operation returns (clears hazards / reservations).

    Slot indices, packed words and node fields are those of {!Memsim}. *)
module type GUARDED = sig
  include CORE with type node = int

  val begin_op : t -> tid:int -> unit
  val end_op : t -> tid:int -> unit

  val protect :
    t -> tid:int -> slot:int -> (unit -> Memsim.Packed.t) -> Memsim.Packed.t
  (** [protect t ~tid ~slot read] returns a packed word obtained from
      [read ()] whose index component is protected from reclamation until
      the slot is reused or [end_op]. [read] must be an idempotent load of
      the same shared field; it is re-invoked until validation succeeds.
      Epoch-based schemes return [read ()] unchanged. *)

  val protect_read :
    t -> tid:int -> slot:int -> Memsim.Packed.t Atomic.t -> Memsim.Packed.t
  (** [protect_read t ~tid ~slot field] is
      [protect t ~tid ~slot (fun () -> Memsim.Access.get field)] without
      the closure: the scheme loads the shared word itself, so a traversal
      hop allocates nothing. Semantically identical to {!protect}. *)

  val protect_own : t -> tid:int -> slot:int -> int -> unit
  (** Unconditionally publish protection for a node the caller knows is
      not yet retired (typically its own node around the publishing CAS,
      e.g. a skiplist inserter that keeps linking upper levels after the
      bottom-level link made the node deletable by others). No validation
      loop is needed because a not-yet-retired node cannot have been
      missed by a reclamation scan. *)

  val transfer : t -> tid:int -> src:int -> dst:int -> unit
  (** Copy the protection held in slot [src] to slot [dst] (hand-over-hand
      traversal advancing [curr] into [pred]). No-op for schemes without
      per-slot protection. *)
end

module type S = GUARDED
(** Backward-compatible alias: the original scheme signature, now the
    guarded capability. *)

(** The optimistic access capability — VBR's Figure-1 protocol (§4).
    Nodes are (index, birth-epoch) pairs; reads validate the global epoch
    after the load and raise [Rollback] on movement; updates are versioned
    CASes whose expected word encodes the target's birth, so a CAS on a
    reincarnated node must fail.

    Per-operation protocol: wrap the operation body in {!checkpoint};
    perform every shared read through the epoch-validated methods; after a
    rollback-unsafe CAS (a linearization point), open an inner
    [checkpoint] over the remainder so a rollback cannot cross back over
    it. *)
module type OPTIMISTIC = sig
  include CORE with type node = int * int

  exception Rollback
  (** Raised by the read/alloc/retire methods when the global epoch moved
      since the thread's last checkpoint, i.e. a read value may be stale.
      Caught by {!checkpoint}; user code should let it propagate. *)

  type ctx
  (** A per-thread context: the thread's epoch cache, its local allocation
      pool and retired list. Must only be used by its owning thread. *)

  val ctx : t -> tid:int -> ctx
  (** The context of thread [tid] (0-based). *)

  val scratch : ctx -> int array
  (** The context's per-thread scratch plane (8 slots): hot paths that
      would otherwise return a tuple per call (a find's pred/curr/key)
      write their components here instead — zero allocation. Contents
      are only meaningful between a writer and the immediately
      following reader on the same thread. *)

  (** {2 Checkpoints (§4.2.1)} *)

  val checkpoint : ctx -> (unit -> 'a) -> 'a
  (** [checkpoint c f] installs a checkpoint and runs [f]. On {!Rollback},
      it performs the Appendix-B duties (returning nodes allocated since
      the checkpoint to the allocation pool), refreshes the thread's epoch
      cache, and re-runs [f]. *)

  val checkpoint2 : ctx -> (ctx -> 'a -> 'b -> 'r) -> 'a -> 'b -> 'r
  (** [checkpoint2 c f a b] is [checkpoint c (fun () -> f c a b)] without
      the closure: when [f] is a top-level function and the arguments are
      immediates, the call allocates nothing — operation hot paths use
      this. *)

  val checkpoint3 : ctx -> (ctx -> 'a -> 'b -> 'c -> 'r) -> 'a -> 'b -> 'c -> 'r
  (** Three-argument sibling of {!checkpoint2} for operation bodies whose
      state is a few scalars (e.g. structure + tid + key). *)

  val refresh_epoch : ctx -> unit
  (** Re-read the global epoch into the thread's cache. [checkpoint] does
      this automatically; exposed for operations that install a checkpoint
      mid-flight without a combinator. *)

  val validate_epoch : ctx -> unit
  (** Raise {!Rollback} if the global epoch moved since the last
      checkpoint — the check every read method performs, exposed for code
      that must revalidate just before a CAS whose arguments were read
      earlier. *)

  val commit_alloc : ctx -> int -> unit
  (** Tell the context that the node with this index became reachable (its
      insertion CAS succeeded), so a later rollback must not recycle it.
      Call immediately after the successful publishing CAS, before any
      further method. *)

  (** {2 Birth-stamped reads (Figure 1, lines 17–29)}

      [lvl] selects the mutable next field (tower level); list code uses
      the default 0. *)

  val get_next : ctx -> ?lvl:int -> int -> int * int
  (** [(successor index, successor birth)] of the given node at level
      [lvl], unmarked. Raises {!Rollback} if the epoch changed (possible
      stale read). *)

  val get_next_word : ctx -> ?lvl:int -> int -> int * int * bool
  (** Like {!get_next} but also returns whether the next word was marked;
      same validation. *)

  val get_next_packed : ctx -> lvl:int -> int -> Memsim.Packed.t
  (** Allocation-free fusion of {!get_next} and {!get_next_word}: the
      result word's index is the successor slot, its version the
      successor's birth epoch, and its mark bit the node's own mark — one
      immediate [int], so a traversal hop allocates nothing. [lvl] is a
      required label (an optional argument would box). Same validation as
      {!get_next}. *)

  val get_next_raw : ctx -> lvl:int -> int -> Memsim.Packed.t
  (** The stored next word, validated, as-is — the cheapest hop. The raw
      version field is [max] of the linker's and successor's births (the
      {!update} encoding), NOT the successor's birth, so callers must
      consume only [Packed.index] and [Packed.is_marked] of the result.
      For read-only traversals that never CAS. *)

  val get_key : ctx -> int -> int
  (** Raises {!Rollback} if the epoch changed. *)

  val get_birth : ctx -> int -> int
  (** The node's current birth epoch, validated. Pairs with
      {!get_next_raw}: a CAS-bound traversal can hop on raw words and
      recompute the births it actually needs only at its stopping point.
      Raises {!Rollback} if the epoch changed. *)

  val is_marked : ctx -> ?lvl:int -> int -> birth:int -> bool
  (** Never rolls back: a birth-epoch mismatch means the node was
      certainly removed, so the answer TRUE is exact. *)

  val read_birth : t -> int -> int
  (** Birth epoch of a slot; 0 for NULL. Used when capturing entry points
      and when certifying an edge after the fact. *)

  val read_retire : t -> int -> int
  (** Current retire epoch of a slot ([Memsim.Node.no_epoch] if
      unretired). Together with {!read_birth}, certifies after the fact
      that a node was not mid-recycle at some earlier instant. *)

  val read_level : t -> int -> int
  (** Tower height of a slot. Fixed at slot creation (type preservation),
      so even a stale read is exact. *)

  (** {2 Versioned CASes (Figure 1, lines 30–39)} *)

  val update :
    ctx ->
    ?lvl:int ->
    int ->
    birth:int ->
    expected:int ->
    expected_birth:int ->
    new_:int ->
    new_birth:int ->
    bool
  (** Versioned CAS of an unmarked next word from [expected] to [new_].
      Succeeds iff the node is unreclaimed, unmarked and still points to
      [expected]. *)

  val mark : ctx -> ?lvl:int -> int -> birth:int -> bool
  (** Set the mark bit of the node's next word without changing the
      pointer or its version. Succeeds iff the node is unreclaimed and was
      unmarked. *)

  val refresh_next :
    ctx -> ?lvl:int -> int -> birth:int -> new_:int -> new_birth:int -> bool
  (** Redirect a node's next word to [new_] from *whatever it currently
      holds* (raw expected). Only for fields that are not yet reachable at
      this level (a skiplist inserter's own tower), where the current
      target may be recycled and no consistent (expected, birth) pair
      exists. Fails if the node was re-allocated or the word is marked. *)

  val heal_stale_edge :
    ctx -> ?lvl:int -> int -> birth:int -> to_:int -> to_birth:int -> bool
  (** Repair for a *garbage edge*: a next word whose version is smaller
      than its target slot's current birth epoch, which no versioned CAS
      can ever remove. Redirects the word, raw, to the caller-supplied
      never-retired node [to_] (a sentinel). Returns whether a repair was
      performed. *)

  (** {2 Entry-point words (§3.1)}

      A structure's entry points — a queue's head and tail, a stack's top
      — are mutable shared words living outside any node, represented as
      packed words whose version is the referenced node's birth epoch. *)

  val make_root : init:int -> init_birth:int -> int Atomic.t
  (** A root word referencing node [init] (with its birth), or NULL when
      [init = 0]. *)

  val read_root : ctx -> int Atomic.t -> int * int
  (** [(index, birth)] of the referenced node, read atomically.
      Epoch-validated; raises {!Rollback} like the other read methods. *)

  val read_root_packed : ctx -> int Atomic.t -> Memsim.Packed.t
  (** Allocation-free {!read_root}: the raw validated root word — its
      index and version components are the node and its birth. *)

  val cas_root :
    ctx ->
    int Atomic.t ->
    expected:int ->
    expected_birth:int ->
    new_:int ->
    new_birth:int ->
    bool
  (** Versioned CAS of a root word. Never rolls back. *)

  (** {2 Extra observability} *)

  val epoch_advances : t -> int
  (** Global epoch increments so far. The §5.2 discussion attributes VBR's
      win over EBR/HE/IBR to this staying small. *)

  val arena : t -> Memsim.Arena.t
  (** The instance's arena (quiescent structure walks in tests). *)
end

(** One scheme of either capability, packed for table-driven harness code.
    The whole family the evaluation uses is an enumerable list of these
    (see {!Harness.Registry}). *)
type backend =
  | Guarded of (module GUARDED)
  | Optimistic of (module OPTIMISTIC)
