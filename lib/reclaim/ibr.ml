open Memsim

let inactive = max_int

type thread_state = {
  lower : int Atomic.t;
  upper : int Atomic.t;
  pool : Pool.t;
  obs : Obs.Counters.shard;
  mutable retired : int list;
  mutable retired_len : int;
  (* Adaptive scan trigger: scan when the retired list doubles past what
     survived the previous scan, so scan work stays amortized O(1) per
     retirement even while a descheduled thread pins the horizon (an
     oversubscription regime the paper's testbed never enters). *)
  mutable scan_trigger : int;
  mutable alloc_ticks : int;
}

type t = {
  arena : Arena.t;
  epoch : int Atomic.t;
  threads : thread_state array;
  counters : Obs.Counters.t;
  retire_threshold : int;
  epoch_freq : int;
}

type node = int

let name = "IBR"

let create ~arena ~global ~n_threads ~hazards:_ ~retire_threshold ~epoch_freq
    =
  let counters = Obs.Counters.create ~shards:(max 1 n_threads) in
  {
    arena;
    epoch = Atomic.make 1;
    threads =
      Array.init n_threads (fun tid ->
          let obs = Obs.Counters.shard counters tid in
          {
            lower = Atomic.make inactive;
            upper = Atomic.make 0;
            pool = Pool.create ~stats:obs arena global ~spill:4096;
            obs;
            retired = [];
            retired_len = 0;
            scan_trigger = max 1 retire_threshold;
            alloc_ticks = 0;
          });
    counters;
    retire_threshold = max 1 retire_threshold;
    epoch_freq = max 1 epoch_freq;
  }

let begin_op t ~tid =
  let ts = t.threads.(tid) in
  let e = Atomic.get t.epoch in
  Atomic.set ts.upper e;
  Atomic.set ts.lower e

let end_op t ~tid =
  let ts = t.threads.(tid) in
  Atomic.set ts.lower inactive;
  Atomic.set ts.upper 0

(* 2GE read barrier: re-read the field until the global epoch is stable,
   extending the reservation's upper bound on every change. *)
let protect t ~tid ~slot:_ read =
  let ts = t.threads.(tid) in
  let rec loop last =
    let w = read () in
    let e = Atomic.get t.epoch in
    if e = last then w
    else begin
      Atomic.set ts.upper e;
      Obs.Counters.shard_incr ts.obs Obs.Event.Protect_retry;
      loop e
    end
  in
  loop (Atomic.get ts.upper)

let reset_node t i ~key =
  let n = Arena.get t.arena i in
  n.Node.key <- key;
  Atomic.set n.Node.birth (Atomic.get t.epoch);
  Atomic.set n.Node.retire Node.no_epoch;
  Array.iter (fun w -> Atomic.set w Packed.null) n.Node.next

let alloc t ~tid ~level ~key =
  let ts = t.threads.(tid) in
  ts.alloc_ticks <- ts.alloc_ticks + 1;
  if ts.alloc_ticks mod t.epoch_freq = 0 then begin
    Atomic.incr t.epoch;
    Obs.Counters.shard_incr ts.obs Obs.Event.Epoch_advance
  end;
  let i = Pool.take ts.pool ~level in
  Obs.Counters.shard_incr ts.obs Obs.Event.Alloc;
  reset_node t i ~key;
  (* Cover our own allocation with the reservation so the node stays
     pinned if another thread retires it right after we publish it. *)
  let e = Atomic.get t.epoch in
  if e > Atomic.get ts.upper then Atomic.set ts.upper e;
  i

let protect_own _ ~tid:_ ~slot:_ _i = ()

let transfer _ ~tid:_ ~src:_ ~dst:_ = ()

let dealloc t ~tid i =
  let ts = t.threads.(tid) in
  Obs.Counters.shard_incr ts.obs Obs.Event.Dealloc;
  Pool.put ts.pool i

(* Lifetime [b, r] conflicts with reservation [l, u] iff b <= u && l <= r. *)
let pinned t ~birth ~retire =
  Array.exists
    (fun ts ->
      let l = Atomic.get ts.lower in
      let u = Atomic.get ts.upper in
      l <> inactive && birth <= u && l <= retire)
    t.threads

let scan t ts =
  let keep, free =
    List.partition
      (fun i ->
        let n = Arena.get t.arena i in
        pinned t ~birth:(Atomic.get n.Node.birth)
          ~retire:(Atomic.get n.Node.retire))
      ts.retired
  in
  ts.retired <- keep;
  ts.retired_len <- List.length keep;
  List.iter
    (fun i ->
      Obs.Counters.shard_incr ts.obs Obs.Event.Reclaim;
      Pool.put ts.pool i)
    free

let retire t ~tid i =
  let ts = t.threads.(tid) in
  Atomic.set (Arena.get t.arena i).Node.retire (Atomic.get t.epoch);
  ts.retired <- i :: ts.retired;
  ts.retired_len <- ts.retired_len + 1;
  Obs.Counters.shard_incr ts.obs Obs.Event.Retire;
  if ts.retired_len >= ts.scan_trigger then begin
    scan t ts;
    ts.scan_trigger <- max t.retire_threshold (2 * ts.retired_len)
  end

let stats t = Obs.Counters.snapshot t.counters
let freed t = Obs.Counters.read t.counters Obs.Event.Reclaim

let unreclaimed t =
  Obs.Counters.read t.counters Obs.Event.Retire
  - Obs.Counters.read t.counters Obs.Event.Reclaim
