open Memsim

let inactive = max_int

type thread_state = {
  lower : int Atomic.t;
  upper : int Atomic.t;
  pool : Pool.t;
  obs : Obs.Counters.shard;
  mutable retired : int list;
  mutable retired_len : int;
  (* Adaptive scan trigger: scan when the retired list doubles past what
     survived the previous scan, so scan work stays amortized O(1) per
     retirement even while a descheduled thread pins the horizon (an
     oversubscription regime the paper's testbed never enters). *)
  mutable scan_trigger : int;
  (* Allocations until the next era/epoch advance: same cadence as the
     old [alloc_ticks mod epoch_freq] but without a hardware division
     on every allocation. *)
  mutable advance_countdown : int;
  mutable tr : Obs.Trace.ring option;
}

type t = {
  arena : Arena.t;
  epoch : int Atomic.t;
  threads : thread_state array;
  counters : Obs.Counters.t;
  retire_threshold : int;
  epoch_freq : int;
}

type node = int

let name = "IBR"

let create ~arena ~global ~n_threads ~hazards:_ ~retire_threshold ~epoch_freq
    =
  let counters = Obs.Counters.create ~shards:(max 1 n_threads) in
  {
    arena;
    epoch = Padded.atomic 1;
    threads =
      Array.init n_threads (fun tid ->
          let obs = Obs.Counters.shard counters tid in
          {
            lower = Padded.atomic inactive;
            upper = Padded.atomic 0;
            pool = Pool.create ~stats:obs ~shard:tid arena global ~spill:4096;
            obs;
            retired = [];
            retired_len = 0;
            scan_trigger = max 1 retire_threshold;
            advance_countdown = max 1 epoch_freq;
            tr = None;
          });
    counters;
    retire_threshold = max 1 retire_threshold;
    epoch_freq = max 1 epoch_freq;
  }

let set_trace t trace =
  Array.iteri
    (fun tid ts ->
      let r = Obs.Trace.ring trace ~tid in
      ts.tr <- Some r;
      Pool.set_trace ts.pool r)
    t.threads

let emit ts k ~slot ~v1 ~v2 ~epoch =
  match ts.tr with
  | None -> ()
  | Some r -> Obs.Trace.emit r k ~slot ~v1 ~v2 ~epoch

(* One interval reservation per thread: guard slot id 0. Acquires are
   emitted after the reservation stores are visible, the release before
   they are cleared (Obs.Trace contract); extending the upper bound
   re-emits the acquire with the wider interval. *)
let begin_op t ~tid =
  let ts = t.threads.(tid) in
  let e = Access.get t.epoch in
  Access.set ts.upper e;
  Access.set ts.lower e;
  emit ts Obs.Trace.Guard_acquire ~slot:0 ~v1:e ~v2:e ~epoch:0

let end_op t ~tid =
  let ts = t.threads.(tid) in
  emit ts Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:(-1);
  Access.set ts.lower inactive;
  Access.set ts.upper 0

(* 2GE read barrier: re-read the field until the global epoch is stable,
   extending the reservation's upper bound on every change. *)
let note_extended ts =
  match ts.tr with
  | None -> ()
  | Some r ->
      Obs.Trace.emit r Obs.Trace.Guard_acquire ~slot:0
        ~v1:(Atomic.get ts.lower) ~v2:(Atomic.get ts.upper) ~epoch:0

let protect t ~tid ~slot:_ read =
  let ts = t.threads.(tid) in
  let rec loop extended last =
    let w = read () in
    let e = Access.get t.epoch in
    if e = last then begin
      if extended then note_extended ts;
      w
    end
    else begin
      Access.set ts.upper e;
      Obs.Counters.shard_incr ts.obs Obs.Event.Protect_retry;
      loop true e
    end
  in
  loop false (Atomic.get ts.upper)

(* [protect] with the load inlined: traversals call this once per hop, so
   the closure the [read] thunk would allocate is worth eliding. *)
let protect_read t ~tid ~slot:_ field =
  let ts = t.threads.(tid) in
  let rec loop extended last =
    let w = Access.get field in
    let e = Access.get t.epoch in
    if e = last then begin
      if extended then note_extended ts;
      w
    end
    else begin
      Access.set ts.upper e;
      Obs.Counters.shard_incr ts.obs Obs.Event.Protect_retry;
      loop true e
    end
  in
  loop false (Atomic.get ts.upper)

let reset_node t i ~key =
  let n = Arena.get t.arena i in
  n.Node.key <- key;
  Access.set n.Node.birth (Access.get t.epoch);
  Access.set n.Node.retire Node.no_epoch;
  Array.iter (fun w -> Access.set w Packed.null) n.Node.next

let alloc t ~tid ~level ~key =
  let ts = t.threads.(tid) in
  ts.advance_countdown <- ts.advance_countdown - 1;
  if ts.advance_countdown <= 0 then begin
    ts.advance_countdown <- t.epoch_freq;
    (* fetch_and_add rather than incr so the traced old -> new transition
       is unique per advance. *)
    let old = Access.fetch_and_add t.epoch 1 in
    Obs.Counters.shard_incr ts.obs Obs.Event.Epoch_advance;
    emit ts Obs.Trace.Epoch_advance ~slot:0 ~v1:old ~v2:(old + 1)
      ~epoch:(old + 1)
  end;
  let i = Pool.take ts.pool ~level in
  Obs.Counters.shard_incr ts.obs Obs.Event.Alloc;
  reset_node t i ~key;
  (* Cover our own allocation with the reservation so the node stays
     pinned if another thread retires it right after we publish it. *)
  let e = Access.get t.epoch in
  if e > Atomic.get ts.upper then begin
    Access.set ts.upper e;
    note_extended ts
  end;
  (match ts.tr with
  | None -> ()
  | Some r ->
      let b = Atomic.get (Arena.get t.arena i).Node.birth in
      Obs.Trace.emit r Obs.Trace.Alloc ~slot:i ~v1:b ~v2:0 ~epoch:b);
  i

let protect_own _ ~tid:_ ~slot:_ _i = ()

let transfer _ ~tid:_ ~src:_ ~dst:_ = ()

let dealloc t ~tid i =
  let ts = t.threads.(tid) in
  Obs.Counters.shard_incr ts.obs Obs.Event.Dealloc;
  emit ts Obs.Trace.Dealloc ~slot:i ~v1:0 ~v2:0 ~epoch:0;
  Pool.put ts.pool i

(* Lifetime [b, r] conflicts with reservation [l, u] iff b <= u && l <= r. *)
let pinned t ~birth ~retire =
  Array.exists
    (fun ts ->
      let l = Access.get ts.lower in
      let u = Access.get ts.upper in
      l <> inactive && birth <= u && l <= retire)
    t.threads

let scan t ts =
  let keep, keep_len, free =
    Retired.partition_keep
      ~keep:(fun i ->
        let n = Arena.get t.arena i in
        pinned t ~birth:(Atomic.get n.Node.birth)
          ~retire:(Atomic.get n.Node.retire))
      ts.retired
  in
  ts.retired <- keep;
  ts.retired_len <- keep_len;
  List.iter
    (fun i ->
      Obs.Counters.shard_incr ts.obs Obs.Event.Reclaim;
      (match ts.tr with
      | None -> ()
      | Some r ->
          let n = Arena.get t.arena i in
          Obs.Trace.emit r Obs.Trace.Reclaim ~slot:i
            ~v1:(Atomic.get n.Node.birth)
            ~v2:(Atomic.get n.Node.retire) ~epoch:0);
      Pool.put ts.pool i)
    free

let retire t ~tid i =
  let ts = t.threads.(tid) in
  let n = Arena.get t.arena i in
  let re = Access.get t.epoch in
  (* Emitted before the retire stamp becomes visible (Obs.Trace
     contract): a reservation logged after this event postdates the
     unlink. *)
  (match ts.tr with
  | None -> ()
  | Some r ->
      Obs.Trace.emit r Obs.Trace.Retire ~slot:i
        ~v1:(Atomic.get n.Node.birth) ~v2:re ~epoch:re);
  Access.set n.Node.retire re;
  ts.retired <- i :: ts.retired;
  ts.retired_len <- ts.retired_len + 1;
  Obs.Counters.shard_incr ts.obs Obs.Event.Retire;
  if ts.retired_len >= ts.scan_trigger then begin
    scan t ts;
    ts.scan_trigger <- max t.retire_threshold (2 * ts.retired_len)
  end
  else if ts.retired_len >= t.retire_threshold then
    (* A per-op policy would have scanned here; amortized away. *)
    Obs.Counters.shard_incr ts.obs Obs.Event.Scan_skip

let stats t = Obs.Counters.snapshot t.counters
let freed t = Obs.Counters.read t.counters Obs.Event.Reclaim

let unreclaimed t =
  Obs.Counters.read t.counters Obs.Event.Retire
  - Obs.Counters.read t.counters Obs.Event.Reclaim
