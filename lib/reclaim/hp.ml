open Memsim

type thread_state = {
  hazards : int Atomic.t array;  (* 0 = empty slot *)
  pool : Pool.t;
  obs : Obs.Counters.shard;
  mutable retired : int list;
  mutable retired_len : int;
  (* Adaptive scan trigger (new with the batched-scan refactor: HP used
     to rescan on EVERY retire once the list reached the threshold,
     going quadratic whenever a stalled thread's hazards pinned nodes).
     Scan when the retired list doubles past what survived the previous
     scan, so scan work stays amortized O(1) per retirement. *)
  mutable scan_trigger : int;
  mutable tr : Obs.Trace.ring option;
}

type t = {
  arena : Arena.t;
  threads : thread_state array;
  counters : Obs.Counters.t;
  retire_threshold : int;
}

type node = int

let name = "HP"

let create ~arena ~global ~n_threads ~hazards ~retire_threshold ~epoch_freq:_
    =
  if hazards < 1 then invalid_arg "Hp.create: hazards < 1";
  let counters = Obs.Counters.create ~shards:(max 1 n_threads) in
  {
    arena;
    threads =
      Array.init n_threads (fun tid ->
          let obs = Obs.Counters.shard counters tid in
          {
            (* Each hazard slot padded to its own line: the owner stores
               per traversal hop while every scanning thread reads. *)
            hazards = Padded.atomic_array hazards 0;
            pool = Pool.create ~stats:obs ~shard:tid arena global ~spill:4096;
            obs;
            retired = [];
            retired_len = 0;
            scan_trigger = max 1 retire_threshold;
            tr = None;
          });
    counters;
    retire_threshold = max 1 retire_threshold;
  }

let set_trace t trace =
  Array.iteri
    (fun tid ts ->
      let r = Obs.Trace.ring trace ~tid in
      ts.tr <- Some r;
      Pool.set_trace ts.pool r)
    t.threads

let emit ts k ~slot ~v1 ~v2 ~epoch =
  match ts.tr with
  | None -> ()
  | Some r -> Obs.Trace.emit r k ~slot ~v1 ~v2 ~epoch

let begin_op _ ~tid:_ = ()

let end_op t ~tid =
  let ts = t.threads.(tid) in
  (* Release BEFORE the hazards are cleared (Obs.Trace contract):
     epoch = -1 releases every guard slot of this thread at once. *)
  emit ts Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:(-1);
  Array.iter (fun h -> Access.set h 0) ts.hazards

(* Publish-and-validate loop: once the source field is re-read with the
   same index after the hazard became visible, the node cannot have been
   recycled in between (retire happens only after the final unlink, which
   would have changed the field). *)
let protect t ~tid ~slot read =
  let ts = t.threads.(tid) in
  let h = ts.hazards.(slot) in
  (* The loop below overwrites guard slot [slot]; whatever it held stops
     protecting, so the release is emitted before the first store. The
     acquire is emitted only after a validated publish. *)
  emit ts Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:slot;
  let rec loop w =
    let i = Packed.index w in
    if i = 0 then begin
      Access.set h 0;
      w
    end
    else begin
      Access.set h i;
      let w' = read () in
      if Packed.index w' = i then begin
        emit ts Obs.Trace.Guard_acquire ~slot:i ~v1:0 ~v2:0 ~epoch:slot;
        w'
      end
      else begin
        Obs.Counters.shard_incr ts.obs Obs.Event.Protect_retry;
        loop w'
      end
    end
  in
  loop (read ())

(* [protect] with the load inlined: traversals call this once per hop, so
   the closure the [read] thunk would allocate is worth eliding. *)
let protect_read t ~tid ~slot field =
  let ts = t.threads.(tid) in
  let h = ts.hazards.(slot) in
  emit ts Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:slot;
  let rec loop w =
    let i = Packed.index w in
    if i = 0 then begin
      Access.set h 0;
      w
    end
    else begin
      Access.set h i;
      let w' = Access.get field in
      if Packed.index w' = i then begin
        emit ts Obs.Trace.Guard_acquire ~slot:i ~v1:0 ~v2:0 ~epoch:slot;
        w'
      end
      else begin
        Obs.Counters.shard_incr ts.obs Obs.Event.Protect_retry;
        loop w'
      end
    end
  in
  loop (Access.get field)

let reset_node arena i ~key =
  let n = Arena.get arena i in
  n.Node.key <- key;
  Access.set n.Node.retire Node.no_epoch;
  Array.iter (fun w -> Access.set w Packed.null) n.Node.next

let alloc t ~tid ~level ~key =
  let ts = t.threads.(tid) in
  let i = Pool.take ts.pool ~level in
  Obs.Counters.shard_incr ts.obs Obs.Event.Alloc;
  reset_node t.arena i ~key;
  emit ts Obs.Trace.Alloc ~slot:i ~v1:0 ~v2:0 ~epoch:0;
  i

let protect_own t ~tid ~slot i =
  let ts = t.threads.(tid) in
  emit ts Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:slot;
  Access.set ts.hazards.(slot) i;
  if i <> 0 then emit ts Obs.Trace.Guard_acquire ~slot:i ~v1:0 ~v2:0 ~epoch:slot

let transfer t ~tid ~src ~dst =
  let ts = t.threads.(tid) in
  emit ts Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:dst;
  let v = Atomic.get ts.hazards.(src) in
  Access.set ts.hazards.(dst) v;
  if v <> 0 then emit ts Obs.Trace.Guard_acquire ~slot:v ~v1:0 ~v2:0 ~epoch:dst

let dealloc t ~tid i =
  let ts = t.threads.(tid) in
  Obs.Counters.shard_incr ts.obs Obs.Event.Dealloc;
  emit ts Obs.Trace.Dealloc ~slot:i ~v1:0 ~v2:0 ~epoch:0;
  Pool.put ts.pool i

(* Recycle retired nodes held by no hazard slot of any thread. *)
let scan t ts =
  let module Iset = Set.Make (Int) in
  let hazard_set =
    Array.fold_left
      (fun acc other ->
        Array.fold_left
          (fun acc h ->
            let v = Access.get h in
            if v = 0 then acc else Iset.add v acc)
          acc other.hazards)
      Iset.empty t.threads
  in
  let keep, keep_len, free =
    Retired.partition_keep ~keep:(fun i -> Iset.mem i hazard_set) ts.retired
  in
  ts.retired <- keep;
  ts.retired_len <- keep_len;
  List.iter
    (fun i ->
      Obs.Counters.shard_incr ts.obs Obs.Event.Reclaim;
      emit ts Obs.Trace.Reclaim ~slot:i ~v1:0 ~v2:0 ~epoch:0;
      Pool.put ts.pool i)
    free

let retire t ~tid i =
  let ts = t.threads.(tid) in
  emit ts Obs.Trace.Retire ~slot:i ~v1:0 ~v2:0 ~epoch:0;
  ts.retired <- i :: ts.retired;
  ts.retired_len <- ts.retired_len + 1;
  Obs.Counters.shard_incr ts.obs Obs.Event.Retire;
  if ts.retired_len >= ts.scan_trigger then begin
    scan t ts;
    ts.scan_trigger <- max t.retire_threshold (2 * ts.retired_len)
  end
  else if ts.retired_len >= t.retire_threshold then
    (* The old per-op policy would have rescanned here. *)
    Obs.Counters.shard_incr ts.obs Obs.Event.Scan_skip

let stats t = Obs.Counters.snapshot t.counters
let freed t = Obs.Counters.read t.counters Obs.Event.Reclaim

let unreclaimed t =
  Obs.Counters.read t.counters Obs.Event.Retire
  - Obs.Counters.read t.counters Obs.Event.Reclaim
