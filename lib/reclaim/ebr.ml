open Memsim

(* A thread announces [quiescent] between operations. *)
let quiescent = max_int

type thread_state = {
  announce : int Atomic.t;
  pool : Pool.t;
  obs : Obs.Counters.shard;
  mutable retired : int list;  (* node indices; retire epoch is on the node *)
  mutable retired_len : int;
  (* Adaptive scan trigger: scan when the retired list doubles past what
     survived the previous scan, so scan work stays amortized O(1) per
     retirement even while a descheduled thread pins the horizon (an
     oversubscription regime the paper's testbed never enters). *)
  mutable scan_trigger : int;
  (* Adaptive advance cadence: a countdown of allocations until the next
     epoch-advance attempt. The reload period starts at [epoch_freq] and
     doubles whenever the advance CAS fails (another thread moved the
     epoch — this thread's clock duty is being covered), so under
     contention the per-thread CAS traffic on the epoch word decays
     geometrically instead of every thread hammering it every
     [epoch_freq] allocs. A successful CAS resets the period. *)
  mutable advance_countdown : int;
  mutable advance_period : int;
  mutable tr : Obs.Trace.ring option;
}

type t = {
  arena : Arena.t;
  epoch : int Atomic.t;
  threads : thread_state array;
  counters : Obs.Counters.t;
  retire_threshold : int;
  epoch_freq : int;
}

type node = int

let name = "EBR"

let create ~arena ~global ~n_threads ~hazards:_ ~retire_threshold ~epoch_freq =
  let counters = Obs.Counters.create ~shards:(max 1 n_threads) in
  {
    arena;
    (* Padded: the epoch word is read by every [begin_op] and CASed by
       every advance; the announce slots are scanned by every reclaimer
       while their owners store to them per op. *)
    epoch = Padded.atomic 1;
    threads =
      Array.init n_threads (fun tid ->
          let obs = Obs.Counters.shard counters tid in
          {
            announce = Padded.atomic quiescent;
            pool = Pool.create ~stats:obs ~shard:tid arena global ~spill:4096;
            obs;
            retired = [];
            retired_len = 0;
            scan_trigger = max 1 retire_threshold;
            advance_countdown = max 1 epoch_freq;
            advance_period = max 1 epoch_freq;
            tr = None;
          });
    counters;
    retire_threshold = max 1 retire_threshold;
    epoch_freq = max 1 epoch_freq;
  }

let set_trace t trace =
  Array.iteri
    (fun tid ts ->
      let r = Obs.Trace.ring trace ~tid in
      ts.tr <- Some r;
      Pool.set_trace ts.pool r)
    t.threads

let emit ts k ~slot ~v1 ~v2 ~epoch =
  match ts.tr with
  | None -> ()
  | Some r -> Obs.Trace.emit r k ~slot ~v1 ~v2 ~epoch

(* Guard acquire is emitted AFTER the announce store is visible, release
   BEFORE it is cleared: the offline checker may then treat any interval
   between the two events as genuinely protected (Obs.Trace contract). *)
let begin_op t ~tid =
  let ts = t.threads.(tid) in
  let e = Access.get t.epoch in
  Access.set ts.announce e;
  (* Interval guard [e, +inf): everything retired at or after the
     announced epoch is protected. *)
  emit ts Obs.Trace.Guard_acquire ~slot:0 ~v1:e ~v2:(-1) ~epoch:0

let end_op t ~tid =
  let ts = t.threads.(tid) in
  emit ts Obs.Trace.Guard_release ~slot:0 ~v1:0 ~v2:0 ~epoch:(-1);
  Access.set ts.announce quiescent

let protect _ ~tid:_ ~slot:_ read = read ()

(* The epoch announcement in [begin_op] already protects everything
   reachable; a protected read is a plain load, closure or not. *)
let protect_read _ ~tid:_ ~slot:_ field = Access.get field

(* Advance the global epoch unconditionally (the paper's "tuned" EBR):
   safety never depends on the advance — a node is freed only when its
   retire epoch precedes every announced epoch — so waiting for stragglers
   before advancing would only delay reclamation. Under oversubscription
   (more domains than cores) a wait-for-all policy starves: someone is
   always behind, the epoch freezes, and retire-list scans go quadratic. *)
let max_advance_period_factor = 64

let try_advance t ts =
  let cur = Access.get t.epoch in
  if Access.compare_and_set t.epoch cur (cur + 1) then begin
    Obs.Counters.shard_incr ts.obs Obs.Event.Epoch_advance;
    emit ts Obs.Trace.Epoch_advance ~slot:0 ~v1:cur ~v2:(cur + 1) ~epoch:(cur + 1);
    ts.advance_period <- t.epoch_freq
  end
  else begin
    (* Lost the race: someone else is advancing the clock, so back off
       (double the period, capped so a thread never goes fully silent). *)
    Obs.Counters.shard_incr ts.obs Obs.Event.Advance_skip;
    ts.advance_period <-
      min (2 * ts.advance_period) (t.epoch_freq * max_advance_period_factor)
  end;
  ts.advance_countdown <- ts.advance_period

let min_announced t =
  Array.fold_left
    (fun acc ts -> min acc (Access.get ts.announce))
    quiescent t.threads

(* Recycle every retired node whose retire epoch precedes all announced
   epochs: such a node was unlinked before any in-flight operation began. *)
let scan t ts =
  let horizon = min_announced t in
  let horizon = if horizon = quiescent then Access.get t.epoch + 1 else horizon in
  let keep, keep_len, free =
    Retired.partition_keep
      ~keep:(fun i -> Atomic.get (Arena.get t.arena i).Node.retire >= horizon)
      ts.retired
  in
  ts.retired <- keep;
  ts.retired_len <- keep_len;
  List.iter
    (fun i ->
      Obs.Counters.shard_incr ts.obs Obs.Event.Reclaim;
      (match ts.tr with
      | None -> ()
      | Some r ->
          Obs.Trace.emit r Obs.Trace.Reclaim ~slot:i ~v1:0
            ~v2:(Atomic.get (Arena.get t.arena i).Node.retire)
            ~epoch:0);
      Pool.put ts.pool i)
    free

let reset_node arena i ~key =
  let n = Arena.get arena i in
  n.Node.key <- key;
  Access.set n.Node.retire Node.no_epoch;
  Array.iter (fun w -> Access.set w Packed.null) n.Node.next

let alloc t ~tid ~level ~key =
  let ts = t.threads.(tid) in
  (* Countdown instead of [alloc_ticks mod epoch_freq]: same cadence in
     the uncontended case, no hardware division per alloc, and the
     reload period adapts (see [thread_state]). *)
  ts.advance_countdown <- ts.advance_countdown - 1;
  if ts.advance_countdown <= 0 then try_advance t ts;
  let i = Pool.take ts.pool ~level in
  Obs.Counters.shard_incr ts.obs Obs.Event.Alloc;
  reset_node t.arena i ~key;
  (match ts.tr with
  | None -> ()
  | Some r ->
      Obs.Trace.emit r Obs.Trace.Alloc ~slot:i ~v1:0 ~v2:0
        ~epoch:(Atomic.get t.epoch));
  i

let protect_own _ ~tid:_ ~slot:_ _i = ()

let transfer _ ~tid:_ ~src:_ ~dst:_ = ()

let dealloc t ~tid i =
  let ts = t.threads.(tid) in
  Obs.Counters.shard_incr ts.obs Obs.Event.Dealloc;
  emit ts Obs.Trace.Dealloc ~slot:i ~v1:0 ~v2:0 ~epoch:0;
  Pool.put ts.pool i

let retire t ~tid i =
  let ts = t.threads.(tid) in
  let re = Access.get t.epoch in
  (* Emitted before the retire stamp becomes visible: a guard logged
     after this event was provably announced after the unlink. *)
  emit ts Obs.Trace.Retire ~slot:i ~v1:0 ~v2:re ~epoch:re;
  Access.set (Arena.get t.arena i).Node.retire re;
  ts.retired <- i :: ts.retired;
  ts.retired_len <- ts.retired_len + 1;
  Obs.Counters.shard_incr ts.obs Obs.Event.Retire;
  if ts.retired_len >= ts.scan_trigger then begin
    try_advance t ts;
    scan t ts;
    ts.scan_trigger <- max t.retire_threshold (2 * ts.retired_len)
  end
  else if ts.retired_len >= t.retire_threshold then
    (* A per-op policy would have scanned here; the adaptive trigger
       amortized it away. *)
    Obs.Counters.shard_incr ts.obs Obs.Event.Scan_skip

let stats t = Obs.Counters.snapshot t.counters
let freed t = Obs.Counters.read t.counters Obs.Event.Reclaim

let unreclaimed t =
  Obs.Counters.read t.counters Obs.Event.Retire
  - Obs.Counters.read t.counters Obs.Event.Reclaim
