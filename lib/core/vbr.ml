open Memsim

exception Rollback

type ctx = {
  tid : int;
  arena : Arena.t;
  epoch : Epoch.t;
  retire_threshold : int;
  mutable my_e : int;
  pool : Pool.t;
  obs : Obs.Counters.shard;
  mutable retired : int list;
  mutable retired_len : int;
  (* Appendix B, type 1: nodes allocated since the last checkpoint that are
     not yet reachable. Recycled (not retired) on rollback. *)
  mutable pending : int list;
  (* Advance *attempts* from the alloc slow path; the Epoch_advance event
     counts only the successful ones. *)
  mutable epoch_bumps : int;
  (* Adaptive advance cadence: relaxation spins granted to other threads
     before this one CASes the epoch from the alloc slow path. Doubles on
     every advance this thread loses (someone else is moving the clock),
     halves when its own CAS wins. See [alloc_ctx]. *)
  mutable advance_backoff : int;
  (* Per-thread scratch for multi-value returns on hot paths: a
     traversal that found (pred, curr, ...) writes the components here
     instead of allocating a tuple per call. Single-owner (the ctx is
     per-thread), so plain int stores. *)
  scratch : int array;
  mutable tr : Obs.Trace.ring option;
}

type t = {
  arena : Arena.t;
  epoch : Epoch.t;
  ctxs : ctx array;
  counters : Obs.Counters.t;
}

let name = "VBR"

type node = int * int

let create_tuned ?(retire_threshold = 64) ?(spill = 4096) ~arena ~global
    ~n_threads () =
  if n_threads < 1 then invalid_arg "Vbr.create: n_threads < 1";
  if retire_threshold < 0 then invalid_arg "Vbr.create: retire_threshold < 0";
  let epoch = Epoch.create () in
  let counters = Obs.Counters.create ~shards:(max 1 n_threads) in
  let ctxs =
    Array.init n_threads (fun tid ->
        let obs = Obs.Counters.shard counters tid in
        {
          tid;
          arena;
          epoch;
          retire_threshold;
          my_e = 1;
          pool = Pool.create ~stats:obs ~shard:tid arena global ~spill;
          obs;
          retired = [];
          retired_len = 0;
          pending = [];
          epoch_bumps = 0;
          advance_backoff = 0;
          scratch = Array.make 8 0;
          tr = None;
        })
  in
  { arena; epoch; ctxs; counters }

(* The CORE-shaped constructor: [hazards] is meaningless under VBR (no
   per-slot protection) and the epoch advances from the alloc slow path
   rather than on an allocation budget, so [epoch_freq] is ignored too. *)
let create ~arena ~global ~n_threads ~hazards:_ ~retire_threshold ~epoch_freq:_
    =
  create_tuned ~retire_threshold ~arena ~global ~n_threads ()

let ctx (t : t) ~tid = t.ctxs.(tid)
let scratch (c : ctx) = c.scratch
let arena (t : t) = t.arena
let epoch (t : t) = t.epoch

let set_trace (t : t) trace =
  Array.iteri
    (fun tid c ->
      let r = Obs.Trace.ring trace ~tid in
      c.tr <- Some r;
      Pool.set_trace c.pool r)
    t.ctxs

let emit (c : ctx) k ~slot ~v1 ~v2 ~epoch =
  match c.tr with
  | None -> ()
  | Some r -> Obs.Trace.emit r k ~slot ~v1 ~v2 ~epoch
let node (c : ctx) i = Arena.get c.arena i

(* The optimistic read path: these derefs legitimately race reclamation
   (the epoch check or birth comparison after the read rejects stale
   values), so a Strict sanitizer must not fault them. *)
let node_spec (c : ctx) i = Arena.get_speculative c.arena i
let refresh_epoch (c : ctx) = c.my_e <- Epoch.get c.epoch

(* Epoch check shared by the read methods (Figure 1, lines 20/24): raise if
   the global epoch moved since this thread's last checkpoint, i.e. a value
   just read may originate from reclaimed memory. *)
let validate (c : ctx) = if c.my_e <> Epoch.get c.epoch then raise Rollback

(* Appendix B: before re-running from a checkpoint, nodes allocated since
   the checkpoint that never became reachable go back to the allocation
   pool (their retire epoch is still ⊥, so re-allocation is immediate). *)
let flush_pending (c : ctx) =
  match c.pending with
  | [] -> ()
  | pending ->
      c.pending <- [];
      Obs.Counters.shard_add c.obs Obs.Event.Dealloc (List.length pending);
      List.iter
        (fun i ->
          emit c Obs.Trace.Dealloc ~slot:i ~v1:0 ~v2:0 ~epoch:0;
          Pool.put c.pool i)
        pending

(* Rollback bookkeeping shared by every checkpoint shape. *)
let on_rollback (c : ctx) =
  Obs.Counters.shard_incr c.obs Obs.Event.Rollback;
  (match c.tr with
  | None -> ()
  | Some r ->
      (* Stamped with the epoch that invalidated us, not the stale
         cache, so the thread's traced clock stays monotone. *)
      let e_now = Epoch.get c.epoch in
      Obs.Trace.emit r Obs.Trace.Rollback ~slot:0 ~v1:c.my_e ~v2:e_now
        ~epoch:e_now);
  flush_pending c

(* Top-level recursion, not an inner [loop] closure: [checkpoint] brackets
   every operation, so a per-call closure would charge the minor heap once
   per op even on rollback-free runs. *)
let rec checkpoint (c : ctx) f =
  refresh_epoch c;
  emit c Obs.Trace.Checkpoint ~slot:0 ~v1:0 ~v2:0 ~epoch:c.my_e;
  match f () with
  | v ->
      c.pending <- [];
      v
  | exception Rollback ->
      on_rollback c;
      checkpoint c f

(* Closure-free checkpoint shapes: the body is a static function applied
   to explicitly threaded arguments, so operations whose state is a few
   scalars (a structure handle, a key, a tid) can run under a checkpoint
   with zero per-call allocation. *)
let rec checkpoint2 (c : ctx) f a b =
  refresh_epoch c;
  emit c Obs.Trace.Checkpoint ~slot:0 ~v1:0 ~v2:0 ~epoch:c.my_e;
  match f c a b with
  | v ->
      c.pending <- [];
      v
  | exception Rollback ->
      on_rollback c;
      checkpoint2 c f a b

let rec checkpoint3 (c : ctx) f a b d =
  refresh_epoch c;
  emit c Obs.Trace.Checkpoint ~slot:0 ~v1:0 ~v2:0 ~epoch:c.my_e;
  match f c a b d with
  | v ->
      c.pending <- [];
      v
  | exception Rollback ->
      on_rollback c;
      checkpoint3 c f a b d

(* Move a full retired list to the allocation pool as a whole (§4.1). *)
let maybe_flush_retired (c : ctx) =
  if c.retired_len >= c.retire_threshold then begin
    let batch = c.retired in
    Obs.Counters.shard_add c.obs Obs.Event.Reclaim c.retired_len;
    c.retired <- [];
    c.retired_len <- 0;
    (match c.tr with
    | None -> ()
    | Some r ->
        (* Emitted before the slots reach the pool (Obs.Trace contract). *)
        List.iter
          (fun i ->
            let n = Arena.get c.arena i in
            Obs.Trace.emit r Obs.Trace.Reclaim ~slot:i
              ~v1:(Atomic.get n.Node.birth)
              ~v2:(Atomic.get n.Node.retire) ~epoch:0)
          batch);
    Pool.put_batch c.pool batch
  end

let alloc_ctx (c : ctx) ~level key =
  let i = Pool.take c.pool ~level in
  let n = node c i in
  if Access.get n.Node.retire >= c.my_e then begin
    (* Figure 1, lines 3-6: the slot was retired in the current epoch; the
       epoch must move past it (any thread's success is enough) and we
       roll back so my_e is refreshed above the slot's retire epoch.

       Adaptive cadence: the CAS is elided whenever a load shows the
       epoch already moved past our cache — the rollback alone
       un-wedges us, and the CAS was guaranteed to fail. When the epoch
       has NOT moved, someone must advance it or this thread livelocks
       on the same pool head (a hard allocation budget would be unsafe
       here), so we spin [advance_backoff] relaxations to let a
       concurrent winner emerge, then CAS; losing doubles the backoff,
       winning halves it. *)
    c.epoch_bumps <- c.epoch_bumps + 1;
    if Epoch.get c.epoch <> c.my_e then
      Obs.Counters.shard_incr c.obs Obs.Event.Advance_skip
    else begin
      let rec grace k =
        if k > 0 && Epoch.get c.epoch = c.my_e then begin
          Domain.cpu_relax ();
          grace (k - 1)
        end
      in
      grace c.advance_backoff;
      if Epoch.get c.epoch <> c.my_e then begin
        c.advance_backoff <- min (2 * max 1 c.advance_backoff) 64;
        Obs.Counters.shard_incr c.obs Obs.Event.Advance_skip
      end
      else if Epoch.try_advance c.epoch ~expected:c.my_e then begin
        c.advance_backoff <- c.advance_backoff / 2;
        Obs.Counters.shard_incr c.obs Obs.Event.Epoch_advance;
        emit c Obs.Trace.Epoch_advance ~slot:0 ~v1:c.my_e ~v2:(c.my_e + 1)
          ~epoch:(c.my_e + 1)
      end
      else begin
        c.advance_backoff <- min (2 * max 1 c.advance_backoff) 64;
        Obs.Counters.shard_incr c.obs Obs.Event.Advance_skip
      end
    end;
    Pool.put c.pool i;
    raise Rollback
  end;
  let b = c.my_e in
  Access.set n.Node.birth b;
  Access.set n.Node.retire Node.no_epoch;
  let reinit lvl =
    let word = n.Node.next.(lvl) in
    let ok =
      Access.compare_and_set word (Access.get word)
        (Packed.pack_unchecked ~marked:false ~index:0 ~version:b)
    in
    (* Line 9: always succeeds — the fields of a retired node are
       invalidated and immutable (Assumption 3), so no concurrent update
       can intervene. *)
    assert ok
  in
  for lvl = 0 to n.Node.level - 1 do
    reinit lvl
  done;
  n.Node.key <- key;
  c.pending <- i :: c.pending;
  Obs.Counters.shard_incr c.obs Obs.Event.Alloc;
  emit c Obs.Trace.Alloc ~slot:i ~v1:b ~v2:0 ~epoch:b;
  (i, b)

let commit_alloc (c : ctx) i =
  (* The common shape is a single pending allocation; skip the filter's
     list rebuild for it (this runs on every successful insert). *)
  match c.pending with
  | [ j ] when j = i -> c.pending <- []
  | l -> c.pending <- List.filter (fun j -> j <> i) l

let retire_ctx (c : ctx) i ~birth =
  let n = node_spec c i in
  if
    Access.get n.Node.birth > birth
    || Access.get n.Node.retire <> Node.no_epoch
  then () (* line 13: already re-allocated or already retired *)
  else begin
    let re = Epoch.get c.epoch in
    (* Emitted before the retire stamp becomes visible (Obs.Trace
       contract). *)
    emit c Obs.Trace.Retire ~slot:i ~v1:birth ~v2:re ~epoch:re;
    Access.set n.Node.retire re;
    c.retired <- i :: c.retired;
    c.retired_len <- c.retired_len + 1;
    Obs.Counters.shard_incr c.obs Obs.Event.Retire;
    (* A freshly allocated node that failed its insertion CAS is retired
       (Figure 4, line 15); it must not also be recycled as pending. *)
    (match c.pending with
    | [] -> ()
    | _ -> c.pending <- List.filter (fun j -> j <> i) c.pending);
    maybe_flush_retired c;
    if re > c.my_e then raise Rollback (* line 16 *)
  end

(* The CORE-shaped lifecycle: one array index resolves the thread's
   context, then the ctx-level protocol above runs unchanged — so a
   checkpointed caller still gets pending-allocation recycling and
   Rollback propagation through these entry points. *)
let alloc (t : t) ~tid ~level ~key = alloc_ctx (ctx t ~tid) ~level key
let retire (t : t) ~tid (i, birth) = retire_ctx (ctx t ~tid) i ~birth

let dealloc (t : t) ~tid (i, _birth) =
  let c = ctx t ~tid in
  c.pending <- List.filter (fun j -> j <> i) c.pending;
  Obs.Counters.shard_incr c.obs Obs.Event.Dealloc;
  emit c Obs.Trace.Dealloc ~slot:i ~v1:0 ~v2:0 ~epoch:0;
  Pool.put c.pool i

let birth_of (c : ctx) i =
  if i = 0 then 0 else Access.get (node_spec c i).Node.birth

let get_next (c : ctx) ?(lvl = 0) i =
  let w = Access.get (node_spec c i).Node.next.(lvl) in
  let succ = Packed.index w in
  let succ_b = birth_of c succ in
  validate c;
  (succ, succ_b)

let get_next_word (c : ctx) ?(lvl = 0) i =
  let w = Access.get (node_spec c i).Node.next.(lvl) in
  let succ = Packed.index w in
  let succ_b = birth_of c succ in
  validate c;
  (succ, succ_b, Packed.is_marked w)

(* Allocation-free fusion of [get_next]/[get_next_word]: (successor,
   successor birth, own mark bit) packs into one immediate word — the
   successor index fits the index field by construction and a birth epoch
   fits the version field — so a traversal's per-hop result costs no
   minor-heap block. [lvl] is a required label to keep even the [Some]
   boxing of an optional argument off the hop. *)
let get_next_packed (c : ctx) ~lvl i =
  let w = Access.get (node_spec c i).Node.next.(lvl) in
  let succ = Packed.index w in
  let succ_b = birth_of c succ in
  validate c;
  Packed.pack_unchecked ~marked:(Packed.is_marked w) ~index:succ
    ~version:succ_b

(* The cheapest hop: the stored word, validated, as-is. [update] stores
   max(linker birth, successor birth) in the version field, so the raw
   version is NOT the successor's birth — callers must consume only
   [Packed.index] and [Packed.is_marked] of the result. Read-only
   traversals (Figure 6) need exactly those two, and skipping the
   successor-birth recompute saves a node touch per hop. *)
let get_next_raw (c : ctx) ~lvl i =
  let w = Access.get (node_spec c i).Node.next.(lvl) in
  validate c;
  w

(* A root word already carries (index, version = pointee birth); validate
   and hand it back unboxed. *)
let read_root_packed (c : ctx) root =
  let w = Access.get root in
  validate c;
  w

let get_key (c : ctx) i =
  let k = (node_spec c i).Node.key in
  validate c;
  k

(* The validated birth epoch of one node, on demand. Pairs with
   [get_next_raw]: a CAS-bound traversal can hop on raw words and
   recompute the births it actually needs (pred, curr) only at its
   stopping point, instead of paying a successor-birth node touch on
   every hop. If the node was recycled since the raw hop, the epoch
   necessarily advanced and [validate] rolls the operation back. *)
let get_birth (c : ctx) i =
  let b = birth_of c i in
  validate c;
  b

let is_marked (c : ctx) ?(lvl = 0) i ~birth =
  let n = node_spec c i in
  let res = Packed.is_marked (Access.get n.Node.next.(lvl)) in
  if Access.get n.Node.birth <> birth then true (* already removed *)
  else res

let read_birth (t : t) i =
  if i = 0 then 0 else Access.get (Arena.get_speculative t.arena i).Node.birth

let read_retire (t : t) i =
  Access.get (Arena.get_speculative t.arena i).Node.retire

let read_level (t : t) i = (Arena.get_speculative t.arena i).Node.level
let validate_epoch = validate

(* [slot] names the CASed node (0 for a root word) so a traced run can
   localize contention. *)
let count_cas (c : ctx) ~slot ok =
  if not ok then begin
    Obs.Counters.shard_incr c.obs Obs.Event.Cas_fail;
    emit c Obs.Trace.Cas_fail ~slot ~v1:0 ~v2:0 ~epoch:c.my_e
  end;
  ok

let update (c : ctx) ?(lvl = 0) i ~birth ~expected ~expected_birth ~new_ ~new_birth =
  let n = node_spec c i in
  let exp_v = max birth expected_birth in
  let new_v = max birth new_birth in
  count_cas c ~slot:i
    (Access.compare_and_set n.Node.next.(lvl)
       (Packed.pack_unchecked ~marked:false ~index:expected ~version:exp_v)
       (Packed.pack_unchecked ~marked:false ~index:new_ ~version:new_v))

(* Figure 1 computes the expected version as max(n_b, exp's birth) (line
   36). That recomputation livelocks on partially-linked skiplist towers:
   an un-linked upper-level pointer may legitimately reference an
   already-recycled slot, so the recomputed version never matches the
   stored word and the CAS can fail forever while isMarked stays false.
   CASing from the word actually read is equally safe — the stored word's
   version is at most the old incarnation's retire epoch (Claim 10), and
   every word a recycled slot can ever hold carries a version at least its
   new birth epoch, which is strictly larger (Claim 6) — and it always
   terminates. See DESIGN.md §"Divergences from the paper's pseudo-code". *)
let mark (c : ctx) ?(lvl = 0) i ~birth =
  let n = node_spec c i in
  let w = Access.get n.Node.next.(lvl) in
  if Access.get n.Node.birth <> birth then false (* line 37: already gone *)
  else if Packed.is_marked w then false
  else
    count_cas c ~slot:i
      (Access.compare_and_set n.Node.next.(lvl) w (Packed.set_mark w))

(* Raw-expected variant of [update] for a node's *own* not-yet-linked
   field (a skiplist inserter refreshing its forward pointer): the caller
   cannot supply a consistent (expected, expected_birth) pair because the
   current target may already be recycled. Safe for the same version-
   algebra reason as [mark]. *)
let refresh_next (c : ctx) ?(lvl = 0) i ~birth ~new_ ~new_birth =
  let n = node_spec c i in
  let w = Access.get n.Node.next.(lvl) in
  if Access.get n.Node.birth <> birth then false
  else if Packed.is_marked w then false
  else
    count_cas c ~slot:i
      (Access.compare_and_set n.Node.next.(lvl) w
         (Packed.pack_unchecked ~marked:false ~index:new_
            ~version:(max birth new_birth)))

(* A garbage edge — one whose stored version is below its target's
   current birth epoch — can never be touched by a versioned CAS (every
   reconstructible expected version uses the target's *current* birth),
   so traversals that must remove it would restart forever. Healing
   redirects such an edge, raw, to a caller-supplied safe target (a
   never-retired sentinel). Only upper skiplist levels can ever carry
   garbage edges; see DESIGN.md. *)
let heal_stale_edge (c : ctx) ?(lvl = 0) i ~birth ~to_ ~to_birth =
  let n = node_spec c i in
  let w = Access.get n.Node.next.(lvl) in
  if Access.get n.Node.birth <> birth then false
  else if Packed.is_marked w then false
  else begin
    let tgt = Packed.index w in
    tgt <> 0
    && Packed.version w < birth_of c tgt
    && count_cas c ~slot:i
         (Access.compare_and_set n.Node.next.(lvl) w
            (Packed.pack_unchecked ~marked:false ~index:to_
               ~version:(max birth to_birth)))
  end

let make_root ~init ~init_birth =
  Atomic.make (Packed.pack ~marked:false ~index:init ~version:init_birth)

let read_root (c : ctx) root =
  let w = Access.get root in
  validate c;
  (Packed.index w, Packed.version w)

let cas_root (c : ctx) root ~expected ~expected_birth ~new_ ~new_birth =
  count_cas c ~slot:0
    (Access.compare_and_set root
       (Packed.pack_unchecked ~marked:false ~index:expected
          ~version:expected_birth)
       (Packed.pack_unchecked ~marked:false ~index:new_ ~version:new_birth))

type ctx_stats = {
  allocs : int;
  retires : int;
  rollbacks : int;
  epoch_bumps : int;
  recycled : int;
  retired_pending : int;
}

let ctx_stats (c : ctx) =
  {
    allocs = Obs.Counters.shard_get c.obs Obs.Event.Alloc;
    retires = Obs.Counters.shard_get c.obs Obs.Event.Retire;
    rollbacks = Obs.Counters.shard_get c.obs Obs.Event.Rollback;
    epoch_bumps = c.epoch_bumps;
    recycled = Pool.recycled c.pool;
    retired_pending = c.retired_len;
  }

let counters (t : t) = t.counters
let counters_snapshot (t : t) = Obs.Counters.snapshot t.counters
let stats = counters_snapshot
let freed t = Obs.Counters.get (counters_snapshot t) Obs.Event.Reclaim

let unreclaimed t =
  let s = counters_snapshot t in
  Obs.Counters.get s Obs.Event.Retire - Obs.Counters.get s Obs.Event.Reclaim

let epoch_advances (t : t) = Epoch.advance_counted t.epoch

let total_stats t =
  Array.fold_left
    (fun acc c ->
      let s = ctx_stats c in
      {
        allocs = acc.allocs + s.allocs;
        retires = acc.retires + s.retires;
        rollbacks = acc.rollbacks + s.rollbacks;
        epoch_bumps = acc.epoch_bumps + s.epoch_bumps;
        recycled = acc.recycled + s.recycled;
        retired_pending = acc.retired_pending + s.retired_pending;
      })
    {
      allocs = 0;
      retires = 0;
      rollbacks = 0;
      epoch_bumps = 0;
      recycled = 0;
      retired_pending = 0;
    }
    t.ctxs

let pp_stats ppf s =
  Format.fprintf ppf
    "allocs=%d retires=%d rollbacks=%d epoch_bumps=%d recycled=%d pending=%d"
    s.allocs s.retires s.rollbacks s.epoch_bumps s.recycled s.retired_pending
