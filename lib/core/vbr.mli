(** VBR: the Figure-1 reclamation interface, checkpoints, and rollback.

    This is the paper's primary contribution. A {!t} owns the shared epoch,
    the arena, and one {!ctx} per thread. Data-structure code is written
    against the read/update methods below instead of raw loads and CASes;
    any method that detects a possible access to reclaimed memory raises
    {!Rollback}, which the {!checkpoint} combinator catches to re-run the
    enclosed code from its last checkpoint (§4.2.1).

    The module satisfies {!Reclaim.Smr_intf.OPTIMISTIC} (checked where the
    [Dstruct] functors are applied to it), so everything a generic
    optimistic structure may use is here; the extras — [create_tuned],
    [epoch], the per-thread {!ctx_stats} projection — are for tests,
    diagnostics and benches.

    Pointer arguments are slot indices ({!Memsim.Packed} index components);
    a node is always handled together with the birth epoch under which it
    was read — the pair (index, birth) is the node's identity across
    re-allocations. *)

exception Rollback
(** Raised by the read/alloc/retire methods when the global epoch moved
    since the thread's last checkpoint, i.e. a read value may be stale.
    Caught by {!checkpoint}; user code should let it propagate. *)

type t
(** The shared VBR instance (epoch + arena + per-thread contexts). *)

type node = int * int
(** The optimistic node identity: (slot index, birth epoch). *)

type ctx
(** A per-thread context: the thread's epoch cache [my_e], its local
    allocation pool and retired list, and its statistics. Must only be
    used by its owning thread. *)

val name : string
(** ["VBR"]. *)

val create :
  arena:Memsim.Arena.t ->
  global:Memsim.Global_pool.t ->
  n_threads:int ->
  hazards:int ->
  retire_threshold:int ->
  epoch_freq:int ->
  t
(** The {!Reclaim.Smr_intf.CORE}-shaped constructor. [hazards] is
    meaningless under VBR (no per-slot protection) and the epoch advances
    from the alloc slow path rather than on an allocation budget, so
    [epoch_freq] is ignored too; both are accepted for uniformity. *)

val create_tuned :
  ?retire_threshold:int ->
  ?spill:int ->
  arena:Memsim.Arena.t ->
  global:Memsim.Global_pool.t ->
  n_threads:int ->
  unit ->
  t
(** [create_tuned ~arena ~global ~n_threads ()] builds a VBR instance with
    VBR-specific knobs. [retire_threshold] (default 64) is the retired-list
    length after which the whole list is moved to the thread's allocation
    pool (§4.1 — batching keeps epoch bumps infrequent); 0 means "recycle
    immediately". [spill] (default 4096) is the local-pool spill threshold
    (see {!Memsim.Pool}). *)

val ctx : t -> tid:int -> ctx
(** The context of thread [tid] (0-based). *)

val scratch : ctx -> int array
(** The context's per-thread scratch plane (8 slots): hot paths that
    would otherwise return a tuple per call (a find's pred/curr/key)
    write their components here instead — zero allocation. Contents are
    only meaningful between a writer and the immediately following
    reader on the same thread; any operation may clobber them. *)

val arena : t -> Memsim.Arena.t
val epoch : t -> Epoch.t

val set_trace : t -> Obs.Trace.t -> unit
(** Attach a lifecycle trace (one ring per thread, {!Obs.Trace}): every
    subsequent alloc/dealloc/retire/reclaim, checkpoint, rollback, epoch
    advance and failed versioned CAS emits an event on the acting
    thread's ring. Call once, before any operation runs. When never
    called, every hook is one match on an immediate [None]. *)

(** {1 The node lifecycle}

    The [t]-plus-[tid] shape shared with every other scheme
    ({!Reclaim.Smr_intf.CORE}); each call resolves the thread's {!ctx}
    with one array index and runs the ctx-level protocol, so a
    checkpointed caller still gets pending-allocation recycling and
    {!Rollback} propagation through these entry points. *)

val alloc : t -> tid:int -> level:int -> key:int -> node
(** Figure 1, lines 1–11. Returns [(index, birth_epoch)] of a node whose
    every next word is ⟨NULL, birth⟩ and whose key is [key]. May advance
    the global epoch and raise {!Rollback} (lines 3–6). Until
    {!commit_alloc}, the node is recycled by a rollback (Appendix B).
    @raise Memsim.Arena.Exhausted if the simulated heap is full. *)

val dealloc : t -> tid:int -> node -> unit
(** Return a node that was never published to its thread's pool
    immediately (no grace period — it was never shared). *)

val retire : t -> tid:int -> node -> unit
(** Figure 1, lines 12–16. Idempotent under the double-retire guard; may
    raise {!Rollback} after the node is safely on the retired list. *)

(** {1 Checkpoints (§4.2.1)} *)

val checkpoint : ctx -> (unit -> 'a) -> 'a
(** [checkpoint c f] installs a checkpoint and runs [f]. On {!Rollback},
    it performs the Appendix-B duties (returning nodes allocated since the
    checkpoint to the allocation pool), refreshes [my_e] from the global
    epoch, and re-runs [f]. Operation bodies wrap their retry loop in this;
    a second checkpoint after a rollback-unsafe CAS is expressed by calling
    [checkpoint] again on the remainder of the operation. *)

val checkpoint2 : ctx -> (ctx -> 'a -> 'b -> 'r) -> 'a -> 'b -> 'r
(** [checkpoint2 c f a b] is [checkpoint c (fun () -> f c a b)] without
    the closure: when [f] is a top-level function and the arguments are
    immediates, the call allocates nothing, which matters on operation
    hot paths re-run once per rollback. *)

val checkpoint3 : ctx -> (ctx -> 'a -> 'b -> 'c -> 'r) -> 'a -> 'b -> 'c -> 'r
(** Three-argument sibling of {!checkpoint2} for operation bodies whose
    state is a few scalars (e.g. structure + tid + key). *)

val refresh_epoch : ctx -> unit
(** Re-read the global epoch into [my_e]. [checkpoint] does this
    automatically; exposed for operations that install a checkpoint
    mid-flight without a combinator. *)

val commit_alloc : ctx -> int -> unit
(** Tell the context that node [index] became reachable (its insertion CAS
    succeeded), so a later rollback must not recycle it. Call immediately
    after the successful publishing CAS, before any further VBR method. *)

(** {1 The Figure-1 methods}

    [lvl] selects the mutable next field (tower level); list code uses the
    default 0. *)

val get_next : ctx -> ?lvl:int -> int -> int * int
(** Figure 1, lines 17–21: [(successor index, successor birth)] of the
    given node at level [lvl], unmarked. Raises {!Rollback} if the epoch
    changed (possible stale read). *)

val get_next_word : ctx -> ?lvl:int -> int -> int * int * bool
(** Like {!get_next} but also returns whether the next word was marked —
    a convenience for traversals that would otherwise pair [get_next] with
    [is_marked]; same validation. *)

val get_next_packed : ctx -> lvl:int -> int -> Memsim.Packed.t
(** Allocation-free fusion of {!get_next} and {!get_next_word}: the result
    word's index is the successor slot, its version the successor's birth
    epoch, and its mark bit the node's own mark — all in one immediate
    [int], so a traversal hop allocates nothing. [lvl] is a required label
    (an optional argument would box). Same validation as {!get_next}. *)

val get_next_raw : ctx -> lvl:int -> int -> Memsim.Packed.t
(** The stored next word, validated, as-is — the cheapest hop. The raw
    version field is [max] of the linker's and successor's births (the
    {!update} encoding), NOT the successor's birth, so callers must
    consume only [Packed.index] and [Packed.is_marked] of the result.
    For read-only traversals that never CAS (Figure 6). *)

val get_key : ctx -> int -> int
(** Figure 1, lines 22–25. Raises {!Rollback} if the epoch changed. *)

val get_birth : ctx -> int -> int
(** The node's current birth epoch, validated. Pairs with
    {!get_next_raw}: a CAS-bound traversal can hop on raw words and
    recompute the births it actually needs (pred, curr) only at its
    stopping point. A recycled node implies an epoch advance, so a stale
    raw hop is caught here by the validation. Raises {!Rollback} if the
    epoch changed. *)

val is_marked : ctx -> ?lvl:int -> int -> birth:int -> bool
(** Figure 1, lines 26–29. Never rolls back: a birth-epoch mismatch means
    the node was certainly removed, so the answer TRUE is exact. *)

val read_birth : t -> int -> int
(** Birth epoch of a slot; 0 for NULL. Used when capturing entry points. *)

val read_retire : t -> int -> int
(** Current retire epoch of a slot ([Memsim.Node.no_epoch] if unretired).
    Together with {!read_birth}, certifies after the fact that a node was
    not mid-recycle at some earlier instant: if birth is unchanged and the
    retire epoch is still ⊥ now, the node was unretired the whole time. *)

val read_level : t -> int -> int
(** Tower height of a slot. Fixed at slot creation (type preservation), so
    even a stale read is exact. *)

val validate_epoch : ctx -> unit
(** Raise {!Rollback} if the global epoch moved since the last checkpoint
    — the check every read method performs, exposed for code that must
    revalidate just before a CAS whose arguments were read earlier. *)

val update :
  ctx ->
  ?lvl:int ->
  int ->
  birth:int ->
  expected:int ->
  expected_birth:int ->
  new_:int ->
  new_birth:int ->
  bool
(** Figure 1, lines 30–33: versioned CAS of an unmarked next word from
    [expected] to [new_]. Succeeds iff the node is unreclaimed, unmarked
    and still points to [expected] (Appendix A, Claims 11–12). *)

val mark : ctx -> ?lvl:int -> int -> birth:int -> bool
(** Figure 1, lines 34–39: set the mark bit of the node's next word
    without changing the pointer or its version. Succeeds iff the node is
    unreclaimed and was unmarked (Claims 13–15). Implementation note: the
    expected word is the one actually read rather than Figure 1's
    recomputed version — equivalent for safety and immune to the
    partially-linked-tower livelock (see DESIGN.md). *)

val refresh_next :
  ctx -> ?lvl:int -> int -> birth:int -> new_:int -> new_birth:int -> bool
(** Redirect a node's next word to [new_] from *whatever it currently
    holds* (raw expected). Only for fields that are not yet reachable at
    this level (a skiplist inserter's own tower), where the current target
    may be recycled and no consistent (expected, birth) pair exists.
    Fails if the node was re-allocated or the word is marked. *)

val heal_stale_edge :
  ctx -> ?lvl:int -> int -> birth:int -> to_:int -> to_birth:int -> bool
(** [heal_stale_edge c ~lvl i ~birth ~to_ ~to_birth] — repair for a
    *garbage edge*: a next word whose version is smaller than its target
    slot's current birth epoch. Such an edge (possible only on skiplist
    upper levels, via the inserter/remover race DESIGN.md §5 describes)
    can never be CASed by the versioned methods, because every
    reconstructible expected version uses the target's current birth.
    Redirects the word, raw, to the caller-supplied never-retired node
    [to_] (a sentinel). Returns whether a repair was performed; [false]
    when the word is healthy, marked, or the node was re-allocated. *)

(** {1 Entry-point words}

    A data structure's entry points (§3.1) — a queue's head and tail, a
    stack's top — are mutable shared words that live outside any node.
    They are represented as packed words whose version is the birth epoch
    of the referenced node: the entry point itself is never allocated or
    retired, so Figure 1's max-of-births version rule degenerates to the
    pointee's birth, and the same ABA argument applies (a recycled pointee
    has a strictly larger birth, so a stale root CAS must fail). *)

val make_root : init:int -> init_birth:int -> int Atomic.t
(** A root word referencing node [init] (with its birth), or NULL when
    [init = 0]. *)

val read_root : ctx -> int Atomic.t -> int * int
(** [(index, birth)] of the referenced node — the birth is the version
    stored in the word, so the pair is read atomically. Epoch-validated;
    raises {!Rollback} like the other read methods. *)

val read_root_packed : ctx -> int Atomic.t -> Memsim.Packed.t
(** Allocation-free {!read_root}: the raw validated root word — its index
    and version components are the node and its birth. *)

val cas_root :
  ctx ->
  int Atomic.t ->
  expected:int ->
  expected_birth:int ->
  new_:int ->
  new_birth:int ->
  bool
(** Versioned CAS of a root word. Never rolls back. *)

(** {1 Statistics} *)

val stats : t -> Obs.Counters.snapshot
(** Racy merged snapshot of the instance's event counters — the uniform
    {!Reclaim.Smr_intf.CORE} view (same as {!counters_snapshot}). *)

val freed : t -> int
(** Total slots recycled through the batched retired-list flush: the
    [Reclaim] counter (stats; racy). *)

val unreclaimed : t -> int
(** Retired slots currently waiting on a thread's retired list:
    [Retire] minus [Reclaim] (stats; racy). Bounded by
    [n_threads * retire_threshold] — no thread can stall VBR's
    reclamation, which is the robustness claim. *)

val epoch_advances : t -> int
(** Global epoch increments so far. *)

type ctx_stats = {
  allocs : int;  (** successful [alloc] returns *)
  retires : int;  (** effective (non-duplicate) retirements *)
  rollbacks : int;  (** checkpoint rollbacks executed *)
  epoch_bumps : int;  (** advance attempts from the alloc slow path *)
  recycled : int;  (** allocations served from pools, not fresh slots *)
  retired_pending : int;  (** nodes currently on this thread's retired list *)
}

val ctx_stats : ctx -> ctx_stats
(** This thread's projection of the protocol counters. *)

val total_stats : t -> ctx_stats
(** {!ctx_stats} summed over every thread. *)

val pp_stats : Format.formatter -> ctx_stats -> unit

val counters : t -> Obs.Counters.t
(** The instance's sharded event counters (one shard per thread): the
    protocol events ([Alloc]/[Dealloc]/[Retire]/[Reclaim]/[Rollback]/
    [Cas_fail]/[Epoch_advance]) plus the allocator events its pools emit.
    [ctx_stats] above is a per-thread projection of the same data. *)

val counters_snapshot : t -> Obs.Counters.snapshot
(** Racy merged snapshot of {!counters} (alias of {!stats}). *)
