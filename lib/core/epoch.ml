type t = { value : int Atomic.t; advances : int Atomic.t }

(* The epoch word is the single hottest line in the plane — every VBR
   read validates against it — so it must never share a cache line with
   another mutable word (least of all its own advances counter). *)
let create () =
  { value = Memsim.Padded.atomic 1; advances = Memsim.Padded.atomic 0 }
let get t = Memsim.Access.get t.value

let try_advance t ~expected =
  let ok = Memsim.Access.compare_and_set t.value expected (expected + 1) in
  if ok then Atomic.incr t.advances;
  ok

let advance_counted t = Atomic.get t.advances
