type t = { value : int Atomic.t; advances : int Atomic.t }

let create () = { value = Atomic.make 1; advances = Atomic.make 0 }
let get t = Memsim.Access.get t.value

let try_advance t ~expected =
  let ok = Memsim.Access.compare_and_set t.value expected (expected + 1) in
  if ok then Atomic.incr t.advances;
  ok

let advance_counted t = Atomic.get t.advances
