type dist = Uniform | Zipf of float

let parse s =
  match String.lowercase_ascii s with
  | "uniform" -> Ok Uniform
  | s when String.length s > 5 && String.sub s 0 5 = "zipf:" -> (
      let arg = String.sub s 5 (String.length s - 5) in
      match float_of_string_opt arg with
      | Some theta when theta > 0.0 && theta < 1.0 -> Ok (Zipf theta)
      | Some _ -> Result.Error "zipf theta must be in (0, 1)"
      | None -> Result.Error (Printf.sprintf "bad zipf theta %S" arg))
  | _ ->
      Result.Error
        (Printf.sprintf "unknown key distribution %S (uniform | zipf:<theta>)" s)

let dist_to_string = function
  | Uniform -> "uniform"
  | Zipf theta -> Printf.sprintf "zipf:%g" theta

(* The Gray et al. "quickly generating billion-record..." sampler (the
   YCSB ZipfianGenerator): one uniform draw, two comparisons and a [pow]
   per key, after an O(n) harmonic precomputation. *)
type zipf = {
  n : int;
  alpha : float;  (* 1 / (1 - theta) *)
  zetan : float;  (* sum_{i=1..n} i^-theta *)
  eta : float;
  half_pow : float;  (* 2^-theta *)
}

type t = Uniform_t of int | Zipf_t of zipf

let create dist ~range =
  if range < 1 then invalid_arg "Keygen.create: range < 1";
  match dist with
  | Uniform -> Uniform_t range
  | Zipf theta ->
      if not (theta > 0.0 && theta < 1.0) then
        invalid_arg "Keygen.create: zipf theta must be in (0, 1)";
      let zetan = ref 0.0 in
      for i = 1 to range do
        zetan := !zetan +. (1.0 /. (float_of_int i ** theta))
      done;
      let zetan = !zetan in
      let n = float_of_int range in
      let zeta2 = if range >= 2 then 1.0 +. (0.5 ** theta) else 1.0 in
      let eta =
        if range >= 2 then
          (1.0 -. ((2.0 /. n) ** (1.0 -. theta))) /. (1.0 -. (zeta2 /. zetan))
        else 0.0
      in
      Zipf_t
        {
          n = range;
          alpha = 1.0 /. (1.0 -. theta);
          zetan;
          eta;
          half_pow = 0.5 ** theta;
        }

(* One uniform float in [0, 1) from the 62 usable bits of Rng.next. *)
let unit_float rng = float_of_int (Rng.next rng) /. (float_of_int max_int +. 1.0)

let next t rng =
  match t with
  | Uniform_t range -> Rng.below rng range
  | Zipf_t z ->
      if z.n = 1 then 0
      else
        let u = unit_float rng in
        let uz = u *. z.zetan in
        if uz < 1.0 then 0
        else if uz < 1.0 +. z.half_pow then 1
        else
          let r =
            int_of_float
              (float_of_int z.n *. (((z.eta *. u) -. z.eta +. 1.0) ** z.alpha))
          in
          if r < 0 then 0 else if r >= z.n then z.n - 1 else r
