(** Uniform construction of every (structure × reclamation scheme)
    combination the evaluation uses, behind one monomorphic handle.

    The registry is table-driven: a scheme is a row packing a
    {!Reclaim.Smr_intf.backend} (guarded or optimistic first-class
    module), a structure is a row of wiring closures that apply the
    structure's functor to either capability, and {!make} is the single
    generic builder joining the two tables. Adding a scheme or a structure
    is one table row — see README's "Extending the matrix". *)

type instance = {
  iname : string;  (** "structure/scheme" *)
  insert : tid:int -> int -> bool;
  delete : tid:int -> int -> bool;
  contains : tid:int -> int -> bool;
  size : unit -> int;  (** quiescent only *)
  unreclaimed : unit -> int;
      (** retired-but-not-yet-reusable nodes (the robustness metric): the
          [Retire] − [Reclaim] view of the backend's counters; for NoRecl
          the total retire count. *)
  allocated : unit -> int;  (** arena slots ever claimed (memory footprint) *)
  pin : tid:int -> unit;
      (** Simulate the §1 stalled thread: enter an operation and publish
          whatever protection the scheme uses, then never leave. A no-op
          under VBR — no thread can block VBR's reclamation, which is the
          point of the robustness experiment. *)
  epoch_advances : unit -> int;
      (** Successful global epoch/era increments so far, from the scheme's
          own [Epoch_advance] counter (0 for NoRecl/HP, which have no
          clock). The §5.2 discussion attributes VBR's win over EBR/HE/IBR
          to this being small. *)
  stats : unit -> Obs.Counters.snapshot;
      (** Racy merged snapshot of the backend's event counters (see
          {!Obs.Event}): protocol events, protection retries, rollbacks,
          epoch advances, and the allocator events underneath. The
          [unreclaimed] field above is the [Retire] − [Reclaim] view of
          the same data. *)
  pool_batches : unit -> int;
      (** Approximate batches currently parked in the shared
          {!Memsim.Global_pool} (all shards, all levels) — a racy
          occupancy gauge for telemetry. *)
}

type kind = Set | Queue | Stack
(** The API family a structure exposes. Queues and stacks are driven
    through the set-shaped [instance] operations: insert produces, delete
    consumes, contains probes emptiness. *)

val schemes : string list
(** ["NoRecl"; "EBR"; "HP"; "HE"; "IBR"; "VBR"] — derived from the scheme
    table. *)

val structures : string list
(** ["list"; "hash"; "skiplist"; "harris"; "queue"; "stack"] — derived
    from the structure table. "harris" supports only NoRecl, EBR and VBR
    (see {!Dstruct.Harris_list}). *)

val structure_kind : structure:string -> kind option

val supports : structure:string -> scheme:string -> bool

val make :
  structure:string ->
  scheme:string ->
  n_threads:int ->
  range:int ->
  capacity:int ->
  ?buckets:int ->
  ?retire_threshold:int ->
  ?epoch_freq:int ->
  ?trace:Obs.Trace.t ->
  ?sanitizer:Memsim.Sanitizer.mode ->
  unit ->
  instance
(** Build an empty instance. [buckets] sizes the hash table's bucket
    array and defaults to [range] (the historical load-factor-1 sizing);
    non-hash structures ignore it — it is a tuning surface, so callers
    like the net server can size tables without bypassing the registry.
    [retire_threshold] defaults to each scheme's table
    row (64 for VBR, 128 for the conservative schemes); [epoch_freq]
    (allocations per epoch/era advance, EBR/HE/IBR) defaults to 32.
    [trace], when given, is attached to the backend before any operation
    runs ({!Reclaim.Smr_intf.CORE}[.set_trace]); it must have been
    created with at least [n_threads] rings. [sanitizer], when given, is
    attached to the arena before any allocation (see
    {!Memsim.Sanitizer.mode} for which modes are sound where — [Strict]
    is sound for every scheme only under Schedsim's virtual scheduling).
    @raise Invalid_argument on an unknown or unsupported combination. *)
