(** A Wing–Gong linearizability checker for integer-set histories.

    A history is one sequential stream of completed operations per
    thread, each with invocation/response timestamps. Operation [a]
    precedes [b] iff [a.res < b.inv]; {!check} searches for a total
    order extending that partial order under which sequential set
    semantics reproduce every recorded result.

    Timestamps only need to be consistent per run: real histories use
    wall-clock stamps, virtually-scheduled ones (Schedsim) use the
    scheduler's step counter, which gives the checker a sharper partial
    order than wall time ever could. *)

type op = Insert of int | Delete of int | Contains of int

type event = {
  op : op;
  result : bool;
  inv : float;  (** invocation timestamp *)
  res : float;  (** response timestamp *)
}

type history = event array array
(** One array of events per thread, in that thread's program order.
    At most 1023 events per thread; keys in [0, 61] (the sequential
    state is a bitmask). *)

val pp_op : Format.formatter -> op -> unit
val pp_event : Format.formatter -> event -> unit

exception Non_linearizable of string

val check : history -> bool
(** Whether some linearization explains the history. Memoised minimal-op
    DFS; worst-case exponential, fine on small-key test histories.
    @raise Invalid_argument on histories breaking the documented caps. *)

val check_exn : history -> unit
(** @raise Non_linearizable with a rendering of the offending history's
    first events when {!check} is false. *)
