(** The §5.1 fixed-time micro-benchmark runner.

    One measurement point: build an instance, prefill it to half the key
    range, release [threads] worker domains that sample operations from a
    workload profile for [duration] seconds, and report million operations
    per second. Each point is repeated and averaged. *)

type point = {
  threads : int;
  mops : float;  (** mean throughput, million ops/second *)
  stddev : float;
  repeats : int;
}

val prefill : Registry.instance -> range:int -> unit
(** Insert the deterministic half-range initial set from thread 0. *)

val measure :
  ?keydist:Keygen.dist ->
  make:(unit -> Registry.instance) ->
  profile:Workload.profile ->
  threads:int ->
  range:int ->
  duration:float ->
  repeats:int ->
  unit ->
  point
(** One averaged measurement point. A fresh instance (and prefill) per
    repeat. [keydist] (default [Uniform], bit-identical to the historical
    behaviour) skews the per-operation key draws — the ROADMAP "skewed
    workloads" axis; the prefill stays the uniform half-range set either
    way, so skew shows up as traffic concentration, not a different
    initial size. *)

val measure_timed :
  ?keydist:Keygen.dist ->
  make:(unit -> Registry.instance) ->
  profile:Workload.profile ->
  threads:int ->
  range:int ->
  duration:float ->
  repeats:int ->
  unit ->
  point * (string * Obs.Histogram.t) list
(** Like {!measure}, but each worker also times every operation into a
    per-thread log-bucketed histogram; the returned association list maps
    op kinds ([insert]/[delete]/[search], omitting kinds the profile never
    samples) to the histogram merged over threads and repeats. The clock
    is [Unix.gettimeofday], so samples quantize to its (typically
    microsecond) resolution; the per-op clock reads also cost a little
    throughput — use plain {!measure} for headline numbers. *)

val run_ops :
  make:(unit -> Registry.instance) ->
  profile:Workload.profile ->
  threads:int ->
  range:int ->
  total_ops:int ->
  unit ->
  float * Registry.instance
(** Fixed-operation-budget variant of {!measure}: prefill, release
    [threads] workers that each execute [total_ops / threads] operations,
    and return (million ops/second, the instance). Built for lifecycle
    tracing ({!Registry.make}'s [?trace]): an op budget bounds the event
    volume deterministically, so a ring capacity can be chosen that keeps
    the trace untruncated, and the instance is handed back so the caller
    can dump the trace after every worker has joined. *)

type stalled_sample = {
  t_ms : float;  (** milliseconds since the workers were released *)
  ops : int;  (** operations completed so far (all workers) *)
  unreclaimed : int;
  allocated : int;
}

val run_stalled_series :
  ?interval_ms:float ->
  make:(unit -> Registry.instance) ->
  profile:Workload.profile ->
  threads:int ->
  range:int ->
  total_ops:int ->
  unit ->
  stalled_sample list
(** The robustness experiment: thread [threads-1] pins itself
    mid-operation and stalls forever while the other [threads-1] workers
    execute a [total_ops] budget; an {!Obs.Sampler} domain samples
    (ops done, unreclaimed, arena slots) every [interval_ms] (default
    2 ms) into the returned chronological time series. Under EBR the
    unreclaimed gauge grows with traffic; under VBR/HP it stays bounded. *)

val run_stalled :
  make:(unit -> Registry.instance) ->
  profile:Workload.profile ->
  threads:int ->
  range:int ->
  checkpoints:int ->
  ops_per_checkpoint:int ->
  (int * int * int) list
(** {!run_stalled_series} projected onto a fixed checkpoint axis:
    [(total_ops, unreclaimed, allocated)] at each of [checkpoints]
    successive [ops_per_checkpoint] milestones (each row taken from the
    first sample at or past its milestone). *)
