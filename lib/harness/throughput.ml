type point = { threads : int; mops : float; stddev : float; repeats : int }

let prefill (inst : Registry.instance) ~range =
  for k = 0 to range - 1 do
    if Workload.prefill_member k then ignore (inst.Registry.insert ~tid:0 k)
  done

let run_op (inst : Registry.instance) ~tid k = function
  | Workload.Insert -> ignore (inst.Registry.insert ~tid k)
  | Workload.Delete -> ignore (inst.Registry.delete ~tid k)
  | Workload.Search -> ignore (inst.Registry.contains ~tid k)

let op_index = function
  | Workload.Insert -> 0
  | Workload.Delete -> 1
  | Workload.Search -> 2

let op_names = [| "insert"; "delete"; "search" |]

let worker ?lat (inst : Registry.instance) ~tid ~keygen profile start stop
    count =
  let rng = Rng.create ~seed:((tid * 7919) + 13) in
  (* Spin until the coordinator releases everyone at once. *)
  while not (Atomic.get start) do
    Domain.cpu_relax ()
  done;
  let ops = ref 0 in
  (try
     match lat with
     | None ->
         while not (Atomic.get stop) do
           let k = Keygen.next keygen rng in
           run_op inst ~tid k (Workload.pick profile rng);
           incr ops
         done
     | Some (hists : Obs.Histogram.t array) ->
         (* Timing mode: wrap every operation in a wall-clock read. The
            clock is Unix.gettimeofday, so individual samples quantize to
            its (typically microsecond) resolution — fine for the paper's
            list/skiplist operations, which sit well above it. *)
         while not (Atomic.get stop) do
           let k = Keygen.next keygen rng in
           let op = Workload.pick profile rng in
           let t0 = Unix.gettimeofday () in
           run_op inst ~tid k op;
           let t1 = Unix.gettimeofday () in
           Obs.Histogram.record
             hists.(op_index op)
             (int_of_float ((t1 -. t0) *. 1e9));
           incr ops
         done
   with Memsim.Arena.Exhausted ->
     (* Only NoRecl can get here (it never reuses); its sized headroom ran
        out, so this worker stops early and the reported throughput is a
        slight underestimate for NoRecl. The exhaustion itself is recorded
        as an [Arena_exhausted] event in the instance's counters. *)
     ());
  count := !ops

let one_run ?lat ~make ~profile ~threads ~range ~keydist ~duration () =
  let inst = make () in
  prefill inst ~range;
  (* One shared immutable sampler: draws go through each worker's own
     RNG, so workers still share nothing mutable. *)
  let keygen = Keygen.create keydist ~range in
  let start = Atomic.make false and stop = Atomic.make false in
  let counts = Array.init threads (fun _ -> ref 0) in
  let domains =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            let lat = Option.map (fun l -> l.(tid)) lat in
            worker ?lat inst ~tid ~keygen profile start stop counts.(tid)))
  in
  let t0 = Unix.gettimeofday () in
  Atomic.set start true;
  Unix.sleepf duration;
  Atomic.set stop true;
  let t1 = Unix.gettimeofday () in
  List.iter Domain.join domains;
  let total = Array.fold_left (fun acc c -> acc + !c) 0 counts in
  float_of_int total /. (t1 -. t0) /. 1e6

let summarize_samples ~threads ~repeats samples =
  let n = float_of_int repeats in
  let mean = List.fold_left ( +. ) 0.0 samples /. n in
  let var =
    List.fold_left (fun acc s -> acc +. ((s -. mean) ** 2.0)) 0.0 samples /. n
  in
  { threads; mops = mean; stddev = sqrt var; repeats }

let measure ?(keydist = Keygen.Uniform) ~make ~profile ~threads ~range
    ~duration ~repeats () =
  let samples =
    List.init repeats (fun _ ->
        one_run ~make ~profile ~threads ~range ~keydist ~duration ())
  in
  summarize_samples ~threads ~repeats samples

let measure_timed ?(keydist = Keygen.Uniform) ~make ~profile ~threads ~range
    ~duration ~repeats () =
  (* Each worker records into its own histogram for the whole run; the
     aggregation is one merge_all per op kind at the end, after every
     domain has joined — no synchronization on the recording path. *)
  let per_op = Array.init 3 (fun _ -> ref []) in
  let samples =
    List.init repeats (fun _ ->
        let lat =
          Array.init threads (fun _ ->
              Array.init 3 (fun _ -> Obs.Histogram.create ()))
        in
        let mops =
          one_run ~lat ~make ~profile ~threads ~range ~keydist ~duration ()
        in
        Array.iter
          (Array.iteri (fun op h -> per_op.(op) := h :: !(per_op.(op))))
          lat;
        mops)
  in
  let point = summarize_samples ~threads ~repeats samples in
  let latencies =
    Array.to_list
      (Array.mapi
         (fun op hs -> (op_names.(op), Obs.Histogram.merge_all !hs))
         per_op)
    |> List.filter (fun (_, h) -> Obs.Histogram.count h > 0)
  in
  (point, latencies)

(* Fixed-operation-budget run: the deterministic-volume twin of [one_run],
   for tracing — an event budget, not a time budget, so ring capacity can
   be sized to keep the trace untruncated. *)
let run_ops ~make ~profile ~threads ~range ~total_ops () =
  let inst = make () in
  prefill inst ~range;
  let per_worker = max 1 (total_ops / threads) in
  let start = Atomic.make false in
  let domains =
    List.init threads (fun tid ->
        Domain.spawn (fun () ->
            let rng = Rng.create ~seed:((tid * 7919) + 13) in
            while not (Atomic.get start) do
              Domain.cpu_relax ()
            done;
            try
              for _ = 1 to per_worker do
                let k = Rng.below rng range in
                run_op inst ~tid k (Workload.pick profile rng)
              done
            with Memsim.Arena.Exhausted -> ()))
  in
  let t0 = Unix.gettimeofday () in
  Atomic.set start true;
  List.iter Domain.join domains;
  let t1 = Unix.gettimeofday () in
  (float_of_int (per_worker * threads) /. (t1 -. t0) /. 1e6, inst)

(* ------------------------------------------------------------------ *)
(* The robustness experiment (§1, §A.2): one pinned thread, a fixed op *)
(* budget, and a background sampler watching the memory gauges.        *)
(* ------------------------------------------------------------------ *)

type stalled_sample = {
  t_ms : float;  (** milliseconds since the workers were released *)
  ops : int;  (** operations completed so far (all workers) *)
  unreclaimed : int;
  allocated : int;
}

let run_stalled_series ?(interval_ms = 2.0) ~make ~profile ~threads ~range
    ~total_ops () =
  let inst = make () in
  prefill inst ~range;
  (* The last thread id pins itself and never proceeds. *)
  inst.Registry.pin ~tid:(threads - 1);
  let workers = max 1 (threads - 1) in
  let per_worker = total_ops / workers in
  (* One Atomic per worker (each its own heap block, so no false sharing
     worth caring about at this sampling rate); the sampler sums them. *)
  let done_ops = Array.init workers (fun _ -> Atomic.make 0) in
  let sum_ops () =
    Array.fold_left (fun acc a -> acc + Atomic.get a) 0 done_ops
  in
  let sampler =
    Obs.Sampler.start ~interval_ms
      ~read:(fun () ->
        (sum_ops (), inst.Registry.unreclaimed (), inst.Registry.allocated ()))
      ()
  in
  let domains =
    List.init workers (fun tid ->
        Domain.spawn (fun () ->
            (* One RNG per worker for the whole run (seeded like the
               fixed-time workers): re-seeding at every checkpoint — as the
               old per-checkpoint spawn loop did — replayed the same short
               key prefix each time and skewed the key distribution. *)
            let rng = Rng.create ~seed:((tid * 7919) + 13) in
            try
              for _ = 1 to per_worker do
                let k = Rng.below rng range in
                run_op inst ~tid k (Workload.pick profile rng);
                Atomic.incr done_ops.(tid)
              done
            with Memsim.Arena.Exhausted ->
              (* NoRecl's headroom ran out; the early stop is visible both
                 here (ops plateau) and as an [Arena_exhausted] counter
                 event. *)
              ()))
  in
  List.iter Domain.join domains;
  List.map
    (fun { Obs.Sampler.elapsed_ms; value = ops, unreclaimed, allocated } ->
      { t_ms = elapsed_ms; ops; unreclaimed; allocated })
    (Obs.Sampler.stop sampler)

let run_stalled ~make ~profile ~threads ~range ~checkpoints
    ~ops_per_checkpoint =
  let total_ops = checkpoints * ops_per_checkpoint in
  let series =
    run_stalled_series ~make ~profile ~threads ~range ~total_ops ()
  in
  let last =
    match List.rev series with
    | s :: _ -> s
    | [] ->
        (* The whole run finished inside one sampling interval, so the
           sampler never fired; report zeros rather than crash. *)
        Printf.eprintf
          "Throughput.run_stalled: empty sample series (run shorter than \
           one sampling interval); reporting zero samples\n\
           %!";
        { t_ms = 0.0; ops = 0; unreclaimed = 0; allocated = 0 }
  in
  (* Project the async time series onto the legacy checkpoint axis: for
     each ops milestone, the first sample at or past it (the final sample
     as fallback — worker-count division can leave total ops one or two
     short of the target). *)
  List.init checkpoints (fun cp ->
      let target = (cp + 1) * ops_per_checkpoint in
      let s =
        match List.find_opt (fun s -> s.ops >= target) series with
        | Some s -> s
        | None -> last
      in
      (target, s.unreclaimed, s.allocated))
