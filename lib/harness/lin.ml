(* A Wing–Gong linearizability checker for integer-set histories.

   A history is one sequential stream of completed operations per thread,
   each with wall-clock invocation/response timestamps. Operation [a]
   precedes [b] iff a.response < b.invocation; the checker searches for a
   total order extending that partial order under which the sequential
   set semantics reproduce every recorded result.

   The search linearizes one "minimal" operation at a time (an operation
   no other pending operation fully precedes), with memoisation on the
   (per-thread progress, abstract set state) pair, which keeps the search
   polynomial-ish on the small-key histories the tests generate. *)

type op = Insert of int | Delete of int | Contains of int

type event = {
  op : op;
  result : bool;
  inv : float;  (** invocation timestamp *)
  res : float;  (** response timestamp *)
}

type history = event array array
(** One array of events per thread, in that thread's program order. *)

let pp_op ppf = function
  | Insert k -> Format.fprintf ppf "insert %d" k
  | Delete k -> Format.fprintf ppf "delete %d" k
  | Contains k -> Format.fprintf ppf "contains %d" k

let pp_event ppf e =
  Format.fprintf ppf "[%a -> %b @ %.6f..%.6f]" pp_op e.op e.result e.inv e.res

(* Sequential semantics over a bitmask state (keys must be < 62). *)
let apply state = function
  | Insert k ->
      let bit = 1 lsl k in
      if state land bit <> 0 then (state, false) else (state lor bit, true)
  | Delete k ->
      let bit = 1 lsl k in
      if state land bit = 0 then (state, false) else (state land lnot bit, true)
  | Contains k -> (state, state land (1 lsl k) <> 0)

exception Non_linearizable of string

(* Encode per-thread progress as a single int (each index gets 10 bits —
   histories are capped at 1023 events per thread). *)
let encode_progress idx =
  Array.fold_left (fun acc i -> (acc lsl 10) lor i) 0 idx

let check (h : history) =
  let n = Array.length h in
  Array.iter
    (fun stream ->
      if Array.length stream > 1023 then
        invalid_arg "Lin.check: more than 1023 events in one thread")
    h;
  Array.iter
    (fun stream ->
      Array.iter
        (fun e ->
          match e.op with
          | Insert k | Delete k | Contains k ->
              if k < 0 || k > 61 then invalid_arg "Lin.check: key out of [0,61]")
        stream)
    h;
  let idx = Array.make n 0 in
  let visited = Hashtbl.create 4096 in
  let rec dfs state =
    let all_done = ref true in
    for t = 0 to n - 1 do
      if idx.(t) < Array.length h.(t) then all_done := false
    done;
    if !all_done then true
    else begin
      let key = (encode_progress idx, state) in
      if Hashtbl.mem visited key then false
      else begin
        Hashtbl.add visited key ();
        (* Minimal ops: pending heads not strictly preceded by any other
           pending head. *)
        let ok = ref false in
        let t = ref 0 in
        while (not !ok) && !t < n do
          (if idx.(!t) < Array.length h.(!t) then begin
             let cand = h.(!t).(idx.(!t)) in
             let minimal = ref true in
             for u = 0 to n - 1 do
               if u <> !t && idx.(u) < Array.length h.(u) then begin
                 let other = h.(u).(idx.(u)) in
                 if other.res < cand.inv then minimal := false
               end
             done;
             if !minimal then begin
               let state', expected = apply state cand.op in
               if expected = cand.result then begin
                 idx.(!t) <- idx.(!t) + 1;
                 if dfs state' then ok := true
                 else idx.(!t) <- idx.(!t) - 1
               end
             end
           end);
          incr t
        done;
        !ok
      end
    end
  in
  dfs 0

let check_exn h =
  if not (check h) then begin
    let buf = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buf in
    Format.fprintf ppf "history is not linearizable; first events:@.";
    Array.iteri
      (fun t stream ->
        Format.fprintf ppf "  thread %d:" t;
        Array.iteri
          (fun i e -> if i < 8 then Format.fprintf ppf " %a" pp_event e)
          stream;
        Format.fprintf ppf "@.")
      h;
    Format.pp_print_flush ppf ();
    raise (Non_linearizable (Buffer.contents buf))
  end
