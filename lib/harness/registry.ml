open Memsim

type instance = {
  iname : string;
  insert : tid:int -> int -> bool;
  delete : tid:int -> int -> bool;
  contains : tid:int -> int -> bool;
  size : unit -> int;
  unreclaimed : unit -> int;
  allocated : unit -> int;
  pin : tid:int -> unit;
  epoch_advances : unit -> int;
  stats : unit -> Obs.Counters.snapshot;
}

let schemes = [ "NoRecl"; "EBR"; "HP"; "HE"; "IBR"; "VBR" ]
let structures = [ "list"; "hash"; "skiplist"; "harris" ]

let supports ~structure ~scheme =
  List.mem structure structures
  && List.mem scheme schemes
  && (structure <> "harris" || List.mem scheme [ "NoRecl"; "EBR"; "VBR" ])

let scheme_module : string -> (module Reclaim.Smr_intf.S) = function
  | "NoRecl" -> (module Reclaim.No_recl)
  | "EBR" -> (module Reclaim.Ebr)
  | "HP" -> (module Reclaim.Hp)
  | "HE" -> (module Reclaim.He)
  | "IBR" -> (module Reclaim.Ibr)
  | s -> invalid_arg ("Registry: unknown scheme " ^ s)

(* Epoch/era advance counters are internal to each scheme; expose them by
   peeking at scheme-specific state through a closure built at
   construction time. For EBR/HE/IBR we approximate with the global value
   itself (it starts at 1). *)

let make_conservative (module R : Reclaim.Smr_intf.S) ~structure ~n_threads
    ~range ~capacity ~retire_threshold ~epoch_freq () =
  let max_level =
    if structure = "skiplist" then Dstruct.Skiplist.max_level else 1
  in
  let hazards =
    if structure = "skiplist" then (2 * Dstruct.Skiplist.max_level) + 2 else 3
  in
  let arena = Arena.create ~capacity in
  let global = Global_pool.create ~max_level in
  let r =
    R.create ~arena ~global ~n_threads ~hazards ~retire_threshold ~epoch_freq
  in
  let pin ~tid =
    R.begin_op r ~tid;
    (* Publish era/hazard protection over slot 1 (the first allocated
       node, typically a sentinel — the *era* published is what pins
       state for HE/IBR; HP's robustness shows precisely because a single
       hazard pins almost nothing). *)
    R.protect_own r ~tid ~slot:0 1
  in
  let base =
    {
      iname = "?";
      insert = (fun ~tid:_ _ -> false);
      delete = (fun ~tid:_ _ -> false);
      contains = (fun ~tid:_ _ -> false);
      size = (fun () -> 0);
      unreclaimed = (fun () -> R.unreclaimed r);
      allocated = (fun () -> Arena.allocated arena);
      pin;
      epoch_advances = (fun () -> 0);
      stats = (fun () -> R.stats r);
    }
  in
  match structure with
  | "list" ->
      let module L = Dstruct.Linked_list.Make (R) in
      let l = L.create r ~arena in
      {
        base with
        iname = L.name;
        insert = (fun ~tid k -> L.insert l ~tid k);
        delete = (fun ~tid k -> L.delete l ~tid k);
        contains = (fun ~tid k -> L.contains l ~tid k);
        size = (fun () -> L.size l);
      }
  | "hash" ->
      let module H = Dstruct.Hash_table.Make (R) in
      let h = H.create r ~arena ~buckets:range in
      {
        base with
        iname = H.name;
        insert = (fun ~tid k -> H.insert h ~tid k);
        delete = (fun ~tid k -> H.delete h ~tid k);
        contains = (fun ~tid k -> H.contains h ~tid k);
        size = (fun () -> H.size h);
      }
  | "skiplist" ->
      let module S = Dstruct.Skiplist.Make (R) in
      let s = S.create r ~arena in
      {
        base with
        iname = S.name;
        insert = (fun ~tid k -> S.insert s ~tid k);
        delete = (fun ~tid k -> S.delete s ~tid k);
        contains = (fun ~tid k -> S.contains s ~tid k);
        size = (fun () -> S.size s);
      }
  | "harris" ->
      let module L = Dstruct.Harris_list.Make (R) in
      let l = L.create r ~arena in
      {
        base with
        iname = L.name;
        insert = (fun ~tid k -> L.insert l ~tid k);
        delete = (fun ~tid k -> L.delete l ~tid k);
        contains = (fun ~tid k -> L.contains l ~tid k);
        size = (fun () -> L.size l);
      }
  | s -> invalid_arg ("Registry: unknown structure " ^ s)

let make_vbr ~structure ~n_threads ~range ~capacity ~retire_threshold () =
  let max_level =
    if structure = "skiplist" then Dstruct.Skiplist.max_level else 1
  in
  let arena = Arena.create ~capacity in
  let global = Global_pool.create ~max_level in
  let vbr =
    Vbr_core.Vbr.create ~retire_threshold ~arena ~global ~n_threads ()
  in
  let base =
    {
      iname = "?";
      insert = (fun ~tid:_ _ -> false);
      delete = (fun ~tid:_ _ -> false);
      contains = (fun ~tid:_ _ -> false);
      size = (fun () -> 0);
      unreclaimed =
        (fun () -> (Vbr_core.Vbr.total_stats vbr).Vbr_core.Vbr.retired_pending);
      allocated = (fun () -> Arena.allocated arena);
      (* No thread can stall VBR's reclamation: pinning is a no-op. *)
      pin = (fun ~tid:_ -> ());
      epoch_advances =
        (fun () -> Vbr_core.Epoch.advance_counted (Vbr_core.Vbr.epoch vbr));
      stats = (fun () -> Vbr_core.Vbr.counters_snapshot vbr);
    }
  in
  match structure with
  | "list" | "harris" ->
      (* Vbr_list's Figure-3 find *is* the Harris-style segment-trimming
         traversal, so it serves as both. *)
      let l = Dstruct.Vbr_list.create vbr in
      {
        base with
        iname =
          (if structure = "harris" then "harris/VBR" else Dstruct.Vbr_list.name);
        insert = (fun ~tid k -> Dstruct.Vbr_list.insert l ~tid k);
        delete = (fun ~tid k -> Dstruct.Vbr_list.delete l ~tid k);
        contains = (fun ~tid k -> Dstruct.Vbr_list.contains l ~tid k);
        size = (fun () -> Dstruct.Vbr_list.size l);
      }
  | "hash" ->
      let h = Dstruct.Vbr_hash.create vbr ~buckets:range in
      {
        base with
        iname = Dstruct.Vbr_hash.name;
        insert = (fun ~tid k -> Dstruct.Vbr_hash.insert h ~tid k);
        delete = (fun ~tid k -> Dstruct.Vbr_hash.delete h ~tid k);
        contains = (fun ~tid k -> Dstruct.Vbr_hash.contains h ~tid k);
        size = (fun () -> Dstruct.Vbr_hash.size h);
      }
  | "skiplist" ->
      let s = Dstruct.Vbr_skiplist.create vbr in
      {
        base with
        iname = Dstruct.Vbr_skiplist.name;
        insert = (fun ~tid k -> Dstruct.Vbr_skiplist.insert s ~tid k);
        delete = (fun ~tid k -> Dstruct.Vbr_skiplist.delete s ~tid k);
        contains = (fun ~tid k -> Dstruct.Vbr_skiplist.contains s ~tid k);
        size = (fun () -> Dstruct.Vbr_skiplist.size s);
      }
  | s -> invalid_arg ("Registry: unknown structure " ^ s)

let make ~structure ~scheme ~n_threads ~range ~capacity ?retire_threshold
    ?(epoch_freq = 32) () =
  if not (supports ~structure ~scheme) then
    invalid_arg
      (Printf.sprintf "Registry: %s does not support %s" structure scheme);
  if scheme = "VBR" then
    let retire_threshold = Option.value retire_threshold ~default:64 in
    make_vbr ~structure ~n_threads ~range ~capacity ~retire_threshold ()
  else
    let retire_threshold = Option.value retire_threshold ~default:128 in
    make_conservative (scheme_module scheme) ~structure ~n_threads ~range
      ~capacity ~retire_threshold ~epoch_freq ()
