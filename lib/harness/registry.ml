open Memsim

type instance = {
  iname : string;
  insert : tid:int -> int -> bool;
  delete : tid:int -> int -> bool;
  contains : tid:int -> int -> bool;
  size : unit -> int;
  unreclaimed : unit -> int;
  allocated : unit -> int;
  pin : tid:int -> unit;
  epoch_advances : unit -> int;
  stats : unit -> Obs.Counters.snapshot;
  pool_batches : unit -> int;
}

(* ------------------------------------------------------------------ *)
(* Descriptor tables: one row per scheme, one row per structure. A new *)
(* backend or structure is a table entry, not a new builder function.  *)
(* ------------------------------------------------------------------ *)

(* The structure-level operations a built instance contributes; the
   scheme-level accessors (unreclaimed/stats/pin/...) are attached
   uniformly by [make] below. Queues and stacks adapt their natural API
   onto the set shape (see [structure_table]) so one workload driver
   exercises everything. *)
type ops = {
  o_insert : tid:int -> int -> bool;
  o_delete : tid:int -> int -> bool;
  o_contains : tid:int -> int -> bool;
  o_size : unit -> int;
}

(* A constructed guarded/optimistic backend packed with its module, so
   structure wiring can apply its functor to it. *)
module type GUARDED_INST = sig
  module R : Reclaim.Smr_intf.GUARDED

  val r : R.t
end

module type OPTIMISTIC_INST = sig
  module V : Reclaim.Smr_intf.OPTIMISTIC

  val v : V.t
end

type kind = Set | Queue | Stack

type structure_row = {
  st_name : string;
  st_kind : kind;
  max_level : int;  (* tower cap the global pool must support *)
  hazard_slots : int;  (* protection slots per thread (guarded schemes) *)
  guarded :
    ((module GUARDED_INST) ->
    arena:Arena.t ->
    range:int ->
    buckets:int ->
    ops)
    option;
  optimistic :
    ((module OPTIMISTIC_INST) -> range:int -> buckets:int -> ops) option;
  guarded_schemes : string list option;
      (* allow-list of guarded scheme names; None = all (see harris) *)
}

type scheme_row = {
  sc_name : string;
  backend : Reclaim.Smr_intf.backend;
  default_retire : int;
}

let scheme_table =
  Reclaim.Smr_intf.
    [
      { sc_name = "NoRecl"; backend = Guarded (module Reclaim.No_recl); default_retire = 128 };
      { sc_name = "EBR"; backend = Guarded (module Reclaim.Ebr); default_retire = 128 };
      { sc_name = "HP"; backend = Guarded (module Reclaim.Hp); default_retire = 128 };
      { sc_name = "HE"; backend = Guarded (module Reclaim.He); default_retire = 128 };
      { sc_name = "IBR"; backend = Guarded (module Reclaim.Ibr); default_retire = 128 };
      { sc_name = "VBR"; backend = Optimistic (module Vbr_core.Vbr); default_retire = 64 };
    ]

(* Wiring helpers: apply a structure functor to a packed backend and
   project the result onto [ops]. One per structure family — these are
   the table cells, not per-scheme builders. *)

let set_ops (type s) ~insert ~delete ~contains ~size (s : s) =
  {
    o_insert = (fun ~tid k -> insert s ~tid k);
    o_delete = (fun ~tid k -> delete s ~tid k);
    o_contains = (fun ~tid k -> contains s ~tid k);
    o_size = (fun () -> size s);
  }

(* Queues/stacks under the set-shaped workload driver: insert produces,
   delete consumes, contains probes emptiness (a read-mostly profile thus
   maps onto a peek-heavy mix). *)
let queue_ops (type s) ~enqueue ~dequeue ~is_empty ~length (s : s) =
  {
    o_insert =
      (fun ~tid k ->
        enqueue s ~tid k;
        true);
    o_delete = (fun ~tid _ -> dequeue s ~tid <> None);
    o_contains = (fun ~tid _ -> not (is_empty s ~tid));
    o_size = (fun () -> length s);
  }

let structure_table =
  [
    {
      st_name = "list";
      st_kind = Set;
      max_level = 1;
      hazard_slots = 3;
      guarded =
        Some
          (fun (module I : GUARDED_INST) ~arena ~range:_ ~buckets:_ ->
            let module L = Dstruct.Linked_list.Make (I.R) in
            set_ops ~insert:L.insert ~delete:L.delete ~contains:L.contains
              ~size:L.size
              (L.create I.r ~arena));
      optimistic =
        Some
          (fun (module I : OPTIMISTIC_INST) ~range:_ ~buckets:_ ->
            let module L = Dstruct.Vbr_list.Make (I.V) in
            set_ops ~insert:L.insert ~delete:L.delete ~contains:L.contains
              ~size:L.size (L.create I.v));
      guarded_schemes = None;
    };
    {
      st_name = "hash";
      st_kind = Set;
      max_level = 1;
      hazard_slots = 3;
      guarded =
        Some
          (fun (module I : GUARDED_INST) ~arena ~range:_ ~buckets ->
            let module H = Dstruct.Hash_table.Make (I.R) in
            set_ops ~insert:H.insert ~delete:H.delete ~contains:H.contains
              ~size:H.size
              (H.create I.r ~arena ~buckets));
      optimistic =
        Some
          (fun (module I : OPTIMISTIC_INST) ~range:_ ~buckets ->
            let module H = Dstruct.Vbr_hash.Make (I.V) in
            set_ops ~insert:H.insert ~delete:H.delete ~contains:H.contains
              ~size:H.size
              (H.create I.v ~buckets));
      guarded_schemes = None;
    };
    {
      st_name = "skiplist";
      st_kind = Set;
      max_level = Dstruct.Skiplist.max_level;
      hazard_slots = (2 * Dstruct.Skiplist.max_level) + 2;
      guarded =
        Some
          (fun (module I : GUARDED_INST) ~arena ~range:_ ~buckets:_ ->
            let module S = Dstruct.Skiplist.Make (I.R) in
            set_ops ~insert:S.insert ~delete:S.delete ~contains:S.contains
              ~size:S.size (S.create I.r ~arena));
      optimistic =
        Some
          (fun (module I : OPTIMISTIC_INST) ~range:_ ~buckets:_ ->
            let module S = Dstruct.Vbr_skiplist.Make (I.V) in
            set_ops ~insert:S.insert ~delete:S.delete ~contains:S.contains
              ~size:S.size (S.create I.v));
      guarded_schemes = None;
    };
    {
      st_name = "harris";
      st_kind = Set;
      max_level = 1;
      hazard_slots = 3;
      guarded =
        Some
          (fun (module I : GUARDED_INST) ~arena ~range:_ ~buckets:_ ->
            let module L = Dstruct.Harris_list.Make (I.R) in
            set_ops ~insert:L.insert ~delete:L.delete ~contains:L.contains
              ~size:L.size (L.create I.r ~arena));
      optimistic =
        (* Vbr_list's Figure-3 find *is* the Harris-style segment-trimming
           traversal, so it serves as both. *)
        Some
          (fun (module I : OPTIMISTIC_INST) ~range:_ ~buckets:_ ->
            let module L = Dstruct.Vbr_list.Make (I.V) in
            set_ops ~insert:L.insert ~delete:L.delete ~contains:L.contains
              ~size:L.size (L.create I.v));
      (* Traversals walk through marked nodes, which pointer-based schemes
         (HP/HE/IBR) cannot protect — see Dstruct.Harris_list. *)
      guarded_schemes = Some [ "NoRecl"; "EBR" ];
    };
    {
      st_name = "queue";
      st_kind = Queue;
      max_level = 1;
      hazard_slots = 2;
      guarded =
        Some
          (fun (module I : GUARDED_INST) ~arena ~range:_ ~buckets:_ ->
            let module Q = Dstruct.Ms_queue.Make (I.R) in
            queue_ops ~enqueue:Q.enqueue ~dequeue:Q.dequeue
              ~is_empty:Q.is_empty ~length:Q.length (Q.create I.r ~arena));
      optimistic =
        Some
          (fun (module I : OPTIMISTIC_INST) ~range:_ ~buckets:_ ->
            let module Q = Dstruct.Vbr_queue.Make (I.V) in
            queue_ops ~enqueue:Q.enqueue ~dequeue:Q.dequeue
              ~is_empty:Q.is_empty ~length:Q.length (Q.create I.v));
      guarded_schemes = None;
    };
    {
      st_name = "stack";
      st_kind = Stack;
      max_level = 1;
      hazard_slots = 1;
      guarded =
        Some
          (fun (module I : GUARDED_INST) ~arena ~range:_ ~buckets:_ ->
            let module S = Dstruct.Treiber_stack.Make (I.R) in
            queue_ops ~enqueue:S.push ~dequeue:S.pop ~is_empty:S.is_empty
              ~length:S.length (S.create I.r ~arena));
      optimistic =
        Some
          (fun (module I : OPTIMISTIC_INST) ~range:_ ~buckets:_ ->
            let module S = Dstruct.Vbr_stack.Make (I.V) in
            queue_ops ~enqueue:S.push ~dequeue:S.pop ~is_empty:S.is_empty
              ~length:S.length (S.create I.v));
      guarded_schemes = None;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Table lookups and the one generic builder.                          *)
(* ------------------------------------------------------------------ *)

let schemes = List.map (fun sc -> sc.sc_name) scheme_table
let structures = List.map (fun st -> st.st_name) structure_table
let find_scheme s = List.find_opt (fun sc -> sc.sc_name = s) scheme_table
let find_structure s = List.find_opt (fun st -> st.st_name = s) structure_table

let structure_kind ~structure =
  Option.map (fun st -> st.st_kind) (find_structure structure)

let supports ~structure ~scheme =
  match (find_structure structure, find_scheme scheme) with
  | Some st, Some sc -> (
      match sc.backend with
      | Reclaim.Smr_intf.Guarded _ ->
          Option.is_some st.guarded
          && Option.fold ~none:true
               ~some:(List.mem scheme)
               st.guarded_schemes
      | Reclaim.Smr_intf.Optimistic _ -> Option.is_some st.optimistic)
  | _ -> false

let make ~structure ~scheme ~n_threads ~range ~capacity ?buckets
    ?retire_threshold ?(epoch_freq = 32) ?trace ?sanitizer () =
  if not (supports ~structure ~scheme) then
    invalid_arg
      (Printf.sprintf "Registry: %s does not support %s" structure scheme);
  let st = Option.get (find_structure structure) in
  let sc = Option.get (find_scheme scheme) in
  (* The hash rows size their bucket array from this; every other
     structure ignores it. Default: the historical load-factor-1 sizing. *)
  let buckets = Option.value buckets ~default:range in
  if buckets < 1 then invalid_arg "Registry: buckets < 1";
  let retire_threshold =
    Option.value retire_threshold ~default:sc.default_retire
  in
  let arena = Arena.create ~capacity in
  Option.iter (fun m -> ignore (Arena.attach_sanitizer arena m)) sanitizer;
  let global = Global_pool.create ~max_level:st.max_level in
  let iname = st.st_name ^ "/" ^ sc.sc_name in
  let allocated () = Arena.allocated arena in
  match sc.backend with
  | Reclaim.Smr_intf.Guarded (module R) ->
      let r =
        R.create ~arena ~global ~n_threads ~hazards:st.hazard_slots
          ~retire_threshold ~epoch_freq
      in
      Option.iter (R.set_trace r) trace;
      let ops =
        (Option.get st.guarded)
          (module struct
            module R = R

            let r = r
          end)
          ~arena ~range ~buckets
      in
      {
        iname;
        insert = ops.o_insert;
        delete = ops.o_delete;
        contains = ops.o_contains;
        size = ops.o_size;
        unreclaimed = (fun () -> R.unreclaimed r);
        allocated;
        pin =
          (fun ~tid ->
            R.begin_op r ~tid;
            (* Publish era/hazard protection over slot 1 (the first
               allocated node, typically a sentinel — the *era* published
               is what pins state for HE/IBR; HP's robustness shows
               precisely because a single hazard pins almost nothing). *)
            R.protect_own r ~tid ~slot:0 1);
        epoch_advances =
          (* The scheme's own count of successful epoch/era advances, from
             its stats shards (0 for NoRecl/HP, which have no clock). *)
          (fun () -> Obs.Counters.get (R.stats r) Obs.Event.Epoch_advance);
        stats = (fun () -> R.stats r);
        pool_batches = (fun () -> Global_pool.approx_batches global);
      }
  | Reclaim.Smr_intf.Optimistic (module V) ->
      let v =
        V.create ~arena ~global ~n_threads ~hazards:st.hazard_slots
          ~retire_threshold ~epoch_freq
      in
      Option.iter (V.set_trace v) trace;
      let ops =
        (Option.get st.optimistic)
          (module struct
            module V = V

            let v = v
          end)
          ~range ~buckets
      in
      {
        iname;
        insert = ops.o_insert;
        delete = ops.o_delete;
        contains = ops.o_contains;
        size = ops.o_size;
        unreclaimed = (fun () -> V.unreclaimed v);
        allocated;
        (* No thread can stall optimistic reclamation: pinning is a
           no-op. *)
        pin = (fun ~tid:_ -> ());
        epoch_advances = (fun () -> V.epoch_advances v);
        stats = (fun () -> V.stats v);
        pool_batches = (fun () -> Global_pool.approx_batches global);
      }
