(** Key-distribution sampling for the workload drivers: the uniform keys
    the paper's harness always used, plus a seeded zipfian generator (the
    ROADMAP "skewed workloads" axis, first slice).

    A [t] holds only the distribution's precomputed constants; every draw
    consumes randomness from the caller's {!Rng.t}, so [Uniform] sampling
    through here is bit-identical to the historical direct
    [Rng.below rng range] call — existing panels are unperturbed. *)

type dist =
  | Uniform
  | Zipf of float
      (** Zipf-distributed ranks with exponent theta in (0, 1): rank [r]
          (0-based) is drawn with probability proportional to
          [1/(r+1)^theta]. Theta ~0.99 is the YCSB-style hot-key skew.
          Hot keys are the low keys. *)

val parse : string -> (dist, string) result
(** ["uniform"] or ["zipf:<theta>"] (e.g. ["zipf:0.99"]). *)

val dist_to_string : dist -> string
(** Inverse of {!parse} (as emitted into BENCH_*.json). *)

type t

val create : dist -> range:int -> t
(** Precompute the distribution over keys [0, range). O(range) for
    [Zipf] (the harmonic normalizer), O(1) for [Uniform].
    @raise Invalid_argument if [range < 1], or theta outside (0, 1). *)

val next : t -> Rng.t -> int
(** Draw one key in [0, range). *)
