(** Per-scheme SMR health telemetry (DESIGN.md §2.15).

    [attach] registers the standard reclamation-health instruments for
    one {!Registry.instance} on a {!Obs.Metrics} registry — gauges
    [vbr_smr_unreclaimed_slots], [vbr_smr_retire_depth],
    [vbr_smr_allocated_slots], [vbr_smr_epoch_stall_seconds],
    [vbr_pool_batches]; counters [vbr_smr_epoch_advances],
    [vbr_smr_retires], [vbr_smr_reclaims], [vbr_smr_rollbacks],
    [vbr_smr_cas_fails], [vbr_pool_steals], and (with [trace])
    [vbr_trace_dropped_events] — every series labelled
    [{scheme="<scheme>"}].

    A background {!Obs.Sampler} collector (default 250 ms cadence) is the
    only caller of the instance's racy accessors; it publishes what it
    reads into atomics and the scrape-side gauge closures read only
    those. Scrapes therefore never execute scheme code and sit outside
    every checkpoint/guard scope — the property vbr-verify's
    blocking-in-critical-section rule polices. *)

type t

val attach :
  Obs.Metrics.t ->
  scheme:string ->
  ?interval_ms:float ->
  ?trace:Obs.Trace.t ->
  Registry.instance ->
  t
(** Register the instrument set and start the collector. Call once per
    (registry, scheme) pair — duplicate attachment raises through
    {!Obs.Metrics}'s duplicate-series check. *)

val refresh_now : t -> unit
(** Run one collection pass synchronously on the calling thread (tests,
    final pre-shutdown snapshot). *)

val stop : t -> unit
(** Stop and join the collector domain. The gauges stay registered and
    keep serving the last published values. *)
