(* Per-scheme SMR health telemetry (DESIGN.md §2.15): registers gauges and
   counters for one {!Registry.instance} on a {!Obs.Metrics} registry and
   keeps them fresh from a background {!Obs.Sampler} collector.

   The split matters for the SMR discipline: the collector domain is the
   only thing that calls into the instance's racy accessors, publishing
   what it reads into atomics; the scrape-side gauge closures read ONLY
   those atomics. A scrape therefore never executes scheme code, never
   enters a checkpoint or guard scope, and stays trivially clean under
   vbr-verify's blocking-in-critical-section rule. *)

open Obs

type t = { sampler : unit Sampler.t }

let attach reg ~scheme ?(interval_ms = 250.0) ?trace
    (inst : Registry.instance) =
  let labels = [ ("scheme", scheme) ] in
  (* Collector-refreshed caches. The initial values are read here, on the
     attaching thread, before any gauge can be scraped. *)
  let snap = Atomic.make (inst.stats ()) in
  let unreclaimed = Atomic.make (inst.unreclaimed ()) in
  let allocated = Atomic.make (inst.allocated ()) in
  let pool = Atomic.make (inst.pool_batches ()) in
  let advances = Atomic.make (inst.epoch_advances ()) in
  let last_advance_change = Atomic.make (Clock.now_s ()) in
  let refresh () =
    Atomic.set snap (inst.stats ());
    Atomic.set unreclaimed (inst.unreclaimed ());
    Atomic.set allocated (inst.allocated ());
    Atomic.set pool (inst.pool_batches ());
    let adv = inst.epoch_advances () in
    if adv <> Atomic.get advances then begin
      Atomic.set advances adv;
      Atomic.set last_advance_change (Clock.now_s ())
    end
  in
  let get ev = Counters.get (Atomic.get snap) ev in
  let fgauge name help read = Metrics.gauge reg ~help ~labels name read in
  let ctr name help read = Metrics.counter_fn reg ~help ~labels name read in
  fgauge "vbr_smr_unreclaimed_slots"
    "Retired-but-not-yet-reusable slots (the paper's robustness metric)."
    (fun () -> float_of_int (Atomic.get unreclaimed));
  fgauge "vbr_smr_retire_depth"
    "Slots sitting on retire lists: cumulative retires minus reclaims."
    (fun () ->
      float_of_int (max 0 (get Event.Retire - get Event.Reclaim)));
  fgauge "vbr_smr_allocated_slots"
    "Arena slots ever claimed (memory footprint)."
    (fun () -> float_of_int (Atomic.get allocated));
  fgauge "vbr_smr_epoch_stall_seconds"
    "Seconds since the global epoch/era counter last moved (0-advance \
     schemes like NoRecl/HP grow without bound; a stalled EBR grows until \
     the stall clears)."
    (fun () -> Clock.now_s () -. Atomic.get last_advance_change);
  fgauge "vbr_pool_batches"
    "Batches currently parked in the shared global pool (all shards)."
    (fun () -> float_of_int (Atomic.get pool));
  ctr "vbr_smr_epoch_advances"
    "Successful global epoch/era increments."
    (fun () -> Atomic.get advances);
  ctr "vbr_smr_retires" "Slots retired." (fun () -> get Event.Retire);
  ctr "vbr_smr_reclaims" "Slots reclaimed for reuse." (fun () ->
      get Event.Reclaim);
  ctr "vbr_smr_rollbacks" "VBR checkpoint rollbacks." (fun () ->
      get Event.Rollback);
  ctr "vbr_smr_cas_fails" "Failed CAS attempts in scheme code." (fun () ->
      get Event.Cas_fail);
  ctr "vbr_pool_steals"
    "Global-pool batches taken from a foreign shard."
    (fun () -> get Event.Global_steal);
  (match trace with
  | Some tr ->
      ctr "vbr_trace_dropped_events"
        "Lifecycle trace events lost to ring overwrite."
        (fun () -> Trace.dropped tr)
  | None -> ());
  { sampler = Sampler.start ~interval_ms ~keep_last:1 ~read:refresh () }

let refresh_now t = ignore (Sampler.read_now t.sampler)
let stop t = ignore (Sampler.stop t.sampler)
