(** Named deterministic scenarios and the explore / replay drivers.

    A scenario is a pure function of (decisions, tail, mode): it builds
    a fresh instance, runs its thread bodies under {!Sched}, and
    post-checks the result. Families:

    - [lin-<structure>-<scheme>] (every scheme × list, skiplist): three
      scripted threads, Strict sanitization, a lifecycle trace checked by
      {!Lint.Trace_check}, and a {!Harness.Lin} linearizability check
      over virtually-timestamped histories.
    - [robust-<scheme>-<structure>] (every reclaiming scheme × list,
      skiplist): the paper's §1 descheduled-thread experiment as a
      deterministic assertion — a reader stalled forever mid-search must
      make EBR's unreclaimed count grow past a linear bound while
      HP/HE/IBR/VBR stay bounded and keep reclaiming.
    - Seeded bugs ([aba-immediate-free], [late-guard], [double-retire]):
      broken protocols the explorer must catch; their shrunk tokens form
      the [test/sched_fixtures/] corpus.

    Step quotas are derived per scenario from its thread count (a
    3-thread workload legitimately needs ~3× the slices of a 2-thread
    one), not from one global constant.

    {!explore} is coverage-guided by default (DESIGN.md §2.16): each
    execution's canonical {!Coverage} signature and choice-prefix trail
    feed a corpus of decision strings that reached novel territory, and
    mutants of those strings replace most uniform-random tails. Sleep-set
    pruning ({!Sched.Dpor}) is also on by default. *)

type failure = {
  cls : string;
      (** stable failure class: ["lin"], ["sanitizer"], ["trace"],
          ["robustness"], ["conservation"], ["quota"] or ["exn"] *)
  detail : string;
}

type report = {
  scenario : string;
  tail : Sched.tail;
  mode : Sched.mode;
  outcome : Sched.outcome;
  failure : failure option;  (** [None] = the run passed every check *)
}

val scenarios : string list
(** Every scenario name, table order. *)

val seeded_bugs : string list
(** The scenarios built over deliberately broken protocols: exploration
    is expected to find a failing schedule there, and a clean sweep over
    one of them means the explorer (not the scheme) regressed. *)

type spec = {
  sp_name : string;
  sp_tail : Sched.tail;  (** canonical tail policy *)
  sp_max_len : int;  (** canonical decision-string length *)
  sp_threads : int;  (** virtual threads the scenario spawns *)
  sp_quota : int;  (** step quota = threads × per-thread allowance *)
  sp_expect_bug : bool;
}
(** Static facts about a scenario, for drivers ({!Fleet}, the CLI) that
    schedule work without running it. *)

val spec : string -> spec
(** @raise Invalid_argument on an unknown scenario name. *)

val run_scenario :
  ?decisions:int array ->
  ?tail:Sched.tail ->
  ?mode:Sched.mode ->
  ?coverage:Coverage.t ->
  string ->
  report
(** Run one scenario once. [tail] defaults to the scenario's canonical
    policy (Round_robin for robust-*, First otherwise); [mode] defaults
    to [Plain]. [coverage], when given, receives the run's accesses and
    choices. @raise Invalid_argument on an unknown scenario name. *)

val replay : string -> report
(** Decode a {!Token} and re-run its scenario with exactly the recorded
    decisions in the recorded mode — the bit-for-bit reproduction path.
    @raise Token.Malformed on a bad (or stale pre-S2) token,
    [Invalid_argument] on an unknown scenario. *)

type stats = {
  st_execs : int;  (** executions actually run *)
  st_distinct : int;  (** distinct coverage signatures visited *)
  st_pruned : int;  (** candidates pruned by sleep sets, summed *)
  st_resets : int;  (** sleep-set progress resets, summed *)
  st_secs : float;  (** wall-clock seconds spent *)
}

type found = {
  f_token : string;  (** full recorded schedule of the failing run *)
  f_shrunk : string;  (** ddmin-minimised token, same failure class *)
  f_failure : failure;
  f_attempt : int;  (** 1-based attempt index that failed *)
  f_stats : stats;  (** coverage stats up to and including the catch *)
}

type explored = Clean of stats | Found of found

val explore :
  ?seed:int ->
  ?budget:int ->
  ?max_len:int ->
  ?guided:bool ->
  ?mode:Sched.mode ->
  scenario:string ->
  unit ->
  explored
(** Schedule exploration: up to [budget] (default 200) runs with decision
    strings of length [max_len] (default: per-scenario). [guided] (default
    true) turns on the coverage corpus + mutation loop; false means pure
    seeded-random strings. [mode] (default [Dpor]) selects sleep-set
    pruning. Stops at the first failing schedule, shrinks it with
    {!Shrink.ddmin} preserving the failure class, and returns both tokens
    plus coverage stats; [Clean stats] if no schedule failed.
    @raise Invalid_argument on an unknown scenario name. *)

val shrink :
  scenario:string ->
  tail:Sched.tail ->
  mode:Sched.mode ->
  cls:string ->
  int array ->
  int array
(** ddmin a failing decision string, preserving its failure class —
    exposed for drivers (the fleet, soak mode) that find failures
    outside {!explore}. *)
