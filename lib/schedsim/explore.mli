(** Named deterministic scenarios and the explore / replay drivers.

    A scenario is a pure function of (decisions, tail): it builds a fresh
    instance, runs its thread bodies under {!Sched}, and post-checks the
    result. Families:

    - [lin-<structure>-<scheme>] (every scheme × list, skiplist): three
      scripted threads, Strict sanitization, a lifecycle trace checked by
      {!Lint.Trace_check}, and a {!Harness.Lin} linearizability check
      over virtually-timestamped histories.
    - [robust-<scheme>-<structure>] (every reclaiming scheme × list,
      skiplist): the paper's §1 descheduled-thread experiment as a
      deterministic assertion — a reader stalled forever mid-search must
      make EBR's unreclaimed count grow past a linear bound while
      HP/HE/IBR/VBR stay bounded and keep reclaiming.
    - Seeded bugs ([aba-immediate-free], [late-guard], [double-retire]):
      broken protocols the explorer must catch; their shrunk tokens form
      the [test/sched_fixtures/] corpus. *)

type failure = {
  cls : string;
      (** stable failure class: ["lin"], ["sanitizer"], ["trace"],
          ["robustness"], ["quota"] or ["exn"] *)
  detail : string;
}

type report = {
  scenario : string;
  tail : Sched.tail;
  outcome : Sched.outcome;
  failure : failure option;  (** [None] = the run passed every check *)
}

val scenarios : string list
(** Every scenario name, table order. *)

val seeded_bugs : string list
(** The scenarios built over deliberately broken protocols: exploration
    is expected to find a failing schedule there, and a clean sweep over
    one of them means the explorer (not the scheme) regressed. *)

val run_scenario :
  ?decisions:int array -> ?tail:Sched.tail -> string -> report
(** Run one scenario once. [tail] defaults to the scenario's canonical
    policy (Round_robin for robust-*, First otherwise).
    @raise Invalid_argument on an unknown scenario name. *)

val replay : string -> report
(** Decode a {!Token} and re-run its scenario with exactly the recorded
    decisions — the bit-for-bit reproduction path.
    @raise Token.Malformed on a bad token,
    [Invalid_argument] on an unknown scenario. *)

type found = {
  f_token : string;  (** full recorded schedule of the failing run *)
  f_shrunk : string;  (** ddmin-minimised token, same failure class *)
  f_failure : failure;
  f_attempt : int;  (** 1-based attempt index that failed *)
}

type explored = Clean of int | Found of found

val explore :
  ?seed:int -> ?budget:int -> ?max_len:int -> scenario:string -> unit -> explored
(** Random schedule exploration: up to [budget] (default 200) runs with
    seeded random decision strings of length [max_len] (default:
    per-scenario). Stops at the first failing schedule, shrinks it with
    {!Shrink.ddmin} preserving the failure class, and returns both
    tokens; [Clean budget] if no schedule failed.
    @raise Invalid_argument on an unknown scenario name. *)
