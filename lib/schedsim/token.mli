(** Replay tokens: a failing schedule as one copy-pastable line,
    [S2.<scenario>.<tail>.<mode>.<rle>] — version prefix, scenario name
    from {!Explore}'s table, tail policy ([f]irst / [r]ound-robin),
    scheduler mode ([p]lain / [d]por), and the run-length-encoded
    decision string ("0,2x3,1" = [|0;2;2;2;1|]; "-" when empty).

    Replaying a token re-runs its scenario with exactly these decisions
    in exactly the recorded mode; because an execution is a pure
    function of (scenario, decisions, tail, mode), the failure
    reproduces bit for bit. The mode matters: Dpor sleep-set pruning
    changes which threads the candidate set contains, so the same
    decision indices name different schedules in the two modes.

    The version prefix is bumped whenever encoding or decision semantics
    change, so a stale token fails loudly instead of replaying a
    different schedule; pre-fleet [S1] tokens get a dedicated error
    explaining the (mechanical, safe) upgrade to [S2] mode ['p']. *)

val version : string

exception Malformed of string

val encode :
  scenario:string -> tail:Sched.tail -> mode:Sched.mode -> int array -> string
(** @raise Invalid_argument if the scenario name contains '.' or ','. *)

val decode : string -> string * Sched.tail * Sched.mode * int array
(** [(scenario, tail, mode, decisions)] of a token.
    @raise Malformed with a diagnostic on any parse error. *)
