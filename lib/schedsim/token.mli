(** Replay tokens: a failing schedule as one copy-pastable line,
    [S1.<scenario>.<tail>.<rle>] — version prefix, scenario name from
    {!Explore}'s table, tail policy ([f]irst / [r]ound-robin), and the
    run-length-encoded decision string ("0,2x3,1" = [|0;2;2;2;1|]; "-"
    when empty).

    Replaying a token re-runs its scenario with exactly these decisions;
    because an execution is a pure function of (scenario, decisions,
    tail), the failure reproduces bit for bit. The version prefix is
    bumped whenever encoding or decision semantics change, so a stale
    token fails loudly instead of replaying a different schedule. *)

val version : string

exception Malformed of string

val encode : scenario:string -> tail:Sched.tail -> int array -> string
(** @raise Invalid_argument if the scenario name contains '.' or ','. *)

val decode : string -> string * Sched.tail * int array
(** [(scenario, tail, decisions)] of a token.
    @raise Malformed with a diagnostic on any parse error. *)
