(* Replay tokens: a failing schedule printed as one copy-pastable line.

   Grammar:  S2.<scenario>.<tail>.<mode>.<rle>
     scenario  name from Explore's table; no '.' allowed
     tail      f (First) | r (Round_robin)
     mode      p (Plain) | d (Dpor)
     rle       run-length-encoded decisions: comma-separated [v] or
               [vxn] groups ("0,2x3,1" = [|0;2;2;2;1|]); "-" when empty

   The mode is part of the schedule's identity: under Dpor sleep-set
   pruning the candidate set at a choice point excludes sleeping
   threads, so the same decision indices map to different threads than
   in Plain mode. A token therefore names the mode it was recorded
   under and replays in that mode.

   The version prefix is bumped whenever the encoding or the decision
   semantics change, so a stale token fails loudly instead of silently
   replaying a different schedule. S1 tokens (the pre-fleet format,
   without a mode field) are rejected with a pointed message: their
   decision strings were recorded against the full runnable set, which
   is what mode 'p' means today, so upgrading one by hand is safe —
   insert ".p" after the tail letter — but we refuse to guess. *)

let version = "S2"

let check_scenario s =
  if s = "" then invalid_arg "Token: empty scenario name";
  String.iter
    (fun c ->
      if c = '.' || c = ',' then
        invalid_arg "Token: scenario name may not contain '.' or ','")
    s

let encode_rle d =
  if Array.length d = 0 then "-"
  else begin
    let buf = Buffer.create 64 in
    let flush v count =
      if Buffer.length buf > 0 then Buffer.add_char buf ',';
      if count = 1 then Buffer.add_string buf (string_of_int v)
      else Buffer.add_string buf (Printf.sprintf "%dx%d" v count)
    in
    let v = ref d.(0) and count = ref 1 in
    for i = 1 to Array.length d - 1 do
      if d.(i) = !v then incr count
      else begin
        flush !v !count;
        v := d.(i);
        count := 1
      end
    done;
    flush !v !count;
    Buffer.contents buf
  end

let tail_to_char = function Sched.First -> 'f' | Sched.Round_robin -> 'r'
let mode_to_char = function Sched.Plain -> 'p' | Sched.Dpor -> 'd'

let encode ~scenario ~tail ~mode decisions =
  check_scenario scenario;
  Printf.sprintf "%s.%s.%c.%c.%s" version scenario (tail_to_char tail)
    (mode_to_char mode) (encode_rle decisions)

exception Malformed of string

let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

let int_field what s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> v
  | _ -> fail "%s %S is not a non-negative integer" what s

let decode_rle s =
  if s = "-" then [||]
  else
    String.split_on_char ',' s
    |> List.concat_map (fun group ->
           match String.index_opt group 'x' with
           | None -> [ int_field "decision" group ]
           | Some i ->
               let v = int_field "decision" (String.sub group 0 i) in
               let n =
                 int_field "repeat count"
                   (String.sub group (i + 1) (String.length group - i - 1))
               in
               if n < 1 then fail "repeat count in %S must be >= 1" group;
               List.init n (fun _ -> v))
    |> Array.of_list

let decode_tail = function
  | "f" -> Sched.First
  | "r" -> Sched.Round_robin
  | t -> fail "unknown tail policy %S (want f or r)" t

let decode_mode = function
  | "p" -> Sched.Plain
  | "d" -> Sched.Dpor
  | m -> fail "unknown mode %S (want p or d)" m

let decode s =
  match String.split_on_char '.' s with
  | [ v; scenario; tail; mode; rle ] ->
      if v <> version then
        fail "token version %S (this build expects %s)" v version;
      if scenario = "" then fail "empty scenario name";
      (scenario, decode_tail tail, decode_mode mode, decode_rle rle)
  | "S1" :: _ ->
      fail
        "stale S1 token: pre-fleet format without a mode field. S1 \
         decisions indexed the full runnable set (today's mode 'p'); to \
         upgrade, insert \".p\" after the tail letter — e.g. \
         S1.name.f.0,2 becomes S2.name.f.p.0,2"
  | _ -> fail "want %s.<scenario>.<tail>.<mode>.<rle>, got %S" version s
