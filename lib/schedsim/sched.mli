(** The cooperative virtual-thread scheduler (DESIGN.md §2.11): N logical
    threads interleaved on one domain, with a scheduling decision at
    every instrumented shared-memory access.

    While {!run} is active it installs the {!Memsim.Access} hook, so
    every [Access] operation performed by a thread body suspends the
    body and returns control to the scheduler. Which thread resumes is
    chosen by a {e decision string}: an execution is a pure function of
    (bodies, decisions, tail policy, fault), and a failing interleaving
    replays bit for bit from the decisions the run records.

    Decisions are consumed only when more than one thread is runnable;
    forced moves are free. A decision value [d] picks entry
    [d mod |runnable|] of the runnable set in ascending thread order.
    When the string is exhausted, the {!tail} policy takes over — and
    those picks are recorded too, so [outcome.recorded] always
    determines the whole schedule. *)

type tail =
  | First  (** always the lowest-numbered runnable thread *)
  | Round_robin  (** the next runnable thread after the last scheduled *)

val forever : int
(** Stall duration meaning "never wakes up" ([max_int]). *)

type fault = {
  victim : int;  (** thread to stall *)
  after_yields : int;  (** stall begins at the victim's n-th yield point *)
  for_steps : int;  (** scheduler steps to stay stalled; {!forever} = never *)
}
(** The §1 descheduled-thread fault, as scheduler policy: the victim is
    removed from the runnable set at its [after_yields]-th yield point —
    mid-operation, with whatever protection it published still live. *)

type outcome = {
  recorded : int array;
      (** every decision actually taken, including tail-policy picks:
          replaying with [~decisions:recorded] reproduces the schedule
          exactly, whatever the tail *)
  steps : int;  (** total scheduler slices executed *)
  completed : bool array;
      (** per thread: body ran to completion (a stalled or torn-down
          thread reports [false]) *)
  error : exn option;
      (** first exception raised by any thread body, or
          {!Quota_exceeded}; [None] for a clean run *)
}

exception Torn_down
(** Raised inside unfinished fibers at the end of a run to unwind them.
    Thread bodies should not catch it; it is never reported as an
    [outcome.error]. *)

exception Quota_exceeded of int
(** The run passed [max_steps] scheduler slices (livelock guard). *)

type _ Effect.t += Yield : unit Effect.t
(** The suspension effect; performed by the installed Access hook.
    Exposed so bespoke bodies can add extra decision points. *)

val now : unit -> float
(** The virtual clock: scheduler slices since {!run} began, as a float
    so recorded histories can use it directly as a
    {!Harness.Lin.event} timestamp. 0 outside a run. *)

val run :
  ?decisions:int array ->
  ?tail:tail ->
  ?max_steps:int ->
  ?fault:fault ->
  ?trace:Obs.Trace.t ->
  (unit -> unit) array ->
  outcome
(** [run bodies] interleaves the bodies (thread [i] = [bodies.(i)]) to
    completion and returns the outcome. Defaults: no decisions (pure
    tail policy), [tail = First], [max_steps = 1_000_000], no fault, no
    trace. [trace], when given, receives a [Sched_yield] event on every
    context switch (ring of the incoming thread; [v1] = outgoing).

    The run ends when every thread that can still wake has finished, an
    error is recorded, or the step quota is hit; remaining suspended
    fibers are then resumed once with {!Torn_down} to unwind.

    Not reentrant (the Access hook is process-global) and must not run
    concurrently with any other domain touching instrumented words.
    @raise Invalid_argument on an empty body array or an out-of-range
    fault victim. *)
