(** The cooperative virtual-thread scheduler (DESIGN.md §2.11, §2.16):
    N logical threads interleaved on one domain, with a scheduling
    decision at every instrumented shared-memory access.

    While {!run} is active it installs the {!Memsim.Access} hook for the
    calling domain, so every [Access] operation performed by a thread
    body suspends the body — with the access's identity parked as the
    thread's {e pending access} — and returns control to the scheduler;
    the access commits when the thread is resumed. Which thread resumes
    is chosen by a {e decision string}: an execution is a pure function
    of (bodies, decisions, tail policy, mode, fault), and a failing
    interleaving replays bit for bit from the decisions the run records.

    Decisions are consumed only when more than one thread is a
    candidate; forced moves are free. A decision value [d] picks entry
    [d mod |candidates|] of the candidate set in ascending thread order.
    When the string is exhausted, the {!tail} policy takes over — and
    those picks are recorded too, so [outcome.recorded] always
    determines the whole schedule. In {!Dpor} mode the candidate set
    excludes sleeping threads, so the mode is part of a schedule's
    identity (and of its replay token). *)

type tail =
  | First  (** always the lowest-numbered candidate thread *)
  | Round_robin  (** the next candidate after the last scheduled *)

type mode =
  | Plain  (** candidates = all runnable threads *)
  | Dpor
      (** sleep-set pruning: when candidate [c] is picked, earlier
          candidates whose pending access commutes with [c]'s go to
          sleep until a conflicting access commits. Prunes only
          schedules Mazurkiewicz-equivalent to ones still explored. *)

val forever : int
(** Stall duration meaning "never wakes up" ([max_int]). *)

type fault = {
  victim : int;  (** thread to stall *)
  after_yields : int;  (** stall begins at the victim's n-th yield point *)
  for_steps : int;  (** scheduler steps to stay stalled; {!forever} = never *)
}
(** The §1 descheduled-thread fault, as scheduler policy: the victim is
    removed from the runnable set at its [after_yields]-th yield point —
    mid-operation, with whatever protection it published still live. *)

type outcome = {
  recorded : int array;
      (** every decision actually taken, including tail-policy picks:
          replaying with [~decisions:recorded] (same mode!) reproduces
          the schedule exactly, whatever the tail *)
  steps : int;  (** total scheduler slices executed *)
  completed : bool array;
      (** per thread: body ran to completion (a stalled or torn-down
          thread reports [false]) *)
  error : exn option;
      (** first exception raised by any thread body, or
          {!Quota_exceeded}; [None] for a clean run *)
  pruned : int;
      (** Dpor: candidates excluded by sleep sets, summed over choice
          points (0 in Plain mode) *)
  resets : int;
      (** Dpor: choice points where every candidate was asleep and the
          sleep set was cleared to guarantee progress *)
}

exception Torn_down
(** Raised inside unfinished fibers at the end of a run to unwind them.
    Thread bodies should not catch it; it is never reported as an
    [outcome.error]. *)

exception Quota_exceeded of int
(** The run passed [max_steps] scheduler slices (livelock guard). *)

type _ Effect.t += Yield : unit Effect.t
(** The suspension effect; performed by the installed Access hook.
    Exposed so bespoke bodies can add extra decision points. *)

val now : unit -> float
(** The virtual clock: scheduler slices since {!run} began, as a float
    so recorded histories can use it directly as a
    {!Harness.Lin.event} timestamp. Domain-local; 0 outside a run. *)

val run :
  ?decisions:int array ->
  ?tail:tail ->
  ?mode:mode ->
  ?max_steps:int ->
  ?fault:fault ->
  ?trace:Obs.Trace.t ->
  ?coverage:Coverage.t ->
  (unit -> unit) array ->
  outcome
(** [run bodies] interleaves the bodies (thread [i] = [bodies.(i)]) to
    completion and returns the outcome. Defaults: no decisions (pure
    tail policy), [tail = First], [mode = Plain],
    [max_steps = 1_000_000], no fault, no trace, no coverage. [trace],
    when given, receives a [Sched_yield] event on every context switch
    (ring of the incoming thread; [v1] = outgoing). [coverage], when
    given, is fed every committed access and every recorded choice.

    The run ends when every thread that can still wake has finished, an
    error is recorded, or the step quota is hit; remaining suspended
    fibers are then resumed once with {!Torn_down} to unwind.

    One scheduler per domain (the Access hook is domain-local); the
    fleet ({!Fleet}) runs one per worker domain over disjoint scenario
    instances. Instrumented words must not be shared with any
    concurrently running domain.
    @raise Invalid_argument on an empty body array or an out-of-range
    fault victim. *)
