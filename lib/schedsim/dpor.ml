(* The DPOR dependence relation over instrumented accesses.

   Two accesses are independent (commute) when executing them in either
   order from the same state yields the same state and the same values:
   accesses to physically distinct words always commute, and two reads
   of the same word commute. Everything else — any pair touching the
   same word where at least one side writes — conflicts. A CAS or
   exchange counts as a write even though it may fail and leave the word
   untouched: treating it as a read would require knowing the outcome,
   and over-approximating the dependence relation only costs pruning
   power, never soundness.

   This is the predicate the scheduler's sleep sets (sched.ml) and the
   coverage canonicalisation (coverage.ml) are built on; keeping it in
   one tiny module is what lets the unit tests pin its exact truth
   table. *)

open Memsim

let writes = function
  | Access.Read -> false
  | Access.Write | Access.Cas | Access.Exchange | Access.Fetch_add -> true

(* Stable small codes for hashing (coverage signatures bake these in, so
   reordering the kind variant would silently re-key old measurements —
   keep the codes explicit). *)
let kind_code = function
  | Access.Read -> 0
  | Access.Write -> 1
  | Access.Cas -> 2
  | Access.Exchange -> 3
  | Access.Fetch_add -> 4

let conflicts (a : Access.op) (b : Access.op) =
  a.Access.word == b.Access.word
  && (writes a.Access.kind || writes b.Access.kind)

let commutes a b = not (conflicts a b)
