(* Delta-debugging over decision strings (ddmin, Zeller & Hildebrandt).

   Because the scheduler consumes decisions only at genuine choice
   points and falls back to the tail policy past the end of the string,
   any subsequence of a failing string is itself a well-formed schedule
   — removal never desynchronises the suffix, it just reroutes it. That
   is what makes plain ddmin effective here.

   The predicate must be deterministic (replay the same scenario); it
   receives candidate decision strings and answers "does this still
   fail the same way". *)

let ddmin fails arr =
  if not (fails arr) then
    invalid_arg "Shrink.ddmin: input does not satisfy the predicate";
  let rec go arr n =
    let len = Array.length arr in
    if len <= 1 then arr
    else begin
      let chunk = max 1 ((len + n - 1) / n) in
      (* Try each complement (the string minus one chunk). *)
      let rec complements i =
        let lo = i * chunk in
        if lo >= len then None
        else
          let hi = min len (lo + chunk) in
          let cand =
            Array.append (Array.sub arr 0 lo) (Array.sub arr hi (len - hi))
          in
          if Array.length cand < len && fails cand then Some cand
          else complements (i + 1)
      in
      match complements 0 with
      | Some cand -> go cand (max 2 (n - 1))
      | None -> if chunk = 1 then arr else go arr (min len (2 * n))
    end
  in
  let arr = go arr 2 in
  (* Canonicalisation pass: lower surviving decisions to 0 ("first
     runnable") where the failure persists, so equivalent shrunk strings
     from different random originals converge on the same token. *)
  let arr = Array.copy arr in
  for i = 0 to Array.length arr - 1 do
    if arr.(i) <> 0 then begin
      let saved = arr.(i) in
      arr.(i) <- 0;
      if not (fails arr) then arr.(i) <- saved
    end
  done;
  arr
