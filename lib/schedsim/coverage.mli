(** Per-execution coverage accounting for the guided explorer
    (DESIGN.md §2.16).

    A [Coverage.t] is fed every executed access and every scheduling
    choice of one virtual-scheduler run, and yields two things:

    - {!signature}: a canonical hash of the execution, invariant under
      reordering of commuting accesses (Foata-depth canonicalisation of
      the Mazurkiewicz trace). Counting distinct signatures counts
      genuinely distinct interleavings — the "distinct states" metric.
    - {!trail}: rolling prefix hashes of the choice sequence; the first
      prefix never seen before is where the run left charted territory,
      and the mutation engine perturbs decision strings there.

    All hashing is deterministic: word ids are interned per-execution in
    first-touch order, so the numbers depend only on the schedule, never
    on address layout. One [t] serves one execution; create a fresh one
    per run. *)

type t

val create : n_threads:int -> t

val access : t -> tid:int -> Memsim.Access.op -> unit
(** Record that thread [tid] executed (committed) this access. *)

val choice : t -> tid:int -> Memsim.Access.op option -> unit
(** Record a scheduling choice: [tid] was picked at a multi-candidate
    choice point with the given pending access ([None] for a thread's
    first slice, before it has reached any access). *)

val signature : t -> int
(** Canonical execution signature (stable across runs and domains). *)

val trail : t -> int array
(** Prefix hashes of the choice sequence so far, one per recorded
    choice, capped at an internal bound (65536). *)

(** {1 Corpus entries and mutation} *)

type entry = {
  e_dec : int array;  (** the decision string that found novelty *)
  e_novel : int;  (** index of its first never-seen choice prefix *)
}

val random : Harness.Rng.t -> max_len:int -> int array
(** A fresh decision string of length [max_len] with geometric run
    lengths (mean ~8): interesting schedules are run-structured, and
    under sleep-set pruning the addressable ones are exactly those. *)

val uniform : Harness.Rng.t -> max_len:int -> int array
(** The pre-fleet generator: per-position uniform draws. The baseline
    for guided-vs-random coverage comparisons. *)

val mutate : Harness.Rng.t -> entry -> max_len:int -> int array
(** A mutant of [entry]: keeps the prefix up to (near) [e_novel] and
    perturbs at or after it — truncate-and-regrow or point flips. *)
