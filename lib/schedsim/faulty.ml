(* Deliberately broken GUARDED backends: seeded bugs for the schedule
   explorer. Each is a minimal, realistic mistake — the kind of bug the
   SMR discipline exists to prevent — and each needs a specific
   interleaving to bite, so finding it exercises exploration and its
   shrunk decision string becomes a fixture (test/sched_fixtures/).

   Only for tests: never registered in Harness.Registry. *)

open Memsim

(* Frees a retired node immediately, with no grace period and no
   protection: the textbook ABA / read-after-free. Any reader holding
   the node's index across a concurrent delete dereferences a freed
   (possibly reincarnated) slot — Sanitizer Strict catches the deref,
   and the linearizability checker the resulting lost keys. *)
module Immediate_free = struct
  type thread_state = { pool : Pool.t; obs : Obs.Counters.shard }

  type t = { arena : Arena.t; threads : thread_state array; counters : Obs.Counters.t }

  type node = int

  let name = "FaultyImmediateFree"

  let create ~arena ~global ~n_threads ~hazards:_ ~retire_threshold:_
      ~epoch_freq:_ =
    let counters = Obs.Counters.create ~shards:(max 1 n_threads) in
    {
      arena;
      counters;
      threads =
        Array.init n_threads (fun tid ->
            let obs = Obs.Counters.shard counters tid in
            { pool = Pool.create ~stats:obs arena global ~spill:4096; obs });
    }

  let set_trace _ _ = ()
  let begin_op _ ~tid:_ = ()
  let end_op _ ~tid:_ = ()
  let protect _ ~tid:_ ~slot:_ read = read ()
  let protect_read _ ~tid:_ ~slot:_ field = Access.get field
  let protect_own _ ~tid:_ ~slot:_ _ = ()
  let transfer _ ~tid:_ ~src:_ ~dst:_ = ()

  let alloc t ~tid ~level ~key =
    let ts = t.threads.(tid) in
    let i = Pool.take ts.pool ~level in
    Obs.Counters.shard_incr ts.obs Obs.Event.Alloc;
    let n = Arena.get t.arena i in
    n.Node.key <- key;
    Access.set n.Node.retire Node.no_epoch;
    Array.iter (fun w -> Access.set w Packed.null) n.Node.next;
    i

  let dealloc t ~tid i =
    let ts = t.threads.(tid) in
    Obs.Counters.shard_incr ts.obs Obs.Event.Dealloc;
    Pool.put ts.pool i

  (* The bug: straight back to the free list, concurrent readers be
     damned. *)
  let retire t ~tid i =
    let ts = t.threads.(tid) in
    Obs.Counters.shard_incr ts.obs Obs.Event.Retire;
    Obs.Counters.shard_incr ts.obs Obs.Event.Reclaim;
    Pool.put ts.pool i

  let stats t = Obs.Counters.snapshot t.counters
  let freed t = Obs.Counters.read t.counters Obs.Event.Reclaim

  let unreclaimed t =
    Obs.Counters.read t.counters Obs.Event.Retire
    - Obs.Counters.read t.counters Obs.Event.Reclaim
end

(* Hazard pointers with the validation re-read missing: the hazard is
   published after the load, and the load is never repeated. In the
   window between reading the pointer and the hazard store becoming
   visible, a concurrent retire-and-scan misses the hazard and frees
   the node the reader is about to dereference. *)
module Late_guard = struct
  include Reclaim.Hp

  let name = "FaultyLateGuard"

  let protect t ~tid ~slot read =
    let w = read () in
    let i = Packed.index w in
    if i <> 0 then Reclaim.Hp.protect_own t ~tid ~slot i;
    w

  (* Same seeded bug on the closure-free path. *)
  let protect_read t ~tid ~slot field =
    let w = Access.get field in
    let i = Packed.index w in
    if i <> 0 then Reclaim.Hp.protect_own t ~tid ~slot i;
    w
end
