(** Deliberately broken GUARDED backends — seeded bugs the schedule
    explorer must be able to find, shrink, and replay. Test-only; never
    registered in {!Harness.Registry}. *)

module Immediate_free : Reclaim.Smr_intf.GUARDED
(** Frees a retired node immediately: no grace period, no protection.
    The textbook ABA / read-after-free; a specific interleaving makes a
    reader dereference a freed slot ({!Memsim.Sanitizer} [Strict]
    violation) or observe a reincarnated one (linearizability
    violation). *)

module Late_guard : Reclaim.Smr_intf.GUARDED
(** Hazard pointers minus the validation re-read: the hazard is
    published after the load and never re-checked, so a retire-and-scan
    interleaved into that window frees the node the reader is about to
    dereference. *)
