(** The DPOR dependence relation over instrumented accesses
    (DESIGN.md §2.16).

    [conflicts a b] holds when the order of [a] and [b] can matter: they
    target the same physical word and at least one of them writes. CAS
    and exchange count as writes regardless of outcome — an
    over-approximation that costs pruning power, never soundness.
    [commutes] is its negation; the scheduler's sleep sets prune only
    reorderings of commuting accesses, so every pruned schedule is
    Mazurkiewicz-equivalent to one that is still explored. *)

val writes : Memsim.Access.kind -> bool
(** Everything except [Read]. *)

val kind_code : Memsim.Access.kind -> int
(** Stable small integer per kind (baked into coverage signatures). *)

val conflicts : Memsim.Access.op -> Memsim.Access.op -> bool
val commutes : Memsim.Access.op -> Memsim.Access.op -> bool
