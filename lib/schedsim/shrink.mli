(** Delta-debugging minimisation of failing decision strings. *)

val ddmin : (int array -> bool) -> int array -> int array
(** [ddmin fails arr] returns a subsequence of [arr] (possibly with
    surviving entries lowered to 0) on which [fails] still holds, and
    from which no single ddmin chunk can be removed without losing the
    failure. [fails] must be deterministic; it is invoked O(n²) times
    in the worst case.
    @raise Invalid_argument if [fails arr] is already false. *)
