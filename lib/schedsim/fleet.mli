(** Parallel coverage-guided exploration (DESIGN.md §2.16): K worker
    domains run the single-domain virtual scheduler over disjoint
    stripes of a shared candidate batch, while the coordinating domain
    owns all search state — rng, corpus, visited signature and prefix
    sets — and updates it only between rounds, in candidate order.

    The visited-signature set is therefore a pure function of
    (scenario, seed, domains, budget, guided, mode): worker timing
    cannot affect it, so a fixed seed gives byte-identical coverage
    across runs (the determinism test compares {!result.r_signatures}
    verbatim). Failures are reported by candidate order with a ddmin-
    shrunk replay token, exactly like single-domain {!Explore.explore}. *)

type result = {
  r_execs : int;  (** executions actually run (includes the warmup) *)
  r_distinct : int;  (** distinct coverage signatures visited *)
  r_pruned : int;  (** sleep-set pruned candidates, summed *)
  r_resets : int;  (** sleep-set progress resets, summed *)
  r_secs : float;  (** wall-clock seconds *)
  r_signatures : int array;
      (** every distinct signature, sorted ascending — deterministic for
          a fixed (scenario, seed, domains, budget, guided, mode) *)
  r_found : Explore.found option;
      (** first failure by candidate order, shrunk, with tokens *)
}

val explore :
  ?seed:int ->
  ?budget:int ->
  ?domains:int ->
  ?guided:bool ->
  ?mode:Sched.mode ->
  ?target:int ->
  scenario:string ->
  unit ->
  result
(** Explore [scenario] with up to [budget] (default 256) executions
    striped over [domains] (default 4, min 1) worker domains. Stops at
    the first failure, when the budget is spent, or — with [target] —
    at the end of the first round that reaches [target] distinct
    signatures. [guided] and [mode] as in {!Explore.explore}.

    [domains] is logical: it fixes the round/batch structure and hence
    the deterministic trajectory; the OS domains actually spawned are
    capped at [Domain.recommended_domain_count ()], so over-subscribing
    a small host costs nothing and changes no result.

    The first execution (the warmup) runs on the calling domain before
    any worker spawns, forcing every lazy the scenario touches; OCaml's
    [Lazy] is not safe under concurrent first force.
    @raise Invalid_argument on an unknown scenario name. *)
