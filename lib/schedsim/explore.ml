(* The scenario table and the explore/replay drivers on top of Sched.

   A scenario is a named, fully deterministic workload: given a decision
   string, a tail policy and a scheduler mode it builds a fresh instance,
   runs the bodies under the virtual scheduler, and post-checks the run
   (linearizability, sanitizer, trace invariants, robustness bounds).
   Determinism is what makes tokens work — a failure found by
   exploration replays bit for bit from [outcome.recorded] in the same
   mode, and ddmin can shrink it by replaying candidates.

   Three scenario families:
   - lin-<structure>-<scheme>: three threads over a small key range with
     Strict sanitization, a lifecycle trace, and a Wing–Gong
     linearizability check over virtually-timestamped histories.
   - robust-<scheme>-<structure>: the paper's §1/§5.3 descheduled-thread
     experiment, made deterministic: a reader stalled forever mid-search
     while two writers churn. Asserts EBR's unreclaimed count grows
     linearly while HP/HE/IBR/VBR keep reclaiming.
   - pool-steal: the sharded global pool's push/pop/steal CAS loops
     driven through Memsim.Access, post-checked for slot conservation.
   - seeded bugs (aba-immediate-free, late-guard, double-retire): known
     broken protocols whose failing interleavings the explorer must be
     able to find; their shrunk tokens are the test/sched_fixtures/
     corpus.

   Exploration is coverage-guided (DESIGN.md §2.16): every execution
   yields a canonical signature and a choice-prefix trail (Coverage);
   decision strings that reached never-seen territory enter a small
   corpus and get mutated at their novelty point, which walks the
   schedule space far faster than uniform random tails. Sleep-set
   pruning (Sched.Dpor) is on by default and skips whole equivalence
   classes of schedules per execution. *)

open Memsim

type failure = { cls : string; detail : string }

type report = {
  scenario : string;
  tail : Sched.tail;
  mode : Sched.mode;
  outcome : Sched.outcome;
  failure : failure option;
}

type scenario = {
  s_name : string;
  s_tail : Sched.tail;
  s_max_len : int;
  s_threads : int;
  s_quota : int;
  s_expect_bug : bool;
      (* seeded-bug scenarios: exploration is EXPECTED to find a failing
         schedule; not finding one means the explorer lost its teeth *)
  s_exec :
    decisions:int array ->
    tail:Sched.tail ->
    mode:Sched.mode ->
    coverage:Coverage.t option ->
    report;
}

(* Step quotas are per thread, not per scenario: a 3-thread workload
   legitimately takes ~3× the slices of a 2-thread one, and a
   scenario-global number either starves the big scenarios or lets a
   2-thread livelock burn a 3-thread allowance. Robust scenarios get a
   larger per-thread allowance — their writers churn 40 rounds × 8 keys
   through full retire/scan cycles. *)
let quota_std = 400_000
let quota_robust = 700_000

(* Failure classes are part of the fixture format (sched_fixtures files
   name the class they expect), so keep them short and stable. *)
let classify = function
  | Sanitizer.Violation m -> { cls = "sanitizer"; detail = m }
  | Harness.Lin.Non_linearizable m -> { cls = "lin"; detail = m }
  | Sched.Quota_exceeded n ->
      { cls = "quota"; detail = Printf.sprintf "exceeded %d steps" n }
  | e -> { cls = "exn"; detail = Printexc.to_string e }

let report ~name ~tail ~mode ~outcome failure =
  let failure =
    match failure with
    | Some _ as f -> f
    | None -> Option.map classify outcome.Sched.error
  in
  { scenario = name; tail; mode; outcome; failure }

(* ---------- lin-<structure>-<scheme> ---------- *)

(* Fixed per-thread scripts over keys 0..7 (the structure is
   pre-populated with {1,3,5} before the scheduler starts). Small enough
   that the Wing–Gong search is instant, contended enough that insert /
   delete / contains races on the same keys are common. *)
let lin_script tid =
  match tid with
  | 0 -> [ `I 2; `D 1; `C 3; `I 5; `D 2 ]
  | 1 -> [ `D 3; `I 1; `C 2; `D 5; `I 3 ]
  | _ -> [ `C 1; `I 3; `D 2; `C 5; `D 1 ]

let lin_prepopulated = [ 1; 3; 5 ]
let lin_threads = 3

let lin_exec ~structure ~scheme ~name ~decisions ~tail ~mode ~coverage =
  let n_threads = lin_threads in
  let trace =
    Obs.Trace.create ~capacity:(1 lsl 12) ~n_threads ~scheme ()
  in
  let inst =
    Harness.Registry.make ~structure ~scheme ~n_threads ~range:8
      ~capacity:4096 ~retire_threshold:4 ~epoch_freq:2 ~trace
      ~sanitizer:Sanitizer.Strict ()
  in
  (* Quiescent pre-population (no hook installed yet, so these take no
     scheduling decisions); recorded as a strictly-earlier prefix of
     thread 0's history via negative timestamps. *)
  let prefix =
    List.mapi
      (fun j k ->
        let ok = inst.Harness.Registry.insert ~tid:0 k in
        {
          Harness.Lin.op = Harness.Lin.Insert k;
          result = ok;
          inv = float_of_int ((2 * j) - 2 * List.length lin_prepopulated);
          res = float_of_int ((2 * j) + 1 - (2 * List.length lin_prepopulated));
        })
      lin_prepopulated
  in
  let histories = Array.make n_threads [||] in
  let body tid () =
    let events = ref [] in
    List.iter
      (fun step ->
        let inv = Sched.now () in
        let op, result =
          match step with
          | `I k -> (Harness.Lin.Insert k, inst.Harness.Registry.insert ~tid k)
          | `D k -> (Harness.Lin.Delete k, inst.Harness.Registry.delete ~tid k)
          | `C k ->
              (Harness.Lin.Contains k, inst.Harness.Registry.contains ~tid k)
        in
        events := { Harness.Lin.op; result; inv; res = Sched.now () } :: !events)
      (lin_script tid);
    histories.(tid) <- Array.of_list (List.rev !events)
  in
  let outcome =
    Sched.run ~decisions ~tail ~mode ?coverage ~trace
      ~max_steps:(n_threads * quota_std)
      (Array.init n_threads body)
  in
  let failure =
    if outcome.Sched.error <> None then None
    else begin
      (* All bodies completed: check the history, then the trace. *)
      histories.(0) <- Array.append (Array.of_list prefix) histories.(0);
      match Harness.Lin.check_exn histories with
      | () -> (
          let d = Obs.Trace.dump trace in
          match (Lint.Trace_check.check ~file:name d).Lint.Trace_check.findings with
          | [] -> None
          | f :: _ ->
              Some { cls = "trace"; detail = Lint_core.Finding.to_string f })
      | exception Harness.Lin.Non_linearizable m ->
          Some { cls = "lin"; detail = m }
    end
  in
  report ~name ~tail ~mode ~outcome failure

(* ---------- robust-<scheme>-<structure> ---------- *)

(* The §1 experiment as a deterministic assertion. Thread 2 is a reader
   descheduled forever a few yield points into a [contains] — after its
   scheme's protection (epoch announce, hazard, era) is published but
   before the operation completes. Threads 0 and 1 then churn disjoint
   key stripes. Under EBR the frozen announce pins the reclamation
   horizon and unreclaimed grows with every round; HP/HE/IBR pin at most
   the nodes the stalled reader could still reach, and VBR pins nothing.

   The bound is shared: EBR must end ABOVE it, everyone else BELOW it,
   and the non-EBR schemes must also still be making progress in the
   second half of the run (freed strictly increases after the midpoint). *)
let robust_rounds = 40
let robust_stripe = 8
let robust_bound = robust_rounds * 4
let robust_threads = 3

let robust_exec ~structure ~scheme ~name ~decisions ~tail ~mode ~coverage =
  let n_threads = robust_threads in
  let inst =
    Harness.Registry.make ~structure ~scheme ~n_threads ~range:64
      ~capacity:(1 lsl 15) ~retire_threshold:8 ~epoch_freq:4
      ~sanitizer:Sanitizer.Track ()
  in
  for k = 0 to 15 do
    ignore (inst.Harness.Registry.insert ~tid:0 k)
  done;
  let freed_at stats = Obs.Counters.get (stats ()) Obs.Event.Reclaim in
  let samples = Array.make robust_rounds 0 in
  let writer tid () =
    let base = 16 + (tid * robust_stripe) in
    for r = 1 to robust_rounds do
      for j = 0 to robust_stripe - 1 do
        ignore (inst.Harness.Registry.insert ~tid (base + j))
      done;
      for j = 0 to robust_stripe - 1 do
        ignore (inst.Harness.Registry.delete ~tid (base + j))
      done;
      if tid = 0 then
        samples.(r - 1) <- freed_at inst.Harness.Registry.stats
    done
  in
  let reader () =
    (* A single search for the deepest pre-populated key: the walk is
       long enough that the fault lands mid-traversal, protection
       published. *)
    ignore (inst.Harness.Registry.contains ~tid:2 15)
  in
  let bodies = [| writer 0; writer 1; reader |] in
  let fault =
    { Sched.victim = 2; after_yields = 12; for_steps = Sched.forever }
  in
  let outcome =
    Sched.run ~decisions ~tail ~mode ?coverage ~fault
      ~max_steps:(n_threads * quota_robust) bodies
  in
  let failure =
    if outcome.Sched.error <> None then None
    else begin
      let unreclaimed = inst.Harness.Registry.unreclaimed () in
      let fail detail = Some { cls = "robustness"; detail } in
      if scheme = "EBR" then
        if unreclaimed < robust_bound then
          fail
            (Printf.sprintf
               "EBR unreclaimed %d stayed below the linear bound %d: the \
                stalled reader failed to pin the epoch horizon"
               unreclaimed robust_bound)
        else None
      else if unreclaimed > robust_bound then
        fail
          (Printf.sprintf
             "%s unreclaimed %d exceeded the bound %d under a stalled reader"
             scheme unreclaimed robust_bound)
      else
        let mid = samples.((robust_rounds / 2) - 1) in
        let last = samples.(robust_rounds - 1) in
        if not (last > mid && last > 0) then
          fail
            (Printf.sprintf
               "%s stopped reclaiming under a stalled reader: freed %d at \
                round %d, still %d at round %d"
               scheme mid (robust_rounds / 2) last robust_rounds)
        else None
    end
  in
  report ~name ~tail ~mode ~outcome failure

(* ---------- pool-steal ---------- *)

(* The sharded global pool under adversarial interleavings: its
   push/pop/steal CAS loops all go through Memsim.Access, so the virtual
   scheduler can park a thread between the head read and the CAS — the
   window where a lost update or double-pop would hide. Two producers
   feed their own shards while a thief, whose own shard is never fed,
   pops concurrently (every hit is a cross-shard steal). Post-check:
   thief loot + own-shard pops + a quiescent drain must be exactly the
   pushed set, and the resident count must return to zero. *)
let pool_steal_batches = 6
let pool_steal_threads = 3

let pool_steal_exec ~name ~decisions ~tail ~mode ~coverage =
  let g = Global_pool.create ~max_level:1 in
  let n = pool_steal_batches in
  let popped = Array.make 3 [] in
  let body tid () =
    if tid < 2 then begin
      for b = 0 to n - 1 do
        Global_pool.push_batch g ~shard:((4 * tid) + 1) ~level:1
          [ (tid * n) + b ]
      done;
      for _ = 1 to 2 do
        match
          Global_pool.pop_batch g ~shard:((4 * tid) + 1) ~level:1
        with
        | Some b -> popped.(tid) <- b @ popped.(tid)
        | None -> ()
      done
    end
    else
      for probe = 0 to 3 do
        match Global_pool.pop_batch g ~shard:6 ~probe ~level:1 with
        | Some b -> popped.(2) <- b @ popped.(2)
        | None -> ()
      done
  in
  let outcome =
    Sched.run ~decisions ~tail ~mode ?coverage
      ~max_steps:(pool_steal_threads * quota_std)
      (Array.init 3 body)
  in
  let failure =
    if outcome.Sched.error <> None then None
    else begin
      let rec drain acc =
        match Global_pool.pop_batch g ~level:1 with
        | Some b -> drain (b @ acc)
        | None -> acc
      in
      let all = drain (popped.(0) @ popped.(1) @ popped.(2)) in
      if List.sort compare all <> List.init (2 * n) Fun.id then
        Some
          {
            cls = "conservation";
            detail =
              Printf.sprintf
                "recovered %d slots of %d pushed (loss or duplication)"
                (List.length all) (2 * n);
          }
      else if Global_pool.approx_batches g <> 0 then
        Some
          {
            cls = "conservation";
            detail = "resident batch count nonzero after a full drain";
          }
      else None
    end
  in
  report ~name ~tail ~mode ~outcome failure

(* ---------- seeded bugs ---------- *)

(* A reader repeatedly walks to the far end of a small list while two
   threads churn the keys in the middle of its path. Under a broken
   scheme a specific interleaving has the reader dereference a freed
   slot — Sanitizer Strict fault — or see a reincarnated node. *)
let faulty_exec (module R : Reclaim.Smr_intf.GUARDED) ~name ~decisions ~tail
    ~mode ~coverage =
  let arena = Arena.create ~capacity:4096 in
  ignore (Arena.attach_sanitizer arena Sanitizer.Strict);
  let global = Global_pool.create ~max_level:1 in
  let r =
    R.create ~arena ~global ~n_threads:3 ~hazards:3 ~retire_threshold:2
      ~epoch_freq:1
  in
  let module L = Dstruct.Linked_list.Make (R) in
  let l = L.create r ~arena in
  List.iter (fun k -> ignore (L.insert l ~tid:0 k)) [ 1; 2; 3; 4; 5 ];
  let body tid () =
    match tid with
    | 0 ->
        for _ = 1 to 3 do
          ignore (L.delete l ~tid:0 3);
          ignore (L.insert l ~tid:0 3)
        done
    | 1 ->
        for _ = 1 to 3 do
          ignore (L.contains l ~tid:1 5)
        done
    | _ ->
        for _ = 1 to 3 do
          ignore (L.delete l ~tid:2 4);
          ignore (L.insert l ~tid:2 4)
        done
  in
  let outcome =
    Sched.run ~decisions ~tail ~mode ?coverage ~max_steps:(3 * quota_std)
      (Array.init 3 body)
  in
  report ~name ~tail ~mode ~outcome None

(* The late-guard window is one yield wide: between a protect's edge
   read and its (too late) hazard store. A churner that also inserts
   would mask the bug — the freed slot is immediately reused, so the
   parked reader resumes onto a live reincarnation and Strict sees
   nothing. A delete-only churner leaves the freed slots dead: a reader
   parked in the window dereferences one on resume. *)
let late_guard_exec ~name ~decisions ~tail ~mode ~coverage =
  let arena = Arena.create ~capacity:4096 in
  ignore (Arena.attach_sanitizer arena Sanitizer.Strict);
  let global = Global_pool.create ~max_level:1 in
  (* retire_threshold 1: every retire scans immediately. HP's amortized
     scan cadence would otherwise skip the scan on some retires and
     narrow the window this scenario exists to expose. *)
  let r =
    Faulty.Late_guard.create ~arena ~global ~n_threads:2 ~hazards:3
      ~retire_threshold:1 ~epoch_freq:1
  in
  let module L = Dstruct.Linked_list.Make (Faulty.Late_guard) in
  let l = L.create r ~arena in
  List.iter (fun k -> ignore (L.insert l ~tid:0 k)) [ 1; 2; 3; 4; 5 ];
  let deleter () =
    List.iter (fun k -> ignore (L.delete l ~tid:0 k)) [ 2; 3; 4 ]
  in
  let reader () =
    for _ = 1 to 3 do
      ignore (L.contains l ~tid:1 5)
    done
  in
  let outcome =
    Sched.run ~decisions ~tail ~mode ?coverage ~max_steps:(2 * quota_std)
      [| deleter; reader |]
  in
  report ~name ~tail ~mode ~outcome None

(* A check-then-act race on an unsynchronised claim flag: both threads
   can observe it unclaimed and retire the same slot. With a threshold
   of 1 each retire scans immediately, so the second free is a Track
   double-free Violation. Sequential schedules never fail — only the
   interleaving where both reads precede both writes does. *)
let double_retire_exec ~name ~decisions ~tail ~mode ~coverage =
  let arena = Arena.create ~capacity:64 in
  ignore (Arena.attach_sanitizer arena Sanitizer.Track);
  let global = Global_pool.create ~max_level:1 in
  let r =
    Reclaim.Ebr.create ~arena ~global ~n_threads:2 ~hazards:1
      ~retire_threshold:1 ~epoch_freq:1
  in
  let slot = Reclaim.Ebr.alloc r ~tid:0 ~level:1 ~key:7 in
  let claimed = Atomic.make 0 in
  let body tid () =
    if Access.get claimed = 0 then begin
      Access.set claimed 1;
      Reclaim.Ebr.retire r ~tid slot
    end
  in
  let outcome =
    Sched.run ~decisions ~tail ~mode ?coverage ~max_steps:(2 * quota_std)
      (Array.init 2 body)
  in
  report ~name ~tail ~mode ~outcome None

(* ---------- the table ---------- *)

let lin_structures = [ "list"; "skiplist" ]
let robust_schemes = [ "EBR"; "HP"; "HE"; "IBR"; "VBR" ]

let table =
  List.concat_map
    (fun structure ->
      List.map
        (fun scheme ->
          let name = Printf.sprintf "lin-%s-%s" structure scheme in
          {
            s_name = name;
            s_tail = Sched.First;
            s_max_len = 96;
            s_threads = lin_threads;
            s_quota = lin_threads * quota_std;
            s_expect_bug = false;
            s_exec = lin_exec ~structure ~scheme ~name;
          })
        Harness.Registry.schemes)
    lin_structures
  @ List.concat_map
      (fun structure ->
        List.map
          (fun scheme ->
            let name = Printf.sprintf "robust-%s-%s" scheme structure in
            {
              s_name = name;
              s_tail = Sched.Round_robin;
              s_max_len = 32;
              s_threads = robust_threads;
              s_quota = robust_threads * quota_robust;
              s_expect_bug = false;
              s_exec = robust_exec ~structure ~scheme ~name;
            })
          robust_schemes)
      lin_structures
  @ [
      {
        s_name = "pool-steal";
        s_tail = Sched.Round_robin;
        s_max_len = 64;
        s_threads = pool_steal_threads;
        s_quota = pool_steal_threads * quota_std;
        s_expect_bug = false;
        s_exec = pool_steal_exec ~name:"pool-steal";
      };
      {
        s_name = "aba-immediate-free";
        s_tail = Sched.First;
        s_max_len = 96;
        s_threads = 3;
        s_quota = 3 * quota_std;
        s_expect_bug = true;
        s_exec =
          faulty_exec (module Faulty.Immediate_free) ~name:"aba-immediate-free";
      };
      {
        s_name = "late-guard";
        s_tail = Sched.First;
        s_max_len = 48;
        s_threads = 2;
        s_quota = 2 * quota_std;
        s_expect_bug = true;
        s_exec = late_guard_exec ~name:"late-guard";
      };
      {
        s_name = "double-retire";
        s_tail = Sched.First;
        s_max_len = 8;
        s_threads = 2;
        s_quota = 2 * quota_std;
        s_expect_bug = true;
        s_exec = double_retire_exec ~name:"double-retire";
      };
    ]

let scenarios = List.map (fun s -> s.s_name) table
let seeded_bugs =
  List.filter_map (fun s -> if s.s_expect_bug then Some s.s_name else None) table

let find name =
  match List.find_opt (fun s -> s.s_name = name) table with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Explore: unknown scenario %S (try: %s)" name
           (String.concat ", " scenarios))

type spec = {
  sp_name : string;
  sp_tail : Sched.tail;
  sp_max_len : int;
  sp_threads : int;
  sp_quota : int;
  sp_expect_bug : bool;
}

let spec name =
  let s = find name in
  {
    sp_name = s.s_name;
    sp_tail = s.s_tail;
    sp_max_len = s.s_max_len;
    sp_threads = s.s_threads;
    sp_quota = s.s_quota;
    sp_expect_bug = s.s_expect_bug;
  }

let run_scenario ?(decisions = [||]) ?tail ?(mode = Sched.Plain) ?coverage name
    =
  let s = find name in
  let tail = Option.value tail ~default:s.s_tail in
  s.s_exec ~decisions ~tail ~mode ~coverage

let replay token =
  let name, tail, mode, decisions = Token.decode token in
  run_scenario ~decisions ~tail ~mode name

(* ---------- exploration ---------- *)

type stats = {
  st_execs : int;
  st_distinct : int;
  st_pruned : int;
  st_resets : int;
  st_secs : float;
}

type found = {
  f_token : string;
  f_shrunk : string;
  f_failure : failure;
  f_attempt : int;
  f_stats : stats;
}

type explored = Clean of stats | Found of found

let token_of s ~tail ~mode decisions =
  Token.encode ~scenario:s.s_name ~tail ~mode decisions

let shrink_failure s ~tail ~mode ~cls decisions =
  let fails cand =
    match (s.s_exec ~decisions:cand ~tail ~mode ~coverage:None).failure with
    | Some f -> f.cls = cls
    | None -> false
  in
  Shrink.ddmin fails decisions

let shrink ~scenario ~tail ~mode ~cls decisions =
  shrink_failure (find scenario) ~tail ~mode ~cls decisions

(* The guided search loop. Shared by [explore] and the fleet workers
   (which run it one execution at a time against a shared visited set);
   here the state is all local.

   Each execution contributes:
   - its canonical signature to the visited-signature set ("distinct
     states");
   - its choice-prefix trail to the visited-prefix set; the first index
     whose prefix was never seen is the execution's novelty point.
   An execution that produced a fresh signature AND has a reachable
   novelty point enters the corpus (recorded schedule + novelty index).
   Candidate generation interleaves fresh random strings (1 in 3) with
   mutants of random corpus entries, so the search never fixates. *)

let corpus_cap = 64

type search = {
  sigs : (int, unit) Hashtbl.t;
  prefixes : (int, unit) Hashtbl.t;
  mutable corpus : Coverage.entry list;
  mutable n_corpus : int;
}

let make_search () =
  {
    sigs = Hashtbl.create 1024;
    prefixes = Hashtbl.create 4096;
    corpus = [];
    n_corpus = 0;
  }

let explore ?(seed = 0) ?(budget = 200) ?max_len ?(guided = true)
    ?(mode = Sched.Dpor) ~scenario () =
  let s = find scenario in
  (* Seeded-bug scenarios exist to prove the explorer still has teeth, and
     their workloads are tiny, so spend more schedules on them than on the
     (clean, much heavier) linearizability/robustness sweeps sharing the
     same budget knob. The late-guard window in particular became rarer
     when the sharded global pool lengthened the allocation prefix. *)
  let budget = if s.s_expect_bug then budget * 8 else budget in
  let max_len = Option.value max_len ~default:s.s_max_len in
  let rng = Harness.Rng.create ~seed in
  let st = make_search () in
  let pruned = ref 0 in
  let resets = ref 0 in
  let t0 = Obs.Clock.now_s () in
  let stats execs =
    {
      st_execs = execs;
      st_distinct = Hashtbl.length st.sigs;
      st_pruned = !pruned;
      st_resets = !resets;
      st_secs = Obs.Clock.now_s () -. t0;
    }
  in
  (* Guided generation mixes three sources — fine-grained uniform
     strings, run-structured strings, and mutants of corpus entries at
     their novelty point — so the search dominates either pure baseline:
     uniform excels where productive schedules alternate every access
     (pool-steal's CAS races), run-structure where they need long
     exclusive stretches (the late-guard window under pruning). *)
  let pick_decisions i =
    if not guided then Coverage.uniform rng ~max_len
    else if st.n_corpus = 0 then
      if i land 1 = 0 then Coverage.random rng ~max_len
      else Coverage.uniform rng ~max_len
    else
      match i mod 4 with
      | 0 -> Coverage.uniform rng ~max_len
      | 1 -> Coverage.random rng ~max_len
      | _ ->
          let e = List.nth st.corpus (Harness.Rng.below rng st.n_corpus) in
          Coverage.mutate rng e ~max_len
  in
  let rec attempt i =
    if i > budget then Clean (stats budget)
    else begin
      let decisions = pick_decisions i in
      let cov = Coverage.create ~n_threads:s.s_threads in
      let r = s.s_exec ~decisions ~tail:s.s_tail ~mode ~coverage:(Some cov) in
      pruned := !pruned + r.outcome.Sched.pruned;
      resets := !resets + r.outcome.Sched.resets;
      (* Note coverage before branching on failure so Found stats include
         the failing run itself. *)
      let sg = Coverage.signature cov in
      let fresh_sig = not (Hashtbl.mem st.sigs sg) in
      if fresh_sig then Hashtbl.add st.sigs sg ();
      let trail = Coverage.trail cov in
      let novel = ref (-1) in
      Array.iteri
        (fun j h ->
          if not (Hashtbl.mem st.prefixes h) then begin
            if !novel < 0 then novel := j;
            Hashtbl.add st.prefixes h ()
          end)
        trail;
      (match r.failure with
      | Some _ -> ()
      | None ->
          if guided && fresh_sig && !novel >= 0 && !novel < 2 * max_len then begin
            let recorded = r.outcome.Sched.recorded in
            let cap = min (Array.length recorded) (2 * max_len) in
            let entry =
              { Coverage.e_dec = Array.sub recorded 0 cap; e_novel = !novel }
            in
            st.corpus <-
              entry
              ::
              (if st.n_corpus >= corpus_cap then
                 List.filteri (fun j _ -> j < corpus_cap - 1) st.corpus
               else st.corpus);
            st.n_corpus <- min corpus_cap (st.n_corpus + 1)
          end);
      match r.failure with
      | None -> attempt (i + 1)
      | Some f ->
          (* The recorded string (not the random input) is the exact
             schedule: it includes tail-policy picks, so the token
             replays bit for bit whatever the tail. *)
          let recorded = r.outcome.Sched.recorded in
          let shrunk =
            shrink_failure s ~tail:s.s_tail ~mode ~cls:f.cls recorded
          in
          Found
            {
              f_token = token_of s ~tail:s.s_tail ~mode recorded;
              f_shrunk = token_of s ~tail:s.s_tail ~mode shrunk;
              f_failure = f;
              f_attempt = i;
              f_stats = stats i;
            }
    end
  in
  attempt 1
