(* Parallel coverage-guided exploration (DESIGN.md §2.16).

   K worker domains each run the single-domain virtual scheduler over
   their own fresh scenario instances; the Access hook is domain-local,
   so the simulations never observe each other. What the workers share
   is the search state — visited signatures, visited choice prefixes,
   the mutation corpus — and that state is only ever touched by the
   coordinating domain, between rounds:

     round:  main draws a batch of candidate decision strings from
             (rng, corpus snapshot)            — deterministic
             workers execute disjoint stripes of the batch (worker w
             takes candidates w, w+K, ...)     — embarrassingly parallel
             main joins and merges results in candidate order
                                               — deterministic

   Because every rng draw and every corpus update happens on the main
   domain in a fixed order, the visited-signature set after any round is
   a pure function of (scenario, seed, domains, budget, guided, mode) —
   worker timing cannot leak in. That is what the determinism test
   asserts: two fleets with the same seed produce byte-identical sorted
   signature sets. The first failure, by candidate order, wins; its
   recorded schedule is ddmin-shrunk on the main domain and reported
   with a replay token like any single-domain catch.

   Workers truncate what they ship back (trails and clean recorded
   strings to 2×max_len) — novelty beyond reach of a decision string
   cannot seed a useful mutant, and it keeps round merges cheap.

   [domains] is a *logical* parameter: it fixes the batch size and with
   it the deterministic search trajectory. The number of OS domains
   actually spawned is capped at [Domain.recommended_domain_count] —
   which worker executes which candidate is invisible to the merge, so
   on a single-core host a 4-domain fleet runs at single-domain speed
   (no stop-the-world barriers between starved domains) yet still
   visits the exact coverage set it would visit on a 64-core host. *)

type result = {
  r_execs : int;
  r_distinct : int;
  r_pruned : int;
  r_resets : int;
  r_secs : float;
  r_signatures : int array;
  r_found : Explore.found option;
}

(* Candidates per worker per round: big enough to amortise spawn/join,
   small enough that corpus feedback still steers the search. *)
let chunk = 8

type exec_out = {
  x_idx : int;
  x_sig : int;
  x_trail : int array;
  x_recorded : int array;
  x_pruned : int;
  x_resets : int;
  x_failure : Explore.failure option;
}

let run_one ~scenario ~tail ~mode ~threads ~cap idx decisions =
  let cov = Coverage.create ~n_threads:threads in
  let r = Explore.run_scenario ~decisions ~tail ~mode ~coverage:cov scenario in
  let clip a = if Array.length a > cap then Array.sub a 0 cap else a in
  let recorded = r.Explore.outcome.Sched.recorded in
  {
    x_idx = idx;
    x_sig = Coverage.signature cov;
    x_trail = clip (Coverage.trail cov);
    x_recorded =
      (match r.Explore.failure with Some _ -> recorded | None -> clip recorded);
    x_pruned = r.Explore.outcome.Sched.pruned;
    x_resets = r.Explore.outcome.Sched.resets;
    x_failure = r.Explore.failure;
  }

let corpus_cap = 64

let explore ?(seed = 0) ?(budget = 256) ?(domains = 4) ?(guided = true)
    ?(mode = Sched.Dpor) ?target ~scenario () =
  let sp = Explore.spec scenario in
  let domains = max 1 domains in
  let max_len = sp.sp_max_len in
  let cap = 2 * max_len in
  let rng = Harness.Rng.create ~seed in
  let sigs : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let prefixes : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let corpus = ref [] in
  let n_corpus = ref 0 in
  let pruned = ref 0 in
  let resets = ref 0 in
  let execs = ref 0 in
  let found = ref None in
  let t0 = Obs.Clock.now_s () in
  let run_one =
    run_one ~scenario ~tail:sp.Explore.sp_tail ~mode
      ~threads:sp.Explore.sp_threads ~cap
  in
  (* Merge one execution into the shared search state (main domain only,
     candidate order). Mirrors the single-domain loop in Explore. *)
  let note out =
    incr execs;
    pruned := !pruned + out.x_pruned;
    resets := !resets + out.x_resets;
    let fresh = not (Hashtbl.mem sigs out.x_sig) in
    if fresh then Hashtbl.add sigs out.x_sig ();
    let novel = ref (-1) in
    Array.iteri
      (fun j h ->
        if not (Hashtbl.mem prefixes h) then begin
          if !novel < 0 then novel := j;
          Hashtbl.add prefixes h ()
        end)
      out.x_trail;
    match out.x_failure with
    | Some f -> if !found = None then found := Some (out, f)
    | None ->
        if guided && fresh && !novel >= 0 then begin
          let entry =
            { Coverage.e_dec = out.x_recorded; e_novel = !novel }
          in
          corpus :=
            entry
            ::
            (if !n_corpus >= corpus_cap then
               List.filteri (fun j _ -> j < corpus_cap - 1) !corpus
             else !corpus);
          n_corpus := min corpus_cap (!n_corpus + 1)
        end
  in
  (* Warm up on this domain before any worker spawns: one execution
     forces every module/instance lazy the scenario touches (OCaml's
     [Lazy] is not safe under concurrent first force). Counted and
     merged as candidate 0. *)
  note (run_one 0 [||]);
  (* Same three-source mix as Explore.explore: uniform, run-structured,
     corpus mutants. *)
  let gen () =
    if not guided then Coverage.uniform rng ~max_len
    else if !n_corpus = 0 then
      if Harness.Rng.below rng 2 = 0 then Coverage.random rng ~max_len
      else Coverage.uniform rng ~max_len
    else
      match Harness.Rng.below rng 4 with
      | 0 -> Coverage.uniform rng ~max_len
      | 1 -> Coverage.random rng ~max_len
      | _ ->
          let e = List.nth !corpus (Harness.Rng.below rng !n_corpus) in
          Coverage.mutate rng e ~max_len
  in
  let reached_target () =
    match target with
    | Some t -> Hashtbl.length sigs >= t
    | None -> false
  in
  let physical =
    min domains (max 1 (Domain.recommended_domain_count ()))
  in
  while !found = None && !execs < budget && not (reached_target ()) do
    let batch = min (domains * chunk) (budget - !execs) in
    let cands = Array.init batch (fun i -> (!execs + i, gen ())) in
    let worker w () =
      let out = ref [] in
      Array.iteri
        (fun i (idx, dec) ->
          if i mod physical = w then out := run_one idx dec :: !out)
        cands;
      List.rev !out
    in
    let outs =
      if physical = 1 || batch <= 1 then [ worker 0 () ]
      else
        Array.init physical (fun w -> Domain.spawn (worker w))
        |> Array.map Domain.join |> Array.to_list
    in
    List.concat outs
    |> List.sort (fun a b -> compare a.x_idx b.x_idx)
    |> List.iter note
  done;
  let stats =
    {
      Explore.st_execs = !execs;
      st_distinct = Hashtbl.length sigs;
      st_pruned = !pruned;
      st_resets = !resets;
      st_secs = Obs.Clock.now_s () -. t0;
    }
  in
  let r_found =
    match !found with
    | None -> None
    | Some (out, f) ->
        let shrunk =
          Explore.shrink ~scenario ~tail:sp.Explore.sp_tail ~mode ~cls:f.cls
            out.x_recorded
        in
        Some
          {
            Explore.f_token =
              Token.encode ~scenario ~tail:sp.Explore.sp_tail ~mode
                out.x_recorded;
            f_shrunk =
              Token.encode ~scenario ~tail:sp.Explore.sp_tail ~mode shrunk;
            f_failure = f;
            f_attempt = out.x_idx + 1;
            f_stats = stats;
          }
  in
  {
    r_execs = !execs;
    r_distinct = Hashtbl.length sigs;
    r_pruned = !pruned;
    r_resets = !resets;
    r_secs = stats.Explore.st_secs;
    r_signatures =
      Hashtbl.fold (fun k () acc -> k :: acc) sigs []
      |> List.sort compare |> Array.of_list;
    r_found;
  }
