(* The cooperative virtual-thread scheduler (DESIGN.md §2.11, §2.16).

   N logical threads run on one domain as effect-based fibers. Every
   instrumented shared-memory access (Memsim.Access) performs [Yield]
   *before* the access commits, suspending the fiber with the access's
   identity parked in the thread record; the access executes when the
   scheduler resumes the fiber. Which fiber runs next is decided by a
   decision string, so an execution is a pure function of (bodies,
   decisions, tail policy, mode, fault) and any failing interleaving
   replays bit for bit from its recorded decisions.

   Decisions are consumed only when more than one thread is a candidate
   — forced moves are not recorded — which keeps decision strings short
   and makes delta-debugging shrink well: dropping a decision merely
   re-routes the suffix instead of desynchronising it.

   [Dpor] mode prunes with sleep sets. The rule is asymmetric on thread
   order: when the scheduler picks candidate [c], every candidate [j]
   earlier in the (ascending) candidate list whose pending access
   commutes with [c]'s pending access goes to sleep; [j] wakes as soon
   as any committed access conflicts with its pending one, or when it is
   itself scheduled. Sleeping [j] discards only schedules of the form
   "run j's access now" where running [c]'s first provably reaches the
   same state — and because only *earlier* candidates sleep, the
   tid-ascending representative of every Mazurkiewicz class remains
   explorable, so pruning never hides a bug (test: qcheck property that
   Plain and Dpor find the same seeded bugs). If every candidate at a
   choice point is asleep the set is cleared (counted in
   [outcome.resets]) — a progress valve, not a soundness requirement. *)

type tail = First | Round_robin

type mode = Plain | Dpor

let forever = max_int

type fault = { victim : int; after_yields : int; for_steps : int }

type outcome = {
  recorded : int array;
  steps : int;
  completed : bool array;
  error : exn option;
  pruned : int;
  resets : int;
}

exception Torn_down
exception Quota_exceeded of int

type _ Effect.t += Yield : unit Effect.t

(* The virtual clock: scheduler slices since the run began. Histories
   recorded by fiber bodies use it as their timestamp source, giving the
   linearizability checker a sharper precedence order than wall time.
   Domain-local so fleet workers, each running their own scheduler, do
   not race on it. *)
let clock_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let now () = float_of_int !(Domain.DLS.get clock_key)

type thread = {
  body : unit -> unit;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable finished : bool;
  mutable yields : int;
  mutable wake_at : int;  (* runnable iff current step >= wake_at *)
  mutable pending : Memsim.Access.op option;
      (* the access the thread is suspended on, yet to commit *)
  mutable asleep : bool;  (* Dpor: pruned until a conflicting commit *)
}

let run ?(decisions = [||]) ?(tail = First) ?(mode = Plain)
    ?(max_steps = 1_000_000) ?fault ?trace ?coverage bodies =
  let n = Array.length bodies in
  if n < 1 then invalid_arg "Sched.run: no threads";
  (match fault with
  | Some f when f.victim < 0 || f.victim >= n ->
      invalid_arg "Sched.run: fault victim out of range"
  | _ -> ());
  let threads =
    Array.map
      (fun body ->
        {
          body;
          cont = None;
          finished = false;
          yields = 0;
          wake_at = 0;
          pending = None;
          asleep = false;
        })
      bodies
  in
  let clock = Domain.DLS.get clock_key in
  let in_fiber = ref false in
  let teardown = ref false in
  let step = ref 0 in
  let error = ref None in
  let recorded = ref [] in
  let dpos = ref 0 in
  let last = ref 0 in
  let cur = ref 0 in
  let pruned = ref 0 in
  let resets = ref 0 in
  let record_error e =
    if !error = None && e <> Torn_down then error := Some e
  in
  (* One handler per fiber, installed at its first slice; resumed slices
     re-enter it through the captured continuation. *)
  let handler t =
    {
      Effect.Deep.retc = (fun () -> t.finished <- true);
      exnc =
        (fun e ->
          t.finished <- true;
          record_error e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  t.cont <- Some k)
          | _ -> None);
    }
  in
  let run_slice t =
    in_fiber := true;
    (match t.cont with
    | Some k ->
        t.cont <- None;
        Effect.Deep.continue k ()
    | None -> Effect.Deep.match_with t.body () (handler t));
    in_fiber := false;
    if not t.finished then begin
      t.yields <- t.yields + 1;
      match fault with
      | Some f when threads.(f.victim) == t && t.yields = f.after_yields ->
          t.wake_at <-
            (if f.for_steps = forever then forever else !step + f.for_steps)
      | _ -> ()
    end
  in
  let runnable () =
    let l = ref [] in
    for i = n - 1 downto 0 do
      let t = threads.(i) in
      if (not t.finished) && t.wake_at <= !step then l := i :: !l
    done;
    !l
  in
  let emit_switch ~to_ =
    match trace with
    | None -> ()
    | Some tr ->
        Obs.Trace.emit
          (Obs.Trace.ring tr ~tid:to_)
          Obs.Trace.Sched_yield ~slot:to_ ~v1:!last ~v2:!step ~epoch:0
  in
  (* A committed access wakes every sleeper whose pending access
     conflicts with it: the reordering the sleeper was pruned for is no
     longer guaranteed equivalent. *)
  let wake_conflicting op =
    for j = 0 to n - 1 do
      let t = threads.(j) in
      if t.asleep then
        match t.pending with
        | Some p when Dpor.conflicts op p -> t.asleep <- false
        | _ -> ()
    done
  in
  let schedule i =
    incr step;
    clock := !step;
    if !step > max_steps then record_error (Quota_exceeded max_steps)
    else begin
      if i <> !last then emit_switch ~to_:i;
      last := i;
      cur := i;
      let t = threads.(i) in
      t.asleep <- false;
      let executed = t.pending in
      t.pending <- None;
      (match executed with
      | None -> ()
      | Some op ->
          (match coverage with
          | Some cov -> Coverage.access cov ~tid:i op
          | None -> ());
          wake_conflicting op);
      run_slice t
    end
  in
  (* The chosen candidate's pending access is about to commit first. Any
     earlier candidate whose pending access commutes with it would reach
     an equivalent state by going second — sleep it. A candidate whose
     next access is still unknown (first slice) neither sleeps nor puts
     others to sleep. *)
  let sleep_earlier cands chosen =
    match threads.(chosen).pending with
    | None -> ()
    | Some cop ->
        List.iter
          (fun j ->
            if j < chosen then
              match threads.(j).pending with
              | Some p when Dpor.commutes p cop -> threads.(j).asleep <- true
              | _ -> ())
          cands
  in
  Memsim.Access.install (fun op ->
      if !in_fiber && not !teardown then begin
        threads.(!cur).pending <- Some op;
        Effect.perform Yield
      end);
  clock := 0;
  Fun.protect
    ~finally:(fun () ->
      Memsim.Access.uninstall ();
      clock := 0)
    (fun () ->
      let running = ref true in
      while !running do
        if !error <> None then running := false
        else
          match runnable () with
          | [] ->
              (* Nobody runnable right now. If some thread is stalled for
                 a finite window, let virtual time pass; otherwise (all
                 remaining threads finished or stalled forever) the run is
                 over. *)
              let wake =
                Array.fold_left
                  (fun acc t ->
                    if t.finished || t.wake_at = forever then acc
                    else min acc t.wake_at)
                  forever threads
              in
              if wake = forever then running := false else step := wake
          | [ i ] -> schedule i
          | rs -> (
              let cands =
                match mode with
                | Plain -> rs
                | Dpor -> (
                    match
                      List.filter (fun i -> not threads.(i).asleep) rs
                    with
                    | [] ->
                        (* Progress valve: everyone asleep — forget the
                           sleep set and fall back to the full set. *)
                        incr resets;
                        List.iter (fun i -> threads.(i).asleep <- false) rs;
                        rs
                    | awake ->
                        pruned := !pruned + (List.length rs - List.length awake);
                        awake)
              in
              match cands with
              | [ i ] -> schedule i
              | _ ->
                  let len = List.length cands in
                  let raw =
                    if !dpos < Array.length decisions then begin
                      let d = decisions.(!dpos) in
                      incr dpos;
                      d
                    end
                    else
                      match tail with
                      | First -> 0
                      | Round_robin ->
                          (* Index in [cands] of the first thread after the
                             one scheduled last, cyclically (sorted). *)
                          let rec pos i = function
                            | [] -> 0
                            | x :: tl -> if x > !last then i else pos (i + 1) tl
                          in
                          pos 0 cands
                  in
                  let idx = ((raw mod len) + len) mod len in
                  recorded := idx :: !recorded;
                  let chosen = List.nth cands idx in
                  (match coverage with
                  | Some cov ->
                      Coverage.choice cov ~tid:chosen threads.(chosen).pending
                  | None -> ());
                  if mode = Dpor then sleep_earlier cands chosen;
                  schedule chosen)
      done;
      let completed = Array.map (fun t -> t.finished) threads in
      (* Tear down unfinished fibers: resume each at its yield point with
         [Torn_down]. The teardown flag turns every further yield point
         into a no-op so cleanup code runs straight through. *)
      teardown := true;
      Array.iter
        (fun t ->
          match t.cont with
          | None -> ()
          | Some k -> (
              t.cont <- None;
              in_fiber := true;
              (try Effect.Deep.discontinue k Torn_down with _ -> ());
              in_fiber := false))
        threads;
      {
        recorded = Array.of_list (List.rev !recorded);
        steps = !step;
        completed;
        error = !error;
        pruned = !pruned;
        resets = !resets;
      })
