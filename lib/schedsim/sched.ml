(* The cooperative virtual-thread scheduler (DESIGN.md §2.11).

   N logical threads run on one domain as effect-based fibers. Every
   instrumented shared-memory access (Memsim.Access) performs [Yield],
   suspending the fiber and handing control back here; which fiber runs
   next is decided by a decision string, so an execution is a pure
   function of (bodies, decisions, tail policy, fault) and any failing
   interleaving replays bit for bit from its recorded decisions.

   Decisions are consumed only when more than one thread is runnable —
   forced moves are not recorded — which keeps decision strings short
   and makes delta-debugging shrink well: dropping a decision merely
   re-routes the suffix instead of desynchronising it. *)

type tail = First | Round_robin

let forever = max_int

type fault = { victim : int; after_yields : int; for_steps : int }

type outcome = {
  recorded : int array;
  steps : int;
  completed : bool array;
  error : exn option;
}

exception Torn_down
exception Quota_exceeded of int

type _ Effect.t += Yield : unit Effect.t

(* The virtual clock: scheduler slices since the run began. Histories
   recorded by fiber bodies use it as their timestamp source, giving the
   linearizability checker a sharper precedence order than wall time. *)
let clock = ref 0
let now () = float_of_int !clock

type thread = {
  body : unit -> unit;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable finished : bool;
  mutable yields : int;
  mutable wake_at : int;  (* runnable iff current step >= wake_at *)
}

let run ?(decisions = [||]) ?(tail = First) ?(max_steps = 1_000_000) ?fault
    ?trace bodies =
  let n = Array.length bodies in
  if n < 1 then invalid_arg "Sched.run: no threads";
  (match fault with
  | Some f when f.victim < 0 || f.victim >= n ->
      invalid_arg "Sched.run: fault victim out of range"
  | _ -> ());
  let threads =
    Array.map
      (fun body -> { body; cont = None; finished = false; yields = 0; wake_at = 0 })
      bodies
  in
  let in_fiber = ref false in
  let teardown = ref false in
  let step = ref 0 in
  let error = ref None in
  let recorded = ref [] in
  let dpos = ref 0 in
  let last = ref 0 in
  let record_error e =
    if !error = None && e <> Torn_down then error := Some e
  in
  (* One handler per fiber, installed at its first slice; resumed slices
     re-enter it through the captured continuation. *)
  let handler t =
    {
      Effect.Deep.retc = (fun () -> t.finished <- true);
      exnc =
        (fun e ->
          t.finished <- true;
          record_error e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  t.cont <- Some k)
          | _ -> None);
    }
  in
  let run_slice t =
    in_fiber := true;
    (match t.cont with
    | Some k ->
        t.cont <- None;
        Effect.Deep.continue k ()
    | None -> Effect.Deep.match_with t.body () (handler t));
    in_fiber := false;
    if not t.finished then begin
      t.yields <- t.yields + 1;
      match fault with
      | Some f when threads.(f.victim) == t && t.yields = f.after_yields ->
          t.wake_at <-
            (if f.for_steps = forever then forever else !step + f.for_steps)
      | _ -> ()
    end
  in
  let runnable () =
    let l = ref [] in
    for i = n - 1 downto 0 do
      let t = threads.(i) in
      if (not t.finished) && t.wake_at <= !step then l := i :: !l
    done;
    !l
  in
  let emit_switch ~to_ =
    match trace with
    | None -> ()
    | Some tr ->
        Obs.Trace.emit
          (Obs.Trace.ring tr ~tid:to_)
          Obs.Trace.Sched_yield ~slot:to_ ~v1:!last ~v2:!step ~epoch:0
  in
  let schedule i =
    incr step;
    clock := !step;
    if !step > max_steps then record_error (Quota_exceeded max_steps)
    else begin
      if i <> !last then emit_switch ~to_:i;
      last := i;
      run_slice threads.(i)
    end
  in
  Memsim.Access.install (fun () ->
      if !in_fiber && not !teardown then Effect.perform Yield);
  clock := 0;
  Fun.protect
    ~finally:(fun () ->
      Memsim.Access.uninstall ();
      clock := 0)
    (fun () ->
      let running = ref true in
      while !running do
        if !error <> None then running := false
        else
          match runnable () with
          | [] ->
              (* Nobody runnable right now. If some thread is stalled for
                 a finite window, let virtual time pass; otherwise (all
                 remaining threads finished or stalled forever) the run is
                 over. *)
              let wake =
                Array.fold_left
                  (fun acc t ->
                    if t.finished || t.wake_at = forever then acc
                    else min acc t.wake_at)
                  forever threads
              in
              if wake = forever then running := false else step := wake
          | [ i ] -> schedule i
          | rs ->
              let len = List.length rs in
              let raw =
                if !dpos < Array.length decisions then begin
                  let d = decisions.(!dpos) in
                  incr dpos;
                  d
                end
                else
                  match tail with
                  | First -> 0
                  | Round_robin ->
                      (* Index in [rs] of the first thread after the one
                         scheduled last, cyclically ([rs] is sorted). *)
                      let rec pos i = function
                        | [] -> 0
                        | x :: tl -> if x > !last then i else pos (i + 1) tl
                      in
                      pos 0 rs
              in
              let idx = ((raw mod len) + len) mod len in
              recorded := idx :: !recorded;
              schedule (List.nth rs idx)
      done;
      let completed = Array.map (fun t -> t.finished) threads in
      (* Tear down unfinished fibers: resume each at its yield point with
         [Torn_down]. The teardown flag turns every further yield point
         into a no-op so cleanup code runs straight through. *)
      teardown := true;
      Array.iter
        (fun t ->
          match t.cont with
          | None -> ()
          | Some k -> (
              t.cont <- None;
              in_fiber := true;
              (try Effect.Deep.discontinue k Torn_down with _ -> ());
              in_fiber := false))
        threads;
      {
        recorded = Array.of_list (List.rev !recorded);
        steps = !step;
        completed;
        error = !error;
      })
