(* Coverage accounting for one virtual-scheduler execution.

   Two views of the same run feed the guided explorer (DESIGN.md §2.16):

   - The *canonical signature*: one hash per execution, invariant under
     reordering of commuting accesses. Every executed access gets a
     Foata depth — 1 + the maximum depth of any earlier access it
     depends on (same thread, or conflicting per Dpor) — and the
     signature is a commutative (sum) hash over (depth, tid,
     per-thread index, kind) tuples. Two schedules that only reorder
     commuting accesses induce the same dependence graph, hence the
     same depths on the same per-thread access sequences, hence the
     same signature; a schedule that flips the order of any conflicting
     pair changes some access's depth (or some thread's behaviour, and
     with it the thread's access sequence). Distinct signatures
     therefore count genuinely distinct interleavings, which is the
     "distinct states" metric the explore report prints.

   - The *choice trail*: a rolling hash of the (thread, kind, word)
     sequence at decision points, one prefix hash per choice. The first
     position whose prefix hash was never seen before is where an
     execution left charted territory — the guided search mutates
     decision strings at exactly that point.

   Word identity is physical: words are interned first-seen into dense
   ids with a move-one-forward scan (traversals touch the same few
   words repeatedly, so the hot entries migrate to the front). The
   interner is per-execution, so ids — and with them every hash — are a
   pure function of the schedule, never of address layout or process
   history. *)

let max_trail = 1 lsl 16

(* splitmix-style avalanche on 62-bit values (constants truncated to fit
   OCaml's 63-bit int; wrapping multiplication is deterministic). *)
let mix x =
  let x = x * 0x1E3779B97F4A7C15 in
  let x = x lxor (x lsr 31) in
  let x = x * 0x1F58476D1CE4E5B9 in
  let x = x lxor (x lsr 29) in
  x land max_int

(* Array filler that can never be [==] to a real word. *)
let filler : Obj.t = Obj.repr (ref 0)

type t = {
  mutable words : Obj.t array;  (* scan order (move-one-forward) *)
  mutable ids : int array;  (* ids.(i) = dense id of words.(i) *)
  mutable n_words : int;
  mutable wdepth : int array;  (* by id: depth of the last write *)
  mutable rdepth : int array;  (* by id: max depth of any read *)
  tdepth : int array;  (* by tid: depth of the thread's last access *)
  taccs : int array;  (* by tid: accesses executed so far *)
  mutable csig : int;  (* commutative signature accumulator *)
  mutable accesses : int;
  mutable trail : int array;
  mutable n_trail : int;
  mutable chash : int;  (* rolling choice-prefix hash *)
}

let create ~n_threads =
  {
    words = Array.make 64 filler;
    ids = Array.make 64 (-1);
    n_words = 0;
    wdepth = Array.make 64 0;
    rdepth = Array.make 64 0;
    tdepth = Array.make n_threads 0;
    taccs = Array.make n_threads 0;
    csig = 0;
    accesses = 0;
    trail = Array.make 256 0;
    n_trail = 0;
    chash = 0x5EED;
  }

let grow a fill = Array.append a (Array.make (Array.length a) fill)

let fresh t w =
  if t.n_words = Array.length t.words then begin
    t.words <- grow t.words w;
    t.ids <- grow t.ids (-1)
  end;
  let id = t.n_words in
  t.words.(t.n_words) <- w;
  t.ids.(t.n_words) <- id;
  t.n_words <- t.n_words + 1;
  if id >= Array.length t.wdepth then begin
    t.wdepth <- grow t.wdepth 0;
    t.rdepth <- grow t.rdepth 0
  end;
  id

let intern t w =
  let n = t.n_words in
  let rec find i =
    if i >= n then fresh t w
    else if t.words.(i) == w then begin
      let id = t.ids.(i) in
      if i > 0 then begin
        (* Transpose toward the front so hot words stay cheap. *)
        let pw = t.words.(i - 1) and pi = t.ids.(i - 1) in
        t.words.(i - 1) <- t.words.(i);
        t.ids.(i - 1) <- id;
        t.words.(i) <- pw;
        t.ids.(i) <- pi
      end;
      id
    end
    else find (i + 1)
  in
  find 0

let hash_event ~depth ~tid ~k ~kind =
  mix (depth lxor mix ((tid lsl 32) lxor (k lsl 3) lxor kind))

let access t ~tid (op : Memsim.Access.op) =
  let id = intern t op.Memsim.Access.word in
  let w = Dpor.writes op.Memsim.Access.kind in
  let depth =
    1
    + max t.tdepth.(tid)
        (if w then max t.wdepth.(id) t.rdepth.(id) else t.wdepth.(id))
  in
  if w then t.wdepth.(id) <- depth
  else if depth > t.rdepth.(id) then t.rdepth.(id) <- depth;
  t.tdepth.(tid) <- depth;
  let k = t.taccs.(tid) in
  t.taccs.(tid) <- k + 1;
  t.accesses <- t.accesses + 1;
  let kind = Dpor.kind_code op.Memsim.Access.kind in
  t.csig <- (t.csig + hash_event ~depth ~tid ~k ~kind) land max_int

let choice t ~tid (op : Memsim.Access.op option) =
  let kind, id =
    match op with
    | None -> (7, max_int)  (* a thread's first slice: no pending access *)
    | Some o -> (Dpor.kind_code o.Memsim.Access.kind, intern t o.Memsim.Access.word)
  in
  t.chash <- mix (t.chash lxor mix ((tid lsl 36) lxor (id lsl 3) lxor kind));
  if t.n_trail < max_trail then begin
    if t.n_trail = Array.length t.trail then t.trail <- grow t.trail 0;
    t.trail.(t.n_trail) <- t.chash;
    t.n_trail <- t.n_trail + 1
  end

(* Fold the access count in so executions whose choice structure ended
   early (e.g. one thread crashed) cannot collide with clean ones. *)
let signature t = mix (t.csig lxor mix t.accesses)

let trail t = Array.sub t.trail 0 t.n_trail

(* ---------- corpus entries and decision-string mutation ---------- *)

type entry = { e_dec : int array; e_novel : int }

(* Decision strings are drawn with geometric run lengths (mean ~8), not
   per-position uniform values: interesting schedules are run-structured
   — advance one thread for a stretch, then switch — and under sleep-set
   pruning the addressable schedules are exactly the run-structured
   ones. A per-position uniform draw makes a k-long run 2^-k rare and
   (measurably) never finds the late-guard window in Dpor mode. *)
let fill_runs rng a ~from =
  let n = Array.length a in
  let i = ref from in
  while !i < n do
    let v = Harness.Rng.below rng 8 in
    a.(!i) <- v;
    incr i;
    while !i < n && Harness.Rng.below rng 8 < 7 do
      a.(!i) <- v;
      incr i
    done
  done

let random rng ~max_len =
  let a = Array.make (max 0 max_len) 0 in
  fill_runs rng a ~from:0;
  a

(* The pre-fleet generator: per-position uniform draws. Kept as the
   explicit baseline for guided-vs-random A/B comparisons. *)
let uniform rng ~max_len =
  Array.init (max 0 max_len) (fun _ -> Harness.Rng.below rng 8)

let fill_uniform rng a ~from =
  for i = from to Array.length a - 1 do
    a.(i) <- Harness.Rng.below rng 8
  done

(* Mutations keep the prefix that reached charted territory and perturb
   at (or near) the first novel choice point: half the time truncate
   there and regrow a fresh tail (run-structured or uniform, 50/50),
   half the time keep the whole string and flip a few positions
   at-or-after the novelty point. *)
let mutate rng e ~max_len =
  let n = Array.length e.e_dec in
  if n = 0 || max_len < 1 then random rng ~max_len
  else begin
    let novel = min (max 0 e.e_novel) (n - 1) in
    let regrow out ~from =
      if from < max_len then
        if Harness.Rng.below rng 2 = 0 then fill_runs rng out ~from
        else fill_uniform rng out ~from
    in
    match Harness.Rng.below rng 2 with
    | 0 ->
        let cut = min n (novel + Harness.Rng.below rng 4) in
        let out = Array.make max_len 0 in
        Array.blit e.e_dec 0 out 0 (min cut max_len);
        regrow out ~from:(min cut max_len);
        out
    | _ ->
        let out = Array.make max_len 0 in
        Array.blit e.e_dec 0 out 0 (min n max_len);
        regrow out ~from:(min n max_len);
        let flips = 1 + Harness.Rng.below rng 3 in
        for _ = 1 to flips do
          let span = max 1 (max_len - novel) in
          let i = min (max_len - 1) (novel + Harness.Rng.below rng span) in
          out.(i) <- Harness.Rng.below rng 8
        done;
        out
  end
