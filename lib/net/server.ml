open Harness

type config = {
  host : string;
  port : int;
  workers : int;
  scheme : string;
  range : int;
  buckets : int;
  capacity : int option;
  retire_threshold : int option;
  prefill : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    scheme = "VBR";
    range = 65536;
    buckets = 65536;
    capacity = None;
    retire_threshold = None;
    prefill = false;
  }

let scheme_of_cli s =
  match String.lowercase_ascii s with
  | "none" | "norecl" -> Ok "NoRecl"
  | "ebr" -> Ok "EBR"
  | "hp" -> Ok "HP"
  | "he" -> Ok "HE"
  | "ibr" -> Ok "IBR"
  | "vbr" -> Ok "VBR"
  | _ ->
      Result.Error
        (Printf.sprintf "unknown scheme %S (expected ebr|hp|he|ibr|vbr|none)" s)

(* Per-worker request counters: plain ints owned by one domain, summed
   racily for STATS (the same contract as Obs.Counters shards). *)
let c_get = 0
let c_put = 1
let c_delete = 2
let c_stats = 3
let c_ping = 4
let c_errors = 5  (* protocol errors: malformed frames *)
let c_batches = 6  (* drains that decoded at least one frame *)
let c_accepted = 7
let n_counts = 8

type worker = {
  tid : int;
  counts : int array;
  mutable live : int;  (* connections currently on this worker *)
}

type t = {
  cfg : config;
  inst : Registry.instance;
  values : string option array;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  workers : worker array;
  mutable domains : unit Domain.t list;
  mutable stopped : bool;
}

let port t = t.bound_port

let stats t =
  let sum i =
    Array.fold_left (fun acc w -> acc + w.counts.(i)) 0 t.workers
  in
  let live = Array.fold_left (fun acc w -> acc + w.live) 0 t.workers in
  let snap = t.inst.Registry.stats () in
  let ev e = Obs.Counters.get snap e in
  [
    ("version", Protocol.version);
    ("workers", t.cfg.workers);
    ("range", t.cfg.range);
    ("buckets", t.cfg.buckets);
    ("size", t.inst.Registry.size ());
    ("conns", live);
    ("accepted", sum c_accepted);
    ("ops_get", sum c_get);
    ("ops_put", sum c_put);
    ("ops_delete", sum c_delete);
    ("ops_stats", sum c_stats);
    ("ops_ping", sum c_ping);
    ("batches", sum c_batches);
    ("protocol_errors", sum c_errors);
    ("unreclaimed", t.inst.Registry.unreclaimed ());
    ("allocated", t.inst.Registry.allocated ());
    ("epoch_advances", t.inst.Registry.epoch_advances ());
    ("allocs", ev Obs.Event.Alloc);
    ("retires", ev Obs.Event.Retire);
    ("reclaims", ev Obs.Event.Reclaim);
    ("rollbacks", ev Obs.Event.Rollback);
    ("cas_fails", ev Obs.Event.Cas_fail);
  ]

(* [size] walks the buckets quiescently; under live traffic it is only a
   rough gauge, which is all STATS promises. *)

let exec t w (req : Protocol.request) : Protocol.response =
  let tid = w.tid in
  let in_range k = k >= 0 && k < t.cfg.range in
  match req with
  | Protocol.Ping ->
      w.counts.(c_ping) <- w.counts.(c_ping) + 1;
      Protocol.Pong
  | Protocol.Stats ->
      w.counts.(c_stats) <- w.counts.(c_stats) + 1;
      Protocol.Stats_reply (stats t)
  | Protocol.Get k ->
      w.counts.(c_get) <- w.counts.(c_get) + 1;
      if not (in_range k) then Protocol.Error "key out of range"
      else if t.inst.Registry.contains ~tid k then
        Protocol.Value (Option.value t.values.(k) ~default:"")
      else Protocol.Not_found
  | Protocol.Put (k, v) ->
      w.counts.(c_put) <- w.counts.(c_put) + 1;
      if not (in_range k) then Protocol.Error "key out of range"
      else begin
        (* Payload before presence: a concurrent GET that sees the key
           present also sees some complete value (possibly a stale one —
           last writer wins on the cell). *)
        t.values.(k) <- Some v;
        match t.inst.Registry.insert ~tid k with
        | created -> Protocol.Stored created
        | exception Memsim.Arena.Exhausted ->
            Protocol.Error "arena exhausted (NoRecl headroom ran out?)"
      end
  | Protocol.Delete k ->
      w.counts.(c_delete) <- w.counts.(c_delete) + 1;
      if not (in_range k) then Protocol.Error "key out of range"
      else if t.inst.Registry.delete ~tid k then begin
        t.values.(k) <- None;
        Protocol.Deleted
      end
      else Protocol.Not_found

(* Drain every complete frame the input buffer holds; returns [false]
   when the connection must be dropped (malformed frame). *)
let drain t w conn =
  let rec go n =
    match Conn.next conn ~decode:Protocol.decode_request with
    | `Need_more ->
        if n > 0 then w.counts.(c_batches) <- w.counts.(c_batches) + 1;
        true
    | `Bad _msg ->
        w.counts.(c_errors) <- w.counts.(c_errors) + 1;
        false
    | `Msg req ->
        Conn.queue conn Protocol.encode_response (exec t w req);
        go (n + 1)
  in
  go 0

let accept_all t w conns =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _addr ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        w.counts.(c_accepted) <- w.counts.(c_accepted) + 1;
        w.live <- w.live + 1;
        conns := Conn.create fd :: !conns
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let service t w conns conn =
  let drop () =
    Conn.close conn;
    w.live <- w.live - 1;
    conns := List.filter (fun c -> c != conn) !conns
  in
  match Conn.fill conn with
  | `Eof -> drop ()
  | `Would_block -> ()
  | `Data _ ->
      if drain t w conn then (
        try Conn.flush conn
        with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> drop ())
      else drop ()

let worker_loop t w =
  let conns = ref [] in
  while not (Atomic.get t.stopping) do
    let fds = t.listen_fd :: List.map Conn.fd !conns in
    match Unix.select fds [] [] 0.05 with
    | readable, _, _ ->
        if List.memq t.listen_fd readable then accept_all t w conns;
        List.iter
          (fun conn ->
            if List.memq (Conn.fd conn) readable then service t w conns conn)
          !conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        (* A peer died between building [fds] and selecting; the next
           fill on the dead conn reports `Eof and drops it. *)
        List.iter
          (fun conn -> service t w conns conn)
          !conns
  done;
  List.iter Conn.close !conns;
  w.live <- 0

(* Arena sizing mirrors bench/main.ml's [capacity_for]: sentinels (one
   head per bucket + shared tail) + live set + churn slack, with big
   headroom for NoRecl since it never reuses a slot. *)
let auto_capacity (cfg : config) =
  let sentinels = cfg.buckets + 2 in
  let base = sentinels + cfg.range + 400_000 in
  let cap = if cfg.scheme = "NoRecl" then base + 8_000_000 else base in
  min cap Memsim.Packed.max_index

let start (cfg : config) =
  if cfg.workers < 1 then invalid_arg "Server.start: workers < 1";
  if cfg.range < 1 then invalid_arg "Server.start: range < 1";
  (* A peer that disappears mid-write must surface as EPIPE on the
     write, not kill the process. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  let capacity =
    match cfg.capacity with Some c -> c | None -> auto_capacity cfg
  in
  let inst =
    Registry.make ~structure:"hash" ~scheme:cfg.scheme ~n_threads:cfg.workers
      ~range:cfg.range ~capacity ~buckets:cfg.buckets
      ?retire_threshold:cfg.retire_threshold ()
  in
  if cfg.prefill then
    for k = 0 to cfg.range - 1 do
      if Workload.prefill_member k then ignore (inst.Registry.insert ~tid:0 k)
    done;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
     Unix.listen listen_fd 128;
     Unix.set_nonblock listen_fd
   with e ->
     Unix.close listen_fd;
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  let t =
    {
      cfg;
      inst;
      values = Array.make cfg.range None;
      listen_fd;
      bound_port;
      stopping = Atomic.make false;
      workers =
        Array.init cfg.workers (fun tid ->
            { tid; counts = Array.make n_counts 0; live = 0 });
      domains = [];
      stopped = false;
    }
  in
  t.domains <-
    Array.to_list
      (Array.map (fun w -> Domain.spawn (fun () -> worker_loop t w)) t.workers);
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    List.iter Domain.join t.domains;
    t.domains <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
  end;
  stats t
