open Harness

type config = {
  host : string;
  port : int;
  workers : int;
  scheme : string;
  range : int;
  buckets : int;
  capacity : int option;
  retire_threshold : int option;
  prefill : bool;
  metrics_port : int option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    scheme = "VBR";
    range = 65536;
    buckets = 65536;
    capacity = None;
    retire_threshold = None;
    prefill = false;
    metrics_port = None;
  }

let scheme_of_cli s =
  match String.lowercase_ascii s with
  | "none" | "norecl" -> Ok "NoRecl"
  | "ebr" -> Ok "EBR"
  | "hp" -> Ok "HP"
  | "he" -> Ok "HE"
  | "ibr" -> Ok "IBR"
  | "vbr" -> Ok "VBR"
  | _ ->
      Result.Error
        (Printf.sprintf "unknown scheme %S (expected ebr|hp|he|ibr|vbr|none)" s)

(* Request opcodes indexed densely for the per-op instrument arrays. *)
let op_count = 6

let op_index : Protocol.request -> int = function
  | Protocol.Get _ -> 0
  | Protocol.Put _ -> 1
  | Protocol.Delete _ -> 2
  | Protocol.Stats -> 3
  | Protocol.Ping -> 4
  | Protocol.Stats_full -> 5

let op_names = [| "get"; "put"; "delete"; "stats"; "ping"; "stats_full" |]

(* The per-op server instruments (DESIGN.md §2.15). Counters and
   histogram cells are per-worker single-writer (cell = worker tid), so
   the hot path stays plain stores; STATS and /metrics merge them
   monotonically at scrape time. *)
type instruments = {
  i_req : Obs.Metrics.counter array;  (* by op_index *)
  i_lat : Obs.Metrics.histogram array;  (* by op_index, ns *)
  i_errors : Obs.Metrics.counter;
  i_batches : Obs.Metrics.counter;
  i_accepted : Obs.Metrics.counter;
  i_rx : Obs.Metrics.counter;
  i_tx : Obs.Metrics.counter;
}

let make_instruments reg ~cells =
  let ctr ?labels name help = Obs.Metrics.counter reg ~help ?labels ~cells name in
  {
    i_req =
      Array.init op_count (fun i ->
          ctr
            ~labels:[ ("op", op_names.(i)) ]
            "vbr_net_requests" "Requests served, by opcode.");
    i_lat =
      Array.init op_count (fun i ->
          Obs.Metrics.histogram reg
            ~help:"Request service time at the worker, by opcode."
            ~labels:[ ("op", op_names.(i)) ]
            ~scale:1e-9 ~cells "vbr_net_request_duration_seconds");
    i_errors = ctr "vbr_net_protocol_errors" "Connections dropped on a malformed frame.";
    i_batches = ctr "vbr_net_batches" "Read batches that decoded at least one frame.";
    i_accepted = ctr "vbr_net_connections_accepted" "Connections accepted.";
    i_rx = ctr "vbr_net_rx_bytes" "Bytes read from clients.";
    i_tx = ctr "vbr_net_tx_bytes" "Bytes queued to clients.";
  }

type worker = {
  tid : int;
  mutable live : int;  (* connections currently on this worker *)
}

type t = {
  cfg : config;
  inst : Registry.instance;
  values : string option array;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  workers : worker array;
  metrics : Obs.Metrics.t;
  ins : instruments;
  collector : Smr_metrics.t;
  metrics_fd : Unix.file_descr option;
  metrics_bound : int;
  mutable domains : unit Domain.t list;
  mutable stopped : bool;
}

let port t = t.bound_port
let metrics_port t = Option.map (fun _ -> t.metrics_bound) t.metrics_fd
let registry t = t.metrics

let stats t =
  let cv = Obs.Metrics.counter_value in
  let ops i = cv t.ins.i_req.(i) in
  let live = Array.fold_left (fun acc w -> acc + w.live) 0 t.workers in
  let snap = t.inst.Registry.stats () in
  let ev e = Obs.Counters.get snap e in
  [
    ("version", Protocol.version);
    ("workers", t.cfg.workers);
    ("range", t.cfg.range);
    ("buckets", t.cfg.buckets);
    ("size", t.inst.Registry.size ());
    ("conns", live);
    ("accepted", cv t.ins.i_accepted);
    ("ops_get", ops 0);
    ("ops_put", ops 1);
    ("ops_delete", ops 2);
    ("ops_stats", ops 3);
    ("ops_ping", ops 4);
    ("ops_stats_full", ops 5);
    ("batches", cv t.ins.i_batches);
    ("protocol_errors", cv t.ins.i_errors);
    ("unreclaimed", t.inst.Registry.unreclaimed ());
    ("allocated", t.inst.Registry.allocated ());
    ("epoch_advances", t.inst.Registry.epoch_advances ());
    ("allocs", ev Obs.Event.Alloc);
    ("retires", ev Obs.Event.Retire);
    ("reclaims", ev Obs.Event.Reclaim);
    ("rollbacks", ev Obs.Event.Rollback);
    ("cas_fails", ev Obs.Event.Cas_fail);
  ]

(* [size] walks the buckets quiescently; under live traffic it is only a
   rough gauge, which is all STATS promises. *)

(* The full telemetry snapshot as the binary STATS_FULL reply: the same
   registry /metrics exposes, flattened to wire-safe (name, int) pairs. *)
let metrics_snapshot t =
  let clip name =
    if String.length name > Protocol.max_stats_name_len then
      String.sub name 0 Protocol.max_stats_name_len
    else name
  in
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  ("version", Protocol.version)
  :: take
       (Protocol.max_stats_entries - 1)
       (List.map (fun (k, v) -> (clip k, v)) (Obs.Metrics.to_assoc t.metrics))

let exec t w (req : Protocol.request) : Protocol.response =
  let tid = w.tid in
  let in_range k = k >= 0 && k < t.cfg.range in
  match req with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Stats -> Protocol.Stats_reply (stats t)
  | Protocol.Stats_full -> Protocol.Stats_reply (metrics_snapshot t)
  | Protocol.Get k ->
      if not (in_range k) then Protocol.Error "key out of range"
      else if t.inst.Registry.contains ~tid k then
        Protocol.Value (Option.value t.values.(k) ~default:"")
      else Protocol.Not_found
  | Protocol.Put (k, v) ->
      if not (in_range k) then Protocol.Error "key out of range"
      else begin
        (* Payload before presence: a concurrent GET that sees the key
           present also sees some complete value (possibly a stale one —
           last writer wins on the cell). *)
        t.values.(k) <- Some v;
        match t.inst.Registry.insert ~tid k with
        | created -> Protocol.Stored created
        | exception Memsim.Arena.Exhausted ->
            Protocol.Error "arena exhausted (NoRecl headroom ran out?)"
      end
  | Protocol.Delete k ->
      if not (in_range k) then Protocol.Error "key out of range"
      else if t.inst.Registry.delete ~tid k then begin
        t.values.(k) <- None;
        Protocol.Deleted
      end
      else Protocol.Not_found

(* Drain every complete frame the input buffer holds; returns [false]
   when the connection must be dropped (malformed frame). Each request is
   counted and timed at the worker — the clock reads sit outside the
   table operation's critical sections (those open and close inside
   [exec]). *)
let drain t w conn =
  let cell = w.tid in
  let rec go n =
    match Conn.next conn ~decode:Protocol.decode_request with
    | `Need_more ->
        if n > 0 then Obs.Metrics.incr t.ins.i_batches ~cell;
        true
    | `Bad _msg ->
        Obs.Metrics.incr t.ins.i_errors ~cell;
        false
    | `Msg req ->
        let idx = op_index req in
        Obs.Metrics.incr t.ins.i_req.(idx) ~cell;
        let t0 = Obs.Clock.now_ns () in
        let resp = exec t w req in
        Obs.Metrics.observe t.ins.i_lat.(idx) ~cell (Obs.Clock.now_ns () - t0);
        Conn.queue conn Protocol.encode_response resp;
        go (n + 1)
  in
  go 0

let accept_all t w conns =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _addr ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        Obs.Metrics.incr t.ins.i_accepted ~cell:w.tid;
        w.live <- w.live + 1;
        conns := Conn.create fd :: !conns
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let service t w conns conn =
  let drop () =
    Conn.close conn;
    w.live <- w.live - 1;
    conns := List.filter (fun c -> c != conn) !conns
  in
  match Conn.fill conn with
  | `Eof -> drop ()
  | `Would_block -> ()
  | `Data n ->
      Obs.Metrics.add t.ins.i_rx ~cell:w.tid n;
      if drain t w conn then begin
        Obs.Metrics.add t.ins.i_tx ~cell:w.tid (Conn.output_pending conn);
        try Conn.flush conn
        with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> drop ()
      end
      else drop ()

let worker_loop t w =
  let conns = ref [] in
  while not (Atomic.get t.stopping) do
    let fds = t.listen_fd :: List.map Conn.fd !conns in
    match Unix.select fds [] [] 0.05 with
    | readable, _, _ ->
        if List.memq t.listen_fd readable then accept_all t w conns;
        List.iter
          (fun conn ->
            if List.memq (Conn.fd conn) readable then service t w conns conn)
          !conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        (* A peer died between building [fds] and selecting; the next
           fill on the dead conn reports `Eof and drops it. *)
        List.iter
          (fun conn -> service t w conns conn)
          !conns
  done;
  List.iter Conn.close !conns;
  w.live <- 0

(* ------------------------------------------------------------------ *)
(* The /metrics responder: its own listener on its own domain, riding  *)
(* Conn's nonblocking machinery. A scrape only reads the Metrics       *)
(* registry (padded cells, collector-fed atomics) — it never calls     *)
(* scheme code and never enters a checkpoint/guard scope, so a slow    *)
(* scraper cannot stall reclamation or any worker.                     *)
(* ------------------------------------------------------------------ *)

let add_raw buf s = Buffer.add_string buf s

let serve_scrape t conns conn =
  let drop () =
    Conn.close conn;
    conns := List.filter (fun c -> c != conn) !conns
  in
  match Conn.fill conn with
  | `Eof -> drop ()
  | `Would_block -> ()
  | `Data _ -> (
      let buf, pos, len = Conn.peek conn in
      match Http.head_end buf ~pos ~len with
      | None -> if len > Http.max_head_len then drop ()
      | Some head_len ->
          let head = Bytes.sub_string buf pos head_len in
          Conn.consume conn head_len;
          let resp =
            match Http.parse_request head with
            | Result.Error _ ->
                Http.response ~status:400 ~content_type:"text/plain"
                  "bad request\n"
            | Ok ("GET", "/metrics") ->
                Http.response ~status:200
                  ~content_type:Http.openmetrics_content_type
                  (Obs.Metrics.expose t.metrics)
            | Ok ("GET", "/metrics.json") ->
                Http.response ~status:200 ~content_type:"application/json"
                  (Obs.Sink.to_string (Obs.Metrics.to_json t.metrics))
            | Ok ("GET", _) ->
                Http.response ~status:404 ~content_type:"text/plain"
                  "not found (try /metrics)\n"
            | Ok _ ->
                Http.response ~status:405 ~content_type:"text/plain"
                  "method not allowed\n"
          in
          Conn.queue conn add_raw resp;
          (try Conn.flush conn
           with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
          drop ())

let metrics_loop t mfd =
  let conns = ref [] in
  let accept_scrapes () =
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true mfd with
      | fd, _addr ->
          Unix.set_nonblock fd;
          conns := Conn.create fd :: !conns
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          continue := false
      | exception Unix.Unix_error _ -> continue := false
    done
  in
  while not (Atomic.get t.stopping) do
    let fds = mfd :: List.map Conn.fd !conns in
    match Unix.select fds [] [] 0.05 with
    | readable, _, _ ->
        if List.memq mfd readable then accept_scrapes ();
        List.iter
          (fun conn ->
            if List.memq (Conn.fd conn) readable then serve_scrape t conns conn)
          !conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        List.iter (fun conn -> serve_scrape t conns conn) !conns
  done;
  List.iter Conn.close !conns

(* Arena sizing mirrors bench/main.ml's [capacity_for]: sentinels (one
   head per bucket + shared tail) + live set + churn slack, with big
   headroom for NoRecl since it never reuses a slot. *)
let auto_capacity (cfg : config) =
  let sentinels = cfg.buckets + 2 in
  let base = sentinels + cfg.range + 400_000 in
  let cap = if cfg.scheme = "NoRecl" then base + 8_000_000 else base in
  min cap Memsim.Packed.max_index

let listen_on ~host ~port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen fd 128;
     Unix.set_nonblock fd
   with e ->
     Unix.close fd;
     raise e);
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  (fd, bound)

let start (cfg : config) =
  if cfg.workers < 1 then invalid_arg "Server.start: workers < 1";
  if cfg.range < 1 then invalid_arg "Server.start: range < 1";
  (* A peer that disappears mid-write must surface as EPIPE on the
     write, not kill the process. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  let capacity =
    match cfg.capacity with Some c -> c | None -> auto_capacity cfg
  in
  let inst =
    Registry.make ~structure:"hash" ~scheme:cfg.scheme ~n_threads:cfg.workers
      ~range:cfg.range ~capacity ~buckets:cfg.buckets
      ?retire_threshold:cfg.retire_threshold ()
  in
  if cfg.prefill then
    for k = 0 to cfg.range - 1 do
      if Workload.prefill_member k then ignore (inst.Registry.insert ~tid:0 k)
    done;
  let listen_fd, bound_port = listen_on ~host:cfg.host ~port:cfg.port in
  let metrics_fd, metrics_bound =
    match cfg.metrics_port with
    | None -> (None, 0)
    | Some p -> (
        match listen_on ~host:cfg.host ~port:p with
        | fd, bound -> (Some fd, bound)
        | exception e ->
            Unix.close listen_fd;
            raise e)
  in
  let workers = Array.init cfg.workers (fun tid -> { tid; live = 0 }) in
  (* Registry, instruments and the SMR health collector exist whether or
     not the HTTP responder is enabled: STATS_FULL serves the same
     snapshot over the binary protocol. *)
  let metrics = Obs.Metrics.create () in
  let ins = make_instruments metrics ~cells:cfg.workers in
  Obs.Metrics.gauge metrics
    ~help:"Connections currently attached to a worker."
    "vbr_net_active_connections" (fun () ->
      float_of_int (Array.fold_left (fun acc w -> acc + w.live) 0 workers));
  let collector = Smr_metrics.attach metrics ~scheme:cfg.scheme inst in
  let t =
    {
      cfg;
      inst;
      values = Array.make cfg.range None;
      listen_fd;
      bound_port;
      stopping = Atomic.make false;
      workers;
      metrics;
      ins;
      collector;
      metrics_fd;
      metrics_bound;
      domains = [];
      stopped = false;
    }
  in
  t.domains <-
    Array.to_list
      (Array.map (fun w -> Domain.spawn (fun () -> worker_loop t w)) t.workers);
  (match metrics_fd with
  | Some mfd ->
      t.domains <- Domain.spawn (fun () -> metrics_loop t mfd) :: t.domains
  | None -> ());
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    List.iter Domain.join t.domains;
    t.domains <- [];
    Smr_metrics.stop t.collector;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Option.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.metrics_fd
  end;
  stats t
