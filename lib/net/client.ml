type t = { conn : Conn.t }

exception Disconnected
exception Protocol_failure of string

let connect ~host ~port =
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    { conn = Conn.create fd }
  with e ->
    Unix.close fd;
    raise e

let close t = Conn.close t.conn

let send t req =
  Conn.queue t.conn Protocol.encode_request req;
  Conn.flush t.conn

(* One buffered response if already decodable, otherwise one blocking
   read and retry; the socket is blocking, so [Conn.fill] parks until
   the server answers. *)
let rec recv t =
  match Conn.next t.conn ~decode:Protocol.decode_response with
  | `Msg r -> r
  | `Bad msg -> raise (Protocol_failure msg)
  | `Need_more -> (
      match Conn.fill t.conn with
      | `Eof -> raise Disconnected
      | `Data _ | `Would_block -> recv t)

let try_recv t ~timeout_s =
  match Conn.next t.conn ~decode:Protocol.decode_response with
  | `Msg r -> Some r
  | `Bad msg -> raise (Protocol_failure msg)
  | `Need_more -> (
      match Unix.select [ Conn.fd t.conn ] [] [] timeout_s with
      | [], _, _ -> None
      | _ :: _, _, _ -> (
          match Conn.fill t.conn with
          | `Eof -> raise Disconnected
          | `Data _ | `Would_block -> (
              match Conn.next t.conn ~decode:Protocol.decode_response with
              | `Msg r -> Some r
              | `Bad msg -> raise (Protocol_failure msg)
              | `Need_more -> None))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> None)

let batch t reqs =
  List.iter (fun r -> Conn.queue t.conn Protocol.encode_request r) reqs;
  Conn.flush t.conn;
  List.map (fun _ -> recv t) reqs

let request t req =
  match batch t [ req ] with
  | [ r ] -> r
  | _ -> assert false
