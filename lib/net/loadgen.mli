(** The vbr-kv load generator: N client domains driving a server with a
    read/update mix over a key distribution, measuring over-the-wire
    throughput and latency percentiles, and sampling the server's SMR
    counters (via STATS) before and after — so wire behaviour and
    reclamation behaviour land side by side in one BENCH_net.json point.

    Closed loop (default): each client keeps [batch] requests in flight —
    send the pipelined batch, wait for every response, repeat; each batch
    round trip is one latency sample. Open loop ([rate = Some r]): each
    client fires single requests on a fixed schedule of [r] requests/s
    and matches responses asynchronously; latency is measured from the
    {e scheduled} send time, so a stalling server accrues the delay
    (no coordinated omission). *)

type config = {
  host : string;
  port : int;
  clients : int;  (** client domains, one connection each *)
  duration : float;  (** seconds of measured traffic *)
  reads : int;  (** GET percentage; the rest splits PUT/DELETE evenly *)
  keydist : Harness.Keygen.dist;
  range : int;  (** keys drawn from [0, range) — match the server's *)
  batch : int;  (** closed-loop pipeline depth (>= 1) *)
  rate : int option;  (** open loop: requests/s per client *)
  value_len : int;  (** PUT payload size in bytes *)
  seed : int;  (** per-client RNGs derive from this *)
  timeline_ms : float;  (** interval time-series cadence (> 0) *)
}

val default_config : config
(** localhost, 4 clients, 5 s, 90 % reads, uniform keys over 65536,
    batch 1, closed loop, 64-byte values, seed 42, 1000 ms timeline. *)

type timeline_point = {
  tp_ms : float;  (** elapsed ms since the run started *)
  tp_ops : int;  (** cumulative validated responses at this instant *)
  tp_errors : int;  (** cumulative protocol errors *)
  tp_unreclaimed : int;
      (** the server's unreclaimed gauge via a dedicated STATS
          connection; [-1] when that read failed *)
  tp_hist : Obs.Histogram.t;  (** cumulative latency snapshot *)
}
(** One interval sample. Clients publish progress into per-client padded
    cells; a background {!Obs.Sampler} (cadence [timeline_ms]) reads the
    running totals racily, so mid-run points are approximate while the
    end-of-run aggregates stay exact. *)

type report = {
  r_ops : int;  (** responses received and validated *)
  r_errors : int;
      (** protocol-level failures: ERROR responses, response/request
          mismatches, decode failures, early disconnects *)
  r_elapsed : float;  (** measured wall seconds *)
  r_mops : float;  (** over-the-wire Mops/s *)
  r_latency : Obs.Histogram.t;
      (** batch round trips (closed loop) / per-request (open loop), ns *)
  r_server_before : (string * int) list;  (** STATS before traffic *)
  r_server_after : (string * int) list;  (** STATS after traffic *)
  r_timeline : timeline_point list;  (** chronological interval series *)
}

val run : config -> report
(** Drive the configured traffic.
    @raise Unix.Unix_error when the server is unreachable. *)

val report_json : config -> report -> Obs.Sink.json
(** One panel point: config echo, wire throughput, latency
    p50/p90/p99/p999/max, both server STATS snapshots, and a
    ["timeline"] array — per sample the cumulative totals plus the
    window's ops/s and p50/p99 (this sample's histogram minus the
    previous one, via {!Obs.Histogram.diff}). *)

val print_report : config -> report -> unit
(** The human-facing summary table. *)
