(** A blocking vbr-kv client connection with explicit pipelining:
    {!batch} queues every request, flushes them in one write, then reads
    the same number of responses — the client half of the server's
    drain-one-read / flush-one-write loop. *)

type t

exception Disconnected
(** The server closed the connection (e.g. after a malformed frame). *)

exception Protocol_failure of string
(** The byte stream stopped parsing as frames — a codec bug or a
    corrupted transport; the connection is unusable. *)

val connect : host:string -> port:int -> t
(** TCP connect (blocking socket, [TCP_NODELAY]).
    @raise Unix.Unix_error when the server is unreachable. *)

val close : t -> unit

val request : t -> Protocol.request -> Protocol.response
(** One request, one round trip. *)

val batch : t -> Protocol.request list -> Protocol.response list
(** Pipelined: send all (single flush), then collect one response per
    request, in order. *)

val send : t -> Protocol.request -> unit
(** Queue and flush one request without waiting — the open-loop
    primitive. Pair with {!try_recv}. *)

val try_recv : t -> timeout_s:float -> Protocol.response option
(** Next in-flight response if one arrives within the timeout ([None]
    otherwise). [timeout_s = 0.] polls. *)
