let version = 1
let max_value_len = 65535
let max_stats_name_len = 255
let max_error_len = 65535

(* magic 'V' 'B' + version + opcode *)
let header_len = 4
let magic0 = Char.code 'V'
let magic1 = Char.code 'B'

(* Every legal body fits under 128 KiB: the largest PUT/VALUE body is
   header + key + vlen prefix + 65535, and the largest stats reply is
   header + count + 256 * (1 + 255 + 8) = 67590. A length prefix above
   the bound is corrupt and rejected before buffering. *)
let max_stats_entries = 256
let max_frame_body = 1 lsl 17

type request =
  | Get of int
  | Put of int * string
  | Delete of int
  | Stats
  | Ping
  | Stats_full

type response =
  | Value of string
  | Not_found
  | Stored of bool
  | Deleted
  | Stats_reply of (string * int) list
  | Pong
  | Error of string

let clip s =
  if String.length s <= 24 then s else String.sub s 0 24 ^ "..."

let request_to_string = function
  | Get k -> Printf.sprintf "GET %d" k
  | Put (k, v) -> Printf.sprintf "PUT %d <%d bytes>" k (String.length v)
  | Delete k -> Printf.sprintf "DELETE %d" k
  | Stats -> "STATS"
  | Ping -> "PING"
  | Stats_full -> "STATS_FULL"

let response_to_string = function
  | Value v -> Printf.sprintf "VALUE <%d bytes>" (String.length v)
  | Not_found -> "NOT_FOUND"
  | Stored created -> if created then "STORED created" else "STORED replaced"
  | Deleted -> "DELETED"
  | Stats_reply kvs -> Printf.sprintf "STATS_REPLY (%d entries)" (List.length kvs)
  | Pong -> "PONG"
  | Error m -> Printf.sprintf "ERROR %s" (clip m)

(* Opcodes: requests in 0x01..0x7f, responses in 0x81..0xff, so a frame
   decoded with the wrong decoder fails on the opcode, not the payload. *)
let op_get = 0x01
let op_put = 0x02
let op_delete = 0x03
let op_stats = 0x04
let op_ping = 0x05
let op_stats_full = 0x06
let op_value = 0x81
let op_not_found = 0x82
let op_stored = 0x83
let op_deleted = 0x84
let op_stats_reply = 0x85
let op_pong = 0x86
let op_error = 0x87

(* ------------------------------------------------------------------ *)
(* Encoding: body into a scratch buffer, then length prefix + body     *)
(* into the caller's buffer.                                           *)
(* ------------------------------------------------------------------ *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_u16 b v =
  add_u8 b (v lsr 8);
  add_u8 b v

let add_u32 b v =
  add_u16 b (v lsr 16);
  add_u16 b v

let add_key b k =
  if k < 0 then invalid_arg "Protocol: negative key";
  Buffer.add_int64_be b (Int64.of_int k)

let add_header b opcode =
  add_u8 b magic0;
  add_u8 b magic1;
  add_u8 b version;
  add_u8 b opcode

let frame out body =
  let n = Buffer.length body in
  add_u32 out n;
  Buffer.add_buffer out body

let encode_request out req =
  let b = Buffer.create 32 in
  (match req with
  | Get k ->
      add_header b op_get;
      add_key b k
  | Put (k, v) ->
      if String.length v > max_value_len then
        invalid_arg "Protocol: value too long";
      add_header b op_put;
      add_key b k;
      add_u32 b (String.length v);
      Buffer.add_string b v
  | Delete k ->
      add_header b op_delete;
      add_key b k
  | Stats -> add_header b op_stats
  | Ping -> add_header b op_ping
  | Stats_full -> add_header b op_stats_full);
  frame out b

let encode_response out resp =
  let b = Buffer.create 32 in
  (match resp with
  | Value v ->
      if String.length v > max_value_len then
        invalid_arg "Protocol: value too long";
      add_header b op_value;
      add_u32 b (String.length v);
      Buffer.add_string b v
  | Not_found -> add_header b op_not_found
  | Stored created ->
      add_header b op_stored;
      add_u8 b (if created then 1 else 0)
  | Deleted -> add_header b op_deleted
  | Stats_reply kvs ->
      let n = List.length kvs in
      if n > max_stats_entries then invalid_arg "Protocol: too many stats";
      add_header b op_stats_reply;
      add_u16 b n;
      List.iter
        (fun (name, v) ->
          if String.length name > max_stats_name_len then
            invalid_arg "Protocol: stats name too long";
          add_u8 b (String.length name);
          Buffer.add_string b name;
          Buffer.add_int64_be b (Int64.of_int v))
        kvs
  | Pong -> add_header b op_pong
  | Error m ->
      let m =
        if String.length m > max_error_len then String.sub m 0 max_error_len
        else m
      in
      add_header b op_error;
      add_u16 b (String.length m);
      Buffer.add_string b m);
  frame out b

(* ------------------------------------------------------------------ *)
(* Decoding: a little cursor over a byte slice; every getter checks    *)
(* bounds and fails through [exception Bad] caught at the entry point, *)
(* so the public decoders are total.                                   *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type cursor = { buf : Bytes.t; stop : int; mutable p : int }

let need c n msg = if c.p + n > c.stop then raise (Bad msg)

let u8 c msg =
  need c 1 msg;
  let v = Char.code (Bytes.get c.buf c.p) in
  c.p <- c.p + 1;
  v

let u16 c msg =
  let hi = u8 c msg in
  let lo = u8 c msg in
  (hi lsl 8) lor lo

let u32 c msg =
  let hi = u16 c msg in
  let lo = u16 c msg in
  (hi lsl 16) lor lo

let key c =
  need c 8 "truncated key";
  let v = Bytes.get_int64_be c.buf c.p in
  c.p <- c.p + 8;
  let k = Int64.to_int v in
  if Int64.of_int k <> v || k < 0 then raise (Bad "key out of 63-bit range");
  k

let bytes_field c n msg =
  need c n msg;
  let s = Bytes.sub_string c.buf c.p n in
  c.p <- c.p + n;
  s

let i64 c msg =
  need c 8 msg;
  let v = Bytes.get_int64_be c.buf c.p in
  c.p <- c.p + 8;
  Int64.to_int v

type frame = [ `Need_more | `Frame of int * int * int | `Bad of string ]

let frame_peek buf ~pos ~avail : frame =
  if avail < 4 then `Need_more
  else
    let c = { buf; stop = pos + avail; p = pos } in
    let body_len = u32 c "unreachable" in
    if body_len > max_frame_body then
      `Bad (Printf.sprintf "frame body %d exceeds %d" body_len max_frame_body)
    else if body_len < header_len then
      `Bad (Printf.sprintf "frame body %d shorter than the header" body_len)
    else if avail < 4 + body_len then `Need_more
    else `Frame (pos + 4, body_len, 4 + body_len)

(* Magic/version check shared by both decoders; returns the opcode. *)
let open_body c =
  let m0 = u8 c "truncated header" in
  let m1 = u8 c "truncated header" in
  if m0 <> magic0 || m1 <> magic1 then raise (Bad "bad magic");
  let ver = u8 c "truncated header" in
  if ver <> version then raise (Bad (Printf.sprintf "unsupported version %d" ver));
  u8 c "truncated header"

let finish c v =
  if c.p <> c.stop then raise (Bad "trailing bytes in frame");
  v

let decode decode_op buf ~pos ~len =
  let c = { buf; stop = pos + len; p = pos } in
  match finish c (decode_op c (open_body c)) with
  | v -> Ok v
  | exception Bad msg -> Result.Error msg

let decode_request buf ~pos ~len =
  decode
    (fun c op ->
      if op = op_get then Get (key c)
      else if op = op_put then begin
        let k = key c in
        let n = u32 c "truncated value length" in
        if n > max_value_len then raise (Bad "value too long");
        Put (k, bytes_field c n "truncated value")
      end
      else if op = op_delete then Delete (key c)
      else if op = op_stats then Stats
      else if op = op_ping then Ping
      else if op = op_stats_full then Stats_full
      else raise (Bad (Printf.sprintf "unknown request opcode 0x%02x" op)))
    buf ~pos ~len

let decode_response buf ~pos ~len =
  decode
    (fun c op ->
      if op = op_value then begin
        let n = u32 c "truncated value length" in
        if n > max_value_len then raise (Bad "value too long");
        Value (bytes_field c n "truncated value")
      end
      else if op = op_not_found then Not_found
      else if op = op_stored then begin
        match u8 c "truncated stored flag" with
        | 0 -> Stored false
        | 1 -> Stored true
        | v -> raise (Bad (Printf.sprintf "bad stored flag %d" v))
      end
      else if op = op_deleted then Deleted
      else if op = op_stats_reply then begin
        let n = u16 c "truncated stats count" in
        if n > max_stats_entries then raise (Bad "too many stats entries");
        let entries =
          List.init n (fun _ ->
              let klen = u8 c "truncated stats name length" in
              let name = bytes_field c klen "truncated stats name" in
              (name, i64 c "truncated stats value"))
        in
        Stats_reply entries
      end
      else if op = op_pong then Pong
      else if op = op_error then begin
        let n = u16 c "truncated error length" in
        Error (bytes_field c n "truncated error message")
      end
      else raise (Bad (Printf.sprintf "unknown response opcode 0x%02x" op)))
    buf ~pos ~len
