(** The vbr-kv wire protocol: a length-prefixed binary framing with a
    versioned magic header, six commands, and total (never-throwing)
    incremental decoders.

    Frame layout (all integers big-endian):

    {v
    u32 body_len | body
    body = u8 'V' | u8 'B' | u8 version (1) | u8 opcode | payload
    v}

    Request payloads: GET/DELETE carry an 8-byte non-negative key; PUT a
    key plus [u32 vlen | vlen bytes]; STATS, PING and STATS_FULL are
    empty. Response
    payloads mirror the constructors below. Keys are 63-bit non-negative
    integers (the storage engine is an integer-keyed lock-free hash
    table); values are opaque byte strings up to {!max_value_len}.

    Decoding is total: a truncated buffer yields [`Need_more], a corrupt
    one (bad magic/version/opcode, oversized or short body, trailing
    junk, negative key) yields an [Error] — never an exception, never a
    garbage frame. *)

val version : int
(** Wire version carried in every frame header (currently 1). *)

val max_value_len : int
(** Upper bound on a PUT/VALUE payload (65535 bytes). *)

val max_stats_entries : int
(** Upper bound on entries in a [Stats_reply] (256). *)

val max_stats_name_len : int
(** Upper bound on one stats entry name (255 bytes). *)

val max_frame_body : int
(** Largest legal body length; a length prefix above this is rejected
    before any buffering, so a corrupt prefix cannot trigger a huge
    allocation. *)

type request =
  | Get of int
  | Put of int * string
  | Delete of int
  | Stats
  | Ping
  | Stats_full
      (** the full telemetry snapshot ({!Obs.Metrics.to_assoc}) as a
          [Stats_reply] — the binary twin of [GET /metrics] *)

type response =
  | Value of string  (** GET hit: the stored payload *)
  | Not_found  (** GET/DELETE miss *)
  | Stored of bool  (** PUT ack; [true] = created, [false] = replaced *)
  | Deleted  (** DELETE hit *)
  | Stats_reply of (string * int) list
      (** server gauges/counters; names ≤ 255 bytes, ≤ 65535 entries *)
  | Pong
  | Error of string  (** server-side rejection (e.g. key out of range) *)

val request_to_string : request -> string
val response_to_string : response -> string
(** One-line renderings for logs and test failures (values truncated). *)

(** {2 Encoding} *)

val encode_request : Buffer.t -> request -> unit
(** Append one full frame (length prefix included).
    @raise Invalid_argument on a negative key or an over-long value. *)

val encode_response : Buffer.t -> response -> unit
(** @raise Invalid_argument on over-long stats names/messages/values. *)

(** {2 Incremental decoding} *)

type frame = [ `Need_more | `Frame of int * int * int | `Bad of string ]
(** [`Frame (body_pos, body_len, total)]: a complete frame starts at the
    scanned position; its body (magic included) sits at [body_pos] and
    the whole frame spans [total] bytes. *)

val frame_peek : Bytes.t -> pos:int -> avail:int -> frame
(** Scan [avail] bytes at [pos] for one complete frame. Rejects an
    oversized length prefix ([`Bad]) without waiting for the body. *)

val decode_request : Bytes.t -> pos:int -> len:int -> (request, string) result
(** Decode one frame body (as delimited by {!frame_peek}): magic,
    version, opcode and payload, rejecting trailing bytes. *)

val decode_response : Bytes.t -> pos:int -> len:int -> (response, string) result
