(** The vbr-kv TCP server: a lock-free hash table behind the wire
    protocol, served by a fixed pool of worker domains.

    Threading model: the storage engine is one {!Harness.Registry}
    instance built with [n_threads = workers]; each worker domain owns
    SMR thread id [tid] and runs a [select]-based event loop over the
    connections it accepted (the shared listening socket is in every
    worker's readable set, so accepting is take-what-you-get load
    balancing). A connection lives on one worker for its whole life, so
    every table operation it triggers runs under that worker's [tid] —
    exactly the per-thread discipline the SMR schemes require.

    Batching: one [read(2)] is drained of {e every} complete frame it
    contains, each request runs against the table, and all responses are
    flushed with one [write(2)] — a pipelining client amortizes one
    syscall pair over the whole batch.

    Values: the lock-free table indexes {e presence} of the integer key
    (that is the SMR-stressed hot path); the payload bytes ride in a
    per-key sidecar cell with last-writer-wins raciness. [GET] returns
    the cell only when the table says the key is present. *)

type config = {
  host : string;  (** bind address, default "127.0.0.1" *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  workers : int;  (** worker domains = SMR thread ids *)
  scheme : string;  (** a {!Harness.Registry} scheme name, e.g. "VBR" *)
  range : int;  (** key space is [0, range) *)
  buckets : int;  (** hash bucket count (load factor = range/buckets) *)
  capacity : int option;  (** arena slots; [None] = auto-sized *)
  retire_threshold : int option;  (** scheme default when [None] *)
  prefill : bool;  (** preload the deterministic half-range set *)
}

val default_config : config
(** VBR, port 0, 4 workers, range 65536, buckets = range, no prefill. *)

val scheme_of_cli : string -> (string, string) result
(** Map a CLI spelling — [ebr|hp|he|ibr|vbr|none], case-insensitive,
    registry spellings also accepted — to the registry scheme name. *)

type t

val start : config -> t
(** Bind, build the table, spawn the workers, return immediately.
    @raise Invalid_argument on a bad scheme/range/buckets.
    @raise Unix.Unix_error if the bind fails. *)

val port : t -> int
(** The bound port (the ephemeral one when [config.port] was 0). *)

val stats : t -> (string * int) list
(** The same racy gauge/counter assoc served to STATS requests: request
    counts per opcode, live connections, protocol errors, and the
    scheme's SMR counters (unreclaimed, allocated, epoch advances,
    retires, reclaims, rollbacks, CAS fails). *)

val stop : t -> (string * int) list
(** Ask every worker to finish its current drain, join them, close the
    listening socket and every connection, and return the final stats.
    Idempotent. *)
