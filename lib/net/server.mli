(** The vbr-kv TCP server: a lock-free hash table behind the wire
    protocol, served by a fixed pool of worker domains.

    Threading model: the storage engine is one {!Harness.Registry}
    instance built with [n_threads = workers]; each worker domain owns
    SMR thread id [tid] and runs a [select]-based event loop over the
    connections it accepted (the shared listening socket is in every
    worker's readable set, so accepting is take-what-you-get load
    balancing). A connection lives on one worker for its whole life, so
    every table operation it triggers runs under that worker's [tid] —
    exactly the per-thread discipline the SMR schemes require.

    Batching: one [read(2)] is drained of {e every} complete frame it
    contains, each request runs against the table, and all responses are
    flushed with one [write(2)] — a pipelining client amortizes one
    syscall pair over the whole batch.

    Telemetry (DESIGN.md §2.15): every server carries an {!Obs.Metrics}
    registry — per-op request counters and latency histograms recorded
    at the worker into per-worker cells, byte/connection counters, and
    the per-scheme SMR health gauges kept fresh by a
    {!Harness.Smr_metrics} background collector. With
    [config.metrics_port] set, a dedicated domain serves [GET /metrics]
    (OpenMetrics) and [GET /metrics.json] over a minimal HTTP/1.1
    responder; the binary STATS_FULL opcode carries the same snapshot.
    Scrapes only read padded cells and collector-fed atomics — they
    never run scheme code and sit outside every checkpoint/guard scope.

    Values: the lock-free table indexes {e presence} of the integer key
    (that is the SMR-stressed hot path); the payload bytes ride in a
    per-key sidecar cell with last-writer-wins raciness. [GET] returns
    the cell only when the table says the key is present. *)

type config = {
  host : string;  (** bind address, default "127.0.0.1" *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  workers : int;  (** worker domains = SMR thread ids *)
  scheme : string;  (** a {!Harness.Registry} scheme name, e.g. "VBR" *)
  range : int;  (** key space is [0, range) *)
  buckets : int;  (** hash bucket count (load factor = range/buckets) *)
  capacity : int option;  (** arena slots; [None] = auto-sized *)
  retire_threshold : int option;  (** scheme default when [None] *)
  prefill : bool;  (** preload the deterministic half-range set *)
  metrics_port : int option;
      (** serve [GET /metrics] here (0 = ephemeral, see {!metrics_port});
          [None] disables the HTTP responder (STATS_FULL still works) *)
}

val default_config : config
(** VBR, port 0, 4 workers, range 65536, buckets = range, no prefill,
    no metrics port. *)

val scheme_of_cli : string -> (string, string) result
(** Map a CLI spelling — [ebr|hp|he|ibr|vbr|none], case-insensitive,
    registry spellings also accepted — to the registry scheme name. *)

type t

val start : config -> t
(** Bind, build the table, spawn the workers (and the metrics responder
    domain when configured), return immediately.
    @raise Invalid_argument on a bad scheme/range/buckets.
    @raise Unix.Unix_error if a bind fails. *)

val port : t -> int
(** The bound port (the ephemeral one when [config.port] was 0). *)

val metrics_port : t -> int option
(** The bound metrics port, when the HTTP responder is enabled. *)

val registry : t -> Obs.Metrics.t
(** The server's telemetry registry — what [/metrics] and STATS_FULL
    serve. Read-only access for in-process embedders (bench panels,
    tests). *)

val stats : t -> (string * int) list
(** The same racy gauge/counter assoc served to STATS requests: request
    counts per opcode, live connections, protocol errors, and the
    scheme's SMR counters (unreclaimed, allocated, epoch advances,
    retires, reclaims, rollbacks, CAS fails). Counter values come from
    the per-worker telemetry cells merged monotonically at scrape time. *)

val stop : t -> (string * int) list
(** Ask every worker to finish its current drain, join them, stop the
    telemetry collector, close the listening sockets and every
    connection, and return the final stats. Idempotent. *)
