type scrape = { s_at : float; s_fams : Obs.Metrics.pfamily list }

let scrape ~host ~port =
  match Http.get ~host ~port "/metrics" with
  | Error e -> Error e
  | Ok body -> (
      match Obs.Metrics.parse body with
      | Error e -> Error ("bad exposition: " ^ e)
      | Ok fams -> Ok { s_at = Obs.Clock.now_s (); s_fams = fams })

(* ---------- formatting helpers ---------- *)

let fmt_dur_s s =
  if s < 0.0 then "-"
  else if s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

let fmt_count n =
  if n >= 1e9 then Printf.sprintf "%.2fG" (n /. 1e9)
  else if n >= 1e6 then Printf.sprintf "%.2fM" (n /. 1e6)
  else if n >= 1e4 then Printf.sprintf "%.1fk" (n /. 1e3)
  else Printf.sprintf "%.0f" n

let value fams ?labels name =
  Option.value (Obs.Metrics.sample_value fams ?labels name) ~default:0.0

(* Distinct values of [key] across a family's samples, first-seen order. *)
let label_values fams family key =
  match Obs.Metrics.find_family fams family with
  | None -> []
  | Some f ->
      List.fold_left
        (fun acc s ->
          match List.assoc_opt key s.Obs.Metrics.ps_labels with
          | Some v when not (List.mem v acc) -> acc @ [ v ]
          | _ -> acc)
        [] f.Obs.Metrics.pf_samples

(* Cumulative buckets of [now] minus those of [prev] (le-aligned): the
   window's distribution. Falls back to [now]'s buckets when the scrapes
   do not line up. *)
let window_buckets ~prev ~now =
  if List.length prev <> List.length now then now
  else
    List.map2
      (fun (le_p, c_p) (le_n, c_n) ->
        if le_p = le_n then (le_n, Float.max 0.0 (c_n -. c_p))
        else (le_n, c_n))
      prev now

let window_quantile ~prev_fams ~fams ~labels q =
  match Obs.Metrics.find_family fams "vbr_net_request_duration_seconds" with
  | None -> None
  | Some f ->
      let now = Obs.Metrics.buckets_of f ~labels in
      let prev =
        match
          Option.bind prev_fams (fun pf ->
              Obs.Metrics.find_family pf "vbr_net_request_duration_seconds")
        with
        | None -> []
        | Some pf -> Obs.Metrics.buckets_of pf ~labels
      in
      let w = if prev = [] then now else window_buckets ~prev ~now in
      Obs.Metrics.quantile_of_buckets w q

let render ?prev now =
  let fams = now.s_fams in
  let prev_fams = Option.map (fun p -> p.s_fams) prev in
  let dt =
    match prev with
    | Some p when now.s_at > p.s_at -> now.s_at -. p.s_at
    | _ -> 0.0
  in
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "vbr-top  (window %.1fs)"
    (if dt > 0.0 then dt else 0.0);
  line "";
  line "  conns %s  accepted %s  proto errors %s  rx %s  tx %s"
    (fmt_count (value fams "vbr_net_active_connections"))
    (fmt_count (value fams "vbr_net_connections_accepted_total"))
    (fmt_count (value fams "vbr_net_protocol_errors_total"))
    (fmt_count (value fams "vbr_net_rx_bytes_total"))
    (fmt_count (value fams "vbr_net_tx_bytes_total"));
  line "";
  line "  %-12s %10s %10s %9s %9s" "op" "total" "rate/s" "p50" "p99";
  List.iter
    (fun op ->
      let labels = [ ("op", op) ] in
      let total = value fams ~labels "vbr_net_requests_total" in
      let rate =
        if dt > 0.0 then
          let before =
            match prev_fams with
            | None -> 0.0
            | Some pf -> value pf ~labels "vbr_net_requests_total"
          in
          (total -. before) /. dt
        else 0.0
      in
      let q p =
        match window_quantile ~prev_fams ~fams ~labels p with
        | None -> "-"
        | Some s -> fmt_dur_s s
      in
      line "  %-12s %10s %10s %9s %9s" op (fmt_count total) (fmt_count rate)
        (q 0.50) (q 0.99))
    (label_values fams "vbr_net_requests" "op");
  line "";
  line "  %-8s %12s %12s %10s %8s %10s" "scheme" "unreclaimed" "allocated"
    "retires" "stall" "advances";
  List.iter
    (fun scheme ->
      let labels = [ ("scheme", scheme) ] in
      line "  %-8s %12s %12s %10s %8s %10s" scheme
        (fmt_count (value fams ~labels "vbr_smr_unreclaimed_slots"))
        (fmt_count (value fams ~labels "vbr_smr_allocated_slots"))
        (fmt_count (value fams ~labels "vbr_smr_retires_total"))
        (fmt_dur_s (value fams ~labels "vbr_smr_epoch_stall_seconds"))
        (fmt_count (value fams ~labels "vbr_smr_epoch_advances_total")))
    (label_values fams "vbr_smr_unreclaimed_slots" "scheme");
  Buffer.contents b

let run ~host ~port ~interval_s ~once () =
  if once then (
    match scrape ~host ~port with
    | Error e ->
        Printf.eprintf "vbr-top: %s\n" e;
        1
    | Ok s ->
        print_string (render s);
        0)
  else
    let prev = ref None in
    let failures = ref 0 in
    let rc = ref (-1) in
    while !rc < 0 do
      (match scrape ~host ~port with
      | Error e ->
          incr failures;
          if !failures >= 3 then (
            Printf.eprintf "vbr-top: %s\n" e;
            rc := 1)
      | Ok s ->
          failures := 0;
          print_string "\027[2J\027[H";
          print_string (render ?prev:!prev s);
          flush stdout;
          prev := Some s);
      if !rc < 0 then Unix.sleepf interval_s
    done;
    !rc

(* ---------- the CI smoke check ---------- *)

let required_families =
  [
    "vbr_net_requests";
    "vbr_net_request_duration_seconds";
    "vbr_smr_unreclaimed_slots";
  ]

let counter_samples fams =
  List.concat_map
    (fun f ->
      if f.Obs.Metrics.pf_kind = "counter" then
        List.filter_map
          (fun s ->
            (* only the running totals; _created etc. would not be
               monotone in the same sense *)
            if
              String.length s.Obs.Metrics.ps_name > 6
              && Filename.check_suffix s.Obs.Metrics.ps_name "_total"
            then Some s
            else None)
          f.Obs.Metrics.pf_samples
      else [])
    fams

let buckets_monotone fams =
  List.for_all
    (fun f ->
      if f.Obs.Metrics.pf_kind <> "histogram" then true
      else
        (* every label combination's cumulative series must be
           non-decreasing in le *)
        let serieses =
          List.filter_map
            (fun s ->
              if Filename.check_suffix s.Obs.Metrics.ps_name "_bucket" then
                Some (List.remove_assoc "le" s.Obs.Metrics.ps_labels)
              else None)
            f.Obs.Metrics.pf_samples
        in
        let distinct =
          List.fold_left
            (fun acc l -> if List.mem l acc then acc else l :: acc)
            [] serieses
        in
        List.for_all
          (fun labels ->
            let bs = Obs.Metrics.buckets_of f ~labels in
            let ok = ref true in
            let last = ref neg_infinity in
            List.iter
              (fun (_, c) ->
                if c < !last then ok := false;
                last := c)
              bs;
            !ok)
          distinct)
    fams

let check ~host ~port =
  match scrape ~host ~port with
  | Error e -> Error ("first scrape: " ^ e)
  | Ok s1 -> (
      Unix.sleepf 1.0;
      match scrape ~host ~port with
      | Error e -> Error ("second scrape: " ^ e)
      | Ok s2 -> (
          let missing =
            List.filter
              (fun n -> Obs.Metrics.find_family s2.s_fams n = None)
              required_families
          in
          match missing with
          | n :: _ -> Error ("family missing from exposition: " ^ n)
          | [] ->
              if not (buckets_monotone s2.s_fams) then
                Error "histogram buckets not monotone within a scrape"
              else
                let bad =
                  List.find_opt
                    (fun s1s ->
                      match
                        Obs.Metrics.find_sample s2.s_fams
                          ~labels:s1s.Obs.Metrics.ps_labels
                          s1s.Obs.Metrics.ps_name
                      with
                      | None -> true
                      | Some s2s ->
                          s2s.Obs.Metrics.ps_value
                          < s1s.Obs.Metrics.ps_value
                    )
                    (counter_samples s1.s_fams)
                in
                (match bad with
                | Some s ->
                    Error
                      (Printf.sprintf
                         "counter %s went backwards (or vanished) between \
                          scrapes"
                         s.Obs.Metrics.ps_name)
                | None -> Ok ())))
