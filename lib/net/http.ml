(* Just enough HTTP/1.1 for the telemetry plane: a request-head scanner
   and response builder for the server's nonblocking /metrics responder
   (riding Conn's peek/consume), and a tiny blocking GET client for
   vbr-top, the loopback tests and the CI smoke job. Every response and
   every client request is Connection: close — one scrape, one socket. *)

let openmetrics_content_type =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"

(* Refuse to buffer unbounded garbage while hunting for the head
   terminator: a real scrape request is a few hundred bytes. *)
let max_head_len = 16 * 1024

let head_end buf ~pos ~len =
  let limit = pos + len in
  let rec scan i =
    if i + 3 >= limit then None
    else if
      Bytes.get buf i = '\r'
      && Bytes.get buf (i + 1) = '\n'
      && Bytes.get buf (i + 2) = '\r'
      && Bytes.get buf (i + 3) = '\n'
    then Some (i + 4 - pos)
    else scan (i + 1)
  in
  scan pos

let parse_request head =
  match String.index_opt head '\r' with
  | None -> Result.Error "missing request line"
  | Some eol -> (
      let line = String.sub head 0 eol in
      match String.split_on_char ' ' line with
      | [ meth; target; version ]
        when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
          (* Strip any query string: the responder routes on the path. *)
          let path =
            match String.index_opt target '?' with
            | Some q -> String.sub target 0 q
            | None -> target
          in
          Ok (meth, path)
      | _ -> Result.Error "malformed request line")

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | _ -> "Internal Server Error"

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status (status_text status) content_type (String.length body) body

(* ------------------------------------------------------------------ *)
(* Blocking one-shot client.                                           *)
(* ------------------------------------------------------------------ *)

let read_all fd =
  let buf = Buffer.create 8192 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  Buffer.contents buf

let get ?(timeout_s = 5.0) ~host ~port path =
  match
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        let req =
          Printf.sprintf
            "GET %s HTTP/1.1\r\nHost: %s:%d\r\nConnection: close\r\n\r\n"
            path host port
        in
        ignore (Unix.write_substring fd req 0 (String.length req));
        read_all fd)
  with
  | exception Unix.Unix_error (e, fn, _) ->
      Result.Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | raw -> (
      let hbuf = Bytes.of_string raw in
      match head_end hbuf ~pos:0 ~len:(Bytes.length hbuf) with
      | None -> Result.Error "truncated response (no header terminator)"
      | Some hlen -> (
          let head = String.sub raw 0 hlen in
          let body = String.sub raw hlen (String.length raw - hlen) in
          match String.split_on_char ' ' head with
          | _ :: code :: _ when code = "200" -> Ok body
          | _ :: code :: _ ->
              Result.Error (Printf.sprintf "HTTP status %s" code)
          | _ -> Result.Error "malformed status line"))
