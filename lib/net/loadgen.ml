open Harness

type config = {
  host : string;
  port : int;
  clients : int;
  duration : float;
  reads : int;
  keydist : Keygen.dist;
  range : int;
  batch : int;
  rate : int option;
  value_len : int;
  seed : int;
  timeline_ms : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    clients = 4;
    duration = 5.0;
    reads = 90;
    keydist = Keygen.Uniform;
    range = 65536;
    batch = 1;
    rate = None;
    value_len = 64;
    seed = 42;
    timeline_ms = 1000.0;
  }

type timeline_point = {
  tp_ms : float;
  tp_ops : int;
  tp_errors : int;
  tp_unreclaimed : int;
  tp_hist : Obs.Histogram.t;
}

type report = {
  r_ops : int;
  r_errors : int;
  r_elapsed : float;
  r_mops : float;
  r_latency : Obs.Histogram.t;
  r_server_before : (string * int) list;
  r_server_after : (string * int) list;
  r_timeline : timeline_point list;
}

(* One sampled request: GET with probability [reads]%, the rest split
   between PUT and DELETE — the net twin of Workload.pick. *)
let sample_request cfg kg rng value =
  let k = Keygen.next kg rng in
  let r = Rng.below rng 100 in
  if r < cfg.reads then Protocol.Get k
  else if (r - cfg.reads) mod 2 = 0 then Protocol.Put (k, value)
  else Protocol.Delete k

(* A response is valid iff its constructor can answer its request;
   ERROR and cross-matched pairs count as protocol errors. *)
let valid_pair (req : Protocol.request) (resp : Protocol.response) =
  match (req, resp) with
  | Protocol.Get _, (Protocol.Value _ | Protocol.Not_found) -> true
  | Protocol.Put _, Protocol.Stored _ -> true
  | Protocol.Delete _, (Protocol.Deleted | Protocol.Not_found) -> true
  | Protocol.Stats, Protocol.Stats_reply _ -> true
  | Protocol.Stats_full, Protocol.Stats_reply _ -> true
  | Protocol.Ping, Protocol.Pong -> true
  | _ -> false

(* Per-client progress lives in shared padded cells (one writer per
   client, stride-16 like Obs.Metrics) plus one histogram per client, so
   the timeline sampler can read running totals mid-flight; the final
   totals are read after the joins and are exact. *)
let cell_stride = 16

type tally = {
  t_id : int;
  t_ops : int array;
  t_err : int array;
  t_hist : Obs.Histogram.t;
}

let bump_ops tl =
  let i = tl.t_id * cell_stride in
  tl.t_ops.(i) <- tl.t_ops.(i) + 1

let bump_err tl =
  let i = tl.t_id * cell_stride in
  tl.t_err.(i) <- tl.t_err.(i) + 1

let cell_sum arr =
  let acc = ref 0 in
  let n = Array.length arr / cell_stride in
  for i = 0 to n - 1 do
    acc := !acc + arr.(i * cell_stride)
  done;
  !acc

let closed_loop cfg ~id tl stop =
  let c = Client.connect ~host:cfg.host ~port:cfg.port in
  let rng = Rng.create ~seed:(cfg.seed + (id * 7919) + 13) in
  let kg = Keygen.create cfg.keydist ~range:cfg.range in
  let value = String.make cfg.value_len 'v' in
  (try
     while not (Atomic.get stop) do
       let reqs = List.init cfg.batch (fun _ -> sample_request cfg kg rng value) in
       let t0 = Obs.Clock.now_ns () in
       let resps = Client.batch c reqs in
       Obs.Histogram.record tl.t_hist (Obs.Clock.now_ns () - t0);
       List.iter2
         (fun req resp ->
           bump_ops tl;
           if not (valid_pair req resp) then bump_err tl)
         reqs resps
     done
   with
  | Client.Disconnected | Client.Protocol_failure _ -> bump_err tl
  | Unix.Unix_error _ -> bump_err tl);
  Client.close c

let open_loop cfg ~id ~rate tl stop =
  let c = Client.connect ~host:cfg.host ~port:cfg.port in
  let rng = Rng.create ~seed:(cfg.seed + (id * 7919) + 13) in
  let kg = Keygen.create cfg.keydist ~range:cfg.range in
  let value = String.make cfg.value_len 'v' in
  let interval_ns = max 1 (1_000_000_000 / max 1 rate) in
  (* FIFO of (request, scheduled send time): responses come back in
     order, so the head is always the next match. *)
  let pending = Queue.create () in
  let next_send = ref (Obs.Clock.now_ns ()) in
  (try
     while not (Atomic.get stop) do
       let now = Obs.Clock.now_ns () in
       if now >= !next_send then begin
         let req = sample_request cfg kg rng value in
         Client.send c req;
         (* Stamp the *scheduled* time: a late send is server-induced
            queueing delay and must show up in the percentiles. *)
         Queue.push (req, !next_send) pending;
         next_send := !next_send + interval_ns
       end;
       let timeout_s =
         float_of_int (max 0 (!next_send - Obs.Clock.now_ns ())) /. 1e9
       in
       match Client.try_recv c ~timeout_s:(Float.min timeout_s 0.05) with
       | None -> ()
       | Some resp ->
           let req, t0 = Queue.pop pending in
           Obs.Histogram.record tl.t_hist (Obs.Clock.now_ns () - t0);
           bump_ops tl;
           if not (valid_pair req resp) then bump_err tl
     done;
     (* Drain what is still in flight so the server sees a quiet close. *)
     let deadline = Obs.Clock.now_ns () + 500_000_000 in
     while (not (Queue.is_empty pending)) && Obs.Clock.now_ns () < deadline do
       match Client.try_recv c ~timeout_s:0.05 with
       | None -> ()
       | Some resp ->
           let req, t0 = Queue.pop pending in
           Obs.Histogram.record tl.t_hist (Obs.Clock.now_ns () - t0);
           bump_ops tl;
           if not (valid_pair req resp) then bump_err tl
     done
   with
  | Client.Disconnected | Client.Protocol_failure _ -> bump_err tl
  | Unix.Unix_error _ -> bump_err tl);
  Client.close c

let run cfg =
  if cfg.clients < 1 then invalid_arg "Loadgen.run: clients < 1";
  if cfg.batch < 1 then invalid_arg "Loadgen.run: batch < 1";
  if cfg.reads < 0 || cfg.reads > 100 then
    invalid_arg "Loadgen.run: reads outside 0..100";
  if cfg.timeline_ms <= 0.0 then invalid_arg "Loadgen.run: timeline_ms <= 0";
  (* A control connection samples STATS outside the measured window; a
     second one belongs to the timeline sampler domain so the two never
     share a socket. *)
  let ctl = Client.connect ~host:cfg.host ~port:cfg.port in
  let tl_ctl = Client.connect ~host:cfg.host ~port:cfg.port in
  let stats_of = function
    | Protocol.Stats_reply kvs -> kvs
    | other ->
        raise
          (Client.Protocol_failure
             ("STATS answered " ^ Protocol.response_to_string other))
  in
  let before = stats_of (Client.request ctl Protocol.Stats) in
  let stop = Atomic.make false in
  let ops_cells = Array.make (cfg.clients * cell_stride) 0 in
  let err_cells = Array.make (cfg.clients * cell_stride) 0 in
  let hists = Array.init cfg.clients (fun _ -> Obs.Histogram.create ()) in
  let t0 = Obs.Clock.now_s () in
  (* The interval time-series: running op/error totals and a cumulative
     latency snapshot from the shared cells, plus the server's
     unreclaimed gauge over the sampler's own STATS connection (-1 when
     that read fails). *)
  let sampler =
    Obs.Sampler.start ~interval_ms:cfg.timeline_ms
      ~read:(fun () ->
        let unreclaimed =
          match Client.request tl_ctl Protocol.Stats with
          | Protocol.Stats_reply kvs ->
              Option.value (List.assoc_opt "unreclaimed" kvs) ~default:(-1)
          | _ -> -1
          | exception _ -> -1
        in
        ( cell_sum ops_cells,
          cell_sum err_cells,
          unreclaimed,
          Obs.Histogram.merge_all (Array.to_list hists) ))
      ()
  in
  let domains =
    List.init cfg.clients (fun id ->
        let tl =
          { t_id = id; t_ops = ops_cells; t_err = err_cells; t_hist = hists.(id) }
        in
        Domain.spawn (fun () ->
            match cfg.rate with
            | None -> closed_loop cfg ~id tl stop
            | Some rate -> open_loop cfg ~id ~rate tl stop))
  in
  Unix.sleepf cfg.duration;
  Atomic.set stop true;
  List.iter Domain.join domains;
  let samples = Obs.Sampler.stop sampler in
  Client.close tl_ctl;
  let elapsed = Obs.Clock.now_s () -. t0 in
  let after = stats_of (Client.request ctl Protocol.Stats) in
  Client.close ctl;
  let ops = cell_sum ops_cells in
  let errors = cell_sum err_cells in
  let timeline =
    List.map
      (fun { Obs.Sampler.elapsed_ms; value = (o, e, u, h) } ->
        {
          tp_ms = elapsed_ms;
          tp_ops = o;
          tp_errors = e;
          tp_unreclaimed = u;
          tp_hist = h;
        })
      samples
  in
  {
    r_ops = ops;
    r_errors = errors;
    r_elapsed = elapsed;
    r_mops = float_of_int ops /. elapsed /. 1e6;
    r_latency = Obs.Histogram.merge_all (Array.to_list hists);
    r_server_before = before;
    r_server_after = after;
    r_timeline = timeline;
  }

let latency_json h =
  let open Obs.Sink in
  let s = Obs.Histogram.summarize h in
  Obj
    [
      ("count", Int s.Obs.Histogram.count);
      ("mean_ns", Float s.Obs.Histogram.mean);
      ("p50_ns", Int s.Obs.Histogram.p50);
      ("p90_ns", Int s.Obs.Histogram.p90);
      ("p99_ns", Int s.Obs.Histogram.p99);
      ("p999_ns", Int (Obs.Histogram.quantile h 0.999));
      ("max_ns", Int s.Obs.Histogram.max);
    ]

(* Each timeline entry carries the cumulative totals plus the per-window
   rate and latency percentiles (window = this sample minus the previous
   one, via Histogram.diff). *)
let timeline_json tl =
  let open Obs.Sink in
  let prev = ref None in
  List
    (List.map
       (fun p ->
         let prev_ms, prev_ops, prev_hist =
           match !prev with
           | None -> (0.0, 0, Obs.Histogram.create ())
           | Some q -> (q.tp_ms, q.tp_ops, q.tp_hist)
         in
         prev := Some p;
         let dt_s = (p.tp_ms -. prev_ms) /. 1000.0 in
         let w = Obs.Histogram.diff ~since:prev_hist p.tp_hist in
         Obj
           [
             ("t_ms", Float p.tp_ms);
             ("ops", Int p.tp_ops);
             ("errors", Int p.tp_errors);
             ("unreclaimed", Int p.tp_unreclaimed);
             ( "win_ops_per_s",
               Float
                 (if dt_s > 0.0 then
                    float_of_int (p.tp_ops - prev_ops) /. dt_s
                  else 0.0) );
             ("win_count", Int (Obs.Histogram.count w));
             ("win_p50_ns", Int (Obs.Histogram.quantile w 0.50));
             ("win_p99_ns", Int (Obs.Histogram.quantile w 0.99));
           ])
       tl)

let report_json cfg r =
  let open Obs.Sink in
  let stats_obj kvs = Obj (List.map (fun (k, v) -> (k, Int v)) kvs) in
  Obj
    [
      ("clients", Int cfg.clients);
      ("duration_s", Float cfg.duration);
      ("reads_pct", Int cfg.reads);
      ("keydist", String (Keygen.dist_to_string cfg.keydist));
      ("range", Int cfg.range);
      ("batch", Int cfg.batch);
      ( "rate_per_client",
        match cfg.rate with None -> Null | Some r -> Int r );
      ("value_len", Int cfg.value_len);
      ("ops", Int r.r_ops);
      ("errors", Int r.r_errors);
      ("elapsed_s", Float r.r_elapsed);
      ("wire_mops", Float r.r_mops);
      ("latency_ns", latency_json r.r_latency);
      ("timeline_ms", Float cfg.timeline_ms);
      ("timeline", timeline_json r.r_timeline);
      ("server_before", stats_obj r.r_server_before);
      ("server_after", stats_obj r.r_server_after);
    ]

let print_report cfg r =
  let loop_desc =
    match cfg.rate with
    | None -> Printf.sprintf "closed loop, batch %d" cfg.batch
    | Some rate -> Printf.sprintf "open loop, %d req/s per client" rate
  in
  Printf.printf
    "[net] %d clients x %.1fs against %s:%d (%d%% reads, %s, %s)\n"
    cfg.clients cfg.duration cfg.host cfg.port cfg.reads
    (Keygen.dist_to_string cfg.keydist)
    loop_desc;
  Printf.printf "  ops %d (%d errors)  %.3f Mops/s over the wire\n" r.r_ops
    r.r_errors r.r_mops;
  let s = Obs.Histogram.summarize r.r_latency in
  Printf.printf
    "  latency ns: p50 %d  p90 %d  p99 %d  p999 %d  max %d (%s samples)\n"
    s.Obs.Histogram.p50 s.Obs.Histogram.p90 s.Obs.Histogram.p99
    (Obs.Histogram.quantile r.r_latency 0.999)
    s.Obs.Histogram.max
    (string_of_int s.Obs.Histogram.count);
  Printf.printf "  timeline: %d samples at %.0f ms cadence\n"
    (List.length r.r_timeline) cfg.timeline_ms;
  let get kvs k = Option.value (List.assoc_opt k kvs) ~default:0 in
  let delta k = get r.r_server_after k - get r.r_server_before k in
  Printf.printf
    "  server: unreclaimed %d  allocated %d  epoch advances +%d  retires \
     +%d  reclaims +%d  rollbacks +%d\n"
    (get r.r_server_after "unreclaimed")
    (get r.r_server_after "allocated")
    (delta "epoch_advances") (delta "retires") (delta "reclaims")
    (delta "rollbacks")
