open Harness

type config = {
  host : string;
  port : int;
  clients : int;
  duration : float;
  reads : int;
  keydist : Keygen.dist;
  range : int;
  batch : int;
  rate : int option;
  value_len : int;
  seed : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    clients = 4;
    duration = 5.0;
    reads = 90;
    keydist = Keygen.Uniform;
    range = 65536;
    batch = 1;
    rate = None;
    value_len = 64;
    seed = 42;
  }

type report = {
  r_ops : int;
  r_errors : int;
  r_elapsed : float;
  r_mops : float;
  r_latency : Obs.Histogram.t;
  r_server_before : (string * int) list;
  r_server_after : (string * int) list;
}

(* One sampled request: GET with probability [reads]%, the rest split
   between PUT and DELETE — the net twin of Workload.pick. *)
let sample_request cfg kg rng value =
  let k = Keygen.next kg rng in
  let r = Rng.below rng 100 in
  if r < cfg.reads then Protocol.Get k
  else if (r - cfg.reads) mod 2 = 0 then Protocol.Put (k, value)
  else Protocol.Delete k

(* A response is valid iff its constructor can answer its request;
   ERROR and cross-matched pairs count as protocol errors. *)
let valid_pair (req : Protocol.request) (resp : Protocol.response) =
  match (req, resp) with
  | Protocol.Get _, (Protocol.Value _ | Protocol.Not_found) -> true
  | Protocol.Put _, Protocol.Stored _ -> true
  | Protocol.Delete _, (Protocol.Deleted | Protocol.Not_found) -> true
  | Protocol.Stats, Protocol.Stats_reply _ -> true
  | Protocol.Ping, Protocol.Pong -> true
  | _ -> false

type client_result = { ops : int; errors : int; hist : Obs.Histogram.t }

let closed_loop cfg ~id stop =
  let c = Client.connect ~host:cfg.host ~port:cfg.port in
  let rng = Rng.create ~seed:(cfg.seed + (id * 7919) + 13) in
  let kg = Keygen.create cfg.keydist ~range:cfg.range in
  let value = String.make cfg.value_len 'v' in
  let hist = Obs.Histogram.create () in
  let ops = ref 0 and errors = ref 0 in
  (try
     while not (Atomic.get stop) do
       let reqs = List.init cfg.batch (fun _ -> sample_request cfg kg rng value) in
       let t0 = Obs.Clock.now_ns () in
       let resps = Client.batch c reqs in
       Obs.Histogram.record hist (Obs.Clock.now_ns () - t0);
       List.iter2
         (fun req resp ->
           incr ops;
           if not (valid_pair req resp) then incr errors)
         reqs resps
     done
   with
  | Client.Disconnected | Client.Protocol_failure _ -> incr errors
  | Unix.Unix_error _ -> incr errors);
  Client.close c;
  { ops = !ops; errors = !errors; hist }

let open_loop cfg ~id ~rate stop =
  let c = Client.connect ~host:cfg.host ~port:cfg.port in
  let rng = Rng.create ~seed:(cfg.seed + (id * 7919) + 13) in
  let kg = Keygen.create cfg.keydist ~range:cfg.range in
  let value = String.make cfg.value_len 'v' in
  let hist = Obs.Histogram.create () in
  let ops = ref 0 and errors = ref 0 in
  let interval_ns = max 1 (1_000_000_000 / max 1 rate) in
  (* FIFO of (request, scheduled send time): responses come back in
     order, so the head is always the next match. *)
  let pending = Queue.create () in
  let next_send = ref (Obs.Clock.now_ns ()) in
  (try
     while not (Atomic.get stop) do
       let now = Obs.Clock.now_ns () in
       if now >= !next_send then begin
         let req = sample_request cfg kg rng value in
         Client.send c req;
         (* Stamp the *scheduled* time: a late send is server-induced
            queueing delay and must show up in the percentiles. *)
         Queue.push (req, !next_send) pending;
         next_send := !next_send + interval_ns
       end;
       let timeout_s =
         float_of_int (max 0 (!next_send - Obs.Clock.now_ns ())) /. 1e9
       in
       match Client.try_recv c ~timeout_s:(Float.min timeout_s 0.05) with
       | None -> ()
       | Some resp ->
           let req, t0 = Queue.pop pending in
           Obs.Histogram.record hist (Obs.Clock.now_ns () - t0);
           incr ops;
           if not (valid_pair req resp) then incr errors
     done;
     (* Drain what is still in flight so the server sees a quiet close. *)
     let deadline = Obs.Clock.now_ns () + 500_000_000 in
     while (not (Queue.is_empty pending)) && Obs.Clock.now_ns () < deadline do
       match Client.try_recv c ~timeout_s:0.05 with
       | None -> ()
       | Some resp ->
           let req, t0 = Queue.pop pending in
           Obs.Histogram.record hist (Obs.Clock.now_ns () - t0);
           incr ops;
           if not (valid_pair req resp) then incr errors
     done
   with
  | Client.Disconnected | Client.Protocol_failure _ -> incr errors
  | Unix.Unix_error _ -> incr errors);
  Client.close c;
  { ops = !ops; errors = !errors; hist }

let run cfg =
  if cfg.clients < 1 then invalid_arg "Loadgen.run: clients < 1";
  if cfg.batch < 1 then invalid_arg "Loadgen.run: batch < 1";
  if cfg.reads < 0 || cfg.reads > 100 then
    invalid_arg "Loadgen.run: reads outside 0..100";
  (* A control connection samples STATS outside the measured window. *)
  let ctl = Client.connect ~host:cfg.host ~port:cfg.port in
  let stats_of = function
    | Protocol.Stats_reply kvs -> kvs
    | other ->
        raise
          (Client.Protocol_failure
             ("STATS answered " ^ Protocol.response_to_string other))
  in
  let before = stats_of (Client.request ctl Protocol.Stats) in
  let stop = Atomic.make false in
  let t0 = Obs.Clock.now_s () in
  let domains =
    List.init cfg.clients (fun id ->
        Domain.spawn (fun () ->
            match cfg.rate with
            | None -> closed_loop cfg ~id stop
            | Some rate -> open_loop cfg ~id ~rate stop))
  in
  Unix.sleepf cfg.duration;
  Atomic.set stop true;
  let results = List.map Domain.join domains in
  let elapsed = Obs.Clock.now_s () -. t0 in
  let after = stats_of (Client.request ctl Protocol.Stats) in
  Client.close ctl;
  let ops = List.fold_left (fun acc r -> acc + r.ops) 0 results in
  let errors = List.fold_left (fun acc r -> acc + r.errors) 0 results in
  {
    r_ops = ops;
    r_errors = errors;
    r_elapsed = elapsed;
    r_mops = float_of_int ops /. elapsed /. 1e6;
    r_latency = Obs.Histogram.merge_all (List.map (fun r -> r.hist) results);
    r_server_before = before;
    r_server_after = after;
  }

let latency_json h =
  let open Obs.Sink in
  let s = Obs.Histogram.summarize h in
  Obj
    [
      ("count", Int s.Obs.Histogram.count);
      ("mean_ns", Float s.Obs.Histogram.mean);
      ("p50_ns", Int s.Obs.Histogram.p50);
      ("p90_ns", Int s.Obs.Histogram.p90);
      ("p99_ns", Int s.Obs.Histogram.p99);
      ("p999_ns", Int (Obs.Histogram.quantile h 0.999));
      ("max_ns", Int s.Obs.Histogram.max);
    ]

let report_json cfg r =
  let open Obs.Sink in
  let stats_obj kvs = Obj (List.map (fun (k, v) -> (k, Int v)) kvs) in
  Obj
    [
      ("clients", Int cfg.clients);
      ("duration_s", Float cfg.duration);
      ("reads_pct", Int cfg.reads);
      ("keydist", String (Keygen.dist_to_string cfg.keydist));
      ("range", Int cfg.range);
      ("batch", Int cfg.batch);
      ( "rate_per_client",
        match cfg.rate with None -> Null | Some r -> Int r );
      ("value_len", Int cfg.value_len);
      ("ops", Int r.r_ops);
      ("errors", Int r.r_errors);
      ("elapsed_s", Float r.r_elapsed);
      ("wire_mops", Float r.r_mops);
      ("latency_ns", latency_json r.r_latency);
      ("server_before", stats_obj r.r_server_before);
      ("server_after", stats_obj r.r_server_after);
    ]

let print_report cfg r =
  let loop_desc =
    match cfg.rate with
    | None -> Printf.sprintf "closed loop, batch %d" cfg.batch
    | Some rate -> Printf.sprintf "open loop, %d req/s per client" rate
  in
  Printf.printf
    "[net] %d clients x %.1fs against %s:%d (%d%% reads, %s, %s)\n"
    cfg.clients cfg.duration cfg.host cfg.port cfg.reads
    (Keygen.dist_to_string cfg.keydist)
    loop_desc;
  Printf.printf "  ops %d (%d errors)  %.3f Mops/s over the wire\n" r.r_ops
    r.r_errors r.r_mops;
  let s = Obs.Histogram.summarize r.r_latency in
  Printf.printf
    "  latency ns: p50 %d  p90 %d  p99 %d  p999 %d  max %d (%s samples)\n"
    s.Obs.Histogram.p50 s.Obs.Histogram.p90 s.Obs.Histogram.p99
    (Obs.Histogram.quantile r.r_latency 0.999)
    s.Obs.Histogram.max
    (string_of_int s.Obs.Histogram.count);
  let get kvs k = Option.value (List.assoc_opt k kvs) ~default:0 in
  let delta k = get r.r_server_after k - get r.r_server_before k in
  Printf.printf
    "  server: unreclaimed %d  allocated %d  epoch advances +%d  retires \
     +%d  reclaims +%d  rollbacks +%d\n"
    (get r.r_server_after "unreclaimed")
    (get r.r_server_after "allocated")
    (delta "epoch_advances") (delta "retires") (delta "reclaims")
    (delta "rollbacks")
