(** One buffered socket: an input byte buffer fed by [read(2)] and
    drained a frame at a time, and an output buffer flushed with as few
    [write(2)]s as possible — the pipelining substrate on both sides of
    the wire. A server worker reads one chunk, decodes {e every} complete
    frame in it, queues every response, and flushes once. *)

type t

val create : Unix.file_descr -> t
(** Wrap an already-connected socket. The fd's blocking mode is left to
    the caller; {!fill} reports [`Would_block] on nonblocking sockets. *)

val fd : t -> Unix.file_descr

val fill : t -> [ `Data of int | `Eof | `Would_block ]
(** One [read(2)] into the input buffer (compacting/growing as needed).
    [`Data n] appended [n] fresh bytes; [`Eof] is a clean peer close.
    [ECONNRESET]/[EPIPE] also report [`Eof]. *)

val next : t ->
  decode:(Bytes.t -> pos:int -> len:int -> ('a, string) result) ->
  [ `Msg of 'a | `Need_more | `Bad of string ]
(** Pop the next complete frame from the input buffer and decode its
    body with [decode] (one of {!Protocol.decode_request} /
    {!Protocol.decode_response}). [`Bad] covers both a corrupt frame
    boundary and a body the decoder rejects; the connection is beyond
    recovery and should be dropped. *)

val peek : t -> Bytes.t * int * int
(** [(buf, pos, len)]: a borrowed view of the unconsumed input bytes —
    valid only until the next {!fill}/{!next}/{!consume}. Lets protocols
    without length-prefixed frames (the HTTP metrics responder) scan for
    their own delimiters. *)

val consume : t -> int -> unit
(** Discard [n] unconsumed input bytes from the front.
    @raise Invalid_argument if [n] exceeds what {!peek} reports. *)

val queue : t -> (Buffer.t -> 'a -> unit) -> 'a -> unit
(** Append one encoded frame to the output buffer without writing. *)

val flush : t -> unit
(** Write the whole output buffer, looping over partial writes (waiting
    for writability on a nonblocking socket).
    @raise Unix.Unix_error on a dead peer ([EPIPE]/[ECONNRESET]). *)

val output_pending : t -> int
(** Bytes queued but not yet flushed. *)

val close : t -> unit
(** Close the fd; repeated closes are no-ops. *)
