(** Minimal HTTP/1.1 for the telemetry plane (DESIGN.md §2.15).

    Server side: delimiter scanning and response building for the
    [/metrics] responder, which rides {!Conn}'s nonblocking
    [peek]/[consume] machinery on its own listener domain — never a
    worker, never inside an SMR critical section. Client side: a tiny
    blocking one-shot GET for vbr-top, the loopback tests and the CI
    smoke job. Everything is [Connection: close]: one scrape, one
    socket. *)

val openmetrics_content_type : string
(** The content type served for {!Obs.Metrics.expose} pages. *)

val max_head_len : int
(** Upper bound on a request head the responder will buffer while
    waiting for the terminator; beyond it the connection is dropped. *)

val head_end : Bytes.t -> pos:int -> len:int -> int option
(** Length of the request/response head (terminating [CRLFCRLF]
    included) within the given slice, or [None] if incomplete. *)

val parse_request : string -> (string * string, string) result
(** [(method, path)] from a request head; the query string is stripped
    from the path. *)

val response : status:int -> content_type:string -> string -> string
(** A full [Connection: close] response with [Content-Length]. *)

val get :
  ?timeout_s:float ->
  host:string ->
  port:int ->
  string ->
  (string, string) result
(** [get ~host ~port path]: blocking one-shot request; [Ok body] on a
    200, [Error] describing the failure otherwise (connect/read errors,
    non-200 status, truncated response). [timeout_s] (default 5) bounds
    both connect-side sends and reads. *)
