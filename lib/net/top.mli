(** vbr-top: the live terminal view over [GET /metrics], plus the
    machine-checkable scrape validation behind [--check] and the CI
    metrics smoke job.

    Everything here is client-side: one {!Http.get} per refresh, parsed
    with {!Obs.Metrics.parse}. Window rates and percentiles come from
    differencing two consecutive scrapes (counter deltas over wall time;
    histogram quantiles over the bucket-wise cumulative difference), so
    the view converges on current behaviour rather than lifetime
    averages. *)

type scrape = { s_at : float; s_fams : Obs.Metrics.pfamily list }

val scrape : host:string -> port:int -> (scrape, string) result
(** One [GET /metrics] + parse, stamped with {!Obs.Clock.now_s}. *)

val render : ?prev:scrape -> scrape -> string
(** The dashboard: connection/byte totals, a per-op table (cumulative
    count, window rate, window p50/p99), and per-scheme SMR health rows
    (unreclaimed, allocated, retires, epoch stall, advances). Without
    [prev], rates are 0 and percentiles are lifetime-cumulative. *)

val run : host:string -> port:int -> interval_s:float -> once:bool -> unit -> int
(** The CLI loop: clear-screen + render every [interval_s] until killed
    (or a single plain render with [once]); returns a process exit code
    (1 after three consecutive scrape failures). *)

val check : host:string -> port:int -> (unit, string) result
(** Scrape twice one second apart and validate: the required families
    ([vbr_net_requests], [vbr_net_request_duration_seconds],
    [vbr_smr_unreclaimed_slots]) are present, every histogram's
    cumulative buckets are monotone within a scrape, and every counter
    [_total] sample is monotone {e between} scrapes. *)
