type t = {
  fd : Unix.file_descr;
  mutable ibuf : Bytes.t;
  mutable ipos : int;  (* first unconsumed byte *)
  mutable ilen : int;  (* end of valid data *)
  obuf : Buffer.t;
  mutable closed : bool;
}

let initial_buf = 1 lsl 16

let create fd =
  {
    fd;
    ibuf = Bytes.create initial_buf;
    ipos = 0;
    ilen = 0;
    obuf = Buffer.create initial_buf;
    closed = false;
  }

let fd t = t.fd

(* Make room for at least [n] more input bytes: compact the consumed
   prefix away first, double only if still needed. The buffer never needs
   to exceed one max frame + one read chunk. *)
let reserve t n =
  if t.ilen + n > Bytes.length t.ibuf then begin
    if t.ipos > 0 then begin
      Bytes.blit t.ibuf t.ipos t.ibuf 0 (t.ilen - t.ipos);
      t.ilen <- t.ilen - t.ipos;
      t.ipos <- 0
    end;
    while t.ilen + n > Bytes.length t.ibuf do
      let bigger = Bytes.create (2 * Bytes.length t.ibuf) in
      Bytes.blit t.ibuf 0 bigger 0 t.ilen;
      t.ibuf <- bigger
    done
  end

let read_chunk = 1 lsl 16

let fill t =
  reserve t read_chunk;
  match Unix.read t.fd t.ibuf t.ilen read_chunk with
  | 0 -> `Eof
  | n ->
      t.ilen <- t.ilen + n;
      `Data n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      `Would_block
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Eof

let next t ~decode =
  match
    Protocol.frame_peek t.ibuf ~pos:t.ipos ~avail:(t.ilen - t.ipos)
  with
  | `Need_more -> `Need_more
  | `Bad msg -> `Bad msg
  | `Frame (body_pos, body_len, total) -> (
      let r = decode t.ibuf ~pos:body_pos ~len:body_len in
      t.ipos <- t.ipos + total;
      if t.ipos = t.ilen then begin
        t.ipos <- 0;
        t.ilen <- 0
      end;
      match r with Ok v -> `Msg v | Error msg -> `Bad msg)

let peek t = (t.ibuf, t.ipos, t.ilen - t.ipos)

let consume t n =
  if n < 0 || n > t.ilen - t.ipos then invalid_arg "Conn.consume";
  t.ipos <- t.ipos + n;
  if t.ipos = t.ilen then begin
    t.ipos <- 0;
    t.ilen <- 0
  end

let queue t encode v = encode t.obuf v
let output_pending t = Buffer.length t.obuf

let flush t =
  let data = Buffer.to_bytes t.obuf in
  Buffer.clear t.obuf;
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    match Unix.write t.fd data !off (len - !off) with
    | n -> off := !off + n
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        (* Nonblocking socket with a full kernel buffer: wait until
           writable, then retry the remainder. *)
        ignore (Unix.select [] [ t.fd ] [] (-1.0))
  done

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
