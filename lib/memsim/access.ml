(* The instrumentable shared-memory access layer.

   Every *semantic* shared word in the repository — node next words,
   birth/retire stamps, epoch counters, hazard/announce slots, structure
   roots, the global pool stacks — is read and written through these
   wrappers instead of raw [Atomic] calls. When no scheduler is
   installed (the default, and always the case in benchmarks) each
   wrapper is one load of an immediate [None] and a branch in front of
   the underlying atomic operation, so Figure-2 throughput is
   unaffected. When [Schedsim.Sched] installs its hook, every access
   becomes a scheduling decision point, which is what makes exhaustive
   interleaving exploration meaningful.

   Observability words (Obs counters, trace sequence numbers) stay on
   raw [Atomic] deliberately: they are not part of any algorithm's
   shared state, and yielding inside them would only inflate decision
   strings without adding interleavings of interest. *)

let hook : (unit -> unit) option ref = ref None

let install f =
  match !hook with
  | Some _ -> invalid_arg "Access.install: a scheduler hook is already installed"
  | None -> hook := Some f

let uninstall () = hook := None
let installed () = Option.is_some !hook

let[@inline] yield_point () =
  match !hook with None -> () | Some f -> f ()

let[@inline] get a =
  yield_point ();
  Atomic.get a

let[@inline] set a v =
  yield_point ();
  Atomic.set a v

let[@inline] compare_and_set a expected new_ =
  yield_point ();
  Atomic.compare_and_set a expected new_

let[@inline] exchange a v =
  yield_point ();
  Atomic.exchange a v

let[@inline] fetch_and_add a n =
  yield_point ();
  Atomic.fetch_and_add a n

let[@inline] incr a =
  yield_point ();
  Atomic.incr a

let[@inline] decr a =
  yield_point ();
  Atomic.decr a
