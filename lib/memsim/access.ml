(* The instrumentable shared-memory access layer.

   Every *semantic* shared word in the repository — node next words,
   birth/retire stamps, epoch counters, hazard/announce slots, structure
   roots, the global pool stacks — is read and written through these
   wrappers instead of raw [Atomic] calls. When no scheduler is
   installed (the default, and always the case in benchmarks) each
   wrapper is one load of the installed-hook count and a branch in front
   of the underlying atomic operation, so Figure-2 throughput is
   unaffected. When [Schedsim.Sched] installs its hook, every access
   becomes a scheduling decision point, which is what makes exhaustive
   interleaving exploration meaningful.

   Since the model-checking fleet (DESIGN.md §2.16) the hook is
   per-domain: each fleet worker runs its own virtual scheduler over its
   own scenario instance, so the hook lives in domain-local storage and
   the global word is just a count of installed hooks gating the slow
   path. The hook also receives the identity of the access — its kind
   and the physical word it targets — which is what the DPOR
   commutativity check and the coverage signatures consume.

   Observability words (Obs counters, trace sequence numbers) stay on
   raw [Atomic] deliberately: they are not part of any algorithm's
   shared state, and yielding inside them would only inflate decision
   strings without adding interleavings of interest. *)

type kind = Read | Write | Cas | Exchange | Fetch_add

type op = { kind : kind; word : Obj.t }

(* How many domains currently have a hook installed. The uninstrumented
   fast path is one load of this word and a branch; only when it is
   nonzero does an access pay the domain-local lookup. *)
let hooks : int Atomic.t = Atomic.make 0

let key : (op -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let install f =
  match Domain.DLS.get key with
  | Some _ ->
      invalid_arg
        "Access.install: a scheduler hook is already installed on this domain"
  | None ->
      Domain.DLS.set key (Some f);
      Atomic.incr hooks

let uninstall () =
  match Domain.DLS.get key with
  | None -> ()
  | Some _ ->
      Domain.DLS.set key None;
      Atomic.decr hooks

let installed () = Option.is_some (Domain.DLS.get key)

(* The slow path, deliberately not inlined: only runs while some domain
   is simulating. A domain with no hook of its own (it merely coexists
   with a simulating one) falls through to the plain operation. *)
let notify kind word =
  match Domain.DLS.get key with
  | None -> ()
  | Some f -> f { kind; word }

let[@inline] note kind word = if Atomic.get hooks > 0 then notify kind word

(* Decision points marked by [yield_point] are not shared-memory accesses
   at all, so they are modelled as reads of one dedicated word: they
   commute with every real access (and with each other). *)
let marker : Obj.t = Obj.repr (ref 0)

let[@inline] yield_point () = note Read marker

let[@inline] get a =
  note Read (Obj.repr a);
  Atomic.get a

let[@inline] set a v =
  note Write (Obj.repr a);
  Atomic.set a v

let[@inline] compare_and_set a expected new_ =
  note Cas (Obj.repr a);
  Atomic.compare_and_set a expected new_

let[@inline] exchange a v =
  note Exchange (Obj.repr a);
  Atomic.exchange a v

let[@inline] fetch_and_add a n =
  note Fetch_add (Obj.repr a);
  Atomic.fetch_and_add a n

let[@inline] incr a =
  note Fetch_add (Obj.repr a);
  Atomic.incr a

let[@inline] decr a =
  note Fetch_add (Obj.repr a);
  Atomic.decr a
