type t = {
  arena : Arena.t;
  global : Global_pool.t;
  shard : int;  (* this thread's Global_pool shard *)
  spill : int;
  free : int list array;  (* per level-1 *)
  free_len : int array;
  mutable recycled : int;
  mutable rng : int;  (* xorshift state for the steal probe *)
  stats : Obs.Counters.shard option;
  mutable trace : Obs.Trace.ring option;
}

let max_supported_level = 32

let create ?stats ?(shard = 0) arena global ~spill =
  if spill < 2 then invalid_arg "Pool.create: spill must be >= 2";
  {
    arena;
    global;
    shard;
    spill;
    free = Array.make max_supported_level [];
    free_len = Array.make max_supported_level 0;
    recycled = 0;
    (* Any nonzero per-shard seed works; the golden-ratio multiplier just
       decorrelates neighbouring shards' probe sequences. *)
    rng = ((shard + 1) * 0x9E3779B97F4A7C1) lor 1;
    stats;
    trace = None;
  }

let set_trace t r = t.trace <- Some r

let count t ev =
  match t.stats with None -> () | Some s -> Obs.Counters.shard_incr s ev

let count_n t ev n =
  match t.stats with None -> () | Some s -> Obs.Counters.shard_add s ev n

let probe t =
  let x = t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  t.rng <- x;
  x land max_int

let rec split_at n acc = function
  | rest when n = 0 -> (List.rev acc, rest)
  | [] -> (List.rev acc, [])
  | x :: rest -> split_at (n - 1) (x :: acc) rest

let maybe_spill t lvl =
  if t.free_len.(lvl) > t.spill then begin
    let len = t.free_len.(lvl) in
    let keep = len / 2 in
    let kept, donated = split_at keep [] t.free.(lvl) in
    t.free.(lvl) <- kept;
    t.free_len.(lvl) <- keep;
    (* [free_len] is exact, so the donated length is arithmetic — no
       second traversal of the donated half. *)
    count_n t Obs.Event.Pool_spill (len - keep);
    Global_pool.push_batch ?stats:t.stats ~shard:t.shard t.global
      ~level:(lvl + 1) donated
  end

let put_no_spill t i =
  let node = Arena.get t.arena i in
  (match Arena.sanitizer t.arena with
  | None -> ()
  | Some s -> Sanitizer.note_free s i node);
  let lvl = node.Node.level - 1 in
  t.free.(lvl) <- i :: t.free.(lvl);
  t.free_len.(lvl) <- t.free_len.(lvl) + 1;
  lvl

let put t i = maybe_spill t (put_no_spill t i)

(* Land the whole batch first, then spill each touched level at most
   once: re-checking per element made a large batch (a VBR retired-list
   flush) bounce the level across the spill threshold repeatedly. *)
let put_batch t batch =
  let touched = Array.make max_supported_level false in
  List.iter (fun i -> touched.(put_no_spill t i) <- true) batch;
  Array.iteri (fun lvl hit -> if hit then maybe_spill t lvl) touched

(* Clear the free flag before handing a recycled slot out, so a Strict
   sanitizer does not fault the allocator's own Arena.get of it. *)
let note_reuse t i =
  (match Arena.sanitizer t.arena with
  | None -> ()
  | Some s -> Sanitizer.note_reuse s i);
  match t.trace with
  | None -> ()
  | Some r -> Obs.Trace.emit r Obs.Trace.Reuse ~slot:i ~v1:0 ~v2:0 ~epoch:0

let take t ~level =
  let lvl = level - 1 in
  match t.free.(lvl) with
  | i :: rest ->
      t.free.(lvl) <- rest;
      t.free_len.(lvl) <- t.free_len.(lvl) - 1;
      t.recycled <- t.recycled + 1;
      count t Obs.Event.Pool_recycle;
      note_reuse t i;
      i
  | [] -> (
      match
        Global_pool.pop_batch ?stats:t.stats ~shard:t.shard ~probe:(probe t)
          t.global ~level
      with
      | Some (i :: rest) ->
          t.free.(lvl) <- rest;
          t.free_len.(lvl) <- List.length rest;
          t.recycled <- t.recycled + 1;
          count t Obs.Event.Pool_recycle;
          note_reuse t i;
          i
      | Some [] | None -> (
          match Arena.fresh t.arena ~level with
          | i ->
              count t Obs.Event.Arena_fresh;
              i
          | exception Arena.Exhausted ->
              count t Obs.Event.Arena_exhausted;
              raise Arena.Exhausted))

let local_free t = Array.fold_left ( + ) 0 t.free_len
let recycled t = t.recycled
