(* Allocator sanitizer: an opt-in debug layer over the arena/pool pair
   that tracks the free/live state of every slot and turns silent
   reclamation bugs (double-retire, read-after-dealloc) into exceptions.

   One byte per slot records "currently on a free list". The byte is
   written by the freeing thread (Pool.put) and cleared by the reusing
   thread (Pool.take); the two are ordered by the Atomic push/pop of the
   global pool that carries the slot between them, so the flag is
   well-defined wherever the slot itself is. Concurrent double-retires of
   the same slot can race the check — detection is best-effort under
   races and exact in single-threaded tests. *)

type mode =
  | Off
  | Track  (* detect double-retire; sound for every scheme incl. VBR *)
  | Poison  (* Track + scribble on freed keys; guarded schemes only *)
  | Strict  (* Poison + raise on any Arena.get of a freed slot;
               single-threaded tests only *)

exception Violation of string

type t = { mode : mode; free_bits : Bytes.t }

(* A key no test workload uses, far outside every Set_intf bound, so a
   poisoned value that leaks into a comparison changes the outcome. Only
   the key is poisoned: next words must stay well-formed packed values
   because validation-based readers (HP/HE) parse a possibly-stale word
   before discarding it — scribbling there would turn benign stale reads
   into out-of-range crashes. *)
let poison_key = min_int + 0xDEAD

let create mode ~slots =
  if slots < 1 then invalid_arg "Sanitizer.create: slots must be >= 1";
  { mode; free_bits = Bytes.make (slots + 1) '\000' }

let mode t = t.mode
let freed t i = Bytes.get t.free_bits i <> '\000'

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

let note_free t i (n : Node.t) =
  if t.mode <> Off then begin
    if freed t i then
      violation "double retire: slot %d (key %d) is already on a free list" i
        n.Node.key;
    Bytes.set t.free_bits i '\001';
    if t.mode = Poison || t.mode = Strict then n.Node.key <- poison_key
  end

let note_reuse t i =
  if t.mode <> Off then Bytes.set t.free_bits i '\000'

let check_read t i =
  if t.mode = Strict && freed t i then
    violation "read after dealloc: slot %d is on a free list" i
