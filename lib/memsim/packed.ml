type t = int

let index_bits = 24
let version_bits = 38
let index_shift = 1
let version_shift = index_bits + 1
let max_index = (1 lsl index_bits) - 1
let max_version = (1 lsl version_bits) - 1
let index_mask = max_index
let version_mask = max_version

let pack ~marked ~index ~version =
  if index < 0 || index > max_index then
    invalid_arg (Printf.sprintf "Packed.pack: index %d out of range" index);
  if version < 0 || version > max_version then
    invalid_arg (Printf.sprintf "Packed.pack: version %d out of range" version);
  (version lsl version_shift)
  lor (index lsl index_shift)
  lor (if marked then 1 else 0)

(* The traversal-path codec: every pointer hop through a guarded or
   optimistic structure packs a word, so the checked [pack]'s two range
   branches (and their Printf closures) are measurable. Callers whose
   components are range-correct by construction — an index from the
   arena, a version from the epoch — use the branch-free variant.
   [Bool.to_int] is the identity on the runtime representation, so the
   whole expression compiles to three ALU ops. *)
let pack_unchecked ~marked ~index ~version =
  (version lsl version_shift) lor (index lsl index_shift) lor Bool.to_int marked

let index w = (w lsr index_shift) land index_mask
let version w = (w lsr version_shift) land version_mask
let is_marked w = w land 1 = 1
let set_mark w = w lor 1
let clear_mark w = w land lnot 1
let null = 0
let is_null w = index w = 0

let with_version w v =
  if v < 0 || v > max_version then
    invalid_arg (Printf.sprintf "Packed.with_version: version %d out of range" v);
  w land lnot (version_mask lsl version_shift) lor (v lsl version_shift)

let pp ppf w =
  Format.fprintf ppf "<idx=%d, ver=%d%s>" (index w) (version w)
    (if is_marked w then ", marked" else "")
