type stack = Nil | Cons of int list * stack

type t = { stacks : stack Atomic.t array; count : int Atomic.t }

let create ~max_level =
  if max_level < 1 then invalid_arg "Global_pool.create: max_level < 1";
  {
    stacks = Array.init max_level (fun _ -> Atomic.make Nil);
    count = Atomic.make 0;
  }

let stack_for t level =
  if level < 1 || level > Array.length t.stacks then
    invalid_arg (Printf.sprintf "Global_pool: level %d out of range" level);
  t.stacks.(level - 1)

let count stats ev =
  match stats with None -> () | Some s -> Obs.Counters.shard_incr s ev

let push_batch ?stats t ~level batch =
  match batch with
  | [] -> ()
  | _ ->
      let cell = stack_for t level in
      let rec loop () =
        let cur = Access.get cell in
        if not (Access.compare_and_set cell cur (Cons (batch, cur))) then
          loop ()
      in
      loop ();
      Atomic.incr t.count;
      count stats Obs.Event.Global_push

let pop_batch ?stats t ~level =
  let cell = stack_for t level in
  let rec loop () =
    match Access.get cell with
    | Nil -> None
    | Cons (batch, rest) as cur ->
        if Access.compare_and_set cell cur rest then begin
          Atomic.decr t.count;
          count stats Obs.Event.Global_pop;
          Some batch
        end
        else loop ()
  in
  loop ()

let approx_batches t = Atomic.get t.count
