type stack = Nil | Cons of int list * stack

(* Shards break the single-Treiber-stack bottleneck: each domain pushes
   and pops on its own shard (one uncontended CAS in steady state) and
   only crosses shards to steal when its own is empty. Transfers stay
   whole-batch, so even a steal is one CAS for a whole free list, not one
   per slot. Shard heads and the per-shard resident counts are padded to
   cache-line stride — they are the plane's hottest words. *)
let shard_count = 8
let shard_mask = shard_count - 1

type t = {
  shards : stack Atomic.t array array;  (* shard -> level-1 -> head *)
  counts : int Atomic.t array;  (* shard -> resident batches, stats *)
  max_level : int;
}

let create ~max_level =
  if max_level < 1 then invalid_arg "Global_pool.create: max_level < 1";
  {
    shards =
      Array.init shard_count (fun _ ->
          Array.init max_level (fun _ -> Padded.atomic Nil));
    counts = Array.init shard_count (fun _ -> Padded.atomic 0);
    max_level;
  }

let check_level t level =
  if level < 1 || level > t.max_level then
    invalid_arg (Printf.sprintf "Global_pool: level %d out of range" level)

let count stats ev =
  match stats with None -> () | Some s -> Obs.Counters.shard_incr s ev

let push_batch ?stats ?(shard = 0) t ~level batch =
  check_level t level;
  match batch with
  | [] -> ()
  | _ ->
      let s = shard land shard_mask in
      let cell = t.shards.(s).(level - 1) in
      let rec loop () =
        let cur = Access.get cell in
        if not (Access.compare_and_set cell cur (Cons (batch, cur))) then
          loop ()
      in
      loop ();
      Atomic.incr t.counts.(s);
      count stats Obs.Event.Global_push

let try_pop t s lvl =
  let cell = t.shards.(s).(lvl) in
  let rec loop () =
    match Access.get cell with
    | Nil -> None
    | Cons (batch, rest) as cur ->
        if Access.compare_and_set cell cur rest then begin
          Atomic.decr t.counts.(s);
          Some batch
        end
        else loop ()
  in
  loop ()

let pop_batch ?stats ?(shard = 0) ?(probe = 0) t ~level =
  check_level t level;
  let lvl = level - 1 in
  let own = shard land shard_mask in
  match try_pop t own lvl with
  | Some _ as r ->
      count stats Obs.Event.Global_pop;
      r
  | None ->
      (* Steal sweep. The starting victim is displaced by [probe] (the
         caller's per-thread RNG) so simultaneous thieves fan out across
         shards instead of convoying on the same one. *)
      let start = (own + 1 + (probe land max_int)) land shard_mask in
      let rec sweep k =
        if k = shard_count then None
        else
          let v = (start + k) land shard_mask in
          if v = own then sweep (k + 1)
          else
            match try_pop t v lvl with
            | Some _ as r ->
                count stats Obs.Event.Global_pop;
                count stats Obs.Event.Global_steal;
                r
            | None -> sweep (k + 1)
      in
      sweep 0

let approx_batches t =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counts
