(** The instrumentable shared-memory access layer (DESIGN.md §2.11).

    Semantic shared words — node fields, epoch counters, hazard and
    announce slots, structure roots, global pool stacks — are accessed
    through these wrappers rather than raw [Atomic] calls. With no hook
    installed each wrapper is a single match on an immediate [None]
    followed by the underlying atomic operation, so the null path costs
    one predictable branch and benchmark numbers are unaffected.

    [Schedsim.Sched] installs a hook for the duration of a virtual-
    thread run, turning every access into a scheduling decision point.
    The hook is process-global and not synchronised: install it only
    while no other domain is touching instrumented words (the scheduler
    runs all virtual threads on one domain, and the harness never
    installs it during a parallel run). *)

val install : (unit -> unit) -> unit
(** Install the yield hook. @raise Invalid_argument if one is already
    installed (two schedulers cannot share the process). *)

val uninstall : unit -> unit
val installed : unit -> bool

val yield_point : unit -> unit
(** Run the hook if one is installed; otherwise a no-op. Exposed so
    instrumented code can mark a decision point that is not itself an
    atomic access (e.g. a spin-loop body). *)

(** {1 Instrumented atomic operations}

    Each is [yield_point ()] followed by the plain [Atomic] operation.
    The yield happens {e before} the access, so a scheduler observes
    the machine state in which the access is still pending — the same
    convention model checkers use for sequentially consistent
    exploration. *)

val get : 'a Atomic.t -> 'a
val set : 'a Atomic.t -> 'a -> unit
val compare_and_set : 'a Atomic.t -> 'a -> 'a -> bool
val exchange : 'a Atomic.t -> 'a -> 'a
val fetch_and_add : int Atomic.t -> int -> int
val incr : int Atomic.t -> unit
val decr : int Atomic.t -> unit
