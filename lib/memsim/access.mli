(** The instrumentable shared-memory access layer (DESIGN.md §2.11, §2.16).

    Semantic shared words — node fields, epoch counters, hazard and
    announce slots, structure roots, global pool stacks — are accessed
    through these wrappers rather than raw [Atomic] calls. With no hook
    installed anywhere each wrapper is a single load of the installed-hook
    count followed by the underlying atomic operation, so the null path
    costs one predictable branch and benchmark numbers are unaffected.

    [Schedsim.Sched] installs a hook for the duration of a virtual-thread
    run, turning every access into a scheduling decision point. Hooks are
    {e per-domain} (domain-local storage): the model-checking fleet runs
    one virtual scheduler per worker domain, each over its own scenario
    instance, and an access only ever reaches the hook of the domain that
    performs it. Do not share instrumented words between a simulating
    domain and any other domain. *)

type kind = Read | Write | Cas | Exchange | Fetch_add
(** What an instrumented operation does to its word. [Fetch_add] also
    covers [incr]/[decr]; everything except [Read] writes. *)

type op = { kind : kind; word : Obj.t }
(** The identity of a pending access: its kind and the physical word it
    targets ([Obj.repr] of the [Atomic.t]). Compare words with [==] only
    — this is exactly what the DPOR commutativity predicate
    ({!Schedsim.Dpor}) needs, and all a hook may do with it. *)

val install : (op -> unit) -> unit
(** Install the yield hook on the calling domain. The hook runs before
    every instrumented access performed by this domain, receiving the
    access's identity. @raise Invalid_argument if this domain already has
    one (two schedulers cannot share a domain). *)

val uninstall : unit -> unit
(** Remove the calling domain's hook (no-op if none). *)

val installed : unit -> bool
(** Whether the calling domain has a hook installed. *)

val yield_point : unit -> unit
(** Run the hook if one is installed; otherwise a no-op. Exposed so
    instrumented code can mark a decision point that is not itself an
    atomic access (e.g. a spin-loop body). Modelled as a [Read] of a
    dedicated marker word, so it commutes with every real access. *)

(** {1 Instrumented atomic operations}

    Each notifies the domain's hook (if any) and then performs the plain
    [Atomic] operation. The hook runs {e before} the access, so a
    scheduler observes the machine state in which the access is still
    pending — the same convention model checkers use for sequentially
    consistent exploration. *)

val get : 'a Atomic.t -> 'a
val set : 'a Atomic.t -> 'a -> unit
val compare_and_set : 'a Atomic.t -> 'a -> 'a -> bool
val exchange : 'a Atomic.t -> 'a -> 'a
val fetch_and_add : int Atomic.t -> int -> int
val incr : int Atomic.t -> unit
val decr : int Atomic.t -> unit
