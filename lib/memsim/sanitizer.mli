(** Opt-in allocator sanitizer: catches double-retire and
    read-after-dealloc by tracking the free/live state of every slot.

    Attach one to an arena with {!Arena.attach_sanitizer}; {!Pool} then
    reports every free and reuse through it. The modes form a ladder:

    - [Track] only detects double-retire. It never changes what any read
      returns, so it is sound for every scheme — including VBR, whose
      readers legitimately read freed slots until the epoch check
      invalidates them (type preservation, PAPER.md §3).
    - [Poison] additionally scribbles {!poison_key} on the key of every
      freed slot, so a read-after-dealloc that escapes validation changes
      the workload's outcome instead of silently looking plausible. Only
      for GUARDED-backed structures: their allocation path resets the key
      before publication, and their readers never deref an unvalidated
      slot. Unsound for VBR by design.
    - [Strict] additionally makes {!Arena.get} of a freed slot raise.
      Only for single-threaded allocator tests: any concurrent structure
      traverses freed slots benignly.

    Detection is exact in single-threaded tests; under races,
    double-retire detection is best-effort (the flag itself is ordered by
    the pool hand-off that moves the slot between threads). *)

type mode =
  | Off
  | Track
  | Poison
  | Strict

type t

exception Violation of string
(** Raised on a detected discipline violation; the message names the slot
    and the violation kind. *)

val create : mode -> slots:int -> t
(** [create mode ~slots] tracks slots [0 .. slots]. Usually called through
    {!Arena.attach_sanitizer}, which sizes it from the arena.
    @raise Invalid_argument if [slots < 1]. *)

val mode : t -> mode

val poison_key : int
(** The sentinel written to freed keys in [Poison]/[Strict] mode. *)

val freed : t -> int -> bool
(** [freed t i] is true while slot [i] sits on a free list (tests). *)

val note_free : t -> int -> Node.t -> unit
(** Called by {!Pool} when a slot lands on a free list.
    @raise Violation if the slot is already free (double retire). *)

val note_reuse : t -> int -> unit
(** Called by {!Pool} when a free-list slot is handed back out. *)

val check_read : t -> int -> unit
(** Called by {!Arena.get}.
    @raise Violation in [Strict] mode when the slot is free. *)
