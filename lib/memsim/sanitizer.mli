(** Opt-in allocator sanitizer: catches double-retire and
    read-after-dealloc by tracking the free/live state of every slot.

    Attach one to an arena with {!Arena.attach_sanitizer}; {!Pool} then
    reports every free and reuse through it. The modes form a ladder:

    - [Track] only detects double-retire. It never changes what any read
      returns, so it is sound for every scheme — including VBR, whose
      readers legitimately read freed slots until the epoch check
      invalidates them (type preservation, PAPER.md §3).
    - [Poison] additionally scribbles {!poison_key} on the key of every
      freed slot, so a read-after-dealloc that escapes validation changes
      the workload's outcome instead of silently looking plausible. Only
      for GUARDED-backed structures: their allocation path resets the key
      before publication, and their readers never deref an unvalidated
      slot. Unsound for VBR by design.
    - [Strict] additionally makes {!Arena.get} of a freed slot raise.
      Reads that legitimately tolerate freed slots — VBR's epoch-
      validated plane, retired-list walks — go through
      {!Arena.get_speculative} and are exempt, so Strict checks exactly
      the reads each scheme claims are safe. Sound for every scheme in
      single-threaded or virtually-scheduled runs ([Schedsim.Sched],
      where the whole execution interleaves on one domain and the free
      flag is exact at every decision point); under real parallelism the
      flag can be stale and Strict may report false positives.

    Detection is exact in single-threaded and virtually-scheduled tests;
    under races, double-retire detection is best-effort (the flag itself
    is ordered by the pool hand-off that moves the slot between
    threads). *)

type mode =
  | Off
  | Track
  | Poison
  | Strict

type t

exception Violation of string
(** Raised on a detected discipline violation; the message names the slot
    and the violation kind. *)

val create : mode -> slots:int -> t
(** [create mode ~slots] tracks slots [0 .. slots]. Usually called through
    {!Arena.attach_sanitizer}, which sizes it from the arena.
    @raise Invalid_argument if [slots < 1]. *)

val mode : t -> mode

val poison_key : int
(** The sentinel written to freed keys in [Poison]/[Strict] mode. *)

val freed : t -> int -> bool
(** [freed t i] is true while slot [i] sits on a free list (tests). *)

val note_free : t -> int -> Node.t -> unit
(** Called by {!Pool} when a slot lands on a free list.
    @raise Violation if the slot is already free (double retire). *)

val note_reuse : t -> int -> unit
(** Called by {!Pool} when a free-list slot is handed back out. *)

val check_read : t -> int -> unit
(** Called by {!Arena.get}.
    @raise Violation in [Strict] mode when the slot is free. *)
