(** The shared pool of recycled slots (§4.1: "a shared pool of nodes, from
    which they can be re-allocated by any thread").

    A lock-free Treiber stack of slot-index batches, one stack per node
    size class (tower level), so re-allocation is always type-preserving.

    IMPORTANT: the pool's bookkeeping lives entirely in ordinary (GC'd)
    OCaml cells, never inside the simulated node fields. VBR readers may
    legitimately traverse a retired node's [next] words until the epoch
    moves on, so pooled nodes must keep their contents intact. Using GC'd
    cons cells also makes the stack's CAS immune to internal ABA (a cell
    cannot be recycled while a racing thread still references it). *)

type t

val create : max_level:int -> t
(** A pool accepting slots of tower levels [1 .. max_level]. *)

val push_batch : ?stats:Obs.Counters.shard -> t -> level:int -> int list -> unit
(** Donate a non-empty batch of recycled slots, all of tower [level].
    No-op on the empty list. Lock-free. [stats] (the calling thread's
    shard) counts one [Global_push]. *)

val pop_batch : ?stats:Obs.Counters.shard -> t -> level:int -> int list option
(** Take one whole batch of slots of tower [level], if any. Lock-free.
    [stats] counts one [Global_pop] on success. *)

val approx_batches : t -> int
(** Approximate number of batches currently held (all levels); racy, for
    stats only. *)
