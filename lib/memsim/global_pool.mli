(** The shared pool of recycled slots (§4.1: "a shared pool of nodes, from
    which they can be re-allocated by any thread").

    Sharded to keep the common case contention-free: {!shard_count}
    independent lock-free Treiber stacks of slot-index batches per node
    size class (tower level). A thread pushes to and pops from its own
    shard (one CAS on a line nobody else touches in steady state) and
    falls over to a randomized steal sweep of the other shards only when
    its own runs dry. Batches move whole, so a miss costs one CAS for a
    whole free list — not one per slot. Shard heads and the per-shard
    batch counts are cache-line padded ({!Padded}).

    IMPORTANT: the pool's bookkeeping lives entirely in ordinary (GC'd)
    OCaml cells, never inside the simulated node fields. VBR readers may
    legitimately traverse a retired node's [next] words until the epoch
    moves on, so pooled nodes must keep their contents intact. Using GC'd
    cons cells also makes the stack's CAS immune to internal ABA (a cell
    cannot be recycled while a racing thread still references it). *)

type t

val shard_count : int
(** Number of shards (a power of two; shard arguments are taken
    mod [shard_count], so any thread id is a valid shard). *)

val create : max_level:int -> t
(** A pool accepting slots of tower levels [1 .. max_level]. *)

val push_batch :
  ?stats:Obs.Counters.shard -> ?shard:int -> t -> level:int -> int list -> unit
(** Donate a non-empty batch of recycled slots, all of tower [level], to
    [shard] (default 0; callers pass their thread id). No-op on the
    empty list. Lock-free. [stats] (the calling thread's shard) counts
    one [Global_push]. *)

val pop_batch :
  ?stats:Obs.Counters.shard ->
  ?shard:int ->
  ?probe:int ->
  t ->
  level:int ->
  int list option
(** Take one whole batch of slots of tower [level]: from [shard]
    (default 0) if it has one, else by sweeping the other shards
    starting at a victim displaced by [probe] (pass a nonnegative
    per-thread random draw so concurrent thieves fan out; default 0).
    Lock-free. [stats] counts one [Global_pop] on success, plus a
    [Global_steal] when the batch came from a foreign shard. *)

val approx_batches : t -> int
(** Approximate number of batches currently held (all shards, all
    levels); racy, for stats only. *)
