(** The simulated heap: a bounded, slot-indexed, type-preserving arena.

    This stands in for the paper's pre-allocated object pools (§5.1): a
    "pointer" is a slot index in [1 .. capacity]; slot 0 is reserved as
    NULL. Fresh slots are handed out by a lock-free bump counter; recycled
    slots circulate through {!Pool} without the arena's involvement — the
    arena itself never frees anything, matching the paper ("retired nodes
    are not returned to the operating system").

    Chunked storage keeps creation O(1): the node records of a chunk are
    materialised the first time any slot in the chunk is claimed. Node
    records are published before their index can leak to another domain
    (the claiming domain stores the record, then shares the index only via
    an [Atomic] operation, which orders the two). *)

type t

exception Exhausted
(** Raised by {!fresh} when the arena capacity (or the 24-bit index space)
    is used up. Benchmarks size arenas so that only a buggy configuration
    can hit this. *)

val create : capacity:int -> t
(** [create ~capacity] makes an arena with [capacity] usable slots.
    @raise Invalid_argument if [capacity < 1] or
    [capacity > Packed.max_index]. *)

val capacity : t -> int
(** Number of usable slots. *)

val attach_sanitizer : t -> Sanitizer.mode -> Sanitizer.t
(** Enable the debug {!Sanitizer} on this arena (see its docs for the
    mode ladder and which modes are sound for which scheme). Attach
    before any thread allocates; the returned handle is also available
    through {!sanitizer}. *)

val sanitizer : t -> Sanitizer.t option
(** The attached sanitizer, if any. {!Pool} routes free/reuse events
    through it; {!get} consults it in [Strict] mode. *)

val fresh : t -> level:int -> int
(** Claim a never-used slot and create its node with the given tower
    height. Lock-free (one [Atomic.fetch_and_add]).
    @raise Exhausted when no fresh slot remains.
    @raise Invalid_argument if [level < 1]. *)

val allocated : t -> int
(** Number of fresh slots claimed so far (never decreases; recycling does
    not return slots to the arena). *)

val get : t -> int -> Node.t
(** [get t i] is the node in slot [i]. The caller must only pass indices
    previously returned by {!fresh} (possibly obtained staleley through a
    data-structure pointer — that is the point of the simulation).
    @raise Invalid_argument on slot 0 or an out-of-range index.
    @raise Sanitizer.Violation in [Strict] mode when slot [i] is on a
    free list — so claimed-safe derefs must go through this entry. *)

val get_speculative : t -> int -> Node.t
(** Like {!get} but never consults the sanitizer: the read entry for
    accesses that are {e validated after the fact} (VBR's epoch-checked
    reads, a scheme's own retired-list walks over possibly-recycled
    slots). Using it declares "this read tolerates a freed slot", which
    is exactly what lets {!Sanitizer.mode} [Strict] run under the
    deterministic scheduler for every scheme, VBR included.
    @raise Invalid_argument on slot 0 or an out-of-range index. *)
