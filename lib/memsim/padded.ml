(* Cache-line padding for the plane's hot atomics.

   OCaml gives no layout control, so the only portable way to keep two
   hot words off the same cache line is to make the *block holding them*
   span a whole line: re-allocate the value into a block of the same tag
   with trailing padding words, so the allocator can never pack another
   hot block into the same line behind it. This is the multicore-magic
   [copy_as_padded] idiom. [Obj.new_block] initialises every field (to
   unit), so the padding words are always valid OCaml values and the GC
   scans them harmlessly.

   Only ordinary boxed blocks (tag < [Obj.no_scan_tag], excluding
   closures/objects/lazies, whose headers carry extra structure) are
   copied; anything else is returned unchanged, so the function is total.
   [Atomic.t] is a one-field tag-0 block on every OCaml 5.x we target,
   which is exactly the shape this handles. *)

(* One x86/arm cache line is 64 B; padding to two lines (16 words on a
   64-bit system) also defeats adjacent-line prefetcher ping-pong, which
   is what multicore-magic pads to as well. *)
let pad_to_words = 16

let copy_as_padded (v : 'a) : 'a =
  let r = Obj.repr v in
  if
    Obj.is_block r
    && Obj.tag r < Obj.no_scan_tag
    && Obj.tag r <> Obj.closure_tag
    && Obj.tag r <> Obj.object_tag
    && Obj.tag r <> Obj.lazy_tag
    && Obj.tag r <> Obj.forward_tag
    && Obj.size r < pad_to_words
  then begin
    let n = Obj.size r in
    let p = Obj.new_block (Obj.tag r) pad_to_words in
    for i = 0 to n - 1 do
      Obj.set_field p i (Obj.field r i)
    done;
    Obj.obj p
  end
  else v

let atomic v = copy_as_padded (Atomic.make v)
let atomic_array n v = Array.init n (fun _ -> atomic v)
let cell (a : 'a Atomic.t) = a
