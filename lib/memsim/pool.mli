(** Per-thread allocation pool (§4.1).

    Each thread owns one [Pool.t]: a set of per-level free lists of slots
    ready for re-allocation. A thread allocates from its own pool first,
    falls back to the {!Global_pool}, and only then claims a fresh arena
    slot. When a level's local free list grows past [spill], half of it is
    donated to the global pool so recycled slots redistribute across
    threads.

    Not thread-safe: every function must be called by the owning thread
    only (that is the point — the fast path is synchronisation-free). *)

type t

val create :
  ?stats:Obs.Counters.shard ->
  ?shard:int ->
  Arena.t ->
  Global_pool.t ->
  spill:int ->
  t
(** [create arena global ~spill] makes an empty pool. [spill] is the local
    free-list length that triggers donating half a list to [global].
    [shard] (default 0) is the {!Global_pool} shard this pool donates to
    and allocates from first — pass the owning thread's id so each
    domain's global traffic stays on its own shard. [stats], when given,
    receives allocator events ([Pool_recycle], [Pool_spill],
    [Arena_fresh], [Arena_exhausted], and — via the calls this pool makes
    into [global] — [Global_push]/[Global_pop]/[Global_steal]); it should
    be the owning thread's shard.
    @raise Invalid_argument if [spill < 2]. *)

val set_trace : t -> Obs.Trace.ring -> unit
(** Attach the owning thread's lifecycle-trace ring: [take] then emits a
    [Reuse] event whenever it serves a recycled (local or global) slot.
    Tracing stays off — every hook a no-op — until this is called. *)

val put : t -> int -> unit
(** Return one reusable slot (classified by its node's tower level). *)

val put_batch : t -> int list -> unit
(** Return a batch of reusable slots (of possibly mixed levels). The
    spill check runs at most once per touched level, after the whole
    batch has landed — not per element as repeated {!put} would. *)

val take : t -> level:int -> int
(** Obtain a slot whose node has tower height exactly [level]: local pool,
    then global pool, then a fresh arena slot.
    @raise Arena.Exhausted if all three sources are empty. *)

val local_free : t -> int
(** Total slots currently in this pool's local free lists (stats). *)

val recycled : t -> int
(** How many [take]s were served from a pool (local or global) rather than
    by a fresh arena slot (stats). *)
