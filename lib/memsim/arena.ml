type t = {
  capacity : int;
  chunk_bits : int;
  chunk_mask : int;
  chunks : Node.t array Atomic.t array;
  next_fresh : int Atomic.t;
  mutable sanitizer : Sanitizer.t option;
}

exception Exhausted

let chunk_bits = 14 (* 16K nodes per chunk *)
let no_chunk : Node.t array = [||]

let create ~capacity =
  if capacity < 1 || capacity > Packed.max_index then
    invalid_arg (Printf.sprintf "Arena.create: capacity %d out of range" capacity);
  let slots = capacity + 1 (* slot 0 is NULL *) in
  let n_chunks = (slots + (1 lsl chunk_bits) - 1) lsr chunk_bits in
  {
    capacity;
    chunk_bits;
    chunk_mask = (1 lsl chunk_bits) - 1;
    chunks = Array.init n_chunks (fun _ -> Atomic.make no_chunk);
    next_fresh = Atomic.make 1;
    sanitizer = None;
  }

let capacity t = t.capacity

let attach_sanitizer t mode =
  let s = Sanitizer.create mode ~slots:t.capacity in
  t.sanitizer <- Some s;
  s

let sanitizer t = t.sanitizer

(* The dummy padding node shared by all chunk cells until their slot is
   claimed. It is never reachable through any data-structure pointer. *)
let dummy = lazy (Node.make ~level:1)

let ensure_chunk t ci =
  let cell = t.chunks.(ci) in
  let cur = Atomic.get cell in
  if cur != no_chunk then cur
  else begin
    let fresh_chunk = Array.make (1 lsl t.chunk_bits) (Lazy.force dummy) in
    if Atomic.compare_and_set cell no_chunk fresh_chunk then fresh_chunk
    else Atomic.get cell
  end

let fresh t ~level =
  let i = Atomic.fetch_and_add t.next_fresh 1 in
  if i > t.capacity then raise Exhausted;
  let chunk = ensure_chunk t (i lsr t.chunk_bits) in
  let node = Node.make ~level in
  chunk.(i land ((1 lsl t.chunk_bits) - 1)) <- node;
  i

(* The bump counter advances even on attempts that raise [Exhausted], so
   clamp to the capacity. *)
let allocated t = min (Atomic.get t.next_fresh - 1) t.capacity

(* The two array indexings below run on every single node dereference of
   every scheme, so once the one explicit bounds check has proved
   [1 <= i <= capacity] — which caps both the chunk index and the
   in-chunk offset by construction — the redundant per-array bounds
   checks are skipped. *)
let get t i =
  if i < 1 || i > t.capacity then
    invalid_arg (Printf.sprintf "Arena.get: slot %d out of range" i);
  (match t.sanitizer with None -> () | Some s -> Sanitizer.check_read s i);
  let chunk = Atomic.get (Array.unsafe_get t.chunks (i lsr t.chunk_bits)) in
  if chunk == no_chunk then
    invalid_arg (Printf.sprintf "Arena.get: slot %d not yet allocated" i);
  Array.unsafe_get chunk (i land t.chunk_mask)

(* The optimistic plane's read path: VBR readers dereference freed slots
   legitimately (the epoch check after the read is what rejects the
   value), so a Strict sanitizer must not fault them. Everything else —
   bounds, chunk resolution — is [get]. *)
let get_speculative t i =
  if i < 1 || i > t.capacity then
    invalid_arg (Printf.sprintf "Arena.get: slot %d out of range" i);
  let chunk = Atomic.get (Array.unsafe_get t.chunks (i lsr t.chunk_bits)) in
  if chunk == no_chunk then
    invalid_arg (Printf.sprintf "Arena.get: slot %d not yet allocated" i);
  Array.unsafe_get chunk (i land t.chunk_mask)
