(** Packed shared-memory words: the WCAS substitute.

    The paper stores a mutable pointer field and its version in two adjacent
    machine words and updates them together with a double-word CAS (WCAS).
    OCaml has no WCAS, but its native [int] is 63 bits wide, so we pack both
    halves into a single word and use the ordinary single-word
    [Atomic.compare_and_set], which is semantically identical (both halves
    change together or not at all) and equally lock-free.

    Layout (least significant bit first):

    {v
      bit  0        : deletion mark (Harris-style marked pointer)
      bits 1  .. 24 : slot index into the arena (the "pointer"); 0 = NULL
      bits 25 .. 62 : version (an epoch value; 38 bits)
    v}

    All functions are pure and total. Values with out-of-range components
    are rejected by [pack] with [Invalid_argument]. *)

type t = int
(** A packed word. May be negative when the top version bit is set; only
    bit-level operations and equality are ever applied to it. *)

val index_bits : int
(** Number of bits reserved for the slot index (24). *)

val version_bits : int
(** Number of bits reserved for the version (38). *)

val max_index : int
(** Largest representable slot index, [2^24 - 1]. *)

val max_version : int
(** Largest representable version, [2^38 - 1]. *)

val pack : marked:bool -> index:int -> version:int -> t
(** [pack ~marked ~index ~version] assembles a word.
    @raise Invalid_argument if [index] or [version] is out of range. *)

val pack_unchecked : marked:bool -> index:int -> version:int -> t
(** Branch-free [pack] with no range validation, for hot paths whose
    components are in range by construction (an index handed out by the
    arena, a version read from the epoch). Out-of-range components
    silently corrupt neighbouring fields — callers own the proof.
    Equal to [pack] on every in-range input (see [test_packed]). *)

val index : t -> int
(** Slot-index component. *)

val version : t -> int
(** Version component. *)

val is_marked : t -> bool
(** Whether the deletion mark bit is set. *)

val set_mark : t -> t
(** Same word with the mark bit set. *)

val clear_mark : t -> t
(** Same word with the mark bit cleared. *)

val null : t
(** The NULL pointer: index 0, version 0, unmarked. Equal to [0]. *)

val is_null : t -> bool
(** Whether the index component is the reserved NULL slot (0). The mark and
    version components are ignored. *)

val with_version : t -> int -> t
(** [with_version w v] replaces the version component of [w] by [v].
    @raise Invalid_argument if [v] is out of range. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: [<idx=…, ver=…, marked>]. *)
