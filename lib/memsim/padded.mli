(** Cache-line padding for hot atomics.

    The memory plane's contended words — epoch cells, global-pool shard
    heads, per-thread announcement slots — are one-word blocks that the
    minor allocator would otherwise pack shoulder to shoulder, so every
    CAS on one invalidates the line under its neighbours (false
    sharing). [copy_as_padded] re-allocates a value into a block padded
    to {!pad_to_words} words (two 64-byte cache lines), giving each hot
    word a line of its own.

    Padded values are ordinary values: a padded [Atomic.t] is still an
    [Atomic.t] and every [Atomic] operation works on it unchanged. The
    lint's raw-atomic rule recognises accesses routed through {!cell}
    (see DESIGN §2.13) so optimistic-scope code can touch padded
    bookkeeping atomics without a [\@vbr.allow] annotation. *)

val pad_to_words : int
(** Padded block size, in words (16 = two 64-byte cache lines). *)

val copy_as_padded : 'a -> 'a
(** [copy_as_padded v] returns a copy of [v] whose heap block is padded
    to {!pad_to_words} words. Total: values that are immediates, already
    at least {!pad_to_words} words, or of a special tag (closures,
    objects, lazies, floats/strings) are returned unchanged. The copy is
    shallow — fields still point at the originals. Copy {e before}
    publishing a value; aliases to the unpadded original defeat the
    point. *)

val atomic : 'a -> 'a Atomic.t
(** [atomic v] is [copy_as_padded (Atomic.make v)]: a fresh atomic on
    its own cache line. *)

val atomic_array : int -> 'a -> 'a Atomic.t array
(** [atomic_array n v] is an array of [n] {e independently padded}
    atomics each holding [v] — the shape for per-thread announcement
    slots, where neighbouring threads' slots must not share a line.
    (A plain [Array.init n (fun _ -> Atomic.make v)] packs all [n]
    one-word cells into [n+1] consecutive words.) *)

val cell : 'a Atomic.t -> 'a Atomic.t
(** Identity, as an annotation: marks an atomic access as touching
    padded plane bookkeeping (not a simulated node word). vbr-lint's
    raw-atomic rule exempts [Atomic.get (Padded.cell c)] and friends in
    optimistic scope. *)
