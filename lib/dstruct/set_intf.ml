(** The concurrent integer-set interface shared by every data structure ×
    reclamation-scheme combination in this repository, mirroring the
    paper's benchmark API (§5.1: Insert / Delete / Search).

    Keys must lie strictly between [min_key_bound] and [max_key_bound]
    (the head/tail sentinel keys). [tid] identifies the calling thread; a
    thread id must be used by at most one domain at a time. *)

let min_key_bound = min_int
let max_key_bound = max_int

module type SET = sig
  type t

  val name : string
  (** "<structure>/<scheme>", e.g. "list/VBR". *)

  val insert : t -> tid:int -> int -> bool
  (** Add the key; [false] if already present. Lock-free, linearizable. *)

  val delete : t -> tid:int -> int -> bool
  (** Remove the key; [false] if absent. Lock-free, linearizable. *)

  val contains : t -> tid:int -> int -> bool
  (** Membership test. Lock-free, linearizable. *)

  val size : t -> int
  (** Number of unmarked reachable keys. Quiescent use only (tests). *)

  val to_list : t -> int list
  (** Unmarked reachable keys in traversal order. Quiescent use only. *)
end

(** The FIFO-queue interface of the extension structures ({!Ms_queue},
    {!Vbr_queue}). Values are plain ints (the benchmark's key domain). *)
module type QUEUE = sig
  type t

  val name : string
  (** "queue/<scheme>". *)

  val enqueue : t -> tid:int -> int -> unit
  (** Add a value at the tail. Lock-free, linearizable. *)

  val dequeue : t -> tid:int -> int option
  (** Remove the value at the head, or [None] when empty. Lock-free,
      linearizable. *)

  val is_empty : t -> tid:int -> bool

  val length : t -> int
  (** Quiescent use only (tests). *)

  val to_list : t -> int list
  (** Front-to-back values. Quiescent use only (tests). *)
end

(** The LIFO-stack interface of the extension structures
    ({!Treiber_stack}, {!Vbr_stack}). *)
module type STACK = sig
  type t

  val name : string
  (** "stack/<scheme>". *)

  val push : t -> tid:int -> int -> unit
  (** Add a value at the top. Lock-free, linearizable. *)

  val pop : t -> tid:int -> int option
  (** Remove the value at the top, or [None] when empty. Lock-free,
      linearizable. *)

  val is_empty : t -> tid:int -> bool

  val length : t -> int
  (** Quiescent use only (tests). *)

  val to_list : t -> int list
  (** Top-to-bottom values. Quiescent use only (tests). *)
end
