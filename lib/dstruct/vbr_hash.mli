(** The optimistic-reclamation hash table: fixed bucket array of
    {!Vbr_list} buckets sharing one tail sentinel and one backend
    instance (§5, load factor 1). *)

module Make (V : Reclaim.Smr_intf.OPTIMISTIC) : sig
  type t

  val create : V.t -> buckets:int -> t
  (** @raise Invalid_argument if [buckets < 1]. *)

  include Set_intf.SET with type t := t
end

include module type of Make (Vbr_core.Vbr)
(** The canonical instantiation over {!Vbr_core.Vbr} ("hash/VBR"). *)
