module Make (V : Reclaim.Smr_intf.OPTIMISTIC) = struct
  module P = Memsim.Packed

  let max_level = Skiplist.max_level

  exception Restart

  type t = {
    vbr : V.t;
    head : int;
    head_b : int;
    tail : int;
    tail_b : int;
    rngs : int array;  (* per-thread xorshift state for tower heights *)
  }

  let name = "skiplist/" ^ V.name

  let create vbr =
    let c = V.ctx vbr ~tid:0 in
    V.checkpoint c (fun () ->
        let tail, tail_b = V.alloc vbr ~tid:0 ~level:max_level ~key:Set_intf.max_key_bound in
        let head, head_b = V.alloc vbr ~tid:0 ~level:max_level ~key:Set_intf.min_key_bound in
        for l = 0 to max_level - 1 do
          let ok =
            V.update c ~lvl:l head ~birth:head_b ~expected:0
              ~expected_birth:head_b ~new_:tail ~new_birth:tail_b
          in
          assert ok
        done;
        (* Commit both sentinels only once the tower is wired: a rollback
           anywhere above recycles them and re-runs the thunk, instead of
           leaking a committed-but-unreachable tail. *)
        V.commit_alloc c tail;
        V.commit_alloc c head;
        {
          vbr;
          head;
          head_b;
          tail;
          tail_b;
          rngs = Array.init 1024 (fun i -> (i * 0x9E3779B9) lor 1);
        })

  let random_level t ~tid =
    let x = t.rngs.(tid) in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = (x lxor (x lsl 17)) land max_int in
    t.rngs.(tid) <- x;
    let rec count lvl bits =
      if lvl >= max_level || bits land 1 = 0 then lvl else count (lvl + 1) (bits lsr 1)
    in
    count 1 x

  (* The find traversal: latches (pred, succ) with their birth epochs at
     every level, snipping marked nodes one at a time with versioned
     updates. Failed snips restart the traversal; stale reads raise
     [V.Rollback], which propagates to the operation's checkpoint. *)
  let rec find t c key preds preds_b succs succs_b =
    match find_attempt t c key preds preds_b succs succs_b with
    | found -> found
    | exception Restart -> find t c key preds preds_b succs succs_b

  and find_attempt t c key preds preds_b succs succs_b =
    let found = ref false in
    let pred = ref t.head and pred_b = ref t.head_b in
    for l = max_level - 1 downto 0 do
      let w = V.get_next_packed c ~lvl:l !pred in
      let curr = ref (P.index w) and curr_b = ref (P.version w) in
      let at_level = ref true in
      while !at_level do
        if V.is_marked c ~lvl:l !curr ~birth:!curr_b then begin
          (* Snip the marked node from this level (rollback-safe). *)
          let sw = V.get_next_packed c ~lvl:l !curr in
          let succ = P.index sw and succ_b = P.version sw in
          if
            V.update c ~lvl:l !pred ~birth:!pred_b ~expected:!curr
              ~expected_birth:!curr_b ~new_:succ ~new_birth:succ_b
          then begin
            curr := succ;
            curr_b := succ_b
          end
          else begin
            (* A failed snip may be hitting a garbage edge that no versioned
               CAS can remove (inserter/remover race, DESIGN.md §5): heal it
               by truncating this level towards the tail, then restart. *)
            if l > 0 then
              ignore
                (V.heal_stale_edge c ~lvl:l !pred ~birth:!pred_b ~to_:t.tail
                   ~to_birth:t.tail_b);
            raise Restart
          end
        end
        else begin
          let k = V.get_key c !curr in
          if k < key then begin
            pred := !curr;
            pred_b := !curr_b;
            let sw = V.get_next_packed c ~lvl:l !curr in
            curr := P.index sw;
            curr_b := P.version sw
          end
          else begin
            preds.(l) <- !pred;
            preds_b.(l) <- !pred_b;
            succs.(l) <- !curr;
            succs_b.(l) <- !curr_b;
            if l = 0 then found := k = key;
            at_level := false
          end
        end
      done
    done;
    !found
  [@@vbr.allow "checkpoint-scope"]

  let rec insert t ~tid key =
    let c = V.ctx t.vbr ~tid in
    let preds = Array.make max_level 0 and succs = Array.make max_level 0 in
    let preds_b = Array.make max_level 0 and succs_b = Array.make max_level 0 in
    V.checkpoint c (fun () ->
        let rec attempt () =
          if find t c key preds preds_b succs succs_b then false
          else begin
            let lvl = random_level t ~tid in
            let n, n_b = V.alloc t.vbr ~tid ~level:lvl ~key in
            for l = 0 to lvl - 1 do
              (* Private initialisation towards the latched successors. *)
              let ok =
                V.update c ~lvl:l n ~birth:n_b ~expected:0 ~expected_birth:n_b
                  ~new_:succs.(l) ~new_birth:succs_b.(l)
              in
              assert ok
            done;
            if
              V.update c ~lvl:0
                preds.(0)
                ~birth:preds_b.(0) ~expected:succs.(0) ~expected_birth:succs_b.(0)
                ~new_:n ~new_birth:n_b
            then begin
              (* Linearized. Upper-level linking is rollback-safe and runs
                 under its own checkpoint (Figure 4's post-CAS checkpoint). *)
              V.commit_alloc c n;
              V.checkpoint c (fun () -> link_upper t c key n n_b lvl 1 preds preds_b succs succs_b);
              true
            end
            else begin
              V.retire t.vbr ~tid (n, n_b);
              attempt ()
            end
          end
        in
        attempt ())

  and link_upper t c key n n_b lvl l preds preds_b succs succs_b =
    if l >= lvl then begin
      (* Fraser amendment: if the node was marked while we were linking,
         unlink it from every level before returning. *)
      if V.is_marked c ~lvl:0 n ~birth:n_b then
        ignore (find t c key preds preds_b succs succs_b)
    end
    else if succs.(l) = n && succs_b.(l) = n_b then
      (* A refresh found n already linked at this level. *)
      link_upper t c key n n_b lvl (l + 1) preds preds_b succs succs_b
    else begin
      (* Reading n's level-l word validates the epoch and exposes the mark;
         the index/version it holds may be stale (see below). *)
      let nw_marked = P.is_marked (V.get_next_packed c ~lvl:l n) in
      if nw_marked || V.is_marked c ~lvl:0 n ~birth:n_b then
        (* n is being removed: help the unlink and stop. *)
        ignore (find t c key preds preds_b succs succs_b)
      else begin
        (* Unconditionally re-aim n's forward pointer at the *currently
           latched* (succ, birth) pair, raw-expected. This both follows
           refreshed succs and repairs a version-stale word: if the
           previously aimed successor was recycled and the refreshed find
           latched the same slot again, the stored version (computed from
           the old birth) would make every future versioned snip of this
           edge fail forever — a livelock our stress tests caught. *)
        if
          not
            (V.refresh_next c ~lvl:l n ~birth:n_b ~new_:succs.(l)
               ~new_birth:succs_b.(l))
        then
          (* Marked or recycled meanwhile: help and stop. *)
          ignore (find t c key preds preds_b succs succs_b)
        else begin
          (* The upper-level link is the one CAS whose success does not
             certify its NEW value: the expected word pins pred -> succ, but
             n has no in-edge at this level yet, so n may have been retired
             and even recycled in the window since we last validated it
             (every other CAS in this repository installs a new value whose
             reachability the expected chain certifies — see DESIGN.md).
             Defence in depth: a cheap pre-check shrinks the window, and a
             post-CAS certification repairs the rare escape: if n's birth is
             unchanged and its retire epoch is still ⊥ *after* the install,
             then n was unretired at install time and the edge is sound;
             otherwise we unlink the garbage edge, truncating this level at
             pred towards the tail sentinel (upper levels are navigation
             hints, so truncation is performance-only). Without the repair,
             a stale edge can form a cycle at an upper level, and once every
             thread spins in it the epoch freezes and rollbacks stop
             firing. *)
          if V.read_birth t.vbr n <> n_b then ()
          else begin
            V.validate_epoch c;
            if
              V.update c ~lvl:l
                preds.(l)
                ~birth:preds_b.(l) ~expected:succs.(l)
                ~expected_birth:succs_b.(l) ~new_:n ~new_birth:n_b
            then begin
              (* Certification needs all three: birth unchanged and retire
                 still ⊥ pin n as unretired at install time; *unmarked at
                 this level* guarantees the remover's mark — which precedes
                 its unlinking find — comes after our install, so that find
                 will see and snip this edge before n is retired. An edge
                 kept without the mark check can be missed by a find that
                 ran before the install, letting n be retired while still
                 linked here — the recycled slot then leaves behind a
                 garbage edge. *)
              if
                V.read_birth t.vbr n = n_b
                && V.read_retire t.vbr n = Memsim.Node.no_epoch
                && not (V.is_marked c ~lvl:l n ~birth:n_b)
              then link_upper t c key n n_b lvl (l + 1) preds preds_b succs succs_b
              else
                (* We linked a retired (possibly recycled) slot: undo this
                   one edge. If the undo CAS fails, someone else already
                   changed the edge, which is just as good. *)
                ignore
                  (V.update c ~lvl:l
                     preds.(l)
                     ~birth:preds_b.(l) ~expected:n ~expected_birth:n_b
                     ~new_:t.tail ~new_birth:t.tail_b)
            end
            else begin
              (* Stale preds/succs at this level: recompute and retry. *)
              ignore (find t c key preds preds_b succs succs_b);
              if V.is_marked c ~lvl:0 n ~birth:n_b then ()
              else link_upper t c key n n_b lvl l preds preds_b succs succs_b
            end
          end
        end
      end
    end
  [@@vbr.allow "checkpoint-scope"]

  let delete t ~tid key =
    let c = V.ctx t.vbr ~tid in
    let preds = Array.make max_level 0 and succs = Array.make max_level 0 in
    let preds_b = Array.make max_level 0 and succs_b = Array.make max_level 0 in
    V.checkpoint c (fun () ->
        if not (find t c key preds preds_b succs succs_b) then false
        else begin
          let victim = succs.(0) and victim_b = succs_b.(0) in
          let vlvl = V.read_level t.vbr victim in
          (* Mark upper levels top-down (idempotent across removers,
             rollback-safe). *)
          for l = vlvl - 1 downto 1 do
            let rec mark_level () =
              if not (V.is_marked c ~lvl:l victim ~birth:victim_b) then
                if not (V.mark c ~lvl:l victim ~birth:victim_b) then
                  mark_level ()
            in
            mark_level ()
          done;
          (* Bottom-level mark: the winner is the logical remover and owns
             the retirement (after a full unlinking find). *)
          let rec mark_bottom () =
            if V.is_marked c ~lvl:0 victim ~birth:victim_b then false
            else if V.mark c ~lvl:0 victim ~birth:victim_b then begin
              V.checkpoint c (fun () ->
                  ignore (find t c key preds preds_b succs succs_b);
                  V.retire t.vbr ~tid (victim, victim_b));
              true
            end
            else mark_bottom ()
          in
          mark_bottom ()
        end)

  (* Read-only traversal in the spirit of Figure 6: skip logically deleted
     nodes without trimming; the first unmarked node with key >= target
     decides membership. Like the list's [contains], the hop primitive is
     [get_next_raw] — the stored word's index and mark bit are all a
     reader needs — and the loops are module-level recursions threading
     scalar state, so the whole scan is allocation-free (the old version
     paid a closure plus six [ref] cells per call). The packed mark bit
     replaces [is_marked]'s birth check: a recycled node implies an epoch
     advance, which the validated read turns into the same rollback. *)
  let rec contains_down c key pred l =
    contains_walk c key pred l (P.index (V.get_next_raw c ~lvl:l pred))
  [@@vbr.allow "checkpoint-scope"]

  and contains_walk c key pred l curr =
    let w = V.get_next_raw c ~lvl:l curr in
    if P.is_marked w then contains_walk c key pred l (P.index w)
    else
      let k = V.get_key c curr in
      if k < key then contains_walk c key curr l (P.index w)
      else if l = 0 then k = key
      else contains_down c key pred (l - 1)
  [@@vbr.allow "checkpoint-scope"]

  let contains_body c t key = contains_down c key t.head (max_level - 1)
  [@@vbr.allow "checkpoint-scope"]

  let contains t ~tid key =
    let c = V.ctx t.vbr ~tid in
    V.checkpoint2 c contains_body t key

  (* Quiescent-only helpers: walk the bottom level. *)
  let to_list t =
    let arena = V.arena t.vbr in
    let rec go acc i =
      let n = Memsim.Arena.get arena i in
      let w = Atomic.get (Memsim.Node.next0 n) in
      let k = n.Memsim.Node.key in
      if k = Set_intf.max_key_bound then List.rev acc
      else begin
        let acc =
          if i <> t.head && not (Memsim.Packed.is_marked w) then k :: acc
          else acc
        in
        go acc (Memsim.Packed.index w)
      end
    in
    go [] t.head
  [@@vbr.allow "raw-atomic"]

  let size t = List.length (to_list t)
end

include Make (Vbr_core.Vbr)
