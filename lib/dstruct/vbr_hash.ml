module Make (V : Reclaim.Smr_intf.OPTIMISTIC) = struct
  module L = Vbr_list.Make (V)

  type t = { buckets : L.t array }

  let name = "hash/" ^ V.name

  let create vbr ~buckets =
    if buckets < 1 then invalid_arg "Vbr_hash.create: buckets < 1";
    let tail, tail_birth = L.make_tail vbr in
    {
      buckets =
        Array.init buckets (fun _ -> L.create_with_tail vbr ~tail ~tail_birth);
    }

  let bucket t key = t.buckets.((key land max_int) mod Array.length t.buckets)
  let insert t ~tid key = L.insert (bucket t key) ~tid key
  let delete t ~tid key = L.delete (bucket t key) ~tid key
  let contains t ~tid key = L.contains (bucket t key) ~tid key

  let to_list t =
    Array.to_list t.buckets |> List.concat_map L.to_list |> List.sort compare

  let size t = Array.fold_left (fun acc b -> acc + L.size b) 0 t.buckets
end

include Make (Vbr_core.Vbr)
