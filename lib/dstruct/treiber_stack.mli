(** Treiber's lock-free stack [53] as a functor over a conservative
    reclamation scheme — the baseline counterpart of {!Vbr_stack}.

    A popper protects the top node (slot 0) through the validated read,
    so the swing CAS cannot suffer ABA from recycling; pushers need no
    protection (a recycled expected top makes the CAS succeed on a node
    that genuinely is the current top, which is harmless). *)

module Make (R : Reclaim.Smr_intf.S) : sig
  type t

  val create : R.t -> arena:Memsim.Arena.t -> t

  val hazard_slots : int
  (** Protection slots required per thread (1). *)

  include Set_intf.STACK with type t := t
end
