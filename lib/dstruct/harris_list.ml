open Memsim

module Make (R : Reclaim.Smr_intf.S) = struct
  type t = { r : R.t; arena : Arena.t; head : int; tail : int }

  let name = "harris/" ^ R.name

  let create r ~arena =
    let tail = R.alloc r ~tid:0 ~level:1 ~key:Set_intf.max_key_bound in
    let head = R.alloc r ~tid:0 ~level:1 ~key:Set_intf.min_key_bound in
    Access.set
      (Node.next0 (Arena.get arena head))
      (Packed.pack ~marked:false ~index:tail ~version:0);
    { r; arena; head; tail }
  [@@vbr.allow "guarded-deref" "guard-extent"] (* single-threaded construction *)

  let next_word t i = Node.next0 (Arena.get t.arena i)
  let key_of t i = (Arena.get t.arena i).Node.key
  (* Arena indices are in range by construction. *)
  let word_to i = Packed.pack_unchecked ~marked:false ~index:i ~version:0

  (* Harris's search: returns (left, right) where right is the first node
     with an unmarked next word and key >= [key], and left is its last
     unmarked predecessor. Snips (and retires) the marked segment between
     them when there is one. *)
  let rec search t ~tid key =
    let left = ref t.head in
    let left_next = ref Packed.null in
    (* One do-while step: record (left, left_next) at every unmarked next
       word, then follow the pointer — through marked nodes — until the
       first node whose next is unmarked and whose key reaches [key]. *)
    let rec step cursor cursor_next =
      if not (Packed.is_marked cursor_next) then begin
        left := cursor;
        left_next := cursor_next
      end;
      let nxt = Packed.index cursor_next in
      if nxt = t.tail then nxt
      else begin
        let nn = Access.get (next_word t nxt) in
        if Packed.is_marked nn || key_of t nxt < key then step nxt nn
        else nxt
      end
    in
    let right = step t.head (Access.get (next_word t t.head)) in
    if Packed.index !left_next = right then
      if right <> t.tail && Packed.is_marked (Access.get (next_word t right))
      then search t ~tid key
      else (!left, right)
    else if
      (* Snip the whole marked segment in one CAS. *)
      Access.compare_and_set (next_word t !left) !left_next (word_to right)
    then begin
      (* The snipper retires every node of the segment exactly once. *)
      let rec retire_segment i =
        if i <> right then begin
          let nxt = Packed.index (Access.get (next_word t i)) in
          R.retire t.r ~tid i;
          retire_segment nxt
        end
      in
      retire_segment (Packed.index !left_next);
      if right <> t.tail && Packed.is_marked (Access.get (next_word t right))
      then search t ~tid key
      else (!left, right)
    end
    else search t ~tid key
  (* Harris traversal reads raw words by design: the caller's begin_op
     pins the epoch (EBR) for the whole operation, so no per-node protect
     happens inside this helper. *)
  [@@vbr.allow "guarded-deref"]

  let insert t ~tid key =
    R.begin_op t.r ~tid;
    let rec loop () =
      let left, right = search t ~tid key in
      if right <> t.tail && key_of t right = key then false
      else begin
        let n = R.alloc t.r ~tid ~level:1 ~key in
        Access.set (next_word t n) (word_to right);
        if Access.compare_and_set (next_word t left) (word_to right) (word_to n)
        then true
        else begin
          R.dealloc t.r ~tid n;
          loop ()
        end
      end
    in
    let res = loop () in
    R.end_op t.r ~tid;
    res

  let delete t ~tid key =
    R.begin_op t.r ~tid;
    let rec loop () =
      let left, right = search t ~tid key in
      if right = t.tail || key_of t right <> key then false
      else begin
        let rn = Access.get (next_word t right) in
        if Packed.is_marked rn then loop ()
        else if
          Access.compare_and_set (next_word t right) rn (Packed.set_mark rn)
        then begin
          (* Try the quick one-node snip; otherwise a future search will
             trim (and retire) the segment. *)
          if
            Access.compare_and_set (next_word t left) (word_to right)
              (word_to (Packed.index rn))
          then R.retire t.r ~tid right
          else ignore (search t ~tid key);
          true
        end
        else loop ()
      end
    in
    let res = loop () in
    R.end_op t.r ~tid;
    res

  let contains t ~tid key =
    R.begin_op t.r ~tid;
    let _, right = search t ~tid key in
    let res = right <> t.tail && key_of t right = key in
    R.end_op t.r ~tid;
    res

  (* Quiescent-only helpers. *)
  let to_list t =
    let rec go acc i =
      if i = t.tail then List.rev acc
      else begin
        let w = Access.get (next_word t i) in
        let acc =
          if i <> t.head && not (Packed.is_marked w) then key_of t i :: acc
          else acc
        in
        go acc (Packed.index w)
      end
    in
    go [] t.head
  [@@vbr.allow "guarded-deref" "guard-extent"]

  let size t = List.length (to_list t)
end
