open Memsim

(* Protection slot assignment for the hand-over-hand traversal. *)
let slot_succ = 0
let slot_curr = 1
let slot_pred = 2

module Make (R : Reclaim.Smr_intf.S) = struct
  type t = { r : R.t; arena : Arena.t; head : int }

  let name = "list/" ^ R.name
  let hazard_slots = 3
  let make_tail r ~tid = R.alloc r ~tid ~level:1 ~key:Set_intf.max_key_bound

  let create ?tail r ~arena =
    let tail =
      match tail with Some i -> i | None -> make_tail r ~tid:0
    in
    let head = R.alloc r ~tid:0 ~level:1 ~key:Set_intf.min_key_bound in
    Access.set
      (Node.next0 (Arena.get arena head))
      (Packed.pack ~marked:false ~index:tail ~version:0);
    { r; arena; head }
  [@@vbr.allow "guarded-deref" "guard-extent"] (* single-threaded construction *)

  let next_word t i = Node.next0 (Arena.get t.arena i)
  let key_of t i = (Arena.get t.arena i).Node.key

  (* Arena indices are in range by construction. *)
  let word_to i = Packed.pack_unchecked ~marked:false ~index:i ~version:0

  (* Michael's Find: returns (pred, curr) with
     pred.key < key <= curr.key, both protected, and a flag for
     curr.key = key. Unlinks (and retires) marked nodes on the way; any
     anomaly restarts from the head. *)
  let rec find t ~tid key =
    let pred = t.head in
    (* [protect_read] keeps the per-hop load closure-free: the traversal
       is the benchmark's hot loop and must not touch the minor heap. *)
    let curr_w = R.protect_read t.r ~tid ~slot:slot_curr (next_word t pred) in
    walk t ~tid key pred (Packed.index curr_w)

  and walk t ~tid key pred curr =
    (* Invariant: pred is protected (slot_pred or head), curr is protected
       (slot_curr) and was pred's unmarked successor when protected. *)
    let cw = R.protect_read t.r ~tid ~slot:slot_succ (next_word t curr) in
    (* Re-validate the link; a change means pred or curr moved under us. *)
    let pv = Access.get (next_word t pred) in
    if Packed.index pv <> curr || Packed.is_marked pv then find t ~tid key
    else if Packed.is_marked cw then begin
      (* curr is logically deleted: unlink it or restart. *)
      let succ = Packed.index cw in
      if Access.compare_and_set (next_word t pred) pv (word_to succ) then begin
        R.retire t.r ~tid curr;
        R.transfer t.r ~tid ~src:slot_succ ~dst:slot_curr;
        walk t ~tid key pred succ
      end
      else find t ~tid key
    end
    else begin
      let k = key_of t curr in
      if k >= key then (pred, curr, k = key)
      else begin
        R.transfer t.r ~tid ~src:slot_curr ~dst:slot_pred;
        R.transfer t.r ~tid ~src:slot_succ ~dst:slot_curr;
        walk t ~tid key curr (Packed.index cw)
      end
    end

  let insert t ~tid key =
    R.begin_op t.r ~tid;
    let rec loop () =
      let pred, curr, found = find t ~tid key in
      if found then false
      else begin
        let n = R.alloc t.r ~tid ~level:1 ~key in
        Access.set (next_word t n) (word_to curr);
        if Access.compare_and_set (next_word t pred) (word_to curr) (word_to n)
        then true
        else begin
          R.dealloc t.r ~tid n;
          loop ()
        end
      end
    in
    let res = loop () in
    R.end_op t.r ~tid;
    res

  let delete t ~tid key =
    R.begin_op t.r ~tid;
    let rec loop () =
      let pred, curr, found = find t ~tid key in
      if not found then false
      else begin
        let cw = Access.get (next_word t curr) in
        if Packed.is_marked cw then loop ()
        else if Access.compare_and_set (next_word t curr) cw (Packed.set_mark cw)
        then begin
          (* Logical deletion done; unlink here or let a Find do it. *)
          if
            Access.compare_and_set (next_word t pred) (word_to curr)
              (word_to (Packed.index cw))
          then R.retire t.r ~tid curr
          else ignore (find t ~tid key);
          true
        end
        else loop ()
      end
    in
    let res = loop () in
    R.end_op t.r ~tid;
    res

  let contains t ~tid key =
    R.begin_op t.r ~tid;
    let _, _, found = find t ~tid key in
    R.end_op t.r ~tid;
    found

  (* Quiescent-only helpers. *)
  let to_list t =
    let rec go acc i =
      let w = Access.get (next_word t i) in
      let succ = Packed.index w in
      let k = key_of t i in
      let acc =
        if i <> t.head && k <> Set_intf.max_key_bound && not (Packed.is_marked w)
        then k :: acc
        else acc
      in
      if succ = 0 || k = Set_intf.max_key_bound then List.rev acc
      else go acc succ
    in
    go [] t.head
  [@@vbr.allow "guarded-deref" "guard-extent"]

  let size t = List.length (to_list t)
end
