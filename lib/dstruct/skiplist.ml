open Memsim

let max_level = 16

(* Protection slot layout per thread: 2 slots per level for the latched
   pred/succ, one scratch slot for stepping, one for the inserter's own
   node. *)
let slot_pred l = 2 * l
let slot_succ l = (2 * l) + 1
let slot_work = 2 * max_level
let slot_own = (2 * max_level) + 1

exception Restart

module Make (R : Reclaim.Smr_intf.S) = struct
  type t = {
    r : R.t;
    arena : Arena.t;
    head : int;
    rngs : int array;  (* per-thread xorshift state for tower heights *)
  }

  let name = "skiplist/" ^ R.name
  let hazard_slots = (2 * max_level) + 2

  let create r ~arena =
    let tail = R.alloc r ~tid:0 ~level:max_level ~key:Set_intf.max_key_bound in
    let head = R.alloc r ~tid:0 ~level:max_level ~key:Set_intf.min_key_bound in
    let hn = Arena.get arena head in
    Array.iter
      (fun w ->
        Access.set w (Packed.pack ~marked:false ~index:tail ~version:0))
      hn.Node.next;
    {
      r;
      arena;
      head;
      rngs = Array.init 1024 (fun i -> (i * 0x9E3779B9) lor 1);
    }

  (* Geometric tower height in [1, max_level], p = 1/2, per-thread
     deterministic xorshift. *)
  let random_level t ~tid =
    let x = t.rngs.(tid) in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = (x lxor (x lsl 17)) land max_int in
    t.rngs.(tid) <- x;
    let rec count lvl bits =
      if lvl >= max_level || bits land 1 = 0 then lvl
      else count (lvl + 1) (bits lsr 1)
    in
    count 1 x

  let node t i = Arena.get t.arena i
  let next t i l = (node t i).Node.next.(l)
  let key_of t i = (node t i).Node.key
  let level_of t i = (node t i).Node.level
  (* Arena indices are in range by construction. *)
  let word_to i = Packed.pack_unchecked ~marked:false ~index:i ~version:0

  (* The Herlihy–Shavit find: latch pred/succ at every level, physically
     unlinking marked nodes on the way; any anomaly restarts the whole
     traversal. Marked nodes are snipped but never retired here — the
     bottom-level marker retires (Fraser amendment). On return, preds.(l)
     and succs.(l) are protected in their dedicated slots. *)
  let rec find t ~tid key preds succs =
    match find_attempt t ~tid key preds succs with
    | found -> found
    | exception Restart -> find t ~tid key preds succs

  and find_attempt t ~tid key preds succs =
    R.protect_own t.r ~tid ~slot:(slot_pred (max_level - 1)) t.head;
    let pred = ref t.head in
    let found = ref false in
    for l = max_level - 1 downto 0 do
      let curr_w =
        ref
          (R.protect_read t.r ~tid ~slot:(slot_succ l) (next t !pred l))
      in
      let at_level = ref true in
      while !at_level do
        let curr = Packed.index !curr_w in
        let cw =
          R.protect_read t.r ~tid ~slot:slot_work (next t curr l)
        in
        let pv = Access.get (next t !pred l) in
        if Packed.index pv <> curr || Packed.is_marked pv then raise Restart;
        if Packed.is_marked cw then begin
          (* curr is logically deleted at this level: unlink it. *)
          let succ = Packed.index cw in
          if Access.compare_and_set (next t !pred l) pv (word_to succ) then begin
            R.transfer t.r ~tid ~src:slot_work ~dst:(slot_succ l);
            curr_w := word_to succ
          end
          else raise Restart
        end
        else if key_of t curr < key then begin
          R.transfer t.r ~tid ~src:(slot_succ l) ~dst:(slot_pred l);
          pred := curr;
          R.transfer t.r ~tid ~src:slot_work ~dst:(slot_succ l);
          curr_w := cw
        end
        else begin
          preds.(l) <- !pred;
          succs.(l) <- curr;
          if l = 0 then found := key_of t curr = key;
          at_level := false;
          if l > 0 then
            R.transfer t.r ~tid ~src:(slot_pred l) ~dst:(slot_pred (l - 1))
        end
      done
    done;
    !found

  let insert t ~tid key =
    R.begin_op t.r ~tid;
    let preds = Array.make max_level 0 and succs = Array.make max_level 0 in
    let rec attempt () =
      if find t ~tid key preds succs then false
      else begin
        let lvl = random_level t ~tid in
        let n = R.alloc t.r ~tid ~level:lvl ~key in
        for l = 0 to lvl - 1 do
          Access.set (next t n l) (word_to succs.(l))
        done;
        (* Keep our node pinned: after the bottom link it is deletable by
           others while we still write its upper levels. *)
        R.protect_own t.r ~tid ~slot:slot_own n;
        if
          Access.compare_and_set
            (next t preds.(0) 0)
            (word_to succs.(0))
            (word_to n)
        then begin
          link_upper n lvl 1;
          true
        end
        else begin
          R.dealloc t.r ~tid n;
          attempt ()
        end
      end
    and link_upper n lvl l =
      if l >= lvl then begin
        (* Fraser amendment: if the node was marked while we were linking,
           make sure it gets fully unlinked before we return. *)
        if Packed.is_marked (Access.get (next t n 0)) then
          ignore (find t ~tid key preds succs)
      end
      else if succs.(l) = n then
        (* A refresh [find] already saw n linked at this level. *)
        link_upper n lvl (l + 1)
      else begin
        let nw = Access.get (next t n l) in
        if Packed.is_marked nw then
          (* Being removed: stop linking and help the unlink. *)
          ignore (find t ~tid key preds succs)
        else if Packed.index nw <> succs.(l) then begin
          (* Refresh our forward pointer towards the latest succ. *)
          if Access.compare_and_set (next t n l) nw (word_to succs.(l)) then
            link_upper n lvl l
          else link_upper n lvl l (* marked or raced; re-examine *)
        end
        else if
          Access.compare_and_set
            (next t preds.(l) l)
            (word_to succs.(l))
            (word_to n)
        then link_upper n lvl (l + 1)
        else begin
          (* preds/succs went stale at this level: recompute and retry.
             A re-find also bails us out if n got removed meanwhile. *)
          ignore (find t ~tid key preds succs);
          if Packed.is_marked (Access.get (next t n 0)) then ()
          else link_upper n lvl l
        end
      end
    in
    let res = attempt () in
    R.end_op t.r ~tid;
    res

  let delete t ~tid key =
    R.begin_op t.r ~tid;
    let preds = Array.make max_level 0 and succs = Array.make max_level 0 in
    let res =
      if not (find t ~tid key preds succs) then false
      else begin
        let victim = succs.(0) in
        let vlvl = level_of t victim in
        (* Mark upper levels top-down (idempotent between removers). *)
        for l = vlvl - 1 downto 1 do
          let rec mark_level () =
            let w = Access.get (next t victim l) in
            if not (Packed.is_marked w) then
              if
                not
                  (Access.compare_and_set (next t victim l) w
                     (Packed.set_mark w))
              then mark_level ()
          in
          mark_level ()
        done;
        (* Bottom-level mark: the winner is the logical remover. *)
        let rec mark_bottom () =
          let w = Access.get (next t victim 0) in
          if Packed.is_marked w then false
          else if
            Access.compare_and_set (next t victim 0) w (Packed.set_mark w)
          then begin
            (* Unlink from every level, then retire: Fraser amendment. *)
            ignore (find t ~tid key preds succs);
            R.retire t.r ~tid victim;
            true
          end
          else mark_bottom ()
        in
        mark_bottom ()
      end
    in
    R.end_op t.r ~tid;
    res

  let contains t ~tid key =
    R.begin_op t.r ~tid;
    let preds = Array.make max_level 0 and succs = Array.make max_level 0 in
    let res = find t ~tid key preds succs in
    R.end_op t.r ~tid;
    res

  (* Quiescent-only helpers: walk the bottom level. *)
  let to_list t =
    let rec go acc i =
      let w = Access.get (next t i 0) in
      let k = key_of t i in
      if k = Set_intf.max_key_bound then List.rev acc
      else begin
        let acc =
          if i <> t.head && not (Packed.is_marked w) then k :: acc else acc
        in
        go acc (Packed.index w)
      end
    in
    go [] t.head
  [@@vbr.allow "guarded-deref" "guard-extent"]

  let size t = List.length (to_list t)
end
