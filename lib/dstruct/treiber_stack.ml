open Memsim

module Make (R : Reclaim.Smr_intf.S) = struct
  type t = { r : R.t; arena : Arena.t; top : int Atomic.t }

  let name = "stack/" ^ R.name
  let hazard_slots = 1
  (* Arena indices are in range by construction. *)
  let word_to i = Packed.pack_unchecked ~marked:false ~index:i ~version:0

  let create r ~arena = { r; arena; top = Atomic.make Packed.null }

  let next_word t i = Node.next0 (Arena.get t.arena i)

  let push t ~tid v =
    R.begin_op t.r ~tid;
    let n = R.alloc t.r ~tid ~level:1 ~key:v in
    let rec loop () =
      let tw = Access.get t.top in
      Access.set (next_word t n) (word_to (Packed.index tw));
      if not (Access.compare_and_set t.top tw (word_to n)) then loop ()
    in
    loop ();
    R.end_op t.r ~tid

  let pop t ~tid =
    R.begin_op t.r ~tid;
    let rec loop () =
      let tw = R.protect_read t.r ~tid ~slot:0 t.top in
      let top = Packed.index tw in
      if top = 0 then None
      else begin
        (* top is protected: its next is stable and it cannot be recycled
           before our swing, so the CAS is ABA-free. *)
        let nxt = Packed.index (Access.get (next_word t top)) in
        let v = (Arena.get t.arena top).Node.key in
        if Access.compare_and_set t.top tw (word_to nxt) then begin
          R.retire t.r ~tid top;
          Some v
        end
        else loop ()
      end
    in
    let res = loop () in
    R.end_op t.r ~tid;
    res

  let is_empty t ~tid:_ = Packed.is_null (Access.get t.top)

  (* Quiescent-only helpers. *)
  let to_list t =
    let rec go acc i =
      if i = 0 then List.rev acc
      else
        go
          ((Arena.get t.arena i).Node.key :: acc)
          (Packed.index (Access.get (next_word t i)))
    in
    go [] (Packed.index (Access.get t.top))
  [@@vbr.allow "guarded-deref" "guard-extent"]

  let length t = List.length (to_list t)
end
