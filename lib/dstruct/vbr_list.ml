(* Functorized over the optimistic capability so any backend satisfying
   Smr_intf.OPTIMISTIC (today Vbr_core.Vbr; tomorrow an ablation variant)
   reuses the Figure 3-6 integration unchanged. *)
module Make (V : Reclaim.Smr_intf.OPTIMISTIC) = struct
  module P = Memsim.Packed
  type t = {
    vbr : V.t;
    head : int;
    head_b : int;  (* sentinels are never retired, so their births are fixed *)
  }

  let name = "list/" ^ V.name

  let make_tail vbr =
    let c = V.ctx vbr ~tid:0 in
    V.checkpoint c (fun () ->
        let i, b = V.alloc vbr ~tid:0 ~level:1 ~key:Set_intf.max_key_bound in
        V.commit_alloc c i;
        (i, b))

  let create_with_tail vbr ~tail ~tail_birth =
    let c = V.ctx vbr ~tid:0 in
    let head, head_b =
      V.checkpoint c (fun () ->
          let i, b = V.alloc vbr ~tid:0 ~level:1 ~key:Set_intf.min_key_bound in
          (* Point head at tail; private until [create] returns. *)
          let ok =
            V.update c i ~birth:b ~expected:0 ~expected_birth:b ~new_:tail
              ~new_birth:tail_birth
          in
          assert ok;
          V.commit_alloc c i;
          (i, b))
    in
    { vbr; head; head_b }

  let create vbr =
    let tail, tail_birth = make_tail vbr in
    create_with_tail vbr ~tail ~tail_birth

  (* Figure 3: the find auxiliary method. Raises Rollback on staleness;
     installed checkpoints live in the calling operation. Leaves
     (pred, pred_b, curr, curr_b, curr_key) with pred.key < key <=
     curr_key in the per-thread scratch plane (slots 0-4): returning a
     5-tuple would allocate six minor words per find, and on the
     Figure-2 update mix that allocation dominated the 8-thread
     stop-the-world minor-GC rendezvous.

     The hop primitive is [get_next_raw]: one validated load yields the
     node's own mark bit plus its successor's index, and the births the
     CASes will need (pred's and curr's) are recomputed by [get_birth]
     only at the stopping point — not one successor-birth node touch per
     hop. Using the raw mark in place of [is_marked], and a raw hop in
     place of the per-hop birth, is equivalent inside a checkpoint: a
     recycled node implies an epoch advance, which the next validated
     read turns into the same re-run that the eager birth check would
     have forced one step later.

     All the traversal loops live at module level with their state
     threaded as arguments: an inner [let rec] would capture [c] and
     [key] in a fresh closure on every operation. *)
  let rec find_retry t c key =
    let w = V.get_next_raw c ~lvl:0 t.head in
    let curr = P.index w in
    find_loop t c key t.head curr (V.get_key c curr)
  [@@vbr.allow "checkpoint-scope"]

  and find_loop t c key pred curr curr_key =
    let w = V.get_next_raw c ~lvl:0 curr in
    if P.is_marked w then begin
      (* Walk to the end of the marked segment, then trim it with one
         versioned update (Figure 3, lines 9-13) — rollback-safe. *)
      let succ = skip_marked c (P.index w) in
      if
        V.update c pred ~birth:(V.get_birth c pred) ~expected:curr
          ~expected_birth:(V.get_birth c curr) ~new_:succ
          ~new_birth:(V.get_birth c succ)
      then find_loop t c key pred succ (V.get_key c succ)
      else find_retry t c key
    end
    else if curr_key >= key then begin
      let s = V.scratch c in
      s.(0) <- pred;
      s.(1) <- V.get_birth c pred;
      s.(2) <- curr;
      s.(3) <- V.get_birth c curr;
      s.(4) <- curr_key
    end
    else
      let succ = P.index w in
      find_loop t c key curr succ (V.get_key c succ)
  [@@vbr.allow "checkpoint-scope"]

  and skip_marked c s =
    let sw = V.get_next_raw c ~lvl:0 s in
    if P.is_marked sw then skip_marked c (P.index sw) else s
  [@@vbr.allow "checkpoint-scope"]

  (* Figure 4. The body re-enters itself on a failed publishing CAS
     instead of an inner loop closure; its checkpoint is installed by
     [insert] below via the closure-free [checkpoint3]. *)
  let rec insert_body c t tid key =
    find_retry t c key;
    let s = V.scratch c in
    let pred = s.(0) and pred_b = s.(1) and succ = s.(2) and succ_b = s.(3) in
    if s.(4) = key then false
    else begin
      let n, n_b = V.alloc t.vbr ~tid ~level:1 ~key in
      (* Point the private node at succ before publishing. *)
      let ok =
        V.update c n ~birth:n_b ~expected:0 ~expected_birth:n_b ~new_:succ
          ~new_birth:succ_b
      in
      assert ok;
      if
        V.update c pred ~birth:pred_b ~expected:succ ~expected_birth:succ_b
          ~new_:n ~new_birth:n_b
      then begin
        V.commit_alloc c n;
        (* Figure 4, lines 12-13: checkpoint after the rollback-unsafe
           insertion — nothing left to roll back, so just refresh. *)
        V.refresh_epoch c;
        true
      end
      else begin
        V.retire t.vbr ~tid (n, n_b);  (* Figure 4, line 15 *)
        insert_body c t tid key
      end
    end
  [@@vbr.allow "checkpoint-scope"]

  let insert t ~tid key =
    let c = V.ctx t.vbr ~tid in
    V.checkpoint3 c insert_body t tid key

  (* Figure 5. *)
  let rec delete_mark_loop c t tid key pred pred_b curr curr_b =
    if V.is_marked c curr ~birth:curr_b then false
    else begin
      let succ, succ_b = V.get_next c curr in
      if V.mark c curr ~birth:curr_b then begin
        (* Lines 11-16: the mark is the linearization point; the unlink,
           clean-up find and retire run under a fresh checkpoint so a
           rollback cannot cross back over it. The closure here is
           per-successful-delete, not per-hop, so it stays. *)
        V.checkpoint c (fun () ->
            if
              not
                (V.update c pred ~birth:pred_b ~expected:curr
                   ~expected_birth:curr_b ~new_:succ ~new_birth:succ_b)
            then find_retry t c key;
            V.retire t.vbr ~tid (curr, curr_b));
        true
      end
      else delete_mark_loop c t tid key pred pred_b curr curr_b
    end
  [@@vbr.allow "checkpoint-scope"]

  let delete_body c t tid key =
    find_retry t c key;
    let s = V.scratch c in
    let pred = s.(0) and pred_b = s.(1) and curr = s.(2) and curr_b = s.(3) in
    if s.(4) <> key then false
    else delete_mark_loop c t tid key pred pred_b curr curr_b
  [@@vbr.allow "checkpoint-scope"]

  let delete t ~tid key =
    let c = V.ctx t.vbr ~tid in
    V.checkpoint3 c delete_body t tid key

  (* Figure 6. Wait-free readers need only the successor index per hop
     plus the final node's mark — exactly what [get_next_raw] carries, so
     the scan is allocation-free and skips the successor-birth recompute
     the CAS-bound traversals pay. *)
  let rec contains_loop c key curr curr_key =
    if curr_key < key then
      let succ = P.index (V.get_next_raw c ~lvl:0 curr) in
      contains_loop c key succ (V.get_key c succ)
    else curr_key = key && not (P.is_marked (V.get_next_raw c ~lvl:0 curr))
  [@@vbr.allow "checkpoint-scope"]

  let contains_body c t key =
    let curr = P.index (V.get_next_raw c ~lvl:0 t.head) in
    contains_loop c key curr (V.get_key c curr)
  [@@vbr.allow "checkpoint-scope"]

  let contains t ~tid key =
    let c = V.ctx t.vbr ~tid in
    V.checkpoint2 c contains_body t key

  (* Quiescent-only helpers. *)
  let to_list t =
    let arena = V.arena t.vbr in
    let rec go acc i =
      let w = Atomic.get (Memsim.Node.next0 (Memsim.Arena.get arena i)) in
      let k = (Memsim.Arena.get arena i).Memsim.Node.key in
      if k = Set_intf.max_key_bound then List.rev acc
      else begin
        let acc =
          if i <> t.head && not (Memsim.Packed.is_marked w) then k :: acc
          else acc
        in
        go acc (Memsim.Packed.index w)
      end
    in
    go [] t.head
  [@@vbr.allow "raw-atomic"]

  let size t = List.length (to_list t)
end

include Make (Vbr_core.Vbr)
