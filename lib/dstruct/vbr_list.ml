(* Functorized over the optimistic capability so any backend satisfying
   Smr_intf.OPTIMISTIC (today Vbr_core.Vbr; tomorrow an ablation variant)
   reuses the Figure 3-6 integration unchanged. *)
module Make (V : Reclaim.Smr_intf.OPTIMISTIC) = struct
  type t = {
    vbr : V.t;
    head : int;
    head_b : int;  (* sentinels are never retired, so their births are fixed *)
  }

  let name = "list/" ^ V.name

  let make_tail vbr =
    let c = V.ctx vbr ~tid:0 in
    V.checkpoint c (fun () ->
        let i, b = V.alloc vbr ~tid:0 ~level:1 ~key:Set_intf.max_key_bound in
        V.commit_alloc c i;
        (i, b))

  let create_with_tail vbr ~tail ~tail_birth =
    let c = V.ctx vbr ~tid:0 in
    let head, head_b =
      V.checkpoint c (fun () ->
          let i, b = V.alloc vbr ~tid:0 ~level:1 ~key:Set_intf.min_key_bound in
          (* Point head at tail; private until [create] returns. *)
          let ok =
            V.update c i ~birth:b ~expected:0 ~expected_birth:b ~new_:tail
              ~new_birth:tail_birth
          in
          assert ok;
          V.commit_alloc c i;
          (i, b))
    in
    { vbr; head; head_b }

  let create vbr =
    let tail, tail_birth = make_tail vbr in
    create_with_tail vbr ~tail ~tail_birth

  (* Figure 3: the find auxiliary method. Raises Rollback on staleness;
     installed checkpoints live in the calling operation. Returns
     (pred, pred_b, curr, curr_b, curr_key) with pred.key < key <= curr_key. *)
  let find t c key =
    let rec retry () =
      let pred = t.head and pred_b = t.head_b in
      let curr, curr_b = V.get_next c pred in
      let curr_key = V.get_key c curr in
      loop pred pred_b curr curr_b curr_key
    and loop pred pred_b curr curr_b curr_key =
      if V.is_marked c curr ~birth:curr_b then begin
        (* Walk to the end of the marked segment, then trim it with one
           versioned update (Figure 3, lines 9-13) — rollback-safe. *)
        let rec skip s s_b =
          if V.is_marked c s ~birth:s_b then begin
            let s', s'_b = V.get_next c s in
            skip s' s'_b
          end
          else (s, s_b)
        in
        let first, first_b = V.get_next c curr in
        let succ, succ_b = skip first first_b in
        if
          V.update c pred ~birth:pred_b ~expected:curr ~expected_birth:curr_b
            ~new_:succ ~new_birth:succ_b
        then loop pred pred_b succ succ_b (V.get_key c succ)
        else retry ()
      end
      else if curr_key >= key then (pred, pred_b, curr, curr_b, curr_key)
      else begin
        let succ, succ_b = V.get_next c curr in
        loop curr curr_b succ succ_b (V.get_key c succ)
      end
    in
    retry ()
  [@@vbr.allow "checkpoint-scope"]

  (* Figure 4. *)
  let insert t ~tid key =
    let c = V.ctx t.vbr ~tid in
    V.checkpoint c (fun () ->
        let rec loop () =
          let pred, pred_b, succ, succ_b, succ_key = find t c key in
          if succ_key = key then false
          else begin
            let n, n_b = V.alloc t.vbr ~tid ~level:1 ~key in
            (* Point the private node at succ before publishing. *)
            let ok =
              V.update c n ~birth:n_b ~expected:0 ~expected_birth:n_b
                ~new_:succ ~new_birth:succ_b
            in
            assert ok;
            if
              V.update c pred ~birth:pred_b ~expected:succ
                ~expected_birth:succ_b ~new_:n ~new_birth:n_b
            then begin
              V.commit_alloc c n;
              (* Figure 4, lines 12-13: checkpoint after the rollback-unsafe
                 insertion — nothing left to roll back, so just refresh. *)
              V.refresh_epoch c;
              true
            end
            else begin
              V.retire t.vbr ~tid (n, n_b);  (* Figure 4, line 15 *)
              loop ()
            end
          end
        in
        loop ())

  (* Figure 5. *)
  let delete t ~tid key =
    let c = V.ctx t.vbr ~tid in
    V.checkpoint c (fun () ->
        let pred, pred_b, curr, curr_b, curr_key = find t c key in
        if curr_key <> key then false
        else begin
          let rec mark_loop () =
            if V.is_marked c curr ~birth:curr_b then false
            else begin
              let succ, succ_b = V.get_next c curr in
              if V.mark c curr ~birth:curr_b then begin
                (* Lines 11-16: the mark is the linearization point; the
                   unlink, clean-up find and retire run under a fresh
                   checkpoint so a rollback cannot cross back over it. *)
                V.checkpoint c (fun () ->
                    if
                      not
                        (V.update c pred ~birth:pred_b ~expected:curr
                           ~expected_birth:curr_b ~new_:succ ~new_birth:succ_b)
                    then ignore (find t c key);
                    V.retire t.vbr ~tid (curr, curr_b));
                true
              end
              else mark_loop ()
            end
          in
          mark_loop ()
        end)

  (* Figure 6. *)
  let contains t ~tid key =
    let c = V.ctx t.vbr ~tid in
    V.checkpoint c (fun () ->
        let rec loop curr curr_b curr_key =
          if curr_key < key then begin
            let succ, succ_b = V.get_next c curr in
            loop succ succ_b (V.get_key c succ)
          end
          else curr_key = key && not (V.is_marked c curr ~birth:curr_b)
        in
        let curr, curr_b = V.get_next c t.head in
        loop curr curr_b (V.get_key c curr))

  (* Quiescent-only helpers. *)
  let to_list t =
    let arena = V.arena t.vbr in
    let rec go acc i =
      let w = Atomic.get (Memsim.Node.next0 (Memsim.Arena.get arena i)) in
      let k = (Memsim.Arena.get arena i).Memsim.Node.key in
      if k = Set_intf.max_key_bound then List.rev acc
      else begin
        let acc =
          if i <> t.head && not (Memsim.Packed.is_marked w) then k :: acc
          else acc
        in
        go acc (Memsim.Packed.index w)
      end
    in
    go [] t.head
  [@@vbr.allow "raw-atomic"]

  let size t = List.length (to_list t)
end

include Make (Vbr_core.Vbr)
