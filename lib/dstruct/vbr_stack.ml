(* Hot paths use the packed read variants so a retry loop allocates
   nothing; components are unpacked on demand. *)
module Make (V : Reclaim.Smr_intf.OPTIMISTIC) = struct
  module P = Memsim.Packed
  type t = { vbr : V.t; top : int Atomic.t }

  let name = "stack/" ^ V.name
  let create vbr = { vbr; top = V.make_root ~init:0 ~init_birth:0 }

  let push t ~tid v =
    let c = V.ctx t.vbr ~tid in
    V.checkpoint c (fun () ->
        let n, n_b = V.alloc t.vbr ~tid ~level:1 ~key:v in
        let rec loop () =
          let tw = V.read_root_packed c t.top in
          let top = P.index tw and top_b = P.version tw in
          (* Aim the private node at the current top. Raw-expected because a
             previous iteration may have left n.next pointing at a top that
             has since been recycled. *)
          let ok = V.refresh_next c n ~birth:n_b ~new_:top ~new_birth:top_b in
          assert ok;
          if
            V.cas_root c t.top ~expected:top ~expected_birth:top_b ~new_:n
              ~new_birth:n_b
          then V.commit_alloc c n
          else loop ()
        in
        loop ())

  let pop t ~tid =
    let c = V.ctx t.vbr ~tid in
    V.checkpoint c (fun () ->
        let rec loop () =
          let tw = V.read_root_packed c t.top in
          let top = P.index tw and top_b = P.version tw in
          if top = 0 then None
          else begin
            let nw = V.get_next_packed c ~lvl:0 top in
            let nxt = P.index nw and nxt_b = P.version nw in
            let v = V.get_key c top in
            if
              V.cas_root c t.top ~expected:top ~expected_birth:top_b
                ~new_:nxt ~new_birth:nxt_b
            then begin
              (* The swing is unique: this thread owns the retirement. *)
              V.checkpoint c (fun () -> V.retire t.vbr ~tid (top, top_b));
              Some v
            end
            else loop ()
          end
        in
        loop ())

  let is_empty t ~tid =
    let c = V.ctx t.vbr ~tid in
    V.checkpoint c (fun () -> P.index (V.read_root_packed c t.top) = 0)

  (* Quiescent-only helpers. *)
  let to_list t =
    let arena = V.arena t.vbr in
    let rec go acc i =
      if i = 0 then List.rev acc
      else begin
        let n = Memsim.Arena.get arena i in
        go (n.Memsim.Node.key :: acc)
          (Memsim.Packed.index (Atomic.get (Memsim.Node.next0 n)))
      end
    in
    go [] (Memsim.Packed.index (Atomic.get t.top))
  [@@vbr.allow "raw-atomic"]

  let length t = List.length (to_list t)
end

include Make (Vbr_core.Vbr)
