(** The optimistic-reclamation lock-free linked list (the paper's
    Appendix C), as a functor over {!Reclaim.Smr_intf.OPTIMISTIC}.

    Structure of the integration, per Figures 3–6:
    - [find] is the auxiliary traversal: it trims whole marked segments
      with a single versioned [update] and never installs checkpoints
      (all its updates are rollback-safe), so any [Rollback] it raises
      propagates to the enclosing operation's checkpoint.
    - [insert] installs a checkpoint on entry (Figure 4). A failed
      publishing CAS retires the fresh node (line 15) and retries.
    - [delete] installs a checkpoint on entry and a second one right after
      the successful [mark] — the mark is the linearization point and is
      rollback-unsafe, so the physical unlink, the clean-up [find] and the
      [retire] all run under the inner checkpoint (Figure 5).
    - [contains] is the Figure 6 single-pass traversal: no updates, one
      checkpoint on entry; not wait-free (rollbacks restart it). *)

module Make (V : Reclaim.Smr_intf.OPTIMISTIC) : sig
  type t

  val create : V.t -> t
  (** A new empty list on the given backend instance (allocates the
      head/tail sentinels from thread 0's context). *)

  val create_with_tail : V.t -> tail:int -> tail_birth:int -> t
  (** Like {!create} but sharing an existing tail sentinel (hash
      buckets). *)

  val make_tail : V.t -> int * int
  (** Allocate a tail sentinel; returns (index, birth). *)

  include Set_intf.SET with type t := t
end

include module type of Make (Vbr_core.Vbr)
(** The canonical instantiation over {!Vbr_core.Vbr} ("list/VBR"). *)
