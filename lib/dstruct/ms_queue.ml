open Memsim

let slot_target = 0
let slot_succ = 1

module Make (R : Reclaim.Smr_intf.S) = struct
  type t = {
    r : R.t;
    arena : Arena.t;
    head : int Atomic.t;  (* packed words; version always 0 here *)
    tail : int Atomic.t;
  }

  let name = "queue/" ^ R.name
  let hazard_slots = 2

  (* Arena indices are in range by construction. *)
  let word_to i = Packed.pack_unchecked ~marked:false ~index:i ~version:0

  let create r ~arena =
    let dummy = R.alloc r ~tid:0 ~level:1 ~key:0 in
    { r; arena; head = Atomic.make (word_to dummy); tail = Atomic.make (word_to dummy) }

  let next_word t i = Node.next0 (Arena.get t.arena i)

  let enqueue t ~tid v =
    R.begin_op t.r ~tid;
    let n = R.alloc t.r ~tid ~level:1 ~key:v in
    let rec loop () =
      let tw = R.protect_read t.r ~tid ~slot:slot_target t.tail in
      let tl = Packed.index tw in
      let nw = Access.get (next_word t tl) in
      let nt = Packed.index nw in
      if nt = 0 then begin
        if Access.compare_and_set (next_word t tl) nw (word_to n) then
          (* Linearized; swing the tail (losing the race is fine). *)
          ignore (Access.compare_and_set t.tail tw (word_to n))
        else loop ()
      end
      else begin
        (* Tail lagging: help. The successor is safe to install because a
           node at or after the tail is never retired. *)
        ignore (Access.compare_and_set t.tail tw (word_to nt));
        loop ()
      end
    in
    loop ();
    R.end_op t.r ~tid

  let dequeue t ~tid =
    R.begin_op t.r ~tid;
    let rec loop () =
      let hw = R.protect_read t.r ~tid ~slot:slot_target t.head in
      let h = Packed.index hw in
      let tw = Access.get t.tail in
      let fw =
        R.protect_read t.r ~tid ~slot:slot_succ (next_word t h)
      in
      (* Re-validate that h is still the head: protects the first node
         (it cannot be retired before the head swings past it, and the
         head has provably not swung yet). *)
      if Access.get t.head <> hw then loop ()
      else begin
        let first = Packed.index fw in
        if first = 0 then None
        else if h = Packed.index tw then begin
          ignore (Access.compare_and_set t.tail tw (word_to first));
          loop ()
        end
        else begin
          let v = (Arena.get t.arena first).Node.key in
          if Access.compare_and_set t.head hw (word_to first) then begin
            R.retire t.r ~tid h;
            Some v
          end
          else loop ()
        end
      end
    in
    let res = loop () in
    R.end_op t.r ~tid;
    res

  let is_empty t ~tid =
    R.begin_op t.r ~tid;
    let hw = R.protect_read t.r ~tid ~slot:slot_target t.head in
    let res = Packed.index (Access.get (next_word t (Packed.index hw))) = 0 in
    R.end_op t.r ~tid;
    res

  (* Quiescent-only helpers. *)
  let to_list t =
    let h = Packed.index (Access.get t.head) in
    let rec go acc i =
      let nxt = Packed.index (Access.get (next_word t i)) in
      if nxt = 0 then List.rev acc
      else go ((Arena.get t.arena nxt).Node.key :: acc) nxt
    in
    go [] h
  [@@vbr.allow "guarded-deref" "guard-extent"]

  let length t = List.length (to_list t)
end
