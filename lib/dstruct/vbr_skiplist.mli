(** The optimistic-reclamation lock-free skiplist (Herlihy–Shavit [27]
    with Fraser's reclamation amendment [20], §5 of the paper).

    Checkpoint placement follows the same logic as the list (Appendix C):
    the rollback-unsafe steps are the bottom-level link CAS (insert's
    linearization point) and the bottom-level mark (delete's); everything
    after them — upper-level linking/marking, clean-up finds, retirement —
    runs under an inner checkpoint so a rollback can never cross back over
    a linearization point.

    Upper levels are navigation hints: every traversal advances only onto
    nodes whose *current* key (an epoch-validated read) is below the
    search key, so the bottom level alone carries the set's
    linearizability. The residual race of installing an upper-level link
    to a node recycled in the same instant (discussed in the
    implementation) can therefore cost performance, never correctness;
    [insert] additionally revalidates the node's birth and the epoch
    immediately before each upper-level CAS to make the window vanishingly
    small. *)

val max_level : int
(** Tower-height cap (16, matching {!Skiplist.max_level}). *)

module Make (V : Reclaim.Smr_intf.OPTIMISTIC) : sig
  type t

  val create : V.t -> t

  include Set_intf.SET with type t := t
end

include module type of Make (Vbr_core.Vbr)
(** The canonical instantiation over {!Vbr_core.Vbr} ("skiplist/VBR"). *)
