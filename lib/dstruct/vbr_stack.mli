(** A Treiber lock-free stack [53] over the optimistic capability — the
    second extension structure (the paper cites Treiber's stack as the
    classic pool substrate).

    The top-of-stack is an entry-point word; push aims its private node
    with {!Reclaim.Smr_intf.OPTIMISTIC.refresh_next} (the raw-expected
    redirect, because across retries the node's next may reference a
    since-recycled former top) and publishes with a versioned root CAS;
    pop's root swing is unique, so exactly one popper retires each node. A
    popped node's [next] is never written again after publication, which
    provides Assumption 2's invalidation without marks. *)

module Make (V : Reclaim.Smr_intf.OPTIMISTIC) : sig
  type t

  val create : V.t -> t

  include Set_intf.STACK with type t := t
end

include module type of Make (Vbr_core.Vbr)
(** The canonical instantiation over {!Vbr_core.Vbr} ("stack/VBR"). *)
