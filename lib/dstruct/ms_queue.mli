(** The Michael–Scott lock-free FIFO queue [38] as a functor over a
    conservative reclamation scheme — the baseline counterpart of
    {!Vbr_queue} for the queue extension benchmark.

    Hazard usage (slot 0: head/tail target, slot 1: the successor): a
    dequeuer protects the dummy and its successor and validates through
    the re-read in {!Reclaim.Smr_intf.S.protect}; a node is retired only
    after the head swings past it, so a validated successor cannot have
    been recycled. Enqueuers protect the tail target; nodes at or after
    the tail are never retired (the head never overtakes the tail). *)

module Make (R : Reclaim.Smr_intf.S) : sig
  type t

  val create : R.t -> arena:Memsim.Arena.t -> t

  val hazard_slots : int
  (** Protection slots required per thread (2). *)

  include Set_intf.QUEUE with type t := t
end
