(** A Michael–Scott lock-free FIFO queue [38] over the optimistic
    capability — one of the compatible structures the paper lists (§1,
    §4) but does not evaluate; included as an extension.

    Integration notes:
    - The queue's head and tail are entry-point words
      ({!Reclaim.Smr_intf.OPTIMISTIC.make_root}): their version is the
      pointee's birth epoch, which rules out ABA on the head/tail swings.
    - Invalidation without marks (Assumption 2): a queue node's [next]
      goes NULL → node exactly once and is never written again, so by the
      time the node is retired (after the head swings past it) the field
      is already immutable — the mark mechanism is unnecessary.
    - [enqueue]'s linearization point is the versioned link CAS on the
      old tail's next; [dequeue]'s is the head swing, after which the old
      dummy is retired under an inner checkpoint (the value was read,
      epoch-validated, before the swing, as Figure 1 treats keys). *)

module Make (V : Reclaim.Smr_intf.OPTIMISTIC) : sig
  type t

  val create : V.t -> t
  (** An empty queue (allocates the initial dummy from thread 0's ctx). *)

  include Set_intf.QUEUE with type t := t
end

include module type of Make (Vbr_core.Vbr)
(** The canonical instantiation over {!Vbr_core.Vbr} ("queue/VBR"). *)
