(* Hot paths read roots and next pointers through the packed variants
   ([read_root_packed]/[get_next_packed]) so a retry loop allocates
   nothing; the (index, birth) components are unpacked on demand. *)
module Make (V : Reclaim.Smr_intf.OPTIMISTIC) = struct
  module P = Memsim.Packed
  type t = { vbr : V.t; head : int Atomic.t; tail : int Atomic.t }

  let name = "queue/" ^ V.name

  let create vbr =
    let c = V.ctx vbr ~tid:0 in
    V.checkpoint c (fun () ->
        let dummy, dummy_b = V.alloc vbr ~tid:0 ~level:1 ~key:0 in
        V.commit_alloc c dummy;
        {
          vbr;
          head = V.make_root ~init:dummy ~init_birth:dummy_b;
          tail = V.make_root ~init:dummy ~init_birth:dummy_b;
        })

  let enqueue t ~tid v =
    let c = V.ctx t.vbr ~tid in
    V.checkpoint c (fun () ->
        let n, n_b = V.alloc t.vbr ~tid ~level:1 ~key:v in
        let rec loop () =
          let tw = V.read_root_packed c t.tail in
          let tl = P.index tw and tl_b = P.version tw in
          let nw = V.get_next_packed c ~lvl:0 tl in
          let nt = P.index nw in
          if nt = 0 then begin
            (* The tail's next word is still ⟨NULL, tl_b⟩ from its own
               allocation; the versioned CAS links n behind it. *)
            if
              V.update c tl ~birth:tl_b ~expected:0 ~expected_birth:tl_b
                ~new_:n ~new_birth:n_b
            then begin
              V.commit_alloc c n;
              (* Swing the tail; losing this race is fine. *)
              ignore
                (V.cas_root c t.tail ~expected:tl ~expected_birth:tl_b ~new_:n
                   ~new_birth:n_b)
            end
            else loop ()
          end
          else begin
            (* Tail is lagging: help it forward, then retry. *)
            ignore
              (V.cas_root c t.tail ~expected:tl ~expected_birth:tl_b ~new_:nt
                 ~new_birth:(P.version nw));
            loop ()
          end
        in
        loop ())

  let dequeue t ~tid =
    let c = V.ctx t.vbr ~tid in
    V.checkpoint c (fun () ->
        let rec loop () =
          let hw = V.read_root_packed c t.head in
          let h = P.index hw and h_b = P.version hw in
          let tw = V.read_root_packed c t.tail in
          let tl = P.index tw and tl_b = P.version tw in
          let fw = V.get_next_packed c ~lvl:0 h in
          let first = P.index fw and first_b = P.version fw in
          if first = 0 then None
          else if h = tl && h_b = tl_b then begin
            (* Non-empty but tail still points at the dummy: help. *)
            ignore
              (V.cas_root c t.tail ~expected:tl ~expected_birth:tl_b
                 ~new_:first ~new_birth:first_b);
            loop ()
          end
          else begin
            (* Read the value before the linearizing swing (validated). *)
            let v = V.get_key c first in
            if
              V.cas_root c t.head ~expected:h ~expected_birth:h_b ~new_:first
                ~new_birth:first_b
            then begin
              (* The swing is unique, so exactly one thread retires h; the
                 retire runs under its own checkpoint because the dequeue is
                 already linearized. *)
              V.checkpoint c (fun () -> V.retire t.vbr ~tid (h, h_b));
              Some v
            end
            else loop ()
          end
        in
        loop ())

  let is_empty t ~tid =
    let c = V.ctx t.vbr ~tid in
    V.checkpoint c (fun () ->
        let h = P.index (V.read_root_packed c t.head) in
        P.index (V.get_next_packed c ~lvl:0 h) = 0)

  (* Quiescent-only helpers. *)
  let to_list t =
    let arena = V.arena t.vbr in
    let h = Memsim.Packed.index (Atomic.get t.head) in
    let rec go acc i =
      let n = Memsim.Arena.get arena i in
      let nxt = Memsim.Packed.index (Atomic.get (Memsim.Node.next0 n)) in
      if nxt = 0 then List.rev acc
      else go ((Memsim.Arena.get arena nxt).Memsim.Node.key :: acc) nxt
    in
    go [] h
  [@@vbr.allow "raw-atomic"]

  let length t = List.length (to_list t)
end

include Make (Vbr_core.Vbr)
