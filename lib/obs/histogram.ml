(* HDR-style log-linear bucketing: every power-of-two range is split into
   [n_sub] linear sub-buckets, so any recorded value lands in a bucket
   whose width is at most 1/n_sub of its magnitude — a fixed ~3% relative
   error with sub_bits = 5, over the full 62-bit non-negative int range,
   in a flat array of under 2k buckets. *)

let sub_bits = 5
let n_sub = 1 lsl sub_bits

(* Highest shift is msb(max_int) - sub_bits = 61 - 5 = 56, so the last
   bucket index is (56 + 1) * n_sub + (n_sub - 1). *)
let n_buckets = (((61 - sub_bits) + 1) * n_sub) + n_sub

type t = {
  buckets : int array;
  mutable total : int;
  mutable sum : float;
  mutable max_v : int;
  mutable min_v : int;
}

let create () =
  {
    buckets = Array.make n_buckets 0;
    total = 0;
    sum = 0.0;
    max_v = 0;
    min_v = max_int;
  }

let msb v =
  (* 0-based position of the highest set bit; [v > 0]. *)
  let r = ref 0 and x = ref v in
  if !x lsr 32 <> 0 then begin r := !r + 32; x := !x lsr 32 end;
  if !x lsr 16 <> 0 then begin r := !r + 16; x := !x lsr 16 end;
  if !x lsr 8 <> 0 then begin r := !r + 8; x := !x lsr 8 end;
  if !x lsr 4 <> 0 then begin r := !r + 4; x := !x lsr 4 end;
  if !x lsr 2 <> 0 then begin r := !r + 2; x := !x lsr 2 end;
  if !x lsr 1 <> 0 then r := !r + 1;
  !r

let bucket_of_value v =
  if v < n_sub then v
  else
    let shift = msb v - sub_bits in
    ((shift + 1) * n_sub) + ((v lsr shift) - n_sub)

let bucket_lower_bound b =
  if b < n_sub then b
  else
    let shift = (b / n_sub) - 1 in
    (n_sub + (b mod n_sub)) lsl shift

let record t v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of_value v in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. float_of_int v;
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v

let count t = t.total
let sum t = t.sum
let max_value t = if t.total = 0 then 0 else t.max_v
let min_value t = if t.total = 0 then 0 else t.min_v
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

let clear t =
  Array.fill t.buckets 0 n_buckets 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.max_v <- 0;
  t.min_v <- max_int

let copy t =
  {
    buckets = Array.copy t.buckets;
    total = t.total;
    sum = t.sum;
    max_v = t.max_v;
    min_v = t.min_v;
  }

let count_le t v =
  if v < 0 then 0
  else begin
    let last = bucket_of_value v in
    let acc = ref 0 in
    for i = 0 to last do
      acc := !acc + t.buckets.(i)
    done;
    !acc
  end

(* Bucket-wise window [cur - since]. total/sum are recomputed from the
   subtracted buckets so a racy [since] copy cannot push them negative;
   max/min are only known to bucket precision inside a window, so they are
   approximated by the edges of the outermost non-empty buckets (clamped
   to [cur]'s exact extrema, which bound the window's). *)
let diff ~since cur =
  let out = create () in
  let total = ref 0 and lo = ref (-1) and hi = ref (-1) in
  for i = 0 to n_buckets - 1 do
    let d = cur.buckets.(i) - since.buckets.(i) in
    let d = if d < 0 then 0 else d in
    out.buckets.(i) <- d;
    if d > 0 then begin
      total := !total + d;
      if !lo < 0 then lo := i;
      hi := i
    end
  done;
  out.total <- !total;
  (if !total > 0 then begin
     let s = cur.sum -. since.sum in
     out.sum <- (if s < 0.0 then 0.0 else s);
     out.max_v <-
       (if !hi + 1 >= n_buckets then cur.max_v
        else min cur.max_v (bucket_lower_bound (!hi + 1) - 1));
     out.min_v <- max (min_value cur) (bucket_lower_bound !lo)
   end);
  out

let merge a b =
  let out = create () in
  for i = 0 to n_buckets - 1 do
    out.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
  done;
  out.total <- a.total + b.total;
  out.sum <- a.sum +. b.sum;
  out.max_v <- max a.max_v b.max_v;
  out.min_v <- min a.min_v b.min_v;
  out

let merge_into ~into src =
  for i = 0 to n_buckets - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
  done;
  into.total <- into.total + src.total;
  into.sum <- into.sum +. src.sum;
  if src.max_v > into.max_v then into.max_v <- src.max_v;
  if src.min_v < into.min_v then into.min_v <- src.min_v

let merge_all hs =
  let out = create () in
  List.iter (fun h -> merge_into ~into:out h) hs;
  out

(* The value reported for quantile [q] is the upper edge of the bucket
   holding the sample of rank ceil(q * total), clamped to the exact
   tracked maximum — so small integer values (below [n_sub]) are reported
   exactly, and large ones overshoot by at most 1/n_sub. *)
let quantile t q =
  if t.total = 0 then 0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = int_of_float (ceil (q *. float_of_int t.total)) in
    let rank = if rank < 1 then 1 else rank in
    let acc = ref 0 and b = ref 0 in
    while !acc < rank && !b < n_buckets do
      acc := !acc + t.buckets.(!b);
      incr b
    done;
    let bucket = !b - 1 in
    if bucket + 1 >= n_buckets then t.max_v
    else min (bucket_lower_bound (bucket + 1) - 1) t.max_v
  end

type summary = {
  count : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
}

let summarize t =
  {
    count = count t;
    mean = mean t;
    p50 = quantile t 0.50;
    p90 = quantile t 0.90;
    p99 = quantile t 0.99;
    max = max_value t;
  }
