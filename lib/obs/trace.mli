(** Per-thread lifecycle trace rings (DESIGN.md §2.10).

    A trace owns one fixed-capacity ring per worker thread. Emitting an
    event writes seven ints into a preallocated flat array — no per-event
    heap structure — and draws a global sequence number from one shared
    fetch-and-add, so a dump can be replayed in a total order that agrees
    with real time at every emission point. Backends hold a
    [ring option] per thread: [None] (the default, when {!Smr_intf.CORE}
    [set_trace] was never called) keeps every hook a single match on an
    immediate, so tracing disabled costs nothing measurable.

    Emission placement contract (what makes the offline checker in
    [Lint.Trace_check] sound, i.e. free of false positives on a correct
    execution): events that {e extend} protection or {e enter} a
    lifecycle stage ([Guard_acquire], [Alloc]) are emitted {e after} the
    corresponding store is visible; events that {e shrink} protection or
    {e exit} a stage ([Guard_release], [Retire], [Reclaim], [Dealloc])
    are emitted {e before} it. *)

type kind =
  | Alloc  (** slot handed to the structure; v1 = birth, epoch = clock *)
  | Dealloc  (** unpublished slot returned (e.g. VBR pending flush) *)
  | Retire  (** slot unlinked and retired; v1 = birth, v2 = retire epoch *)
  | Reclaim  (** retired slot returned to the pool; v1/v2 as [Retire] *)
  | Reuse  (** pool recycled a previously returned slot *)
  | Rollback  (** VBR: epoch moved under an operation; v1 = old, v2 = new *)
  | Epoch_advance  (** global clock moved; v1 = old, v2 = new *)
  | Checkpoint  (** VBR: rollback handler (re)armed at epoch *)
  | Guard_acquire
      (** protection visible; slot = protected node (index guards) or 0,
          [v1,v2] = protected birth-epoch interval (v2 = -1 means +inf),
          epoch = guard slot id *)
  | Guard_release  (** epoch = guard slot id, or -1 for "all guards" *)
  | Cas_fail  (** versioned CAS lost a race; slot, v1 = expected birth *)
  | Sched_yield
      (** virtual scheduler context switch (Schedsim); slot = thread
          scheduled in, v1 = thread scheduled out, v2 = global step *)

val all_kinds : kind list
val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type t
(** A trace: per-thread rings sharing one sequence counter and origin. *)

type ring

val default_capacity : int
(** Rows per ring when [create] is not given [?capacity] (65536). *)

val create : ?capacity:int -> n_threads:int -> scheme:string -> unit -> t
(** [capacity] is in events {e per thread}; once a ring is full the
    oldest events are overwritten and counted in [d_dropped]. *)

val ring : t -> tid:int -> ring
val scheme : t -> string
val capacity : t -> int

val emit : ring -> kind -> slot:int -> v1:int -> v2:int -> epoch:int -> unit
(** Record one event. Single-threaded per ring (each worker owns its
    ring); safe to call concurrently across rings. *)

val dropped : t -> int
(** Events overwritten so far, summed over all rings. *)

(** {1 Dumps} *)

type event = {
  e_tid : int;
  e_seq : int;  (** global emission order *)
  e_t_ns : int;  (** nanoseconds since the trace was created *)
  e_kind : kind;
  e_slot : int;
  e_v1 : int;
  e_v2 : int;
  e_epoch : int;
}

type dump = {
  d_scheme : string;
  d_threads : int;
  d_capacity : int;
  d_dropped : int;
  d_events : event array;  (** ascending [e_seq] *)
}

val dump : t -> dump
(** Snapshot every ring. Call after the traced workers have joined: the
    rings are not synchronized against concurrent emission. *)

val csv_header : string

val write_csv : string -> dump -> unit
(** Line 1: [# scheme=... threads=... capacity=... dropped=...];
    line 2: {!csv_header}; one event per line after that (so event [i]
    of [d_events] sits on file line [i + 3] — the line the offline
    checker anchors findings to). *)

val load_csv : string -> dump
(** Inverse of {!write_csv}. Raises [Failure "file:line: reason"] on a
    malformed file. *)

val write_chrome : string -> dump -> unit
(** Chrome trace-event JSON (open in chrome://tracing or Perfetto):
    instant events, one named virtual thread per ring, timestamps in
    microseconds, slot/versions/epoch/seq under [args]. *)
