type t =
  | Alloc
  | Dealloc
  | Retire
  | Reclaim
  | Epoch_advance
  | Protect_retry
  | Rollback
  | Cas_fail
  | Arena_fresh
  | Arena_exhausted
  | Pool_recycle
  | Pool_spill
  | Global_push
  | Global_pop
  | Global_steal
  | Scan_skip
  | Advance_skip

let count = 17

let all =
  [
    Alloc;
    Dealloc;
    Retire;
    Reclaim;
    Epoch_advance;
    Protect_retry;
    Rollback;
    Cas_fail;
    Arena_fresh;
    Arena_exhausted;
    Pool_recycle;
    Pool_spill;
    Global_push;
    Global_pop;
    Global_steal;
    Scan_skip;
    Advance_skip;
  ]

let to_index = function
  | Alloc -> 0
  | Dealloc -> 1
  | Retire -> 2
  | Reclaim -> 3
  | Epoch_advance -> 4
  | Protect_retry -> 5
  | Rollback -> 6
  | Cas_fail -> 7
  | Arena_fresh -> 8
  | Arena_exhausted -> 9
  | Pool_recycle -> 10
  | Pool_spill -> 11
  | Global_push -> 12
  | Global_pop -> 13
  | Global_steal -> 14
  | Scan_skip -> 15
  | Advance_skip -> 16

let to_string = function
  | Alloc -> "alloc"
  | Dealloc -> "dealloc"
  | Retire -> "retire"
  | Reclaim -> "reclaim"
  | Epoch_advance -> "epoch-advance"
  | Protect_retry -> "protect-retry"
  | Rollback -> "vbr-rollback"
  | Cas_fail -> "cas-fail"
  | Arena_fresh -> "arena-fresh"
  | Arena_exhausted -> "arena-exhausted"
  | Pool_recycle -> "pool-recycle"
  | Pool_spill -> "pool-spill"
  | Global_push -> "global-pool-push"
  | Global_pop -> "global-pool-pop"
  | Global_steal -> "global-pool-steal"
  | Scan_skip -> "scan-skip"
  | Advance_skip -> "epoch-advance-skip"

let of_string s = List.find_opt (fun e -> to_string e = s) all
