(** Sharded event counters.

    A [t] holds one padded counter shard per thread (plus one shared
    overflow shard for code with no thread identity). The owning thread
    increments its shard with plain writes — no atomics, no cache-line
    ping-pong — and readers sum across shards with racy reads, exactly the
    contract of the [freed]/[unreclaimed] stats the reclamation schemes
    always exposed. Snapshots may therefore be slightly stale but each
    per-shard count is exact. *)

type t

type shard
(** A borrowed reference to one shard: the cheap handle layers like
    {!Memsim.Pool} hold so their hot paths touch one array and no
    indirection. Owned by one thread (except {!shared_shard}). *)

type snapshot
(** A merged point-in-time view: one total per {!Event.t}. *)

val create : shards:int -> t
(** [create ~shards:n] makes [n] per-thread shards plus the shared one.
    @raise Invalid_argument if [n < 1]. *)

val n_shards : t -> int
(** The number of per-thread shards (excluding the shared one). *)

val shard : t -> int -> shard
(** [shard t i] is thread [i]'s shard, [0 <= i < n_shards t]. *)

val shared_shard : t -> shard
(** The overflow shard for increments with no thread identity. Racy
    (concurrent increments may be lost); stats only. *)

val incr : t -> shard:int -> Event.t -> unit
val add : t -> shard:int -> Event.t -> int -> unit

val shard_incr : shard -> Event.t -> unit
val shard_add : shard -> Event.t -> int -> unit

val shard_get : shard -> Event.t -> int
(** This shard's exact count (exact when read by the owner). *)

val read : t -> Event.t -> int
(** Racy cross-shard total of one event, without allocating. *)

val snapshot : t -> snapshot
(** Racy merged totals of every event. *)

val empty_snapshot : unit -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Event-wise sum (combining instances, e.g. across repeats). *)

val get : snapshot -> Event.t -> int

val to_assoc : snapshot -> (string * int) list
(** [(Event.to_string ev, total)] for every event, in {!Event.all} order. *)
