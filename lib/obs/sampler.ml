type 'a sample = { elapsed_ms : float; value : 'a }

type 'a t = {
  stop_flag : bool Atomic.t;
  domain : 'a sample list Domain.t;  (* newest first *)
}

let start ?(interval_ms = 5.0) ~read () =
  if interval_ms <= 0.0 then invalid_arg "Sampler.start: interval_ms <= 0";
  let stop_flag = Atomic.make false in
  let t0 = Unix.gettimeofday () in
  let snap acc =
    (* Timestamp after the read so a slow gauge does not antedate its own
       sample. *)
    let v = read () in
    { elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0; value = v } :: acc
  in
  let domain =
    Domain.spawn (fun () ->
        let acc = ref (snap []) in
        while not (Atomic.get stop_flag) do
          Unix.sleepf (interval_ms /. 1000.0);
          acc := snap !acc
        done;
        (* One final sample after the stop request, so callers that quiesce
           the system before stopping always see its end state. *)
        snap !acc)
  in
  { stop_flag; domain }

let stop t =
  Atomic.set t.stop_flag true;
  List.rev (Domain.join t.domain)
