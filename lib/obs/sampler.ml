type 'a sample = { elapsed_ms : float; value : 'a }

(* The series is published incrementally into [cell] (the sampler domain
   is the only writer), with [drained] flipped only after the final
   post-stop sample is visible. [stop] waits on [drained] and reads the
   series BEFORE joining: the join is then pure cleanup, so a sampler
   domain that dies on the way out (e.g. a gauge closure raising against
   a torn-down system) can no longer take the already-captured samples
   with it, and the final interval is never dropped. *)
type 'a t = {
  stop_flag : bool Atomic.t;
  cell : 'a sample list Atomic.t;  (* newest first *)
  drained : bool Atomic.t;
  domain : unit Domain.t;
  read : unit -> 'a;
  t0 : float;
}

(* Sleep in short slices so a stop request is honoured within ~50 ms even
   at long sampling intervals. *)
let max_slice_s = 0.05

let start ?(interval_ms = 5.0) ?keep_last ~read () =
  if interval_ms <= 0.0 then invalid_arg "Sampler.start: interval_ms <= 0";
  (match keep_last with
  | Some k when k < 1 -> invalid_arg "Sampler.start: keep_last < 1"
  | _ -> ());
  let stop_flag = Atomic.make false in
  let cell = Atomic.make [] in
  let drained = Atomic.make false in
  let t0 = Unix.gettimeofday () in
  let snap () =
    (* Timestamp after the read so a slow gauge does not antedate its own
       sample. *)
    let v = read () in
    let s = { elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0; value = v } in
    let prev = Atomic.get cell in
    let prev =
      match keep_last with
      | Some k ->
          (* Truncate the retained tail so long-lived collectors stay
             bounded; [stop] then returns at most [k + 1] samples. *)
          let rec take n = function
            | x :: tl when n > 0 -> x :: take (n - 1) tl
            | _ -> []
          in
          take (k - 1) prev
      | None -> prev
    in
    Atomic.set cell (s :: prev)
  in
  let interval_s = interval_ms /. 1000.0 in
  let domain =
    Domain.spawn (fun () ->
        Fun.protect
          ~finally:(fun () -> Atomic.set drained true)
          (fun () ->
            snap ();
            (* Schedule off the absolute next deadline rather than
               sleep-after-work: a slow [read] eats into the following
               interval instead of shifting every later tick, so N ticks
               over T seconds stays at T / interval regardless of gauge
               cost. Deadlines the domain slept through entirely are
               skipped (no catch-up bursts). *)
            let next = ref (t0 +. interval_s) in
            while not (Atomic.get stop_flag) do
              let now = Unix.gettimeofday () in
              if now >= !next then begin
                snap ();
                next := !next +. interval_s;
                let now = Unix.gettimeofday () in
                while !next <= now do
                  next := !next +. interval_s
                done
              end
              else Unix.sleepf (Float.min (!next -. now) max_slice_s)
            done;
            (* One final sample after the stop request, so callers that
               quiesce the system before stopping always see its end
               state. *)
            snap ()))
  in
  { stop_flag; cell; drained; domain; read; t0 }

let read_now t =
  let v = t.read () in
  { elapsed_ms = (Unix.gettimeofday () -. t.t0) *. 1000.0; value = v }

let last t = match Atomic.get t.cell with [] -> None | s :: _ -> Some s

let stop t =
  Atomic.set t.stop_flag true;
  while not (Atomic.get t.drained) do
    Domain.cpu_relax ()
  done;
  let samples = Atomic.get t.cell in
  (try Domain.join t.domain with _ -> ());
  List.rev samples
