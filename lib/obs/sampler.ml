type 'a sample = { elapsed_ms : float; value : 'a }

(* The series is published incrementally into [cell] (the sampler domain
   is the only writer), with [drained] flipped only after the final
   post-stop sample is visible. [stop] waits on [drained] and reads the
   series BEFORE joining: the join is then pure cleanup, so a sampler
   domain that dies on the way out (e.g. a gauge closure raising against
   a torn-down system) can no longer take the already-captured samples
   with it, and the final interval is never dropped. *)
type 'a t = {
  stop_flag : bool Atomic.t;
  cell : 'a sample list Atomic.t;  (* newest first *)
  drained : bool Atomic.t;
  domain : unit Domain.t;
}

let start ?(interval_ms = 5.0) ~read () =
  if interval_ms <= 0.0 then invalid_arg "Sampler.start: interval_ms <= 0";
  let stop_flag = Atomic.make false in
  let cell = Atomic.make [] in
  let drained = Atomic.make false in
  let t0 = Unix.gettimeofday () in
  let snap () =
    (* Timestamp after the read so a slow gauge does not antedate its own
       sample. *)
    let v = read () in
    let s = { elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0; value = v } in
    Atomic.set cell (s :: Atomic.get cell)
  in
  let domain =
    Domain.spawn (fun () ->
        Fun.protect
          ~finally:(fun () -> Atomic.set drained true)
          (fun () ->
            snap ();
            while not (Atomic.get stop_flag) do
              Unix.sleepf (interval_ms /. 1000.0);
              snap ()
            done;
            (* One final sample after the stop request, so callers that
               quiesce the system before stopping always see its end
               state. *)
            snap ()))
  in
  { stop_flag; cell; drained; domain }

let stop t =
  Atomic.set t.stop_flag true;
  while not (Atomic.get t.drained) do
    Domain.cpu_relax ()
  done;
  let samples = Atomic.get t.cell in
  (try Domain.join t.domain with _ -> ());
  List.rev samples
