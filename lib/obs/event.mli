(** The event taxonomy shared by every layer's counters.

    One variant per countable occurrence, from the data-structure-facing
    SMR protocol (alloc/dealloc/retire/reclaim, protection retries, epoch
    advances, VBR rollbacks, versioned-CAS failures) down to the simulated
    allocator (arena claims and exhaustion, pool recycling, spills to and
    refills from the shared pool). Not every scheme emits every event —
    e.g. only VBR emits [Rollback]; EBR never emits [Protect_retry] — a
    zero count is itself a signal (it is the paper's §5.2 cost story). *)

type t =
  | Alloc  (** a node handed to the data structure *)
  | Dealloc  (** an unpublished node returned for immediate reuse *)
  | Retire  (** a node announced as unlinked for the last time *)
  | Reclaim  (** a retired node actually returned to the pools *)
  | Epoch_advance  (** a successful global epoch/era increment *)
  | Protect_retry  (** one extra iteration of a protect/validate loop *)
  | Rollback  (** a VBR checkpoint replay *)
  | Cas_fail  (** a failed versioned CAS (VBR update/mark/root) *)
  | Arena_fresh  (** an allocation served by a fresh arena slot *)
  | Arena_exhausted  (** an allocation that raised {!Memsim.Arena.Exhausted} *)
  | Pool_recycle  (** an allocation served by a recycled slot *)
  | Pool_spill  (** a slot donated from a local pool to the global pool *)
  | Global_push  (** a batch pushed onto the global pool *)
  | Global_pop  (** a batch popped from the global pool *)
  | Global_steal  (** a pop served by stealing from a foreign shard *)
  | Scan_skip  (** a retire that deferred its scan to the adaptive trigger *)
  | Advance_skip
      (** an epoch-advance attempt elided or lost because another thread
          already moved the epoch (the adaptive-cadence dividend) *)

val count : int
(** Number of distinct events (the counter-array stride). *)

val all : t list
(** Every event, in [to_index] order. *)

val to_index : t -> int
(** Dense index in [0, count). *)

val to_string : t -> string
(** Stable machine-readable name (as emitted in BENCH_*.json). *)

val of_string : string -> t option
