(* Each shard is its own [int array], padded up to a multiple of a cache
   line so two shards never share one. Increments are plain (non-atomic)
   writes: a shard is only ever written by its owning thread, so the only
   racy accesses are the cross-shard reads in [snapshot]/[read], which may
   observe a slightly stale count — the same contract as the freed /
   unreclaimed stats the schemes always exposed. The one exception is the
   shared overflow shard used by code with no thread identity (the global
   pool); its lost-update races only affect stats, never safety. *)

type shard = int array

let stride =
  (* Round the event count up to 16 ints (128 bytes): one shard spans
     whole cache lines, so neighbouring shards never false-share. *)
  (Event.count + 15) / 16 * 16

type t = { shards : shard array (* n_shards rows + 1 shared overflow row *) }

type snapshot = int array

let create ~shards:n =
  if n < 1 then invalid_arg "Counters.create: shards < 1";
  { shards = Array.init (n + 1) (fun _ -> Array.make stride 0) }

let n_shards t = Array.length t.shards - 1

let shard t i =
  if i < 0 || i >= n_shards t then
    invalid_arg (Printf.sprintf "Counters.shard: %d out of range" i);
  t.shards.(i)

let shared_shard t = t.shards.(n_shards t)

let shard_incr (s : shard) ev =
  let i = Event.to_index ev in
  s.(i) <- s.(i) + 1

let shard_add (s : shard) ev n =
  let i = Event.to_index ev in
  s.(i) <- s.(i) + n

let shard_get (s : shard) ev = s.(Event.to_index ev)
let incr t ~shard ev = shard_incr t.shards.(shard) ev
let add t ~shard ev n = shard_add t.shards.(shard) ev n

let read t ev =
  let i = Event.to_index ev in
  Array.fold_left (fun acc s -> acc + s.(i)) 0 t.shards

let snapshot t =
  let out = Array.make Event.count 0 in
  Array.iter
    (fun s ->
      for i = 0 to Event.count - 1 do
        out.(i) <- out.(i) + s.(i)
      done)
    t.shards;
  out

let empty_snapshot () = Array.make Event.count 0

let merge a b =
  if Array.length a <> Event.count || Array.length b <> Event.count then
    invalid_arg "Counters.merge: not a snapshot";
  Array.init Event.count (fun i -> a.(i) + b.(i))

let get (s : snapshot) ev = s.(Event.to_index ev)

let to_assoc (s : snapshot) =
  List.map (fun ev -> (Event.to_string ev, get s ev)) Event.all
