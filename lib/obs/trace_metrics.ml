(* Temporal metrics derived from a trace dump: the quantities the paper
   argues about but end-of-run counter totals cannot show — how long
   retired nodes sit unreclaimed, how epoch advances space out, and how
   VBR rollbacks cluster. *)

type t = {
  m_scheme : string;
  m_events : int;
  m_dropped : int;
  m_by_kind : (Trace.kind * int) list;  (* only kinds that occurred *)
  m_age : Histogram.summary;  (* retire -> reclaim latency, ns *)
  m_unreclaimed_end : int;  (* retired but never reclaimed in the trace *)
  m_epoch_stalls : Histogram.summary;  (* gap between epoch advances, ns *)
  m_rollbacks : int;
  m_rollback_burst : int;  (* max rollbacks in any 1 ms window *)
}

let burst_window_ns = 1_000_000

let compute (d : Trace.dump) =
  let counts = Array.make (List.length Trace.all_kinds) 0 in
  let kind_slot = Hashtbl.create 16 in
  List.iteri (fun i k -> Hashtbl.replace kind_slot k i) Trace.all_kinds;
  let ki k = Hashtbl.find kind_slot k in
  (* Retire->reclaim ages: one histogram per reclaiming thread (reclaim is
     always performed by the retiring thread, but keying by e_tid keeps
     this true even for schemes that hand retired lists around), merged at
     the end. *)
  let ages = Array.init (max 1 d.Trace.d_threads) (fun _ -> Histogram.create ()) in
  let pending = Hashtbl.create 1024 in
  let stalls = Histogram.create () in
  let last_advance = ref (-1) in
  let bursts = Hashtbl.create 64 in
  let burst_max = ref 0 in
  Array.iter
    (fun (e : Trace.event) ->
      counts.(ki e.Trace.e_kind) <- counts.(ki e.Trace.e_kind) + 1;
      match e.Trace.e_kind with
      | Trace.Retire -> Hashtbl.replace pending e.Trace.e_slot e.Trace.e_t_ns
      | Trace.Reclaim -> (
          match Hashtbl.find_opt pending e.Trace.e_slot with
          | Some t_retire ->
              Hashtbl.remove pending e.Trace.e_slot;
              let tid = e.Trace.e_tid in
              if tid >= 0 && tid < Array.length ages then
                Histogram.record ages.(tid) (e.Trace.e_t_ns - t_retire)
          | None -> ())
      | Trace.Epoch_advance ->
          if !last_advance >= 0 then
            Histogram.record stalls (e.Trace.e_t_ns - !last_advance);
          last_advance := e.Trace.e_t_ns
      | Trace.Rollback ->
          let w = e.Trace.e_t_ns / burst_window_ns in
          let n = (try Hashtbl.find bursts w with Not_found -> 0) + 1 in
          Hashtbl.replace bursts w n;
          if n > !burst_max then burst_max := n
      | _ -> ())
    d.Trace.d_events;
  {
    m_scheme = d.Trace.d_scheme;
    m_events = Array.length d.Trace.d_events;
    m_dropped = d.Trace.d_dropped;
    m_by_kind =
      List.filter_map
        (fun k -> if counts.(ki k) > 0 then Some (k, counts.(ki k)) else None)
        Trace.all_kinds;
    m_age = Histogram.summarize (Histogram.merge_all (Array.to_list ages));
    m_unreclaimed_end = Hashtbl.length pending;
    m_epoch_stalls = Histogram.summarize stalls;
    m_rollbacks = counts.(ki Trace.Rollback);
    m_rollback_burst = !burst_max;
  }

let to_json m =
  Sink.Obj
    [
      ("scheme", Sink.String m.m_scheme);
      ("events", Sink.Int m.m_events);
      ("dropped", Sink.Int m.m_dropped);
      ( "by_kind",
        Sink.Obj
          (List.map
             (fun (k, n) -> (Trace.kind_to_string k, Sink.Int n))
             m.m_by_kind) );
      ("unreclaimed_age_ns", Sink.of_summary m.m_age);
      ("unreclaimed_at_end", Sink.Int m.m_unreclaimed_end);
      ("epoch_stall_ns", Sink.of_summary m.m_epoch_stalls);
      ("rollbacks", Sink.Int m.m_rollbacks);
      ("rollback_burst_1ms", Sink.Int m.m_rollback_burst);
    ]
