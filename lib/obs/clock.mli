(** Wall-clock reads for the measurement layer.

    The determinism lint (DESIGN.md §2.9) confines raw [Unix.gettimeofday]
    to [lib/harness] and [lib/obs]; everything else that legitimately needs
    a timestamp — the net subsystem's latency measurement, operator-facing
    progress lines — takes it through here so the policed planes stay free
    of clock reads. *)

val now_s : unit -> float
(** Seconds since the epoch (microsecond resolution). *)

val now_ns : unit -> int
(** Nanoseconds since the epoch, as an int (quantized to the underlying
    microsecond clock; wraps past year ~2262, which we accept). *)
