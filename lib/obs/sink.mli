(** Machine-readable emitters: a dependency-free JSON value type plus CSV,
    and converters from the other obs modules. This is what turns a bench
    run's text tables into [BENCH_<panel>.json] artefacts. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact (single-line) JSON. Strings are escaped per RFC 8259; nan and
    infinities emit [null]; integral floats print with a trailing [.0]. *)

val write_file : string -> json -> unit
(** Write [to_string] plus a trailing newline, truncating the target. *)

val of_counters : Counters.snapshot -> json
(** [{"alloc": n, "dealloc": n, ...}] in {!Event.all} order. *)

val of_summary : Histogram.summary -> json
(** [{"count": .., "mean_ns": .., "p50_ns": .., ...}]. *)

val of_samples : ('a -> (string * json) list) -> 'a Sampler.sample list -> json
(** A JSON array of sample objects, each [{"t_ms": .., <conv fields>}]. *)

val csv : header:string list -> rows:string list list -> string
(** RFC-4180-style CSV (cells quoted only when needed), newline-terminated. *)

val write_csv : string -> header:string list -> rows:string list list -> unit
