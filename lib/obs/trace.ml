(* Per-thread lifecycle trace rings (DESIGN.md §2.10).

   A ring is a flat preallocated int array — emitting writes one row of
   [stride] ints and bumps a counter, overwriting the oldest row once the
   ring is full. No per-event heap structure is allocated, so tracing can
   wrap the reclamation hot paths; the only shared write per event is one
   fetch-and-add on the global sequence counter, which gives the offline
   checker a total order that cross-thread timestamps cannot. *)

type kind =
  | Alloc
  | Dealloc
  | Retire
  | Reclaim
  | Reuse
  | Rollback
  | Epoch_advance
  | Checkpoint
  | Guard_acquire
  | Guard_release
  | Cas_fail
  | Sched_yield

let all_kinds =
  [
    Alloc;
    Dealloc;
    Retire;
    Reclaim;
    Reuse;
    Rollback;
    Epoch_advance;
    Checkpoint;
    Guard_acquire;
    Guard_release;
    Cas_fail;
    Sched_yield;
  ]

let kind_index = function
  | Alloc -> 0
  | Dealloc -> 1
  | Retire -> 2
  | Reclaim -> 3
  | Reuse -> 4
  | Rollback -> 5
  | Epoch_advance -> 6
  | Checkpoint -> 7
  | Guard_acquire -> 8
  | Guard_release -> 9
  | Cas_fail -> 10
  | Sched_yield -> 11

let kind_table = Array.of_list all_kinds

let kind_of_index i =
  if i < 0 || i >= Array.length kind_table then
    invalid_arg (Printf.sprintf "Trace.kind_of_index: %d" i)
  else kind_table.(i)

let kind_to_string = function
  | Alloc -> "alloc"
  | Dealloc -> "dealloc"
  | Retire -> "retire"
  | Reclaim -> "reclaim"
  | Reuse -> "reuse"
  | Rollback -> "rollback"
  | Epoch_advance -> "epoch-advance"
  | Checkpoint -> "checkpoint"
  | Guard_acquire -> "guard-acquire"
  | Guard_release -> "guard-release"
  | Cas_fail -> "cas-fail"
  | Sched_yield -> "sched-yield"

let kind_of_string = function
  | "alloc" -> Some Alloc
  | "dealloc" -> Some Dealloc
  | "retire" -> Some Retire
  | "reclaim" -> Some Reclaim
  | "reuse" -> Some Reuse
  | "rollback" -> Some Rollback
  | "epoch-advance" -> Some Epoch_advance
  | "checkpoint" -> Some Checkpoint
  | "guard-acquire" -> Some Guard_acquire
  | "guard-release" -> Some Guard_release
  | "cas-fail" -> Some Cas_fail
  | "sched-yield" -> Some Sched_yield
  | _ -> None

(* Row layout: seq, t_ns, kind, slot, v1, v2, epoch. *)
let stride = 7

type ring = {
  r_tid : int;
  data : int array;
  cap : int;  (* rows *)
  seq_src : int Atomic.t;  (* shared with every ring of the trace *)
  t0 : float;
  mutable total : int;  (* rows ever emitted; head = total mod cap *)
}

type t = {
  scheme : string;
  capacity : int;
  rings : ring array;
  seq : int Atomic.t;
  t0 : float;
}

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) ~n_threads ~scheme () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  if n_threads < 1 then invalid_arg "Trace.create: n_threads < 1";
  let seq = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  {
    scheme;
    capacity;
    seq;
    t0;
    rings =
      Array.init n_threads (fun r_tid ->
          {
            r_tid;
            data = Array.make (capacity * stride) 0;
            cap = capacity;
            seq_src = seq;
            t0;
            total = 0;
          });
  }

let ring t ~tid = t.rings.(tid)
let scheme t = t.scheme
let capacity t = t.capacity

let emit r k ~slot ~v1 ~v2 ~epoch =
  let seq = Atomic.fetch_and_add r.seq_src 1 in
  let t_ns = int_of_float ((Unix.gettimeofday () -. r.t0) *. 1e9) in
  let base = r.total mod r.cap * stride in
  let d = r.data in
  d.(base) <- seq;
  d.(base + 1) <- t_ns;
  d.(base + 2) <- kind_index k;
  d.(base + 3) <- slot;
  d.(base + 4) <- v1;
  d.(base + 5) <- v2;
  d.(base + 6) <- epoch;
  r.total <- r.total + 1

type event = {
  e_tid : int;
  e_seq : int;
  e_t_ns : int;
  e_kind : kind;
  e_slot : int;
  e_v1 : int;
  e_v2 : int;
  e_epoch : int;
}

type dump = {
  d_scheme : string;
  d_threads : int;
  d_capacity : int;
  d_dropped : int;  (* rows overwritten before the dump, all rings *)
  d_events : event array;  (* ascending [e_seq] *)
}

let ring_events r =
  let kept = min r.total r.cap in
  List.init kept (fun j ->
      (* Oldest surviving row first. *)
      let row = (r.total - kept + j) mod r.cap in
      let base = row * stride in
      let d = r.data in
      {
        e_tid = r.r_tid;
        e_seq = d.(base);
        e_t_ns = d.(base + 1);
        e_kind = kind_of_index d.(base + 2);
        e_slot = d.(base + 3);
        e_v1 = d.(base + 4);
        e_v2 = d.(base + 5);
        e_epoch = d.(base + 6);
      })

let dropped t =
  Array.fold_left (fun acc r -> acc + max 0 (r.total - r.cap)) 0 t.rings

let dump t =
  let events =
    Array.of_list (List.concat_map ring_events (Array.to_list t.rings))
  in
  Array.sort (fun a b -> compare a.e_seq b.e_seq) events;
  {
    d_scheme = t.scheme;
    d_threads = Array.length t.rings;
    d_capacity = t.capacity;
    d_dropped = dropped t;
    d_events = events;
  }

(* ------------------------------------------------------------------ *)
(* CSV round-trip. Line 1 is a '#' preamble with the trace metadata,   *)
(* line 2 the column header, data from line 3 — so an event's 1-based  *)
(* file line is its index in [d_events] + 3, the anchor the offline    *)
(* checker reports findings at.                                        *)
(* ------------------------------------------------------------------ *)

let csv_header = "tid,seq,t_ns,kind,slot,v1,v2,epoch"

let write_csv path d =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# scheme=%s threads=%d capacity=%d dropped=%d\n"
        d.d_scheme d.d_threads d.d_capacity d.d_dropped;
      output_string oc csv_header;
      output_char oc '\n';
      Array.iter
        (fun e ->
          Printf.fprintf oc "%d,%d,%d,%s,%d,%d,%d,%d\n" e.e_tid e.e_seq e.e_t_ns
            (kind_to_string e.e_kind)
            e.e_slot e.e_v1 e.e_v2 e.e_epoch)
        d.d_events)

let fail path lineno msg =
  failwith (Printf.sprintf "%s:%d: %s" path lineno msg)

let parse_preamble path line =
  let kv = function
    | [ k; v ] -> (k, v)
    | _ -> fail path 1 "malformed preamble field (want key=value)"
  in
  let fields =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "" && s <> "#")
    |> List.map (fun f -> kv (String.split_on_char '=' f))
  in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> fail path 1 (Printf.sprintf "preamble is missing %s=" k)
  in
  let int k =
    match int_of_string_opt (get k) with
    | Some v -> v
    | None -> fail path 1 (Printf.sprintf "preamble %s= is not an integer" k)
  in
  (get "scheme", int "threads", int "capacity", int "dropped")

let parse_row path lineno line =
  match String.split_on_char ',' line with
  | [ tid; seq; t_ns; kind; slot; v1; v2; epoch ] ->
      let int what s =
        match int_of_string_opt s with
        | Some v -> v
        | None -> fail path lineno (Printf.sprintf "%s is not an integer" what)
      in
      let e_kind =
        match kind_of_string kind with
        | Some k -> k
        | None -> fail path lineno (Printf.sprintf "unknown event kind %S" kind)
      in
      {
        e_tid = int "tid" tid;
        e_seq = int "seq" seq;
        e_t_ns = int "t_ns" t_ns;
        e_kind;
        e_slot = int "slot" slot;
        e_v1 = int "v1" v1;
        e_v2 = int "v2" v2;
        e_epoch = int "epoch" epoch;
      }
  | _ -> fail path lineno "expected 8 comma-separated fields"

let load_csv path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let preamble =
        match In_channel.input_line ic with
        | Some l when String.length l > 0 && l.[0] = '#' ->
            parse_preamble path l
        | Some _ | None -> fail path 1 "missing '# scheme=...' preamble"
      in
      (match In_channel.input_line ic with
      | Some h when h = csv_header -> ()
      | Some _ | None ->
          fail path 2 (Printf.sprintf "expected header %S" csv_header));
      let events = ref [] in
      let lineno = ref 2 in
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some "" -> loop ()
        | Some line ->
            incr lineno;
            events := parse_row path !lineno line :: !events;
            loop ()
      in
      loop ();
      let d_scheme, d_threads, d_capacity, d_dropped = preamble in
      let d_events = Array.of_list (List.rev !events) in
      Array.sort (fun a b -> compare a.e_seq b.e_seq) d_events;
      { d_scheme; d_threads; d_capacity; d_dropped; d_events })

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export: instant events ("ph":"i"), one virtual   *)
(* thread per ring, timestamps in microseconds. Streams row by row —   *)
(* dumps reach hundreds of thousands of events, so no Sink.json tree.  *)
(* ------------------------------------------------------------------ *)

let write_chrome path d =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"scheme\":%s,\"dropped\":%d},\"traceEvents\":["
        (Sink.to_string (Sink.String d.d_scheme))
        d.d_dropped;
      Printf.fprintf oc
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":%s}}"
        (Sink.to_string (Sink.String ("vbr " ^ d.d_scheme)));
      for tid = 0 to d.d_threads - 1 do
        Printf.fprintf oc
          ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"worker \
           %d\"}}"
          tid tid
      done;
      Array.iter
        (fun e ->
          Printf.fprintf oc
            ",{\"name\":%S,\"cat\":\"smr\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"args\":{\"seq\":%d,\"slot\":%d,\"v1\":%d,\"v2\":%d,\"epoch\":%d}}"
            (kind_to_string e.e_kind)
            e.e_tid
            (float_of_int e.e_t_ns /. 1e3)
            e.e_seq e.e_slot e.e_v1 e.e_v2 e.e_epoch)
        d.d_events;
      output_string oc "]}\n")
