(** Background time-series sampling.

    [start] spawns one domain that evaluates a gauge-reading closure every
    [interval_ms] (plus one sample immediately and one after the stop
    request), timestamping each sample relative to the start. This is the
    footprint probe behind the robustness experiment: the closure reads
    racy gauges (arena occupancy, unreclaimed counts, op counters) while
    worker domains run undisturbed.

    The [read] closure runs on the sampler domain: it must only perform
    thread-safe reads. *)

type 'a sample = { elapsed_ms : float; value : 'a }

type 'a t

val start : ?interval_ms:float -> read:(unit -> 'a) -> unit -> 'a t
(** Begin sampling ([interval_ms] defaults to 5 ms).
    @raise Invalid_argument if [interval_ms <= 0]. *)

val stop : 'a t -> 'a sample list
(** Request the final sample, drain the published series, then join the
    domain; returns the series in chronological order (always at least
    two samples when the gauge closure does not raise). Samples are
    drained {e before} the join, so a sampler domain that dies on its
    way out cannot drop the final interval. *)
