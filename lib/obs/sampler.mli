(** Background time-series sampling.

    [start] spawns one domain that evaluates a gauge-reading closure every
    [interval_ms] (plus one sample immediately and one after the stop
    request), timestamping each sample relative to the start. Ticks are
    scheduled off the absolute next deadline, not sleep-after-work, so a
    slow gauge read does not accumulate drift: N ticks over T seconds
    stays at T / interval (deadlines slept through entirely are skipped,
    never burst-replayed). This is the footprint probe behind the
    robustness experiment and the scrape-side collector behind
    {!Metrics}: the closure reads racy gauges (arena occupancy,
    unreclaimed counts, op counters) while worker domains run
    undisturbed.

    The [read] closure runs on the sampler domain (or the caller's, for
    {!read_now}): it must only perform thread-safe reads. *)

type 'a sample = { elapsed_ms : float; value : 'a }

type 'a t

val start :
  ?interval_ms:float -> ?keep_last:int -> read:(unit -> 'a) -> unit -> 'a t
(** Begin sampling ([interval_ms] defaults to 5 ms). [keep_last] bounds
    the retained series to the most recent [k] samples (plus the final
    post-stop one) for long-lived collectors that only ever consult
    {!last}; omitted, the full series is kept for {!stop}.
    @raise Invalid_argument if [interval_ms <= 0] or [keep_last < 1]. *)

val read_now : 'a t -> 'a sample
(** One-shot scrape on the calling domain: evaluate the gauge closure
    immediately and return the sample without touching the background
    series. *)

val last : 'a t -> 'a sample option
(** Most recent background sample, if any — a non-blocking read of the
    published series. *)

val stop : 'a t -> 'a sample list
(** Request the final sample, drain the published series, then join the
    domain; returns the series in chronological order (always at least
    two samples when the gauge closure does not raise, at most
    [keep_last + 1] when bounded). Samples are drained {e before} the
    join, so a sampler domain that dies on its way out cannot drop the
    final interval. *)
