(** Temporal metrics derived from a {!Trace.dump}: unreclaimed-node age,
    epoch-stall durations, and rollback bursts — the behaviours the VBR
    paper contrasts with EBR/HP that end-of-run counter totals hide. *)

type t = {
  m_scheme : string;
  m_events : int;
  m_dropped : int;
  m_by_kind : (Trace.kind * int) list;
      (** event counts, omitting kinds that never occurred *)
  m_age : Histogram.summary;
      (** retire-to-reclaim latency in ns, over slots reclaimed within
          the trace *)
  m_unreclaimed_end : int;
      (** slots retired but never reclaimed before the trace ended *)
  m_epoch_stalls : Histogram.summary;
      (** ns between successive [Epoch_advance] events *)
  m_rollbacks : int;
  m_rollback_burst : int;
      (** maximum number of rollbacks falling in any one 1 ms window *)
}

val compute : Trace.dump -> t
val to_json : t -> Sink.json
