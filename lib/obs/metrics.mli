(** Live-telemetry registry (DESIGN.md §2.15).

    Typed counter / gauge / histogram instruments with static label sets,
    registered once at startup and scraped on demand: OpenMetrics text
    ({!expose}), a {!Sink.json} twin ({!to_json}), or a flat
    [(name, int)] assoc for the binary STATS_FULL opcode ({!to_assoc}).

    Hot-path writes follow the {!Counters} contract: each writer owns one
    cache-line-padded cell (plain stores, no read-modify-write), and the
    scrape side sums the cells racily — a scrape never blocks a writer
    and must never run inside an SMR critical section. The racy sum can
    transiently under-count; {!counter_value} clamps it to a monotone
    watermark so exported counters never regress between scrapes.

    Registration is not thread-safe (do it before spawning writers);
    writes are per-cell single-writer; scrapes may run concurrently with
    writes from any domain. *)

type t
(** A registry: an ordered set of metric families. *)

type labels = (string * string) list
(** Static label pairs attached to one series, e.g.
    [[("scheme", "vbr")]]. Normalized to key order internally. *)

type counter
type histogram

val create : unit -> t

(** {2 Registration}

    All registration functions raise [Invalid_argument] on a malformed
    metric/label name ([[a-zA-Z_:][a-zA-Z0-9_:]*], no [:] in label
    names), a duplicate (name, labels) series, or a kind clash with an
    existing family of the same name. *)

val counter : t -> ?help:string -> ?labels:labels -> cells:int -> string -> counter
(** Monotone counter with [cells] single-writer slots (one per worker).
    Exposed as [<name>_total]. *)

val counter_fn : t -> ?help:string -> ?labels:labels -> string -> (unit -> int) -> unit
(** Counter whose cumulative value is computed by a closure at scrape
    time (e.g. an existing event-counter sum). The closure must be a
    thread-safe racy read and SHOULD be monotone. *)

val gauge : t -> ?help:string -> ?labels:labels -> string -> (unit -> float) -> unit
(** Point-in-time gauge evaluated at scrape time. *)

val default_le : int list
(** The default histogram bucket ladder: 1 us .. 1 s in 1-2-5 steps,
    expressed in nanoseconds (the recording unit). *)

val histogram :
  t ->
  ?help:string ->
  ?labels:labels ->
  ?le:int list ->
  ?scale:float ->
  cells:int ->
  string ->
  histogram
(** Histogram with [cells] single-writer {!Histogram.t} slots, merged at
    scrape time. [le] is the exposed bucket ladder in the recording unit
    (default {!default_le}); [scale] converts recorded values to the
    exposition unit (e.g. [1e-9] for ns recordings exposed as seconds,
    default [1.0]). Raises [Invalid_argument] unless [le] is
    non-negative and strictly ascending. *)

(** {2 Hot-path writes} *)

val incr : counter -> cell:int -> unit
val add : counter -> cell:int -> int -> unit
(** Raises [Invalid_argument] on a negative increment. *)

val observe : histogram -> cell:int -> int -> unit
(** Record one sample (in the recording unit, conventionally ns). *)

(** {2 Scrape-side reads} *)

val counter_value : counter -> int
(** Monotone cumulative value: the racy cell sum clamped to its
    high-watermark. *)

val histogram_merged : histogram -> Histogram.t
(** Racy merge of all cells into a fresh snapshot. *)

val expose : t -> string
(** OpenMetrics / Prometheus text exposition: [# HELP] / [# TYPE] per
    family in registration order, counters as [<name>_total], histograms
    as cumulative [_bucket{le="..."}] / [_sum] / [_count] (bucket counts
    all come from one frozen merge, so they are monotone in [le] even
    under concurrent writes), label values escaped (backslash,
    double-quote and newline), terminated by [# EOF]. *)

val to_json : t -> Sink.json
(** JSON twin of {!expose} for [Sink]-style artifacts. *)

val to_assoc : t -> (string * int) list
(** Flat integer snapshot for the binary STATS_FULL opcode: counters as
    [<name>_total{k=v}], gauges rounded, histograms as
    [_count] / [_p50] / [_p99] / [_max] in the recording unit. *)

(** {2 Exposition parser}

    A strict-enough OpenMetrics reader shared by vbr-top, the loopback
    scrape tests and the CI smoke job. *)

type psample = { ps_name : string; ps_labels : labels; ps_value : float }

type pfamily = {
  pf_name : string;
  pf_kind : string;  (** "counter" | "gauge" | "histogram" | "untyped" *)
  pf_help : string;
  pf_samples : psample list;
}

val parse : string -> (pfamily list, string) result
(** Parse an exposition page. Samples attach to their family by name
    modulo the standard [_total]/[_bucket]/[_sum]/[_count] suffixes;
    label values are unescaped; a missing [# EOF] terminator (or content
    after it) is an error. *)

val find_family : pfamily list -> string -> pfamily option

val find_sample : pfamily list -> ?labels:labels -> string -> psample option
(** First sample with the given {e sample} name (suffix included) whose
    label set contains every pair in [labels]. *)

val sample_value : pfamily list -> ?labels:labels -> string -> float option

val buckets_of : pfamily -> labels:labels -> (float * float) list
(** [(le, cumulative_count)] pairs of a histogram family's series
    matching [labels], sorted ascending; [+Inf] maps to [infinity]. *)

val quantile_of_buckets : (float * float) list -> float -> float option
(** Quantile estimate from cumulative buckets: the smallest [le] whose
    cumulative count reaches [q] of the total; [None] when empty. *)
