(** Log-bucketed (HDR-style) latency histogram.

    Non-negative integer samples (nanoseconds, by convention) land in
    log-linear buckets: each power-of-two range is split into 32 linear
    sub-buckets, bounding the relative quantile error at ~3% over the full
    int range in under 2k words. Values below 32 are bucketed exactly.

    Not thread-safe: record into one [t] per thread and {!merge}. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record one sample (negative values clamp to 0). *)

val count : t -> int
val mean : t -> float

val sum : t -> float
(** Exact sum of all recorded samples (0 when empty). *)

val max_value : t -> int
(** Exact tracked maximum (0 when empty). *)

val min_value : t -> int
(** Exact tracked minimum (0 when empty). *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0, 1]: the upper edge of the bucket holding
    the rank-[ceil (q * count)] sample, clamped to the exact maximum; 0
    when empty. Overshoots by at most one sub-bucket width (~3%). *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' samples. *)

val merge_into : into:t -> t -> unit

val merge_all : t list -> t
(** Fresh histogram holding every input's samples (empty for []) — the
    aggregation step after each thread recorded into its own [t]. *)

val clear : t -> unit
(** Reset to the empty state, keeping the allocation. *)

val copy : t -> t
(** Fresh independent snapshot of [t]. *)

val count_le : t -> int -> int
(** [count_le t v]: number of samples whose bucket lies at or below the
    bucket of [v] — the cumulative count behind OpenMetrics [_bucket]
    samples. Monotone in [v]; exact when [v] is a bucket upper edge,
    otherwise over-counts by at most the ~3% bucket width. *)

val diff : since:t -> t -> t
(** [diff ~since cur]: the window of samples recorded into [cur] after the
    snapshot [since] was {!copy}ed from it — bucket-wise subtraction, used
    for interval time-series. Counts and quantiles are exact (to bucket
    precision); the window max/min are approximated by the outermost
    non-empty bucket edges, clamped to [cur]'s exact extrema. *)

type summary = {
  count : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
}

val summarize : t -> summary

(** {2 Bucketing internals} — exposed for tests and external decoders. *)

val n_buckets : int

val bucket_of_value : int -> int
(** Monotone map from a non-negative value to its bucket index. *)

val bucket_lower_bound : int -> int
(** Smallest value mapping to the given bucket;
    [bucket_of_value (bucket_lower_bound b) = b]. *)
